// Benchmarks: one per reproduced experiment (E1-E29, matching DESIGN.md's
// index — run `go test -bench=. -benchmem`), plus micro-benchmarks of the
// substrates. Experiment benchmarks run the Quick configuration; use
// cmd/cogbench for the full sweeps and rendered tables.
package crn_test

import (
	"fmt"
	"testing"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/backoff"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/exper"
	"github.com/cogradio/crn/internal/games"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/sim"
)

// benchExperiment runs one registered experiment in quick mode per
// iteration. The measured time is the full sweep including baselines.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exper.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(exper.Config{Seed: int64(i + 1), Trials: 3, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1CogcastScalingN(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2CogcastScalingC(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3BroadcastVsRendezvous(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4CogcompScaling(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5AggregationVsRendezvous(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6HittingGameLowerBound(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7ReductionPlayer(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8GlobalLabelLB(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9HoppingTogether(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10DynamicChannels(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11JammingResistance(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12BackoffResolution(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13EpidemicStages(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14MessageOverhead(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15AdversarialDynamic(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16CollisionModels(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17KappaThreshold(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkE18GossipExtension(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19RendezvousBaseline(b *testing.B)     { benchExperiment(b, "E19") }
func BenchmarkE20FaultRobustness(b *testing.B)        { benchExperiment(b, "E20") }
func BenchmarkE21MediumUtilization(b *testing.B)      { benchExperiment(b, "E21") }
func BenchmarkE22PrimaryUserSpectrum(b *testing.B)    { benchExperiment(b, "E22") }
func BenchmarkE23AggregationLowerBound(b *testing.B)  { benchExperiment(b, "E23") }
func BenchmarkE24BackoffCost(b *testing.B)            { benchExperiment(b, "E24") }
func BenchmarkE25AggregationSessions(b *testing.B)    { benchExperiment(b, "E25") }
func BenchmarkE26CrashRestartRecovery(b *testing.B)   { benchExperiment(b, "E26") }
func BenchmarkE27RecoveryOverhead(b *testing.B)       { benchExperiment(b, "E27") }
func BenchmarkE28ScaleSweep(b *testing.B)             { benchExperiment(b, "E28") }
func BenchmarkE29EventDrivenScale(b *testing.B)       { benchExperiment(b, "E29") }
func BenchmarkE30AdversaryTournament(b *testing.B)    { benchExperiment(b, "E30") }

// --- Substrate micro-benchmarks ------------------------------------------------

// BenchmarkEngineSlot measures the cost of one simulated slot with 256
// COGCAST nodes in steady state (all informed, all broadcasting).
func BenchmarkEngineSlot(b *testing.B) {
	const n, c = 256, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		b.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	eng, err := sim.NewEngine(asn, protos, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSlot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSlotLarge measures one steady-state slot at n=10⁵ — the
// scale regime E28 sweeps — serial and at several shard counts. On a
// multi-core machine the sharded variants should approach a per-core
// speedup of phase A (the protocol scan dominates at this size); on one
// core they pin that sharding costs nearly nothing. All variants are warm:
// scratch, shard accumulators and goroutine bodies are built before the
// timer starts.
func BenchmarkEngineSlotLarge(b *testing.B) {
	const n, c = 100_000, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		b.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := sim.NewEngine(asn, protos, 1, sim.WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 4; i++ { // warm scratch before measuring
				if err := eng.RunSlot(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.RunSlot(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodesteps/s")
		})
	}
}

// censusNode mimics COGCOMP's phase-2 access pattern, the workload whose
// dense scan is the Θ(n²) census wall: node i broadcasts in the slots where
// slot%n == i and sleeps through the other n−1, so exactly one node (plus
// the previous slot's broadcaster, stepping once more to re-park) is awake
// in any slot.
type censusNode struct {
	id, n int
}

func (cn *censusNode) Step(slot int) sim.Action {
	turn := slot % cn.n
	if turn == cn.id {
		return sim.Broadcast(0, cn.id)
	}
	return sim.Sleep((cn.id-turn+cn.n)%cn.n - 1)
}

func (cn *censusNode) Deliver(int, sim.Event) {}
func (cn *censusNode) Done() bool             { return false }

// BenchmarkEngineSlotSparse measures the event-driven engine on the
// dormancy-heavy workload it exists for: the census round-robin above, where
// dense stepping scans all n nodes every slot while sparse stepping pops a
// couple of wakes off the queue. The per-slot gap between the two sub-
// benchmarks is the Θ(n) census factor itself; both are warm, and the
// sparse variant must stay alloc-free (pinned by TestRunSlotSparseAllocFree).
func BenchmarkEngineSlotSparse(b *testing.B) {
	const n, c = 100_000, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"dense", "sparse"} {
		b.Run(mode, func(b *testing.B) {
			var opts []sim.Option
			if mode == "sparse" {
				opts = append(opts, sim.WithSparse())
			}
			protos := make([]sim.Protocol, n)
			for i := range protos {
				protos[i] = &censusNode{id: i, n: n}
			}
			eng, err := sim.NewEngine(asn, protos, 1, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 4; i++ { // warm scratch and the wake-queue
				if err := eng.RunSlot(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.RunSlot(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}

// BenchmarkEngineSlotObserved is BenchmarkEngineSlot with a metrics
// collector attached: the observer path reuses the engine's outcome
// scratch, so the only extra cost should be the collector's own counters.
func BenchmarkEngineSlotObserved(b *testing.B) {
	const n, c = 256, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		b.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	eng, err := sim.NewEngine(asn, protos, 1, sim.WithObserver(&metrics.Collector{}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSlot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSlotAllDelivered measures the same steady-state slot under
// the footnote-3 all-delivered collision model (every listener hears a
// uniformly chosen message instead of one winner per channel).
func BenchmarkEngineSlotAllDelivered(b *testing.B) {
	const n, c = 256, 16
	asn, err := assign.SharedCore(n, c, 4, 48, assign.LocalLabels, 1)
	if err != nil {
		b.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), true, "m", 1)
	}
	eng, err := sim.NewEngine(asn, protos, 1, sim.WithCollisionModel(sim.AllDelivered))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunSlot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCogcastComplete measures a full broadcast to completion at
// several network sizes.
func BenchmarkCogcastComplete(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			asn, err := assign.SharedCore(n, 16, 4, 48, assign.LocalLabels, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var slots int
			for i := 0; i < b.N; i++ {
				res, err := cogcast.Run(asn, 0, "m", int64(i), cogcast.RunConfig{
					UntilAllInformed: true,
					MaxSlots:         64 * cogcast.SlotBound(n, 16, 4, cogcast.DefaultKappa),
				})
				if err != nil {
					b.Fatal(err)
				}
				slots += res.Slots
			}
			b.ReportMetric(float64(slots)/float64(b.N), "slots/op")
		})
	}
}

// BenchmarkCogcompComplete measures a full aggregation to completion.
func BenchmarkCogcompComplete(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			asn, err := assign.SharedCore(n, 8, 2, 24, assign.LocalLabels, 1)
			if err != nil {
				b.Fatal(err)
			}
			inputs := make([]int64, n)
			for i := range inputs {
				inputs[i] = int64(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var slots int
			for i := 0; i < b.N; i++ {
				res, err := cogcomp.Run(asn, 0, inputs, int64(i), cogcomp.Config{Func: aggfunc.Sum{}})
				if err != nil {
					b.Fatal(err)
				}
				slots += res.TotalSlots
			}
			b.ReportMetric(float64(slots)/float64(b.N), "slots/op")
		})
	}
}

// BenchmarkBackoffResolve measures one abstracted collision resolution at
// the micro-slot level.
func BenchmarkBackoffResolve(b *testing.B) {
	for _, m := range []int{2, 64, 1024} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			var micro int
			for i := 0; i < b.N; i++ {
				res, err := backoff.Resolve(m, 1024, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				micro += res.MicroSlots
			}
			b.ReportMetric(float64(micro)/float64(b.N), "microslots/op")
		})
	}
}

// BenchmarkHittingGame measures reference-player games.
func BenchmarkHittingGame(b *testing.B) {
	const c, k = 32, 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := games.NewGame(c, k, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		g.Play(games.NewNonRepeatingPlayer(c, int64(i)), c*c)
	}
}

// BenchmarkPublicAPIBroadcast measures the facade end to end.
func BenchmarkPublicAPIBroadcast(b *testing.B) {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes: 128, ChannelsPerNode: 8, MinOverlap: 2,
		TotalChannels: 24, Topology: crn.SharedCore, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := net.Broadcast(crn.BroadcastOptions{
			Payload: "m", Seed: int64(i), RunToCompletion: true, MaxSlots: 10 * net.SlotBound(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("incomplete")
		}
	}
}
