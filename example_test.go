package crn_test

import (
	"fmt"
	"log"

	crn "github.com/cogradio/crn"
)

// The basic workflow: build a network, disseminate a message with COGCAST,
// aggregate data with COGCOMP.
func Example() {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes:           32,
		ChannelsPerNode: 8,
		MinOverlap:      2,
		TotalChannels:   24,
		Topology:        crn.SharedCore,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}

	b, err := net.Broadcast(crn.BroadcastOptions{
		Payload: "hello", Seed: 7, RunToCompletion: true, MaxSlots: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all informed:", b.AllInformed)

	inputs := make([]int64, net.Nodes())
	for i := range inputs {
		inputs[i] = int64(i)
	}
	a, err := net.Aggregate(inputs, crn.AggregateOptions{Func: "sum", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum:", a.Value)
	// Output:
	// all informed: true
	// sum: 496
}

// Aggregation functions beyond sum: the stats aggregate carries
// count/sum/min/max (and mean) in one constant-size message.
func ExampleNetwork_Aggregate() {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes: 16, ChannelsPerNode: 4, MinOverlap: 2,
		TotalChannels: 12, Topology: crn.SharedCore, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	inputs := []int64{5, 9, 2, 8, 7, 1, 6, 4, 3, 9, 2, 8, 5, 7, 1, 6}
	res, err := net.Aggregate(inputs, crn.AggregateOptions{Func: "stats", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Value.(crn.Stats)
	fmt.Printf("count=%d min=%d max=%d\n", st.Count, st.Min, st.Max)
	// Output:
	// count=16 min=1 max=9
}

// Jamming resistance per Theorem 18: an n-uniform adversary jamming kJam
// channels per device per slot leaves pairwise overlap c−2·kJam, and
// COGCAST runs unmodified.
func ExampleNewJammedNetwork() {
	net, err := crn.NewJammedNetwork(24, 12, 3, "random", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("guaranteed overlap:", net.MinOverlap())
	res, err := net.Broadcast(crn.BroadcastOptions{
		Payload: "sos", Seed: 5, RunToCompletion: true, MaxSlots: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivered despite jamming:", res.AllInformed)
	// Output:
	// guaranteed overlap: 6
	// delivered despite jamming: true
}

// Multi-source gossip: several rumors ride the same epidemic.
func ExampleNetwork_Gossip() {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes: 24, ChannelsPerNode: 6, MinOverlap: 2,
		TotalChannels: 18, Topology: crn.SharedCore, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Gossip([]crn.NodeID{0, 8, 16}, 6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("everyone knows all rumors:", res.Complete)
	// Output:
	// everyone knows all rumors: true
}
