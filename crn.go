// Package crn is a simulation library for communication in single-hop
// cognitive radio networks, reproducing "Efficient Communication in
// Cognitive Radio Networks" (Gilbert, Kuhn, Newport, Zheng — PODC 2015).
//
// The model: n nodes, C physical channels, each node holding c of them,
// every pair of nodes overlapping on at least k channels. Time is slotted;
// per slot a node tunes to one channel and broadcasts or listens; when
// several nodes broadcast on a channel one uniformly chosen message is
// delivered (a backoff layer the paper abstracts away — see the E12
// experiment for its cost).
//
// The package exposes the paper's two protocols:
//
//   - Broadcast (COGCAST): epidemic local broadcast in
//     O((c/k)·max{1,c/n}·lg n) slots w.h.p.
//   - Aggregate (COGCOMP): data aggregation over the broadcast's implicit
//     spanning tree in O((c/k)·max{1,c/n}·lg n + n) slots w.h.p.
//
// plus the baselines the paper compares against (rendezvous broadcast,
// rendezvous aggregation, global-label lockstep scanning) and a jammed
// multi-channel network adapter (Theorem 18). Everything is deterministic
// given a seed.
//
// Quick start:
//
//	net, err := crn.NewNetwork(crn.Spec{
//		Nodes: 64, ChannelsPerNode: 8, MinOverlap: 2,
//		TotalChannels: 24, Topology: crn.SharedCore, Seed: 1,
//	})
//	...
//	res, err := net.Broadcast(crn.BroadcastOptions{Payload: "hello", Seed: 1})
//	fmt.Println(res.Slots, res.AllInformed)
package crn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/cogradio/crn/internal/adversary"
	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/jamming"
	"github.com/cogradio/crn/internal/metrics"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
	"github.com/cogradio/crn/internal/tree"
)

// NodeID identifies a node, 0..n-1.
type NodeID = int

// None marks "no node" in parent slices (the source's parent, uninformed
// nodes).
const None NodeID = -1

// Topology selects how channel sets are generated.
type Topology int

// Topologies. See DESIGN.md for which parts of the paper's analysis each
// exercises.
const (
	// FullOverlap: all nodes share the same c channels (C = c, k = c).
	FullOverlap Topology = iota + 1
	// Partitioned: k channels shared by everyone, the rest private per
	// node (the Theorem 16 lower-bound construction; C = k + n(c−k)).
	Partitioned
	// SharedCore: k shared channels plus uniformly drawn extras from a
	// pool of TotalChannels (the generic topology; overlaps >= k).
	SharedCore
	// RandomPool: every set drawn uniformly from TotalChannels, rejected
	// until pairwise overlap >= k.
	RandomPool
	// PairwiseDedicated: every pair of nodes shares k channels dedicated
	// to that pair (the "spread overlap" extreme of Claim 2; needs
	// c >= k(n−1)).
	PairwiseDedicated
)

// Labels selects the channel-label model.
type Labels int

// Label models.
const (
	// LocalLabels (the paper's default): each node names its channels in a
	// private arbitrary order.
	LocalLabels Labels = iota
	// GlobalLabels: all nodes use a consistent numbering; required by the
	// HoppingTogether baseline.
	GlobalLabels
)

// Spec describes a network to build.
type Spec struct {
	// Nodes is n.
	Nodes int
	// ChannelsPerNode is c.
	ChannelsPerNode int
	// MinOverlap is k.
	MinOverlap int
	// TotalChannels is C; required by SharedCore and RandomPool, derived
	// for the other topologies.
	TotalChannels int
	// Topology selects the generator. Zero value is invalid; pick one.
	Topology Topology
	// Labels selects the label model (default LocalLabels).
	Labels Labels
	// Dynamic re-draws channel sets every slot while preserving MinOverlap
	// (SharedCore semantics). Broadcast supports dynamic networks;
	// Aggregate requires a static one.
	Dynamic bool
	// FlipSlots re-draws channel sets at exactly the listed slots (strictly
	// increasing, positive) while preserving MinOverlap — SharedCore
	// semantics with operator-driven reassignment events instead of
	// Dynamic's per-slot churn. Requires Topology SharedCore, local labels,
	// and Dynamic false. The network counts as dynamic: Broadcast supports
	// it, Aggregate does not.
	FlipSlots []int
	// Seed determines the generated assignment.
	Seed int64
}

// Network is an immutable network instance protocols run over.
type Network struct {
	asn     sim.Assignment
	dynamic bool
	adv     *adversary.Driver
}

// NewNetwork builds a network from a Spec.
func NewNetwork(spec Spec) (*Network, error) {
	model := assign.LocalLabels
	if spec.Labels == GlobalLabels {
		model = assign.GlobalLabels
	}
	if spec.Dynamic {
		if len(spec.FlipSlots) > 0 {
			return nil, errors.New("crn: Dynamic re-draws every slot already; drop FlipSlots")
		}
		if spec.Topology != SharedCore {
			return nil, errors.New("crn: dynamic networks use SharedCore semantics; set Topology: SharedCore")
		}
		if spec.Labels == GlobalLabels {
			return nil, errors.New("crn: dynamic networks re-draw sets per slot and only support local labels")
		}
		asn, err := assign.NewDynamic(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, spec.TotalChannels, spec.Seed)
		if err != nil {
			return nil, err
		}
		return &Network{asn: asn, dynamic: true}, nil
	}
	if len(spec.FlipSlots) > 0 {
		if spec.Topology != SharedCore {
			return nil, errors.New("crn: flipping networks use SharedCore semantics; set Topology: SharedCore")
		}
		if spec.Labels == GlobalLabels {
			return nil, errors.New("crn: flipping networks re-draw sets at flip slots and only support local labels")
		}
		asn, err := assign.NewFlipping(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, spec.TotalChannels, spec.Seed, spec.FlipSlots)
		if err != nil {
			return nil, err
		}
		return &Network{asn: asn, dynamic: true}, nil
	}
	var (
		asn sim.Assignment
		err error
	)
	switch spec.Topology {
	case FullOverlap:
		asn, err = assign.FullOverlap(spec.Nodes, spec.ChannelsPerNode, model, spec.Seed)
	case Partitioned:
		asn, err = assign.Partitioned(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, model, spec.Seed)
	case SharedCore:
		asn, err = assign.SharedCore(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, spec.TotalChannels, model, spec.Seed)
	case RandomPool:
		asn, err = assign.RandomPool(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, spec.TotalChannels, model, spec.Seed)
	case PairwiseDedicated:
		asn, err = assign.PairwiseDedicated(spec.Nodes, spec.ChannelsPerNode, spec.MinOverlap, model, spec.Seed)
	default:
		return nil, fmt.Errorf("crn: unknown topology %d", spec.Topology)
	}
	if err != nil {
		return nil, err
	}
	return &Network{asn: asn}, nil
}

// NewJammedNetwork builds the Theorem 18 reduction: a classic n-node,
// c-channel network under an n-uniform adversary that jams up to kJam < c/2
// channels per node per slot. strategy is one of "none", "random", "sweep",
// "block" (a sweeping jammer that dwells on one budget-sized channel block
// at a time), or "split". The result behaves like a dynamic cognitive radio
// network with pairwise overlap at least c−2·kJam; Broadcast runs over it
// unmodified.
func NewJammedNetwork(nodes, channels, kJam int, strategy string, seed int64) (*Network, error) {
	jam, err := newJammer(strategy, channels, kJam, seed)
	if err != nil {
		return nil, err
	}
	asn, err := jamming.NewAssignment(nodes, channels, kJam, jam, seed)
	if err != nil {
		return nil, err
	}
	return &Network{asn: asn, dynamic: true}, nil
}

// newJammer maps a strategy name to a jamming adversary with the given
// per-node budget.
func newJammer(strategy string, channels, kJam int, seed int64) (jamming.Jammer, error) {
	switch strategy {
	case "none":
		return jamming.NoJammer{}, nil
	case "random":
		return jamming.NewRandomJammer(channels, kJam, seed), nil
	case "sweep":
		return jamming.NewSweepJammer(channels, kJam), nil
	case "block":
		return jamming.NewBlockSweepJammer(channels, kJam, 8), nil
	case "split":
		return jamming.NewSplitJammer(channels, kJam, 4), nil
	default:
		return nil, fmt.Errorf("crn: unknown jammer strategy %q (want none, random, sweep, block or split)", strategy)
	}
}

// AdversaryBudget bounds a reactive adversary's energy: PerSlot caps the
// actions scheduled in any one slot, Total is the whole-run reserve (one
// unit per jammed channel per slot, one unit per node-slot held down).
// See DESIGN.md "Adversaries and tournaments".
type AdversaryBudget struct {
	PerSlot int
	Total   int
}

// DefaultAdversaryPerSlot is the per-slot action cap used when an
// AdversaryBudget leaves PerSlot zero but has energy to spend.
const DefaultAdversaryPerSlot = 2

// AdversaryReport is the budget ledger of a run that faced a reactive
// adversary, copied into the result.
type AdversaryReport struct {
	// Strategy is the adversary's name.
	Strategy string
	// PerSlot and Total echo the budget.
	PerSlot, Total int
	// Spent is the energy charged; JamSpent and CrashSpent split it by
	// weapon.
	Spent, JamSpent, CrashSpent int
	// ExhaustedAt is the slot the reserve hit zero, or -1.
	ExhaustedAt int
}

// advReport copies a driver's ledger into the public report form.
func advReport(drv *adversary.Driver) *AdversaryReport {
	led := drv.Ledger()
	return &AdversaryReport{
		Strategy:    drv.Name(),
		PerSlot:     led.PerSlot,
		Total:       led.Total,
		Spent:       led.Spent,
		JamSpent:    led.JamSpent,
		CrashSpent:  led.CrashSpent,
		ExhaustedAt: led.ExhaustedAt,
	}
}

// NewReactiveJammedNetwork builds the Theorem 18 reduction under a
// *reactive* adversary (package adversary): a strategy that observes every
// slot's channel outcomes and jams up to budget.PerSlot channels next
// slot, spending from budget.Total. Strategies: "none", "busiest",
// "follower", "hunter" (crash-capable strategies like "crasher" have no
// jamming interpretation and are rejected). The per-slot cap doubles as
// the reduction's kJam, so it must stay below channels/2 and the overlap
// guarantee is channels − 2·PerSlot.
//
// A "none" strategy or a zero budget builds the plain no-jammer control
// network — byte-for-byte, so zero-energy runs are their own control arm.
func NewReactiveJammedNetwork(nodes, channels int, strategy string, budget AdversaryBudget, seed int64) (*Network, error) {
	strat, err := adversary.New(strategy)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	if strategy != "none" && !adversary.CanJam(strategy) {
		return nil, fmt.Errorf("crn: adversary %q cannot jam; reactive jammed networks take none, busiest, follower or hunter", strategy)
	}
	if budget.PerSlot == 0 && budget.Total > 0 {
		budget.PerSlot = DefaultAdversaryPerSlot
	}
	if strategy == "none" || budget.Total <= 0 || budget.PerSlot <= 0 {
		return NewJammedNetwork(nodes, channels, 0, "none", seed)
	}
	drv, err := adversary.NewDriver(strat, nodes, channels, adversary.Budget{PerSlot: budget.PerSlot, Total: budget.Total}, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	drv.EnableJam(budget.PerSlot)
	asn, err := jamming.NewAssignment(nodes, channels, budget.PerSlot, drv, seed)
	if err != nil {
		return nil, err
	}
	return &Network{asn: asn, dynamic: true, adv: drv}, nil
}

// JamPhase is one segment of a phase-scheduled jamming adversary: from
// FromSlot on, the adversary plays Strategy with a per-node budget of
// Budget jammed channels per slot.
type JamPhase struct {
	FromSlot int
	Strategy string
	Budget   int
}

// NewJammedNetworkPhases builds the Theorem 18 reduction under an adversary
// that switches strategies at pre-declared slots (the scenario DSL's
// "jam-switch" events): phase i's strategy and budget apply from its
// FromSlot until the next phase starts. Phases must start at slot 0 and
// have strictly increasing FromSlots; each phase is still oblivious, so
// the whole adversary stays deterministic and runs reproducible. The
// reduction's overlap guarantee uses the largest budget of any phase
// (which must stay below channels/2).
func NewJammedNetworkPhases(nodes, channels int, phases []JamPhase, seed int64) (*Network, error) {
	if len(phases) == 0 {
		return nil, errors.New("crn: jammed network needs at least one phase")
	}
	maxBudget := 0
	sw := make([]jamming.SwitchPhase, len(phases))
	for i, p := range phases {
		jam, err := newJammer(p.Strategy, channels, p.Budget, seed)
		if err != nil {
			return nil, err
		}
		if p.Budget > maxBudget {
			maxBudget = p.Budget
		}
		sw[i] = jamming.SwitchPhase{From: p.FromSlot, Jammer: jam}
	}
	var jam jamming.Jammer
	if len(sw) == 1 {
		// A single phase is exactly NewJammedNetwork; skip the switcher so
		// the two constructors stay byte-identical.
		jam = sw[0].Jammer
	} else {
		var err error
		jam, err = jamming.NewSwitcher(sw...)
		if err != nil {
			return nil, err
		}
	}
	asn, err := jamming.NewAssignment(nodes, channels, maxBudget, jam, seed)
	if err != nil {
		return nil, err
	}
	return &Network{asn: asn, dynamic: true}, nil
}

// Nodes returns n.
func (nw *Network) Nodes() int { return nw.asn.Nodes() }

// ChannelsPerNode returns c.
func (nw *Network) ChannelsPerNode() int { return nw.asn.PerNode() }

// MinOverlap returns k.
func (nw *Network) MinOverlap() int { return nw.asn.MinOverlap() }

// TotalChannels returns C.
func (nw *Network) TotalChannels() int { return nw.asn.Channels() }

// Dynamic reports whether channel sets change per slot.
func (nw *Network) Dynamic() bool { return nw.dynamic }

// SlotBound returns the paper's COGCAST run-length
// κ·(c/k)·max{1,c/n}·lg n for this network (κ = kappa; pass 0 for the
// library default).
func (nw *Network) SlotBound(kappa float64) int {
	if kappa == 0 {
		kappa = cogcast.DefaultKappa
	}
	return cogcast.SlotBound(nw.Nodes(), nw.ChannelsPerNode(), nw.MinOverlap(), kappa)
}

// BroadcastOptions configures a Broadcast run.
type BroadcastOptions struct {
	// Source is the initiating node (default 0).
	Source NodeID
	// Payload is the message to disseminate.
	Payload any
	// Seed determines all protocol randomness.
	Seed int64
	// MaxSlots bounds the run; zero means the theoretical SlotBound.
	MaxSlots int
	// RunToCompletion stops as soon as every node is informed, measuring
	// completion time, rather than running the fixed theoretical horizon.
	RunToCompletion bool
	// Trajectory records the informed count after every slot.
	Trajectory bool
	// CollectMetrics requests medium statistics (busy channels, collision
	// and delivery rates) in the result.
	CollectMetrics bool
	// Trace, when non-nil, streams a structured JSONL event trace of the
	// run to the writer — per-slot channel outcomes, epidemic progress,
	// per-node informed events, and (on jammed networks) per-slot jamming
	// injections. The schema is documented in TRACE.md. Tracing does not
	// change the run's results. Buffer the writer for large runs.
	Trace io.Writer
	// Check runs the invariant oracle alongside the protocol: the
	// assignment's overlap contract, every slot's collision resolution,
	// and the resulting distribution tree are independently re-verified,
	// and any violation fails the run. Results are unchanged; runs are
	// slower. Zero cost when false.
	Check bool
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines, speeding up very large static networks on multi-core
	// machines. Results are byte-identical at any value — shard results
	// merge in node order and tie-break draws stay serial — and dynamic or
	// jammed networks silently run serially. 0 or 1 means serial.
	Shards int
	// Sparse runs the engine in event-driven stepping mode: nodes that
	// declare themselves dormant are skipped instead of scanned every slot,
	// so a slot costs O(awake + deliveries) instead of Θ(n). Results are
	// byte-identical at any setting; runs with Trace, Check or
	// CollectMetrics attached, and dynamic or jammed networks, silently
	// step densely.
	Sparse bool
	// Context, when non-nil, can interrupt the run. Cancellation is
	// observed at slot boundaries and consumes no protocol randomness, so
	// a run that completes is byte-identical to the same run without a
	// context. An interrupted run returns an *InterruptedError wrapping
	// ErrCanceled or ErrDeadlineExceeded and carrying the count of fully
	// executed slots.
	Context context.Context
	// Deadline, when positive, bounds the run's wall-clock time by
	// wrapping Context (or a background context) with a timeout.
	Deadline time.Duration
}

// BroadcastResult reports a Broadcast run.
type BroadcastResult struct {
	// Slots executed.
	Slots int
	// AllInformed reports whether every node holds the message.
	AllInformed bool
	// Parents is the implicit distribution tree: Parents[v] is the node
	// that informed v (None for the source and uninformed nodes).
	Parents []NodeID
	// InformedSlots[v] is when v was informed (-1 for source/uninformed).
	InformedSlots []int
	// Trajectory (if requested) is the informed count after each slot.
	Trajectory []int
	// TreeHeight is the distribution tree's height (0 if no tree).
	TreeHeight int
	// Metrics carries medium statistics when requested via CollectMetrics.
	Metrics *MediumMetrics
	// Adversary is the budget ledger when the network was built by
	// NewReactiveJammedNetwork with an active adversary; nil otherwise.
	Adversary *AdversaryReport
}

// MediumMetrics summarizes how a run used the radio medium.
type MediumMetrics struct {
	// Slots is the number of slots the statistics cover.
	Slots int
	// BusyChannelsPerSlot is the mean number of channels carrying traffic.
	BusyChannelsPerSlot float64
	// BroadcastsPerSlot is the mean number of transmissions per slot.
	BroadcastsPerSlot float64
	// CollisionRate is the fraction of busy channels with 2+ broadcasters.
	CollisionRate float64
	// DeliveryRate is the fraction of listens that received a message.
	DeliveryRate float64
}

// Broadcast runs COGCAST over the network.
func (nw *Network) Broadcast(opts BroadcastOptions) (*BroadcastResult, error) {
	ctx, cancel := interruptContext(opts.Context, opts.Deadline)
	defer cancel()
	cfg := cogcast.RunConfig{
		MaxSlots:         opts.MaxSlots,
		Trajectory:       opts.Trajectory,
		UntilAllInformed: opts.RunToCompletion,
		Check:            opts.Check,
		Shards:           opts.Shards,
		Sparse:           opts.Sparse,
		Context:          ctx,
	}
	var collector *metrics.Collector
	if opts.CollectMetrics {
		collector = &metrics.Collector{}
		cfg.Observer = collector
	}
	if nw.adv != nil {
		// The reactive adversary closes its loop through the observer
		// hook; re-arm its budget and plan for this run.
		nw.adv.Reset()
		cfg.Observer = sim.Tee(cfg.Observer, nw.adv)
	}
	var sink *trace.JSONL
	if opts.Trace != nil {
		sink = nw.newTrace(opts.Trace, "cogcast", opts.Seed, cfg.Collisions)
		cfg.Trace = sink
		defer nw.detachTrace()
	}
	res, err := cogcast.Run(nw.asn, sim.NodeID(opts.Source), opts.Payload, opts.Seed, cfg)
	if err != nil {
		return nil, finishInterrupted(sink, err)
	}
	if sink != nil {
		sink.Finish()
		if terr := sink.Err(); terr != nil {
			return nil, terr
		}
	}
	out := &BroadcastResult{
		Slots:         res.Slots,
		AllInformed:   res.AllInformed,
		Parents:       make([]NodeID, len(res.Parents)),
		InformedSlots: res.InformedSlots,
		Trajectory:    res.Trajectory,
	}
	for i, p := range res.Parents {
		out.Parents[i] = NodeID(p)
	}
	if tr, terr := tree.New(sim.NodeID(opts.Source), res.Parents); terr == nil {
		out.TreeHeight = tr.Height()
	}
	if collector != nil {
		m := collector.Snapshot()
		out.Metrics = &MediumMetrics{
			Slots:               m.Slots,
			BusyChannelsPerSlot: m.BusyChannelsPerSlot,
			BroadcastsPerSlot:   m.BroadcastsPerSlot,
			CollisionRate:       m.CollisionRate,
			DeliveryRate:        m.DeliveryRate,
		}
	}
	if nw.adv != nil {
		out.Adversary = advReport(nw.adv)
	}
	return out, nil
}

// newTrace builds the JSONL sink for a traced run: header metadata from
// the network, plus — when the network is the Theorem 18 jamming
// reduction — a hookup so the assignment reports its per-slot injections
// into the same stream. detachTrace undoes the hookup after the run.
func (nw *Network) newTrace(w io.Writer, protocol string, seed int64, collisions sim.CollisionModel) *trace.JSONL {
	sink := trace.NewJSONL(w)
	sink.SetMeta(trace.Meta{
		Protocol:   protocol,
		Nodes:      nw.Nodes(),
		PerNode:    nw.ChannelsPerNode(),
		MinOverlap: nw.MinOverlap(),
		Channels:   nw.TotalChannels(),
		Seed:       seed,
		Collisions: collisions.String(),
	})
	if ja, ok := nw.asn.(*jamming.Assignment); ok {
		ja.SetTrace(sink)
	}
	if nw.adv != nil {
		nw.adv.SetTrace(sink)
	}
	return sink
}

func (nw *Network) detachTrace() {
	if ja, ok := nw.asn.(*jamming.Assignment); ok {
		ja.SetTrace(nil)
	}
	if nw.adv != nil {
		nw.adv.SetTrace(nil)
	}
}

// AggregateOptions configures an Aggregate run.
type AggregateOptions struct {
	// Source is the node that ends up holding the aggregate (default 0).
	Source NodeID
	// Func selects the aggregate: "sum" (default), "count", "min", "max",
	// "stats", or "collect".
	Func string
	// Seed determines all protocol randomness.
	Seed int64
	// Kappa scales phase one's length (0 = library default).
	Kappa float64
	// MaxSlots bounds the run (0 = a budget above the Theorem 10 bound).
	MaxSlots int
	// Trace, when non-nil, streams a structured JSONL event trace of the
	// run to the writer — per-slot channel outcomes, phase transitions,
	// and the final cluster census. The schema is documented in TRACE.md.
	// Tracing does not change the run's results.
	Trace io.Writer
	// Check runs the invariant oracle alongside the protocol: assignment
	// contract, per-slot collision resolution, distribution tree, cluster
	// census, and the aggregate against directly-computed ground truth.
	// Any violation fails the run. Zero cost when false.
	Check bool
	// Recover runs the aggregation under the crash-restart recovery
	// supervisor: the four COGCOMP phases become checkpointed epochs that
	// are re-executed (with exponential backoff, up to MaxRetries times)
	// when crashed nodes leave them incomplete, mediators are re-elected
	// when they die, and when the retry budget runs out the run degrades
	// to an explicit partial aggregate instead of stalling or silently
	// corrupting. Fault-free recovered runs are byte-identical to the
	// classic runner. See DESIGN.md §7.
	Recover bool
	// OutageRate, with Recover set, injects random crash-restart outages:
	// each unprotected node independently goes down with this per-slot
	// probability (the source is protected). Zero injects no faults.
	OutageRate float64
	// OutageDuration is the length in slots of each injected outage
	// (default 10).
	OutageDuration int
	// MaxRetries bounds per-epoch re-executions before the run degrades
	// (0 = library default).
	MaxRetries int
	// Faults, with Recover set, injects additional timed fault elements on
	// top of OutageRate's whole-run churn: each FaultSpec contributes one
	// deterministic crash-restart schedule and a node is down whenever any
	// element says so. This is the programmatic form of the scenario DSL's
	// event schedule (see SCENARIOS.md).
	Faults []FaultSpec
	// Adversary, with Recover set, pits the supervised run against a
	// reactive crash adversary (package adversary): the named strategy
	// observes every slot's channel outcomes and decides which nodes to
	// hold down next slot, bounded by AdversaryEnergy. Strategies with a
	// crash interpretation: "none", "hunter", "crasher", "oblivious".
	// The source is protected. Empty means no adversary.
	Adversary string
	// AdversaryEnergy is the adversary's total energy reserve (one unit
	// per node-slot held down). Zero disables the adversary entirely —
	// the run is byte-for-byte the control.
	AdversaryEnergy int
	// AdversaryPerSlot caps nodes held down per slot (0 = the
	// DefaultAdversaryPerSlot default).
	AdversaryPerSlot int
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines, speeding up very large networks on multi-core machines.
	// Results are byte-identical at any value; 0 or 1 means serial.
	Shards int
	// Sparse runs the engine in event-driven stepping mode: COGCOMP's
	// census window and phase-four holding patterns leave almost every
	// node dormant, and the sparse engine skips them instead of scanning
	// all n each slot. Results are byte-identical at any setting; runs
	// with Trace or Check attached, and recovered runs (Recover), silently
	// step densely.
	Sparse bool
	// Context, when non-nil, can interrupt the run. Cancellation is
	// observed at slot boundaries and consumes no protocol randomness, so
	// a run that completes is byte-identical to the same run without a
	// context. An interrupted run returns an *InterruptedError wrapping
	// ErrCanceled or ErrDeadlineExceeded and carrying the count of fully
	// executed slots.
	Context context.Context
	// Deadline, when positive, bounds the run's wall-clock time by
	// wrapping Context (or a background context) with a timeout.
	Deadline time.Duration
}

// FaultSpec declares one timed fault-injection element of a recovered run.
// Kind selects the fault process:
//
//   - "random": every unprotected node independently starts a
//     Duration-slot outage with per-slot probability Rate (the source is
//     protected).
//   - "correlated": blocks of Group consecutive node ids fail together
//     with per-slot probability Rate for Duration slots.
//   - "blackout": the listed Nodes are down for the whole window — the
//     deterministic worst case.
//
// From and Until clip the element to slots [From, Until); Until 0 leaves
// it open-ended ("blackout" requires an explicit Until).
type FaultSpec struct {
	Kind        string
	From, Until int
	Rate        float64
	Duration    int
	Group       int
	Nodes       []NodeID
}

// schedule builds the internal fault schedule for one spec.
func (f FaultSpec) schedule(seed int64, source NodeID) (faults.Schedule, error) {
	duration := f.Duration
	if duration == 0 {
		duration = 10
	}
	var (
		s   faults.Schedule
		err error
	)
	switch f.Kind {
	case "random":
		s, err = faults.NewRandomOutages(f.Rate, duration, seed, sim.NodeID(source))
	case "correlated":
		group := f.Group
		if group == 0 {
			group = 8
		}
		s, err = faults.NewCorrelatedOutages(f.Rate, duration, group, seed, sim.NodeID(source))
	case "blackout":
		if f.Until <= f.From {
			return nil, fmt.Errorf("crn: blackout fault needs a window with Until > From, got [%d, %d)", f.From, f.Until)
		}
		for _, id := range f.Nodes {
			if id == source {
				return nil, fmt.Errorf("crn: blackout fault must not include the source node %d", source)
			}
		}
		nodes := make([]sim.NodeID, len(f.Nodes))
		for i, id := range f.Nodes {
			nodes[i] = sim.NodeID(id)
		}
		return faults.NewBlackout(f.From, f.Until, nodes...)
	default:
		return nil, fmt.Errorf("crn: unknown fault kind %q (want random, correlated or blackout)", f.Kind)
	}
	if err != nil {
		return nil, err
	}
	if f.From > 0 || f.Until > 0 {
		return faults.NewClipped(s, f.From, f.Until)
	}
	return s, nil
}

// AggregateResult reports an Aggregate run.
type AggregateResult struct {
	// Value is the aggregate at the source: int64 for sum/count/min/max,
	// Stats for "stats", []Reading for "collect".
	Value any
	// Slots executed in total, and the per-phase breakdown.
	Slots                                              int
	Phase1Slots, Phase2Slots, Phase3Slots, Phase4Slots int
	// Parents is the distribution tree used.
	Parents []NodeID
	// MaxMessageSize is the largest value message sent, in abstract words.
	MaxMessageSize int
	// Degraded (recovered runs only) reports that the retry budget ran out
	// and Value aggregates only Contributors' inputs — an explicit partial
	// census, never a silent wrong answer.
	Degraded bool
	// Stalled (recovered runs only) reports that phase four stopped making
	// progress entirely; Value is unreliable and Contributors is nil.
	Stalled bool
	// Contributors (recovered runs only) lists the nodes whose inputs are
	// aggregated in Value, ascending.
	Contributors []NodeID
	// Retries, Reelections and Restarts (recovered runs only) count epoch
	// re-executions, mediator re-elections, and node crash-restart cycles.
	Retries, Reelections, Restarts int
	// Adversary is the budget ledger when the run faced an active
	// reactive adversary (AggregateOptions.Adversary); nil otherwise.
	Adversary *AdversaryReport
}

// Stats is the value of the "stats" aggregate.
type Stats struct {
	Count, Sum, Min, Max int64
	Mean                 float64
}

// Reading is one entry of the "collect" aggregate.
type Reading struct {
	Node  NodeID
	Value int64
}

// ErrIncomplete is returned by Aggregate when some nodes were never
// informed during phase one (the w.h.p. event failed), so the aggregate is
// missing inputs. Re-run with a larger Kappa.
var ErrIncomplete = cogcomp.ErrIncomplete

// Sentinels for interrupted runs: errors.Is(err, ErrCanceled) matches a run
// stopped by its Context, errors.Is(err, ErrDeadlineExceeded) one stopped by
// its Deadline (or a context deadline). The concrete error is always an
// *InterruptedError carrying the partial progress.
var (
	ErrCanceled         = errors.New("crn: run canceled")
	ErrDeadlineExceeded = errors.New("crn: deadline exceeded")
)

// InterruptedError reports a run stopped by its Context or Deadline at a
// slot boundary. The slots already executed are real, fully simulated
// slots; only the remainder of the run is missing.
type InterruptedError struct {
	// Slots is the count of fully executed slots before the interrupt.
	Slots int
	// Deadline reports whether a deadline (rather than a plain
	// cancellation) stopped the run.
	Deadline bool
	// sentinel is ErrCanceled or ErrDeadlineExceeded; cause the wrapped
	// engine error (which itself wraps context.Canceled or
	// context.DeadlineExceeded).
	sentinel, cause error
}

// Error reports the engine's deterministic interrupt message.
func (e *InterruptedError) Error() string { return e.cause.Error() }

// Unwrap exposes both the crn sentinel and the underlying engine error, so
// errors.Is works with ErrCanceled/ErrDeadlineExceeded as well as
// context.Canceled/context.DeadlineExceeded.
func (e *InterruptedError) Unwrap() []error { return []error{e.sentinel, e.cause} }

// interruptContext assembles a run's interrupt context from the Context
// and Deadline options. The returned cancel is never nil; callers must
// defer it (it releases the deadline timer).
func interruptContext(ctx context.Context, deadline time.Duration) (context.Context, context.CancelFunc) {
	if deadline <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, deadline)
}

// finishInterrupted converts an engine interrupt into the public typed
// error. When a trace sink is attached it records the interrupt as a
// "cancel" event and writes the end-of-stream marker, so a gracefully
// interrupted trace file stays parseable and self-declares completeness.
// Non-interrupt errors pass through untouched.
func finishInterrupted(sink *trace.JSONL, err error) error {
	var it *sim.Interrupted
	if !errors.As(err, &it) {
		return err
	}
	deadline := errors.Is(it.Cause, context.DeadlineExceeded)
	if sink != nil {
		sink.Emit(trace.CancelEvent(it.Slots, deadline))
		sink.Finish()
	}
	sentinel := ErrCanceled
	if deadline {
		sentinel = ErrDeadlineExceeded
	}
	return &InterruptedError{Slots: it.Slots, Deadline: deadline, sentinel: sentinel, cause: err}
}

// Aggregate runs COGCOMP over the network: inputs[v] is node v's datum, and
// the returned value is the aggregate of all inputs at the source. The
// network must be static (phases two to four revisit phase-one channels).
func (nw *Network) Aggregate(inputs []int64, opts AggregateOptions) (*AggregateResult, error) {
	if nw.dynamic {
		return nil, errors.New("crn: Aggregate requires a static network (COGCOMP revisits phase-one channels)")
	}
	name := opts.Func
	if name == "" {
		name = "sum"
	}
	f, err := aggfunc.ByName(name)
	if err != nil {
		return nil, err
	}
	ctx, cancel := interruptContext(opts.Context, opts.Deadline)
	defer cancel()
	var sink *trace.JSONL
	if opts.Trace != nil {
		sink = nw.newTrace(opts.Trace, "cogcomp", opts.Seed, sim.UniformWinner)
		defer nw.detachTrace()
	}
	if opts.Adversary != "" && !opts.Recover {
		return nil, errors.New("crn: Adversary needs Recover (the classic runner has no fault injection)")
	}
	if opts.Recover {
		return nw.aggregateRecovered(ctx, inputs, opts, f, sink)
	}
	cfg := cogcomp.Config{
		Kappa:    opts.Kappa,
		MaxSlots: opts.MaxSlots,
		Func:     f,
		Check:    opts.Check,
		Shards:   opts.Shards,
		Sparse:   opts.Sparse,
		Context:  ctx,
	}
	if sink != nil {
		cfg.Trace = sink
	}
	res, err := cogcomp.Run(nw.asn, sim.NodeID(opts.Source), inputs, opts.Seed, cfg)
	if err != nil {
		return nil, finishInterrupted(sink, err)
	}
	if sink != nil {
		sink.Finish()
		if terr := sink.Err(); terr != nil {
			return nil, terr
		}
	}
	out := &AggregateResult{
		Value:          exportValue(res.Value),
		Slots:          res.TotalSlots,
		Phase1Slots:    res.Phase1Slots,
		Phase2Slots:    res.Phase2Slots,
		Phase3Slots:    res.Phase3Slots,
		Phase4Slots:    res.Phase4Slots,
		Parents:        make([]NodeID, len(res.Parents)),
		MaxMessageSize: res.MaxMessageSize,
	}
	for i, p := range res.Parents {
		out.Parents[i] = NodeID(p)
	}
	return out, nil
}

// aggregateRecovered runs the recovery supervisor for Aggregate, with
// optional injected outages.
func (nw *Network) aggregateRecovered(ctx context.Context, inputs []int64, opts AggregateOptions, f aggfunc.Func, sink *trace.JSONL) (*AggregateResult, error) {
	cfg := recov.Config{
		Kappa:      opts.Kappa,
		MaxSlots:   opts.MaxSlots,
		Func:       f,
		MaxRetries: opts.MaxRetries,
		Check:      opts.Check,
		Shards:     opts.Shards,
		Context:    ctx,
	}
	if sink != nil {
		cfg.Trace = sink
	}
	var parts []faults.Schedule
	if opts.OutageRate > 0 {
		duration := opts.OutageDuration
		if duration == 0 {
			duration = 10
		}
		schedule, err := faults.NewRandomOutages(opts.OutageRate, duration, opts.Seed, sim.NodeID(opts.Source))
		if err != nil {
			return nil, err
		}
		parts = append(parts, schedule)
	}
	for _, f := range opts.Faults {
		s, err := f.schedule(opts.Seed, opts.Source)
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
	var drv *adversary.Driver
	if opts.Adversary != "" {
		strat, err := adversary.New(opts.Adversary)
		if err != nil {
			return nil, fmt.Errorf("crn: %w", err)
		}
		if opts.Adversary != "none" && !adversary.CanCrash(opts.Adversary) {
			return nil, fmt.Errorf("crn: adversary %q cannot crash nodes; recovered runs take none, hunter, crasher or oblivious", opts.Adversary)
		}
		perSlot := opts.AdversaryPerSlot
		if perSlot == 0 && opts.AdversaryEnergy > 0 {
			perSlot = DefaultAdversaryPerSlot
		}
		budget := adversary.Budget{PerSlot: perSlot, Total: opts.AdversaryEnergy}
		drv, err = adversary.NewDriver(strat, nw.Nodes(), nw.TotalChannels(), budget, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("crn: %w", err)
		}
		drv.EnableCrash(sim.NodeID(opts.Source))
		if drv.Active() {
			// An inert adversary (zero energy or the no-op control) is
			// not wired at all, keeping the run byte-for-byte the
			// control; an active one joins the fault schedule and closes
			// its loop through the observer hook.
			parts = append(parts, drv)
			cfg.Observer = drv
			if sink != nil {
				drv.SetTrace(sink)
			}
		}
	}
	if len(parts) > 0 {
		schedule, err := faults.Compose(parts...)
		if err != nil {
			return nil, err
		}
		cfg.Schedule = schedule
	}
	res, err := recov.Run(nw.asn, sim.NodeID(opts.Source), inputs, opts.Seed, cfg)
	if err != nil {
		return nil, finishInterrupted(sink, err)
	}
	if sink != nil {
		sink.Finish()
		if terr := sink.Err(); terr != nil {
			return nil, terr
		}
	}
	out := &AggregateResult{
		Value:          exportValue(res.Value),
		Slots:          res.TotalSlots,
		Phase1Slots:    res.Phase1Slots,
		Phase2Slots:    res.Phase2Slots,
		Phase3Slots:    res.Phase3Slots,
		Phase4Slots:    res.Phase4Slots,
		Parents:        make([]NodeID, len(res.Parents)),
		MaxMessageSize: res.MaxMessageSize,
		Degraded:       res.Degraded,
		Stalled:        res.Stalled,
		Retries:        res.Retries,
		Reelections:    res.Reelections,
		Restarts:       res.Restarts,
	}
	for i, p := range res.Parents {
		out.Parents[i] = NodeID(p)
	}
	if res.Contributors != nil {
		out.Contributors = make([]NodeID, len(res.Contributors))
		for i, id := range res.Contributors {
			out.Contributors[i] = NodeID(id)
		}
	}
	if drv != nil {
		out.Adversary = advReport(drv)
	}
	return out, nil
}

// exportValue converts internal aggregate values to public types.
func exportValue(v aggfunc.Value) any {
	switch x := v.(type) {
	case aggfunc.StatsValue:
		return Stats{Count: x.Count, Sum: x.Sum, Min: x.Min, Max: x.Max, Mean: x.Mean()}
	case []aggfunc.Entry:
		out := make([]Reading, len(x))
		for i, e := range x {
			out[i] = Reading{Node: NodeID(e.ID), Value: e.Input}
		}
		return out
	default:
		return v
	}
}

// SessionResult reports a multi-round aggregation session.
type SessionResult struct {
	// Values[r] is the aggregate for round r (same typing as
	// AggregateResult.Value).
	Values []any
	// Slots is the whole session's cost; SetupSlots the one-time phases
	// 1-3; RoundSlots the fixed per-round window.
	Slots, SetupSlots, RoundSlots int
}

// AggregateRounds runs a multi-round aggregation session: the distribution
// tree and coordination structures are built once, then each round of
// inputs (rounds[r][v] = node v's datum in round r) is converged over the
// same tree. This amortizes the Θ((c/k)·lg n + n) setup across the paper's
// periodic-snapshot use case. The network must be static.
func (nw *Network) AggregateRounds(rounds [][]int64, opts AggregateOptions) (*SessionResult, error) {
	if nw.dynamic {
		return nil, errors.New("crn: AggregateRounds requires a static network")
	}
	name := opts.Func
	if name == "" {
		name = "sum"
	}
	f, err := aggfunc.ByName(name)
	if err != nil {
		return nil, err
	}
	ctx, cancel := interruptContext(opts.Context, opts.Deadline)
	defer cancel()
	var arena cogcomp.Arena
	arena.SetCheck(opts.Check)
	arena.SetContext(ctx)
	res, err := arena.RunRounds(nw.asn, sim.NodeID(opts.Source), rounds, opts.Seed, cogcomp.SessionConfig{
		Kappa:  opts.Kappa,
		Func:   f,
		Shards: opts.Shards,
		Sparse: opts.Sparse,
	})
	if err != nil {
		return nil, finishInterrupted(nil, err)
	}
	out := &SessionResult{
		Values:     make([]any, len(res.Values)),
		Slots:      res.TotalSlots,
		SetupSlots: res.SetupSlots,
		RoundSlots: res.RoundSlots,
	}
	for i, v := range res.Values {
		out.Values[i] = exportValue(v)
	}
	return out, nil
}

// RendezvousBroadcast runs the paper's baseline broadcast (no relaying)
// until completion or maxSlots, returning the slot count and whether it
// completed.
func (nw *Network) RendezvousBroadcast(source NodeID, payload any, seed int64, maxSlots int) (int, bool, error) {
	res, err := baseline.RendezvousBroadcast(nw.asn, sim.NodeID(source), payload, seed, maxSlots)
	if err != nil {
		return 0, false, err
	}
	return res.Slots, res.AllInformed, nil
}

// RendezvousAggregate runs the baseline aggregation (every node shouts its
// datum at a hopping source) until the source heard everyone or maxSlots.
func (nw *Network) RendezvousAggregate(source NodeID, inputs []int64, seed int64, maxSlots int) (int, bool, error) {
	res, err := baseline.RendezvousAggregation(nw.asn, sim.NodeID(source), inputs, seed, maxSlots)
	if err != nil {
		return 0, false, err
	}
	return res.Slots, res.Complete, nil
}

// HoppingTogether runs the global-label lockstep-scan broadcast (Section 6
// discussion). The network must use GlobalLabels and be static.
func (nw *Network) HoppingTogether(source NodeID, payload any, seed int64, maxSlots int) (int, bool, error) {
	if nw.dynamic {
		return 0, false, errors.New("crn: HoppingTogether requires a static network")
	}
	res, err := baseline.HoppingTogether(nw.asn, sim.NodeID(source), payload, seed, maxSlots)
	if err != nil {
		return 0, false, err
	}
	return res.Slots, res.AllInformed, nil
}
