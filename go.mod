module github.com/cogradio/crn

go 1.22
