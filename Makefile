# Developer entry points. The tier-1 verification flow is:
#
#     make check        # build + vet + tests + race detector
#
# which is what CI (and reviewers) should run before merging.

GO ?= go

.PHONY: all build test race vet fmt-check check bench bench-engine baseline baseline-quick clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The trial runner executes experiment trials on a worker pool; the race
# detector is part of the standard flow, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean; prints the offenders.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

check: build vet fmt-check test race

# Full benchmark suite (one benchmark per experiment plus the substrate
# micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem -run NONE .

# Just the engine hot-loop benchmarks; BenchmarkEngineSlot must report
# 0 allocs/op (see also TestRunSlotAllocFree).
bench-engine:
	$(GO) test -bench='BenchmarkEngineSlot' -benchmem -run NONE .

# Regenerate the machine-readable experiment timing baselines. Serial trials
# (-parallel 1) make the allocation counts reproducible: one worker, one
# arena. BENCH_quick_baseline.json is the committed reference CI's smoke-bench
# job compares fresh quick runs against.
baseline:
	$(GO) run ./cmd/cogbench -parallel 1 -bench-out BENCH_baseline.json > /dev/null

baseline-quick:
	$(GO) run ./cmd/cogbench -quick -parallel 1 -bench-out BENCH_quick_baseline.json > /dev/null

clean:
	$(GO) clean ./...
