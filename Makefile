# Developer entry points. The tier-1 verification flow is:
#
#     make check        # build + vet + fmt + tests + race + scenario library
#
# which is what CI (and reviewers) should run before merging. The scenario
# library gate alone is `make scenario-check`.

GO ?= go

.PHONY: all build test race vet fmt-check scenario-check chaos check bench bench-engine baseline baseline-quick baseline-scale fuzz cover clean

# Per-target fuzzing budget for `make fuzz`.
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

# The trial runner executes experiment trials on a worker pool; the race
# detector is part of the standard flow, not an optional extra.
race:
	$(GO) test -race -timeout 10m ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean; prints the offenders.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Scenario library gate: every committed scenario must validate, and every
# run's postcondition assertions must hold (see SCENARIOS.md). The whole
# library executes in well under a second, so there is no quick subset —
# `run` covers all of scenarios/*.yaml.
scenario-check:
	$(GO) run ./cmd/cogsim validate scenarios/*.yaml
	$(GO) run ./cmd/cogsim run scenarios/*.yaml > /dev/null

# Resilience gate: the infra-chaos property suite (internal/chaos) plus the
# trial-pool tests, under the race detector. Both packages run a
# goroutine-leak gate around the whole test binary (chaos.VerifyNoLeaks), so
# an abandoned worker fails the run even when every assertion passed.
chaos:
	$(GO) test -race -timeout 10m ./internal/chaos ./internal/parallel

check: build vet fmt-check test race scenario-check

# Full benchmark suite (one benchmark per experiment plus the substrate
# micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem -run NONE .

# Just the engine hot-loop benchmarks (the pattern also matches the sharded
# and sparse variants); BenchmarkEngineSlot and BenchmarkEngineSlotSparse
# must report 0 allocs/op (see also TestRunSlotAllocFree and
# TestRunSlotSparseAllocFree).
bench-engine:
	$(GO) test -bench='BenchmarkEngineSlot' -benchmem -run NONE .

# Regenerate the machine-readable experiment timing baselines. Serial trials
# (-parallel 1) make the allocation counts reproducible: one worker, one
# arena. BENCH_quick_baseline.json is the committed reference CI's smoke-bench
# job compares fresh quick runs against.
baseline:
	$(GO) run ./cmd/cogbench -parallel 1 -bench-out BENCH_baseline.json > /dev/null

baseline-quick:
	$(GO) run ./cmd/cogbench -quick -parallel 1 -bench-out BENCH_quick_baseline.json > /dev/null

# Scale baseline: the E28 and E29 quick sweeps run with the sharded engine,
# recorded as the committed reference for CI's scale smoke. The sharded scan
# is the configuration E28 exists to protect and the event-driven wake-queue
# is E29's, so the baseline pins their allocation and bytes-per-node
# profiles; throughput fields are recorded and CI additionally holds E29's
# slots/sec within a generous factor of this file (a sparse engine that
# silently fell back to dense scanning is a throughput cliff, not an
# allocation change).
baseline-scale:
	$(GO) run ./cmd/cogbench -exp E28,E29 -quick -parallel 1 -shards 4 -bench-out BENCH_scale_baseline.json > /dev/null

# Run every native fuzz target for FUZZTIME each (go test allows one -fuzz
# pattern per package invocation). Seed corpora live under each package's
# testdata/fuzz/ and also run as plain tests in `make test`.
fuzz:
	$(GO) test -run NONE -fuzz FuzzBuilder -fuzztime $(FUZZTIME) ./internal/assign
	$(GO) test -run NONE -fuzz FuzzEngineSlot -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run NONE -fuzz FuzzRecovery -fuzztime $(FUZZTIME) ./internal/recover
	$(GO) test -run NONE -fuzz FuzzJammer -fuzztime $(FUZZTIME) ./internal/jamming

# Coverage gate: aggregate statement coverage across all packages must stay
# above the threshold (see TESTING.md). Writes cover.out for inspection
# with `go tool cover -html=cover.out`.
COVER_THRESHOLD ?= 80
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (threshold $(COVER_THRESHOLD)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_THRESHOLD))}" || \
		{ echo "coverage $$total% below threshold $(COVER_THRESHOLD)%"; exit 1; }

clean:
	$(GO) clean ./...
	rm -f cover.out
