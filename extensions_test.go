package crn_test

import (
	"testing"

	crn "github.com/cogradio/crn"
)

func TestGossipFacade(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	res, err := net.Gossip([]crn.NodeID{0, 11, 23}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("gossip incomplete after %d slots (min known %d)", res.Slots, res.MinKnown)
	}
	if res.MinKnown != 3 {
		t.Errorf("MinKnown = %d, want 3", res.MinKnown)
	}
}

func TestGossipFacadeValidation(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	if _, err := net.Gossip(nil, 1, 10); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := net.Gossip([]crn.NodeID{999}, 1, 10); err == nil {
		t.Error("bad source accepted")
	}
}

func TestRendezvousFacade(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	res, err := net.Rendezvous(3, 17, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("pair never met within automatic budget (%d slots)", res.Slots)
	}
	if res.Slots < 1 {
		t.Errorf("slots = %d", res.Slots)
	}
}

func TestRendezvousFacadeValidation(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	if _, err := net.Rendezvous(3, 3, 1, 10); err == nil {
		t.Error("self-rendezvous accepted")
	}
	if _, err := net.Rendezvous(-1, 3, 1, 10); err == nil {
		t.Error("negative node accepted")
	}
}

func TestGossipOverDynamicNetwork(t *testing.T) {
	spec := defaultSpec()
	spec.Dynamic = true
	net := mustNetwork(t, spec)
	res, err := net.Gossip([]crn.NodeID{0, 1}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("gossip over dynamic network incomplete")
	}
}

func TestPrimaryUserNetworkBroadcast(t *testing.T) {
	net, err := crn.NewPrimaryUserNetwork(crn.PrimaryUserSpec{
		Nodes: 24, Channels: 20, Pilots: 2,
		PBusy: 0.1, PFree: 0.3, MissProb: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Dynamic() {
		t.Error("PU network should report dynamic")
	}
	if net.MinOverlap() != 2 {
		t.Errorf("MinOverlap = %d, want the pilot band size", net.MinOverlap())
	}
	res, err := net.Broadcast(crn.BroadcastOptions{Payload: "b", Seed: 2, RunToCompletion: true, MaxSlots: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("broadcast over PU spectrum incomplete after %d slots", res.Slots)
	}
	if _, err := net.Aggregate(make([]int64, 24), crn.AggregateOptions{}); err == nil {
		t.Error("aggregate over PU network accepted")
	}
}

func TestPrimaryUserNetworkValidation(t *testing.T) {
	if _, err := crn.NewPrimaryUserNetwork(crn.PrimaryUserSpec{Nodes: 4, Channels: 8, Pilots: 0}); err == nil {
		t.Error("zero pilots accepted")
	}
}

func TestBroadcastMetrics(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	res, err := net.Broadcast(crn.BroadcastOptions{
		Payload: "m", Seed: 4, RunToCompletion: true, MaxSlots: 50000, CollectMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("metrics requested but missing")
	}
	if res.Metrics.BusyChannelsPerSlot <= 0 || res.Metrics.BroadcastsPerSlot <= 0 {
		t.Errorf("metrics = %+v", *res.Metrics)
	}
	// Not requested -> nil.
	res2, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 4, RunToCompletion: true, MaxSlots: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics != nil {
		t.Error("metrics present without request")
	}
}

func TestAggregateRoundsFacade(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	rounds := make([][]int64, 3)
	wants := make([]int64, 3)
	for r := range rounds {
		rounds[r] = make([]int64, net.Nodes())
		for i := range rounds[r] {
			rounds[r][i] = int64(r*100 + i)
			wants[r] += rounds[r][i]
		}
	}
	res, err := net.AggregateRounds(rounds, crn.AggregateOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("got %d values", len(res.Values))
	}
	for r, want := range wants {
		if res.Values[r] != want {
			t.Errorf("round %d: %v != %d", r, res.Values[r], want)
		}
	}
	if res.SetupSlots <= 0 || res.RoundSlots <= 0 || res.Slots <= res.SetupSlots {
		t.Errorf("accounting: %+v", res)
	}
}

func TestAggregateRoundsValidation(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	if _, err := net.AggregateRounds(nil, crn.AggregateOptions{}); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := net.AggregateRounds([][]int64{{1}}, crn.AggregateOptions{}); err == nil {
		t.Error("short round accepted")
	}
	if _, err := net.AggregateRounds(make([][]int64, 1), crn.AggregateOptions{Func: "median"}); err == nil {
		t.Error("unknown func accepted")
	}
	dspec := defaultSpec()
	dspec.Dynamic = true
	dnet := mustNetwork(t, dspec)
	rounds := [][]int64{make([]int64, dnet.Nodes())}
	if _, err := dnet.AggregateRounds(rounds, crn.AggregateOptions{}); err == nil {
		t.Error("dynamic network accepted")
	}
}
