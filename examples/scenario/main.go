// Scenario quickstart: declare a run as data instead of code. The same
// YAML a `cogsim run` invocation takes is parsed, validated and executed
// through internal/scenario — topology, protocol, a timed fault, and the
// postconditions the outcome must satisfy, all in one document. The full
// field reference is SCENARIOS.md; the committed library is scenarios/.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/cogradio/crn/internal/scenario"
)

// A recovered aggregation with a mid-run outage storm: nodes crash with
// probability 0.004 per slot during slots [100, 300), the supervisor
// retries epochs until every input is in, and the assertions demand an
// exact census with the exact sum.
const doc = `
name: quickstart-outage
description: recovered COGCOMP through a windowed outage storm
seed: 1
topology:
  nodes: 48
  channels_per_node: 8
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcomp
  aggregate: sum
recovery:
  enabled: true
events:
  - kind: random-outages
    at: 100
    until: 300
    rate: 0.004
assertions:
  - kind: exact-census
  - kind: value-equals
    value: 1128
`

func main() {
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s\n\n", sc.Name, sc.Description)

	// Run executes the protocol and then evaluates every assertion,
	// printing one verdict line each; a failed assertion returns an error
	// (cogsim run turns that into a non-zero exit).
	if err := sc.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Emit renders the canonical normalized form — every default
	// materialized, fields in schema order. Useful for normalizing
	// hand-written files (cogsim validate -canonical does the same).
	fmt.Printf("\ncanonical form:\n%s", sc.Emit())
}
