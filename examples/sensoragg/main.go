// Sensor aggregation: a field of sensors shares leftover TV-band spectrum
// and periodically reports environmental readings to a gateway. The paper's
// introduction motivates exactly this workload — "analyzing network
// condition snapshots to calculate a quality of service metric" — and
// COGCOMP computes such snapshot statistics in O((c/k)·lg n + n) slots.
//
// The example runs several reporting rounds, computes the full stats
// aggregate (count/sum/min/max/mean) each round, and contrasts the message
// overhead of associative aggregation with naive collect-everything.
package main

import (
	"fmt"
	"log"

	crn "github.com/cogradio/crn"
	"math/rand"
)

const (
	sensors    = 96
	channels   = 8
	minOverlap = 2
	spectrum   = 32
	gateway    = 0
	rounds     = 3
)

func main() {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes:           sensors,
		ChannelsPerNode: channels,
		MinOverlap:      minOverlap,
		TotalChannels:   spectrum,
		Topology:        crn.SharedCore,
		Seed:            2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d sensors, %d channels each out of %d-channel band\n\n",
		sensors, channels, spectrum)

	r := rand.New(rand.NewSource(11))
	for round := 0; round < rounds; round++ {
		// Simulated temperature readings in tenths of a degree.
		readings := make([]int64, sensors)
		for i := range readings {
			readings[i] = 180 + r.Int63n(120) // 18.0C .. 30.0C
		}

		res, err := net.Aggregate(readings, crn.AggregateOptions{
			Source: gateway,
			Func:   "stats",
			Seed:   int64(1000 + round),
		})
		if err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		st := res.Value.(crn.Stats)
		fmt.Printf("round %d: %d sensors reporting\n", round+1, st.Count)
		fmt.Printf("  temperature: mean %.1fC, min %.1fC, max %.1fC\n",
			st.Mean/10, float64(st.Min)/10, float64(st.Max)/10)
		fmt.Printf("  cost: %d slots (convergecast alone: %d), max message %d words\n\n",
			res.Slots, res.Phase4Slots, res.MaxMessageSize)
	}

	// Message-size comparison: the same round computed by shipping every
	// raw reading up the tree instead of merging partial aggregates.
	readings := make([]int64, sensors)
	for i := range readings {
		readings[i] = 200 + r.Int63n(80)
	}
	assoc, err := net.Aggregate(readings, crn.AggregateOptions{Source: gateway, Func: "stats", Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	collect, err := net.Aggregate(readings, crn.AggregateOptions{Source: gateway, Func: "collect", Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	all := collect.Value.([]crn.Reading)
	fmt.Printf("overhead comparison (Section 5 discussion):\n")
	fmt.Printf("  associative stats: largest message %d words\n", assoc.MaxMessageSize)
	fmt.Printf("  collect-all:       largest message %d words (carried %d raw readings)\n",
		collect.MaxMessageSize, len(all))
	fmt.Printf("  associative aggregation keeps messages constant-size at identical slot cost\n")
}
