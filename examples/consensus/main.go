// Consensus: the paper motivates data aggregation as a tool for "reaching
// consensus to maintain consistency". This example builds exactly that on
// the two primitives: every device holds a proposal (say, a candidate
// configuration version), a coordinator aggregates the minimum proposal
// with COGCOMP, then disseminates the decision back with COGCAST. Every
// device ends up deciding the same value, and the value is one that was
// actually proposed (agreement + validity).
package main

import (
	"fmt"
	"log"
	"math/rand"

	crn "github.com/cogradio/crn"
)

const (
	devices     = 56
	channels    = 8
	minOverlap  = 2
	spectrum    = 28
	coordinator = 0
)

func main() {
	net, err := crn.NewNetwork(crn.Spec{
		Nodes:           devices,
		ChannelsPerNode: channels,
		MinOverlap:      minOverlap,
		TotalChannels:   spectrum,
		Topology:        crn.SharedCore,
		Seed:            99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every device proposes a candidate value.
	r := rand.New(rand.NewSource(7))
	proposals := make([]int64, devices)
	for i := range proposals {
		proposals[i] = 1000 + r.Int63n(9000)
	}
	fmt.Printf("consensus among %d devices (coordinator: device %d)\n", devices, coordinator)
	fmt.Printf("proposals range over [%d, %d]\n\n", minOf(proposals), maxOf(proposals))

	// Round 1 — aggregate: the coordinator learns the minimum proposal.
	agg, err := net.Aggregate(proposals, crn.AggregateOptions{
		Source: coordinator,
		Func:   "min",
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	decision := agg.Value.(int64)
	fmt.Printf("phase 1 (COGCOMP): coordinator learned min proposal %d in %d slots\n", decision, agg.Slots)

	// Round 2 — decide: the coordinator broadcasts the decision.
	bc, err := net.Broadcast(crn.BroadcastOptions{
		Source:          coordinator,
		Payload:         decision,
		Seed:            2,
		RunToCompletion: true,
		MaxSlots:        20 * net.SlotBound(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bc.AllInformed {
		log.Fatal("decision broadcast incomplete")
	}
	fmt.Printf("phase 2 (COGCAST): decision disseminated to all devices in %d slots\n\n", bc.Slots)

	// Check the classic consensus properties.
	if decision != minOf(proposals) {
		log.Fatalf("validity violated: decided %d, but min proposal is %d", decision, minOf(proposals))
	}
	fmt.Printf("validity:  decided value %d was proposed (the minimum)\n", decision)
	fmt.Printf("agreement: all %d devices hold the same decision (broadcast complete)\n", devices)
	fmt.Printf("total:     %d slots for a full consensus round\n", agg.Slots+bc.Slots)
}

func minOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
