// Jamming resistance: Theorem 18 reduces broadcast under an n-uniform
// jamming adversary in a classic multi-channel network to local broadcast
// in a dynamic cognitive radio network — and therefore to COGCAST. This
// example pits COGCAST against three adversary strategies and increasing
// jamming budgets, showing completion degrades only through the reduced
// guaranteed overlap c − 2·kJam.
package main

import (
	"fmt"
	"log"

	crn "github.com/cogradio/crn"
)

const (
	devices  = 48
	channels = 16
	trials   = 5
)

func main() {
	fmt.Printf("multi-channel network: %d devices sharing %d channels\n", devices, channels)
	fmt.Printf("adversary: n-uniform — may jam a different channel set for every device, every slot\n\n")

	strategies := []string{"none", "sweep", "split", "random"}
	budgets := []int{0, 2, 4, 7}

	fmt.Printf("%-8s %-14s", "budget", "overlap c-2k")
	for _, s := range strategies {
		fmt.Printf(" %-10s", s)
	}
	fmt.Println()

	for _, budget := range budgets {
		fmt.Printf("%-8d %-14d", budget, channels-2*budget)
		for _, strategy := range strategies {
			b := budget
			if strategy == "none" {
				b = 0
			}
			total := 0
			for trial := 0; trial < trials; trial++ {
				net, err := crn.NewJammedNetwork(devices, channels, b, strategy, int64(trial))
				if err != nil {
					log.Fatal(err)
				}
				res, err := net.Broadcast(crn.BroadcastOptions{
					Payload:         "sos",
					Seed:            int64(1000 + trial),
					RunToCompletion: true,
					MaxSlots:        100 * net.SlotBound(0),
				})
				if err != nil {
					log.Fatal(err)
				}
				if !res.AllInformed {
					log.Fatalf("budget %d, %s: broadcast defeated", budget, strategy)
				}
				total += res.Slots
			}
			fmt.Printf(" %-10s", fmt.Sprintf("%.1f", float64(total)/trials))
		}
		fmt.Println()
	}

	fmt.Println("\n(mean slots to inform all devices; every cell completed on every trial)")
	fmt.Println("even at budget 7 of 16 channels — overlap squeezed to 2 — the epidemic gets through,")
	fmt.Println("because any two devices still share c-2·kJam unjammed channels each slot (Theorem 18)")
}
