// Whitespace: secondary users in a licensed TV band. Primary users
// (television transmitters) come and go, so the set of channels a device
// may use changes from slot to slot — the dynamic model of the paper's
// discussion sections. COGCAST's guarantees survive unchanged (its per-slot
// behavior depends only on the node's current channel set), which this
// example demonstrates by broadcasting over an aggressively re-randomized
// spectrum and comparing against the static case.
package main

import (
	"fmt"
	"log"

	crn "github.com/cogradio/crn"
)

const (
	devices    = 80
	channels   = 10
	minOverlap = 3
	band       = 40
	epochs     = 5
)

func main() {
	fmt.Printf("TV whitespace: %d secondary devices, %d usable channels each in a %d-channel band\n",
		devices, channels, band)
	fmt.Printf("primary-user activity re-draws every device's usable set every slot; %d pilot channels persist\n\n",
		minOverlap)

	static, err := crn.NewNetwork(crn.Spec{
		Nodes: devices, ChannelsPerNode: channels, MinOverlap: minOverlap,
		TotalChannels: band, Topology: crn.SharedCore, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := crn.NewNetwork(crn.Spec{
		Nodes: devices, ChannelsPerNode: channels, MinOverlap: minOverlap,
		TotalChannels: band, Topology: crn.SharedCore, Dynamic: true, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-18s %-18s\n", "epoch", "static spectrum", "shifting spectrum")
	var sTotal, dTotal int
	for epoch := 0; epoch < epochs; epoch++ {
		seed := int64(100 + epoch)
		budget := 20 * static.SlotBound(0)
		sres, err := static.Broadcast(crn.BroadcastOptions{
			Payload: "beacon", Seed: seed, RunToCompletion: true, MaxSlots: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		dres, err := dynamic.Broadcast(crn.BroadcastOptions{
			Payload: "beacon", Seed: seed, RunToCompletion: true, MaxSlots: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !sres.AllInformed || !dres.AllInformed {
			log.Fatalf("epoch %d: incomplete broadcast (static=%v dynamic=%v)", epoch, sres.AllInformed, dres.AllInformed)
		}
		sTotal += sres.Slots
		dTotal += dres.Slots
		fmt.Printf("%-8d %-18s %-18s\n", epoch+1,
			fmt.Sprintf("%d slots", sres.Slots),
			fmt.Sprintf("%d slots", dres.Slots))
	}
	fmt.Printf("\nmean: static %.1f slots, dynamic %.1f slots (theory bound: %d)\n",
		float64(sTotal)/epochs, float64(dTotal)/epochs, static.SlotBound(0))
	fmt.Println("the epidemic broadcast is oblivious to the churn — Theorem 4's proof never uses staticness")

	// What does NOT survive churn: deterministic coordination. Theorem 17
	// shows no algorithm can *guarantee* broadcast under dynamic
	// availability when k < c; randomization with w.h.p. guarantees is the
	// right tool. COGCOMP's later phases revisit phase-one channels, so the
	// library rejects aggregation over a dynamic network:
	if _, err := dynamic.Aggregate(make([]int64, devices), crn.AggregateOptions{}); err != nil {
		fmt.Printf("\naggregation over shifting spectrum correctly refused: %v\n", err)
	}

	// A physically motivated churn source: television transmitters turning
	// on and off (two-state Markov chains per channel), a small reserved
	// pilot band, and conservative sensing errors.
	pu, err := crn.NewPrimaryUserNetwork(crn.PrimaryUserSpec{
		Nodes:    devices,
		Channels: band,
		Pilots:   minOverlap,
		PBusy:    0.08, // a free TV channel is claimed 8% of slots
		PFree:    0.25, // a busy one is released 25% of slots
		MissProb: 0.10, // sensors sometimes misjudge free channels as busy
		Seed:     6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprimary-user model (stationary occupancy %.0f%%, %d pilot channels):\n",
		100*0.08/(0.08+0.25), minOverlap)
	for epoch := 0; epoch < 3; epoch++ {
		res, err := pu.Broadcast(crn.BroadcastOptions{
			Payload: "beacon", Seed: int64(300 + epoch), RunToCompletion: true,
			MaxSlots: 100 * pu.SlotBound(0), CollectMetrics: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllInformed {
			log.Fatalf("PU epoch %d incomplete", epoch)
		}
		fmt.Printf("  epoch %d: %d slots (%.1f busy channels/slot, %.0f%% of listens delivered)\n",
			epoch+1, res.Slots, res.Metrics.BusyChannelsPerSlot, 100*res.Metrics.DeliveryRate)
	}
}
