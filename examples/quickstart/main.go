// Quickstart: build a cognitive radio network, broadcast a message with
// COGCAST, then aggregate data with COGCOMP — the two protocols of the
// paper, driven through the public crn API.
package main

import (
	"fmt"
	"log"

	crn "github.com/cogradio/crn"
)

func main() {
	// A network of 64 devices. Each device's cognitive radio found 8
	// usable channels out of a crowded band of 24; the regulator's common
	// pilot channels guarantee any two devices share at least 2.
	net, err := crn.NewNetwork(crn.Spec{
		Nodes:           64,
		ChannelsPerNode: 8,
		MinOverlap:      2,
		TotalChannels:   24,
		Topology:        crn.SharedCore,
		Labels:          crn.LocalLabels, // devices number their channels privately
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d devices, c=%d channels each, pairwise overlap >= %d (C=%d)\n",
		net.Nodes(), net.ChannelsPerNode(), net.MinOverlap(), net.TotalChannels())
	fmt.Printf("theory:  COGCAST completes within ~%d slots w.h.p. (Theorem 4)\n\n", net.SlotBound(0))

	// --- Local broadcast (COGCAST) -----------------------------------------
	// Device 0 disseminates a configuration message; everyone relays it
	// epidemically on uniformly random channels.
	bres, err := net.Broadcast(crn.BroadcastOptions{
		Source:          0,
		Payload:         "config-v2",
		Seed:            7,
		RunToCompletion: true,
		MaxSlots:        10 * net.SlotBound(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast: informed all %d devices in %d slots (tree height %d)\n",
		net.Nodes(), bres.Slots, bres.TreeHeight)

	// --- Data aggregation (COGCOMP) ----------------------------------------
	// Every device reports a reading; the source learns the sum without
	// any device shipping raw data further than its parent.
	readings := make([]int64, net.Nodes())
	var want int64
	for i := range readings {
		readings[i] = int64(10 + i%17)
		want += readings[i]
	}
	ares, err := net.Aggregate(readings, crn.AggregateOptions{Source: 0, Func: "sum", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate: sum = %v (expected %d) in %d slots\n", ares.Value, want, ares.Slots)
	fmt.Printf("           phases: tree build %d | census %d | rewind %d | convergecast %d\n",
		ares.Phase1Slots, ares.Phase2Slots, ares.Phase3Slots, ares.Phase4Slots)
	fmt.Printf("           largest message: %d words (associative aggregates stay constant-size)\n",
		ares.MaxMessageSize)

	// --- Comparison with the naive strategy ----------------------------------
	slots, done, err := net.RendezvousBroadcast(0, "config-v2", 7, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: rendezvous broadcast (no relaying) took %d slots (complete=%v)\n", slots, done)
	fmt.Printf("          COGCAST speedup: %.1fx\n", float64(slots)/float64(bres.Slots))
}
