package crn_test

import (
	"testing"

	crn "github.com/cogradio/crn"
)

// TestPaperHeadlineResults is the repository's acceptance test: the three
// headline results of the paper, each checked end to end through the
// public API on a single fixed configuration.
func TestPaperHeadlineResults(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance test")
	}
	const (
		n      = 96
		c      = 12
		k      = 3
		trials = 5
	)

	// Result 1 — Theorem 4: COGCAST completes within its slot bound, and
	// far faster than the rendezvous baseline.
	t.Run("cogcast-beats-rendezvous-within-bound", func(t *testing.T) {
		var cogTotal, rdvTotal int
		for seed := int64(0); seed < trials; seed++ {
			net, err := crn.NewNetwork(crn.Spec{
				Nodes: n, ChannelsPerNode: c, MinOverlap: k,
				Topology: crn.Partitioned, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.Broadcast(crn.BroadcastOptions{
				Payload: "m", Seed: seed, RunToCompletion: true,
				MaxSlots: 64 * net.SlotBound(0),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("seed %d: COGCAST incomplete", seed)
			}
			if res.Slots > net.SlotBound(0) {
				t.Errorf("seed %d: %d slots exceeds the κ=%v bound %d", seed, res.Slots, 4.0, net.SlotBound(0))
			}
			cogTotal += res.Slots
			slots, done, err := net.RendezvousBroadcast(0, "m", seed, 10_000_000)
			if err != nil || !done {
				t.Fatalf("seed %d: rendezvous incomplete (%v)", seed, err)
			}
			rdvTotal += slots
		}
		if rdvTotal < 3*cogTotal {
			t.Errorf("rendezvous total %d not well above COGCAST total %d", rdvTotal, cogTotal)
		}
	})

	// Result 2 — Theorem 10: COGCOMP computes exact aggregates with its
	// phase budget: phases 1-3 fixed, phase 4 linear in n.
	t.Run("cogcomp-exact-within-linear-phase4", func(t *testing.T) {
		for seed := int64(0); seed < trials; seed++ {
			net, err := crn.NewNetwork(crn.Spec{
				Nodes: n, ChannelsPerNode: c, MinOverlap: k,
				Topology: crn.Partitioned, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]int64, n)
			var want int64
			for i := range inputs {
				inputs[i] = int64(3*i - 40)
				want += inputs[i]
			}
			res, err := net.Aggregate(inputs, crn.AggregateOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Fatalf("seed %d: sum %v != %d", seed, res.Value, want)
			}
			if res.Phase2Slots != n {
				t.Errorf("seed %d: census %d slots, want n", seed, res.Phase2Slots)
			}
			if res.Phase4Slots > 9*n {
				t.Errorf("seed %d: convergecast %d slots, not linear-ish in n=%d", seed, res.Phase4Slots, n)
			}
		}
	})

	// Result 3 — Section 6: the lower-bound constructions bite. On the
	// partitioned (Theorem 16) instance, no run's first delivery can beat
	// the expected overlap-landing time by much in aggregate.
	t.Run("lower-bound-first-contact", func(t *testing.T) {
		var firstTotal float64
		const lbTrials = 40
		for seed := int64(0); seed < lbTrials; seed++ {
			net, err := crn.NewNetwork(crn.Spec{
				Nodes: 8, ChannelsPerNode: 16, MinOverlap: 1,
				Topology: crn.Partitioned, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.Broadcast(crn.BroadcastOptions{
				Payload: "m", Seed: seed, RunToCompletion: true,
				MaxSlots: 64 * net.SlotBound(0), Trajectory: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			first := res.Slots
			for s, informed := range res.Trajectory {
				if informed > 1 {
					first = s + 1
					break
				}
			}
			firstTotal += float64(first)
		}
		mean := firstTotal / lbTrials
		theory := float64(16+1) / float64(1+1) // (c+1)/(k+1)
		if mean < theory*0.7 {
			t.Errorf("mean first contact %.2f below the Theorem 16 floor %.2f", mean, theory)
		}
	})
}
