package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestCogcastRun(t *testing.T) {
	out := runOK(t, "-protocol", "cogcast", "-n", "24", "-c", "6", "-k", "2")
	if !strings.Contains(out, "cogcast:") || !strings.Contains(out, "all informed: true") {
		t.Errorf("output = %q", out)
	}
}

func TestCogcompRun(t *testing.T) {
	out := runOK(t, "-protocol", "cogcomp", "-n", "16", "-c", "4", "-k", "2", "-agg", "stats")
	if !strings.Contains(out, "cogcomp:") || !strings.Contains(out, "stats =") {
		t.Errorf("output = %q", out)
	}
}

func TestRendezvousRun(t *testing.T) {
	out := runOK(t, "-protocol", "rendezvous", "-n", "12", "-c", "4", "-k", "2")
	if !strings.Contains(out, "rendezvous broadcast:") {
		t.Errorf("output = %q", out)
	}
}

func TestRendezvousAggRun(t *testing.T) {
	out := runOK(t, "-protocol", "rendezvous-agg", "-n", "8", "-c", "4", "-k", "2")
	if !strings.Contains(out, "rendezvous aggregation:") {
		t.Errorf("output = %q", out)
	}
}

func TestHopRun(t *testing.T) {
	out := runOK(t, "-protocol", "hop", "-n", "6", "-c", "4", "-k", "2",
		"-topology", "partitioned", "-labels", "global")
	if !strings.Contains(out, "hopping-together:") {
		t.Errorf("output = %q", out)
	}
}

func TestJammedRun(t *testing.T) {
	out := runOK(t, "-protocol", "cogcast", "-jam", "random", "-jamk", "2", "-n", "12", "-c", "8")
	if !strings.Contains(out, "dynamic=true") || !strings.Contains(out, "all informed: true") {
		t.Errorf("output = %q", out)
	}
}

func TestEveryTopologyFlag(t *testing.T) {
	for _, topo := range []string{"full", "partitioned", "shared-core", "random-pool"} {
		args := []string{"-protocol", "cogcast", "-n", "8", "-c", "6", "-k", "2", "-topology", topo}
		if topo == "random-pool" {
			args = append(args, "-C", "12")
		}
		out := runOK(t, args...)
		if !strings.Contains(out, "network:") {
			t.Errorf("%s: output = %q", topo, out)
		}
	}
	// Pairwise needs c >= k(n-1).
	out := runOK(t, "-protocol", "cogcast", "-n", "4", "-c", "6", "-k", "2", "-topology", "pairwise")
	if !strings.Contains(out, "network:") {
		t.Errorf("pairwise: output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-protocol", "warp-drive"},
		{"-topology", "moebius"},
		{"-labels", "esperanto"},
		{"-jam", "nuke", "-jamk", "1"},
		{"-n", "4", "-c", "2", "-k", "5"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestSessionRun(t *testing.T) {
	out := runOK(t, "-protocol", "session", "-n", "16", "-c", "4", "-k", "2", "-rounds", "2")
	if !strings.Contains(out, "session: 2 rounds") || !strings.Contains(out, "round 2:") {
		t.Errorf("output = %q", out)
	}
}

func TestGossipRun(t *testing.T) {
	out := runOK(t, "-protocol", "gossip", "-n", "16", "-c", "4", "-k", "2", "-rumors", "3")
	if !strings.Contains(out, "gossip: 3 rumors") || !strings.Contains(out, "complete: true") {
		t.Errorf("output = %q", out)
	}
}

func TestRepeatSummary(t *testing.T) {
	out := runOK(t, "-protocol", "cogcast", "-n", "24", "-c", "6", "-k", "2", "-repeat", "8")
	if !strings.Contains(out, "cogcast x8: slots min") {
		t.Errorf("output = %q", out)
	}
	for _, rep := range []string{"rep 0 seed=", "rep 7 seed="} {
		if !strings.Contains(out, rep) {
			t.Errorf("missing per-repetition line %q in %q", rep, out)
		}
	}
}

func TestRepeatParallelIdentical(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-protocol", "cogcomp", "-n", "16", "-c", "4", "-k", "2",
			"-repeat", "6", "-parallel", workers}
	}
	serial := runOK(t, args("1")...)
	par := runOK(t, args("4")...)
	if serial != par {
		t.Errorf("repeat summary differs across worker counts:\nserial: %q\nparallel: %q", serial, par)
	}
}

func TestShardsFlagIdentical(t *testing.T) {
	// -shards splits the engine's per-slot scan; output must not change by
	// a byte, for broadcasts and aggregations alike.
	for _, proto := range []string{"cogcast", "cogcomp"} {
		args := func(shards string) []string {
			return []string{"-protocol", proto, "-n", "24", "-c", "6", "-k", "2", "-shards", shards}
		}
		serial := runOK(t, args("1")...)
		for _, shards := range []string{"2", "4"} {
			if got := runOK(t, args(shards)...); got != serial {
				t.Errorf("%s output differs at %s shards:\nserial: %q\nsharded: %q", proto, shards, serial, got)
			}
		}
	}
}

func TestRepeatUnsupportedProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "gossip", "-n", "16", "-c", "4", "-k", "2", "-repeat", "4"}, &out); err == nil {
		t.Error("gossip -repeat accepted")
	}
}

// mediumLineOf extracts the "medium: ..." line from cogsim output.
func mediumLineOf(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "medium: ") {
			return line
		}
	}
	t.Fatalf("no medium line in %q", out)
	return ""
}

func TestTraceSummaryMatchesLiveRun(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	live := runOK(t, "-protocol", "cogcast", "-n", "24", "-c", "6", "-k", "2",
		"-seed", "7", "-trace", path)
	replay := runOK(t, "-trace-summary", path)
	if lm, rm := mediumLineOf(t, live), mediumLineOf(t, replay); lm != rm {
		t.Errorf("medium line diverged:\nlive:   %q\nreplay: %q", lm, rm)
	}
	if !strings.Contains(replay, "informed: 24/24") {
		t.Errorf("summary output = %q", replay)
	}
}

func TestTraceCogcomp(t *testing.T) {
	path := t.TempDir() + "/agg.jsonl"
	runOK(t, "-protocol", "cogcomp", "-n", "16", "-c", "4", "-k", "2", "-trace", path)
	replay := runOK(t, "-trace-summary", path)
	if !strings.Contains(replay, "protocol=cogcomp") || !strings.Contains(replay, "phase 4:") {
		t.Errorf("summary output = %q", replay)
	}
}

func TestTraceFlagErrors(t *testing.T) {
	var out bytes.Buffer
	path := t.TempDir() + "/x.jsonl"
	cases := [][]string{
		{"-protocol", "gossip", "-trace", path},
		{"-protocol", "cogcast", "-repeat", "4", "-trace", path},
		{"-trace-summary", t.TempDir() + "/missing.jsonl"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	runOK(t, "-protocol", "cogcast", "-n", "12", "-c", "4", "-k", "2",
		"-cpuprofile", dir+"/cpu.pprof", "-memprofile", dir+"/mem.pprof")
	for _, p := range []string{dir + "/cpu.pprof", dir + "/mem.pprof"} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestCurveFlag(t *testing.T) {
	out := runOK(t, "-protocol", "cogcast", "-n", "24", "-c", "6", "-k", "2", "-curve")
	if !strings.Contains(out, "epidemic:") {
		t.Errorf("output = %q", out)
	}
}

func TestCheckFlag(t *testing.T) {
	// Output under the oracle must be byte-identical to an unchecked run.
	base := []string{"-protocol", "cogcast", "-n", "24", "-c", "6", "-k", "2"}
	plain := runOK(t, base...)
	checked := runOK(t, append([]string{"-check"}, base...)...)
	if plain != checked {
		t.Errorf("-check changed output:\n--- checked ---\n%s--- plain ---\n%s", checked, plain)
	}

	out := runOK(t, "-check", "-protocol", "cogcomp", "-n", "16", "-c", "4", "-k", "2", "-agg", "stats")
	if !strings.Contains(out, "cogcomp:") {
		t.Errorf("checked cogcomp output = %q", out)
	}
	out = runOK(t, "-check", "-protocol", "session", "-n", "16", "-c", "4", "-k", "2", "-rounds", "2")
	if !strings.Contains(out, "session: 2 rounds") {
		t.Errorf("checked session output = %q", out)
	}
	out = runOK(t, "-check", "-protocol", "cogcast", "-n", "16", "-c", "4", "-k", "2", "-repeat", "4")
	if !strings.Contains(out, "cogcast x4:") {
		t.Errorf("checked repeat output = %q", out)
	}

	var buf bytes.Buffer
	err := run([]string{"-check", "-protocol", "gossip"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-check supports") {
		t.Errorf("-check with gossip: err = %v", err)
	}
}

func TestCogcompRecoverRun(t *testing.T) {
	out := runOK(t, "-protocol", "cogcomp", "-n", "16", "-c", "4", "-k", "2", "-recover")
	if !strings.Contains(out, "recovery: contributors 16/16") || !strings.Contains(out, "retries 0") {
		t.Errorf("output = %q", out)
	}
	out = runOK(t, "-protocol", "cogcomp", "-n", "20", "-c", "5", "-k", "2",
		"-recover", "-outage", "0.003", "-seed", "3", "-check")
	if !strings.Contains(out, "recovery: contributors") {
		t.Errorf("output = %q", out)
	}
}

func TestBlockJamRun(t *testing.T) {
	out := runOK(t, "-protocol", "cogcast", "-jam", "block", "-jamk", "2", "-n", "12", "-c", "8")
	if !strings.Contains(out, "all informed: true") {
		t.Errorf("output = %q", out)
	}
}

func TestRecoverFlagErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-protocol", "cogcast", "-recover"},
		{"-protocol", "cogcomp", "-outage", "0.01"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestAdversaryRun(t *testing.T) {
	jam := runOK(t, "-adversary", "busiest", "-energy", "120", "-n", "32", "-c", "12")
	if !strings.Contains(jam, "all informed: true") || !strings.Contains(jam, "adversary: busiest spent") {
		t.Errorf("reactive jam output = %q", jam)
	}
	crash := runOK(t, "-protocol", "cogcomp", "-recover", "-adversary", "crasher", "-energy", "60", "-n", "32")
	if !strings.Contains(crash, "adversary: crasher spent") {
		t.Errorf("reactive crash output = %q", crash)
	}
}

func TestAdversaryTraceSummary(t *testing.T) {
	path := t.TempDir() + "/adv.jsonl"
	runOK(t, "-adversary", "busiest", "-energy", "120", "-n", "32", "-c", "12", "-trace", path)
	replay := runOK(t, "-trace-summary", path)
	if !strings.Contains(replay, " adv=") {
		t.Errorf("summary has no adv event count: %q", replay)
	}
}

func TestAdversaryFlagErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-adversary", "busiest", "-jam", "random"},
		{"-protocol", "cogcomp", "-adversary", "crasher", "-energy", "10"},
		{"-protocol", "gossip", "-adversary", "busiest", "-energy", "10"},
		{"-adversary", "crasher", "-energy", "10"},
		{"-adversary", "nuke", "-energy", "10"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
