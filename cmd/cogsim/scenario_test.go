package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/exper"
)

// stripAsserts drops the trailing "assert ..." lines a scenario run
// appends after the protocol report, leaving the part a flag-driven run
// would have printed.
func stripAsserts(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "assert ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// runOut executes run() and fails the test on error.
func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// TestScenarioFlagByteIdentity: committed scenario files produce output
// byte-identical to the equivalent flag invocation, and that output is
// invariant across -shards and -parallel — the determinism contract of
// the scenario DSL.
func TestScenarioFlagByteIdentity(t *testing.T) {
	cases := []struct {
		scenario string
		flags    []string
		variants [][]string // flag variants that must also match byte for byte
	}{
		{
			"../../scenarios/broadcast_baseline.yaml",
			[]string{"-protocol", "cogcast", "-n", "64", "-c", "8", "-k", "2"},
			[][]string{{"-protocol", "cogcast", "-n", "64", "-c", "8", "-k", "2", "-shards", "4"}},
		},
		{
			"../../scenarios/broadcast_sharded_curve.yaml",
			[]string{"-n", "1024", "-c", "12", "-k", "3", "-curve", "-shards", "4"},
			[][]string{{"-n", "1024", "-c", "12", "-k", "3", "-curve", "-shards", "1"}},
		},
		{
			"../../scenarios/repeat_percentiles.yaml",
			[]string{"-repeat", "8"},
			[][]string{
				{"-repeat", "8", "-parallel", "1"},
				{"-repeat", "8", "-parallel", "4"},
			},
		},
		{
			"../../scenarios/jam_random.yaml",
			[]string{"-jam", "random", "-jamk", "3", "-n", "32", "-c", "16"},
			nil,
		},
		{
			"../../scenarios/recover_outage_churn.yaml",
			[]string{"-protocol", "cogcomp", "-recover", "-outage", "0.002", "-n", "48"},
			[][]string{{"-protocol", "cogcomp", "-recover", "-outage", "0.002", "-n", "48", "-shards", "4"}},
		},
		{
			"../../scenarios/jam_reactive_busiest.yaml",
			[]string{"-adversary", "busiest", "-energy", "120", "-energy-slot", "3", "-n", "32", "-c", "16"},
			[][]string{{"-adversary", "busiest", "-energy", "120", "-energy-slot", "3", "-n", "32", "-c", "16", "-shards", "4"}},
		},
		{
			"../../scenarios/recover_phase_crasher.yaml",
			[]string{"-protocol", "cogcomp", "-recover", "-adversary", "crasher", "-energy", "60", "-n", "48"},
			[][]string{{"-protocol", "cogcomp", "-recover", "-adversary", "crasher", "-energy", "60", "-n", "48", "-shards", "4"}},
		},
	}
	for _, tc := range cases {
		t.Run(filepath.Base(tc.scenario), func(t *testing.T) {
			fromFile := stripAsserts(runOut(t, "run", tc.scenario))
			fromFlags := runOut(t, tc.flags...)
			if fromFile != fromFlags {
				t.Fatalf("scenario and flag outputs differ:\n--- scenario\n%s--- flags\n%s", fromFile, fromFlags)
			}
			for _, v := range tc.variants {
				if got := runOut(t, v...); got != fromFlags {
					t.Fatalf("output varies with %v:\n--- variant\n%s--- base\n%s", v, got, fromFlags)
				}
			}
		})
	}
}

// TestScenarioShardsFileTwin: the same scenario with engine.shards 1 and 4
// produces byte-identical output — the file-mode form of the shards
// invariance the flag tests pin.
func TestScenarioShardsFileTwin(t *testing.T) {
	dir := t.TempDir()
	const body = `
name: shards-twin
topology:
  nodes: 256
  channels_per_node: 8
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcast
engine:
  shards: %SHARDS%
`
	var outs []string
	for _, shards := range []string{"1", "4"} {
		path := filepath.Join(dir, "s"+shards+".yaml")
		doc := strings.ReplaceAll(body, "%SHARDS%", shards)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, runOut(t, "run", path))
	}
	if outs[0] != outs[1] {
		t.Fatalf("shards 1 vs 4 differ:\n--- shards 1\n%s--- shards 4\n%s", outs[0], outs[1])
	}
}

// TestScenarioSparseFileTwin: the same scenario with engine.sparse false and
// true produces byte-identical output, and likewise for the -sparse flag —
// event-driven stepping is a pure wall-clock optimisation. This is the small
// CLI twin of scenarios/aggregate_sparse_scale.yaml, which exercises the same
// toggle at 8192 nodes under make scenario-check.
func TestScenarioSparseFileTwin(t *testing.T) {
	dir := t.TempDir()
	const body = `
name: sparse-twin
topology:
  nodes: 512
  channels_per_node: 8
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcomp
  aggregate: sum
engine:
  sparse: %SPARSE%
`
	var outs []string
	for _, sparse := range []string{"false", "true"} {
		path := filepath.Join(dir, "sparse_"+sparse+".yaml")
		doc := strings.ReplaceAll(body, "%SPARSE%", sparse)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, runOut(t, "run", path))
	}
	if outs[0] != outs[1] {
		t.Fatalf("sparse vs dense scenario differ:\n--- dense\n%s--- sparse\n%s", outs[0], outs[1])
	}
	flags := []string{"-protocol", "cogcomp", "-n", "512", "-c", "8", "-k", "2", "-agg", "sum"}
	dense := runOut(t, flags...)
	sparse := runOut(t, append(append([]string{}, flags...), "-sparse")...)
	if dense != sparse {
		t.Fatalf("-sparse flag changes output:\n--- dense\n%s--- sparse\n%s", dense, sparse)
	}
}

// TestScenarioTraceByteIdentity: a traced scenario run writes a JSONL
// trace byte-identical to the flag invocation's, for both protocols.
func TestScenarioTraceByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, protocol string
		flags          []string
	}{
		{"cogcast", "cogcast", []string{"-protocol", "cogcast", "-n", "32", "-c", "8", "-k", "2"}},
		{"cogcomp", "cogcomp", []string{"-protocol", "cogcomp", "-n", "32", "-c", "8", "-k", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scenarioTrace := filepath.Join(dir, tc.name+"_scenario.jsonl")
			flagTrace := filepath.Join(dir, tc.name+"_flags.jsonl")
			doc := strings.Join([]string{
				"name: trace-twin",
				"topology:",
				"  nodes: 32",
				"  channels_per_node: 8",
				"  min_overlap: 2",
				"  generator: shared-core",
				"protocol:",
				"  name: " + tc.protocol,
				"engine:",
				"  trace: " + scenarioTrace,
				"",
			}, "\n")
			path := filepath.Join(dir, tc.name+".yaml")
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				t.Fatal(err)
			}
			fileOut := runOut(t, "run", path)
			flagOut := runOut(t, append(tc.flags, "-trace", flagTrace)...)

			fromFile, err := os.ReadFile(scenarioTrace)
			if err != nil {
				t.Fatal(err)
			}
			fromFlags, err := os.ReadFile(flagTrace)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fromFile, fromFlags) {
				t.Fatalf("trace files differ (%d vs %d bytes)", len(fromFile), len(fromFlags))
			}
			// Stdout is identical except for the trace path each run names.
			norm := func(s, path string) string { return strings.ReplaceAll(s, path, "X") }
			if norm(fileOut, scenarioTrace) != norm(flagOut, flagTrace) {
				t.Fatalf("stdout differs:\n--- scenario\n%s--- flags\n%s", fileOut, flagOut)
			}
		})
	}
}

// TestScenarioExperimentTwin: an experiment scenario renders exactly the
// tables a direct exper run produces.
func TestScenarioExperimentTwin(t *testing.T) {
	got := runOut(t, "run", "../../scenarios/experiment_e1_quick.yaml")

	e, err := exper.ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(exper.Config{Seed: 42, Trials: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&want); err != nil {
			t.Fatal(err)
		}
	}
	if got != want.String() {
		t.Fatalf("experiment scenario differs from direct run:\n--- scenario\n%s--- direct\n%s", got, want.String())
	}
}

// TestValidateCommand covers the validate subcommand: ok lines, the
// -canonical form re-parsing, and argument errors.
func TestValidateCommand(t *testing.T) {
	out := runOut(t, "validate", "../../scenarios/broadcast_baseline.yaml")
	want := "ok: ../../scenarios/broadcast_baseline.yaml (broadcast-baseline)\n"
	if out != want {
		t.Errorf("validate output = %q, want %q", out, want)
	}

	canon := runOut(t, "validate", "-canonical", "../../scenarios/broadcast_baseline.yaml")
	dir := t.TempDir()
	path := filepath.Join(dir, "canon.yaml")
	if err := os.WriteFile(path, []byte(canon), 0o644); err != nil {
		t.Fatal(err)
	}
	recanon := runOut(t, "validate", "-canonical", path)
	if recanon != canon {
		t.Errorf("canonical form is not a fixed point through the CLI")
	}

	var buf bytes.Buffer
	if err := run([]string{"validate"}, &buf); err == nil || err.Error() != "validate: need at least one scenario file" {
		t.Errorf("validate with no files: err = %v", err)
	}
	if err := run([]string{"run"}, &buf); err == nil || err.Error() != "run: need at least one scenario file" {
		t.Errorf("run with no files: err = %v", err)
	}
}

// TestRunAssertionFailure: a failing assertion prints FAILED and makes the
// run subcommand return an error (non-zero exit in main).
func TestRunAssertionFailure(t *testing.T) {
	dir := t.TempDir()
	doc := `
name: too-strict
topology:
  nodes: 64
  channels_per_node: 8
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcast
assertions:
  - kind: completed-by
    slots: 1
  - kind: all-informed
`
	path := filepath.Join(dir, "strict.yaml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"run", path}, &buf)
	if err == nil {
		t.Fatal("run succeeded despite a failing assertion")
	}
	if want := "scenario too-strict: 1 of 2 assertions failed"; err.Error() != want {
		t.Errorf("err = %q, want %q", err, want)
	}
	if !strings.Contains(buf.String(), "assert completed-by: FAILED") {
		t.Errorf("output lacks the FAILED line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "assert all-informed: ok") {
		t.Errorf("output lacks the passing line:\n%s", buf.String())
	}
}

// TestRunRejectsInvalidFile: load errors carry the file path and the
// scenario-flavored message.
func TestRunRejectsInvalidFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(path, []byte("name: x\nprotocol:\n  name: flood\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"run", path}, &buf)
	want := path + `: scenario: protocol.name: unknown protocol "flood"`
	if err == nil || err.Error() != want {
		t.Errorf("err = %v, want %q", err, want)
	}
}
