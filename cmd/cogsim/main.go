// Command cogsim runs a single protocol over a generated cognitive radio
// network and prints what happened. It exercises the public crn API — the
// same entry points a library user would call.
//
// Flags describe a run inline; scenario files (SCENARIOS.md) declare the
// same runs as data. Both build the same internal/scenario value and share
// one execution path, so `cogsim run file.yaml` is byte-identical to the
// equivalent flag invocation.
//
// Examples:
//
//	cogsim -protocol cogcast -n 128 -c 16 -k 4 -C 48
//	cogsim -protocol cogcomp -n 64 -c 8 -k 2 -C 24 -agg stats
//	cogsim -protocol hop -n 8 -c 64 -k 63 -topology partitioned -labels global
//	cogsim -protocol cogcast -jam random -jamk 3 -n 32 -c 16
//	cogsim -protocol cogcast -adversary busiest -energy 120 -n 32 -c 12
//	cogsim -protocol cogcomp -recover -adversary crasher -energy 60
//	cogsim -protocol cogcast -repeat 32 -parallel 8   # seeded repetitions
//	cogsim -protocol cogcast -trace run.jsonl         # record a JSONL trace
//	cogsim -trace-summary run.jsonl                   # fold it back into numbers
//	cogsim run scenarios/broadcast_baseline.yaml      # run a scenario file
//	cogsim validate scenarios/*.yaml                  # schema-check only
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/cogradio/crn/internal/prof"
	"github.com/cogradio/crn/internal/scenario"
	"github.com/cogradio/crn/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context: the engine stops at the
	// next slot boundary, trace files get their cancel event and
	// end-of-stream marker, and the typed error reports the partial
	// progress. A canceled run exits 130 (the shell convention for
	// SIGINT); every other failure exits 1.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogsim:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// run is runCtx without an interrupt context (tests call it directly).
func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out)
}

func runCtx(ctx context.Context, args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenarios(ctx, args[1:], out)
		case "validate":
			return validateScenarios(args[1:], out)
		}
	}
	fs := flag.NewFlagSet("cogsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "cogcast", "protocol: cogcast, cogcomp, session, gossip, rendezvous, rendezvous-agg, hop")
		n        = fs.Int("n", 64, "number of nodes")
		c        = fs.Int("c", 8, "channels per node")
		k        = fs.Int("k", 2, "guaranteed pairwise overlap")
		total    = fs.Int("C", 0, "total channels (0 = 3c for shared-core)")
		topology = fs.String("topology", "shared-core", "topology: full, partitioned, shared-core, random-pool, pairwise")
		labels   = fs.String("labels", "local", "label model: local or global")
		dynamic  = fs.Bool("dynamic", false, "re-draw channel sets every slot")
		jam      = fs.String("jam", "", "jammer strategy (none, random, sweep, block, split); overrides topology")
		jamK     = fs.Int("jamk", 0, "channels jammed per node per slot")
		adv      = fs.String("adversary", "", "reactive adversary strategy: busiest/follower/hunter jam cogcast (forces the jammed topology), hunter/crasher/oblivious crash cogcomp (needs -recover), none = control")
		advE     = fs.Int("energy", 0, "reactive adversary's total energy reserve (one unit per jammed channel or held-down node per slot; 0 = inert)")
		advSlot  = fs.Int("energy-slot", 2, "reactive adversary's per-slot action cap; on cogcast it is also the reduction's jam budget")
		seed     = fs.Int64("seed", 1, "root seed")
		source   = fs.Int("source", 0, "source node")
		agg      = fs.String("agg", "sum", "aggregate for cogcomp: sum, count, min, max, stats, collect")
		rounds   = fs.Int("rounds", 3, "reporting rounds for the session protocol")
		rumors   = fs.Int("rumors", 4, "rumor count for the gossip protocol")
		maxSlots = fs.Int("max-slots", 0, "slot budget (0 = automatic)")
		check    = fs.Bool("check", false, "run under the invariant oracle: re-verify every slot, the distribution tree, census and aggregate (cogcast, cogcomp, session)")
		recov    = fs.Bool("recover", false, "run cogcomp under the crash-restart recovery supervisor (epoch checkpoints, bounded retries, mediator re-election; DESIGN.md §7)")
		outage   = fs.Float64("outage", 0, "with -recover: per-slot crash probability per node (source protected), 10-slot outages")
		curve    = fs.Bool("curve", false, "print the informed-count curve for cogcast")
		repeat   = fs.Int("repeat", 1, "independent seeded repetitions (cogcast and cogcomp only); prints per-repetition lines and a slot-count summary")
		workers  = fs.Int("parallel", 0, "workers for -repeat (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		shards   = fs.Int("shards", 1, "goroutines sharding each slot's protocol scan inside the engine (1 = serial); output is identical for every value; dynamic/jammed networks run serially")
		sparse   = fs.Bool("sparse", false, "event-driven stepping: skip dormant nodes instead of scanning all n each slot; output is identical either way; traced/checked and dynamic/jammed runs step densely")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the run (0 = none); an exceeded budget stops the run at the next slot boundary with a deadline error")
		traceTo  = fs.String("trace", "", "record a JSONL event trace of the run to this file (cogcast and cogcomp, single run; schema in TRACE.md)")
		traceSum = fs.String("trace-summary", "", "read a trace file and fold it back into summary numbers instead of running anything")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceSum != "" {
		return summarizeTrace(out, *traceSum)
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	// The flag set becomes a Scenario verbatim — no Normalize, no
	// Validate, so flag semantics (including -seed 0) and the legacy
	// guard errors stay exactly as they were. Execute is the shared run
	// path; file mode goes through the same call.
	sc := &scenario.Scenario{
		Name: "cli",
		Seed: *seed,
		Topology: scenario.Topology{
			Nodes:           *n,
			ChannelsPerNode: *c,
			MinOverlap:      *k,
			TotalChannels:   *total,
			Generator:       *topology,
			Labels:          *labels,
			Dynamic:         *dynamic,
		},
		Protocol: scenario.Protocol{
			Name:      *protocol,
			Source:    *source,
			Payload:   "INIT",
			Aggregate: *agg,
			Rounds:    *rounds,
			Rumors:    *rumors,
			MaxSlots:  *maxSlots,
			Curve:     *curve,
		},
		Engine: scenario.Engine{
			Shards:   *shards,
			Sparse:   *sparse,
			Parallel: *workers,
			Repeat:   *repeat,
			Check:    *check,
			Trace:    *traceTo,
		},
		Recovery: scenario.Recovery{Enabled: *recov, OutageRate: *outage},
	}
	if *timeout > 0 {
		sc.Limits.Deadline = timeout.String()
	}
	if *jam != "" {
		sc.Topology = scenario.Topology{
			Nodes:           *n,
			ChannelsPerNode: *c,
			Generator:       "jammed",
			Labels:          "local",
			JamStrategy:     *jam,
			JamBudget:       *jamK,
		}
	}
	if *adv != "" {
		if *jam != "" {
			return fmt.Errorf("-jam and -adversary are mutually exclusive (oblivious vs reactive jammer)")
		}
		sc.Adversary = scenario.Adversary{Strategy: *adv, Energy: *advE, PerSlot: *advSlot}
		if *protocol == "cogcast" {
			// Reactive jamming rides the Theorem 18 reduction, so the
			// topology is the jammed one (as -jam would force).
			sc.Topology = scenario.Topology{
				Nodes:           *n,
				ChannelsPerNode: *c,
				Generator:       "jammed",
				Labels:          "local",
			}
		}
	}
	_, err = sc.ExecuteContext(ctx, out)
	if serr := stop(); err == nil {
		err = serr
	}
	return err
}

// runScenarios implements `cogsim run [-timeout d] file.yaml...`: load each
// scenario, execute it, and evaluate its assertions; any failure exits
// non-zero. -timeout overrides each file's limits.deadline.
func runScenarios(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cogsim run", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 0, "wall-clock budget per scenario (0 = the file's limits.deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("run: need at least one scenario file")
	}
	for _, path := range files {
		if len(files) > 1 {
			fmt.Fprintf(out, "--- %s\n", path)
		}
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if *timeout > 0 {
			sc.Limits.Deadline = timeout.String()
		}
		if err := sc.RunContext(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

// validateScenarios implements `cogsim validate [-canonical] file.yaml...`:
// parse, normalize and validate each file without running anything.
// -canonical prints the normalized canonical YAML instead of "ok" lines.
func validateScenarios(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cogsim validate", flag.ContinueOnError)
	canonical := fs.Bool("canonical", false, "print each scenario's canonical normalized YAML")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("validate: need at least one scenario file")
	}
	for _, path := range files {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if *canonical {
			if _, err := out.Write(sc.Emit()); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "ok: %s (%s)\n", path, sc.Name)
		}
	}
	return nil
}

// summarizeTrace implements -trace-summary: read a JSONL trace and fold it
// back into the numbers a live run would have printed — the header, event
// counts per kind, the replayed medium metrics, and the protocol's
// progress/phase milestones.
func summarizeTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Summarize(bufio.NewReader(f))
	if err != nil {
		return err
	}
	m := s.Meta
	fmt.Fprintf(out, "trace: %s protocol=%s n=%d c=%d k=%d C=%d seed=%d collisions=%s\n",
		path, m.Protocol, m.Nodes, m.PerNode, m.MinOverlap, m.Channels, m.Seed, m.Collisions)
	totalEvents := 0
	for _, count := range s.Events {
		totalEvents += count
	}
	fmt.Fprintf(out, "events: %d", totalEvents)
	for _, kind := range []trace.Kind{
		trace.KindSlot, trace.KindChannel, trace.KindProgress, trace.KindInformed,
		trace.KindPhase, trace.KindCensus, trace.KindFault, trace.KindJam, trace.KindTrial,
		trace.KindEpoch, trace.KindCheckpoint, trace.KindRetry, trace.KindReelect,
		trace.KindRestart, trace.KindAdv, trace.KindCancel,
	} {
		if count := s.Events[kind]; count > 0 {
			fmt.Fprintf(out, " %s=%d", kind, count)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "medium: %s\n", s.Metrics)
	if s.TotalNodes >= 0 {
		fmt.Fprintf(out, "informed: %d/%d\n", s.FinalInformed, s.TotalNodes)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(out, "phase %d: starts slot %d (nominal length %d)\n", p.A, p.Slot, p.B)
	}
	if c := s.Cancel; c != nil {
		why := "canceled"
		if c.A == 1 {
			why = "deadline exceeded"
		}
		fmt.Fprintf(out, "cancel: %s after %d slots (the run was interrupted gracefully; metrics cover the slots that completed)\n", why, c.Slot)
	}
	// A trace without the end-of-stream marker was cut mid-write (a crash
	// or a hard kill, not a graceful cancel). The numbers above only cover
	// what reached the file, so say so loudly instead of passing them off
	// as a finished run's metrics.
	if !s.Complete {
		fmt.Fprintf(out, "truncated: no end-of-stream marker\n")
		return fmt.Errorf("trace %s is truncated: the writer stopped mid-stream, so the summary above covers only the %d events that reached the file", path, totalEvents)
	}
	return nil
}
