// Command cogsim runs a single protocol over a generated cognitive radio
// network and prints what happened. It exercises the public crn API — the
// same entry points a library user would call.
//
// Examples:
//
//	cogsim -protocol cogcast -n 128 -c 16 -k 4 -C 48
//	cogsim -protocol cogcomp -n 64 -c 8 -k 2 -C 24 -agg stats
//	cogsim -protocol hop -n 8 -c 64 -k 63 -topology partitioned -labels global
//	cogsim -protocol cogcast -jam random -jamk 3 -n 32 -c 16
//	cogsim -protocol cogcast -repeat 32 -parallel 8   # seeded repetitions
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cogsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "cogcast", "protocol: cogcast, cogcomp, session, gossip, rendezvous, rendezvous-agg, hop")
		n        = fs.Int("n", 64, "number of nodes")
		c        = fs.Int("c", 8, "channels per node")
		k        = fs.Int("k", 2, "guaranteed pairwise overlap")
		total    = fs.Int("C", 0, "total channels (0 = 3c for shared-core)")
		topology = fs.String("topology", "shared-core", "topology: full, partitioned, shared-core, random-pool, pairwise")
		labels   = fs.String("labels", "local", "label model: local or global")
		dynamic  = fs.Bool("dynamic", false, "re-draw channel sets every slot")
		jam      = fs.String("jam", "", "jammer strategy (none, random, sweep, split); overrides topology")
		jamK     = fs.Int("jamk", 0, "channels jammed per node per slot")
		seed     = fs.Int64("seed", 1, "root seed")
		source   = fs.Int("source", 0, "source node")
		agg      = fs.String("agg", "sum", "aggregate for cogcomp: sum, count, min, max, stats, collect")
		rounds   = fs.Int("rounds", 3, "reporting rounds for the session protocol")
		rumors   = fs.Int("rumors", 4, "rumor count for the gossip protocol")
		maxSlots = fs.Int("max-slots", 0, "slot budget (0 = automatic)")
		curve    = fs.Bool("curve", false, "print the informed-count curve for cogcast")
		repeat   = fs.Int("repeat", 1, "independent seeded repetitions (cogcast and cogcomp only); prints a slot-count summary")
		workers  = fs.Int("parallel", 0, "workers for -repeat (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := buildNetwork(*jam, *jamK, *n, *c, *k, *total, *topology, *labels, *dynamic, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "network: n=%d c=%d k=%d C=%d dynamic=%v\n",
		net.Nodes(), net.ChannelsPerNode(), net.MinOverlap(), net.TotalChannels(), net.Dynamic())
	fmt.Fprintf(out, "theory:  COGCAST slot bound = %d\n", net.SlotBound(0))

	budget := *maxSlots
	if budget == 0 {
		budget = 64 * net.SlotBound(0)
	}
	if *repeat > 1 {
		return runRepeated(out, *protocol, *repeat, *workers, budget,
			*jam, *jamK, *n, *c, *k, *total, *topology, *labels, *dynamic, *seed, *source, *agg, *maxSlots)
	}
	switch *protocol {
	case "cogcast":
		res, err := net.Broadcast(crn.BroadcastOptions{
			Source: *source, Payload: "INIT", Seed: *seed,
			RunToCompletion: true, MaxSlots: budget, Trajectory: *curve,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cogcast: %d slots, all informed: %v, tree height %d\n",
			res.Slots, res.AllInformed, res.TreeHeight)
		if *curve {
			fmt.Fprintf(out, "epidemic: %s\n", sparkline(res.Trajectory, net.Nodes()))
		}
	case "cogcomp":
		inputs := make([]int64, net.Nodes())
		for i := range inputs {
			inputs[i] = int64(i)
		}
		res, err := net.Aggregate(inputs, crn.AggregateOptions{
			Source: *source, Func: *agg, Seed: *seed, MaxSlots: *maxSlots,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cogcomp: %d slots (phases %d/%d/%d/%d), %s = %v, max message %d words\n",
			res.Slots, res.Phase1Slots, res.Phase2Slots, res.Phase3Slots, res.Phase4Slots,
			*agg, res.Value, res.MaxMessageSize)
	case "session":
		roundInputs := make([][]int64, *rounds)
		for r := range roundInputs {
			roundInputs[r] = make([]int64, net.Nodes())
			for i := range roundInputs[r] {
				roundInputs[r][i] = int64(r*1000 + i)
			}
		}
		res, err := net.AggregateRounds(roundInputs, crn.AggregateOptions{
			Source: *source, Func: *agg, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "session: %d rounds in %d slots (setup %d + %d/round window)\n",
			*rounds, res.Slots, res.SetupSlots, res.RoundSlots)
		for r, v := range res.Values {
			fmt.Fprintf(out, "  round %d: %s = %v\n", r+1, *agg, v)
		}
	case "gossip":
		sources := make([]crn.NodeID, *rumors)
		for i := range sources {
			sources[i] = (i * net.Nodes()) / *rumors
		}
		res, err := net.Gossip(sources, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "gossip: %d rumors to all %d nodes in %d slots, complete: %v\n",
			*rumors, net.Nodes(), res.Slots, res.Complete)
	case "rendezvous":
		slots, done, err := net.RendezvousBroadcast(*source, "INIT", *seed, 128*budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rendezvous broadcast: %d slots, complete: %v\n", slots, done)
	case "rendezvous-agg":
		inputs := make([]int64, net.Nodes())
		slots, done, err := net.RendezvousAggregate(*source, inputs, *seed, 1024*budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rendezvous aggregation: %d slots, complete: %v\n", slots, done)
	case "hop":
		slots, done, err := net.HoppingTogether(*source, "INIT", *seed, 64*net.TotalChannels())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hopping-together: %d slots, complete: %v (one spectrum pass = %d)\n",
			slots, done, net.TotalChannels())
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	return nil
}

// runRepeated executes -repeat independent seeded repetitions of cogcast or
// cogcomp across a bounded worker pool and prints a slot-count summary.
// Every repetition rebuilds its network from a seed derived from the
// repetition index, so the summary is byte-identical at any -parallel value
// (dynamic and jammed assignments are stateful and must not be shared).
func runRepeated(out io.Writer, protocol string, repeat, workers, budget int,
	jam string, jamK, n, c, k, total int, topology, labels string, dynamic bool,
	seed int64, source int, agg string, maxSlots int) error {
	var fn func(trialSeed int64, net *crn.Network) (float64, error)
	switch protocol {
	case "cogcast":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			res, err := net.Broadcast(crn.BroadcastOptions{
				Source: source, Payload: "INIT", Seed: trialSeed,
				RunToCompletion: true, MaxSlots: budget,
			})
			if err != nil {
				return 0, err
			}
			if !res.AllInformed {
				return 0, fmt.Errorf("cogcast incomplete within %d slots", budget)
			}
			return float64(res.Slots), nil
		}
	case "cogcomp":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			inputs := make([]int64, net.Nodes())
			for i := range inputs {
				inputs[i] = int64(i)
			}
			res, err := net.Aggregate(inputs, crn.AggregateOptions{
				Source: source, Func: agg, Seed: trialSeed, MaxSlots: maxSlots,
			})
			if err != nil {
				return 0, err
			}
			return float64(res.Slots), nil
		}
	default:
		return fmt.Errorf("-repeat supports cogcast and cogcomp, not %q", protocol)
	}
	slots, err := parallel.Map(repeat, workers, func(i int) (float64, error) {
		trialSeed := rng.Derive(seed, int64(i))
		net, err := buildNetwork(jam, jamK, n, c, k, total, topology, labels, dynamic, trialSeed)
		if err != nil {
			return 0, err
		}
		return fn(trialSeed, net)
	})
	if err != nil {
		return err
	}
	s, err := stats.Summarize(slots)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s x%d: slots min %.0f / median %.1f / mean %.1f / p99 %.1f / max %.0f\n",
		protocol, repeat, s.Min, s.Median, s.Mean, s.P99, s.Max)
	return nil
}

// sparkline renders an informed-count trajectory as a compact bar curve.
func sparkline(traj []int, max int) string {
	if len(traj) == 0 || max == 0 {
		return ""
	}
	const bars = "▁▂▃▄▅▆▇█"
	// Downsample long runs to at most 60 columns.
	step := (len(traj) + 59) / 60
	var b []rune
	for i := 0; i < len(traj); i += step {
		level := traj[i] * (len([]rune(bars)) - 1) / max
		b = append(b, []rune(bars)[level])
	}
	return string(b)
}

func buildNetwork(jam string, jamK, n, c, k, total int, topology, labels string, dynamic bool, seed int64) (*crn.Network, error) {
	if jam != "" {
		return crn.NewJammedNetwork(n, c, jamK, jam, seed)
	}
	spec := crn.Spec{
		Nodes:           n,
		ChannelsPerNode: c,
		MinOverlap:      k,
		TotalChannels:   total,
		Dynamic:         dynamic,
		Seed:            seed,
	}
	if spec.TotalChannels == 0 {
		spec.TotalChannels = 3 * c
	}
	switch topology {
	case "full":
		spec.Topology = crn.FullOverlap
	case "partitioned":
		spec.Topology = crn.Partitioned
	case "shared-core":
		spec.Topology = crn.SharedCore
	case "random-pool":
		spec.Topology = crn.RandomPool
	case "pairwise":
		spec.Topology = crn.PairwiseDedicated
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	switch labels {
	case "local":
		spec.Labels = crn.LocalLabels
	case "global":
		spec.Labels = crn.GlobalLabels
	default:
		return nil, fmt.Errorf("unknown label model %q", labels)
	}
	return crn.NewNetwork(spec)
}
