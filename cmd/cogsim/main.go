// Command cogsim runs a single protocol over a generated cognitive radio
// network and prints what happened. It exercises the public crn API — the
// same entry points a library user would call.
//
// Examples:
//
//	cogsim -protocol cogcast -n 128 -c 16 -k 4 -C 48
//	cogsim -protocol cogcomp -n 64 -c 8 -k 2 -C 24 -agg stats
//	cogsim -protocol hop -n 8 -c 64 -k 63 -topology partitioned -labels global
//	cogsim -protocol cogcast -jam random -jamk 3 -n 32 -c 16
//	cogsim -protocol cogcast -repeat 32 -parallel 8   # seeded repetitions
//	cogsim -protocol cogcast -trace run.jsonl         # record a JSONL trace
//	cogsim -trace-summary run.jsonl                   # fold it back into numbers
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/prof"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
	"github.com/cogradio/crn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cogsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "cogcast", "protocol: cogcast, cogcomp, session, gossip, rendezvous, rendezvous-agg, hop")
		n        = fs.Int("n", 64, "number of nodes")
		c        = fs.Int("c", 8, "channels per node")
		k        = fs.Int("k", 2, "guaranteed pairwise overlap")
		total    = fs.Int("C", 0, "total channels (0 = 3c for shared-core)")
		topology = fs.String("topology", "shared-core", "topology: full, partitioned, shared-core, random-pool, pairwise")
		labels   = fs.String("labels", "local", "label model: local or global")
		dynamic  = fs.Bool("dynamic", false, "re-draw channel sets every slot")
		jam      = fs.String("jam", "", "jammer strategy (none, random, sweep, block, split); overrides topology")
		jamK     = fs.Int("jamk", 0, "channels jammed per node per slot")
		seed     = fs.Int64("seed", 1, "root seed")
		source   = fs.Int("source", 0, "source node")
		agg      = fs.String("agg", "sum", "aggregate for cogcomp: sum, count, min, max, stats, collect")
		rounds   = fs.Int("rounds", 3, "reporting rounds for the session protocol")
		rumors   = fs.Int("rumors", 4, "rumor count for the gossip protocol")
		maxSlots = fs.Int("max-slots", 0, "slot budget (0 = automatic)")
		check    = fs.Bool("check", false, "run under the invariant oracle: re-verify every slot, the distribution tree, census and aggregate (cogcast, cogcomp, session)")
		recov    = fs.Bool("recover", false, "run cogcomp under the crash-restart recovery supervisor (epoch checkpoints, bounded retries, mediator re-election; DESIGN.md §7)")
		outage   = fs.Float64("outage", 0, "with -recover: per-slot crash probability per node (source protected), 10-slot outages")
		curve    = fs.Bool("curve", false, "print the informed-count curve for cogcast")
		repeat   = fs.Int("repeat", 1, "independent seeded repetitions (cogcast and cogcomp only); prints per-repetition lines and a slot-count summary")
		workers  = fs.Int("parallel", 0, "workers for -repeat (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		shards   = fs.Int("shards", 1, "goroutines sharding each slot's protocol scan inside the engine (1 = serial); output is identical for every value; dynamic/jammed networks run serially")
		traceTo  = fs.String("trace", "", "record a JSONL event trace of the run to this file (cogcast and cogcomp, single run; schema in TRACE.md)")
		traceSum = fs.String("trace-summary", "", "read a trace file and fold it back into summary numbers instead of running anything")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceSum != "" {
		return summarizeTrace(out, *traceSum)
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	err = runProtocol(out, options{
		protocol: *protocol, n: *n, c: *c, k: *k, total: *total,
		topology: *topology, labels: *labels, dynamic: *dynamic,
		jam: *jam, jamK: *jamK, seed: *seed, source: *source, agg: *agg,
		rounds: *rounds, rumors: *rumors, maxSlots: *maxSlots, curve: *curve,
		repeat: *repeat, workers: *workers, shards: *shards, traceTo: *traceTo,
		check: *check, recover: *recov, outage: *outage,
	})
	if serr := stop(); err == nil {
		err = serr
	}
	return err
}

// options carries the parsed flags to the protocol runner.
type options struct {
	protocol                 string
	n, c, k, total           int
	topology, labels         string
	dynamic                  bool
	jam                      string
	jamK                     int
	seed                     int64
	source                   int
	agg                      string
	rounds, rumors, maxSlots int
	curve                    bool
	repeat, workers, shards  int
	traceTo                  string
	check                    bool
	recover                  bool
	outage                   float64
}

func runProtocol(out io.Writer, o options) error {
	net, err := buildNetwork(o.jam, o.jamK, o.n, o.c, o.k, o.total, o.topology, o.labels, o.dynamic, o.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "network: n=%d c=%d k=%d C=%d dynamic=%v\n",
		net.Nodes(), net.ChannelsPerNode(), net.MinOverlap(), net.TotalChannels(), net.Dynamic())
	fmt.Fprintf(out, "theory:  COGCAST slot bound = %d\n", net.SlotBound(0))

	budget := o.maxSlots
	if budget == 0 {
		budget = 64 * net.SlotBound(0)
	}
	if o.repeat > 1 {
		if o.traceTo != "" {
			return fmt.Errorf("-trace records a single run; drop -repeat")
		}
		return runRepeated(out, o, budget)
	}

	// -trace: open the file up front so a bad path fails before the run,
	// and buffer it — JSONL emits one small write per event.
	var traceFile *os.File
	var traceW *bufio.Writer
	if o.traceTo != "" {
		if o.protocol != "cogcast" && o.protocol != "cogcomp" {
			return fmt.Errorf("-trace supports cogcast and cogcomp, not %q", o.protocol)
		}
		traceFile, err = os.Create(o.traceTo)
		if err != nil {
			return err
		}
		traceW = bufio.NewWriter(traceFile)
	}
	closeTrace := func() error {
		if traceFile == nil {
			return nil
		}
		ferr := traceW.Flush()
		if cerr := traceFile.Close(); ferr == nil {
			ferr = cerr
		}
		traceFile = nil
		return ferr
	}
	defer closeTrace()

	if o.check && o.protocol != "cogcast" && o.protocol != "cogcomp" && o.protocol != "session" {
		return fmt.Errorf("-check supports cogcast, cogcomp and session, not %q", o.protocol)
	}
	if (o.recover || o.outage > 0) && o.protocol != "cogcomp" {
		return fmt.Errorf("-recover/-outage support cogcomp, not %q", o.protocol)
	}
	if o.outage > 0 && !o.recover {
		return fmt.Errorf("-outage needs -recover (the classic runner has no fault injection)")
	}

	switch o.protocol {
	case "cogcast":
		opts := crn.BroadcastOptions{
			Source: o.source, Payload: "INIT", Seed: o.seed,
			RunToCompletion: true, MaxSlots: budget, Trajectory: o.curve,
			Check: o.check, Shards: o.shards,
		}
		if traceW != nil {
			opts.Trace = traceW
			opts.CollectMetrics = true
		}
		res, err := net.Broadcast(opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cogcast: %d slots, all informed: %v, tree height %d\n",
			res.Slots, res.AllInformed, res.TreeHeight)
		if o.curve {
			fmt.Fprintf(out, "epidemic: %s\n", sparkline(res.Trajectory, net.Nodes()))
		}
		if traceW != nil {
			if err := closeTrace(); err != nil {
				return err
			}
			fmt.Fprintf(out, "medium: %s\n", mediumLine(res.Metrics))
			fmt.Fprintf(out, "trace: wrote %s\n", o.traceTo)
		}
	case "cogcomp":
		inputs := make([]int64, net.Nodes())
		for i := range inputs {
			inputs[i] = int64(i)
		}
		opts := crn.AggregateOptions{
			Source: o.source, Func: o.agg, Seed: o.seed, MaxSlots: o.maxSlots,
			Check: o.check, Recover: o.recover, OutageRate: o.outage,
			Shards: o.shards,
		}
		if traceW != nil {
			opts.Trace = traceW
		}
		res, err := net.Aggregate(inputs, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cogcomp: %d slots (phases %d/%d/%d/%d), %s = %v, max message %d words\n",
			res.Slots, res.Phase1Slots, res.Phase2Slots, res.Phase3Slots, res.Phase4Slots,
			o.agg, res.Value, res.MaxMessageSize)
		if o.recover {
			fmt.Fprintf(out, "recovery: contributors %d/%d, retries %d, re-elections %d, restarts %d, degraded %v, stalled %v\n",
				len(res.Contributors), net.Nodes(), res.Retries, res.Reelections, res.Restarts,
				res.Degraded, res.Stalled)
		}
		if traceW != nil {
			if err := closeTrace(); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace: wrote %s\n", o.traceTo)
		}
	case "session":
		roundInputs := make([][]int64, o.rounds)
		for r := range roundInputs {
			roundInputs[r] = make([]int64, net.Nodes())
			for i := range roundInputs[r] {
				roundInputs[r][i] = int64(r*1000 + i)
			}
		}
		res, err := net.AggregateRounds(roundInputs, crn.AggregateOptions{
			Source: o.source, Func: o.agg, Seed: o.seed, Check: o.check,
			Shards: o.shards,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "session: %d rounds in %d slots (setup %d + %d/round window)\n",
			o.rounds, res.Slots, res.SetupSlots, res.RoundSlots)
		for r, v := range res.Values {
			fmt.Fprintf(out, "  round %d: %s = %v\n", r+1, o.agg, v)
		}
	case "gossip":
		sources := make([]crn.NodeID, o.rumors)
		for i := range sources {
			sources[i] = (i * net.Nodes()) / o.rumors
		}
		res, err := net.Gossip(sources, o.seed, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "gossip: %d rumors to all %d nodes in %d slots, complete: %v\n",
			o.rumors, net.Nodes(), res.Slots, res.Complete)
	case "rendezvous":
		slots, done, err := net.RendezvousBroadcast(o.source, "INIT", o.seed, 128*budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rendezvous broadcast: %d slots, complete: %v\n", slots, done)
	case "rendezvous-agg":
		inputs := make([]int64, net.Nodes())
		slots, done, err := net.RendezvousAggregate(o.source, inputs, o.seed, 1024*budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rendezvous aggregation: %d slots, complete: %v\n", slots, done)
	case "hop":
		slots, done, err := net.HoppingTogether(o.source, "INIT", o.seed, 64*net.TotalChannels())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hopping-together: %d slots, complete: %v (one spectrum pass = %d)\n",
			slots, done, net.TotalChannels())
	default:
		return fmt.Errorf("unknown protocol %q", o.protocol)
	}
	return nil
}

// mediumLine renders public MediumMetrics through the internal
// metrics.Metrics formatter, so the live run's line and the one
// -trace-summary replays from a trace are comparable byte for byte.
func mediumLine(m *crn.MediumMetrics) string {
	return metrics.Metrics{
		Slots:               m.Slots,
		BusyChannelsPerSlot: m.BusyChannelsPerSlot,
		CollisionRate:       m.CollisionRate,
		DeliveryRate:        m.DeliveryRate,
		BroadcastsPerSlot:   m.BroadcastsPerSlot,
	}.String()
}

// summarizeTrace implements -trace-summary: read a JSONL trace and fold it
// back into the numbers a live run would have printed — the header, event
// counts per kind, the replayed medium metrics, and the protocol's
// progress/phase milestones.
func summarizeTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Summarize(bufio.NewReader(f))
	if err != nil {
		return err
	}
	m := s.Meta
	fmt.Fprintf(out, "trace: %s protocol=%s n=%d c=%d k=%d C=%d seed=%d collisions=%s\n",
		path, m.Protocol, m.Nodes, m.PerNode, m.MinOverlap, m.Channels, m.Seed, m.Collisions)
	totalEvents := 0
	for _, count := range s.Events {
		totalEvents += count
	}
	fmt.Fprintf(out, "events: %d", totalEvents)
	for _, kind := range []trace.Kind{
		trace.KindSlot, trace.KindChannel, trace.KindProgress, trace.KindInformed,
		trace.KindPhase, trace.KindCensus, trace.KindFault, trace.KindJam, trace.KindTrial,
		trace.KindEpoch, trace.KindCheckpoint, trace.KindRetry, trace.KindReelect,
		trace.KindRestart,
	} {
		if count := s.Events[kind]; count > 0 {
			fmt.Fprintf(out, " %s=%d", kind, count)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "medium: %s\n", s.Metrics)
	if s.TotalNodes >= 0 {
		fmt.Fprintf(out, "informed: %d/%d\n", s.FinalInformed, s.TotalNodes)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(out, "phase %d: starts slot %d (nominal length %d)\n", p.A, p.Slot, p.B)
	}
	return nil
}

// runRepeated executes -repeat independent seeded repetitions of cogcast or
// cogcomp across a bounded worker pool, prints one line per repetition
// (index, derived seed, slots) and a slot-count summary. Every repetition
// rebuilds its network from a seed derived from the repetition index, so
// the output is byte-identical at any -parallel value (dynamic and jammed
// assignments are stateful and must not be shared).
func runRepeated(out io.Writer, o options, budget int) error {
	var fn func(trialSeed int64, net *crn.Network) (float64, error)
	switch o.protocol {
	case "cogcast":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			res, err := net.Broadcast(crn.BroadcastOptions{
				Source: o.source, Payload: "INIT", Seed: trialSeed,
				RunToCompletion: true, MaxSlots: budget, Check: o.check,
				Shards: o.shards,
			})
			if err != nil {
				return 0, err
			}
			if !res.AllInformed {
				return 0, fmt.Errorf("cogcast incomplete within %d slots", budget)
			}
			return float64(res.Slots), nil
		}
	case "cogcomp":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			inputs := make([]int64, net.Nodes())
			for i := range inputs {
				inputs[i] = int64(i)
			}
			res, err := net.Aggregate(inputs, crn.AggregateOptions{
				Source: o.source, Func: o.agg, Seed: trialSeed, MaxSlots: o.maxSlots,
				Check: o.check, Recover: o.recover, OutageRate: o.outage,
				Shards: o.shards,
			})
			if err != nil {
				return 0, err
			}
			return float64(res.Slots), nil
		}
	default:
		return fmt.Errorf("-repeat supports cogcast and cogcomp, not %q", o.protocol)
	}
	slots, err := parallel.Map(o.repeat, o.workers, func(i int) (float64, error) {
		trialSeed := rng.Derive(o.seed, int64(i))
		net, err := buildNetwork(o.jam, o.jamK, o.n, o.c, o.k, o.total, o.topology, o.labels, o.dynamic, trialSeed)
		if err != nil {
			return 0, fmt.Errorf("rep %d (seed %d): %w", i, trialSeed, err)
		}
		v, err := fn(trialSeed, net)
		if err != nil {
			return 0, fmt.Errorf("rep %d (seed %d): %w", i, trialSeed, err)
		}
		return v, nil
	})
	if err != nil {
		return err
	}
	for i, v := range slots {
		fmt.Fprintf(out, "rep %d seed=%d: %.0f slots\n", i, rng.Derive(o.seed, int64(i)), v)
	}
	s, err := stats.Summarize(slots)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s x%d: slots min %.0f / median %.1f / mean %.1f / p99 %.1f / max %.0f\n",
		o.protocol, o.repeat, s.Min, s.Median, s.Mean, s.P99, s.Max)
	return nil
}

// sparkline renders an informed-count trajectory as a compact bar curve.
func sparkline(traj []int, max int) string {
	if len(traj) == 0 || max == 0 {
		return ""
	}
	const bars = "▁▂▃▄▅▆▇█"
	// Downsample long runs to at most 60 columns.
	step := (len(traj) + 59) / 60
	var b []rune
	for i := 0; i < len(traj); i += step {
		level := traj[i] * (len([]rune(bars)) - 1) / max
		b = append(b, []rune(bars)[level])
	}
	return string(b)
}

func buildNetwork(jam string, jamK, n, c, k, total int, topology, labels string, dynamic bool, seed int64) (*crn.Network, error) {
	if jam != "" {
		return crn.NewJammedNetwork(n, c, jamK, jam, seed)
	}
	spec := crn.Spec{
		Nodes:           n,
		ChannelsPerNode: c,
		MinOverlap:      k,
		TotalChannels:   total,
		Dynamic:         dynamic,
		Seed:            seed,
	}
	if spec.TotalChannels == 0 {
		spec.TotalChannels = 3 * c
	}
	switch topology {
	case "full":
		spec.Topology = crn.FullOverlap
	case "partitioned":
		spec.Topology = crn.Partitioned
	case "shared-core":
		spec.Topology = crn.SharedCore
	case "random-pool":
		spec.Topology = crn.RandomPool
	case "pairwise":
		spec.Topology = crn.PairwiseDedicated
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	switch labels {
	case "local":
		spec.Labels = crn.LocalLabels
	case "global":
		spec.Labels = crn.GlobalLabels
	default:
		return nil, fmt.Errorf("unknown label model %q", labels)
	}
	return crn.NewNetwork(spec)
}
