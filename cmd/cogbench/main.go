// Command cogbench runs the experiment suite that reproduces every
// analytical claim of the paper (see DESIGN.md for the per-experiment
// index) and renders the resulting tables.
//
// Examples:
//
//	cogbench                      # run everything, full sweeps
//	cogbench -exp E1,E6 -quick    # two experiments, reduced sweeps
//	cogbench -format markdown     # Markdown output (EXPERIMENTS.md source)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/cogradio/crn/internal/exper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cogbench", flag.ContinueOnError)
	var (
		expList = fs.String("exp", "all", "comma-separated experiment IDs (e.g. E1,E6) or 'all'")
		seed    = fs.Int64("seed", 42, "root seed")
		trials  = fs.Int("trials", 0, "trials per parameter point (0 = default)")
		quick   = fs.Bool("quick", false, "reduced sweeps")
		format  = fs.String("format", "text", "output format: text, markdown or csv")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Fprintf(out, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []exper.Experiment
	if *expList == "all" {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := exper.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	cfg := exper.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			var rerr error
			switch *format {
			case "markdown":
				rerr = t.Markdown(out)
			case "csv":
				rerr = t.CSV(out)
			case "text":
				rerr = t.Render(out)
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
			if rerr != nil {
				return rerr
			}
		}
		if *format == "text" {
			fmt.Fprintf(out, "[%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
