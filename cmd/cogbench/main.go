// Command cogbench runs the experiment suite that reproduces every
// analytical claim of the paper (see DESIGN.md for the per-experiment
// index) and renders the resulting tables.
//
// Examples:
//
//	cogbench                      # run everything, full sweeps
//	cogbench -exp E1,E6 -quick    # two experiments, reduced sweeps
//	cogbench -format markdown     # Markdown output (EXPERIMENTS.md source)
//	cogbench -parallel 8          # 8 trial workers; tables are identical
//	cogbench -bench-out BENCH_baseline.json   # machine-readable timings
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/cogradio/crn/internal/exper"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/prof"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogbench:", err)
		os.Exit(1)
	}
}

// benchRecord is one experiment's entry in the -bench-out report.
type benchRecord struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Slots  int64   `json:"slots"`
	Allocs uint64  `json:"allocs"`
	Bytes  uint64  `json:"bytes"`
}

// benchReport is the -bench-out file layout. Wall-clock shrinks with
// -parallel; slot counts are invariant (same trials, same seeds).
type benchReport struct {
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Seed        int64         `json:"seed"`
	Trials      int           `json:"trials"`
	Quick       bool          `json:"quick"`
	Parallel    int           `json:"parallel"`
	Experiments []benchRecord `json:"experiments"`
	TotalWallMS float64       `json:"total_wall_ms"`
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("cogbench", flag.ContinueOnError)
	var (
		expList  = fs.String("exp", "all", "comma-separated experiment IDs (e.g. E1,E6) or 'all'")
		seed     = fs.Int64("seed", 42, "root seed")
		trials   = fs.Int("trials", 0, "trials per parameter point (0 = default)")
		quick    = fs.Bool("quick", false, "reduced sweeps")
		format   = fs.String("format", "text", "output format: text, markdown or csv")
		list     = fs.Bool("list", false, "list experiments and exit")
		workers  = fs.Int("parallel", 0, "trial workers per experiment (0 = GOMAXPROCS, 1 = serial); tables are identical for every value")
		benchOut = fs.String("bench-out", "", "write a machine-readable JSON benchmark report (wall-clock, slots, allocs per experiment) to this file")
		traceTo  = fs.String("trace", "", "record a JSONL event trace of the traced experiments to this file (forces serial trials; schema in TRACE.md)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); serr != nil && retErr == nil {
			retErr = serr
		}
	}()

	if *list {
		for _, e := range exper.All() {
			fmt.Fprintf(out, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []exper.Experiment
	if *expList == "all" {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := exper.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      *seed,
		Trials:    *trials,
		Quick:     *quick,
		Parallel:  *workers,
	}
	if report.Parallel <= 0 {
		report.Parallel = parallel.DefaultWorkers()
	}

	cfg := exper.Config{Seed: *seed, Trials: *trials, Quick: *quick, Parallel: *workers}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		sink := trace.NewJSONL(w)
		sink.SetMeta(trace.Meta{Protocol: "exper", Seed: *seed})
		cfg.Trace = sink
		report.Parallel = 1 // sinks force serial trials
		defer func() {
			err := w.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = sink.Err()
			}
			if err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	for _, e := range selected {
		start := time.Now()
		slots0 := sim.SlotsExecuted()
		var mem0 runtime.MemStats
		if *benchOut != "" {
			runtime.ReadMemStats(&mem0)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *benchOut != "" {
			var mem1 runtime.MemStats
			runtime.ReadMemStats(&mem1)
			report.Experiments = append(report.Experiments, benchRecord{
				ID:     e.ID,
				WallMS: float64(time.Since(start).Microseconds()) / 1000,
				Slots:  sim.SlotsExecuted() - slots0,
				Allocs: mem1.Mallocs - mem0.Mallocs,
				Bytes:  mem1.TotalAlloc - mem0.TotalAlloc,
			})
		}
		for _, t := range tables {
			var rerr error
			switch *format {
			case "markdown":
				rerr = t.Markdown(out)
			case "csv":
				rerr = t.CSV(out)
			case "text":
				rerr = t.Render(out)
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
			if rerr != nil {
				return rerr
			}
		}
		if *format == "text" {
			fmt.Fprintf(out, "[%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *benchOut != "" {
		for _, r := range report.Experiments {
			report.TotalWallMS += r.WallMS
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchmark report: %s (%d experiments, %.0f ms total)\n",
			*benchOut, len(report.Experiments), report.TotalWallMS)
	}
	return nil
}
