// Command cogbench runs the experiment suite that reproduces every
// analytical claim of the paper (see DESIGN.md for the per-experiment
// index) and renders the resulting tables.
//
// Examples:
//
//	cogbench                      # run everything, full sweeps
//	cogbench -exp E1,E6 -quick    # two experiments, reduced sweeps
//	cogbench -format markdown     # Markdown output (EXPERIMENTS.md source)
//	cogbench -parallel 8          # 8 trial workers; tables are identical
//	cogbench -bench-out BENCH_baseline.json   # machine-readable timings
//	cogbench -compare old.json new.json       # per-experiment benchmark delta
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/cogradio/crn/internal/exper"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/prof"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the suite's context: in-flight trials drain,
	// the tables rendered so far stay on stdout, trace files get their
	// cancel event and end-of-stream marker, and the process exits 130
	// (the shell convention for SIGINT). Other failures exit 1.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cogbench:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// run is runCtx without an interrupt context (tests call it directly).
func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out)
}

// benchRecord is one experiment's entry in the -bench-out report. Slots and
// Nodes difference the process-global sim counters around the experiment;
// SlotsPerSec (throughput) and BytesPerNode (allocated bytes amortized over
// every node instantiated) are derived from them at report time.
type benchRecord struct {
	ID           string  `json:"id"`
	WallMS       float64 `json:"wall_ms"`
	Slots        int64   `json:"slots"`
	Allocs       uint64  `json:"allocs"`
	Bytes        uint64  `json:"bytes"`
	Nodes        int64   `json:"nodes,omitempty"`
	SlotsPerSec  float64 `json:"slots_per_sec,omitempty"`
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
}

// benchReport is the -bench-out file layout. Wall-clock shrinks with
// -parallel; slot counts are invariant (same trials, same seeds).
type benchReport struct {
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Seed        int64         `json:"seed"`
	Trials      int           `json:"trials"`
	Quick       bool          `json:"quick"`
	Parallel    int           `json:"parallel"`
	Shards      int           `json:"shards,omitempty"`
	Sparse      bool          `json:"sparse,omitempty"`
	Experiments []benchRecord `json:"experiments"`
	TotalWallMS float64       `json:"total_wall_ms"`
}

// round3 rounds wall-clock milliseconds to microsecond precision so the JSON
// fields read as clean decimals instead of accumulated float artifacts
// (9268.425, not 9268.425000000001).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func runCtx(ctx context.Context, args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("cogbench", flag.ContinueOnError)
	var (
		expList  = fs.String("exp", "all", "comma-separated experiment IDs (e.g. E1,E6) or 'all'")
		seed     = fs.Int64("seed", 42, "root seed")
		trials   = fs.Int("trials", 0, "trials per parameter point (0 = default)")
		quick    = fs.Bool("quick", false, "reduced sweeps")
		check    = fs.Bool("check", false, "replay every trial under the invariant oracle (package invariant); tables are unchanged, any violation fails the experiment")
		recov    = fs.Bool("recover", false, "route every COGCOMP trial through the crash-restart recovery supervisor (package recover); fault-free tables are byte-identical to the classic runner")
		format   = fs.String("format", "text", "output format: text, markdown or csv")
		list     = fs.Bool("list", false, "list experiments and exit")
		workers  = fs.Int("parallel", 0, "trial workers per experiment (0 = GOMAXPROCS, 1 = serial); tables are identical for every value")
		shards   = fs.Int("shards", 1, "goroutines sharding each slot's protocol scan inside the engine (1 = serial); tables are identical for every value")
		sparse   = fs.Bool("sparse", false, "event-driven stepping: skip dormant nodes instead of scanning all n each slot (sim.WithSparse); tables are identical either way")
		benchOut = fs.String("bench-out", "", "write a machine-readable JSON benchmark report (wall-clock, slots, allocs per experiment) to this file")
		compare  = fs.Bool("compare", false, "compare two -bench-out reports (old.json new.json as positional args), print the per-experiment delta table, and exit non-zero on regression")
		wallLmt  = fs.Float64("wall-limit", 2.0, "with -compare: fail if total wall-clock exceeds this multiple of the old report's (<= 0 disables; wall is machine-dependent)")
		allocLmt = fs.Float64("alloc-limit", 1.25, "with -compare: fail if any experiment's allocations exceed this multiple of the old report's (<= 0 disables)")
		spsLmt   = fs.Float64("slotsps-limit", 0, "with -compare: fail if total slots/sec falls below the old report's divided by this factor (<= 0 disables; throughput is machine-dependent)")
		bpnLmt   = fs.Float64("bytespn-limit", 0, "with -compare: fail if any experiment's bytes/node exceed this multiple of the old report's (<= 0 disables)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); an exceeded budget interrupts the current experiment at the next slot boundary")
		traceTo  = fs.String("trace", "", "record a JSONL event trace of the traced experiments to this file (forces serial trials; schema in TRACE.md)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		return runCompare(fs.Args(), out, compareLimits{wall: *wallLmt, alloc: *allocLmt, slotsPS: *spsLmt, bytesPN: *bpnLmt})
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); serr != nil && retErr == nil {
			retErr = serr
		}
	}()

	if *list {
		for _, e := range exper.All() {
			fmt.Fprintf(out, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []exper.Experiment
	if *expList == "all" {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := exper.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      *seed,
		Trials:    *trials,
		Quick:     *quick,
		Parallel:  *workers,
	}
	if report.Parallel <= 0 {
		report.Parallel = parallel.DefaultWorkers()
	}

	if *shards > 1 {
		report.Shards = *shards
	}
	report.Sparse = *sparse
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := exper.Config{Seed: *seed, Trials: *trials, Quick: *quick, Parallel: *workers, Check: *check, Recover: *recov, Shards: *shards, Sparse: *sparse, Context: ctx}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		sink := trace.NewJSONL(w)
		sink.SetMeta(trace.Meta{Protocol: "exper", Seed: *seed})
		cfg.Trace = sink
		report.Parallel = 1 // sinks force serial trials
		defer func() {
			// Even an interrupted run leaves a parseable trace: record the
			// interrupt as a cancel event, then the end-of-stream marker.
			var it *sim.Interrupted
			if errors.As(retErr, &it) {
				sink.Emit(trace.CancelEvent(it.Slots, errors.Is(it.Cause, context.DeadlineExceeded)))
			}
			sink.Finish()
			err := w.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = sink.Err()
			}
			if err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	for _, e := range selected {
		start := time.Now()
		slots0 := sim.SlotsExecuted()
		nodes0 := sim.NodesSimulated()
		var mem0 runtime.MemStats
		if *benchOut != "" {
			runtime.ReadMemStats(&mem0)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *benchOut != "" {
			var mem1 runtime.MemStats
			runtime.ReadMemStats(&mem1)
			rec := benchRecord{
				ID:     e.ID,
				WallMS: round3(float64(time.Since(start).Microseconds()) / 1000),
				Slots:  sim.SlotsExecuted() - slots0,
				Allocs: mem1.Mallocs - mem0.Mallocs,
				Bytes:  mem1.TotalAlloc - mem0.TotalAlloc,
				Nodes:  sim.NodesSimulated() - nodes0,
			}
			if rec.WallMS > 0 {
				rec.SlotsPerSec = round3(float64(rec.Slots) / (rec.WallMS / 1000))
			}
			if rec.Nodes > 0 {
				rec.BytesPerNode = round3(float64(rec.Bytes) / float64(rec.Nodes))
			}
			report.Experiments = append(report.Experiments, rec)
		}
		for _, t := range tables {
			var rerr error
			switch *format {
			case "markdown":
				rerr = t.Markdown(out)
			case "csv":
				rerr = t.CSV(out)
			case "text":
				rerr = t.Render(out)
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
			if rerr != nil {
				return rerr
			}
		}
		if *format == "text" {
			fmt.Fprintf(out, "[%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *benchOut != "" {
		for _, r := range report.Experiments {
			report.TotalWallMS += r.WallMS
		}
		report.TotalWallMS = round3(report.TotalWallMS)
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchmark report: %s (%d experiments, %.0f ms total)\n",
			*benchOut, len(report.Experiments), report.TotalWallMS)
	}
	return nil
}

func readReport(path string) (*benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Experiments) == 0 {
		return nil, fmt.Errorf("%s: report has no experiments (not a -bench-out file?)", path)
	}
	for i, rec := range r.Experiments {
		if rec.ID == "" {
			return nil, fmt.Errorf("%s: experiment %d has no id", path, i)
		}
	}
	return &r, nil
}

// ratioCell formats new/old as a multiplier for the comparison table.
func ratioCell(newV, oldV float64) string {
	if oldV == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", newV/oldV)
}

// compareLimits carries -compare's regression thresholds. Zero (or negative)
// disables a check.
type compareLimits struct {
	// wall fails the comparison when total wall-clock exceeds wall times
	// the old report's.
	wall float64
	// alloc fails it when any experiment's allocation count exceeds alloc
	// times the old one.
	alloc float64
	// slotsPS fails it when total slot throughput falls below the old
	// report's divided by slotsPS — the throughput mirror of wall.
	slotsPS float64
	// bytesPN fails it when any experiment's bytes/node exceed bytesPN
	// times the old one — the per-node mirror of alloc.
	bytesPN float64
}

// runCompare renders the per-experiment delta between two -bench-out reports
// and returns an error (non-zero exit) when the new report regresses past the
// limits (see compareLimits). Limits <= 0 disable the respective check —
// wall-clock and slots/sec are only comparable between runs on the same
// machine, so CI compares allocations and bytes/node alone. Experiments
// present in only one report are listed but never fail the comparison.
func runCompare(paths []string, out io.Writer, limits compareLimits) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two report files: old.json new.json")
	}
	oldR, err := readReport(paths[0])
	if err != nil {
		return err
	}
	newR, err := readReport(paths[1])
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchRecord, len(oldR.Experiments))
	for _, r := range oldR.Experiments {
		oldBy[r.ID] = r
	}
	t := &exper.Table{
		Title: fmt.Sprintf("benchmark comparison: %s -> %s", paths[0], paths[1]),
		Columns: []string{"experiment", "wall ms old", "wall ms new", "wall",
			"allocs old", "allocs new", "allocs", "bytes old", "bytes new", "bytes",
			"slots/s old", "slots/s new", "slots/s", "B/node old", "B/node new", "B/node"},
	}
	var regressions []string
	var oldAllocs, newAllocs, oldBytes, newBytes uint64
	var oldSlots, newSlots int64
	for _, n := range newR.Experiments {
		o, ok := oldBy[n.ID]
		if !ok {
			t.AddRow(n.ID, "-", fmt.Sprintf("%.1f", n.WallMS), "new",
				"-", fmt.Sprintf("%d", n.Allocs), "new", "-", fmt.Sprintf("%d", n.Bytes), "new",
				"-", fmt.Sprintf("%.0f", n.SlotsPerSec), "new", "-", fmt.Sprintf("%.0f", n.BytesPerNode), "new")
			continue
		}
		delete(oldBy, n.ID)
		oldAllocs += o.Allocs
		newAllocs += n.Allocs
		oldBytes += o.Bytes
		newBytes += n.Bytes
		oldSlots += o.Slots
		newSlots += n.Slots
		t.AddRow(n.ID,
			fmt.Sprintf("%.1f", o.WallMS), fmt.Sprintf("%.1f", n.WallMS), ratioCell(n.WallMS, o.WallMS),
			fmt.Sprintf("%d", o.Allocs), fmt.Sprintf("%d", n.Allocs), ratioCell(float64(n.Allocs), float64(o.Allocs)),
			fmt.Sprintf("%d", o.Bytes), fmt.Sprintf("%d", n.Bytes), ratioCell(float64(n.Bytes), float64(o.Bytes)),
			fmt.Sprintf("%.0f", o.SlotsPerSec), fmt.Sprintf("%.0f", n.SlotsPerSec), ratioCell(n.SlotsPerSec, o.SlotsPerSec),
			fmt.Sprintf("%.0f", o.BytesPerNode), fmt.Sprintf("%.0f", n.BytesPerNode), ratioCell(n.BytesPerNode, o.BytesPerNode))
		if limits.alloc > 0 && o.Allocs > 0 && float64(n.Allocs) > limits.alloc*float64(o.Allocs) {
			regressions = append(regressions,
				fmt.Sprintf("%s allocs %.2fx old (limit %.2fx)", n.ID, float64(n.Allocs)/float64(o.Allocs), limits.alloc))
		}
		if limits.bytesPN > 0 && o.BytesPerNode > 0 && n.BytesPerNode > limits.bytesPN*o.BytesPerNode {
			regressions = append(regressions,
				fmt.Sprintf("%s bytes/node %.2fx old (limit %.2fx)", n.ID, n.BytesPerNode/o.BytesPerNode, limits.bytesPN))
		}
	}
	for _, o := range oldR.Experiments {
		if _, removed := oldBy[o.ID]; removed {
			t.AddRow(o.ID, fmt.Sprintf("%.1f", o.WallMS), "-", "removed",
				fmt.Sprintf("%d", o.Allocs), "-", "removed", fmt.Sprintf("%d", o.Bytes), "-", "removed",
				fmt.Sprintf("%.0f", o.SlotsPerSec), "-", "removed", fmt.Sprintf("%.0f", o.BytesPerNode), "-", "removed")
		}
	}
	// Total throughput is recomputed from the matched experiments' slot and
	// wall sums rather than averaged per-experiment values.
	oldSPS, newSPS := 0.0, 0.0
	if oldR.TotalWallMS > 0 {
		oldSPS = float64(oldSlots) / (oldR.TotalWallMS / 1000)
	}
	if newR.TotalWallMS > 0 {
		newSPS = float64(newSlots) / (newR.TotalWallMS / 1000)
	}
	t.AddRow("total",
		fmt.Sprintf("%.1f", oldR.TotalWallMS), fmt.Sprintf("%.1f", newR.TotalWallMS), ratioCell(newR.TotalWallMS, oldR.TotalWallMS),
		fmt.Sprintf("%d", oldAllocs), fmt.Sprintf("%d", newAllocs), ratioCell(float64(newAllocs), float64(oldAllocs)),
		fmt.Sprintf("%d", oldBytes), fmt.Sprintf("%d", newBytes), ratioCell(float64(newBytes), float64(oldBytes)),
		fmt.Sprintf("%.0f", oldSPS), fmt.Sprintf("%.0f", newSPS), ratioCell(newSPS, oldSPS),
		"-", "-", "-")
	if limits.wall > 0 && oldR.TotalWallMS > 0 && newR.TotalWallMS > limits.wall*oldR.TotalWallMS {
		regressions = append(regressions,
			fmt.Sprintf("total wall %.2fx old (limit %.2fx)", newR.TotalWallMS/oldR.TotalWallMS, limits.wall))
	}
	if limits.slotsPS > 0 && oldSPS > 0 && newSPS < oldSPS/limits.slotsPS {
		regressions = append(regressions,
			fmt.Sprintf("total slots/sec %.2fx old (limit 1/%.2fx)", newSPS/oldSPS, limits.slotsPS))
	}
	var enabled []string
	if limits.alloc > 0 {
		enabled = append(enabled, fmt.Sprintf("per-experiment allocs %.2fx", limits.alloc))
	}
	if limits.bytesPN > 0 {
		enabled = append(enabled, fmt.Sprintf("per-experiment bytes/node %.2fx", limits.bytesPN))
	}
	if limits.wall > 0 {
		enabled = append(enabled, fmt.Sprintf("total wall %.2fx", limits.wall))
	}
	if limits.slotsPS > 0 {
		enabled = append(enabled, fmt.Sprintf("total slots/sec 1/%.2fx", limits.slotsPS))
	}
	if len(enabled) > 0 {
		t.AddNote("regression limits: %s", strings.Join(enabled, ", "))
	} else {
		t.AddNote("regression checks disabled")
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression: %s", strings.Join(regressions, "; "))
	}
	return nil
}
