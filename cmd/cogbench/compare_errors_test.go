package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// validReport returns a minimal well-formed -bench-out file for pairing
// with a broken one, so the error under test is the broken file's.
func validReport(t *testing.T) string {
	t.Helper()
	return writeReport(t, "ok.json", benchReport{
		TotalWallMS: 100,
		Experiments: []benchRecord{{ID: "E1", WallMS: 100, Allocs: 10, Bytes: 40}},
	})
}

func TestCompareMalformedJSON(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{\"experiments\": [truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-compare", bad, validReport(t)}, &out)
	if err == nil {
		t.Fatal("malformed old report accepted")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error does not name the offending file: %v", err)
	}
	err = run([]string{"-compare", validReport(t), bad}, &out)
	if err == nil {
		t.Fatal("malformed new report accepted")
	}
}

func TestCompareRejectsEmptyReport(t *testing.T) {
	// Valid JSON, but not a -bench-out report: no experiments key at all.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-compare", empty, validReport(t)}, &out)
	if err == nil || !strings.Contains(err.Error(), "no experiments") {
		t.Errorf("empty report: err = %v, want 'no experiments'", err)
	}
}

func TestCompareRejectsRecordWithoutID(t *testing.T) {
	noID := writeReport(t, "noid.json", benchReport{
		TotalWallMS: 100,
		Experiments: []benchRecord{{WallMS: 100, Allocs: 10}},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", validReport(t), noID}, &out)
	if err == nil || !strings.Contains(err.Error(), "no id") {
		t.Errorf("id-less record: err = %v, want 'no id'", err)
	}
}

func TestCompareLimitFlagParseError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-compare", "-wall-limit", "fast", "a.json", "b.json"}, &out); err == nil {
		t.Error("unparseable -wall-limit accepted")
	}
	if err := run([]string{"-compare", "-alloc-limit", "1.2.3", "a.json", "b.json"}, &out); err == nil {
		t.Error("unparseable -alloc-limit accepted")
	}
}

// TestHelperProcess re-executes this test binary as the cogbench command:
// the exit-code tests below spawn it with COGBENCH_HELPER=1 and the real
// argv after "--", so they observe main's actual os.Exit status.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("COGBENCH_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Args = append([]string{"cogbench"}, args...)
	main()
	os.Exit(0)
}

// runAsCommand spawns the helper process with the given cogbench args and
// returns its exit code.
func runAsCommand(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=TestHelperProcess", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "COGBENCH_HELPER=1")
	err := cmd.Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("helper process failed to start: %v", err)
	return -1
}

func TestCompareExitCodes(t *testing.T) {
	good := validReport(t)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A regressed pair: new report quadruples E1's allocations.
	regressed := writeReport(t, "regressed.json", benchReport{
		TotalWallMS: 100,
		Experiments: []benchRecord{{ID: "E1", WallMS: 100, Allocs: 40, Bytes: 160}},
	})
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean comparison", []string{"-compare", good, good}, 0},
		{"malformed json", []string{"-compare", bad, good}, 1},
		{"missing file", []string{"-compare", good, filepath.Join(t.TempDir(), "missing.json")}, 1},
		{"one positional arg", []string{"-compare", good}, 1},
		{"limit parse error", []string{"-compare", "-alloc-limit", "plenty", good, good}, 1},
		{"alloc regression", []string{"-compare", good, regressed}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runAsCommand(t, c.args...); got != c.want {
				t.Errorf("exit code %d, want %d", got, c.want)
			}
		})
	}
}
