package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"E1", "E12", "E19"} {
		if !strings.Contains(s, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E12") || !strings.Contains(s, "finished in") {
		t.Errorf("output = %q", s)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e6", "-quick", "-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### E6") {
		t.Errorf("markdown output = %q", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "m contenders,") {
		t.Errorf("csv output = %q", s)
	}
}

func TestMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E6, E7", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E6:") || !strings.Contains(s, "E7a:") {
		t.Errorf("output = %q", s)
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-exp", "E12", "-quick", "-trials", "4", "-format", "csv", "-parallel", workers}
	}
	var serial, par bytes.Buffer
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(args("8"), &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("tables differ across worker counts:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestBenchOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "E3", "-quick", "-trials", "2", "-bench-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GoVersion   string `json:"go_version"`
		Parallel    int    `json:"parallel"`
		Experiments []struct {
			ID     string  `json:"id"`
			WallMS float64 `json:"wall_ms"`
			Slots  int64   `json:"slots"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("bench-out is not valid JSON: %v", err)
	}
	if report.GoVersion == "" || report.Parallel < 1 {
		t.Errorf("report metadata incomplete: %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "E3" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	if report.Experiments[0].Slots <= 0 {
		t.Errorf("E3 slot count = %d, want > 0", report.Experiments[0].Slots)
	}
	if !strings.Contains(out.String(), "benchmark report:") {
		t.Errorf("missing report line in output: %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "E12", "-format", "tsv"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}
