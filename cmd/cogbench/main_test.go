package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"E1", "E12", "E19"} {
		if !strings.Contains(s, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E12") || !strings.Contains(s, "finished in") {
		t.Errorf("output = %q", s)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e6", "-quick", "-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### E6") {
		t.Errorf("markdown output = %q", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "m contenders,") {
		t.Errorf("csv output = %q", s)
	}
}

func TestMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E6, E7", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E6:") || !strings.Contains(s, "E7a:") {
		t.Errorf("output = %q", s)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "E12", "-format", "tsv"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}
