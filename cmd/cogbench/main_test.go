package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"E1", "E12", "E19"} {
		if !strings.Contains(s, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E12") || !strings.Contains(s, "finished in") {
		t.Errorf("output = %q", s)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e6", "-quick", "-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### E6") {
		t.Errorf("markdown output = %q", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E12", "-quick", "-trials", "2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "m contenders,") {
		t.Errorf("csv output = %q", s)
	}
}

func TestMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E6, E7", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E6:") || !strings.Contains(s, "E7a:") {
		t.Errorf("output = %q", s)
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-exp", "E12", "-quick", "-trials", "4", "-format", "csv", "-parallel", workers}
	}
	var serial, par bytes.Buffer
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(args("8"), &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("tables differ across worker counts:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestBenchOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "E3", "-quick", "-trials", "2", "-bench-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GoVersion   string `json:"go_version"`
		Parallel    int    `json:"parallel"`
		Experiments []struct {
			ID           string  `json:"id"`
			WallMS       float64 `json:"wall_ms"`
			Slots        int64   `json:"slots"`
			Nodes        int64   `json:"nodes"`
			SlotsPerSec  float64 `json:"slots_per_sec"`
			BytesPerNode float64 `json:"bytes_per_node"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("bench-out is not valid JSON: %v", err)
	}
	if report.GoVersion == "" || report.Parallel < 1 {
		t.Errorf("report metadata incomplete: %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "E3" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	rec := report.Experiments[0]
	if rec.Slots <= 0 {
		t.Errorf("E3 slot count = %d, want > 0", rec.Slots)
	}
	if rec.Nodes <= 0 || rec.SlotsPerSec <= 0 || rec.BytesPerNode <= 0 {
		t.Errorf("E3 derived metrics incomplete: nodes=%d slots/s=%.1f B/node=%.1f",
			rec.Nodes, rec.SlotsPerSec, rec.BytesPerNode)
	}
	if !strings.Contains(out.String(), "benchmark report:") {
		t.Errorf("missing report line in output: %q", out.String())
	}
}

func writeReport(t *testing.T, name string, r benchReport) string {
	t.Helper()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	oldPath := writeReport(t, "old.json", benchReport{
		TotalWallMS: 1000,
		Experiments: []benchRecord{
			{ID: "E1", WallMS: 600, Allocs: 1000, Bytes: 4000},
			{ID: "E2", WallMS: 400, Allocs: 2000, Bytes: 8000},
			{ID: "E9", WallMS: 50, Allocs: 10, Bytes: 100},
		},
	})
	newPath := writeReport(t, "new.json", benchReport{
		TotalWallMS: 900,
		Experiments: []benchRecord{
			{ID: "E1", WallMS: 500, Allocs: 250, Bytes: 1000},
			{ID: "E2", WallMS: 400, Allocs: 2100, Bytes: 8000},
			{ID: "E3", WallMS: 10, Allocs: 5, Bytes: 50},
		},
	})

	// Within limits: an improvement, a 1.05x wobble, one added and one
	// removed experiment (informational, never failures).
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, &out); err != nil {
		t.Fatalf("compare within limits failed: %v", err)
	}
	s := out.String()
	for _, want := range []string{"0.25x", "new", "removed", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison table missing %q:\n%s", want, s)
		}
	}

	// Reversed, the 4x alloc growth on E1 must fail the default 1.25x limit.
	out.Reset()
	err := run([]string{"-compare", newPath, oldPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "E1 allocs") {
		t.Errorf("reversed compare: want E1 alloc regression, got %v", err)
	}

	// Disabling the alloc check clears it (wall improved, so no wall failure).
	out.Reset()
	if err := run([]string{"-compare", "-alloc-limit", "0", "-wall-limit", "2", newPath, oldPath}, &out); err != nil {
		t.Errorf("compare with alloc check disabled failed: %v", err)
	}

	// Wall regression: same allocs, total wall beyond the limit.
	slowPath := writeReport(t, "slow.json", benchReport{
		TotalWallMS: 5000,
		Experiments: []benchRecord{{ID: "E1", WallMS: 5000, Allocs: 1000, Bytes: 4000}},
	})
	basePath := writeReport(t, "base.json", benchReport{
		TotalWallMS: 1000,
		Experiments: []benchRecord{{ID: "E1", WallMS: 1000, Allocs: 1000, Bytes: 4000}},
	})
	out.Reset()
	err = run([]string{"-compare", basePath, slowPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "total wall") {
		t.Errorf("want total wall regression, got %v", err)
	}
}

func TestCompareThroughputLimits(t *testing.T) {
	oldPath := writeReport(t, "old.json", benchReport{
		TotalWallMS: 1000,
		Experiments: []benchRecord{
			{ID: "E1", WallMS: 1000, Allocs: 100, Bytes: 4000, Slots: 100_000, SlotsPerSec: 100_000, BytesPerNode: 100},
		},
	})
	newPath := writeReport(t, "new.json", benchReport{
		TotalWallMS: 1000,
		Experiments: []benchRecord{
			{ID: "E1", WallMS: 1000, Allocs: 100, Bytes: 4000, Slots: 40_000, SlotsPerSec: 40_000, BytesPerNode: 220},
		},
	})

	// Both throughput checks are off by default: machine-dependent metrics
	// must not fail CI comparisons unless explicitly armed.
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, &out); err != nil {
		t.Fatalf("default compare armed a throughput check: %v", err)
	}
	s := out.String()
	for _, want := range []string{"slots/s", "B/node", "100000", "220"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison table missing %q:\n%s", want, s)
		}
	}

	// A 2.2x bytes/node growth fails an armed 1.5x limit.
	out.Reset()
	err := run([]string{"-compare", "-bytespn-limit", "1.5", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "E1 bytes/node") {
		t.Errorf("want bytes/node regression, got %v", err)
	}

	// Throughput dropped to 0.4x: below old/2, so -slotsps-limit 2 fails.
	out.Reset()
	err = run([]string{"-compare", "-slotsps-limit", "2", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "total slots/sec") {
		t.Errorf("want slots/sec regression, got %v", err)
	}

	// A drop within the armed factor passes.
	out.Reset()
	if err := run([]string{"-compare", "-slotsps-limit", "3", "-bytespn-limit", "2.5", oldPath, newPath}, &out); err != nil {
		t.Errorf("compare within armed throughput limits failed: %v", err)
	}
}

// TestShardsFlagDeterministic is the CLI face of the byte-identity
// contract: -shards must never change a rendered table.
func TestShardsFlagDeterministic(t *testing.T) {
	args := func(shards string) []string {
		return []string{"-exp", "E1", "-quick", "-trials", "2", "-format", "csv", "-shards", shards}
	}
	var serial, sharded bytes.Buffer
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(args("4"), &sharded); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Errorf("tables differ across shard counts:\nserial:\n%s\nsharded:\n%s", serial.String(), sharded.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-compare", "one.json"}, &out); err == nil {
		t.Error("compare with one file accepted")
	}
	if err := run([]string{"-compare", "/nonexistent/a.json", "/nonexistent/b.json"}, &out); err == nil {
		t.Error("compare with missing files accepted")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "E12", "-format", "tsv"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCheckFlagIdenticalTables(t *testing.T) {
	// The invariant oracle observes; it must never change a table.
	var plain, checked bytes.Buffer
	if err := run([]string{"-exp", "E3", "-quick", "-trials", "2", "-format", "csv"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "E3", "-quick", "-trials", "2", "-format", "csv", "-check"}, &checked); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if plain.String() != checked.String() {
		t.Errorf("-check changed tables:\n--- checked ---\n%s--- plain ---\n%s", checked.String(), plain.String())
	}
}

func TestRunRecoverByteIdentical(t *testing.T) {
	// -recover must not change a fault-free experiment's table by a byte.
	render := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{"-exp", "E4", "-quick", "-trials", "2"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		// Strip the wall-clock line, which legitimately differs.
		lines := strings.Split(out.String(), "\n")
		kept := lines[:0]
		for _, ln := range lines {
			if !strings.Contains(ln, "finished in") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if classic, rec := render(), render("-recover"); classic != rec {
		t.Errorf("-recover changed E4's table:\n--- classic ---\n%s\n--- recover ---\n%s", classic, rec)
	}
}

func TestRunRecoveryExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E26,E27", "-quick", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E26") || !strings.Contains(s, "E27") {
		t.Errorf("output = %q", s)
	}
}
