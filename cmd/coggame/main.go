// Command coggame plays the lower-bound hitting games of Section 6:
// a referee hides a k-matching in the complete bipartite graph K_{c,c};
// players propose edges until they hit one. Lemma 11 bounds every player's
// success within c²/(αk) rounds below 1/2; Lemma 12 turns broadcast
// algorithms into players.
//
// Examples:
//
//	coggame -c 20 -k 2 -player non-repeating -trials 1000
//	coggame -c 12 -k 3 -player reduction -n 8
//	coggame -c 30 -k 30 -player uniform        # the c-complete game
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/cogradio/crn/internal/games"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coggame:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("coggame", flag.ContinueOnError)
	var (
		c      = fs.Int("c", 20, "channels per side")
		k      = fs.Int("k", 2, "matching size")
		player = fs.String("player", "non-repeating", "player: uniform, non-repeating, reduction")
		n      = fs.Int("n", 8, "network size for the reduction player")
		trials = fs.Int("trials", 500, "independent games")
		rounds = fs.Int("max-rounds", 10_000_000, "per-game round budget")
		seed   = fs.Int64("seed", 42, "root seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	build := func(trial int64) games.Player {
		ps := rng.Derive(*seed, trial, 100)
		switch *player {
		case "uniform":
			return games.NewUniformPlayer(*c, ps)
		case "non-repeating":
			return games.NewNonRepeatingPlayer(*c, ps)
		case "reduction":
			return games.NewReductionPlayer(games.NewCogcastChooser(*n, *c, ps))
		default:
			return nil
		}
	}
	if build(0) == nil {
		return fmt.Errorf("unknown player %q", *player)
	}

	wins := 0
	roundCounts := make([]float64, 0, *trials)
	for trial := 0; trial < *trials; trial++ {
		g, err := games.NewGame(*c, *k, rng.Derive(*seed, int64(trial), 1))
		if err != nil {
			return err
		}
		won, r := g.Play(build(int64(trial)), *rounds)
		if won {
			wins++
			roundCounts = append(roundCounts, float64(r))
		}
	}

	fmt.Fprintf(out, "game:   (c=%d, k=%d)-bipartite hitting, %d trials, player %s\n", *c, *k, *trials, *player)
	if *k <= *c/2 {
		bound := games.LowerBoundRounds(*c, *k)
		within := 0
		for _, r := range roundCounts {
			if int(r) <= bound {
				within++
			}
		}
		fmt.Fprintf(out, "lemma11: bound l = c²/(αk) = %d rounds; P(win within l) = %.3f (must stay < 0.5)\n",
			bound, float64(within)/float64(*trials))
	}
	if *k == *c {
		bound := games.CompleteLowerBoundRounds(*c)
		within := 0
		for _, r := range roundCounts {
			if int(r) <= bound {
				within++
			}
		}
		fmt.Fprintf(out, "lemma14: bound c/3 = %d rounds; P(win within c/3) = %.3f (must stay < 0.5)\n",
			bound, float64(within)/float64(*trials))
	}
	if len(roundCounts) == 0 {
		fmt.Fprintf(out, "result: no wins within the %d-round budget\n", *rounds)
		return nil
	}
	sort.Float64s(roundCounts)
	s, err := stats.Summarize(roundCounts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "result: %d/%d wins; rounds-to-win %s\n", wins, *trials, s)
	return nil
}
