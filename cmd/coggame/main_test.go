package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestNonRepeatingGame(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-c", "12", "-k", "3", "-trials", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lemma11:") || !strings.Contains(s, "result:") {
		t.Errorf("output = %q", s)
	}
}

func TestCompleteGameReportsLemma14(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-c", "12", "-k", "12", "-trials", "50", "-player", "uniform"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lemma14:") {
		t.Errorf("complete game output missing lemma14 line: %q", s)
	}
	if strings.Contains(s, "lemma11:") {
		t.Errorf("k=c run should not report the k<=c/2 bound: %q", s)
	}
}

func TestReductionPlayerRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-c", "10", "-k", "2", "-player", "reduction", "-n", "6", "-trials", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "player reduction") {
		t.Errorf("output = %q", out.String())
	}
}

func TestUnknownPlayer(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-player", "psychic"}, &out); err == nil {
		t.Error("unknown player accepted")
	}
}

func TestNoWinsWithinBudget(t *testing.T) {
	var out bytes.Buffer
	// A one-round budget on a large game: almost surely no wins.
	if err := run([]string{"-c", "40", "-k", "1", "-trials", "5", "-max-rounds", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "wins") && !strings.Contains(s, "no wins") {
		t.Errorf("output = %q", s)
	}
}
