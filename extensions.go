package crn

import (
	"github.com/cogradio/crn/internal/gossip"
	"github.com/cogradio/crn/internal/rendezvous"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/spectrum"
)

// PrimaryUserSpec describes a spectrum environment driven by licensed
// primary users: each non-pilot channel follows an independent two-state
// Markov chain (free/busy), the pilot band is reserved for secondaries
// (providing the pairwise overlap guarantee), and devices may conservatively
// mis-sense free channels as busy.
type PrimaryUserSpec struct {
	// Nodes is the number of secondary devices.
	Nodes int
	// Channels is the total spectrum size C.
	Channels int
	// Pilots is the reserved band size (the guaranteed pairwise overlap).
	Pilots int
	// PBusy is the per-slot probability a free channel is claimed by a
	// primary user; PFree the probability a busy one is released.
	PBusy, PFree float64
	// MissProb is the per-device probability of sensing a free channel as
	// busy.
	MissProb float64
	// Seed roots the environment's randomness.
	Seed int64
}

// NewPrimaryUserNetwork builds a dynamic network whose channel availability
// is produced by the primary-user model — the physically motivated instance
// of the paper's dynamic setting. Broadcast and Gossip run over it;
// Aggregate does not (it requires a static assignment).
func NewPrimaryUserNetwork(spec PrimaryUserSpec) (*Network, error) {
	model, err := spectrum.New(spectrum.Config{
		Nodes:    spec.Nodes,
		Channels: spec.Channels,
		Pilots:   spec.Pilots,
		PBusy:    spec.PBusy,
		PFree:    spec.PFree,
		MissProb: spec.MissProb,
		Seed:     spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Network{asn: model, dynamic: true}, nil
}

// GossipResult reports a multi-source dissemination run.
type GossipResult struct {
	// Slots executed.
	Slots int
	// Complete reports whether every node learned every rumor.
	Complete bool
	// MinKnown is the smallest per-node rumor count at the end.
	MinKnown int
}

// Gossip disseminates len(sources) rumors — rumor i starting at node
// sources[i] — using the multi-source extension of COGCAST: every node
// relays the union of the rumors it knows. It runs until every node knows
// every rumor or maxSlots elapse (0 means a generous automatic budget).
func (nw *Network) Gossip(sources []NodeID, seed int64, maxSlots int) (*GossipResult, error) {
	if maxSlots == 0 {
		maxSlots = 64 * nw.SlotBound(0) * (1 + len(sources))
	}
	srcs := make([]sim.NodeID, len(sources))
	for i, s := range sources {
		srcs[i] = sim.NodeID(s)
	}
	res, err := gossip.Run(nw.asn, srcs, seed, maxSlots)
	if err != nil {
		return nil, err
	}
	return &GossipResult{Slots: res.Slots, Complete: res.Complete, MinKnown: res.MinKnown}, nil
}

// RendezvousResult reports a pairwise rendezvous attempt.
type RendezvousResult struct {
	// Slots until the first meeting (or the budget).
	Slots int
	// Met reports whether the pair met within the budget.
	Met bool
}

// Rendezvous runs uniform randomized channel hopping for the pair (u, v)
// until they land on a common channel — the basic primitive the related
// rendezvous literature studies, meeting in about c²/overlap expected slots
// (paper footnote 1). maxSlots of 0 means a generous automatic budget.
func (nw *Network) Rendezvous(u, v NodeID, seed int64, maxSlots int) (*RendezvousResult, error) {
	if maxSlots == 0 {
		c := nw.ChannelsPerNode()
		maxSlots = 1000 * c * c / nw.MinOverlap()
	}
	res, err := rendezvous.Uniform(nw.asn, sim.NodeID(u), sim.NodeID(v), seed, maxSlots)
	if err != nil {
		return nil, err
	}
	return &RendezvousResult{Slots: res.Slots, Met: res.Met}, nil
}
