package crn_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/trace"
)

// reactiveNet builds the standard reactive-jammer fixture for these tests.
func reactiveNet(t *testing.T, strategy string, budget crn.AdversaryBudget) *crn.Network {
	t.Helper()
	net, err := crn.NewReactiveJammedNetwork(24, 12, strategy, budget, 7)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestReactiveJammedNetworkStrategies(t *testing.T) {
	for _, strategy := range []string{"busiest", "follower", "hunter"} {
		t.Run(strategy, func(t *testing.T) {
			budget := crn.AdversaryBudget{PerSlot: 3, Total: 90}
			net := reactiveNet(t, strategy, budget)
			if net.MinOverlap() != 12-2*3 {
				t.Errorf("overlap = %d, want c-2*PerSlot = 6", net.MinOverlap())
			}
			res, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000, Check: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Error("broadcast incomplete under the energy-bounded jammer")
			}
			adv := res.Adversary
			if adv == nil {
				t.Fatal("active reactive run reported no adversary ledger")
			}
			if adv.Strategy != strategy || adv.PerSlot != 3 || adv.Total != 90 {
				t.Errorf("ledger echo = %+v", adv)
			}
			if adv.Spent < 0 || adv.Spent > adv.Total {
				t.Errorf("spent %d outside [0, %d]", adv.Spent, adv.Total)
			}
			// The hunter waits for a winner streak, which a short epidemic
			// may never produce; the unconditional jammers must spend.
			if strategy != "hunter" && adv.Spent == 0 {
				t.Errorf("%s spent no energy on a busy epidemic", strategy)
			}
			if adv.CrashSpent != 0 {
				t.Errorf("jam-only run charged %d crash energy", adv.CrashSpent)
			}
			if adv.Spent != adv.JamSpent+adv.CrashSpent {
				t.Errorf("spend split %d+%d != %d", adv.JamSpent, adv.CrashSpent, adv.Spent)
			}
		})
	}
	if _, err := crn.NewReactiveJammedNetwork(24, 12, "crasher", crn.AdversaryBudget{PerSlot: 3, Total: 90}, 7); err == nil {
		t.Error("crash-only strategy accepted as a jammer")
	}
	if _, err := crn.NewReactiveJammedNetwork(24, 12, "nuke", crn.AdversaryBudget{PerSlot: 3, Total: 90}, 7); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := crn.NewReactiveJammedNetwork(24, 12, "busiest", crn.AdversaryBudget{PerSlot: 6, Total: 90}, 7); err == nil {
		t.Error("PerSlot >= channels/2 accepted (overlap guarantee would vanish)")
	}
}

// TestReactiveZeroEnergyControl pins the ledger edge case at the facade:
// a zero reserve or the no-op strategy must build the plain no-jammer
// control network — byte-for-byte, traces included.
func TestReactiveZeroEnergyControl(t *testing.T) {
	control, err := crn.NewJammedNetwork(24, 12, 0, "none", 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(net *crn.Network) (*crn.BroadcastResult, string) {
		var buf bytes.Buffer
		res, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000, Trace: &buf})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	wantRes, wantTrace := run(control)
	for name, net := range map[string]*crn.Network{
		"zero-energy": reactiveNet(t, "busiest", crn.AdversaryBudget{PerSlot: 3, Total: 0}),
		"noop":        reactiveNet(t, "none", crn.AdversaryBudget{PerSlot: 3, Total: 90}),
	} {
		res, tr := run(net)
		if res.Adversary != nil {
			t.Errorf("%s: inert adversary reported a ledger: %+v", name, res.Adversary)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("%s: result diverges from the no-jammer control:\n got %+v\nwant %+v", name, res, wantRes)
		}
		if tr != wantTrace {
			t.Errorf("%s: trace bytes diverge from the no-jammer control", name)
		}
	}
}

// TestReactiveBroadcastShardSparseIdentity pins byte-identity across the
// engine configuration matrix: a reactive jammed run produces identical
// results and identical JSONL traces (adversary ledger events included) at
// every Shards setting, and Sparse silently steps densely (the adversary
// is an engine observer and the jammed assignment is slot-varying, both of
// which gate event-driven stepping off).
func TestReactiveBroadcastShardSparseIdentity(t *testing.T) {
	budget := crn.AdversaryBudget{PerSlot: 3, Total: 120}
	run := func(shards int, sparse bool) (*crn.BroadcastResult, string) {
		net := reactiveNet(t, "busiest", budget)
		var buf bytes.Buffer
		res, err := net.Broadcast(crn.BroadcastOptions{
			Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000,
			Shards: shards, Sparse: sparse, Trace: &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	wantRes, wantTrace := run(1, false)
	if !strings.Contains(wantTrace, `"k":"adv"`) {
		t.Fatalf("trace carries no adversary ledger events:\n%s", wantTrace)
	}
	for _, v := range []struct {
		shards int
		sparse bool
	}{{2, false}, {4, false}, {1, true}, {4, true}} {
		res, tr := run(v.shards, v.sparse)
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("shards=%d sparse=%v: result diverges", v.shards, v.sparse)
		}
		if tr != wantTrace {
			t.Errorf("shards=%d sparse=%v: trace bytes diverge", v.shards, v.sparse)
		}
	}
}

// TestReactiveExhaustionLedger drives the budget to exhaustion through the
// public API: a small reserve is spent down, the exhaustion slot is
// reported, and a per-slot cap above the whole reserve burns out in slot 0.
func TestReactiveExhaustionLedger(t *testing.T) {
	net := reactiveNet(t, "busiest", crn.AdversaryBudget{PerSlot: 3, Total: 7})
	res, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000})
	if err != nil {
		t.Fatal(err)
	}
	adv := res.Adversary
	if adv == nil {
		t.Fatal("no ledger")
	}
	if adv.ExhaustedAt < 0 {
		t.Errorf("reserve of 7 under a 3/slot burn never exhausted: %+v", adv)
	}
	if adv.Spent > adv.Total {
		t.Errorf("overspent: %+v", adv)
	}

	// Per-slot cap above the total reserve: the cap never binds, the
	// reserve does — the whole budget burns as soon as the strategy sees
	// enough traffic to spend it, and the ledger never overshoots.
	net = reactiveNet(t, "busiest", crn.AdversaryBudget{PerSlot: 5, Total: 3})
	res, err = net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000})
	if err != nil {
		t.Fatal(err)
	}
	adv = res.Adversary
	if adv == nil {
		t.Fatal("no ledger")
	}
	if adv.Spent != 3 || adv.ExhaustedAt < 0 {
		t.Errorf("cap-above-reserve run: spent %d exhausted at %d, want the full reserve of 3 spent", adv.Spent, adv.ExhaustedAt)
	}
}

// TestAdversaryTraceLedgerInvariant replays real traced runs — a reactive
// jammed broadcast and a recovered aggregate under the phase-boundary
// crasher — through the invariant oracle, which re-derives the energy
// ledger from the adv event chain and cross-checks every other stream
// invariant along the way.
func TestAdversaryTraceLedgerInvariant(t *testing.T) {
	var traces []bytes.Buffer
	traces = make([]bytes.Buffer, 2)

	net := reactiveNet(t, "follower", crn.AdversaryBudget{PerSlot: 3, Total: 80})
	if _, err := net.Broadcast(crn.BroadcastOptions{Payload: "m", Seed: 8, RunToCompletion: true, MaxSlots: 50000, Trace: &traces[0]}); err != nil {
		t.Fatal(err)
	}

	static := mustNetwork(t, defaultSpec())
	inputs := make([]int64, static.Nodes())
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	if _, err := static.Aggregate(inputs, crn.AggregateOptions{
		Seed: 5, Recover: true, Adversary: "crasher", AdversaryEnergy: 60, Trace: &traces[1],
	}); err != nil {
		t.Fatal(err)
	}

	for i := range traces {
		_, events, err := trace.ReadAll(&traces[i])
		if err != nil {
			t.Fatal(err)
		}
		oracle := invariant.NewStream(nil)
		advEvents := 0
		for _, ev := range events {
			if ev.Kind == trace.KindAdv {
				advEvents++
			}
			oracle.Emit(ev)
		}
		if advEvents == 0 {
			t.Errorf("trace %d: no adversary ledger events", i)
		}
		if err := oracle.Err(); err != nil || oracle.Violations() != 0 {
			t.Errorf("trace %d: oracle found %d violations: %v", i, oracle.Violations(), err)
		}
	}
}

// TestAdversaryAggregateRecovered runs the crash-capable strategies through
// the public recovered-aggregate path and pins shard-identity for the
// whole result, ledger included.
func TestAdversaryAggregateRecovered(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	var want int64
	for i := range inputs {
		inputs[i] = int64(i + 1)
		want += inputs[i]
	}
	for _, strategy := range []string{"hunter", "crasher", "oblivious"} {
		t.Run(strategy, func(t *testing.T) {
			run := func(shards int) *crn.AggregateResult {
				res, err := net.Aggregate(inputs, crn.AggregateOptions{
					Seed: 5, Recover: true, Check: true, Shards: shards,
					Adversary: strategy, AdversaryEnergy: 60, AdversaryPerSlot: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(1)
			adv := ref.Adversary
			if adv == nil {
				t.Fatal("no ledger")
			}
			if adv.Strategy != strategy || adv.PerSlot != 2 || adv.Total != 60 {
				t.Errorf("ledger echo = %+v", adv)
			}
			if adv.Spent > adv.Total || adv.JamSpent != 0 {
				t.Errorf("crash-only run ledger: %+v", adv)
			}
			if !ref.Degraded {
				if v, ok := ref.Value.(int64); !ok || v != want {
					t.Errorf("undegraded run computed %v, want %d", ref.Value, want)
				}
			}
			for _, shards := range []int{2, 4} {
				if got := run(shards); !reflect.DeepEqual(got, ref) {
					t.Errorf("shards=%d: result diverges:\n got %+v\nwant %+v", shards, got, ref)
				}
			}
		})
	}
}

// TestAdversaryAggregateZeroEnergy pins the ledger edge case on the
// aggregate path: a zero reserve leaves the driver unwired, so the run is
// the recovered control run exactly — only the (all-zero) ledger differs.
func TestAdversaryAggregateZeroEnergy(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	run := func(opts crn.AggregateOptions) (*crn.AggregateResult, string) {
		var buf bytes.Buffer
		opts.Trace = &buf
		res, err := net.Aggregate(inputs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	wantRes, wantTrace := run(crn.AggregateOptions{Seed: 5, Recover: true})
	res, tr := run(crn.AggregateOptions{Seed: 5, Recover: true, Adversary: "crasher", AdversaryEnergy: 0})
	if tr != wantTrace {
		t.Error("zero-energy trace bytes diverge from the recovered control")
	}
	adv := res.Adversary
	if adv == nil || adv.Spent != 0 || adv.ExhaustedAt != -1 {
		t.Errorf("zero-energy ledger = %+v, want all-zero spend", adv)
	}
	res.Adversary = nil
	if !reflect.DeepEqual(res, wantRes) {
		t.Errorf("zero-energy result diverges from the recovered control:\n got %+v\nwant %+v", res, wantRes)
	}
}

func TestAdversaryAggregateValidation(t *testing.T) {
	net := mustNetwork(t, defaultSpec())
	inputs := make([]int64, net.Nodes())
	cases := map[string]crn.AggregateOptions{
		"needs-recover":  {Seed: 1, Adversary: "crasher", AdversaryEnergy: 10},
		"jam-only":       {Seed: 1, Recover: true, Adversary: "busiest", AdversaryEnergy: 10},
		"unknown":        {Seed: 1, Recover: true, Adversary: "nuke", AdversaryEnergy: 10},
		"negative-slots": {Seed: 1, Recover: true, Adversary: "crasher", AdversaryEnergy: 10, AdversaryPerSlot: -1},
	}
	for name, opts := range cases {
		if _, err := net.Aggregate(inputs, opts); err == nil {
			t.Errorf("%s: accepted %+v", name, opts)
		}
	}
}
