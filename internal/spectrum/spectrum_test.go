package spectrum_test

import (
	"math"
	"testing"

	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/spectrum"
)

func defaultConfig() spectrum.Config {
	return spectrum.Config{
		Nodes:    12,
		Channels: 20,
		Pilots:   2,
		PBusy:    0.10,
		PFree:    0.30,
		MissProb: 0.05,
		Seed:     1,
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(*spectrum.Config){
		func(c *spectrum.Config) { c.Nodes = 0 },
		func(c *spectrum.Config) { c.Pilots = 0 },
		func(c *spectrum.Config) { c.Pilots = c.Channels + 1 },
		func(c *spectrum.Config) { c.PBusy = 1.5 },
		func(c *spectrum.Config) { c.PFree = -0.1 },
		func(c *spectrum.Config) { c.MissProb = 2 },
	}
	for i, mutate := range cases {
		cfg := defaultConfig()
		mutate(&cfg)
		if _, err := spectrum.New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPilotsAlwaysAvailable(t *testing.T) {
	m, err := spectrum.New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 100; slot++ {
		for u := 0; u < m.Nodes(); u++ {
			set := m.ChannelSet(sim.NodeID(u), slot)
			if len(set) < m.MinOverlap() {
				t.Fatalf("slot %d node %d: only %d channels", slot, u, len(set))
			}
			found := 0
			for _, ch := range set {
				if ch < m.MinOverlap() {
					found++
				}
			}
			if found != m.MinOverlap() {
				t.Fatalf("slot %d node %d: %d of %d pilots present", slot, u, found, m.MinOverlap())
			}
		}
	}
}

func TestBusyChannelsExcluded(t *testing.T) {
	m, err := spectrum.New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 50; slot++ {
		set := m.ChannelSet(0, slot)
		for _, ch := range set {
			if m.Busy(slot, ch) {
				t.Fatalf("slot %d: node uses busy channel %d", slot, ch)
			}
		}
	}
}

func TestPilotsNeverBusy(t *testing.T) {
	m, err := spectrum.New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 100; slot++ {
		for ch := 0; ch < m.MinOverlap(); ch++ {
			if m.Busy(slot, ch) {
				t.Fatalf("pilot channel %d busy at slot %d", ch, slot)
			}
		}
	}
}

func TestOccupancyApproachesStationary(t *testing.T) {
	cfg := defaultConfig()
	cfg.Channels = 200
	cfg.Pilots = 1
	m, err := spectrum.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := m.OccupancyStationary() // 0.1/0.4 = 0.25
	// Sample occupancy at late slots.
	var busy, total int
	for slot := 200; slot < 260; slot += 10 {
		for ch := 1; ch < cfg.Channels; ch++ {
			total++
			if m.Busy(slot, ch) {
				busy++
			}
		}
	}
	got := float64(busy) / float64(total)
	if math.Abs(got-want) > 0.07 {
		t.Errorf("late occupancy %.3f, stationary %.3f", got, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, err := spectrum.New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := spectrum.New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Query a forward then backward; b only forward. Same answers.
	_ = a.ChannelSet(0, 30)
	backward := append([]int(nil), a.ChannelSet(1, 10)...)
	for s := 0; s <= 10; s++ {
		_ = b.ChannelSet(0, s)
	}
	forward := b.ChannelSet(1, 10)
	if len(backward) != len(forward) {
		t.Fatalf("replay diverged: %d vs %d channels", len(backward), len(forward))
	}
	for i := range forward {
		if forward[i] != backward[i] {
			t.Fatalf("replay diverged at index %d", i)
		}
	}
}

func TestCogcastCompletesOverSpectrumModel(t *testing.T) {
	cfg := defaultConfig()
	cfg.Nodes = 24
	m, err := spectrum.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(m, 0, "beacon", 3, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("broadcast over PU-driven spectrum incomplete after %d slots", res.Slots)
	}
}

func TestHighOccupancyStillCompletes(t *testing.T) {
	cfg := defaultConfig()
	cfg.PBusy, cfg.PFree = 0.45, 0.05 // stationary occupancy 0.9
	cfg.MissProb = 0.2
	m, err := spectrum.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(m, 0, "beacon", 4, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("broadcast under 90%% occupancy incomplete after %d slots", res.Slots)
	}
}
