// Package spectrum models the radio environment that motivates cognitive
// radio in the first place: licensed primary users (e.g. television
// transmitters) occupy channels intermittently, and secondary devices may
// only use channels they currently sense as free. Each non-pilot channel
// follows an independent two-state Markov chain (free/busy); a small set of
// pilot channels is reserved for secondaries and never occupied, providing
// the pairwise overlap guarantee k the model requires. Imperfect sensing is
// modelled as per-node false-busy errors: a device may conservatively skip
// a free channel, but never transmits on a busy one.
//
// The result implements sim.Assignment, giving the paper's "dynamic
// channel assignment" setting a physically motivated generator (instead of
// uniform re-draws) for experiment E22.
package spectrum

import (
	"fmt"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Model is a primary-user-driven dynamic channel assignment.
type Model struct {
	nodes    int
	channels int // C, total spectrum
	pilots   int // k channels never occupied by primaries
	pBusy    float64
	pFree    float64
	miss     float64
	seed     int64

	stateSlot int
	busy      []bool

	cachedSlot int
	cached     [][]int
}

var _ sim.Assignment = (*Model)(nil)

// Config parameterizes a Model.
type Config struct {
	// Nodes is the number of secondary devices.
	Nodes int
	// Channels is the total spectrum size C.
	Channels int
	// Pilots is the number of reserved channels (the guaranteed overlap k).
	Pilots int
	// PBusy is the per-slot probability a free channel is claimed by a
	// primary user; PFree the probability a busy channel is released.
	PBusy, PFree float64
	// MissProb is the per-node probability of sensing a free channel as
	// busy (a conservative error; the converse never happens).
	MissProb float64
	// Seed roots all randomness.
	Seed int64
}

// New builds the model. Requires at least one pilot channel — without a
// reserved band there is no overlap guarantee and broadcast becomes the
// Theorem 17 impossibility.
func New(cfg Config) (*Model, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("spectrum: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Pilots < 1 || cfg.Pilots > cfg.Channels {
		return nil, fmt.Errorf("spectrum: pilots=%d must be in [1, channels=%d]", cfg.Pilots, cfg.Channels)
	}
	if bad(cfg.PBusy) || bad(cfg.PFree) || bad(cfg.MissProb) {
		return nil, fmt.Errorf("spectrum: probabilities must lie in [0,1]: pBusy=%v pFree=%v miss=%v",
			cfg.PBusy, cfg.PFree, cfg.MissProb)
	}
	m := &Model{
		nodes:      cfg.Nodes,
		channels:   cfg.Channels,
		pilots:     cfg.Pilots,
		pBusy:      cfg.PBusy,
		pFree:      cfg.PFree,
		miss:       cfg.MissProb,
		seed:       cfg.Seed,
		stateSlot:  -1,
		cachedSlot: -1,
		busy:       make([]bool, cfg.Channels),
		cached:     make([][]int, cfg.Nodes),
	}
	return m, nil
}

func bad(p float64) bool { return p < 0 || p > 1 }

// Nodes returns the device count.
func (m *Model) Nodes() int { return m.nodes }

// Channels returns C.
func (m *Model) Channels() int { return m.channels }

// PerNode returns the nominal per-node set size: the full spectrum. Actual
// per-slot sets are smaller (primary occupancy + sensing misses); protocols
// observe real sizes through sim.NodeView.
func (m *Model) PerNode() int { return m.channels }

// MinOverlap returns the guaranteed overlap: the pilot band.
func (m *Model) MinOverlap() int { return m.pilots }

// Busy reports whether a primary user occupies the channel in the given
// slot (always false for pilot channels). Exposed for tests and analysis.
func (m *Model) Busy(slot, channel int) bool {
	m.evolveTo(slot)
	return m.busy[channel]
}

// ChannelSet returns the channels the node senses free in the slot, pilots
// first in a node-private random order.
func (m *Model) ChannelSet(node sim.NodeID, slot int) []int {
	if slot != m.cachedSlot {
		m.fill(slot)
	}
	return m.cached[node]
}

// evolveTo advances the Markov chains to the given slot. Queries normally
// arrive in nondecreasing order (the engine is slot-monotone); a query for
// an earlier slot replays the chains from the start, keeping the model a
// pure function of (seed, slot) at O(slot) cost.
func (m *Model) evolveTo(slot int) {
	if slot < m.stateSlot {
		for i := range m.busy {
			m.busy[i] = false
		}
		m.stateSlot = -1
	}
	for s := m.stateSlot + 1; s <= slot; s++ {
		for ch := m.pilots; ch < m.channels; ch++ {
			coin := rng.Uniform01(m.seed, int64(s), int64(ch), 0x5bec)
			if m.busy[ch] {
				if coin < m.pFree {
					m.busy[ch] = false
				}
			} else if coin < m.pBusy {
				m.busy[ch] = true
			}
		}
	}
	m.stateSlot = slot
}

func (m *Model) fill(slot int) {
	m.evolveTo(slot)
	for u := 0; u < m.nodes; u++ {
		set := m.cached[u][:0]
		for ch := 0; ch < m.pilots; ch++ {
			set = append(set, ch) // pilots are always known free
		}
		for ch := m.pilots; ch < m.channels; ch++ {
			if m.busy[ch] {
				continue
			}
			if m.miss > 0 && rng.Uniform01(m.seed, int64(slot), int64(ch), int64(u), 0x5bed) < m.miss {
				continue // sensed busy by this node
			}
			set = append(set, ch)
		}
		r := rng.New(m.seed, int64(slot), int64(u), 0x5bee)
		r.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		m.cached[u] = set
	}
	m.cachedSlot = slot
}

// OccupancyStationary returns the stationary busy probability of a
// non-pilot channel, pBusy / (pBusy + pFree) (0 if both are 0).
func (m *Model) OccupancyStationary() float64 {
	if m.pBusy+m.pFree == 0 {
		return 0
	}
	return m.pBusy / (m.pBusy + m.pFree)
}
