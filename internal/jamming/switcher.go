package jamming

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cogradio/crn/internal/sim"
)

// SwitchPhase is one segment of a Switcher's timeline: from slot From
// (inclusive) the adversary plays Jammer until the next phase takes over.
type SwitchPhase struct {
	From   int
	Jammer Jammer
}

// Switcher chains jamming strategies over time — the "adaptive precursor"
// adversary of the scenario DSL: still oblivious within each phase (the
// model grants the adversary no access to the nodes' coins), but able to
// switch strategies at pre-declared slots, e.g. random probing that turns
// into a block sweep once the epidemic is underway. Because each phase's
// inner jammer is a deterministic function of (slot, node), so is the
// Switcher, and runs stay reproducible.
type Switcher struct {
	phases []SwitchPhase
}

var _ Jammer = (*Switcher)(nil)

// NewSwitcher builds a phase-scheduled jammer. Phases must be non-empty,
// start at slot 0, and have strictly increasing From slots.
func NewSwitcher(phases ...SwitchPhase) (*Switcher, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("jamming: switcher needs at least one phase")
	}
	if phases[0].From != 0 {
		return nil, fmt.Errorf("jamming: switcher's first phase must start at slot 0, not %d", phases[0].From)
	}
	for i, p := range phases {
		if p.Jammer == nil {
			return nil, fmt.Errorf("jamming: switcher phase %d has a nil jammer", i)
		}
		if i > 0 && p.From <= phases[i-1].From {
			return nil, fmt.Errorf("jamming: switcher phases must have strictly increasing start slots (phase %d starts at %d, previous at %d)",
				i, p.From, phases[i-1].From)
		}
	}
	return &Switcher{phases: append([]SwitchPhase(nil), phases...)}, nil
}

// Name implements Jammer, e.g. "switch(random@0,block@100)".
func (s *Switcher) Name() string {
	parts := make([]string, len(s.phases))
	for i, p := range s.phases {
		parts[i] = fmt.Sprintf("%s@%d", p.Jammer.Name(), p.From)
	}
	return "switch(" + strings.Join(parts, ",") + ")"
}

// Jammed implements Jammer by delegating to the phase active in the slot.
// Inner jammers see the global slot number — a sweeping phase that takes
// over mid-run resumes the sweep position it would have had, keeping phase
// boundaries free of hidden state.
func (s *Switcher) Jammed(slot int, node sim.NodeID) []int {
	// The active phase is the last one whose From <= slot.
	i := sort.Search(len(s.phases), func(i int) bool { return s.phases[i].From > slot }) - 1
	if i < 0 {
		i = 0
	}
	return s.phases[i].Jammer.Jammed(slot, node)
}
