package jamming_test

import (
	"testing"

	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/jamming"
	"github.com/cogradio/crn/internal/sim"
)

func TestAssignmentValidation(t *testing.T) {
	j := jamming.NoJammer{}
	cases := []struct {
		name       string
		n, c, kJam int
		jammer     jamming.Jammer
	}{
		{"zero nodes", 0, 8, 1, j},
		{"zero channels", 4, 0, 0, j},
		{"budget at c/2", 4, 8, 4, j},
		{"budget above c/2", 4, 8, 5, j},
		{"negative budget", 4, 8, -1, j},
		{"nil jammer", 4, 8, 1, nil},
	}
	for _, c := range cases {
		if _, err := jamming.NewAssignment(c.n, c.c, c.kJam, c.jammer, 1); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestUnjammedSetsRespectBudgetAndOverlap(t *testing.T) {
	const n, c, kJam = 6, 10, 3
	jammers := []jamming.Jammer{
		jamming.NewRandomJammer(c, kJam, 5),
		jamming.NewSweepJammer(c, kJam),
		jamming.NewBlockSweepJammer(c, kJam, 4),
		jamming.NewSplitJammer(c, kJam, 3),
	}
	for _, j := range jammers {
		t.Run(j.Name(), func(t *testing.T) {
			asn, err := jamming.NewAssignment(n, c, kJam, j, 5)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := asn.MinOverlap(), c-2*kJam; got != want {
				t.Fatalf("MinOverlap = %d, want %d", got, want)
			}
			for slot := 0; slot < 30; slot++ {
				sets := make([][]int, n)
				for u := 0; u < n; u++ {
					set := asn.ChannelSet(sim.NodeID(u), slot)
					if len(set) < c-kJam {
						t.Fatalf("slot %d node %d has %d channels, want >= c-kJam = %d", slot, u, len(set), c-kJam)
					}
					seen := make(map[int]bool)
					for _, ch := range set {
						if ch < 0 || ch >= c {
							t.Fatalf("channel %d out of range", ch)
						}
						if seen[ch] {
							t.Fatalf("duplicate channel %d", ch)
						}
						seen[ch] = true
					}
					sets[u] = append([]int(nil), set...)
				}
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if got := overlap(sets[u], sets[v]); got < asn.MinOverlap() {
							t.Fatalf("slot %d: overlap(%d,%d) = %d < %d", slot, u, v, got, asn.MinOverlap())
						}
					}
				}
			}
		})
	}
}

func TestJammedChannelsExcluded(t *testing.T) {
	const n, c, kJam = 4, 8, 2
	j := jamming.NewSweepJammer(c, kJam)
	asn, err := jamming.NewAssignment(n, c, kJam, j, 7)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 10; slot++ {
		jammed := map[int]bool{}
		for _, ch := range j.Jammed(slot, 0) {
			jammed[ch] = true
		}
		set := asn.ChannelSet(0, slot)
		for _, ch := range set {
			if jammed[ch] {
				t.Fatalf("slot %d: jammed channel %d present in node set", slot, ch)
			}
		}
		if len(set) != c-kJam {
			t.Fatalf("slot %d: set size %d, want %d", slot, len(set), c-kJam)
		}
	}
}

func TestCogcastSurvivesJamming(t *testing.T) {
	// Theorem 18: COGCAST completes in the jammed network with the
	// guarantees of T(n, c, c-2·kJam). Run under every adversary.
	const n, c, kJam = 32, 8, 3
	jammers := []jamming.Jammer{
		jamming.NoJammer{},
		jamming.NewRandomJammer(c, kJam, 9),
		jamming.NewSweepJammer(c, kJam),
		jamming.NewBlockSweepJammer(c, kJam, 6),
		jamming.NewSplitJammer(c, kJam, 4),
	}
	for _, j := range jammers {
		t.Run(j.Name(), func(t *testing.T) {
			asn, err := jamming.NewAssignment(n, c, kJam, j, 9)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cogcast.Run(asn, 0, "m", 9, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 50000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("broadcast defeated by %s jammer after %d slots", j.Name(), res.Slots)
			}
		})
	}
}

func TestSplitJammerIsNUniform(t *testing.T) {
	// Nodes in different groups must see different jammed sets in the same
	// slot — that is what distinguishes n-uniform from plain jamming.
	j := jamming.NewSplitJammer(12, 2, 3)
	a := append([]int(nil), j.Jammed(0, 0)...)
	b := append([]int(nil), j.Jammed(0, 1)...)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("split jammer jams identical sets for nodes in different groups")
	}
}

func TestBlockSweepJammerDwellsAndCycles(t *testing.T) {
	const c, budget, dwell = 10, 3, 4
	j := jamming.NewBlockSweepJammer(c, budget, dwell)
	numBlocks := (c + budget - 1) / budget
	for slot := 0; slot < 3*numBlocks*dwell; slot++ {
		got := append([]int(nil), j.Jammed(slot, 0)...)
		block := (slot / dwell) % numBlocks
		for i, ch := range got {
			if want := (block*budget + i) % c; ch != want {
				t.Fatalf("slot %d: jammed[%d] = %d, want %d", slot, i, ch, want)
			}
		}
		// Deterministic: the same slot always jams the same set, for any node.
		again := j.Jammed(slot, 7)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("slot %d: jammed set differs between calls", slot)
			}
		}
	}
	// Within one dwell window the set must not move.
	first := append([]int(nil), j.Jammed(0, 0)...)
	for slot := 1; slot < dwell; slot++ {
		got := j.Jammed(slot, 0)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("slot %d: jammed set moved inside dwell window", slot)
			}
		}
	}
	if got := jamming.NewBlockSweepJammer(c, 0, dwell).Jammed(0, 0); got != nil {
		t.Errorf("zero-budget jammer jammed %v", got)
	}
}

func TestNoJammerLeavesFullSpectrum(t *testing.T) {
	asn, err := jamming.NewAssignment(3, 6, 2, jamming.NoJammer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(asn.ChannelSet(0, 0)); got != 6 {
		t.Errorf("unjammed set size %d, want full spectrum 6", got)
	}
}

func TestJammerNames(t *testing.T) {
	if (jamming.NoJammer{}).Name() != "none" ||
		jamming.NewRandomJammer(4, 1, 1).Name() != "random" ||
		jamming.NewSweepJammer(4, 1).Name() != "sweep" ||
		jamming.NewBlockSweepJammer(4, 1, 2).Name() != "block" ||
		jamming.NewSplitJammer(4, 1, 2).Name() != "split" {
		t.Error("jammer name mismatch")
	}
}

func overlap(a, b []int) int {
	set := make(map[int]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	n := 0
	for _, x := range b {
		if _, ok := set[x]; ok {
			n++
		}
	}
	return n
}
