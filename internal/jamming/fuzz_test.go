package jamming_test

import (
	"fmt"
	"testing"

	"github.com/cogradio/crn/internal/adversary"
	"github.com/cogradio/crn/internal/jamming"
	"github.com/cogradio/crn/internal/sim"
)

// jammerUnderTest pairs a Jammer with an optional per-slot feed that
// advances reactive state (the driver's observe-then-plan cycle); nil
// feed means the jammer is oblivious.
type jammerUnderTest struct {
	j    jamming.Jammer
	feed func(slot int)
}

// buildJammers constructs one of every Jammer implementation in the repo
// — the oblivious strategies of this package plus an adversary.Driver per
// reactive strategy — all with the same (c, kJam, seed). The reactive
// drivers are fed a synthetic outcome history decoded from script so
// their plans actually vary.
func buildJammers(t testing.TB, n, c, kJam int, seed int64, script []byte) []jammerUnderTest {
	juts := []jammerUnderTest{
		{j: jamming.NoJammer{}},
		{j: jamming.NewRandomJammer(c, kJam, seed)},
		{j: jamming.NewSweepJammer(c, kJam)},
		{j: jamming.NewBlockSweepJammer(c, kJam, 3)},
		{j: jamming.NewSplitJammer(c, kJam, 2)},
	}
	for _, name := range adversary.Strategies() {
		if !adversary.CanJam(name) {
			continue
		}
		strat, err := adversary.New(name)
		if err != nil {
			t.Fatal(err)
		}
		drv, err := adversary.NewDriver(strat, n, c, adversary.Budget{PerSlot: kJam, Total: 64}, seed)
		if err != nil {
			t.Fatal(err)
		}
		drv.EnableJam(kJam)
		drv.Reset()
		juts = append(juts, jammerUnderTest{
			j:    drv,
			feed: func(slot int) { drv.OnSlot(slot, scriptOutcomes(script, slot, n, c)) },
		})
	}
	return juts
}

// scriptOutcomes decodes one slot's synthetic channel outcomes from raw
// fuzz bytes: deterministic, in-range, with repeats so streak and traffic
// detectors engage.
func scriptOutcomes(script []byte, slot, n, c int) []sim.ChannelOutcome {
	if len(script) == 0 {
		return nil
	}
	var outs []sim.ChannelOutcome
	for ch := 0; ch < c; ch++ {
		b := script[(slot*c+ch)%len(script)]
		if b%4 == 0 {
			continue // idle channel
		}
		w := sim.NodeID(int(b/4) % n)
		out := sim.ChannelOutcome{
			Channel:      ch,
			Broadcasters: []sim.NodeID{w, sim.NodeID((int(w) + 1) % n)},
			Winner:       w,
			Listeners:    []sim.NodeID{sim.NodeID((int(w) + 2) % n)},
		}
		if b%4 == 3 {
			out.Winner = sim.None
		}
		outs = append(outs, out)
	}
	return outs
}

// checkJammerContract drives one jammer for the given slots and enforces
// the Jammer contract from the interface doc: at most kJam distinct
// channels, all in [0, c), per node per slot — and bit-identical output
// when the same (seed, history) is replayed. It returns the recorded
// jam sequence for the replay comparison.
func checkJammerContract(t testing.TB, jut jammerUnderTest, n, c, kJam, slots int) []string {
	var record []string
	for slot := 0; slot < slots; slot++ {
		for u := 0; u < n; u++ {
			jam := jut.j.Jammed(slot, sim.NodeID(u))
			if len(jam) > kJam {
				t.Fatalf("%s: slot %d node %d: %d jams exceed budget %d", jut.j.Name(), slot, u, len(jam), kJam)
			}
			seen := make(map[int]bool, len(jam))
			for _, ch := range jam {
				if ch < 0 || ch >= c {
					t.Fatalf("%s: slot %d node %d: channel %d out of [0, %d)", jut.j.Name(), slot, u, ch, c)
				}
				if seen[ch] {
					t.Fatalf("%s: slot %d node %d: duplicate channel %d", jut.j.Name(), slot, u, ch)
				}
				seen[ch] = true
			}
			record = append(record, fmt.Sprint(jam))
		}
		if jut.feed != nil {
			jut.feed(slot)
		}
	}
	return record
}

// TestJammerContract is the always-on property test behind FuzzJammer:
// every Jammer in the repo honors the budget/range/determinism contract
// on a fixed configuration, and the Theorem 18 reduction built on top of
// each still guarantees c−kJam channels per node.
func TestJammerContract(t *testing.T) {
	const n, c, kJam, slots = 6, 9, 3, 32
	script := []byte("synthetic traffic for the reactive arms \x01\x07\x0b\x13")
	run := func() [][]string {
		var all [][]string
		for _, jut := range buildJammers(t, n, c, kJam, 42, script) {
			all = append(all, checkJammerContract(t, jut, n, c, kJam, slots))
		}
		return all
	}
	first, second := run(), run()
	for i := range first {
		for k := range first[i] {
			if first[i][k] != second[i][k] {
				t.Fatalf("jammer #%d: replay diverged at step %d: %s vs %s", i, k, first[i][k], second[i][k])
			}
		}
	}
	// Each jammer also composes with the reduction: per-slot channel sets
	// keep at least c−kJam channels.
	for _, jut := range buildJammers(t, n, c, kJam, 42, script) {
		asn, err := jamming.NewAssignment(n, c, kJam, jut.j, 42)
		if err != nil {
			t.Fatalf("%s: %v", jut.j.Name(), err)
		}
		for slot := 0; slot < slots; slot++ {
			for u := 0; u < n; u++ {
				set := asn.ChannelSet(sim.NodeID(u), slot)
				if len(set) < c-kJam {
					t.Fatalf("%s: slot %d node %d: %d channels < guaranteed %d", jut.j.Name(), slot, u, len(set), c-kJam)
				}
			}
			if jut.feed != nil {
				jut.feed(slot)
			}
		}
	}
}

// FuzzJammer fuzzes the Jammer contract across every implementation —
// the oblivious strategies and the reactive adversary drivers — under
// fuzzer-chosen topology, budget, seed and observation history. Any
// accepted configuration must keep every jammer within budget, in range,
// duplicate-free, and bit-reproducible under replay.
func FuzzJammer(f *testing.F) {
	f.Add(uint8(6), uint8(9), uint8(3), int64(1), []byte("steady traffic \x05\x09\x11"))
	f.Add(uint8(2), uint8(2), uint8(0), int64(-7), []byte{0})
	f.Add(uint8(16), uint8(12), uint8(5), int64(99), []byte("\x03\x03\x03\x03\xff\xfe\xfd bursty"))
	f.Fuzz(func(t *testing.T, rawN, rawC, rawJam uint8, seed int64, script []byte) {
		n := 2 + int(rawN)%15 // [2, 16] nodes
		c := 2 + int(rawC)%15 // [2, 16] channels
		kJam := 0
		if c/2 > 0 {
			kJam = int(rawJam) % (c / 2) // 0 <= kJam < c/2
		}
		slots := len(script) + 4
		if slots > 48 {
			slots = 48
		}
		run := func() [][]string {
			var all [][]string
			for _, jut := range buildJammers(t, n, c, kJam, seed, script) {
				all = append(all, checkJammerContract(t, jut, n, c, kJam, slots))
			}
			return all
		}
		first, second := run(), run()
		for i := range first {
			for k := range first[i] {
				if first[i][k] != second[i][k] {
					t.Fatalf("jammer #%d: replay diverged at step %d (n=%d c=%d kJam=%d seed=%d): %s vs %s",
						i, k, n, c, kJam, seed, first[i][k], second[i][k])
				}
			}
		}
	})
}
