// Package jamming implements the multi-channel network with an n-uniform
// jamming adversary from the paper's Section 7 discussion, and the
// Theorem 18 reduction to a dynamic cognitive radio network.
//
// The setting: n nodes share all c channels of a classic multi-channel
// network; an adversary may jam up to kJam < c/2 channels *per node, per
// slot* (n-uniform: the jamming decision is individual per node). A jammed
// channel is useless to that node. The reduction observes that the
// per-slot set of unjammed channels is a valid dynamic channel assignment:
// every node retains at least c−kJam channels, and any two nodes still
// share at least c−2·kJam, so any local-label dynamic-CRN broadcast
// algorithm — COGCAST in particular — runs unmodified with the guarantees
// of T(n, c, c−2·kJam).
//
// Assignment below *is* that reduction: it turns (network, adversary) into
// a sim.Assignment whose per-slot channel sets are the unjammed channels in
// a per-node random order (local labels, as Theorem 18 requires).
package jamming

import (
	"fmt"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Jammer is an n-uniform jamming adversary: per slot it decides, for each
// node individually, which physical channels to jam. Implementations must
// be deterministic so runs are reproducible: oblivious jammers (the
// strategies below) are functions of (slot, node), while reactive ones
// (package adversary) may additionally depend on the channel outcomes of
// *earlier* slots, observed through the sim.Observer hook. No adversary
// sees the current slot's coin flips — the model grants reactions, not
// prescience — which the slot ordering enforces structurally: the
// engine materializes slot t's channel sets before resolving slot t.
type Jammer interface {
	// Name identifies the strategy in reports.
	Name() string
	// Jammed returns the physical channels jammed for node in slot. The
	// result must contain at most the adversary's budget of distinct
	// channels in [0, c).
	Jammed(slot int, node sim.NodeID) []int
}

// Assignment adapts a jammed c-channel network to sim.Assignment per the
// Theorem 18 reduction. PerNode reports c (the full spectrum); actual
// per-slot sets are smaller, which protocols observe through
// sim.NodeView.NumChannels. MinOverlap reports the guaranteed c−2·kJam.
type Assignment struct {
	n, c, kJam int
	jammer     Jammer
	seed       int64

	cachedSlot int
	cached     [][]int
	sink       trace.Sink
}

var _ sim.Assignment = (*Assignment)(nil)

// NewAssignment builds the reduction for n nodes, c channels, and an
// adversary budget of kJam < c/2 jammed channels per node per slot.
func NewAssignment(n, c, kJam int, jammer Jammer, seed int64) (*Assignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("jamming: n=%d must be positive", n)
	}
	if c < 1 {
		return nil, fmt.Errorf("jamming: c=%d must be positive", c)
	}
	if kJam < 0 || 2*kJam >= c {
		return nil, fmt.Errorf("jamming: budget kJam=%d must satisfy 0 <= kJam < c/2 = %d/2", kJam, c)
	}
	if jammer == nil {
		return nil, fmt.Errorf("jamming: nil jammer")
	}
	a := &Assignment{n: n, c: c, kJam: kJam, jammer: jammer, seed: seed, cachedSlot: -1}
	a.cached = make([][]int, n)
	for u := range a.cached {
		a.cached[u] = make([]int, 0, c)
	}
	return a, nil
}

// Nodes returns n.
func (a *Assignment) Nodes() int { return a.n }

// Channels returns c (all channels are physical spectrum here).
func (a *Assignment) Channels() int { return a.c }

// PerNode returns c, the nominal spectrum size.
func (a *Assignment) PerNode() int { return a.c }

// MinOverlap returns the reduction's guarantee c − 2·kJam.
func (a *Assignment) MinOverlap() int { return a.c - 2*a.kJam }

// ChannelSet returns the node's unjammed channels for the slot in a
// node-private random order.
func (a *Assignment) ChannelSet(node sim.NodeID, slot int) []int {
	if slot != a.cachedSlot {
		a.fill(slot)
	}
	return a.cached[node]
}

// SetTrace attaches (or, with nil, detaches) a sink receiving one
// trace.KindJam event per slot summarizing the adversary's injections.
// Call it before the run starts; the assignment emits for every slot it
// materializes while a sink is attached.
func (a *Assignment) SetTrace(sink trace.Sink) { a.sink = sink }

func (a *Assignment) fill(slot int) {
	jammedTotal := 0
	for u := 0; u < a.n; u++ {
		jammed := a.jammer.Jammed(slot, sim.NodeID(u))
		if len(jammed) > a.kJam {
			// An over-budget adversary would void the reduction's overlap
			// guarantee; clamp to the budget rather than corrupt the model.
			jammed = jammed[:a.kJam]
		}
		blocked := make(map[int]bool, len(jammed))
		for _, ch := range jammed {
			if ch >= 0 && ch < a.c {
				blocked[ch] = true
			}
		}
		jammedTotal += len(blocked)
		set := a.cached[u][:0]
		for ch := 0; ch < a.c; ch++ {
			if !blocked[ch] {
				set = append(set, ch)
			}
		}
		r := rng.New(a.seed, int64(slot), int64(u), 0x1a3)
		r.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		a.cached[u] = set
	}
	a.cachedSlot = slot
	if a.sink != nil {
		a.sink.Emit(trace.JamEvent(slot, jammedTotal, a.kJam))
	}
}

// --- Adversary strategies --------------------------------------------------------

// RandomJammer jams a fresh uniform random budget-size channel set per node
// per slot — the fully n-uniform oblivious adversary.
type RandomJammer struct {
	c, budget int
	seed      int64
	buf       []int
}

var _ Jammer = (*RandomJammer)(nil)

// NewRandomJammer builds a random jammer over c channels with the given
// per-node budget.
func NewRandomJammer(c, budget int, seed int64) *RandomJammer {
	return &RandomJammer{c: c, budget: budget, seed: seed, buf: make([]int, budget)}
}

// Name implements Jammer.
func (*RandomJammer) Name() string { return "random" }

// Jammed implements Jammer.
func (j *RandomJammer) Jammed(slot int, node sim.NodeID) []int {
	r := rng.New(j.seed, int64(slot), int64(node), 0x1a4)
	idx := r.Perm(j.c)[:j.budget]
	copy(j.buf, idx)
	return j.buf
}

// SweepJammer jams a contiguous window that slides across the spectrum,
// the same window for every node (a 1-uniform adversary — the weakest end
// of the n-uniform family).
type SweepJammer struct {
	c, budget int
	buf       []int
}

var _ Jammer = (*SweepJammer)(nil)

// NewSweepJammer builds a sweeping jammer over c channels.
func NewSweepJammer(c, budget int) *SweepJammer {
	return &SweepJammer{c: c, budget: budget, buf: make([]int, budget)}
}

// Name implements Jammer.
func (*SweepJammer) Name() string { return "sweep" }

// Jammed implements Jammer.
func (j *SweepJammer) Jammed(slot int, _ sim.NodeID) []int {
	for i := 0; i < j.budget; i++ {
		j.buf[i] = (slot*j.budget + i) % j.c
	}
	return j.buf
}

// BlockSweepJammer partitions the spectrum into fixed budget-sized blocks
// and dwells on each block for a number of slots before moving to the
// next — a deterministic scanning adversary (think a swept-frequency
// interferer parked on one band at a time). Like SweepJammer it is
// 1-uniform; unlike it, the jammed set is stable across the dwell window,
// which punishes protocols that retry on the same channel.
type BlockSweepJammer struct {
	c, budget, dwell int
	buf              []int
}

var _ Jammer = (*BlockSweepJammer)(nil)

// NewBlockSweepJammer builds a block-sweeping jammer over c channels that
// jams one budget-sized block for dwell slots before advancing.
func NewBlockSweepJammer(c, budget, dwell int) *BlockSweepJammer {
	if dwell < 1 {
		dwell = 1
	}
	return &BlockSweepJammer{c: c, budget: budget, dwell: dwell, buf: make([]int, budget)}
}

// Name implements Jammer.
func (*BlockSweepJammer) Name() string { return "block" }

// Jammed implements Jammer.
func (j *BlockSweepJammer) Jammed(slot int, _ sim.NodeID) []int {
	if j.budget == 0 {
		return nil
	}
	numBlocks := (j.c + j.budget - 1) / j.budget
	block := (slot / j.dwell) % numBlocks
	for i := 0; i < j.budget; i++ {
		j.buf[i] = (block*j.budget + i) % j.c
	}
	return j.buf
}

// SplitJammer partitions nodes into groups and jams a different window per
// group, exercising genuine n-uniformity: two nodes in different groups see
// different jammed spectra in the same slot.
type SplitJammer struct {
	c, budget, groups int
	buf               []int
}

var _ Jammer = (*SplitJammer)(nil)

// NewSplitJammer builds a split jammer with the given group count.
func NewSplitJammer(c, budget, groups int) *SplitJammer {
	if groups < 1 {
		groups = 1
	}
	return &SplitJammer{c: c, budget: budget, groups: groups, buf: make([]int, budget)}
}

// Name implements Jammer.
func (*SplitJammer) Name() string { return "split" }

// Jammed implements Jammer.
func (j *SplitJammer) Jammed(slot int, node sim.NodeID) []int {
	group := int(node) % j.groups
	base := (slot + group*j.c/j.groups) % j.c
	for i := 0; i < j.budget; i++ {
		j.buf[i] = (base + i) % j.c
	}
	return j.buf
}

// NoJammer never jams — the control arm of the jamming experiments.
type NoJammer struct{}

var _ Jammer = (*NoJammer)(nil)

// Name implements Jammer.
func (NoJammer) Name() string { return "none" }

// Jammed implements Jammer.
func (NoJammer) Jammed(int, sim.NodeID) []int { return nil }
