// Package gossip extends COGCAST from one source to m concurrent sources —
// the all-to-all "gossip" variant of local broadcast. The paper motivates
// local broadcast as a primitive for synchronizing a network (disseminating
// shared random bits or configuration); when several nodes hold pieces of
// that state simultaneously, the natural generalization is for every node
// to relay the *union* of the rumors it has heard.
//
// The protocol is COGCAST's: every slot each node picks a uniform channel;
// nodes knowing at least one rumor broadcast their full rumor set, others
// listen, and receivers merge. One-winner collisions mean a slot transfers
// one set per channel. This is an extension of the paper (no theorem covers
// it); experiment E18 measures how completion scales with the rumor count m
// and network size n.
package gossip

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Rumor identifies one of the m rumors by its source's index 0..m-1.
type Rumor int

// rumorSet is an immutable bitset of rumors; messages share these values,
// so senders must never mutate a set after broadcasting it.
type rumorSet []uint64

func newRumorSet(m int) rumorSet { return make(rumorSet, (m+63)/64) }

func (s rumorSet) has(r Rumor) bool { return s[r/64]&(1<<(uint(r)%64)) != 0 }

func (s rumorSet) clone() rumorSet {
	out := make(rumorSet, len(s))
	copy(out, s)
	return out
}

func (s rumorSet) withAll(other rumorSet) rumorSet {
	out := s.clone()
	for i, w := range other {
		out[i] |= w
	}
	return out
}

// subsetOf reports whether every rumor in s is also in t (same length).
func (s rumorSet) subsetOf(t rumorSet) bool {
	for i, w := range s {
		if w&^t[i] != 0 {
			return false
		}
	}
	return true
}

func (s rumorSet) with(r Rumor) rumorSet {
	out := s.clone()
	out[r/64] |= 1 << (uint(r) % 64)
	return out
}

func (s rumorSet) count() int {
	n := 0
	for _, w := range s {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// message is the broadcast payload: the sender's current rumor set.
type message struct {
	rumors rumorSet
}

// Node is one gossip participant. It implements sim.Protocol.
type Node struct {
	view   sim.NodeView
	rand   *rand.Rand
	rumors rumorSet
	// wire is the boxed message holding rumors, rebuilt only when the set
	// grows, so the steady-state slot path does not re-box every broadcast.
	wire sim.Message
}

var _ sim.Protocol = (*Node)(nil)

// NewNode creates a gossip node that initially knows the given rumors (nil
// for a node starting empty). totalRumors is m, known to all nodes.
func NewNode(view sim.NodeView, initial []Rumor, totalRumors int, seed int64) *Node {
	set := newRumorSet(totalRumors)
	for _, r := range initial {
		set = set.with(r)
	}
	return &Node{
		view:   view,
		rand:   rng.New(seed, int64(view.ID()), 0x6055),
		rumors: set,
		wire:   message{rumors: set},
	}
}

// Step implements sim.Protocol: broadcast the known set if nonempty,
// otherwise listen — both on a uniform random channel.
func (n *Node) Step(slot int) sim.Action {
	ch := n.rand.Intn(n.view.NumChannels(slot))
	if n.rumors.count() > 0 {
		return sim.Broadcast(ch, n.wire)
	}
	return sim.Listen(ch)
}

// Deliver implements sim.Protocol: merge any heard rumor set. Failed
// broadcasters also receive the winning set, so co-channel senders merge
// into each other — collisions still make progress, unlike in single-source
// COGCAST where they are pure loss.
func (n *Node) Deliver(_ int, ev sim.Event) {
	m, ok := ev.Msg.(message)
	if !ok || ev.Kind == sim.EvSendSucceeded {
		return
	}
	if m.rumors.subsetOf(n.rumors) {
		return // nothing new; merging would reproduce the current set
	}
	n.rumors = n.rumors.withAll(m.rumors)
	n.wire = message{rumors: n.rumors}
}

// Done implements sim.Protocol; gossip nodes are engine-stopped.
func (n *Node) Done() bool { return false }

// Knows reports whether the node holds rumor r.
func (n *Node) Knows(r Rumor) bool { return n.rumors.has(r) }

// Count returns how many rumors the node holds.
func (n *Node) Count() int { return n.rumors.count() }

// Result reports one gossip execution.
type Result struct {
	// Slots until every node held every rumor (or the budget).
	Slots int
	// Complete reports full dissemination.
	Complete bool
	// MinKnown is the smallest per-node rumor count at the end.
	MinKnown int
}

// Run disseminates m rumors, initially held by nodes sources[0..m-1]
// respectively, until every node knows all of them or maxSlots elapse.
func Run(asn sim.Assignment, sources []sim.NodeID, seed int64, maxSlots int) (*Result, error) {
	n := asn.Nodes()
	m := len(sources)
	if m == 0 {
		return nil, fmt.Errorf("gossip: no sources")
	}
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("gossip: source %d outside [0,%d)", s, n)
		}
	}
	initial := make(map[sim.NodeID][]Rumor, m)
	for i, s := range sources {
		initial[s] = append(initial[s], Rumor(i))
	}
	nodes := make([]*Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = NewNode(sim.View(asn, sim.NodeID(i)), initial[sim.NodeID(i)], m, seed)
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, seed)
	if err != nil {
		return nil, err
	}
	complete := func() bool {
		for _, nd := range nodes {
			if nd.Count() < m {
				return false
			}
		}
		return true
	}
	if _, err := eng.RunWhile(maxSlots, func() bool { return !complete() }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}
	minKnown := m
	for _, nd := range nodes {
		if c := nd.Count(); c < minKnown {
			minKnown = c
		}
	}
	return &Result{Slots: eng.Slot(), Complete: complete(), MinKnown: minKnown}, nil
}
