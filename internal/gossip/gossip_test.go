package gossip

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/sim"
)

func TestRumorSetOps(t *testing.T) {
	s := newRumorSet(130)
	if s.count() != 0 {
		t.Error("fresh set not empty")
	}
	s = s.with(0).with(64).with(129)
	if s.count() != 3 {
		t.Errorf("count = %d, want 3", s.count())
	}
	for _, r := range []Rumor{0, 64, 129} {
		if !s.has(r) {
			t.Errorf("missing rumor %d", r)
		}
	}
	if s.has(1) || s.has(128) {
		t.Error("phantom rumor present")
	}
	other := newRumorSet(130).with(5)
	merged := s.withAll(other)
	if merged.count() != 4 || !merged.has(5) {
		t.Errorf("merge failed: %d rumors", merged.count())
	}
	// Originals untouched (messages share sets; mutation would corrupt
	// in-flight messages).
	if s.count() != 3 || other.count() != 1 {
		t.Error("merge mutated its inputs")
	}
}

func TestGossipSingleSourceMatchesCogcastSemantics(t *testing.T) {
	asn, err := assign.FullOverlap(32, 4, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(asn, []sim.NodeID{0}, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("single-rumor gossip incomplete after %d slots", res.Slots)
	}
}

func TestGossipAllRumorsReachEveryone(t *testing.T) {
	const n = 40
	asn, err := assign.SharedCore(n, 8, 2, 24, assign.LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	sources := []sim.NodeID{0, 7, 13, 21, 39}
	res, err := Run(asn, sources, 2, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("gossip incomplete: min known %d of %d after %d slots", res.MinKnown, len(sources), res.Slots)
	}
	if res.MinKnown != len(sources) {
		t.Errorf("MinKnown = %d, want %d", res.MinKnown, len(sources))
	}
}

func TestGossipDuplicateSources(t *testing.T) {
	// One node may hold several rumors from the start.
	asn, err := assign.FullOverlap(16, 4, assign.LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(asn, []sim.NodeID{5, 5, 5}, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("gossip with co-located rumors incomplete")
	}
}

func TestGossipValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(asn, nil, 1, 10); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := Run(asn, []sim.NodeID{9}, 1, 10); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestGossipBudgetRespected(t *testing.T) {
	asn, err := assign.Partitioned(32, 16, 1, assign.LocalLabels, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(asn, []sim.NodeID{0}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots > 2 {
		t.Errorf("ran %d slots past a 2-slot budget", res.Slots)
	}
}

func TestGossipWorksOverDynamicAssignment(t *testing.T) {
	asn, err := assign.NewDynamic(24, 6, 2, 18, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(asn, []sim.NodeID{0, 12}, 5, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("gossip over dynamic assignment incomplete after %d slots", res.Slots)
	}
}

func TestCollidingSendersStillMerge(t *testing.T) {
	// Two sources on a single channel: the slot-1 collision delivers one
	// set to the loser, who merges — so after one slot at least one node
	// holds both rumors.
	asn, err := assign.FullOverlap(2, 1, assign.LocalLabels, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := NewNode(sim.View(asn, 0), []Rumor{0}, 2, 6)
	b := NewNode(sim.View(asn, 1), []Rumor{1}, 2, 6)
	eng, err := sim.NewEngine(asn, []sim.Protocol{a, b}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if a.Count()+b.Count() != 3 {
		t.Errorf("after one colliding slot counts are %d and %d; the loser should have merged the winner's set", a.Count(), b.Count())
	}
}
