package exper

import (
	"bytes"
	"testing"

	"github.com/cogradio/crn/internal/trace"
)

// TestSparseTrialByteIdentity is the experiment-level half of the
// Config.Sparse contract: event-driven stepping must not change a rendered
// cell anywhere in the matrix of shard counts and trial-worker counts. The
// set mirrors shardIdentityFixed — E1 exercises COGCAST (which cannot hint
// and gains only done-retirement), E4 the COGCOMP phases where dormancy
// actually bites, E25 multi-round sessions with round-boundary wakes, E26
// the crash-restart supervisor whose fault wrappers void dormancy promises
// (Recover always steps densely, so Sparse must be a no-op there too).
// Under `go test -race` the sparse trials run concurrently across workers,
// pinning the engine's per-trial wake state against shared mutation.
func TestSparseTrialByteIdentity(t *testing.T) {
	for _, id := range []string{"E1", "E4", "E25", "E26"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(sparse bool, shards, workers int) string {
				tables, err := e.Run(Config{Seed: 7, Trials: 2, Quick: true,
					Sparse: sparse, Shards: shards, Parallel: workers})
				if err != nil {
					t.Fatalf("%s sparse=%v shards=%d parallel=%d: %v", id, sparse, shards, workers, err)
				}
				return renderAll(t, tables)
			}
			want := render(false, 1, 1)
			for _, shards := range []int{1, 4, 8} {
				for _, workers := range []int{1, 4} {
					if got := render(true, shards, workers); got != want {
						t.Errorf("%s: sparse tables at shards=%d parallel=%d differ from dense serial:\n--- sparse ---\n%s\n--- dense ---\n%s",
							id, shards, workers, got, want)
					}
				}
			}
		})
	}
}

// TestSparseTraceByteIdentity extends the contract to the event stream: a
// JSONL trace forces the engine dense (observers see every slot), so a
// traced run with Config.Sparse set must be byte-for-byte the run without
// it — the flag degrades to a no-op rather than perturbing the stream. E1
// covers COGCAST trace events, E26 the recovery supervisor's fault events.
func TestSparseTraceByteIdentity(t *testing.T) {
	for _, id := range []string{"E1", "E26"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			record := func(sparse bool) string {
				var buf bytes.Buffer
				sink := trace.NewJSONL(&buf)
				if _, err := e.Run(Config{Seed: 7, Trials: 2, Quick: true, Sparse: sparse, Trace: sink}); err != nil {
					t.Fatalf("%s sparse=%v: %v", id, sparse, err)
				}
				if err := sink.Err(); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			dense := record(false)
			if dense == "" {
				t.Fatalf("%s emitted no trace events", id)
			}
			if got := record(true); got != dense {
				t.Errorf("%s: JSONL trace with Config.Sparse differs from dense run", id)
			}
		})
	}
}
