package exper

import (
	"fmt"
	"reflect"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
	"github.com/cogradio/crn/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E26",
		Title: "Crash-restart recovery under temporary outages",
		Claim: "The epoch-checkpointed supervisor turns E20's stall-or-corrupt COGCOMP outcomes into exact aggregates at a bounded slot-overhead factor, degrading gracefully (explicit partial census, never a silent wrong answer) when nodes stay down past the retry budget.",
		Run:   runE26,
	})
	register(Experiment{
		ID:    "E27",
		Title: "Recovery overhead when fault-free",
		Claim: "With no faults injected, the supervised run is byte-identical to the classic runner — same slots, same tree, same mediators — so recovery costs nothing until a fault actually happens.",
		Run:   runE27,
	})
}

// runE26 re-runs E20's COGCOMP leg — same topology, same per-trial outage
// schedules — with the recovery supervisor enabled, and reports how many
// trials return the exact aggregate, how many degrade to an explicit
// partial census, and what the retries cost in slots relative to the
// fault-free row.
func runE26(cfg Config) ([]*Table, error) {
	const n, c, k = 32, 8, 2
	rates := []float64{0, 0.01, 0.03}
	if cfg.Quick {
		rates = []float64{0, 0.03}
	}
	const duration = 10
	t := &Table{
		Title:   fmt.Sprintf("E26: crash-restart recovery under E20's outages (duration %d slots, source protected; n=%d, c=%d, k=%d, partitioned)", duration, n, c, k),
		Claim:   "every settled trial is exact or explicitly degraded; slot overhead stays a bounded factor of the fault-free run",
		Columns: []string{"outage rate/slot", "exact", "degraded", "stalled", "median slots", "overhead", "median retries", "median restarts"},
	}
	trials := cfg.trials()
	type recResult struct {
		exact, degraded, stalled bool
		slots, retries, restarts float64
	}
	baseline := 0.0 // fault-free median, set by the rate-0 row
	for _, rate := range rates {
		results, err := forTrials(cfg, trials, func(trial int, a *arena) (recResult, error) {
			var out recResult
			// Same derivation as E20's COGCOMP leg: identical seeds give
			// identical assignments, inputs, and outage schedules.
			ts := rng.Derive(cfg.Seed, int64(rate*1000), int64(trial), 200)
			schedule, err := faults.NewRandomOutages(rate, duration, ts, 0)
			if err != nil {
				return out, err
			}
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return out, err
			}
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.TrialEvent(trial, ts))
			}
			inputs := make([]int64, n)
			var want int64
			for i := range inputs {
				inputs[i] = int64(i + 1)
				want += inputs[i]
			}
			var sched faults.Schedule
			if rate > 0 {
				sched = schedule
			}
			res, err := a.rec.Run(asn, 0, inputs, ts, recov.Config{
				Schedule: sched,
				Trace:    cfg.Trace,
				Check:    cfg.Check,
			})
			if err != nil {
				return out, err
			}
			switch {
			case res.Stalled:
				out.stalled = true
			case res.Complete:
				if res.Value != aggfunc.Value(want) {
					return out, fmt.Errorf("exper: E26 complete run returned %v, want %v", res.Value, want)
				}
				out.exact = true
			default:
				// Degraded: the value must still be the exact fold over
				// the reported contributors — partial, never corrupt.
				var partial int64
				for _, id := range res.Contributors {
					partial += inputs[id]
				}
				if res.Value != aggfunc.Value(partial) {
					return out, fmt.Errorf("exper: E26 degraded run returned %v, want partial %v", res.Value, partial)
				}
				out.degraded = true
			}
			out.slots = float64(res.TotalSlots)
			out.retries = float64(res.Retries)
			out.restarts = float64(res.Restarts)
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		exact, degraded, stalled := 0, 0, 0
		slots := make([]float64, 0, trials)
		retries := make([]float64, 0, trials)
		restarts := make([]float64, 0, trials)
		for _, r := range results {
			switch {
			case r.exact:
				exact++
			case r.degraded:
				degraded++
			case r.stalled:
				stalled++
			}
			if !r.stalled {
				slots = append(slots, r.slots)
			}
			retries = append(retries, r.retries)
			restarts = append(restarts, r.restarts)
		}
		slotCell, overheadCell := "-", "-"
		if len(slots) > 0 {
			s, err := stats.Summarize(slots)
			if err != nil {
				return nil, err
			}
			slotCell = ftoa(s.Median)
			if rate == 0 {
				baseline = s.Median
			}
			if baseline > 0 {
				overheadCell = ftoa(stats.Ratio(s.Median, baseline))
			}
		}
		rs, err := stats.Summarize(retries)
		if err != nil {
			return nil, err
		}
		cs, err := stats.Summarize(restarts)
		if err != nil {
			return nil, err
		}
		t.AddRow(ftoa(rate), fmt.Sprintf("%d/%d", exact, trials), itoa(degraded), itoa(stalled),
			slotCell, overheadCell, ftoa(rs.Median), ftoa(cs.Median))
	}
	t.AddNote("compare the exact column with E20's: the same schedules that stall or corrupt the classic runner settle exactly here")
	t.AddNote("overhead is the settled-trial median divided by the fault-free (rate 0) median")
	return []*Table{t}, nil
}

// runE27 pits the classic runner against the supervisor on identical
// fault-free trials and asserts the results are byte-identical — value,
// slot counts, tree, mediators — so the overhead column must read 1.00.
func runE27(cfg Config) ([]*Table, error) {
	type point struct {
		name    string
		n, c, k int // k == 0 selects full overlap
	}
	points := []point{
		{"full overlap", 24, 6, 0},
		{"partitioned", 32, 8, 2},
		{"partitioned", 64, 8, 2},
	}
	if cfg.Quick {
		points = points[:2]
	}
	t := &Table{
		Title:   "E27: recovery overhead with no faults (classic runner vs supervisor, identical seeds)",
		Claim:   "supervised fault-free runs replay the classic slot sequence exactly: overhead 1.00, zero retries",
		Columns: []string{"assignment", "n", "c", "k", "classic median slots", "supervised median slots", "overhead", "identical"},
	}
	trials := cfg.trials()
	for _, p := range points {
		type pairResult struct {
			classic, supervised float64
			identical           bool
		}
		results, err := forTrials(cfg, trials, func(trial int, a *arena) (pairResult, error) {
			ts := rng.Derive(cfg.Seed, int64(p.n), int64(p.k), int64(trial), 260)
			var (
				asn sim.Assignment
				err error
			)
			if p.k == 0 {
				asn, err = a.assign.FullOverlap(p.n, p.c, assign.LocalLabels, ts)
			} else {
				asn, err = a.assign.Partitioned(p.n, p.c, p.k, assign.LocalLabels, ts)
			}
			if err != nil {
				return pairResult{}, err
			}
			inputs := a.experInputs(p.n, ts)
			classic, err := a.comp.Run(asn, 0, inputs, ts, cogcomp.Config{Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return pairResult{}, err
			}
			// The classic result aliases arena scratch; the supervised run
			// below reuses the same arena nodes, so copy what we compare.
			cc := *classic
			cc.Parents = append([]sim.NodeID(nil), classic.Parents...)
			sup, err := a.rec.Run(asn, 0, inputs, ts, recov.Config{})
			if err != nil {
				return pairResult{}, err
			}
			if sup.Retries != 0 || sup.Reelections != 0 || sup.Restarts != 0 {
				return pairResult{}, fmt.Errorf("exper: E27 fault-free run reports recovery activity: %d retries, %d re-elections, %d restarts",
					sup.Retries, sup.Reelections, sup.Restarts)
			}
			identical := cc.Value == sup.Value &&
				cc.TotalSlots == sup.TotalSlots &&
				cc.Phase1Slots == sup.Phase1Slots &&
				cc.Phase2Slots == sup.Phase2Slots &&
				cc.Phase3Slots == sup.Phase3Slots &&
				cc.Phase4Slots == sup.Phase4Slots &&
				cc.MaxMessageSize == sup.MaxMessageSize &&
				cc.Mediators == sup.Mediators &&
				reflect.DeepEqual(cc.Parents, sup.Parents)
			if !identical {
				return pairResult{}, fmt.Errorf("exper: E27 supervised run diverged from classic at n=%d c=%d k=%d trial %d",
					p.n, p.c, p.k, trial)
			}
			return pairResult{
				classic:    float64(cc.TotalSlots),
				supervised: float64(sup.TotalSlots),
				identical:  true,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		classics := make([]float64, 0, trials)
		superv := make([]float64, 0, trials)
		allSame := true
		for _, r := range results {
			classics = append(classics, r.classic)
			superv = append(superv, r.supervised)
			allSame = allSame && r.identical
		}
		csum, err := stats.Summarize(classics)
		if err != nil {
			return nil, err
		}
		ssum, err := stats.Summarize(superv)
		if err != nil {
			return nil, err
		}
		same := "yes"
		if !allSame {
			same = "NO"
		}
		t.AddRow(p.name, itoa(p.n), itoa(p.c), itoa(p.k),
			ftoa(csum.Median), ftoa(ssum.Median), ftoa(stats.Ratio(ssum.Median, csum.Median)), same)
	}
	t.AddNote("identity is asserted per trial (value, per-phase slots, tree, mediators); any divergence fails the experiment")
	return []*Table{t}, nil
}
