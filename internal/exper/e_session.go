package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "Amortized aggregation sessions (extension)",
		Claim: "Extension: the paper's periodic-snapshot motivation implies repeated aggregation over one static network; reusing the tree (phases 1-3 once, phase 4 per round) drives the per-round cost toward the convergecast window alone.",
		Run:   runE25,
	})
}

func runE25(cfg Config) ([]*Table, error) {
	const n, c, k = 64, 8, 2
	roundCounts := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		roundCounts = []int{1, 4}
	}
	t := &Table{
		Title:   fmt.Sprintf("E25: session vs independent runs, per-round slot cost (n=%d, c=%d, k=%d, shared-core)", n, c, k),
		Claim:   "with a profiled round window, session per-round cost falls well below independent runs as rounds grow",
		Columns: []string{"rounds", "tuned window (slots)", "session slots/round", "independent slots/round", "amortization gain"},
	}
	for _, rc := range roundCounts {
		type sessionResult struct {
			sessionPer, independentPer float64
			windowSlots                int
		}
		results, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (sessionResult, error) {
			ts := rng.Derive(cfg.Seed, int64(rc), int64(trial), 250)
			asn, err := a.assign.SharedCore(n, c, k, 24, assign.LocalLabels, ts)
			if err != nil {
				return sessionResult{}, err
			}
			// All rounds must stay alive at once, so the rounds use the
			// allocating package experInputs rather than the arena scratch.
			rounds := make([][]int64, rc)
			for r := range rounds {
				rounds[r] = experInputs(n, rng.Derive(ts, int64(r)))
			}
			// Profile: one probe round with the safe worst-case window
			// yields the actual step requirement; run the real session with
			// a 2x-margin tuned window (the strategy a deployment would
			// use, with incompleteness detection as the safety net). The
			// probe's FinishSteps alias arena backing, so read them before
			// the next session run reuses it.
			probe, err := a.comp.RunRounds(asn, 0, rounds[:1], ts, cogcomp.SessionConfig{Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return sessionResult{}, err
			}
			tuned := 2*probe.FinishSteps[0] + 8
			res, err := a.comp.RunRounds(asn, 0, rounds, ts, cogcomp.SessionConfig{RoundSteps: tuned, Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return sessionResult{}, err
			}
			// res.Values also alias the arena; verify before the single runs
			// below recycle the per-node backing.
			for r := range rounds {
				if want := aggfunc.Fold(aggfunc.Sum{}, rounds[r]); res.Values[r] != want {
					return sessionResult{}, fmt.Errorf("exper: E25 round %d aggregate mismatch", r)
				}
			}

			total := 0
			for r := range rounds {
				single, err := a.comp.Run(asn, 0, rounds[r], rng.Derive(ts, int64(r), 1), cogcomp.Config{Shards: cfg.Shards, Sparse: cfg.Sparse})
				if err != nil {
					return sessionResult{}, err
				}
				total += single.TotalSlots
			}
			return sessionResult{
				sessionPer:     float64(res.TotalSlots) / float64(rc),
				independentPer: float64(total) / float64(rc),
				windowSlots:    res.RoundSlots,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		sessionPer := make([]float64, 0, cfg.trials())
		independentPer := make([]float64, 0, cfg.trials())
		var windowSlots int
		for _, r := range results {
			sessionPer = append(sessionPer, r.sessionPer)
			independentPer = append(independentPer, r.independentPer)
			windowSlots = r.windowSlots
		}
		ss, err := stats.Summarize(sessionPer)
		if err != nil {
			return nil, err
		}
		is, err := stats.Summarize(independentPer)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(rc), itoa(windowSlots), ftoa(ss.Median), ftoa(is.Median),
			ftoa(stats.Ratio(is.Median, ss.Median)))
	}
	t.AddNote("gain approaches (setup + round)/round as rounds grow; every session round was verified exact")
	return []*Table{t}, nil
}
