package exper

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/cogradio/crn/internal/trace"
)

// shardIdentityFixed are always in the byte-identity matrix: E1 exercises
// the COGCAST engine path, E4 the COGCOMP phases, E25 multi-round sessions,
// E26 the crash-restart supervisor (whose traced fault runs must force the
// engine serial). E28 — the scale sweep whose single trials take seconds —
// is excluded here and covered by its own engine-level tests.
var shardIdentityFixed = []string{"E1", "E4", "E25", "E26"}

// TestShardedTrialByteIdentity is the experiment-level half of the
// WithShards contract: rendered tables must be byte-identical at shard
// counts 1, 2, 4 and 8, across the fixed engine-heavy set plus a seeded
// random draw from the rest of the registry. Its main value is under
// `go test -race`, where every non-serial count stresses the sharded scan
// against the trial workers.
func TestShardedTrialByteIdentity(t *testing.T) {
	subset := map[string]bool{}
	for _, id := range shardIdentityFixed {
		subset[id] = true
	}
	all := All()
	rnd := rand.New(rand.NewSource(20260807))
	rnd.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	extra := 0
	for _, e := range all {
		if extra >= 3 {
			break
		}
		if e.ID == "E28" || subset[e.ID] {
			continue
		}
		subset[e.ID] = true
		extra++
	}
	for id := range subset {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var want string
			for _, shards := range []int{1, 2, 4, 8} {
				tables, err := e.Run(Config{Seed: 7, Trials: 2, Quick: true, Shards: shards})
				if err != nil {
					t.Fatalf("%s at %d shards: %v", id, shards, err)
				}
				got := renderAll(t, tables)
				if shards == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s: tables at %d shards differ from serial engine:\n--- %d shards ---\n%s\n--- serial ---\n%s",
						id, shards, shards, got, want)
				}
			}
		})
	}
}

// TestShardedTraceByteIdentity extends the contract to the event stream:
// a JSONL trace of a full experiment must be byte-for-byte the same with
// the sharded scan as with the serial one — channel outcomes are observed
// after the merge, in the serial engine's order. E1 covers the COGCAST
// trace events; E26 covers the recovery supervisor, whose traced fault runs
// are forced serial inside the engine precisely so crashers' fault/restart
// events keep their deterministic order.
func TestShardedTraceByteIdentity(t *testing.T) {
	for _, id := range []string{"E1", "E26"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			record := func(shards int) string {
				var buf bytes.Buffer
				sink := trace.NewJSONL(&buf)
				if _, err := e.Run(Config{Seed: 7, Trials: 2, Quick: true, Shards: shards, Trace: sink}); err != nil {
					t.Fatalf("%s at %d shards: %v", id, shards, err)
				}
				if err := sink.Err(); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			serial := record(1)
			if serial == "" {
				t.Fatalf("%s emitted no trace events", id)
			}
			for _, shards := range []int{2, 4, 8} {
				if got := record(shards); got != serial {
					t.Errorf("%s: JSONL trace at %d shards differs from serial engine", id, shards)
				}
			}
		})
	}
}
