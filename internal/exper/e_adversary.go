package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/adversary"
	"github.com/cogradio/crn/internal/games"
)

func init() {
	register(Experiment{
		ID:    "E30",
		Title: "Reactive adversary tournament under an energy budget",
		Claim: "Section 7 discussion, sharpened: against energy-bounded reactive adversaries COGCAST degrades gracefully (the Theorem 18 reduction absorbs adaptive jamming as shrunken overlap), unsupervised COGCOMP is brittle, and the recovery supervisor restores completion at a slot-overhead cost — with the phase-boundary crasher costing supervised COGCOMP strictly more than oblivious outages of equal energy.",
		Run:   runE30,
	})
}

func runE30(cfg Config) ([]*Table, error) {
	n, c, trials := 32, 8, cfg.trials()
	budget := adversary.Budget{PerSlot: 3, Total: 240}
	if cfg.Quick {
		n = 24
		trials = minInt(trials, 5)
		budget.Total = 160
	}
	tour := games.Tournament{
		Nodes: n, Channels: c, K: 2,
		Trials:  trials,
		Budget:  budget,
		Seed:    rng300(cfg.Seed),
		Workers: cfg.workers(),
		Shards:  cfg.Shards,
	}
	res, err := games.RunTournament(tour)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for _, arm := range []struct {
		config string
		claim  string
	}{
		{games.ArmCogcastJam, "reactive jammers slow the epidemic but cannot stop it (overlap stays >= c-2k)"},
		{games.ArmCogcompBare, "without supervision, targeted crash-restarts stall or corrupt the phases"},
		{games.ArmCogcompRecover, "the supervisor converts failures into slot overhead; targeted boundary attacks cost the most"},
	} {
		t := &Table{
			Title: fmt.Sprintf("E30: %s vs the adversary population (n=%d, c=%d, per-slot %d, reserve %d, %d trials; ranked by damage)",
				arm.config, n, c, budget.PerSlot, budget.Total, trials),
			Claim:   arm.claim,
			Columns: []string{"adversary", "completions", "degraded", "stalled", "median slots", "overhead", "energy spent", "exhausted"},
		}
		for _, d := range res.ByConfig(arm.config) {
			overhead := "-"
			if d.Overhead > 0 {
				overhead = ftoa(d.Overhead)
			}
			median := "-"
			if d.MedianSlots > 0 {
				median = ftoa(d.MedianSlots)
			}
			t.AddRow(d.Strategy, fmt.Sprintf("%d/%d", d.Completions, d.Trials),
				itoa(d.Degraded), itoa(d.Stalled), median, overhead,
				ftoa(d.EnergySpent), itoa(d.Exhausted))
		}
		tables = append(tables, t)
	}

	// The acceptance comparison: on the supervised arm, the phase-boundary
	// crasher against E26-style oblivious outages at the same energy budget.
	sup := tables[len(tables)-1]
	var crasher, oblivious *games.Duel
	for _, d := range res.ByConfig(games.ArmCogcompRecover) {
		d := d
		switch d.Strategy {
		case "crasher":
			crasher = &d
		case "oblivious":
			oblivious = &d
		}
	}
	if crasher != nil && oblivious != nil {
		worse := crasher.Completions < oblivious.Completions ||
			(crasher.Completions == oblivious.Completions && crasher.Overhead > oblivious.Overhead)
		verdict := "CONFIRMED"
		if !worse {
			verdict = "UNEXPECTED"
		}
		sup.AddNote("%s: phase-boundary crasher (%d/%d complete, overhead %.2f) vs equal-energy oblivious outages (%d/%d complete, overhead %.2f) — reading the phase structure should hurt more than blind outages",
			verdict, crasher.Completions, crasher.Trials, crasher.Overhead,
			oblivious.Completions, oblivious.Trials, oblivious.Overhead)
	}
	sup.AddNote("paired trial seeds: every adversary faces the baseline's exact draws, so overhead is a paired comparison")
	tables[0].AddNote("overhead below 1 is real, not noise: jamming the busiest channels concentrates devices on fewer channels, which can accelerate the epidemic (the same concentration effect as E22's heavy-occupancy regime)")
	return tables, nil
}

// rng300 offsets E30's seed domain from the shared experiment root.
func rng300(seed int64) int64 { return seed ^ 0x3030 }
