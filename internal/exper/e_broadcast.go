package exper

import (
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
	"github.com/cogradio/crn/internal/trace"
)

// cogcastTrials runs COGCAST to completion `trials` times over assignments
// built per-trial and returns the summary of the slot counts. Trials run on
// cfg's worker pool; build receives the worker's assignment builder (ignore
// it for assignment kinds the builder does not cover) and each trial derives
// its state from the trial index alone, so the summary is identical at every
// parallelism level. When cfg.Trace is set each trial is bracketed by a
// trial-boundary event and streams its slot and protocol events into the
// sink (serially; see Config.Trace).
func cogcastTrials(cfg Config, trials int, seed int64, build func(b *assign.Builder, trialSeed int64) (sim.Assignment, error)) (stats.Summary, error) {
	slots, err := forTrials(cfg, trials, func(trial int, a *arena) (float64, error) {
		ts := rng.Derive(seed, int64(trial))
		asn, err := build(&a.assign, ts)
		if err != nil {
			return 0, err
		}
		if cfg.Trace != nil {
			cfg.Trace.Emit(trace.TrialEvent(trial, ts))
		}
		budget := 64 * cogcast.SlotBound(asn.Nodes(), asn.PerNode(), asn.MinOverlap(), cogcast.DefaultKappa)
		res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget, Trace: cfg.Trace, Shards: cfg.Shards, Sparse: cfg.Sparse})
		if err != nil {
			return 0, err
		}
		if !res.AllInformed {
			return 0, fmt.Errorf("exper: broadcast incomplete after %d slots", res.Slots)
		}
		return float64(res.Slots), nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(slots)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "COGCAST completion time vs n (c <= n)",
		Claim: "Theorem 4: for c <= n COGCAST informs all nodes in O((c/k)·lg n) slots w.h.p.; median slots should fit (c/k)·lg n linearly.",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "COGCAST completion time vs c (c >= n)",
		Claim: "Theorem 4: for c >= n the bound is O((c²/(nk))·lg n); median slots should fit (c²/(nk))·lg n linearly.",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "COGCAST vs rendezvous broadcast",
		Claim: "Section 1: epidemic relaying beats the O((c²/k)·lg n) rendezvous baseline by roughly a factor of c when n >= c; the measured ratio should grow linearly in c.",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E10",
		Title: "COGCAST over dynamic channel assignments",
		Claim: "Theorem 17 discussion: COGCAST's guarantees are insensitive to per-slot re-drawn channel sets as long as pairwise overlap k persists; dynamic and static completion times should match within a small constant.",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Epidemic stages and overlap-pattern robustness",
		Claim: "Section 4 analysis: the spread runs in two stages (fast doubling until ~c/2 informed, then a union-bound tail), and per-slot progress is Ω(k/c) for both extreme overlap patterns (one shared core vs pairwise-dedicated channels) — Claims 1-3.",
		Run:   runE13,
	})
}

func runE1(cfg Config) ([]*Table, error) {
	// The partitioned topology is the tight instance: every pair overlaps
	// on exactly k channels, so all information flows through the shared
	// core. (A shared-core topology with random extras has much larger
	// effective overlap and completes far below the bound.)
	const c, k = 16, 4
	ns := []int{64, 128, 256, 512, 1024}
	if cfg.Quick {
		ns = []int{32, 64, 128}
	}
	t := &Table{
		Title:   "E1a: COGCAST scaling in n (c=16, k=4, partitioned topology, local labels)",
		Claim:   "slots ~ (c/k)·lg n",
		Columns: []string{"n", "predictor (c/k)lg n", "median slots", "mean", "p90", "slots/predictor"},
	}
	var xs, ys []float64
	for _, n := range ns {
		s, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(n), 1), func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.Partitioned(n, c, k, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		x := float64(c) / float64(k) * math.Log2(float64(n))
		xs = append(xs, x)
		ys = append(ys, s.Median)
		t.AddRow(itoa(n), ftoa(x), ftoa(s.Median), ftoa(s.Mean), ftoa(s.P90), ftoa(stats.Ratio(s.Median, x)))
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("linear fit slots = %.2f·[(c/k)lg n] + %.2f, R² = %.3f (theory: straight line, R² near 1)", fit.Slope, fit.Intercept, fit.R2)

	// E1b: the other axis of the bound — slots ~ c/k at fixed n.
	const n1b = 256
	kt := &Table{
		Title:   "E1b: COGCAST scaling in k (n=256, c=16, partitioned topology)",
		Claim:   "slots ~ c/k at fixed n",
		Columns: []string{"k", "predictor (c/k)lg n", "median slots", "slots/predictor"},
	}
	var kxs, kys []float64
	ks := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		ks = []int{2, 8}
	}
	for _, kk := range ks {
		s, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(kk), 11), func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.Partitioned(n1b, c, kk, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		x := float64(c) / float64(kk) * math.Log2(float64(n1b))
		kxs = append(kxs, x)
		kys = append(kys, s.Median)
		kt.AddRow(itoa(kk), ftoa(x), ftoa(s.Median), ftoa(stats.Ratio(s.Median, x)))
	}
	kfit, err := stats.LinearFit(kxs, kys)
	if err != nil {
		return nil, err
	}
	kt.AddNote("linear fit slots = %.2f·[(c/k)lg n] + %.2f, R² = %.3f", kfit.Slope, kfit.Intercept, kfit.R2)
	return []*Table{t, kt}, nil
}

func runE2(cfg Config) ([]*Table, error) {
	const n, k = 32, 4
	cs := []int{32, 64, 128, 256}
	if cfg.Quick {
		cs = []int{32, 64}
	}
	t := &Table{
		Title:   "E2: COGCAST scaling in c (n=32, k=4, partitioned topology, local labels)",
		Claim:   "slots ~ (c²/(nk))·lg n for c >= n",
		Columns: []string{"c", "predictor (c²/(nk))lg n", "median slots", "mean", "slots/predictor"},
	}
	var xs, ys []float64
	for _, c := range cs {
		s, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(c), 2), func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.Partitioned(n, c, k, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		x := float64(c) * float64(c) / (float64(n) * float64(k)) * math.Log2(float64(n))
		xs = append(xs, x)
		ys = append(ys, s.Median)
		t.AddRow(itoa(c), ftoa(x), ftoa(s.Median), ftoa(s.Mean), ftoa(stats.Ratio(s.Median, x)))
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("linear fit slots = %.2f·[(c²/(nk))lg n] + %.2f, R² = %.3f", fit.Slope, fit.Intercept, fit.R2)
	return []*Table{t}, nil
}

func runE3(cfg Config) ([]*Table, error) {
	const n, k = 64, 2
	cs := []int{4, 8, 16, 32}
	if cfg.Quick {
		cs = []int{4, 8, 16}
	}
	t := &Table{
		Title:   "E3: COGCAST vs rendezvous broadcast (n=64, k=2, partitioned topology)",
		Claim:   "rendezvous/COGCAST slot ratio grows ~linearly in c",
		Columns: []string{"c", "COGCAST median", "rendezvous median", "ratio"},
	}
	var xs, ratios []float64
	for _, c := range cs {
		seed := rng.Derive(cfg.Seed, int64(c), 3)
		cog, err := cogcastTrials(cfg, cfg.trials(), seed, func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.Partitioned(n, c, k, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		rdvSlots, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (float64, error) {
			ts := rng.Derive(seed, int64(trial), 4)
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return 0, err
			}
			res, err := baseline.RendezvousBroadcast(asn, 0, "m", ts, 4_000_000)
			if err != nil {
				return 0, err
			}
			if !res.AllInformed {
				return 0, fmt.Errorf("exper: rendezvous incomplete at c=%d", c)
			}
			return float64(res.Slots), nil
		})
		if err != nil {
			return nil, err
		}
		rdv, err := stats.Summarize(rdvSlots)
		if err != nil {
			return nil, err
		}
		ratio := stats.Ratio(rdv.Median, cog.Median)
		xs = append(xs, float64(c))
		ratios = append(ratios, ratio)
		t.AddRow(itoa(c), ftoa(cog.Median), ftoa(rdv.Median), ftoa(ratio))
	}
	fit, err := stats.LinearFit(xs, ratios)
	if err != nil {
		return nil, err
	}
	t.AddNote("ratio fit: %.2f·c + %.2f, R² = %.3f (theory: ratio = Θ(c))", fit.Slope, fit.Intercept, fit.R2)
	return []*Table{t}, nil
}

func runE10(cfg Config) ([]*Table, error) {
	const c, k, total = 8, 2, 24
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	t := &Table{
		Title:   "E10: static vs dynamic channel assignments (c=8, k=2, C=24)",
		Claim:   "COGCAST completion is unaffected by per-slot re-drawn sets (same k-overlap)",
		Columns: []string{"n", "static median", "dynamic median", "dynamic/static"},
	}
	for _, n := range ns {
		seed := rng.Derive(cfg.Seed, int64(n), 10)
		static, err := cogcastTrials(cfg, cfg.trials(), seed, func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.SharedCore(n, c, k, total, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		dynamic, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(seed, 1), func(_ *assign.Builder, ts int64) (sim.Assignment, error) {
			return assign.NewDynamic(n, c, k, total, ts)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), ftoa(static.Median), ftoa(dynamic.Median), ftoa(stats.Ratio(dynamic.Median, static.Median)))
	}
	t.AddNote("theory predicts a ratio that is a constant independent of n")
	return []*Table{t}, nil
}

func runE13(cfg Config) ([]*Table, error) {
	stages := &Table{
		Title:   "E13a: epidemic stages (n=256, c=16, k=4, partitioned topology)",
		Claim:   "stage 1 (until c/2 informed) and stage 2 (remaining nodes) are both O((c/k)·lg n)",
		Columns: []string{"trial", "slots to c/2 informed", "slots to all informed", "stage2 share"},
	}
	const n, c, k = 256, 16, 4
	trials := cfg.trials()
	if cfg.Quick && trials > 5 {
		trials = 5
	}
	type stageResult struct{ stage1, total int }
	results, err := forTrials(cfg, trials, func(trial int, a *arena) (stageResult, error) {
		ts := rng.Derive(cfg.Seed, int64(trial), 13)
		asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
		if err != nil {
			return stageResult{}, err
		}
		budget := 64 * cogcast.SlotBound(n, c, k, cogcast.DefaultKappa)
		res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget, Trajectory: true, Shards: cfg.Shards, Sparse: cfg.Sparse})
		if err != nil {
			return stageResult{}, err
		}
		if !res.AllInformed {
			return stageResult{}, fmt.Errorf("exper: E13 broadcast incomplete")
		}
		stage1 := res.Slots
		for s, informed := range res.Trajectory {
			if informed >= c/2 {
				stage1 = s + 1
				break
			}
		}
		return stageResult{stage1: stage1, total: res.Slots}, nil
	})
	if err != nil {
		return nil, err
	}
	var stage1s, totals []float64
	for trial, r := range results {
		stage1s = append(stage1s, float64(r.stage1))
		totals = append(totals, float64(r.total))
		stages.AddRow(itoa(trial), itoa(r.stage1), itoa(r.total), ftoa(1-float64(r.stage1)/float64(r.total)))
	}
	s1, err := stats.Summarize(stage1s)
	if err != nil {
		return nil, err
	}
	st, err := stats.Summarize(totals)
	if err != nil {
		return nil, err
	}
	stages.AddNote("stage 1 median %.1f slots, total median %.1f; both bounded by O((c/k)lg n) = %.1f·κ",
		s1.Median, st.Median, float64(c)/float64(k)*math.Log2(float64(n)))

	patterns := &Table{
		Title:   "E13b: overlap-pattern robustness (n=9, c=8, k=1)",
		Claim:   "Claim 2 covers both extremes: one shared core (congested overlap) vs pairwise-dedicated channels (spread overlap); completion times should be the same order",
		Columns: []string{"topology", "median slots", "mean", "p90"},
	}
	core, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, 131), func(b *assign.Builder, ts int64) (sim.Assignment, error) {
		return b.SharedCore(9, 8, 1, 36, assign.LocalLabels, ts)
	})
	if err != nil {
		return nil, err
	}
	pair, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, 132), func(b *assign.Builder, ts int64) (sim.Assignment, error) {
		return b.PairwiseDedicated(9, 8, 1, assign.LocalLabels, ts)
	})
	if err != nil {
		return nil, err
	}
	patterns.AddRow("shared-core", ftoa(core.Median), ftoa(core.Mean), ftoa(core.P90))
	patterns.AddRow("pairwise-dedicated", ftoa(pair.Median), ftoa(pair.Mean), ftoa(pair.P90))
	patterns.AddNote("ratio of medians = %.2f (theory: Θ(1))", stats.Ratio(pair.Median, core.Median))
	return []*Table{stages, patterns}, nil
}
