package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "Aggregation lower bound Ω(n/k)",
		Claim: "Section 5 discussion: when all nodes share the same k channels, every node must win a channel at least once and each channel carries one message per slot, so aggregation needs Ω(n/k) slots; COGCOMP's phase four must sit above (n−1)/k value-transfer steps, and the total stays within a constant of the bound for constant k.",
		Run:   runE23,
	})
}

func runE23(cfg Config) ([]*Table, error) {
	type point struct{ n, k int }
	points := []point{
		{64, 2}, {128, 2}, {256, 2},
		{64, 8}, {256, 8},
	}
	if cfg.Quick {
		points = []point{{64, 2}, {128, 2}}
	}
	t := &Table{
		Title:   "E23: COGCOMP vs the Ω(n/k) bound (all nodes share the same k channels; c = k)",
		Claim:   "phase-4 steps >= (n−1)/k; total/bound stays bounded for fixed k",
		Columns: []string{"n", "k", "bound (n-1)/k", "median phase-4 steps", "median total slots", "total/bound"},
	}
	for _, p := range points {
		type lbResult struct{ steps, total float64 }
		results, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (lbResult, error) {
			ts := rng.Derive(cfg.Seed, int64(p.n), int64(p.k), int64(trial), 230)
			asn, err := a.assign.FullOverlap(p.n, p.k, assign.LocalLabels, ts)
			if err != nil {
				return lbResult{}, err
			}
			inputs := a.experInputs(p.n, ts)
			res, err := a.compRun(cfg, asn, 0, inputs, ts, cogcomp.Config{})
			if err != nil {
				return lbResult{}, err
			}
			if want := aggfunc.Fold(aggfunc.Sum{}, inputs); res.Value != want {
				return lbResult{}, fmt.Errorf("exper: aggregate %v != ground truth %v", res.Value, want)
			}
			return lbResult{steps: float64(res.Phase4Slots) / 3, total: float64(res.TotalSlots)}, nil
		})
		if err != nil {
			return nil, err
		}
		steps := make([]float64, 0, cfg.trials())
		totals := make([]float64, 0, cfg.trials())
		for _, r := range results {
			steps = append(steps, r.steps)
			totals = append(totals, r.total)
		}
		ss, err := stats.Summarize(steps)
		if err != nil {
			return nil, err
		}
		tt, err := stats.Summarize(totals)
		if err != nil {
			return nil, err
		}
		bound := float64(p.n-1) / float64(p.k)
		if ss.Min < bound-1 {
			return nil, fmt.Errorf("exper: E23 lower bound violated: %.1f steps < (n-1)/k = %.1f", ss.Min, bound)
		}
		t.AddRow(itoa(p.n), itoa(p.k), ftoa(bound), ftoa(ss.Median), ftoa(tt.Median), ftoa(stats.Ratio(tt.Median, bound)))
	}
	t.AddNote("every run's phase-4 step count sat above the bound (checked per trial); COGCOMP is near optimal for small k, as the paper notes")
	return []*Table{t}, nil
}
