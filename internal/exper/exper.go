// Package exper defines the repository's experiment suite: one named,
// runnable experiment per analytical claim in the paper (the paper is a
// theory paper, so its "tables and figures" are theorems and the
// discussion's worked examples; see DESIGN.md for the full index).
// Experiments produce plain-text tables that cmd/cogbench renders and that
// EXPERIMENTS.md records.
package exper

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/parallel"
	recov "github.com/cogradio/crn/internal/recover"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Seed roots all randomness; identical configs reproduce identical
	// tables.
	Seed int64
	// Trials is the number of independent repetitions per parameter point.
	// Zero means DefaultTrials.
	Trials int
	// Quick shrinks sweeps for use under `go test`/benchmarks; full runs
	// (cmd/cogbench) leave it false.
	Quick bool
	// Parallel bounds the number of worker goroutines running independent
	// trials concurrently. 0 means parallel.DefaultWorkers() (GOMAXPROCS);
	// 1 forces serial execution. Tables are byte-identical for every value:
	// per-trial seeds are derived from the trial index alone, and results
	// are merged in trial order.
	Parallel int
	// Trace, when non-nil, receives structured events from the trial
	// runners wired to it (trial boundaries, slot/protocol events from
	// COGCAST trials, fault transitions in E20). Attaching a sink forces
	// serial trial execution regardless of Parallel so the stream is
	// well-ordered; results are unchanged, only wall-clock grows.
	Trace trace.Sink
	// Check runs every COGCAST/COGCOMP trial under the invariant oracle
	// (package invariant): assignment contract, per-slot collision
	// resolution, distribution tree, census, and aggregate ground truth.
	// Any violation fails the experiment. Tables are unchanged — the
	// oracle only observes — at the cost of slower trials.
	Check bool
	// Recover routes every COGCOMP trial through the crash-restart
	// recovery supervisor (package recover) instead of the classic
	// runner. Fault-free supervised runs are byte-identical to the
	// classic path, so every table stays unchanged; the flag exists to
	// prove exactly that (E27) and to let fault experiments (E26) measure
	// recovery itself.
	Recover bool
	// Shards splits every trial's per-slot protocol scan across that many
	// goroutines inside the engine (sim.WithShards) — intra-trial
	// parallelism, orthogonal to Parallel's across-trial workers. Tables
	// and traces are byte-identical for every value: shard results merge in
	// node order and the engine's tie-break draws stay serial. 0 or 1 means
	// serial.
	Shards int
	// Sparse runs every trial's engine in event-driven stepping mode
	// (sim.WithSparse): dormant nodes are skipped instead of scanned, which
	// collapses COGCOMP's census window from Θ(n²) node-steps to O(events).
	// Tables and traces are byte-identical either way — the engine falls
	// back to dense whenever an observer is attached (Trace/Check) — so the
	// flag only moves wall-clock. The recovery supervisor (Recover) always
	// runs dense: its fault wrappers void dormancy promises.
	Sparse bool
	// Context, when non-nil, makes the experiment cancellable: the worker
	// pool stops claiming new trials once it is done (surfacing a
	// *parallel.CanceledError with the finished-trial count) and every
	// trial's engine checks it at slot boundaries (surfacing a
	// *sim.Interrupted mid-trial). An experiment that completes is
	// byte-identical with or without one.
	Context context.Context
}

// DefaultTrials is the per-point repetition count when Config.Trials is 0.
const DefaultTrials = 9

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return DefaultTrials
}

func (c Config) workers() int {
	if c.Trace != nil {
		// Sinks are not concurrency-safe; a well-ordered event stream
		// requires trials to run one at a time.
		return 1
	}
	if c.Parallel > 0 {
		return c.Parallel
	}
	return parallel.DefaultWorkers()
}

// arena is the per-worker scratch handed to every trial closure: an
// assignment builder, the protocol arenas, and input scratch, so repeated
// trials regenerate their setup state in place instead of reallocating it
// from scratch each time. The arena is layout-only reuse — all randomness
// still derives from the trial index — so results never depend on which
// worker's arena ran a trial and tables stay byte-identical at every
// parallelism level.
type arena struct {
	assign assign.Builder
	cast   cogcast.Arena
	comp   cogcomp.Arena
	rec    recov.Arena
	inRand *rand.Rand
	in     []int64
}

// compRun executes one COGCOMP aggregation on this arena: through the
// crash-restart recovery supervisor when cfg.Recover is set, through the
// classic runner otherwise. Fault-free supervised runs are byte-identical
// to the classic path (TestRecoverByteIdentity pins this across the whole
// quick suite), so flipping Recover never changes a fault-free table.
func (a *arena) compRun(cfg Config, asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, ccfg cogcomp.Config) (*cogcomp.Result, error) {
	if ccfg.Shards == 0 {
		ccfg.Shards = cfg.Shards
	}
	ccfg.Sparse = ccfg.Sparse || cfg.Sparse
	if !cfg.Recover {
		return a.comp.Run(asn, source, inputs, seed, ccfg)
	}
	res, err := a.rec.Run(asn, source, inputs, seed, recov.Config{
		Kappa:    ccfg.Kappa,
		Func:     ccfg.Func,
		MaxSlots: ccfg.MaxSlots,
		Trace:    ccfg.Trace,
		Check:    ccfg.Check,
		Shards:   ccfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, cogcomp.ErrIncomplete
	}
	return &cogcomp.Result{
		Value:               res.Value,
		Complete:            res.Complete,
		TotalSlots:          res.TotalSlots,
		Phase1Slots:         res.Phase1Slots,
		Phase2Slots:         res.Phase2Slots,
		Phase3Slots:         res.Phase3Slots,
		Phase4Slots:         res.Phase4Slots,
		InformedAfterPhase1: res.InformedAfterPhase1,
		Parents:             res.Parents,
		MaxMessageSize:      res.MaxMessageSize,
		Mediators:           res.Mediators,
	}, nil
}

// experInputs fills the arena's input scratch with the standard experiment
// input vector (uniform in [-1000, 1000]), drawing exactly as the package
// function of the same name; the slice is valid until the next call on this
// arena. Callers that need several vectors alive at once (session rounds)
// use the allocating package-level experInputs instead.
func (a *arena) experInputs(n int, seed int64) []int64 {
	if a.inRand == nil {
		a.inRand = rng.New(seed, 0x1277)
	} else {
		rng.Reseed(a.inRand, seed, 0x1277)
	}
	if cap(a.in) < n {
		a.in = make([]int64, n)
	}
	a.in = a.in[:n]
	for i := range a.in {
		a.in[i] = a.inRand.Int63n(2001) - 1000
	}
	return a.in
}

// forTrials executes fn for every trial index on the configured worker pool
// and returns the per-trial results in trial order. Each worker owns one
// arena, created inside its goroutine and passed to every fn invocation it
// runs. fn must derive all of its randomness from the trial index (rng.Derive
// of a fixed seed and the index), treat the arena as reusable memory only,
// and share no other mutable state — which is what makes the resulting
// tables independent of Config.Parallel.
func forTrials[T any](cfg Config, trials int, fn func(trial int, a *arena) (T, error)) ([]T, error) {
	return parallel.MapArena(cfg.Context, trials, cfg.workers(), func() *arena {
		a := new(arena)
		if cfg.Check {
			// Arena-level forcing puts every trial of every experiment
			// under the oracle without threading a flag through each
			// run-configuration site.
			a.cast.SetCheck(true)
			a.comp.SetCheck(true)
			a.rec.SetCheck(true)
		}
		if cfg.Context != nil {
			// Same trick for cancellation: the arenas hand the context to
			// every engine they build, so a cancel lands at the next slot
			// boundary instead of waiting out the current trial.
			a.cast.SetContext(cfg.Context)
			a.comp.SetContext(cfg.Context)
			a.rec.SetContext(cfg.Context)
		}
		return a
	}, fn)
}

// Table is a rendered experiment result.
type Table struct {
	// Title names the table, e.g. "E1: COGCAST scaling in n (c <= n)".
	Title string
	// Claim restates the paper's prediction the table checks.
	Claim string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carries fit results and verdict lines.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as RFC-4180 CSV (title and notes as comment rows are
// omitted; only header and data rows are emitted, which is what plotting
// scripts want).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment is one named reproduction.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title is a one-line description.
	Title string
	// Claim restates what the paper predicts.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) ([]*Table, error)
}

// registry holds all experiments, populated by init functions in the
// per-area files of this package (a fixed, package-internal registration —
// not mutable global state in the style-guide sense, since nothing outside
// the package can modify it).
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exper: duplicate experiment id " + e.ID) // programmer error at package init
	}
	registry[e.ID] = e
}

// All returns every experiment ordered by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID looks an experiment up by its identifier (case-insensitive).
func ByID(id string) (Experiment, error) {
	e, ok := registry[strings.ToUpper(id)]
	if !ok {
		return Experiment{}, fmt.Errorf("exper: unknown experiment %q", id)
	}
	return e, nil
}

// ftoa formats a float compactly for table cells.
func ftoa(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

// itoa formats an int for table cells.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
