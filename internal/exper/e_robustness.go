package exper

import (
	"errors"
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/faults"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/spectrum"
	"github.com/cogradio/crn/internal/stats"
	"github.com/cogradio/crn/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Fault robustness: COGCAST vs COGCOMP under temporary outages",
		Claim: "Section 1: COGCAST's stateless per-slot behavior 'gracefully handles temporary faults'; the structured COGCOMP phases, by contrast, stall or corrupt under the same outages — which is why the simple primitive is the robust building block.",
		Run:   runE20,
	})
	register(Experiment{
		ID:    "E21",
		Title: "Medium utilization: why the epidemic wins",
		Claim: "Mechanism behind E3's factor-c gap: COGCAST fills the medium (many concurrent relays, high listener delivery rate) while rendezvous broadcast leaves all but one channel silent.",
		Run:   runE21,
	})
	register(Experiment{
		ID:    "E22",
		Title: "Primary-user-driven spectrum (physically motivated dynamics)",
		Claim: "COGCAST over a Markov primary-user occupancy model with a pilot band never fails; completion time varies only mildly with occupancy and sensing errors — heavy occupancy concentrates devices on fewer channels, which can even accelerate the epidemic (dynamic-model guarantee, Theorem 4 discussion).",
		Run:   runE22,
	})
}

func runE20(cfg Config) ([]*Table, error) {
	const n, c, k = 32, 8, 2
	rates := []float64{0, 0.01, 0.03}
	if cfg.Quick {
		rates = []float64{0, 0.03}
	}
	const duration = 10
	t := &Table{
		Title:   fmt.Sprintf("E20: temporary outages (duration %d slots, source protected; n=%d, c=%d, k=%d, partitioned)", duration, n, c, k),
		Claim:   "COGCAST completes at every rate; COGCOMP deviates (stall or wrong aggregate) as the rate grows",
		Columns: []string{"outage rate/slot", "COGCAST completions", "COGCAST median slots", "COGCOMP exact", "COGCOMP stalled", "COGCOMP corrupted"},
	}
	trials := cfg.trials()
	type outageResult struct {
		castDone  bool
		castSlots float64
		// comp outcome: exactly one of these is true per trial.
		exact, stalled, corrupted bool
	}
	for _, rate := range rates {
		results, err := forTrials(cfg, trials, func(trial int, a *arena) (outageResult, error) {
			var out outageResult
			ts := rng.Derive(cfg.Seed, int64(rate*1000), int64(trial), 200)
			schedule, err := faults.NewRandomOutages(rate, duration, ts, 0)
			if err != nil {
				return out, err
			}
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return out, err
			}
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.TrialEvent(trial, ts))
			}

			// COGCAST under faults.
			castNodes := make([]*cogcast.Node, n)
			protos := make([]sim.Protocol, n)
			for i := range castNodes {
				castNodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "m", ts)
				protos[i] = faults.Wrap(castNodes[i], sim.NodeID(i), schedule, faults.WithTrace(cfg.Trace))
			}
			eng, err := sim.NewEngine(asn, protos, ts)
			if err != nil {
				return out, err
			}
			informed := func() bool {
				for _, nd := range castNodes {
					if !nd.Informed() {
						return false
					}
				}
				return true
			}
			if _, err := eng.RunWhile(200000, func() bool { return !informed() }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
				return out, err
			}
			if informed() {
				out.castDone = true
				out.castSlots = float64(eng.Slot())
			}

			// COGCOMP under the same faults.
			inputs := make([]int64, n)
			var want int64
			for i := range inputs {
				inputs[i] = int64(i + 1)
				want += inputs[i]
			}
			l := cogcomp.PhaseOneLength(n, c, k, cogcast.DefaultKappa)
			compNodes := make([]*cogcomp.Node, n)
			compProtos := make([]sim.Protocol, n)
			for i := range compNodes {
				compNodes[i] = cogcomp.New(sim.View(asn, sim.NodeID(i)), i == 0, n, l, inputs[i], aggfunc.Sum{}, ts)
				compProtos[i] = faults.Wrap(compNodes[i], sim.NodeID(i), schedule, faults.WithTrace(cfg.Trace))
			}
			ceng, err := sim.NewEngine(asn, compProtos, ts)
			if err != nil {
				return out, err
			}
			if _, err := ceng.Run(20 * (2*l + n)); err != nil {
				if errors.Is(err, sim.ErrMaxSlots) {
					out.stalled = true
					return out, nil
				}
				return out, err
			}
			if compNodes[0].Aggregate() == aggfunc.Value(want) {
				out.exact = true
			} else {
				out.corrupted = true
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		castDone := 0
		castSlots := make([]float64, 0, trials)
		exact, stalled, corrupted := 0, 0, 0
		for _, r := range results {
			if r.castDone {
				castDone++
				castSlots = append(castSlots, r.castSlots)
			}
			switch {
			case r.exact:
				exact++
			case r.stalled:
				stalled++
			case r.corrupted:
				corrupted++
			}
		}
		slotCell := "-"
		if len(castSlots) > 0 {
			s, err := stats.Summarize(castSlots)
			if err != nil {
				return nil, err
			}
			slotCell = ftoa(s.Median)
		}
		t.AddRow(ftoa(rate), fmt.Sprintf("%d/%d", castDone, trials), slotCell,
			itoa(exact), itoa(stalled), itoa(corrupted))
		if castDone < trials {
			t.AddNote("UNEXPECTED: COGCAST failed to complete at rate %.2f", rate)
		}
	}
	return []*Table{t}, nil
}

func runE21(cfg Config) ([]*Table, error) {
	const n, c, k = 64, 16, 2
	t := &Table{
		Title:   fmt.Sprintf("E21: medium utilization, COGCAST vs rendezvous broadcast (n=%d, c=%d, k=%d, partitioned)", n, c, k),
		Claim:   "the epidemic's concurrent relays dominate the single transmitting source",
		Columns: []string{"algorithm", "median slots", "busy channels/slot", "broadcasts/slot", "delivery rate", "collision rate"},
	}
	trials := cfg.trials()

	type row struct {
		slots []float64
		m     metrics.Metrics
	}
	type utilResult struct {
		cogSlots, rdvSlots float64
		cogM, rdvM         metrics.Metrics
	}
	results, err := forTrials(cfg, trials, func(trial int, a *arena) (utilResult, error) {
		ts := rng.Derive(cfg.Seed, int64(trial), 210)
		asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
		if err != nil {
			return utilResult{}, err
		}
		var cm metrics.Collector
		cres, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{
			UntilAllInformed: true, MaxSlots: 1_000_000, Observer: &cm, Shards: cfg.Shards, Sparse: cfg.Sparse,
		})
		if err != nil {
			return utilResult{}, err
		}
		if !cres.AllInformed {
			return utilResult{}, fmt.Errorf("exper: E21 COGCAST incomplete")
		}

		var rm metrics.Collector
		rres, err := baseline.RendezvousBroadcast(asn, 0, "m", ts, 4_000_000, sim.WithObserver(&rm))
		if err != nil {
			return utilResult{}, err
		}
		if !rres.AllInformed {
			return utilResult{}, fmt.Errorf("exper: E21 rendezvous incomplete")
		}
		return utilResult{
			cogSlots: float64(cres.Slots), rdvSlots: float64(rres.Slots),
			cogM: cm.Snapshot(), rdvM: rm.Snapshot(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var cog, rdv row
	for _, r := range results {
		cog.slots = append(cog.slots, r.cogSlots)
		cog.m = accumulate(cog.m, r.cogM, trials)
		rdv.slots = append(rdv.slots, r.rdvSlots)
		rdv.m = accumulate(rdv.m, r.rdvM, trials)
	}
	for _, entry := range []struct {
		name string
		r    row
	}{{"COGCAST", cog}, {"rendezvous", rdv}} {
		s, err := stats.Summarize(entry.r.slots)
		if err != nil {
			return nil, err
		}
		m := entry.r.m
		t.AddRow(entry.name, ftoa(s.Median), ftoa(m.BusyChannelsPerSlot), ftoa(m.BroadcastsPerSlot),
			ftoa(m.DeliveryRate), ftoa(m.CollisionRate))
	}
	t.AddNote("rendezvous has at most one busy channel per slot by construction; COGCAST approaches min{k, informed} once the epidemic saturates the core")
	return []*Table{t}, nil
}

// accumulate averages metrics across trials incrementally.
func accumulate(acc, next metrics.Metrics, trials int) metrics.Metrics {
	w := 1 / float64(trials)
	acc.Slots += next.Slots
	acc.BusyChannelsPerSlot += next.BusyChannelsPerSlot * w
	acc.BroadcastsPerSlot += next.BroadcastsPerSlot * w
	acc.DeliveryRate += next.DeliveryRate * w
	acc.CollisionRate += next.CollisionRate * w
	return acc
}

func runE22(cfg Config) ([]*Table, error) {
	const nodes, channels, pilots = 32, 24, 2
	type point struct {
		label        string
		pBusy, pFree float64
		miss         float64
	}
	points := []point{
		{"idle spectrum", 0.00, 1.00, 0.00},
		{"light PU load", 0.05, 0.45, 0.02},
		{"heavy PU load", 0.30, 0.10, 0.05},
		{"heavy + bad sensing", 0.30, 0.10, 0.25},
	}
	if cfg.Quick {
		points = points[:2]
	}
	t := &Table{
		Title:   fmt.Sprintf("E22: COGCAST over Markov primary-user spectrum (n=%d, C=%d, %d pilot channels)", nodes, channels, pilots),
		Claim:   "never fails; time varies mildly (concentration can even speed it up)",
		Columns: []string{"regime", "stationary occupancy", "mean free channels/node", "median slots", "completions"},
	}
	trials := cfg.trials()
	type spectrumResult struct {
		done    bool
		slots   float64
		freeSum float64
	}
	for _, p := range points {
		results, err := forTrials(cfg, trials, func(trial int, a *arena) (spectrumResult, error) {
			var out spectrumResult
			ts := rng.Derive(cfg.Seed, int64(trial), int64(p.pBusy*100), 220)
			model, err := spectrum.New(spectrum.Config{
				Nodes: nodes, Channels: channels, Pilots: pilots,
				PBusy: p.pBusy, PFree: p.pFree, MissProb: p.miss, Seed: ts,
			})
			if err != nil {
				return out, err
			}
			res, err := a.cast.Run(model, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 500000, Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return out, err
			}
			if res.AllInformed {
				out.done = true
				out.slots = float64(res.Slots)
			}
			for s := 50; s < 60; s++ {
				out.freeSum += float64(len(model.ChannelSet(0, s)))
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		slots := make([]float64, 0, trials)
		done := 0
		var freeSum float64
		var freeSamples int
		for _, r := range results {
			if r.done {
				done++
				slots = append(slots, r.slots)
			}
			freeSum += r.freeSum
			freeSamples += 10
		}
		s, err := stats.Summarize(slots)
		if err != nil {
			return nil, err
		}
		occ := 0.0
		if p.pBusy+p.pFree > 0 {
			occ = p.pBusy / (p.pBusy + p.pFree)
		}
		t.AddRow(p.label, ftoa(occ), ftoa(freeSum/float64(freeSamples)), ftoa(s.Median), fmt.Sprintf("%d/%d", done, trials))
		if done < trials {
			t.AddNote("UNEXPECTED: incomplete runs in regime %q", p.label)
		}
	}
	t.AddNote("mean free channels tracks pilots + (C-pilots)·(1-occupancy)·(1-miss)")
	return []*Table{t}, nil
}
