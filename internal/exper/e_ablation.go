package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Theorem 17: dynamic availability defeats deterministic broadcast",
		Claim: "Under the dynamic model with k < c, no algorithm can guarantee broadcast in finite time: an adversary re-arranging the source's labels starves a deterministic scanner forever, while randomized COGCAST is untouched.",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Collision-model ablation (footnote 3)",
		Claim: "COGCAST's bound does not rely on the stronger all-delivered collision model: completion under the paper's one-winner model matches all-delivered within a small constant.",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Phase-length constant κ ablation",
		Claim: "Theorem 4 is a w.h.p. statement: running COGCAST for κ·(c/k)·lg n fixed slots succeeds with probability approaching 1 as κ grows; the experiment locates the threshold.",
		Run:   runE17,
	})
}

func runE15(cfg Config) ([]*Table, error) {
	const n, c, k = 16, 8, 2
	budget := 200 * c // 200 full scan sweeps — far beyond any static completion time
	trials := cfg.trials()
	t := &Table{
		Title:   fmt.Sprintf("E15: deterministic scan vs COGCAST against the AntiScan adversary (n=%d, c=%d, k=%d, %d-slot budget)", n, c, k, budget),
		Claim:   "the scanner informs nobody; COGCAST completes every trial",
		Columns: []string{"algorithm", "trials", "completed", "median informed", "median slots (completed runs)"},
	}
	type advResult struct {
		scanComplete bool
		scanInformed float64
		cogComplete  bool
		cogSlots     float64
	}
	results, err := forTrials(cfg, trials, func(trial int, a *arena) (advResult, error) {
		var out advResult
		ts := rng.Derive(cfg.Seed, int64(trial), 150)
		adv, err := assign.NewAntiScan(n, c, k, nil, ts)
		if err != nil {
			return out, err
		}
		scan, err := baseline.DeterministicScan(adv, 0, "m", ts, budget)
		if err != nil {
			return out, err
		}
		out.scanComplete = scan.Complete
		out.scanInformed = float64(scan.Informed)

		// The same adversary cannot predict COGCAST's coin flips.
		cog, err := a.cast.Run(adv, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget, Shards: cfg.Shards, Sparse: cfg.Sparse})
		if err != nil {
			return out, err
		}
		if cog.AllInformed {
			out.cogComplete = true
			out.cogSlots = float64(cog.Slots)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	scanInformed := make([]float64, 0, trials)
	scanCompleted := 0
	cogSlots := make([]float64, 0, trials)
	cogCompleted := 0
	for _, r := range results {
		if r.scanComplete {
			scanCompleted++
		}
		scanInformed = append(scanInformed, r.scanInformed)
		if r.cogComplete {
			cogCompleted++
			cogSlots = append(cogSlots, r.cogSlots)
		}
	}
	si, err := stats.Summarize(scanInformed)
	if err != nil {
		return nil, err
	}
	t.AddRow("deterministic scan", itoa(trials), itoa(scanCompleted), ftoa(si.Median), "-")
	if cogCompleted == 0 {
		return nil, fmt.Errorf("exper: COGCAST never completed against AntiScan")
	}
	cs, err := stats.Summarize(cogSlots)
	if err != nil {
		return nil, err
	}
	t.AddRow("COGCAST", itoa(trials), itoa(cogCompleted), ftoa(float64(n)), ftoa(cs.Median))
	if scanCompleted > 0 {
		t.AddNote("UNEXPECTED: the adversary failed to starve the deterministic scanner")
	} else {
		t.AddNote("the scanner's source never lands on a shared channel — only itself stays informed (median informed = 1)")
	}
	return []*Table{t}, nil
}

func runE16(cfg Config) ([]*Table, error) {
	const c, k, total = 8, 2, 24
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	t := &Table{
		Title:   "E16: COGCAST under one-winner vs all-delivered collisions (c=8, k=2, shared-core C=24)",
		Claim:   "the epidemic needs only one message per channel per slot; the models match within a constant",
		Columns: []string{"n", "one-winner median", "all-delivered median", "ratio"},
	}
	for _, n := range ns {
		seed := rng.Derive(cfg.Seed, int64(n), 160)
		run := func(model sim.CollisionModel, offset int64) (stats.Summary, error) {
			slots, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (float64, error) {
				ts := rng.Derive(seed, int64(trial), offset)
				asn, err := a.assign.SharedCore(n, c, k, total, assign.LocalLabels, ts)
				if err != nil {
					return 0, err
				}
				budget := 64 * cogcast.SlotBound(n, c, k, cogcast.DefaultKappa)
				res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{
					UntilAllInformed: true, MaxSlots: budget, Collisions: model, Shards: cfg.Shards, Sparse: cfg.Sparse,
				})
				if err != nil {
					return 0, err
				}
				if !res.AllInformed {
					return 0, fmt.Errorf("exper: incomplete under %v", model)
				}
				return float64(res.Slots), nil
			})
			if err != nil {
				return stats.Summary{}, err
			}
			return stats.Summarize(slots)
		}
		uw, err := run(sim.UniformWinner, 1)
		if err != nil {
			return nil, err
		}
		ad, err := run(sim.AllDelivered, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), ftoa(uw.Median), ftoa(ad.Median), ftoa(stats.Ratio(uw.Median, ad.Median)))
	}
	t.AddNote("a ratio near 1 shows Theorem 4 does not secretly rely on footnote 3's stronger model")
	return []*Table{t}, nil
}

func runE17(cfg Config) ([]*Table, error) {
	const n, c, k = 128, 16, 4
	kappas := []float64{0.25, 0.5, 1, 2, 4}
	trials := 60
	if cfg.Quick {
		trials = 20
	}
	t := &Table{
		Title:   fmt.Sprintf("E17: success probability of the fixed-horizon run vs κ (n=%d, c=%d, k=%d, partitioned)", n, c, k),
		Claim:   "P(all informed within κ·(c/k)·lg n slots) approaches 1 as κ grows",
		Columns: []string{"kappa", "horizon slots", "trials", "P(all informed)"},
	}
	for _, kappa := range kappas {
		horizon := cogcast.SlotBound(n, c, k, kappa)
		dones, err := forTrials(cfg, trials, func(trial int, a *arena) (bool, error) {
			ts := rng.Derive(cfg.Seed, int64(kappa*100), int64(trial), 170)
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return false, err
			}
			res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{MaxSlots: horizon, Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return false, err
			}
			return res.AllInformed, nil
		})
		if err != nil {
			return nil, err
		}
		ok := 0
		for _, done := range dones {
			if done {
				ok++
			}
		}
		t.AddRow(ftoa(kappa), itoa(horizon), itoa(trials), ftoa(float64(ok)/float64(trials)))
	}
	t.AddNote("the library default κ = %v sits on the flat part of the curve", cogcast.DefaultKappa)
	return []*Table{t}, nil
}
