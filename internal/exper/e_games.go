package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/games"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "(c,k)-bipartite hitting game lower bound",
		Claim: "Lemma 11: no player wins within c²/(αk) rounds with probability >= 1/2 (α = 2(β/(β−1))², β = c/k, k <= c/2).",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Lemma 12 reduction and the c-complete game",
		Claim: "A broadcast algorithm yields a hitting-game player spending <= min{c,n} proposals per simulated slot (Lemma 12); the c-complete game needs >= c/3 rounds for win probability 1/2 (Lemma 14).",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Global-label expected lower bound Ω(c/k)",
		Claim: "Theorem 16: with the partitioned setup, any strategy needs (c+1)/(k+1) expected slots before the source even lands on an overlapping channel.",
		Run:   runE8,
	})
}

func runE6(cfg Config) ([]*Table, error) {
	type point struct{ c, k int }
	points := []point{{20, 2}, {32, 4}, {64, 4}}
	if cfg.Quick {
		points = []point{{20, 2}}
	}
	trials := 400
	if cfg.Quick {
		trials = 150
	}
	t := &Table{
		Title:   "E6: win probability within the Lemma 11 bound l = c²/(αk)",
		Claim:   "both players stay below 1/2",
		Columns: []string{"c", "k", "bound l", "P(win) uniform", "P(win) non-repeating", "verdict"},
	}
	for _, p := range points {
		bound := games.LowerBoundRounds(p.c, p.k)
		seed := rng.Derive(cfg.Seed, int64(p.c), int64(p.k), 6)
		pu, err := games.WinProbability(p.c, p.k, bound, trials, seed, func(tr int64) games.Player {
			return games.NewUniformPlayer(p.c, rng.Derive(seed, tr, 1))
		})
		if err != nil {
			return nil, err
		}
		pn, err := games.WinProbability(p.c, p.k, bound, trials, seed, func(tr int64) games.Player {
			return games.NewNonRepeatingPlayer(p.c, rng.Derive(seed, tr, 2))
		})
		if err != nil {
			return nil, err
		}
		verdict := "holds"
		if pu >= 0.5 || pn >= 0.5 {
			verdict = "VIOLATED"
		}
		t.AddRow(itoa(p.c), itoa(p.k), itoa(bound), ftoa(pu), ftoa(pn), verdict)
	}
	return []*Table{t}, nil
}

func runE7(cfg Config) ([]*Table, error) {
	type point struct{ c, k, n int }
	points := []point{{12, 3, 8}, {16, 4, 32}, {32, 4, 16}}
	if cfg.Quick {
		points = []point{{12, 3, 8}}
	}
	trials := cfg.trials()
	red := &Table{
		Title:   "E7a: COGCAST-as-player via the Lemma 12 reduction",
		Claim:   "game rounds <= min{c,n} · simulated slots, and the player always wins",
		Columns: []string{"c", "k", "n", "median rounds", "median slots", "min{c,n}·slots", "Lemma 11 bound"},
	}
	for _, p := range points {
		type gameResult struct{ rounds, slots float64 }
		results, err := forTrials(cfg, trials, func(trial int, _ *arena) (gameResult, error) {
			ts := rng.Derive(cfg.Seed, int64(p.c), int64(p.n), int64(trial), 7)
			g, err := games.NewGame(p.c, p.k, ts)
			if err != nil {
				return gameResult{}, err
			}
			player := games.NewReductionPlayer(games.NewCogcastChooser(p.n, p.c, ts))
			won, r := g.Play(player, 10_000_000)
			if !won {
				return gameResult{}, fmt.Errorf("exper: reduction player lost at c=%d k=%d n=%d", p.c, p.k, p.n)
			}
			if lim := minInt(p.c, p.n) * player.SimulatedSlots(); r > lim {
				return gameResult{}, fmt.Errorf("exper: Lemma 12 accounting violated: %d rounds > %d", r, lim)
			}
			return gameResult{rounds: float64(r), slots: float64(player.SimulatedSlots())}, nil
		})
		if err != nil {
			return nil, err
		}
		rounds := make([]float64, 0, trials)
		slots := make([]float64, 0, trials)
		for _, r := range results {
			rounds = append(rounds, r.rounds)
			slots = append(slots, r.slots)
		}
		rs, err := stats.Summarize(rounds)
		if err != nil {
			return nil, err
		}
		ss, err := stats.Summarize(slots)
		if err != nil {
			return nil, err
		}
		red.AddRow(itoa(p.c), itoa(p.k), itoa(p.n),
			ftoa(rs.Median), ftoa(ss.Median),
			ftoa(float64(minInt(p.c, p.n))*ss.Median),
			itoa(games.LowerBoundRounds(p.c, p.k)))
	}
	red.AddNote("median rounds must sit between the Lemma 11 bound and min{c,n}·slots")

	complete := &Table{
		Title:   "E7b: c-complete bipartite hitting game (k = c)",
		Claim:   "win probability within c/3 rounds stays below 1/2",
		Columns: []string{"c", "bound c/3", "P(win) non-repeating", "verdict"},
	}
	cs := []int{30, 60}
	if cfg.Quick {
		cs = []int{30}
	}
	gameTrials := 400
	if cfg.Quick {
		gameTrials = 150
	}
	for _, c := range cs {
		bound := games.CompleteLowerBoundRounds(c)
		p, err := games.WinProbability(c, c, bound, gameTrials, rng.Derive(cfg.Seed, int64(c), 8),
			func(tr int64) games.Player {
				return games.NewNonRepeatingPlayer(c, rng.Derive(cfg.Seed, tr, 9))
			})
		if err != nil {
			return nil, err
		}
		verdict := "holds"
		if p >= 0.5 {
			verdict = "VIOLATED"
		}
		complete.AddRow(itoa(c), itoa(bound), ftoa(p), verdict)
	}
	return []*Table{red, complete}, nil
}

func runE8(cfg Config) ([]*Table, error) {
	const c, n = 16, 16
	ks := []int{1, 2, 4, 8}
	if cfg.Quick {
		ks = []int{1, 4}
	}
	trials := 400
	if cfg.Quick {
		trials = 100
	}
	t := &Table{
		Title:   "E8: slots until the source first lands on an overlapping channel (c=16, partitioned setup)",
		Claim:   "expectation >= (c+1)/(k+1) regardless of strategy",
		Columns: []string{"k", "theory (c+1)/(k+1)", "mean uniform", "mean sequential scan", "COGCAST first-contact mean"},
	}
	for _, k := range ks {
		theory := float64(c+1) / float64(k+1)
		// Direct measurement: the k overlapping channels sit at uniformly
		// random local positions among the source's c channels. Count the
		// picks a strategy makes before hitting one.
		type landing struct{ uniform, seq float64 }
		landings, err := forTrials(cfg, trials, func(trial int, _ *arena) (landing, error) {
			r := rng.New(cfg.Seed, int64(k), int64(trial), 80)
			positions := r.Perm(c)[:k]
			inCore := make(map[int]bool, k)
			for _, p := range positions {
				inCore[p] = true
			}
			picks := 1
			for !inCore[r.Intn(c)] {
				picks++
			}
			seq := c
			for i := 0; i < c; i++ {
				if inCore[i] {
					seq = i + 1
					break
				}
			}
			return landing{uniform: float64(picks), seq: float64(seq)}, nil
		})
		if err != nil {
			return nil, err
		}
		var uniformSum, seqSum float64
		for _, l := range landings {
			uniformSum += l.uniform
			seqSum += l.seq
		}
		// System tie-in: in a real partitioned network, the first node can
		// only be informed at or after the source's first overlap landing.
		// The expectation bound needs decent sample sizes; medians of a few
		// trials of this heavy-tailed quantity mislead.
		contactTrials := 60
		if cfg.Quick {
			contactTrials = 20
		}
		contact, err := forTrials(cfg, contactTrials, func(trial int, a *arena) (float64, error) {
			ts := rng.Derive(cfg.Seed, int64(k), int64(trial), 81)
			asn, err := a.assign.Partitioned(n, c, k, assign.GlobalLabels, ts)
			if err != nil {
				return 0, err
			}
			budget := 64 * cogcast.SlotBound(n, c, k, cogcast.DefaultKappa)
			res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget, Trajectory: true, Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return 0, err
			}
			first := res.Slots
			for s, informed := range res.Trajectory {
				if informed > 1 {
					first = s + 1
					break
				}
			}
			return float64(first), nil
		})
		if err != nil {
			return nil, err
		}
		cs, err := stats.Summarize(contact)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(k), ftoa(theory), ftoa(uniformSum/float64(trials)), ftoa(seqSum/float64(trials)), ftoa(cs.Mean))
	}
	t.AddNote("the measured means track (c+1)/(k+1) for both strategies; mean first contact in the live system is necessarily at least the landing time")
	return []*Table{t}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
