package exper

import (
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/backoff"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/jamming"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Hopping-together vs COGCAST under global labels",
		Claim: "Section 6 discussion: with global labels and c >> n (c = n², k = c−1) the lockstep scan finishes in O(C/k) = O(1) expected slots while COGCAST needs Θ((c²/(nk))·lg n); for n >> c the ordering flips.",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Jamming-resistant broadcast (Theorem 18)",
		Claim: "COGCAST over the unjammed spectrum completes with the guarantees of T(n, c, c−2·kJam) against any n-uniform adversary jamming kJam < c/2 channels per node per slot.",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Backoff implementation of the collision abstraction",
		Claim: "Footnote 4: decaying-probability backoff resolves m-way contention in O(log² n) micro-slots w.h.p.",
		Run:   runE12,
	})
}

func runE9(cfg Config) ([]*Table, error) {
	type point struct {
		label   string
		n, c, k int
	}
	points := []point{
		{"c >> n (c=n², k=c-1)", 8, 64, 63},
		{"n >> c", 64, 8, 2},
	}
	if cfg.Quick {
		points = points[:1]
	}
	t := &Table{
		Title:   "E9: hopping-together (global labels) vs COGCAST (local labels), partitioned topology",
		Claim:   "hopping-together wins for c >> n; COGCAST wins for n >> c",
		Columns: []string{"regime", "n", "c", "k", "C", "hop median", "COGCAST median", "winner"},
	}
	for _, p := range points {
		seed := rng.Derive(cfg.Seed, int64(p.n), int64(p.c), 90)
		totalCh := p.k + p.n*(p.c-p.k)
		type regimeResult struct{ hop, cog float64 }
		results, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (regimeResult, error) {
			ts := rng.Derive(seed, int64(trial))
			gAsn, err := a.assign.Partitioned(p.n, p.c, p.k, assign.GlobalLabels, ts)
			if err != nil {
				return regimeResult{}, err
			}
			hop, err := baseline.HoppingTogether(gAsn, 0, "m", ts, 1_000_000)
			if err != nil {
				return regimeResult{}, err
			}
			if !hop.AllInformed {
				return regimeResult{}, fmt.Errorf("exper: hopping-together incomplete in regime %q", p.label)
			}

			// Rebuilding invalidates gAsn, which the hop run is done with.
			lAsn, err := a.assign.Partitioned(p.n, p.c, p.k, assign.LocalLabels, ts)
			if err != nil {
				return regimeResult{}, err
			}
			budget := 64 * cogcast.SlotBound(p.n, p.c, p.k, cogcast.DefaultKappa)
			cog, err := a.cast.Run(lAsn, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget, Shards: cfg.Shards, Sparse: cfg.Sparse})
			if err != nil {
				return regimeResult{}, err
			}
			if !cog.AllInformed {
				return regimeResult{}, fmt.Errorf("exper: COGCAST incomplete in regime %q", p.label)
			}
			return regimeResult{hop: float64(hop.Slots), cog: float64(cog.Slots)}, nil
		})
		if err != nil {
			return nil, err
		}
		hopSlots := make([]float64, 0, cfg.trials())
		cogSlots := make([]float64, 0, cfg.trials())
		for _, r := range results {
			hopSlots = append(hopSlots, r.hop)
			cogSlots = append(cogSlots, r.cog)
		}
		hs, err := stats.Summarize(hopSlots)
		if err != nil {
			return nil, err
		}
		cs, err := stats.Summarize(cogSlots)
		if err != nil {
			return nil, err
		}
		winner := "hopping-together"
		if cs.Median < hs.Median {
			winner = "COGCAST"
		}
		t.AddRow(p.label, itoa(p.n), itoa(p.c), itoa(p.k), itoa(totalCh), ftoa(hs.Median), ftoa(cs.Median), winner)
	}
	t.AddNote("hopping-together requires global labels; in the local-label model it does not exist, which is why the Theorem 15 bound is higher than Theorem 16's")
	return []*Table{t}, nil
}

func runE11(cfg Config) ([]*Table, error) {
	// c > n makes the completion time sensitive to the overlap: with many
	// nodes per channel the epidemic saturates and jamming is invisible.
	const n, c = 8, 16
	budgets := []int{0, 2, 4, 7}
	if cfg.Quick {
		budgets = []int{0, 4}
	}
	t := &Table{
		Title:   "E11: COGCAST completion under n-uniform jamming (n=8, c=16)",
		Claim:   "slots track SlotBound(n, c, c−2·kJam)",
		Columns: []string{"kJam", "k = c-2kJam", "random median", "sweep median", "block median", "split median", "reference (c/k)(c/n)lg n"},
	}
	for _, kj := range budgets {
		k := c - 2*kj
		ref := float64(c) / float64(k) * math.Max(1, float64(c)/float64(n)) * math.Log2(float64(n))
		row := []string{itoa(kj), itoa(k)}
		jammers := []func(ts int64) jamming.Jammer{
			func(ts int64) jamming.Jammer { return jamming.NewRandomJammer(c, kj, ts) },
			func(int64) jamming.Jammer { return jamming.NewSweepJammer(c, kj) },
			func(int64) jamming.Jammer { return jamming.NewBlockSweepJammer(c, kj, 8) },
			func(int64) jamming.Jammer { return jamming.NewSplitJammer(c, kj, 4) },
		}
		for _, build := range jammers {
			s, err := cogcastTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(kj), 110), func(_ *assign.Builder, ts int64) (sim.Assignment, error) {
				return jamming.NewAssignment(n, c, kj, build(ts), ts)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, ftoa(s.Median))
		}
		row = append(row, ftoa(ref))
		t.AddRow(row...)
	}
	t.AddNote("all adversaries jam kJam channels per node per slot; completion degrades only through the reduced overlap c−2·kJam")
	return []*Table{t}, nil
}

func runE12(cfg Config) ([]*Table, error) {
	const nUpper = 1024
	ms := []int{1, 2, 8, 64, 512, 1024}
	if cfg.Quick {
		ms = []int{1, 8, 64}
	}
	trials := 300
	if cfg.Quick {
		trials = 100
	}
	t := &Table{
		Title:   fmt.Sprintf("E12: decay backoff micro-slots to resolve m-way contention (n upper bound %d)", nUpper),
		Claim:   "mean stays within the O(log² n) budget for every m",
		Columns: []string{"m contenders", "mean", "median", "p99", "bound 4·(lg n +1)²", "failures"},
	}
	bound := backoff.TheoreticalBound(nUpper)
	for _, m := range ms {
		type resolveResult struct {
			micro     float64
			succeeded bool
		}
		results, err := forTrials(cfg, trials, func(trial int, _ *arena) (resolveResult, error) {
			res, err := backoff.Resolve(m, nUpper, rng.Derive(cfg.Seed, int64(m), int64(trial), 120))
			if err != nil {
				return resolveResult{}, err
			}
			return resolveResult{micro: float64(res.MicroSlots), succeeded: res.Succeeded}, nil
		})
		if err != nil {
			return nil, err
		}
		micro := make([]float64, 0, trials)
		failures := 0
		for _, r := range results {
			if !r.succeeded {
				failures++
				continue
			}
			micro = append(micro, r.micro)
		}
		s, err := stats.Summarize(micro)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(m), ftoa(s.Mean), ftoa(s.Median), ftoa(s.P99), itoa(bound), itoa(failures))
	}
	t.AddNote("the simulator's one-winner collision model charges a single slot for what backoff implements in O(log² n) micro-slots; multiply slot counts by this factor for a radio-level cost estimate")
	return []*Table{t}, nil
}
