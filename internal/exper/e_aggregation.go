package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "COGCOMP scaling and per-phase accounting",
		Claim: "Theorem 10: aggregation completes in O((c/k)·lg n + n) slots for c <= n; phase four is linear in n.",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "COGCOMP vs rendezvous aggregation",
		Claim: "Section 1: the rendezvous baseline costs O(c²n/k); COGCOMP costs O((c/k)max{1,c/n}lg n + n) and should win by a growing factor as n or c grows.",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Message overhead: associative vs collect-all aggregation",
		Claim: "Section 5 discussion: associative functions keep messages O(polylog n) (constant here); shipping raw values grows linearly in subtree size.",
		Run:   runE14,
	})
}

func experInputs(n int, seed int64) []int64 {
	r := rng.New(seed, 0x1277)
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = r.Int63n(2001) - 1000
	}
	return inputs
}

// cogcompTrials runs COGCOMP `trials` times on cfg's worker pool and returns
// summaries of total and phase-four slots, verifying the aggregate against
// ground truth in every trial. build receives the worker's assignment
// builder; assignments and inputs regenerate into per-worker arena scratch.
func cogcompTrials(cfg Config, trials int, seed int64, f aggfunc.Func, build func(b *assign.Builder, ts int64) (sim.Assignment, error)) (total, phase4 stats.Summary, maxMsg int, err error) {
	type compResult struct {
		total, phase4 float64
		maxMsg        int
	}
	results, err := forTrials(cfg, trials, func(trial int, a *arena) (compResult, error) {
		ts := rng.Derive(seed, int64(trial))
		asn, err := build(&a.assign, ts)
		if err != nil {
			return compResult{}, err
		}
		inputs := a.experInputs(asn.Nodes(), ts)
		res, err := a.compRun(cfg, asn, 0, inputs, ts, cogcomp.Config{Func: f})
		if err != nil {
			return compResult{}, err
		}
		if f.Name() != "collect" {
			if want := aggfunc.Fold(f, inputs); res.Value != want {
				return compResult{}, fmt.Errorf("exper: aggregate %v != ground truth %v", res.Value, want)
			}
		}
		return compResult{
			total:  float64(res.TotalSlots),
			phase4: float64(res.Phase4Slots),
			maxMsg: res.MaxMessageSize,
		}, nil
	})
	if err != nil {
		return total, phase4, 0, err
	}
	totals := make([]float64, 0, trials)
	p4s := make([]float64, 0, trials)
	for _, r := range results {
		totals = append(totals, r.total)
		p4s = append(p4s, r.phase4)
		if r.maxMsg > maxMsg {
			maxMsg = r.maxMsg
		}
	}
	if total, err = stats.Summarize(totals); err != nil {
		return total, phase4, 0, err
	}
	phase4, err = stats.Summarize(p4s)
	return total, phase4, maxMsg, err
}

func runE4(cfg Config) ([]*Table, error) {
	const c, k, totalCh = 8, 2, 24
	ns := []int{64, 128, 256, 512}
	if cfg.Quick {
		ns = []int{32, 64, 128}
	}
	t := &Table{
		Title:   "E4: COGCOMP scaling (c=8, k=2, shared-core C=24)",
		Claim:   "total ~ O((c/k)lg n + n); phase 4 ~ O(n)",
		Columns: []string{"n", "median total slots", "median phase-4 slots", "phase4/n", "total/n"},
	}
	var xs, ys []float64
	for _, n := range ns {
		total, p4, _, err := cogcompTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(n), 40), aggfunc.Sum{},
			func(b *assign.Builder, ts int64) (sim.Assignment, error) {
				return b.SharedCore(n, c, k, totalCh, assign.LocalLabels, ts)
			})
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, p4.Median)
		t.AddRow(itoa(n), ftoa(total.Median), ftoa(p4.Median),
			ftoa(stats.Ratio(p4.Median, float64(n))), ftoa(stats.Ratio(total.Median, float64(n))))
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("phase-4 fit: %.2f·n + %.2f, R² = %.3f (theory: linear, O(1) slope)", fit.Slope, fit.Intercept, fit.R2)
	return []*Table{t}, nil
}

func runE5(cfg Config) ([]*Table, error) {
	type point struct{ n, c, k int }
	points := []point{
		{16, 8, 2}, {64, 8, 2}, {256, 8, 2},
		{16, 32, 2}, {64, 32, 2},
	}
	if cfg.Quick {
		points = []point{{16, 8, 2}, {64, 8, 2}}
	}
	trials := cfg.trials()
	if trials > 5 {
		trials = 5 // the baseline's O(c²n/k) slots dominate runtime
	}
	t := &Table{
		Title:   "E5: COGCOMP vs rendezvous aggregation (shared-core C=3c)",
		Claim:   "COGCOMP wins by a factor growing with n and c",
		Columns: []string{"n", "c", "k", "COGCOMP median", "rendezvous median", "speedup", "winner"},
	}
	for _, p := range points {
		seed := rng.Derive(cfg.Seed, int64(p.n), int64(p.c), 50)
		cogTotal, _, _, err := cogcompTrials(cfg, trials, seed, aggfunc.Sum{}, func(b *assign.Builder, ts int64) (sim.Assignment, error) {
			return b.SharedCore(p.n, p.c, p.k, 3*p.c, assign.LocalLabels, ts)
		})
		if err != nil {
			return nil, err
		}
		rdvSlots, err := forTrials(cfg, trials, func(trial int, a *arena) (float64, error) {
			ts := rng.Derive(seed, int64(trial), 51)
			asn, err := a.assign.SharedCore(p.n, p.c, p.k, 3*p.c, assign.LocalLabels, ts)
			if err != nil {
				return 0, err
			}
			inputs := a.experInputs(p.n, ts)
			res, err := baseline.RendezvousAggregation(asn, 0, inputs, ts, 8_000_000)
			if err != nil {
				return 0, err
			}
			if !res.Complete {
				return 0, fmt.Errorf("exper: rendezvous aggregation incomplete at n=%d c=%d", p.n, p.c)
			}
			return float64(res.Slots), nil
		})
		if err != nil {
			return nil, err
		}
		rdv, err := stats.Summarize(rdvSlots)
		if err != nil {
			return nil, err
		}
		speedup := stats.Ratio(rdv.Median, cogTotal.Median)
		winner := "COGCOMP"
		if speedup < 1 {
			winner = "rendezvous"
		}
		t.AddRow(itoa(p.n), itoa(p.c), itoa(p.k), ftoa(cogTotal.Median), ftoa(rdv.Median), ftoa(speedup), winner)
	}
	t.AddNote("theory: speedup ≈ c²n/k ÷ ((c/k)max{1,c/n}lg n + n), increasing in both n and c")
	return []*Table{t}, nil
}

func runE14(cfg Config) ([]*Table, error) {
	const c, k, totalCh = 8, 2, 24
	ns := []int{32, 64, 128}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	t := &Table{
		Title:   "E14: largest phase-four message (words) by aggregate kind",
		Claim:   "associative aggregates: constant; collect-all: grows with n",
		Columns: []string{"n", "sum", "stats", "collect"},
	}
	for _, n := range ns {
		row := []string{itoa(n)}
		for _, f := range []aggfunc.Func{aggfunc.Sum{}, aggfunc.Stats{}, aggfunc.Collect{}} {
			_, _, maxMsg, err := cogcompTrials(cfg, cfg.trials(), rng.Derive(cfg.Seed, int64(n), 60), f,
				func(b *assign.Builder, ts int64) (sim.Assignment, error) {
					return b.SharedCore(n, c, k, totalCh, assign.LocalLabels, ts)
				})
			if err != nil {
				return nil, err
			}
			row = append(row, itoa(maxMsg))
		}
		t.AddRow(row...)
	}
	t.AddNote("sum stays at 1 word and stats at 4 words regardless of n; collect scales with the largest subtree")
	return []*Table{t}, nil
}
