package exper

import (
	"bytes"
	"testing"
)

// TestExperimentDeterminism renders the same experiment twice with the same
// seed and requires byte-identical tables — the property that makes
// EXPERIMENTS.md reproducible with `cogbench -seed 42`. E12 exercises the
// backoff substrate; E6 the games; both are fast.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"E6", "E12"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func() string {
			tables, err := e.Run(Config{Seed: 99, Trials: 2, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tb := range tables {
				if err := tb.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
			return buf.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s: identical seeds produced different tables:\n%s\nvs\n%s", id, a, b)
		}
	}
}

// TestParallelTrialDeterminism runs engine-heavy experiments serially and
// with 8 trial workers and requires byte-identical rendered tables: per-trial
// seeds are derived from the trial index alone, results are collected into
// index-ordered slices, and every fold over them happens after collection,
// so the worker count can only change wall-clock time. E1 exercises the
// COGCAST path, E4 the COGCOMP path.
func TestParallelTrialDeterminism(t *testing.T) {
	for _, id := range []string{"E1", "E4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func(workers int) string {
			tables, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tb := range tables {
				if err := tb.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
			return buf.String()
		}
		serial, par := render(1), render(8)
		if serial != par {
			t.Errorf("%s: worker count changed the tables:\nserial:\n%s\nparallel:\n%s", id, serial, par)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	tb := &Table{
		Columns: []string{"a", "b"},
	}
	tb.AddRow("1", "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
