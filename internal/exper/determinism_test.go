package exper

import (
	"bytes"
	"testing"
)

// TestExperimentDeterminism renders the same experiment twice with the same
// seed and requires byte-identical tables — the property that makes
// EXPERIMENTS.md reproducible with `cogbench -seed 42`. E12 exercises the
// backoff substrate; E6 the games; both are fast.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"E6", "E12"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func() string {
			tables, err := e.Run(Config{Seed: 99, Trials: 2, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tb := range tables {
				if err := tb.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
			return buf.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s: identical seeds produced different tables:\n%s\nvs\n%s", id, a, b)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	tb := &Table{
		Columns: []string{"a", "b"},
	}
	tb.AddRow("1", "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
