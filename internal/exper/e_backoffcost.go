package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/backoff"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "End-to-end radio cost of the collision abstraction",
		Claim: "Footnote 4 accounting: replacing every abstract slot with a decay-backoff micro-slot window multiplies COGCAST's cost by the window size; the measured per-slot requirement sits far below the 4(lg n+1)² worst-case budget, so an implementation can pick a much smaller fixed window.",
		Run:   runE24,
	})
}

func runE24(cfg Config) ([]*Table, error) {
	const c, k = 8, 2
	ns := []int{32, 128, 512}
	if cfg.Quick {
		ns = []int{32, 128}
	}
	t := &Table{
		Title:   "E24: per-slot micro-slot window required by COGCAST runs (partitioned, c=8, k=2)",
		Claim:   "required window << theoretical budget; abstract slot counts scale to radio cost by the window",
		Columns: []string{"n", "slots", "mean window", "p99 window", "max window", "budget 4(lg n+1)²", "radio cost (slots × max)"},
	}
	type costResult struct {
		slots      int
		meanWindow float64
		required   int
		p99        int
	}
	for _, n := range ns {
		// One representative run per n at full trial count would repeat
		// near-identical histograms; aggregate across trials instead.
		results, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (costResult, error) {
			ts := rng.Derive(cfg.Seed, int64(n), int64(trial), 240)
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return costResult{}, err
			}
			obs := backoff.NewCostObserver(n, ts)
			res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{
				UntilAllInformed: true, MaxSlots: 200000, Observer: obs, Shards: cfg.Shards, Sparse: cfg.Sparse,
			})
			if err != nil {
				return costResult{}, err
			}
			if !res.AllInformed {
				return costResult{}, fmt.Errorf("exper: E24 broadcast incomplete at n=%d", n)
			}
			cost := obs.Snapshot()
			if cost.Failures > 0 {
				return costResult{}, fmt.Errorf("exper: E24 decay failures at n=%d", n)
			}
			return costResult{
				slots: cost.Slots, meanWindow: cost.MeanWindow,
				required: cost.RequiredWindow, p99: obs.WindowQuantile(0.99),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		totalSlots := 0
		var meanSum float64
		maxWindow, p99 := 0, 0
		for _, r := range results {
			totalSlots += r.slots
			meanSum += r.meanWindow
			if r.required > maxWindow {
				maxWindow = r.required
			}
			if r.p99 > p99 {
				p99 = r.p99
			}
		}
		budget := backoff.TheoreticalBound(n)
		mean := meanSum / float64(cfg.trials())
		t.AddRow(itoa(n), itoa(totalSlots/cfg.trials()), ftoa(mean), itoa(p99), itoa(maxWindow),
			itoa(budget), itoa((totalSlots/cfg.trials())*maxWindow))
		if maxWindow > budget {
			t.AddNote("UNEXPECTED: required window exceeded the theoretical budget at n=%d", n)
		}
	}
	t.AddNote("channels resolve in parallel, so a slot costs the max over its channels; the fixed window an implementation must provision is the max column, still well under the worst-case budget")
	return []*Table{t}, nil
}
