package exper

import (
	"fmt"
	"testing"
)

// TestRecoverByteIdentity replays the COGCOMP-bearing experiments with
// Config.Recover set — routing every trial through the crash-restart
// supervisor — and requires the rendered tables to stay byte-identical to
// the classic runner's, at more than one parallelism level. This is the
// contract that lets `cogbench -recover` regenerate EXPERIMENTS.md without
// touching a single fault-free number. E4 covers shared-core assignments,
// E14 all three aggregate kinds (including collect's large messages), E23
// the full-overlap lower-bound setup.
func TestRecoverByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, id := range []string{"E4", "E14", "E23"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(recover bool, workers int) string {
				tables, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true, Recover: recover, Parallel: workers})
				if err != nil {
					t.Fatalf("%s (recover=%v, parallel=%d): %v", id, recover, workers, err)
				}
				return renderAll(t, tables)
			}
			classic := render(false, 1)
			for _, workers := range []int{1, 4} {
				if got := render(true, workers); got != classic {
					t.Errorf("%s: recovery-enabled tables at %d workers differ from classic:\n--- recover ---\n%s\n--- classic ---\n%s",
						id, workers, got, classic)
				}
			}
		})
	}
}

// TestRecoverQuickSuite runs the two recovery experiments end to end in
// their quick configuration with the oracle armed, and spot-checks the
// E26/E27 verdict cells: the fault-free rows must show overhead 1.00, and
// every E27 row must report identity.
func TestRecoverQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, id := range []string{"E26", "E27"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tables, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true, Check: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != 1 || len(tables[0].Rows) == 0 {
				t.Fatalf("%s: unexpected table shape", id)
			}
			tb := tables[0]
			switch id {
			case "E26":
				// Row 0 is the fault-free rate: all trials exact, overhead 1.00.
				row := tb.Rows[0]
				if row[1] != fmt.Sprintf("%d/%d", 3, 3) {
					t.Errorf("E26 fault-free exact = %q, want 3/3", row[1])
				}
				if row[5] != "1.00" {
					t.Errorf("E26 fault-free overhead = %q, want 1.00", row[5])
				}
			case "E27":
				for _, row := range tb.Rows {
					if row[6] != "1.00" || row[7] != "yes" {
						t.Errorf("E27 row %v: overhead/identical = %q/%q, want 1.00/yes", row[0], row[6], row[7])
					}
				}
			}
		})
	}
}
