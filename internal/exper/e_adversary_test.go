package exper

import (
	"bytes"
	"strings"
	"testing"
)

// TestAdversaryTournamentDeterminism pins E30's acceptance criterion: the
// ranked robustness tables are byte-identical at every -parallel and
// -shards setting (trial seeds derive from the trial index alone; jammed
// and crashed engine scans stay deterministic under sharding).
func TestAdversaryTournamentDeterminism(t *testing.T) {
	e, err := ByID("E30")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers, shards int) string {
		tables, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true, Parallel: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	ref := render(1, 1)
	for _, v := range []struct{ workers, shards int }{{4, 1}, {8, 1}, {1, 2}, {1, 4}, {8, 4}} {
		if got := render(v.workers, v.shards); got != ref {
			t.Errorf("parallel=%d shards=%d changed E30 tables:\n%s\nvs\n%s", v.workers, v.shards, got, ref)
		}
	}
	if !strings.Contains(ref, "CONFIRMED") {
		t.Errorf("E30 quick run did not confirm the crasher-vs-oblivious comparison:\n%s", ref)
	}
}
