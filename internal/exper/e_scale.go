package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E28",
		Title: "Single-trial scale: COGCAST to a million nodes, COGCOMP to its Θ(n)-slot limit",
		Claim: "Theorem 4's Θ((c/k)·lg n) regime only separates from baselines at scale; the sharded slot engine plus the CSR membership index make a 10⁶-node COGCAST trial practical (slots grow with lg n while per-node index cost stays flat), whereas COGCOMP's Θ(n) census slots make its total work quadratic — the structural reason the epidemic primitive is the scalable one.",
		Run:   runE28,
	})
}

// runE28 sweeps single-trial network sizes. The table carries only
// deterministic columns (topology shape, CSR index footprint, slot counts);
// machine-dependent throughput (slots/sec, wall, bytes/node) is what
// cogbench's -bench-out report records for this experiment, gated in CI
// against BENCH_scale_baseline.json. One trial per point: at these sizes a
// single run is the experiment, and per-point seeds are still derived from
// the point so the table is byte-identical at any -parallel/-shards value.
//
// The COGCAST sweep runs on the partitioned (Theorem 16) topology, where
// C = k + n·(c−k) grows with n: that is the regime where slots track
// (c/k)·lg n and where the engine's channel scratch and the CSR index are
// actually stressed (12M physical channels at n=10⁶, bitsets elided). A
// shared-core row rides along as the dense contrast — pairwise overlap is so
// rich there that capture resolution informs everyone in a couple of slots,
// and the index keeps per-node bitsets.
func runE28(cfg Config) ([]*Table, error) {
	const c, k, coreChannels = 16, 4, 48
	type point struct {
		proto string // "COGCAST" or "COGCOMP"
		topo  string // "partitioned" or "shared-core"
		n     int
	}
	points := []point{
		{"COGCAST", "partitioned", 100_000},
		{"COGCAST", "partitioned", 400_000},
		{"COGCAST", "partitioned", 1_000_000},
		{"COGCAST", "shared-core", 1_000_000},
		{"COGCOMP", "shared-core", 2_000},
		{"COGCOMP", "shared-core", 8_000},
	}
	if cfg.Quick {
		points = []point{
			{"COGCAST", "partitioned", 100_000},
			{"COGCAST", "shared-core", 100_000},
			{"COGCOMP", "shared-core", 2_000},
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("E28: single-trial scale sweep (c=%d, k=%d, local labels, 1 trial/point)", c, k),
		Claim:   "partitioned COGCAST slots grow ~lg n while index bytes/node stay flat; COGCOMP slots grow ~n",
		Columns: []string{"protocol", "topology", "n", "C", "index B/node", "bitsets", "slots", "complete"},
	}

	type scaleResult struct {
		channels int
		indexBPN float64
		bitsets  bool
		slots    int
		complete bool
	}
	runPoint := func(p point) (scaleResult, error) {
		results, err := forTrials(cfg, 1, func(trial int, a *arena) (scaleResult, error) {
			var out scaleResult
			ts := rng.Derive(cfg.Seed, int64(p.n), int64(len(p.proto)+len(p.topo)), 280)
			var asn *assign.Static
			var err error
			if p.topo == "partitioned" {
				asn, err = a.assign.Partitioned(p.n, c, k, assign.LocalLabels, ts)
			} else {
				asn, err = a.assign.SharedCore(p.n, c, k, coreChannels, assign.LocalLabels, ts)
			}
			if err != nil {
				return out, err
			}
			idx := asn.Index()
			out.channels = asn.Channels()
			out.indexBPN = float64(idx.MemoryBytes()) / float64(p.n)
			out.bitsets = idx.HasBitsets()
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.TrialEvent(trial, ts))
			}
			switch p.proto {
			case "COGCAST":
				budget := 64 * cogcast.SlotBound(p.n, c, k, cogcast.DefaultKappa)
				res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{
					UntilAllInformed: true, MaxSlots: budget, Trace: cfg.Trace, Shards: cfg.Shards, Sparse: cfg.Sparse,
				})
				if err != nil {
					return out, err
				}
				out.slots = res.Slots
				out.complete = res.AllInformed
			default: // COGCOMP
				res, err := a.compRun(cfg, asn, 0, a.experInputs(p.n, ts), ts, cogcomp.Config{Trace: cfg.Trace})
				if err != nil {
					return out, err
				}
				out.slots = res.TotalSlots
				out.complete = res.Complete
			}
			return out, nil
		})
		if err != nil {
			return scaleResult{}, err
		}
		return results[0], nil
	}

	for _, p := range points {
		r, err := runPoint(p)
		if err != nil {
			return nil, fmt.Errorf("exper: E28 %s %s n=%d: %w", p.proto, p.topo, p.n, err)
		}
		bitsets := "no"
		if r.bitsets {
			bitsets = "yes"
		}
		t.AddRow(p.proto, p.topo, itoa(p.n), itoa(r.channels), ftoa(r.indexBPN), bitsets,
			itoa(r.slots), fmt.Sprintf("%v", r.complete))
		if !r.complete {
			t.AddNote("UNEXPECTED: %s incomplete at n=%d (%s)", p.proto, p.n, p.topo)
		}
	}
	t.AddNote("COGCOMP stops at n=8000: its phase-2 census is n slots, so total work is Θ(n²) and a 10⁶-node run is structurally infeasible — the contrast the claim predicts")
	t.AddNote("throughput (slots/sec, wall, bytes/node) is machine-dependent and lives in cogbench's -bench-out report (BENCH_scale_baseline.json), not in this table; -shards k speeds large points up on multi-core machines without changing a cell")
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "E29",
		Title: "Event-driven COGCOMP scale: the census wall moves from n=8000 to n=100000",
		Claim: "COGCOMP's phase-2 census occupies ~n slots in which ever-fewer nodes still contend — once a node's entry lands it only listens quietly until the phase boundary. Dense stepping still scans all n nodes every slot (Θ(n²) node-steps); event-driven stepping (sim.WithSparse) walks only the contenders and hands deliveries to quiet listeners in place, so the practical wall moves from n=8000 to n=100000 while every observable stays byte-identical to the dense execution.",
		Run:   runE29,
	})
}

// runE29 sweeps COGCOMP sizes in dense and sparse stepping modes. Paired
// rows (same n, both modes) share a seed, so their slot counts and phase
// breakdowns are cell-for-cell identical — the table *is* the equivalence
// argument, and the wake-queue's entire effect is wall-clock. Throughput
// (slots/sec, wall) is machine-dependent and lives in cogbench's -bench-out
// report, gated in CI against BENCH_scale_baseline.json. Two separate walls
// divide the modes: the engine's per-slot scan (Θ(n) dense vs O(awake)
// sparse — BenchmarkEngineSlotSparse isolates it at three to four orders of
// magnitude on the census's dormant window) and the protocol's own Θ(m²)
// census/collection traffic, which both modes must deliver; end-to-end the
// reference machine measures ~3x per pair (dense 6.8s vs sparse 2.2s at
// n=8000; 116s vs 38s at n=32000), and only sparse stepping carries the
// sweep to n=100000 — dense extrapolates to ~20 minutes at its measured
// n=32000 rate of 330 slots/sec. Under Config.Check or Config.Trace the
// engine falls back to dense stepping (observers see every slot), which is
// invisible here precisely because the modes are byte-identical.
func runE29(cfg Config) ([]*Table, error) {
	const c, k, coreChannels = 16, 4, 48
	type point struct {
		sparse bool
		n      int
	}
	points := []point{
		{false, 2_000},
		{false, 8_000},
		{true, 8_000},
		{false, 32_000},
		{true, 32_000},
		{true, 100_000},
	}
	if cfg.Quick {
		points = []point{
			{false, 2_000},
			{true, 2_000},
			{true, 8_000},
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("E29: COGCOMP census wall, dense vs event-driven stepping (shared-core, c=%d, k=%d, 1 trial/point)", c, k),
		Claim:   "sparse rows reproduce dense rows cell-for-cell at the same n; only sparse stepping reaches n=100000",
		Columns: []string{"stepping", "n", "C", "slots", "census slots", "phase4 slots", "complete"},
	}
	type sparseResult struct {
		channels int
		slots    int
		census   int
		phase4   int
		complete bool
	}
	for _, p := range points {
		results, err := forTrials(cfg, 1, func(trial int, a *arena) (sparseResult, error) {
			var out sparseResult
			// Seed depends on n only: the dense and sparse rows at the same
			// n run the same trial, so any cell divergence is an engine bug.
			ts := rng.Derive(cfg.Seed, int64(p.n), 0, 290)
			asn, err := a.assign.SharedCore(p.n, c, k, coreChannels, assign.LocalLabels, ts)
			if err != nil {
				return out, err
			}
			out.channels = asn.Channels()
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.TrialEvent(trial, ts))
			}
			res, err := a.compRun(cfg, asn, 0, a.experInputs(p.n, ts), ts, cogcomp.Config{Trace: cfg.Trace, Sparse: p.sparse})
			if err != nil {
				return out, err
			}
			out.slots = res.TotalSlots
			out.census = res.Phase2Slots
			out.phase4 = res.Phase4Slots
			out.complete = res.Complete
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("exper: E29 sparse=%v n=%d: %w", p.sparse, p.n, err)
		}
		r := results[0]
		mode := "dense"
		if p.sparse {
			mode = "sparse"
		}
		t.AddRow(mode, itoa(p.n), itoa(r.channels), itoa(r.slots), itoa(r.census), itoa(r.phase4),
			fmt.Sprintf("%v", r.complete))
		if !r.complete {
			t.AddNote("UNEXPECTED: incomplete at n=%d (sparse=%v)", p.n, p.sparse)
		}
	}
	t.AddNote("the census window is ~n slots in which landed nodes listen quietly: dense stepping pays n node-steps per slot regardless (Θ(n²) total), sparse stepping pays only the contenders plus their deliveries")
	t.AddNote("wall-clock and slots/sec are machine-dependent and live in cogbench's -bench-out report (BENCH_scale_baseline.json); the dense/sparse pairs at n=8000 and n=32000 measure the end-to-end gap (~3x — protocol traffic is shared), BenchmarkEngineSlotSparse the engine-level one (>10³x on the dormant window)")
	return []*Table{t}, nil
}
