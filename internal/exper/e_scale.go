package exper

import (
	"fmt"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E28",
		Title: "Single-trial scale: COGCAST to a million nodes, COGCOMP to its Θ(n)-slot limit",
		Claim: "Theorem 4's Θ((c/k)·lg n) regime only separates from baselines at scale; the sharded slot engine plus the CSR membership index make a 10⁶-node COGCAST trial practical (slots grow with lg n while per-node index cost stays flat), whereas COGCOMP's Θ(n) census slots make its total work quadratic — the structural reason the epidemic primitive is the scalable one.",
		Run:   runE28,
	})
}

// runE28 sweeps single-trial network sizes. The table carries only
// deterministic columns (topology shape, CSR index footprint, slot counts);
// machine-dependent throughput (slots/sec, wall, bytes/node) is what
// cogbench's -bench-out report records for this experiment, gated in CI
// against BENCH_scale_baseline.json. One trial per point: at these sizes a
// single run is the experiment, and per-point seeds are still derived from
// the point so the table is byte-identical at any -parallel/-shards value.
//
// The COGCAST sweep runs on the partitioned (Theorem 16) topology, where
// C = k + n·(c−k) grows with n: that is the regime where slots track
// (c/k)·lg n and where the engine's channel scratch and the CSR index are
// actually stressed (12M physical channels at n=10⁶, bitsets elided). A
// shared-core row rides along as the dense contrast — pairwise overlap is so
// rich there that capture resolution informs everyone in a couple of slots,
// and the index keeps per-node bitsets.
func runE28(cfg Config) ([]*Table, error) {
	const c, k, coreChannels = 16, 4, 48
	type point struct {
		proto string // "COGCAST" or "COGCOMP"
		topo  string // "partitioned" or "shared-core"
		n     int
	}
	points := []point{
		{"COGCAST", "partitioned", 100_000},
		{"COGCAST", "partitioned", 400_000},
		{"COGCAST", "partitioned", 1_000_000},
		{"COGCAST", "shared-core", 1_000_000},
		{"COGCOMP", "shared-core", 2_000},
		{"COGCOMP", "shared-core", 8_000},
	}
	if cfg.Quick {
		points = []point{
			{"COGCAST", "partitioned", 100_000},
			{"COGCAST", "shared-core", 100_000},
			{"COGCOMP", "shared-core", 2_000},
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("E28: single-trial scale sweep (c=%d, k=%d, local labels, 1 trial/point)", c, k),
		Claim:   "partitioned COGCAST slots grow ~lg n while index bytes/node stay flat; COGCOMP slots grow ~n",
		Columns: []string{"protocol", "topology", "n", "C", "index B/node", "bitsets", "slots", "complete"},
	}

	type scaleResult struct {
		channels int
		indexBPN float64
		bitsets  bool
		slots    int
		complete bool
	}
	runPoint := func(p point) (scaleResult, error) {
		results, err := forTrials(cfg, 1, func(trial int, a *arena) (scaleResult, error) {
			var out scaleResult
			ts := rng.Derive(cfg.Seed, int64(p.n), int64(len(p.proto)+len(p.topo)), 280)
			var asn *assign.Static
			var err error
			if p.topo == "partitioned" {
				asn, err = a.assign.Partitioned(p.n, c, k, assign.LocalLabels, ts)
			} else {
				asn, err = a.assign.SharedCore(p.n, c, k, coreChannels, assign.LocalLabels, ts)
			}
			if err != nil {
				return out, err
			}
			idx := asn.Index()
			out.channels = asn.Channels()
			out.indexBPN = float64(idx.MemoryBytes()) / float64(p.n)
			out.bitsets = idx.HasBitsets()
			if cfg.Trace != nil {
				cfg.Trace.Emit(trace.TrialEvent(trial, ts))
			}
			switch p.proto {
			case "COGCAST":
				budget := 64 * cogcast.SlotBound(p.n, c, k, cogcast.DefaultKappa)
				res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{
					UntilAllInformed: true, MaxSlots: budget, Trace: cfg.Trace, Shards: cfg.Shards,
				})
				if err != nil {
					return out, err
				}
				out.slots = res.Slots
				out.complete = res.AllInformed
			default: // COGCOMP
				res, err := a.compRun(cfg, asn, 0, a.experInputs(p.n, ts), ts, cogcomp.Config{Trace: cfg.Trace})
				if err != nil {
					return out, err
				}
				out.slots = res.TotalSlots
				out.complete = res.Complete
			}
			return out, nil
		})
		if err != nil {
			return scaleResult{}, err
		}
		return results[0], nil
	}

	for _, p := range points {
		r, err := runPoint(p)
		if err != nil {
			return nil, fmt.Errorf("exper: E28 %s %s n=%d: %w", p.proto, p.topo, p.n, err)
		}
		bitsets := "no"
		if r.bitsets {
			bitsets = "yes"
		}
		t.AddRow(p.proto, p.topo, itoa(p.n), itoa(r.channels), ftoa(r.indexBPN), bitsets,
			itoa(r.slots), fmt.Sprintf("%v", r.complete))
		if !r.complete {
			t.AddNote("UNEXPECTED: %s incomplete at n=%d (%s)", p.proto, p.n, p.topo)
		}
	}
	t.AddNote("COGCOMP stops at n=8000: its phase-2 census is n slots, so total work is Θ(n²) and a 10⁶-node run is structurally infeasible — the contrast the claim predicts")
	t.AddNote("throughput (slots/sec, wall, bytes/node) is machine-dependent and lives in cogbench's -bench-out report (BENCH_scale_baseline.json), not in this table; -shards k speeds large points up on multi-core machines without changing a cell")
	return []*Table{t}, nil
}
