package exper

import (
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/gossip"
	"github.com/cogradio/crn/internal/rendezvous"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Gossip extension: m concurrent sources",
		Claim: "Extension (no paper theorem): multi-source epidemic relay disseminates m rumors barely slower than one — collisions between senders merge rumor sets instead of wasting the slot.",
		Run:   runE18,
	})
	register(Experiment{
		ID:    "E19",
		Title: "Rendezvous: uniform hopping meets in c²/k expected slots",
		Claim: "Footnote 1: basic uniform random hopping solves pairwise rendezvous in O(c²/k) expected slots, improving the deterministic O(c²) schedules for non-constant k; after one meeting a seed swap makes all future meetings free.",
		Run:   runE19,
	})
}

func runE18(cfg Config) ([]*Table, error) {
	const n, c, k = 128, 8, 2
	ms := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		ms = []int{1, 4, 16}
	}
	t := &Table{
		Title:   fmt.Sprintf("E18: gossip completion vs rumor count m (n=%d, c=%d, k=%d, partitioned)", n, c, k),
		Claim:   "slots grow far slower than linearly in m",
		Columns: []string{"m rumors", "median slots", "mean", "slots vs m=1"},
	}
	var base float64
	for _, m := range ms {
		slots, err := forTrials(cfg, cfg.trials(), func(trial int, a *arena) (float64, error) {
			ts := rng.Derive(cfg.Seed, int64(m), int64(trial), 180)
			asn, err := a.assign.Partitioned(n, c, k, assign.LocalLabels, ts)
			if err != nil {
				return 0, err
			}
			sources := make([]sim.NodeID, m)
			perm := rng.New(ts, 0x50c).Perm(n)
			for i := range sources {
				sources[i] = sim.NodeID(perm[i])
			}
			res, err := gossip.Run(asn, sources, ts, 200000)
			if err != nil {
				return 0, err
			}
			if !res.Complete {
				return 0, fmt.Errorf("exper: gossip incomplete at m=%d", m)
			}
			return float64(res.Slots), nil
		})
		if err != nil {
			return nil, err
		}
		s, err := stats.Summarize(slots)
		if err != nil {
			return nil, err
		}
		if m == ms[0] {
			base = s.Median
		}
		t.AddRow(itoa(m), ftoa(s.Median), ftoa(s.Mean), ftoa(stats.Ratio(s.Median, base)))
	}
	t.AddNote("a 32-fold increase in rumors should cost well under 32x the slots (sets ride the same epidemic)")
	return []*Table{t}, nil
}

func runE19(cfg Config) ([]*Table, error) {
	type point struct{ c, k int }
	points := []point{{8, 1}, {8, 2}, {16, 2}, {16, 4}, {32, 4}}
	if cfg.Quick {
		points = []point{{8, 2}, {16, 4}}
	}
	trials := 200
	if cfg.Quick {
		trials = 60
	}
	t := &Table{
		Title:   "E19: uniform-hopping rendezvous, two-set network (overlap exactly k)",
		Claim:   "mean meeting time ≈ c²/k",
		Columns: []string{"c", "k", "theory c²/k", "mean slots", "mean/theory"},
	}
	var xs, ys []float64
	for _, p := range points {
		meetSlots, err := forTrials(cfg, trials, func(trial int, a *arena) (float64, error) {
			ts := rng.Derive(cfg.Seed, int64(p.c), int64(p.k), int64(trial), 190)
			asn, err := a.assign.TwoSet(2, p.c, p.k, assign.LocalLabels, ts)
			if err != nil {
				return 0, err
			}
			res, err := rendezvous.Uniform(asn, 0, 1, ts, 10_000_000)
			if err != nil {
				return 0, err
			}
			if !res.Met {
				return 0, fmt.Errorf("exper: pair never met at c=%d k=%d", p.c, p.k)
			}
			return float64(res.Slots), nil
		})
		if err != nil {
			return nil, err
		}
		var total float64
		for _, s := range meetSlots {
			total += s
		}
		mean := total / float64(trials)
		theory := rendezvous.ExpectedSlots(p.c, p.k)
		xs = append(xs, theory)
		ys = append(ys, mean)
		t.AddRow(itoa(p.c), itoa(p.k), ftoa(theory), ftoa(mean), ftoa(stats.Ratio(mean, theory)))
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("linear fit mean = %.2f·(c²/k) + %.2f, R² = %.3f (theory: slope 1)", fit.Slope, fit.Intercept, fit.R2)
	if math.Abs(fit.Slope-1) > 0.3 {
		t.AddNote("WARNING: slope deviates from 1 by more than 30%%")
	}

	// E19b: the three approaches side by side — randomized (the paper's
	// footnote-1 answer), role-assigned deterministic, and symmetric
	// deterministic via ID bits. Randomized has no worst case; the
	// deterministic schemes trade average time for a guarantee.
	cmp := &Table{
		Title:   "E19b: rendezvous approaches (c=16, k=2, two-set network, 200 instances)",
		Claim:   "all three are Θ(c²/k)-ish on average; only the deterministic schemes carry a worst-case deadline",
		Columns: []string{"approach", "mean slots", "max slots", "guaranteed deadline"},
	}
	const cCmp, kCmp, cmpTrials = 16, 2, 200
	type outcome struct{ total, max int }
	type cmpResult struct{ uni, asym, symm int }
	cmpResults, err := forTrials(cfg, cmpTrials, func(trial int, a *arena) (cmpResult, error) {
		ts := rng.Derive(cfg.Seed, int64(trial), 191)
		asn, err := a.assign.TwoSet(2, cCmp, kCmp, assign.LocalLabels, ts)
		if err != nil {
			return cmpResult{}, err
		}
		r, err := rendezvous.Uniform(asn, 0, 1, ts, 10_000_000)
		if err != nil || !r.Met {
			return cmpResult{}, fmt.Errorf("exper: E19b uniform missed (%v)", err)
		}
		d, err := rendezvous.AsymmetricScan(asn, 0, 1, cCmp*cCmp+cCmp)
		if err != nil || !d.Met {
			return cmpResult{}, fmt.Errorf("exper: E19b asymmetric missed (%v)", err)
		}
		// Vary the first differing ID bit across trials so the symmetric
		// scheme's block cost is exercised, not just the bit-0 fast path.
		idU := uint64(trial)
		idV := idU ^ (1 << uint(trial%4))
		sBound, err := rendezvous.SymmetricIDScanBound(cCmp, idU, idV)
		if err != nil {
			return cmpResult{}, err
		}
		sres, err := rendezvous.SymmetricIDScan(asn, 0, 1, idU, idV, sBound)
		if err != nil || !sres.Met {
			return cmpResult{}, fmt.Errorf("exper: E19b symmetric missed (%v)", err)
		}
		return cmpResult{uni: r.Slots, asym: d.Slots, symm: sres.Slots}, nil
	})
	if err != nil {
		return nil, err
	}
	var uni, asym, symm outcome
	for _, r := range cmpResults {
		uni.total += r.uni
		if r.uni > uni.max {
			uni.max = r.uni
		}
		asym.total += r.asym
		if r.asym > asym.max {
			asym.max = r.asym
		}
		symm.total += r.symm
		if r.symm > symm.max {
			symm.max = r.symm
		}
	}
	aBound, err := rendezvous.AsymmetricScanBound(cCmp, cCmp)
	if err != nil {
		return nil, err
	}
	cmp.AddRow("uniform random (footnote 1)", ftoa(float64(uni.total)/cmpTrials), itoa(uni.max), "none (w.h.p. only)")
	cmp.AddRow("asymmetric scan (roles assigned)", ftoa(float64(asym.total)/cmpTrials), itoa(asym.max), itoa(aBound+cCmp))
	cmp.AddRow("symmetric ID scan", ftoa(float64(symm.total)/cmpTrials), itoa(symm.max), "(j+1)(c²+c), j = first differing ID bit")
	cmp.AddNote("symmetric determinism is impossible without IDs (misaligned labels); the ID-bit role alternation is the standard fix the deterministic literature refines")
	return []*Table{t, cmp}, nil
}
