package exper

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28", "E29", "E30"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d].ID = %s, want %s (numeric ordering)", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Claim == "" || all[i].Run == nil {
			t.Errorf("%s: incomplete metadata", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("e4")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "E4" {
		t.Errorf("ByID(e4).ID = %s", e.ID)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Claim:   "x grows",
		Columns: []string{"a", "bee"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("fit %.1f", 2.0)

	var text bytes.Buffer
	if err := tb.Render(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"demo", "claim: x grows", "333", "note: fit 2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}

	var md bytes.Buffer
	if err := tb.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	mdOut := md.String()
	for _, want := range []string{"### demo", "| a | bee |", "| --- | --- |", "| 333 | 4 |", "> fit 2.0"} {
		if !strings.Contains(mdOut, want) {
			t.Errorf("Markdown output missing %q:\n%s", want, mdOut)
		}
	}
}

func TestConfigTrialsDefault(t *testing.T) {
	if (Config{}).trials() != DefaultTrials {
		t.Error("zero trials should default")
	}
	if (Config{Trials: 3}).trials() != 3 {
		t.Error("explicit trials ignored")
	}
}

// TestAllExperimentsQuick runs the entire suite in quick mode — the
// repository's end-to-end integration test: every claim-reproduction must
// execute, produce at least one populated table, and never report a
// violated bound.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tb.Title)
				}
				if len(tb.Columns) == 0 {
					t.Errorf("%s: table %q has no columns", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Errorf("%s: table %q row width %d != %d columns", e.ID, tb.Title, len(row), len(tb.Columns))
					}
					for _, cell := range row {
						if strings.Contains(cell, "VIOLATED") {
							t.Errorf("%s: bound violated in table %q", e.ID, tb.Title)
						}
					}
				}
				var sink bytes.Buffer
				if err := tb.Render(&sink); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
			}
		})
	}
}
