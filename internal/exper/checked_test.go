package exper

import (
	"bytes"
	"testing"
)

// renderAll renders every table of one run into a single byte string.
func renderAll(t *testing.T, tables []*Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestAllExperimentsQuickChecked replays every experiment's quick
// configuration with the invariant oracle attached (Config.Check): every
// slot of every trial is re-verified by the independent checker, the
// distribution trees, censuses and aggregates are validated, and a single
// violation fails the run. The rendered tables must be byte-identical to
// the unchecked run — the oracle observes, it never perturbs.
func TestAllExperimentsQuickChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			plain, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			checked, err := e.Run(Config{Seed: 7, Trials: 3, Quick: true, Check: true})
			if err != nil {
				t.Fatalf("%s with oracle: %v", e.ID, err)
			}
			if got, want := renderAll(t, checked), renderAll(t, plain); got != want {
				t.Errorf("%s: checked tables differ from unchecked:\n--- checked ---\n%s\n--- plain ---\n%s", e.ID, got, want)
			}
		})
	}
}
