package exper

import (
	"math/rand"
	"testing"
)

// TestParallelWorkerStress runs a randomized subset of the experiment
// registry at 1, 4 and 8 workers and diffs the rendered tables
// byte-for-byte: per-trial seeds are derived from the trial index alone
// and results merge in trial order, so worker count must never leak into
// the output. The subset is drawn from a seeded generator (deterministic
// per run of the test binary), and the test is cheap enough to run in
// short mode — its main value is under `go test -race`, where the three
// worker counts stress parallel.MapArena's arena handoff.
func TestParallelWorkerStress(t *testing.T) {
	all := All()
	// The scale sweep's single trials take seconds each; three worker counts
	// of it would dominate the race run. Its worker- and shard-identity are
	// covered by TestAllExperimentsQuick and the sharded identity tests.
	for i := 0; i < len(all); i++ {
		if all[i].ID == "E28" {
			all = append(all[:i], all[i+1:]...)
			break
		}
	}
	rnd := rand.New(rand.NewSource(20260806))
	rnd.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	subset := all[:4]
	// Always include the recovery experiment: the supervisor's epoch
	// retries and fault wrappers only run under E26, and the race detector
	// should see that path across worker counts too.
	hasRecovery := false
	for _, e := range subset {
		if e.ID == "E26" {
			hasRecovery = true
		}
	}
	if !hasRecovery {
		e26, err := ByID("E26")
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, e26)
	}
	for _, e := range subset {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range []int{1, 4, 8} {
				tables, err := e.Run(Config{Seed: 11, Trials: 4, Quick: true, Parallel: workers})
				if err != nil {
					t.Fatalf("%s at %d workers: %v", e.ID, workers, err)
				}
				got := renderAll(t, tables)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s: tables at %d workers differ from serial run:\n--- %d workers ---\n%s\n--- serial ---\n%s",
						e.ID, workers, workers, got, want)
				}
			}
		})
	}
}
