package conform

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/stats"
)

// broadcastSweep is the Theorem 4 conformance instance for the c <= n
// regime, at fixed seed: measured at calibration time the log–log fit is
// exponent ≈ 1.05 with R² ≈ 0.98 and leading ratios within [0.75, 0.96].
func broadcastSweep() Sweep {
	return Sweep{
		Points: []Point{
			{N: 32, C: 4, K: 2}, {N: 64, C: 8, K: 2}, {N: 128, C: 8, K: 2},
			{N: 128, C: 16, K: 4}, {N: 256, C: 16, K: 4}, {N: 256, C: 16, K: 2},
			{N: 512, C: 16, K: 4},
		},
		Trials: 5,
		Seed:   1,
	}
}

func TestBroadcastConformsToTheorem4(t *testing.T) {
	rep, err := Broadcast(broadcastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(DefaultTolerance()); err != nil {
		t.Errorf("Theorem 4 shape violated: %v\n(fit %+v, ratios [%.2f, %.2f])",
			err, rep.Fit, rep.MinRatio, rep.MaxRatio)
	}
	if rep.MaxRatio > 4 {
		t.Errorf("leading constant drifted: max ratio %.2f, calibrated below 1 on this instance", rep.MaxRatio)
	}
}

// TestBroadcastHighChannelRegime covers Theorem 4's other branch,
// c >= n, where the predictor's max{1, c/n} term engages. The reachable n
// span is too small for a power-law fit (lg n barely varies), so only the
// leading constant is bounded — the measured slots must stay within a
// small multiple of (c²/(nk))·lg n.
func TestBroadcastHighChannelRegime(t *testing.T) {
	rep, err := Broadcast(Sweep{
		Points: []Point{
			{N: 8, C: 16, K: 4}, {N: 16, C: 32, K: 4}, {N: 16, C: 48, K: 8}, {N: 24, C: 48, K: 6},
		},
		Trials: 5,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(Tolerance{MaxRatio: 8}); err != nil {
		t.Errorf("c >= n leading constant drifted: %v", err)
	}
}

// TestAggregationConformsToTheorem10 fits COGCOMP's total slots against
// the "+ n" predictor. At calibration the exponent is ≈ 0.80 (slightly
// sublinear: the hidden constant on the lg-term exceeds the one on n, so
// ratios decline toward the asymptotic constant as n grows) with
// R² ≈ 0.999 and ratios within [3.0, 4.9].
func TestAggregationConformsToTheorem10(t *testing.T) {
	rep, err := Aggregation(Sweep{
		Points: []Point{
			{N: 32, C: 8, K: 2}, {N: 64, C: 8, K: 2}, {N: 128, C: 8, K: 2},
			{N: 256, C: 8, K: 2}, {N: 512, C: 8, K: 2},
		},
		Trials: 5,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tol := Tolerance{ExponentLow: 0.7, ExponentHigh: 1.25, MinR2: 0.95, MaxRatio: 8}
	if err := rep.Check(tol); err != nil {
		t.Errorf("Theorem 10 shape violated: %v\n(fit %+v, ratios [%.2f, %.2f])",
			err, rep.Fit, rep.MinRatio, rep.MaxRatio)
	}
}

// TestSweepDeterminism pins that reports are byte-identical across runs
// and worker counts: per-trial seeds derive from point and trial indices
// alone.
func TestSweepDeterminism(t *testing.T) {
	s := Sweep{
		Points: []Point{{N: 32, C: 4, K: 2}, {N: 64, C: 8, K: 2}, {N: 128, C: 8, K: 2}},
		Trials: 4,
		Seed:   9,
	}
	base, err := Broadcast(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		s.Workers = workers
		rep, err := Broadcast(s)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if !reflect.DeepEqual(rep, base) {
			t.Errorf("report at %d workers differs:\n%+v\nvs\n%+v", workers, rep, base)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Sweep
		want string
	}{
		{"one point", Sweep{Points: []Point{{N: 32, C: 4, K: 2}}, Trials: 3}, ">= 2 points"},
		{"zero trials", Sweep{Points: []Point{{N: 32, C: 4, K: 2}, {N: 64, C: 4, K: 2}}}, ">= 1 trials"},
		{"k above c", Sweep{Points: []Point{{N: 32, C: 4, K: 6}, {N: 64, C: 4, K: 2}}, Trials: 1}, "bad point"},
		{"tiny n", Sweep{Points: []Point{{N: 1, C: 4, K: 2}, {N: 64, C: 4, K: 2}}, Trials: 1}, "bad point"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Broadcast(c.s); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestReportCheck(t *testing.T) {
	rep := &Report{
		Fit: stats.PowerLaw{Exponent: 1.0, Coeff: 0.8, R2: 0.99},
		Points: []PointResult{
			{Point: Point{N: 64, C: 8, K: 2}, Predictor: 24, MedianSlots: 20, Ratio: 0.83},
			{Point: Point{N: 128, C: 8, K: 2}, Predictor: 28, MedianSlots: 24, Ratio: 0.86},
		},
		MinRatio: 0.83,
		MaxRatio: 0.86,
	}
	if err := rep.Check(DefaultTolerance()); err != nil {
		t.Errorf("conforming report rejected: %v", err)
	}

	bad := *rep
	bad.Fit.Exponent = 1.6
	if err := bad.Check(DefaultTolerance()); err == nil || !strings.Contains(err.Error(), "exponent") {
		t.Errorf("superlinear exponent: err = %v", err)
	}
	bad = *rep
	bad.Fit.Exponent = 0.3
	if err := bad.Check(DefaultTolerance()); err == nil || !strings.Contains(err.Error(), "exponent") {
		t.Errorf("sublinear exponent: err = %v", err)
	}
	bad = *rep
	bad.Fit.R2 = 0.5
	if err := bad.Check(DefaultTolerance()); err == nil || !strings.Contains(err.Error(), "R²") {
		t.Errorf("poor fit: err = %v", err)
	}
	bad = *rep
	bad.Points = append([]PointResult(nil), rep.Points...)
	bad.Points[1].Ratio = 100
	if err := bad.Check(DefaultTolerance()); err == nil || !strings.Contains(err.Error(), "ratio") {
		t.Errorf("ratio blow-up: err = %v", err)
	}
	// Zero fields disable their checks.
	if err := bad.Check(Tolerance{}); err != nil {
		t.Errorf("empty tolerance must accept everything, got %v", err)
	}
	bad.Fit.Exponent = math.Inf(1)
	if err := bad.Check(Tolerance{MinR2: 0.9}); err != nil {
		t.Errorf("R²-only tolerance must ignore exponent and ratios, got %v", err)
	}
}

func TestPointPredictor(t *testing.T) {
	// c <= n: (c/k)·lg n.
	if got, want := (Point{N: 256, C: 16, K: 4}).Predictor(), 4.0*8; got != want {
		t.Errorf("predictor = %v, want %v", got, want)
	}
	// c >= n: the max{1, c/n} factor engages: (32/4)·(32/16)·4 = 64.
	if got, want := (Point{N: 16, C: 32, K: 4}).Predictor(), 64.0; got != want {
		t.Errorf("high-channel predictor = %v, want %v", got, want)
	}
}
