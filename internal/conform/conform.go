// Package conform checks measured protocol behavior against the paper's
// theorem bound *shapes*. Where package exper reproduces the paper's
// claims as rendered tables for a human reader, conform turns two of them
// into machine-checked statistical assertions at fixed seeds:
//
//   - Theorem 4: COGCAST completes in O((c/k)·max{1, c/n}·lg n) slots
//     w.h.p. Measured median completion slots, regressed against the
//     predictor in log–log space, must fit a power law with exponent near
//     1 (the measurement scales as the predictor, not a higher power) and
//     a bounded leading ratio (the hidden constant does not drift).
//
//   - Theorem 10: COGCOMP completes aggregation in O((c/k)·max{1, c/n}·
//     lg n + n) slots w.h.p. — the same shape plus an additive n for the
//     census and convergecast phases. Measured total slots must track the
//     "+ n" predictor the same way.
//
// Sweeps run over the partitioned topology (the proof of Theorem 16's
// tight instance: every pair overlaps on exactly k channels), so the
// measured constants sit close to the bound rather than far below it.
// Trials reuse the protocols' arenas across a parallel.MapArena worker
// pool with per-trial seeds derived from the point and trial indices
// alone — reports are byte-identical at any worker count.
package conform

import (
	"context"
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

// Point is one parameter setting of a sweep: n nodes with c channels each
// and pairwise overlap at least k. The total channel count follows from
// the partitioned construction (C = k + n·(c−k)).
type Point struct {
	N, C, K int
}

// Predictor returns Theorem 4's bound shape (c/k)·max{1, c/n}·lg n for
// the point, without the hidden constant.
func (p Point) Predictor() float64 {
	return float64(p.C) / float64(p.K) *
		math.Max(1, float64(p.C)/float64(p.N)) *
		math.Log2(float64(p.N))
}

// Sweep configures a conformance run.
type Sweep struct {
	// Points are the parameter settings to measure. Each point must have
	// n >= 2 and 1 <= k <= c.
	Points []Point
	// Trials is the number of independent repetitions per point (>= 1).
	Trials int
	// Seed roots all randomness; identical sweeps reproduce identical
	// reports.
	Seed int64
	// Workers bounds trial parallelism (0 = GOMAXPROCS). Reports are
	// identical for every value.
	Workers int
}

// PointResult is one point's measurement.
type PointResult struct {
	Point
	// Predictor is the theorem's bound shape evaluated at the point.
	Predictor float64
	// MedianSlots is the median completion slot count over the trials.
	MedianSlots float64
	// Ratio is MedianSlots / Predictor — the measured leading constant.
	Ratio float64
}

// Report is the outcome of a sweep: the per-point measurements and the
// log–log power-law fit of median slots against the predictor.
type Report struct {
	// Fit is the power-law fit MedianSlots ≈ Coeff·Predictor^Exponent.
	Fit stats.PowerLaw
	// Points holds the per-point measurements in sweep order.
	Points []PointResult
	// MinRatio and MaxRatio bound the measured leading constants.
	MinRatio, MaxRatio float64
}

// Tolerance bounds how far a Report may drift from the theorem shape
// before Check fails. A zero field disables its check, so a ratio-only
// tolerance is Tolerance{MaxRatio: 8} — used for regimes whose n span is
// too small for a meaningful shape fit.
type Tolerance struct {
	// ExponentLow and ExponentHigh bound the fitted power-law exponent.
	// A conforming measurement scales linearly in the predictor, so the
	// band brackets 1. ExponentHigh zero disables the band.
	ExponentLow, ExponentHigh float64
	// MinR2 is the minimum coefficient of determination of the log–log
	// fit: the predictor must explain the measurement, not merely
	// correlate with it. Zero disables.
	MinR2 float64
	// MaxRatio caps every point's measured leading constant
	// (median slots per predictor unit). Zero disables.
	MaxRatio float64
}

// DefaultTolerance returns the band used by the conformance tests:
// exponent within [0.75, 1.25] of linear, R² at least 0.9, and a leading
// constant below 16 (DefaultKappa is 4, and the tight partitioned
// instance runs within a small multiple of the bound).
func DefaultTolerance() Tolerance {
	return Tolerance{ExponentLow: 0.75, ExponentHigh: 1.25, MinR2: 0.9, MaxRatio: 16}
}

// Check verifies the report against the tolerance. The returned error
// names the first violated bound.
func (r *Report) Check(tol Tolerance) error {
	if tol.ExponentHigh > 0 {
		if got := r.Fit.Exponent; got < tol.ExponentLow || got > tol.ExponentHigh {
			return fmt.Errorf("conform: fitted exponent %.3f outside [%.2f, %.2f] (coeff %.2f, R²=%.3f)",
				got, tol.ExponentLow, tol.ExponentHigh, r.Fit.Coeff, r.Fit.R2)
		}
	}
	if tol.MinR2 > 0 && r.Fit.R2 < tol.MinR2 {
		return fmt.Errorf("conform: log–log fit R² %.3f below %.2f: predictor does not explain the measurement",
			r.Fit.R2, tol.MinR2)
	}
	if tol.MaxRatio > 0 {
		for _, p := range r.Points {
			if p.Ratio > tol.MaxRatio {
				return fmt.Errorf("conform: leading ratio %.2f at n=%d c=%d k=%d exceeds %.2f (predictor %.1f, median %.1f slots)",
					p.Ratio, p.N, p.C, p.K, tol.MaxRatio, p.Predictor, p.MedianSlots)
			}
		}
	}
	return nil
}

// arena is the per-worker scratch of a sweep: the assignment builder and
// protocol arenas reused across that worker's trials.
type arena struct {
	assign assign.Builder
	cast   cogcast.Arena
	comp   cogcomp.Arena
	inputs []int64
}

// runSweep flattens (point, trial) pairs over the worker pool, measures
// one slot count per trial via measure, and folds medians into a report.
func runSweep(s Sweep, measure func(a *arena, p Point, trialSeed int64) (float64, error)) (*Report, error) {
	if len(s.Points) < 2 {
		return nil, fmt.Errorf("conform: sweep needs >= 2 points for a fit, got %d", len(s.Points))
	}
	if s.Trials < 1 {
		return nil, fmt.Errorf("conform: sweep needs >= 1 trials, got %d", s.Trials)
	}
	for _, p := range s.Points {
		if p.N < 2 || p.K < 1 || p.K > p.C {
			return nil, fmt.Errorf("conform: bad point n=%d c=%d k=%d", p.N, p.C, p.K)
		}
	}
	total := len(s.Points) * s.Trials
	slots, err := parallel.MapArena(context.Background(), total, s.Workers, func() *arena { return new(arena) },
		func(i int, a *arena) (float64, error) {
			p := s.Points[i/s.Trials]
			trial := i % s.Trials
			ts := rng.Derive(s.Seed, int64(p.N), int64(p.C), int64(p.K), int64(trial))
			return measure(a, p, ts)
		})
	if err != nil {
		return nil, err
	}

	rep := &Report{MinRatio: math.Inf(1)}
	xs := make([]float64, 0, len(s.Points))
	ys := make([]float64, 0, len(s.Points))
	for pi, p := range s.Points {
		sum, err := stats.Summarize(slots[pi*s.Trials : (pi+1)*s.Trials])
		if err != nil {
			return nil, err
		}
		pr := PointResult{
			Point:       p,
			Predictor:   p.Predictor(),
			MedianSlots: sum.Median,
		}
		pr.Ratio = stats.Ratio(pr.MedianSlots, pr.Predictor)
		rep.Points = append(rep.Points, pr)
		rep.MinRatio = math.Min(rep.MinRatio, pr.Ratio)
		rep.MaxRatio = math.Max(rep.MaxRatio, pr.Ratio)
		xs = append(xs, pr.Predictor)
		ys = append(ys, pr.MedianSlots)
	}
	fit, err := stats.PowerFit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	rep.Fit = fit
	return rep, nil
}

// Broadcast measures COGCAST completion against Theorem 4's bound shape.
func Broadcast(s Sweep) (*Report, error) {
	return runSweep(s, func(a *arena, p Point, ts int64) (float64, error) {
		asn, err := a.assign.Partitioned(p.N, p.C, p.K, assign.LocalLabels, ts)
		if err != nil {
			return 0, err
		}
		budget := 64 * cogcast.SlotBound(p.N, p.C, p.K, cogcast.DefaultKappa)
		res, err := a.cast.Run(asn, 0, "m", ts, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: budget})
		if err != nil {
			return 0, err
		}
		if !res.AllInformed {
			return 0, fmt.Errorf("conform: broadcast incomplete after %d slots (n=%d c=%d k=%d)", res.Slots, p.N, p.C, p.K)
		}
		return float64(res.Slots), nil
	})
}

// Aggregation measures COGCOMP completion against Theorem 10's bound
// shape — Theorem 4's predictor plus the additive n of the census and
// convergecast phases. The point's Predictor is replaced by
// Predictor() + n for the fit and ratios.
func Aggregation(s Sweep) (*Report, error) {
	rep, err := runSweep(s, func(a *arena, p Point, ts int64) (float64, error) {
		asn, err := a.assign.Partitioned(p.N, p.C, p.K, assign.LocalLabels, ts)
		if err != nil {
			return 0, err
		}
		if cap(a.inputs) < p.N {
			a.inputs = make([]int64, p.N)
		}
		a.inputs = a.inputs[:p.N]
		for i := range a.inputs {
			a.inputs[i] = int64(i)
		}
		res, err := a.comp.Run(asn, 0, a.inputs, ts, cogcomp.Config{})
		if err != nil {
			return 0, err
		}
		return float64(res.TotalSlots), nil
	})
	if err != nil {
		return nil, err
	}
	// Re-base predictors, ratios and the fit on Theorem 10's "+ n" shape.
	xs := make([]float64, 0, len(rep.Points))
	ys := make([]float64, 0, len(rep.Points))
	rep.MinRatio = math.Inf(1)
	rep.MaxRatio = 0
	for i := range rep.Points {
		pr := &rep.Points[i]
		pr.Predictor += float64(pr.N)
		pr.Ratio = stats.Ratio(pr.MedianSlots, pr.Predictor)
		rep.MinRatio = math.Min(rep.MinRatio, pr.Ratio)
		rep.MaxRatio = math.Max(rep.MaxRatio, pr.Ratio)
		xs = append(xs, pr.Predictor)
		ys = append(ys, pr.MedianSlots)
	}
	fit, err := stats.PowerFit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	rep.Fit = fit
	return rep, nil
}
