package cogcomp

import (
	"context"
	"errors"
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// ErrIncomplete is returned when aggregation finished but some nodes never
// joined the tree (the phase-one w.h.p. event failed), so the source's
// aggregate is missing inputs.
var ErrIncomplete = errors.New("cogcomp: aggregation incomplete: some nodes were never informed")

// Config configures a COGCOMP run.
type Config struct {
	// Kappa scales phase one's length (see cogcast.SlotBound). Zero means
	// cogcast.DefaultKappa.
	Kappa float64
	// MaxSlots bounds the whole execution. Zero picks a budget comfortably
	// above the Theorem 10 bound for the given parameters.
	MaxSlots int
	// Func is the aggregate to compute. Nil means aggfunc.Sum.
	Func aggfunc.Func
	// Observer, when non-nil, receives every slot's channel outcomes
	// (before the trace recorder and the invariant checker in tee order).
	// Reactive adversaries attach through it; note that any observer
	// gates the sparse engine back to dense stepping.
	Observer sim.Observer
	// Trace, when non-nil, receives the run's structured event stream
	// (TRACE.md): per-slot channel outcomes, phase-transition events as
	// the run crosses the nominal phase boundaries, and a final census
	// event with the informed count and elected mediators. Nil disables
	// tracing at zero cost.
	Trace trace.Sink
	// Check attaches the invariant oracle: the assignment contract, every
	// slot's channel outcomes, the phase-one distribution tree, the
	// cluster census, and — on complete runs — the aggregate value against
	// aggfunc.Fold ground truth. A violation fails the run. Disabled (the
	// default) it costs nothing; see package invariant.
	Check bool
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines (sim.WithShards). Results are byte-identical at any value;
	// 0 or 1 means serial.
	Shards int
	// Sparse enables event-driven stepping (sim.WithSparse): nodes emit
	// dormancy hints and the engine scans only awake nodes, which collapses
	// the census window's Θ(n²) node-steps to O(events). Executions are
	// byte-identical to dense runs; the engine silently runs dense when an
	// observer is attached (Trace/Check) or the assignment is not
	// slot-invariant.
	Sparse bool
	// Context, when non-nil, is checked at every slot boundary
	// (sim.WithContext): a done context stops the run with a
	// *sim.Interrupted error carrying the slots completed. Runs that
	// complete are byte-identical with or without one.
	Context context.Context
}

// DefaultMaxSlots is the slot budget Run uses when Config.MaxSlots is
// zero: phases 1-3 take 2l+n slots, phase four needs at most about 3(n+l)
// slots per the Theorem 10 induction; double it for slack.
func DefaultMaxSlots(n, l int) int {
	return (2*l + n) + 6*(n+l) + 96
}

// Result reports one COGCOMP execution.
type Result struct {
	// Value is the aggregate held by the source at termination.
	Value aggfunc.Value
	// Complete reports that every node contributed.
	Complete bool
	// TotalSlots is the number of slots until every node terminated.
	TotalSlots int
	// Phase1Slots .. Phase4Slots break the run down per phase. Phases one
	// to three have fixed lengths (l, n, l); phase four runs to completion.
	Phase1Slots, Phase2Slots, Phase3Slots, Phase4Slots int
	// InformedAfterPhase1 counts nodes holding INIT when phase one ended.
	InformedAfterPhase1 int
	// Parents is the distribution tree (sim.None for source/uninformed).
	Parents []sim.NodeID
	// MaxMessageSize is the largest phase-four value message any node sent,
	// in abstract words (see aggfunc.Func.Size).
	MaxMessageSize int
	// Mediators counts elected mediators (one per channel that informed
	// anyone in phase one).
	Mediators int
}

// Arena holds the reusable pieces of a COGCOMP execution — nodes (each with
// its embedded COGCAST node), the protocol slice, and the engine — so
// repeated trials run without rebuilding them. The zero value is ready to
// use; a warm arena's runs are byte-identical to the package-level Run and
// RunRounds. Arenas are not safe for concurrent use: parallel trial runners
// keep one per worker.
type Arena struct {
	nodes      []*Node
	protos     []sim.Protocol
	eng        *sim.Engine
	engOpts    []sim.Option
	forceCheck bool
	ctx        context.Context
	checker    *invariant.Checker
	infSlots   []int
}

// SetCheck forces invariant checking for every subsequent Run on this
// arena, regardless of Config.Check (see cogcast.Arena.SetCheck).
func (a *Arena) SetCheck(on bool) { a.forceCheck = on }

// SetContext attaches a context to every subsequent Run on this arena that
// does not carry its own Config.Context (see cogcast.Arena.SetContext).
func (a *Arena) SetContext(ctx context.Context) { a.ctx = ctx }

// Checker returns the arena's invariant checker, non-nil once a checked
// run has happened.
func (a *Arena) Checker() *invariant.Checker { return a.checker }

// build (re)initializes n nodes and the engine for one execution. wrap,
// when non-nil, maps each node to the protocol the engine drives (e.g. a
// fault-injection wrapper); nil drives the nodes directly.
func (a *Arena) build(asn sim.Assignment, source sim.NodeID, n, l int, input func(i int) int64, f aggfunc.Func, seed int64, engOpts []sim.Option, wrap func(sim.NodeID, *Node) sim.Protocol) error {
	if cap(a.nodes) < n {
		a.nodes = append(a.nodes[:cap(a.nodes)], make([]*Node, n-cap(a.nodes))...)
		a.protos = make([]sim.Protocol, n)
	}
	a.nodes = a.nodes[:n]
	a.protos = a.protos[:n]
	for i := range a.nodes {
		if a.nodes[i] == nil {
			a.nodes[i] = &Node{}
		}
		a.nodes[i].Reinit(sim.View(asn, sim.NodeID(i)), sim.NodeID(i) == source, n, l, input(i), f, seed)
		if wrap == nil {
			a.protos[i] = a.nodes[i]
		} else {
			a.protos[i] = wrap(sim.NodeID(i), a.nodes[i])
		}
	}
	if a.eng == nil {
		eng, err := sim.NewEngine(asn, a.protos, seed, engOpts...)
		if err != nil {
			return err
		}
		a.eng = eng
		return nil
	}
	return a.eng.Reset(asn, a.protos, seed, engOpts...)
}

// Prepare validates the run parameters and (re)initializes the arena's
// nodes and engine for one execution without running it: configuration
// defaulting, observer wiring (trace recorder, invariant checker) and node
// construction, exactly as Run performs them. It returns the nodes, the
// engine, and the phase-one length l. internal/recover's supervisor uses
// Prepare to take over the slot loop while staying draw-for-draw identical
// to the classic runner; wrap lets it interpose fault-injection wrappers
// between the engine and the nodes.
func (a *Arena) Prepare(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config, wrap func(sim.NodeID, *Node) sim.Protocol) ([]*Node, *sim.Engine, int, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, nil, 0, fmt.Errorf("cogcomp: source %d outside [0,%d)", source, n)
	}
	if len(inputs) != n {
		return nil, nil, 0, fmt.Errorf("cogcomp: got %d inputs for %d nodes", len(inputs), n)
	}
	kappa := cfg.Kappa
	if kappa == 0 {
		kappa = cogcast.DefaultKappa
	}
	f := cfg.Func
	if f == nil {
		f = aggfunc.Sum{}
	}
	l := PhaseOneLength(n, asn.PerNode(), asn.MinOverlap(), kappa)

	check := cfg.Check || a.forceCheck
	a.engOpts = a.engOpts[:0]
	if cfg.Shards > 1 {
		a.engOpts = append(a.engOpts, sim.WithShards(cfg.Shards))
	}
	if cfg.Sparse {
		a.engOpts = append(a.engOpts, sim.WithSparse())
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = a.ctx
	}
	if ctx != nil {
		a.engOpts = append(a.engOpts, sim.WithContext(ctx))
	}
	obs := cfg.Observer
	if cfg.Trace != nil {
		obs = sim.Tee(obs, trace.NewRecorder(cfg.Trace))
	}
	if check {
		if err := invariant.CheckAssignment(asn, 0); err != nil {
			return nil, nil, 0, fmt.Errorf("cogcomp: %w", err)
		}
		if a.checker == nil {
			a.checker = new(invariant.Checker)
		}
		a.checker.Reset(asn, sim.UniformWinner)
		obs = sim.Tee(obs, a.checker)
	}
	if obs != nil {
		a.engOpts = append(a.engOpts, sim.WithObserver(obs))
	}
	if err := a.build(asn, source, n, l, func(i int) int64 { return inputs[i] }, f, seed, a.engOpts, wrap); err != nil {
		return nil, nil, 0, err
	}
	// Emit dormancy hints only when the engine actually engaged sparse
	// stepping (the request may have been gated off by an observer or a
	// non-slot-invariant assignment); hints are inert under a dense engine
	// but cost a few branches per Step.
	dormant := a.eng.Sparse()
	for _, nd := range a.nodes {
		nd.SetDormant(dormant)
	}
	return a.nodes, a.eng, l, nil
}

// Run executes COGCOMP exactly as the package-level Run does, reusing the
// arena's nodes and engine.
func (a *Arena) Run(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config) (*Result, error) {
	return a.RunWith(asn, source, inputs, seed, cfg, nil)
}

// RunWith is Run with an optional protocol wrapper interposed between the
// engine and every node (see Prepare) — the hook fault injectors use to
// run the *unsupervised* protocol under crashes, measuring what recovery
// is worth. A nil wrap is exactly Run.
func (a *Arena) RunWith(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config, wrap func(sim.NodeID, *Node) sim.Protocol) (*Result, error) {
	n := asn.Nodes()
	nodes, eng, l, err := a.Prepare(asn, source, inputs, seed, cfg, wrap)
	if err != nil {
		return nil, err
	}
	f := cfg.Func
	if f == nil {
		f = aggfunc.Sum{}
	}
	check := cfg.Check || a.forceCheck
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = DefaultMaxSlots(n, l)
	}
	var total int
	if cfg.Trace == nil {
		total, err = eng.Run(maxSlots)
	} else {
		total, err = runTraced(eng, maxSlots, l, n, cfg.Trace)
	}
	if err != nil {
		return nil, fmt.Errorf("cogcomp: %w (after %d slots; l=%d n=%d)", err, total, l, n)
	}

	res := &Result{
		Value:       nodes[source].Aggregate(),
		TotalSlots:  total,
		Phase1Slots: l,
		Phase2Slots: n,
		Phase3Slots: l,
		Phase4Slots: total - (2*l + n),
		Parents:     make([]sim.NodeID, n),
	}
	if res.Phase4Slots < 0 {
		// Tiny networks can finish before the nominal phase boundaries.
		res.Phase4Slots = 0
	}
	informed := 0
	for i, nd := range nodes {
		if nd.Informed() {
			informed++
		}
		res.Parents[i] = nd.Parent()
		if nd.MaxMessageSize() > res.MaxMessageSize {
			res.MaxMessageSize = nd.MaxMessageSize()
		}
		if nd.IsMediator() {
			res.Mediators++
		}
	}
	res.InformedAfterPhase1 = informed
	res.Complete = informed == n
	if cfg.Trace != nil {
		cfg.Trace.Emit(trace.CensusEvent(total, informed, res.Mediators))
	}
	if check {
		if err := a.checker.Err(); err != nil {
			return nil, fmt.Errorf("cogcomp: slot oracle (%d violations): %w", a.checker.Violations(), err)
		}
		if cap(a.infSlots) < n {
			a.infSlots = make([]int, n)
		}
		a.infSlots = a.infSlots[:n]
		for i, nd := range nodes {
			a.infSlots[i] = nd.InformedSlot()
		}
		if err := invariant.CheckBroadcastTree(n, source, res.Parents, a.infSlots, res.Complete); err != nil {
			return nil, fmt.Errorf("cogcomp: %w", err)
		}
		if err := invariant.CheckCensus(n, asn.Channels(), informed, res.Mediators, res.Complete); err != nil {
			return nil, fmt.Errorf("cogcomp: %w", err)
		}
		if res.Complete {
			if want := aggfunc.Fold(f, inputs); !invariant.AggEqual(res.Value, want) {
				return nil, fmt.Errorf("cogcomp: aggregate %v diverges from ground truth %v (%s over n=%d)",
					res.Value, want, f.Name(), n)
			}
		}
	}
	if !res.Complete {
		return res, ErrIncomplete
	}
	return res, nil
}

// Run executes COGCOMP over the assignment and returns the source's
// aggregate. The assignment must be static: phases two to four revisit the
// channels used in phase one, which is meaningless if sets change per slot
// (COGCAST alone, by contrast, also works over dynamic assignments).
// Repeated callers should prefer a reusable Arena; this convenience builds a
// fresh one per call.
func Run(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, cfg Config) (*Result, error) {
	return new(Arena).Run(asn, source, inputs, seed, cfg)
}

// runTraced mirrors eng.Run(maxSlots) slot by slot so phase-transition
// events can be emitted the moment the run crosses the nominal phase
// boundaries (phases one to three have the fixed lengths l, n, l; phase
// four starts at 2l+n and runs to completion). Tiny networks may finish
// before a boundary, in which case the remaining phase events are not
// emitted — matching the run's actual shape rather than the nominal one.
func runTraced(eng *sim.Engine, maxSlots, l, n int, sink trace.Sink) (int, error) {
	boundaries := []trace.Event{
		trace.PhaseEvent(0, 1, l),
		trace.PhaseEvent(l, 2, n),
		trace.PhaseEvent(l+n, 3, l),
		trace.PhaseEvent(2*l+n, 4, 0),
	}
	next := 0
	for !eng.AllDone() {
		for next < len(boundaries) && eng.Slot() >= boundaries[next].Slot {
			sink.Emit(boundaries[next])
			next++
		}
		if eng.Slot() >= maxSlots {
			return eng.Slot(), sim.ErrMaxSlots
		}
		if err := eng.RunSlot(); err != nil {
			return eng.Slot(), err
		}
	}
	return eng.Slot(), nil
}
