package cogcomp

import (
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/sim"
)

// newTestNode builds a node with a minimal real view (the embedded COGCAST
// node needs one) whose phase-derived fields tests then set directly.
func newTestNode(t *testing.T, id sim.NodeID, n, l int) *Node {
	t.Helper()
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(sim.View(asn, id), id == 0, n, l, 0, aggfunc.Sum{}, 1)
}

func TestPhaseBoundaries(t *testing.T) {
	nd := newTestNode(t, 1, 10, 7)
	if nd.p2start != 7 || nd.p3start != 17 || nd.p4start != 24 {
		t.Errorf("boundaries = (%d,%d,%d), want (7,17,24)", nd.p2start, nd.p3start, nd.p4start)
	}
}

func TestRewoundSlotMapping(t *testing.T) {
	nd := newTestNode(t, 1, 10, 5)
	// Phase three runs in slots [15, 20); slot 15 rewinds phase-one slot 4,
	// slot 19 rewinds slot 0.
	cases := []struct{ slot, want int }{
		{15, 4}, {16, 3}, {17, 2}, {18, 1}, {19, 0},
	}
	for _, c := range cases {
		if got := nd.rewoundSlot(c.slot); got != c.want {
			t.Errorf("rewoundSlot(%d) = %d, want %d", c.slot, got, c.want)
		}
	}
}

func TestCensusDerivation(t *testing.T) {
	// Roster: channel saw clusters r=3 (nodes 5, 7, 2) and r=6 (nodes 4, 9).
	// Node 2 was informed at r=3.
	nd := newTestNode(t, 2, 12, 8)
	nd.p2init = true
	nd.informed = true
	nd.r0 = 3
	nd.roster = []rosterEntry{
		{id: 5, r: 3}, {id: 7, r: 3}, {id: 2, r: 3},
		{id: 4, r: 6}, {id: 9, r: 6},
	}
	nd.initPhase3()
	if nd.clusterSize != 3 {
		t.Errorf("clusterSize = %d, want 3", nd.clusterSize)
	}
	if nd.isMediator {
		t.Error("node 2 (r=3) elected mediator; the r=6 cluster is later")
	}
}

func TestMediatorElectionSmallestIDInLatestCluster(t *testing.T) {
	roster := []rosterEntry{
		{id: 5, r: 3}, {id: 7, r: 3},
		{id: 4, r: 6}, {id: 9, r: 6},
	}
	// Node 4: in the latest cluster (r=6), smallest id -> mediator.
	nd := newTestNode(t, 4, 12, 8)
	nd.p2init, nd.informed, nd.r0 = true, true, 6
	nd.roster = append([]rosterEntry(nil), roster...)
	nd.initPhase3()
	if !nd.isMediator {
		t.Error("node 4 should be mediator")
	}
	if len(nd.medClusters) != 2 {
		t.Fatalf("mediator tracks %d clusters, want 2", len(nd.medClusters))
	}
	// Descending r order.
	if nd.medClusters[0].r != 6 || nd.medClusters[1].r != 3 {
		t.Errorf("mediator cluster order = [%d, %d], want [6, 3]", nd.medClusters[0].r, nd.medClusters[1].r)
	}
	if len(nd.medClusters[0].members) != 2 || !nd.medClusters[0].members[9] {
		t.Errorf("latest cluster members = %v", nd.medClusters[0].members)
	}

	// Node 9: same cluster but larger id -> not mediator.
	nd9 := newTestNode(t, 9, 12, 8)
	nd9.p2init, nd9.informed, nd9.r0 = true, true, 6
	nd9.roster = append([]rosterEntry(nil), roster...)
	nd9.initPhase3()
	if nd9.isMediator {
		t.Error("node 9 should not be mediator (node 4 is smaller)")
	}
}

func TestSourceSkipsCensusDerivation(t *testing.T) {
	nd := newTestNode(t, 0, 12, 8)
	nd.initPhase2()
	nd.initPhase3()
	if nd.isMediator || nd.clusterSize != 0 {
		t.Error("source must not join the census")
	}
}

func TestPhaseFourClusterOrdering(t *testing.T) {
	nd := newTestNode(t, 1, 12, 8)
	nd.collected = []infCluster{{r: 2, ch: 0, size: 1}, {r: 9, ch: 1, size: 2}, {r: 5, ch: 2, size: 1}}
	nd.initPhase4()
	if nd.collected[0].r != 9 || nd.collected[1].r != 5 || nd.collected[2].r != 2 {
		t.Errorf("collected order = %v, want descending r", nd.collected)
	}
	if nd.acc != int64(0) {
		t.Errorf("initial aggregate = %v, want leaf value", nd.acc)
	}
}

func TestStartStepAdvancesCompletedCluster(t *testing.T) {
	nd := newTestNode(t, 1, 12, 8)
	nd.p2init, nd.informed, nd.r0 = true, true, 2
	nd.collected = []infCluster{{r: 9, ch: 1, size: 2}, {r: 5, ch: 2, size: 1}}
	nd.initPhase4()
	nd.got = 2 // cluster (9) fully collected
	nd.startStep()
	if nd.idx != 1 || nd.got != 0 {
		t.Errorf("after advance idx=%d got=%d, want idx=1 got=0", nd.idx, nd.got)
	}
	if nd.done {
		t.Error("node done while a cluster remains")
	}
}

func TestStartStepTerminatesSenderAfterAck(t *testing.T) {
	nd := newTestNode(t, 1, 12, 8)
	nd.p2init, nd.informed, nd.r0 = true, true, 2
	nd.initPhase4()
	nd.ownSent = true
	nd.startStep()
	if !nd.done {
		t.Error("acked non-mediator sender should terminate")
	}
}

func TestStartStepKeepsMediatorAlive(t *testing.T) {
	nd := newTestNode(t, 1, 12, 8)
	nd.p2init, nd.informed, nd.r0 = true, true, 6
	nd.isMediator = true
	nd.medClusters = []medCluster{{r: 6, members: map[sim.NodeID]bool{1: true, 3: true}}}
	nd.medAcked = map[sim.NodeID]bool{}
	nd.initPhase4()
	nd.ownSent = true
	nd.startStep()
	if nd.done {
		t.Error("mediator with pending clusters must stay alive after its own ack")
	}
	// Once the cluster queue drains the mediator may leave.
	nd.medIdx = 1
	nd.startStep()
	if !nd.done {
		t.Error("mediator with drained queue should terminate")
	}
}

func TestSourceTerminatesWhenCollectingDone(t *testing.T) {
	nd := newTestNode(t, 0, 12, 8)
	nd.initPhase2()
	nd.initPhase4()
	nd.startStep() // no clusters at all
	if !nd.done {
		t.Error("source with nothing to collect should terminate")
	}
}

func TestPhaseOneLengthMatchesCogcastBound(t *testing.T) {
	if PhaseOneLength(128, 16, 4, 2) < PhaseOneLength(128, 16, 4, 1) {
		t.Error("phase-one length must grow with kappa")
	}
	if PhaseOneLength(1, 4, 2, 1) != 1 {
		t.Error("degenerate single-node length should be 1")
	}
}
