package cogcomp_test

import (
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
)

// TestCheckedAggregationMatchesUnchecked pins that attaching the invariant
// oracle (slot re-verification, tree/census checks, aggregate ground truth)
// neither perturbs nor fails a healthy COGCOMP run.
func TestCheckedAggregationMatchesUnchecked(t *testing.T) {
	const n, c, k = 40, 6, 2
	asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	funcs := []aggfunc.Func{aggfunc.Sum{}, aggfunc.Min{}, aggfunc.Stats{}, aggfunc.Collect{}}
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64(3*i - 17)
	}
	for _, f := range funcs {
		t.Run(f.Name(), func(t *testing.T) {
			plain, err := cogcomp.Run(asn, 0, inputs, 5, cogcomp.Config{Func: f})
			if err != nil {
				t.Fatal(err)
			}
			checked, err := cogcomp.Run(asn, 0, inputs, 5, cogcomp.Config{Func: f, Check: true})
			if err != nil {
				t.Fatalf("checked run failed: %v", err)
			}
			if !reflect.DeepEqual(plain, checked) {
				t.Errorf("checked result diverges from unchecked:\n  plain:   %+v\n  checked: %+v", plain, checked)
			}
		})
	}
}

// TestCheckedSession pins the oracle on the multi-round session path,
// including per-round aggregate ground truth.
func TestCheckedSession(t *testing.T) {
	const n, c, k = 32, 6, 2
	asn, err := assign.SharedCore(n, c, k, 18, assign.LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([][]int64, 3)
	for r := range rounds {
		rounds[r] = make([]int64, n)
		for i := range rounds[r] {
			rounds[r][i] = int64(r*100 + i)
		}
	}
	var arena cogcomp.Arena
	arena.SetCheck(true)
	res, err := arena.RunRounds(asn, 0, rounds, 7, cogcomp.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rounds {
		want := aggfunc.Fold(aggfunc.Sum{}, rounds[r])
		if res.Values[r] != want {
			t.Errorf("round %d: value %v, want %v", r, res.Values[r], want)
		}
	}
}
