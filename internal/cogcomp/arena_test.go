package cogcomp_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
)

func trialInputs(n int, shift int64) []int64 {
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64(i) + shift
	}
	return inputs
}

// TestArenaMatchesFresh is the reuse-vs-fresh equivalence test for COGCOMP:
// a warm arena cycling through trials of varying seeds and shapes must
// reproduce every fresh Run result exactly — aggregate, phase breakdown,
// tree, mediators.
func TestArenaMatchesFresh(t *testing.T) {
	arena := &cogcomp.Arena{}
	shapes := []struct{ n, c, k int }{
		{16, 6, 2},
		{8, 4, 2},
		{24, 6, 3},
	}
	for trial := 0; trial < 6; trial++ {
		sh := shapes[trial%len(shapes)]
		seed := int64(300 + trial)
		asn, err := assign.Partitioned(sh.n, sh.c, sh.k, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		inputs := trialInputs(sh.n, int64(trial))
		want, wantErr := cogcomp.Run(asn, 0, inputs, seed, cogcomp.Config{})
		got, gotErr := arena.Run(asn, 0, inputs, seed, cogcomp.Config{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: fresh %v, arena %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Value != want.Value || got.TotalSlots != want.TotalSlots ||
			got.Phase4Slots != want.Phase4Slots || got.Mediators != want.Mediators ||
			got.MaxMessageSize != want.MaxMessageSize ||
			got.InformedAfterPhase1 != want.InformedAfterPhase1 {
			t.Fatalf("trial %d: arena result %+v != fresh %+v", trial, got, want)
		}
		for i := range want.Parents {
			if got.Parents[i] != want.Parents[i] {
				t.Fatalf("trial %d node %d: parent %d != %d", trial, i, got.Parents[i], want.Parents[i])
			}
		}
	}
}

// TestArenaSessionMatchesFresh covers the multi-round session path: warm
// arena sessions must match fresh RunRounds round for round.
func TestArenaSessionMatchesFresh(t *testing.T) {
	arena := &cogcomp.Arena{}
	const n = 16
	for trial := 0; trial < 3; trial++ {
		seed := int64(40 + trial)
		asn, err := assign.SharedCore(n, 6, 2, 18, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		rounds := make([][]int64, 4)
		for r := range rounds {
			rounds[r] = trialInputs(n, int64(r*10+trial))
		}
		want, wantErr := cogcomp.RunRounds(asn, 0, rounds, seed, cogcomp.SessionConfig{})
		got, gotErr := arena.RunRounds(asn, 0, rounds, seed, cogcomp.SessionConfig{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: fresh %v, arena %v", trial, wantErr, gotErr)
		}
		if got.TotalSlots != want.TotalSlots || got.SetupSlots != want.SetupSlots {
			t.Fatalf("trial %d: slots (%d,%d) != fresh (%d,%d)", trial,
				got.TotalSlots, got.SetupSlots, want.TotalSlots, want.SetupSlots)
		}
		for r := range want.Values {
			if got.Values[r] != want.Values[r] || got.Complete[r] != want.Complete[r] ||
				got.FinishSteps[r] != want.FinishSteps[r] {
				t.Fatalf("trial %d round %d: (%v,%v,%d) != fresh (%v,%v,%d)", trial, r,
					got.Values[r], got.Complete[r], got.FinishSteps[r],
					want.Values[r], want.Complete[r], want.FinishSteps[r])
			}
		}
	}
}
