package cogcomp

import (
	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/sim"
)

// initPayload is the body of the INIT message the source disseminates with
// COGCAST in phase one.
type initPayload struct{}

// censusMsg is the phase-two message ⟨u, r⟩: node u announces on its
// informed channel that it was first informed in slot r. From the stream of
// winning censusMsgs every node on the channel reconstructs the channel's
// full roster, which yields both cluster sizes and the mediator election.
type censusMsg struct {
	ID sim.NodeID
	R  int
}

// rewindMsg is the phase-three message: a member of cluster (r, c) reports
// the cluster's size while the schedule of phase one is replayed backwards,
// so the cluster's informer learns that the cluster exists and how big it is.
type rewindMsg struct {
	R    int
	Size int
}

// announceMsg is slot one of a phase-four step: the channel's mediator
// announces that cluster (r', c) should send now.
type announceMsg struct {
	R int
}

// valueMsg is slot two of a phase-four step: a sender in cluster (r, c)
// passes its aggregated subtree value to its parent. R lets co-channel
// informers attribute the message to the right cluster; Sender is echoed in
// the ack.
type valueMsg struct {
	R      int
	Sender sim.NodeID
	Agg    aggfunc.Value
}

// ackMsg is slot three of a phase-four step: the receiving informer echoes
// the identity of the sender whose value it just accepted. The named sender
// may terminate; the mediator uses the ack stream to decide when a cluster
// is fully aggregated.
type ackMsg struct {
	ID sim.NodeID
}
