package cogcomp_test

import (
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/invariant"
)

// TestSparseMatchesDense is COGCOMP's sparse-vs-dense equivalence test: with
// event-driven stepping the census window and phase-four holding patterns
// are mostly skipped, yet every observable — aggregate, slot counts, phase
// breakdown, tree, mediators, message sizes — must match the dense run
// exactly, across topologies, aggregate functions and seeds.
func TestSparseMatchesDense(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(seed int64) (*assign.Static, error)
	}{
		{"partitioned", func(seed int64) (*assign.Static, error) {
			return assign.Partitioned(24, 6, 3, assign.LocalLabels, seed)
		}},
		{"shared-core", func(seed int64) (*assign.Static, error) {
			return assign.SharedCore(16, 6, 2, 18, assign.LocalLabels, seed)
		}},
		{"full-overlap", func(seed int64) (*assign.Static, error) {
			return assign.FullOverlap(12, 4, assign.GlobalLabels, seed)
		}},
	}
	funcs := []aggfunc.Func{aggfunc.Sum{}, aggfunc.Min{}, aggfunc.Collect{}}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				seed := int64(500 + trial)
				asn, err := sh.mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				inputs := trialInputs(asn.Nodes(), int64(trial))
				f := funcs[trial%len(funcs)]
				want, wantErr := cogcomp.Run(asn, 0, inputs, seed, cogcomp.Config{Func: f})
				got, gotErr := cogcomp.Run(asn, 0, inputs, seed, cogcomp.Config{Func: f, Sparse: true})
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("trial %d: error mismatch: dense %v, sparse %v", trial, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !invariant.AggEqual(got.Value, want.Value) {
					t.Fatalf("trial %d: sparse value %v != dense %v", trial, got.Value, want.Value)
				}
				if got.TotalSlots != want.TotalSlots || got.Complete != want.Complete ||
					got.Phase1Slots != want.Phase1Slots || got.Phase2Slots != want.Phase2Slots ||
					got.Phase3Slots != want.Phase3Slots || got.Phase4Slots != want.Phase4Slots ||
					got.InformedAfterPhase1 != want.InformedAfterPhase1 ||
					got.MaxMessageSize != want.MaxMessageSize || got.Mediators != want.Mediators {
					t.Fatalf("trial %d: sparse result %+v != dense %+v", trial, got, want)
				}
				for i := range want.Parents {
					if got.Parents[i] != want.Parents[i] {
						t.Fatalf("trial %d node %d: sparse parent %d != dense %d", trial, i, got.Parents[i], want.Parents[i])
					}
				}
			}
		})
	}
}

// TestSparseSessionMatchesDense covers the multi-round session path: parked
// round-finished nodes must wake exactly at round boundaries, reproducing
// the dense session value for value, completion flag and finish step.
func TestSparseSessionMatchesDense(t *testing.T) {
	const n = 16
	for trial := 0; trial < 3; trial++ {
		seed := int64(60 + trial)
		asn, err := assign.SharedCore(n, 6, 2, 18, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		rounds := make([][]int64, 4)
		for r := range rounds {
			rounds[r] = trialInputs(n, int64(r*10+trial))
		}
		want, wantErr := cogcomp.RunRounds(asn, 0, rounds, seed, cogcomp.SessionConfig{})
		got, gotErr := cogcomp.RunRounds(asn, 0, rounds, seed, cogcomp.SessionConfig{Sparse: true})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: dense %v, sparse %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.TotalSlots != want.TotalSlots || got.SetupSlots != want.SetupSlots {
			t.Fatalf("trial %d: sparse slots (%d,%d) != dense (%d,%d)", trial,
				got.TotalSlots, got.SetupSlots, want.TotalSlots, want.SetupSlots)
		}
		for r := range want.Values {
			if !invariant.AggEqual(got.Values[r], want.Values[r]) || got.Complete[r] != want.Complete[r] ||
				got.FinishSteps[r] != want.FinishSteps[r] {
				t.Fatalf("trial %d round %d: sparse (%v,%v,%d) != dense (%v,%v,%d)", trial, r,
					got.Values[r], got.Complete[r], got.FinishSteps[r],
					want.Values[r], want.Complete[r], want.FinishSteps[r])
			}
		}
	}
}
