package cogcomp_test

import (
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
)

func roundsFor(n, rounds int, seed int64) [][]int64 {
	out := make([][]int64, rounds)
	for r := range out {
		out[r] = make([]int64, n)
		for i := range out[r] {
			out[r][i] = int64((seed+int64(r*31+i*7))%200) - 100
		}
	}
	return out
}

func TestSessionMultipleRoundsExact(t *testing.T) {
	const n, roundCount = 32, 4
	asn, err := assign.SharedCore(n, 8, 2, 24, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	rounds := roundsFor(n, roundCount, 1)
	res, err := cogcomp.RunRounds(asn, 0, rounds, 1, cogcomp.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != roundCount {
		t.Fatalf("got %d round values, want %d", len(res.Values), roundCount)
	}
	for r := range rounds {
		want := aggfunc.Fold(aggfunc.Sum{}, rounds[r])
		if res.Values[r] != want {
			t.Errorf("round %d: aggregate %v, want %v", r, res.Values[r], want)
		}
		if !res.Complete[r] {
			t.Errorf("round %d incomplete", r)
		}
	}
}

func TestSessionAmortizesSetup(t *testing.T) {
	// The point of a session: r rounds cost setup + r·window, not
	// r·(setup + window). Verify the accounting and that the session
	// total beats r independent runs.
	const n, roundCount = 48, 5
	asn, err := assign.Partitioned(n, 8, 2, assign.LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	rounds := roundsFor(n, roundCount, 2)
	res, err := cogcomp.RunRounds(asn, 0, rounds, 2, cogcomp.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSlots > res.SetupSlots+roundCount*res.RoundSlots+3 {
		t.Errorf("session %d slots exceeds setup %d + %d rounds × %d", res.TotalSlots, res.SetupSlots, roundCount, res.RoundSlots)
	}
	// Independent runs pay setup every time.
	independent := 0
	for r := range rounds {
		single, err := cogcomp.Run(asn, 0, rounds[r], 2, cogcomp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		independent += single.TotalSlots
	}
	perRoundSession := float64(res.TotalSlots) / roundCount
	perRoundIndependent := float64(independent) / roundCount
	if perRoundSession >= perRoundIndependent {
		t.Logf("session per-round %.1f vs independent %.1f (window padding can exceed savings at small n; informational)", perRoundSession, perRoundIndependent)
	}
}

func TestSessionDifferentAggregates(t *testing.T) {
	const n = 20
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	rounds := roundsFor(n, 3, 3)
	res, err := cogcomp.RunRounds(asn, 0, rounds, 3, cogcomp.SessionConfig{Func: aggfunc.Max{}})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rounds {
		want := aggfunc.Fold(aggfunc.Max{}, rounds[r])
		if res.Values[r] != want {
			t.Errorf("round %d: max %v, want %v", r, res.Values[r], want)
		}
	}
}

func TestSessionSingleRound(t *testing.T) {
	const n = 16
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds := roundsFor(n, 1, 4)
	res, err := cogcomp.RunRounds(asn, 0, rounds, 4, cogcomp.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := aggfunc.Fold(aggfunc.Sum{}, rounds[0]); res.Values[0] != want {
		t.Errorf("aggregate %v, want %v", res.Values[0], want)
	}
}

func TestSessionValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cogcomp.RunRounds(asn, 9, roundsFor(4, 1, 1), 1, cogcomp.SessionConfig{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := cogcomp.RunRounds(asn, 0, nil, 1, cogcomp.SessionConfig{}); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := cogcomp.RunRounds(asn, 0, [][]int64{{1, 2}}, 1, cogcomp.SessionConfig{}); err == nil {
		t.Error("short round accepted")
	}
}

func TestSessionTightWindowReportsIncomplete(t *testing.T) {
	// A one-step round window cannot finish a 24-node aggregation; the
	// session must say so rather than return stale values silently.
	const n = 24
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.RunRounds(asn, 0, roundsFor(n, 2, 5), 5, cogcomp.SessionConfig{RoundSteps: 1})
	if err == nil {
		t.Fatal("starved session reported success")
	}
	if res == nil {
		t.Fatal("starved session should still return partial results")
	}
	for r, ok := range res.Complete {
		if ok {
			t.Errorf("round %d complete within a 1-step window", r)
		}
	}
}

func TestSessionManyRoundsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n, roundCount = 64, 12
	asn, err := assign.SharedCore(n, 8, 2, 24, assign.LocalLabels, 6)
	if err != nil {
		t.Fatal(err)
	}
	rounds := roundsFor(n, roundCount, 6)
	res, err := cogcomp.RunRounds(asn, 0, rounds, 6, cogcomp.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rounds {
		if want := aggfunc.Fold(aggfunc.Sum{}, rounds[r]); res.Values[r] != want {
			t.Fatalf("round %d: %v != %v", r, res.Values[r], want)
		}
	}
}
