package cogcomp

import (
	"errors"
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
)

// A session amortizes COGCOMP's setup: the distribution tree, census and
// informer structures (phases one to three) are built once, and phase four
// — the only part that touches the data — is re-run once per reporting
// round with fresh inputs. Rounds occupy fixed windows of RoundSteps steps
// so all nodes agree on the boundaries; Theorem 10's induction gives
// r_l <= n + l steps, so the default window n + l + margin always suffices
// in the collision model.
//
// This is an extension of the paper (experiment E25): the paper's practical
// motivation — periodic quality-of-service snapshots — implies repeated
// aggregations over a static network, where paying the Θ((c/k)lg n) tree
// construction once instead of every round is the natural engineering move.

// SessionConfig configures a multi-round run.
type SessionConfig struct {
	// Kappa scales phase one (0 = cogcast.DefaultKappa).
	Kappa float64
	// Func is the aggregate (nil = aggfunc.Sum).
	Func aggfunc.Func
	// RoundSteps is the per-round step window (0 = n + l + 16).
	RoundSteps int
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines (sim.WithShards). Results are byte-identical at any value;
	// 0 or 1 means serial.
	Shards int
	// Sparse enables event-driven stepping (sim.WithSparse); see
	// Config.Sparse. Round-finished nodes sleep to the next round boundary
	// and phase-four holding patterns park, so a session's cost tracks its
	// traffic rather than n·slots.
	Sparse bool
}

// SessionResult reports a multi-round aggregation.
type SessionResult struct {
	// Values[r] is the source's aggregate for round r.
	Values []aggfunc.Value
	// Complete[r] reports whether round r finished within its window.
	Complete []bool
	// TotalSlots is the whole session's slot count.
	TotalSlots int
	// SetupSlots is the phases 1-3 cost paid once (2l + n).
	SetupSlots int
	// RoundSlots is the fixed per-round window in slots (3·RoundSteps).
	RoundSlots int
	// FinishSteps[r] is the step within round r at which the source had
	// collected everything (-1 if the round ran out of window) — the signal
	// for tuning RoundSteps in subsequent sessions.
	FinishSteps []int
}

// RunRounds executes a session: rounds[r][v] is node v's input in round r.
// The assignment must be static. Every round's aggregate is computed over
// the same distribution tree. Repeated callers should prefer a reusable
// Arena; this convenience builds a fresh one per call.
func RunRounds(asn sim.Assignment, source sim.NodeID, rounds [][]int64, seed int64, cfg SessionConfig) (*SessionResult, error) {
	return new(Arena).RunRounds(asn, source, rounds, seed, cfg)
}

// RunRounds executes a session exactly as the package-level RunRounds does,
// reusing the arena's nodes and engine. The returned result's Values,
// Complete and FinishSteps slices alias per-node session backing that the
// arena's next execution reuses; callers that retain them across trials must
// copy.
func (a *Arena) RunRounds(asn sim.Assignment, source sim.NodeID, rounds [][]int64, seed int64, cfg SessionConfig) (*SessionResult, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("cogcomp: source %d outside [0,%d)", source, n)
	}
	if len(rounds) == 0 {
		return nil, errors.New("cogcomp: session needs at least one round")
	}
	for r, inputs := range rounds {
		if len(inputs) != n {
			return nil, fmt.Errorf("cogcomp: round %d has %d inputs for %d nodes", r, len(inputs), n)
		}
	}
	kappa := cfg.Kappa
	if kappa == 0 {
		kappa = cogcast.DefaultKappa
	}
	f := cfg.Func
	if f == nil {
		f = aggfunc.Sum{}
	}
	l := PhaseOneLength(n, asn.PerNode(), asn.MinOverlap(), kappa)
	roundSteps := cfg.RoundSteps
	if roundSteps == 0 {
		roundSteps = n + l + 16
	}

	a.engOpts = a.engOpts[:0]
	if cfg.Shards > 1 {
		a.engOpts = append(a.engOpts, sim.WithShards(cfg.Shards))
	}
	if cfg.Sparse {
		a.engOpts = append(a.engOpts, sim.WithSparse())
	}
	if a.forceCheck {
		if err := invariant.CheckAssignment(asn, 0); err != nil {
			return nil, fmt.Errorf("cogcomp: %w", err)
		}
		if a.checker == nil {
			a.checker = new(invariant.Checker)
		}
		a.checker.Reset(asn, sim.UniformWinner)
		a.engOpts = append(a.engOpts, sim.WithObserver(a.checker))
	}
	if err := a.build(asn, source, n, l, func(i int) int64 { return rounds[0][i] }, f, seed, a.engOpts, nil); err != nil {
		return nil, err
	}
	nodes := a.nodes
	dormant := a.eng.Sparse()
	for i, nd := range nodes {
		nd.SetDormant(dormant)
		for r := range rounds {
			nd.rounds = append(nd.rounds, rounds[r][i])
		}
		nd.roundSteps = roundSteps
		if sim.NodeID(i) == source {
			for r := 0; r < len(rounds); r++ {
				nd.results = append(nd.results, nil)
				nd.completeRound = append(nd.completeRound, false)
				nd.finishSteps = append(nd.finishSteps, -1)
			}
		}
	}
	setup := 2*l + n
	budget := setup + 3*roundSteps*len(rounds) + 3
	total, err := a.eng.Run(budget)
	if err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}

	src := nodes[source]
	res := &SessionResult{
		Values:      src.results,
		Complete:    src.completeRound,
		TotalSlots:  total,
		SetupSlots:  setup,
		RoundSlots:  3 * roundSteps,
		FinishSteps: src.finishSteps,
	}
	if a.forceCheck {
		if err := a.checker.Err(); err != nil {
			return nil, fmt.Errorf("cogcomp: slot oracle (%d violations): %w", a.checker.Violations(), err)
		}
		for r := range res.Values {
			if !res.Complete[r] {
				continue
			}
			if want := aggfunc.Fold(f, rounds[r]); !invariant.AggEqual(res.Values[r], want) {
				return nil, fmt.Errorf("cogcomp: round %d aggregate %v diverges from ground truth %v (%s over n=%d)",
					r, res.Values[r], want, f.Name(), n)
			}
		}
	}
	for r := range res.Complete {
		if !res.Complete[r] {
			return res, fmt.Errorf("cogcomp: round %d incomplete within its %d-step window", r, roundSteps)
		}
	}
	return res, nil
}
