// Package cogcomp implements COGCOMP, the data-aggregation protocol of
// Section 5. A designated source learns the aggregate of every node's input
// in O((c/k)·max{1,c/n}·lg n + n) slots w.h.p. (Theorem 10).
//
// The protocol has four phases, all driven off the global slot number:
//
//	Phase 1 [0, l):        COGCAST disseminates INIT; each node records its
//	                       full action log. The "first informed by" relation
//	                       implicitly builds a distribution tree.
//	Phase 2 [l, l+n):      census. Each non-source node broadcasts ⟨id, r⟩
//	                       on the channel where it was informed until it
//	                       succeeds, then listens. Everyone on a channel
//	                       learns the channel's roster: cluster sizes and
//	                       the mediator (smallest id in the latest cluster).
//	Phase 3 [l+n, 2l+n):   rewind. Phase one is replayed backwards; cluster
//	                       members report their cluster's size, so each
//	                       informer learns which clusters it created.
//	Phase 4 [2l+n, ...):   mediated convergecast in 3-slot steps: the
//	                       mediator announces a cluster, one member passes
//	                       its subtree aggregate to its parent, the parent
//	                       acks. O(n) steps total.
//
// Phases 2–4 are fully deterministic given the phase-1 transcript — the
// only randomness in COGCOMP is COGCAST's channel hopping.
package cogcomp

import (
	"sort"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

// rosterEntry is one observed phase-two success on the node's channel.
type rosterEntry struct {
	id sim.NodeID
	r  int
}

// medCluster is a cluster on the mediator's channel, with full membership
// (reconstructed from the phase-two roster).
type medCluster struct {
	r       int
	members map[sim.NodeID]bool
}

// infCluster is a cluster this node informed (learned in phase three).
type infCluster struct {
	r    int // phase-one slot in which the cluster was informed
	ch   int // local channel index the informing broadcast used
	size int
}

// Node is one COGCOMP participant. It implements sim.Protocol.
type Node struct {
	id     sim.NodeID
	n      int
	l      int // phase-one length
	source bool
	f      aggfunc.Func
	input  int64

	cast *cogcast.Node

	p2start, p3start, p4start int

	// p3base is the slot phase three's rewind is anchored at. It equals
	// p3start classically; the recovery supervisor moves it forward when it
	// re-executes the rewind (RetryRewind), so that slots before the new
	// base map to out-of-range rewound indices and the node idles.
	p3base int
	// holdUntil makes the node idle in every slot before it (recovery
	// backoff gaps). Zero classically, so the guard never fires.
	holdUntil int

	// Captured from the embedded COGCAST node when phase two begins.
	p2init   bool
	informed bool
	r0       int // slot of first information (-1 for source/uninformed)
	ch0      int // local channel index of the informed channel
	parent   sim.NodeID

	// Phase two state. rosterSeen is a NodeID-indexed bitmap mirroring
	// roster membership: the census delivers Θ(m²) entries per channel
	// (m = channel members), so the duplicate check must not scan the
	// roster per delivery.
	censusDone bool
	roster     []rosterEntry
	rosterSeen []uint64

	// Derived at the start of phase three.
	p3init      bool
	clusterSize int
	isMediator  bool
	medClusters []medCluster // descending r

	// Phase three harvest.
	collected []infCluster

	// Phase four state.
	p4init       bool
	acc          aggfunc.Value
	idx          int        // current cluster being collected
	got          int        // values received for collected[idx]
	pendingAck   sim.NodeID // sender to ack in slot three
	pendingAckCh int        // local channel the pending ack goes out on
	announced    int        // r' heard (or self-announced) this step
	ownSent      bool       // this node's value was acked by its parent
	medIdx       int        // current mediator cluster
	medAcked     map[sim.NodeID]bool
	// mergedFrom records every sender whose value this node merged, across
	// the whole round. A duplicate value (resent because the sender missed
	// its ack under faults) is re-acked without re-merging — the "no
	// duplicate contribution" recovery invariant. Cleared per round.
	mergedFrom  []sim.NodeID
	mergesTotal int // monotone merge counter (recovery progress metric)

	maxMsgSize int
	done       bool

	// dormant enables dormancy hints on the node's idle and holding-pattern
	// actions (see SetDormant). Off by default: hints cost a few branches
	// and only a sparse engine consumes them.
	dormant bool

	// Multi-round session state (see session.go). roundSteps == 0 means the
	// classic single-round protocol.
	rounds        []int64 // per-round inputs; index 0 == input
	roundSteps    int     // steps per round
	round         int
	roundFinished bool
	results       []aggfunc.Value // source only: aggregate per round
	completeRound []bool          // source only: round finished in budget
	finishSteps   []int           // source only: step within round at finish
	stepInRound   int
}

var _ sim.Protocol = (*Node)(nil)

// New creates a COGCOMP node. All nodes must agree on n (the network size)
// and phase1Len (computed with PhaseOneLength). input is the node's datum;
// f the associative aggregate to compute. The source initiates the
// broadcast and ultimately holds the network-wide aggregate.
func New(view sim.NodeView, source bool, n, phase1Len int, input int64, f aggfunc.Func, seed int64) *Node {
	nd := &Node{}
	nd.Reinit(view, source, n, phase1Len, input, f, seed)
	return nd
}

// Reinit re-initializes the node exactly as New would, but reuses the
// embedded COGCAST node (including its random source and record log) and the
// phase-state slice backings, so trial arenas can rebuild a network without
// per-node allocations. A reinitialized node is draw-for-draw identical to a
// fresh one.
func (nd *Node) Reinit(view sim.NodeView, source bool, n, phase1Len int, input int64, f aggfunc.Func, seed int64) {
	cast := nd.cast
	if cast == nil {
		cast = cogcast.New(view, source, initPayload{}, seed, cogcast.WithRecording())
	} else {
		cast.Reinit(view, source, initPayload{}, seed, cogcast.WithRecording())
	}
	*nd = Node{
		id:          view.ID(),
		n:           n,
		l:           phase1Len,
		source:      source,
		f:           f,
		input:       input,
		cast:        cast,
		dormant:     nd.dormant,
		p2start:     phase1Len,
		p3start:     phase1Len + n,
		p3base:      phase1Len + n,
		p4start:     2*phase1Len + n,
		r0:          -1,
		parent:      sim.None,
		pendingAck:  sim.None,
		announced:   -1,
		roster:      nd.roster[:0],
		rosterSeen:  nd.rosterSeen[:0],
		medClusters: nd.medClusters[:0],
		collected:   nd.collected[:0],
		mergedFrom:  nd.mergedFrom[:0],
		// Session backings survive too; RunRounds refills them per session.
		rounds:        nd.rounds[:0],
		results:       nd.results[:0],
		completeRound: nd.completeRound[:0],
		finishSteps:   nd.finishSteps[:0],
	}
}

// PhaseOneLength returns the phase-one slot count all nodes must share:
// COGCAST's theoretical bound for the network parameters.
func PhaseOneLength(n, c, k int, kappa float64) int {
	return cogcast.SlotBound(n, c, k, kappa)
}

// Step implements sim.Protocol.
func (nd *Node) Step(slot int) sim.Action {
	if slot < nd.holdUntil {
		return sim.Idle() // recovery backoff gap
	}
	switch {
	case slot < nd.p2start:
		return nd.cast.Step(slot)
	case slot < nd.p3start:
		nd.initPhase2()
		return nd.stepPhase2(slot)
	case slot < nd.p4start:
		nd.initPhase3()
		return nd.stepPhase3(slot)
	default:
		nd.initPhase4()
		return nd.stepPhase4(slot)
	}
}

// Deliver implements sim.Protocol.
func (nd *Node) Deliver(slot int, ev sim.Event) {
	switch {
	case slot < nd.p2start:
		nd.cast.Deliver(slot, ev)
	case slot < nd.p3start:
		nd.deliverPhase2(ev)
	case slot < nd.p4start:
		nd.deliverPhase3(slot, ev)
	default:
		nd.deliverPhase4(slot, ev)
	}
}

// Done implements sim.Protocol.
func (nd *Node) Done() bool { return nd.done }

// SetDormant enables (or disables) dormancy hints on the node's idle and
// holding-pattern actions, for consumption by a sparse engine
// (sim.WithSparse). Hints never change the node's visible behavior — a
// dense engine ignores them — and every hint honors the Action.Sleep
// contract: the skipped Steps would have returned the same op, channel and
// message, mutated no state and drawn no randomness. The setting survives
// Reinit.
func (nd *Node) SetDormant(on bool) { nd.dormant = on }

// --- Phase 2: census -------------------------------------------------------

func (nd *Node) initPhase2() {
	if nd.p2init {
		return
	}
	nd.p2init = true
	nd.informed = nd.cast.Informed()
	nd.r0 = nd.cast.InformedSlot()
	nd.ch0 = nd.cast.InformedChannel()
	nd.parent = nd.cast.Parent()
	if !nd.source && !nd.informed {
		// The w.h.p. event failed for this node: it cannot participate in
		// aggregation. Withdraw; the run will be reported incomplete.
		nd.done = true
	}
}

func (nd *Node) stepPhase2(slot int) sim.Action {
	if nd.source || !nd.informed {
		// The source belongs to no cluster and needs no census. Idling
		// through the rest of the window is pure, so it carries a hint up
		// to (not across) the phase boundary — the waking Step runs
		// initPhase3.
		if k := nd.p3start - 1 - slot; nd.dormant && k > 0 {
			return sim.Sleep(k)
		}
		return sim.Idle()
	}
	if !nd.censusDone {
		return sim.Broadcast(nd.ch0, censusMsg{ID: nd.id, R: nd.r0})
	}
	// Census done: pure listening until the rewind. The park is quiet —
	// every census broadcast on the channel is still delivered (the roster
	// keeps filling) but none of it changes this node's behavior before
	// phase three, so the engine need not re-step it per delivery. Without
	// the quiet flag the drain would re-wake the channel's whole audience
	// every slot, making sparse census Θ(n·m) in steps instead of Θ(m²)
	// in deliveries.
	if k := nd.p3start - 1 - slot; nd.dormant && k > 0 {
		return sim.ParkListenQuiet(nd.ch0, k)
	}
	return sim.Listen(nd.ch0)
}

// inRoster reports whether the node already holds a census entry for id.
// Classically every id succeeds exactly once, so the lookup never finds a
// duplicate; under recovery a re-run census replays entries the node may
// already hold.
func (nd *Node) inRoster(id sim.NodeID) bool {
	w := int(id) >> 6
	return w < len(nd.rosterSeen) && nd.rosterSeen[w]&(1<<(uint(id)&63)) != 0
}

// addRoster appends a census entry and marks its id in the membership
// bitmap. The bitmap is sized lazily on first use per trial, reusing the
// backing kept by Reinit.
func (nd *Node) addRoster(id sim.NodeID, r int) {
	if len(nd.rosterSeen) == 0 {
		words := (nd.n + 63) >> 6
		if cap(nd.rosterSeen) < words {
			nd.rosterSeen = make([]uint64, words)
		} else {
			nd.rosterSeen = nd.rosterSeen[:words]
			clear(nd.rosterSeen)
		}
	}
	nd.roster = append(nd.roster, rosterEntry{id: id, r: r})
	nd.rosterSeen[int(id)>>6] |= 1 << (uint(id) & 63)
}

func (nd *Node) deliverPhase2(ev sim.Event) {
	switch ev.Kind {
	case sim.EvSendSucceeded:
		nd.censusDone = true
		if !nd.inRoster(nd.id) {
			nd.addRoster(nd.id, nd.r0)
		}
	case sim.EvSendFailed, sim.EvReceived:
		if m, ok := ev.Msg.(censusMsg); ok && !nd.inRoster(m.ID) {
			nd.addRoster(m.ID, m.R)
		}
	}
}

// --- Phase 3: rewind -------------------------------------------------------

func (nd *Node) initPhase3() {
	if nd.p3init {
		return
	}
	nd.p3init = true
	if nd.source || !nd.informed {
		return
	}
	// Cluster size: entries in the roster sharing this node's informed slot
	// (the node's own successful census is in the roster too).
	byR := make(map[int][]sim.NodeID)
	rmax := -1
	for _, e := range nd.roster {
		byR[e.r] = append(byR[e.r], e.id)
		if e.r > rmax {
			rmax = e.r
		}
	}
	nd.clusterSize = len(byR[nd.r0])
	// Mediator: smallest id in the latest cluster on this channel.
	if nd.r0 == rmax {
		min := nd.id
		for _, id := range byR[rmax] {
			if id < min {
				min = id
			}
		}
		nd.isMediator = min == nd.id
	}
	if nd.isMediator {
		rs := make([]int, 0, len(byR))
		for r := range byR {
			rs = append(rs, r)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(rs)))
		for _, r := range rs {
			members := make(map[sim.NodeID]bool, len(byR[r]))
			for _, id := range byR[r] {
				members[id] = true
			}
			nd.medClusters = append(nd.medClusters, medCluster{r: r, members: members})
		}
		nd.medAcked = make(map[sim.NodeID]bool)
	}
}

// rewoundSlot maps a phase-three slot to the phase-one slot it replays:
// phase-three slot i (0-based, counted from the rewind anchor p3base)
// rewinds phase-one slot p2start-1-i. Classically p3base == p3start and
// p2start == l, giving the paper's l-1-i; after a recovery retry the
// anchor moves so the whole (possibly extended) phase one replays again.
func (nd *Node) rewoundSlot(slot int) int {
	return nd.p2start - 1 - (slot - nd.p3base)
}

func (nd *Node) stepPhase3(slot int) sim.Action {
	j := nd.rewoundSlot(slot)
	recs := nd.cast.Records()
	if j < 0 || j >= len(recs) {
		return nd.idleRewind(slot, j)
	}
	rec := recs[j]
	switch {
	case rec.Op == sim.OpBroadcast && rec.SendSucceeded:
		// This node informed cluster (j, ch) — if the cluster is nonempty
		// its members report their size now.
		return sim.Listen(rec.Channel)
	case rec.Op == sim.OpListen && rec.FirstInformed:
		return sim.Broadcast(rec.Channel, rewindMsg{R: nd.r0, Size: nd.clusterSize})
	default:
		// Every other node retunes to the rewound channel but has no role;
		// staying off the air is observably identical and cheaper.
		return nd.idleRewind(slot, j)
	}
}

// idleRewind is a roleless phase-three slot: pure idling, so it carries a
// dormancy hint spanning the gap to the node's next acting rewound record.
func (nd *Node) idleRewind(slot, j int) sim.Action {
	if nd.dormant {
		if k := nd.rewindGap(slot, j); k > 0 {
			return sim.Sleep(k)
		}
	}
	return sim.Idle()
}

// rewindGap returns how many upcoming phase-three slots (after slot, whose
// rewound index is j) are roleless for this node: the rewind plays the log
// backwards, so the next acting slot replays the nearest earlier record in
// which the node successfully broadcast or was first informed. With no
// acting record left the gap runs to phase four — the waking Step then runs
// initPhase4, so the hint must not cross that boundary.
func (nd *Node) rewindGap(slot, j int) int {
	recs := nd.cast.Records()
	wake := nd.p4start
	for jj := min(j, len(recs)) - 1; jj >= 0; jj-- {
		rec := recs[jj]
		if (rec.Op == sim.OpBroadcast && rec.SendSucceeded) || (rec.Op == sim.OpListen && rec.FirstInformed) {
			wake = nd.p3base + (nd.p2start - 1 - jj)
			break
		}
	}
	return wake - slot - 1
}

func (nd *Node) deliverPhase3(slot int, ev sim.Event) {
	if ev.Kind != sim.EvReceived {
		return // cluster-mates' wins and own win carry no new information
	}
	m, ok := ev.Msg.(rewindMsg)
	if !ok {
		return
	}
	j := nd.rewoundSlot(slot)
	recs := nd.cast.Records()
	if j < 0 || j >= len(recs) {
		return
	}
	// An informer creates at most one cluster per phase-one slot, so r is a
	// unique key. Classically each slot rewinds once and the scan finds
	// nothing; a recovery retry replays the full rewind, so clusters the
	// node already collected come around again.
	for i := range nd.collected {
		if nd.collected[i].r == m.R {
			return
		}
	}
	nd.collected = append(nd.collected, infCluster{r: m.R, ch: recs[j].Channel, size: m.Size})
}

// --- Phase 4: mediated convergecast -----------------------------------------

func (nd *Node) initPhase4() {
	if nd.p4init {
		return
	}
	nd.p4init = true
	// Clusters are collected in descending slot order: children informed
	// later sit deeper in the section schedule and must aggregate first.
	sort.Slice(nd.collected, func(i, j int) bool { return nd.collected[i].r > nd.collected[j].r })
	nd.acc = nd.f.Leaf(nd.id, nd.input)
}

// mediatorActive reports whether the node's mediator duties have begun: a
// mediator runs as a normal node until it starts sending values to its
// parent (i.e. it has finished collecting), then coordinates its channel
// until every cluster there has been aggregated.
func (nd *Node) mediatorActive() bool {
	return nd.isMediator && nd.idx >= len(nd.collected) && nd.medIdx < len(nd.medClusters)
}

// startStep advances cluster pointers and recomputes the node's role at the
// first slot of each 3-slot step.
func (nd *Node) startStep() {
	nd.pendingAck = sim.None
	nd.announced = -1
	if nd.idx < len(nd.collected) && nd.got >= nd.collected[nd.idx].size {
		nd.idx++
		nd.got = 0
	}
	// Termination checks.
	if nd.idx >= len(nd.collected) {
		if nd.source {
			nd.finishRound()
			return
		}
		if nd.ownSent && !nd.mediatorActive() {
			nd.finishRound()
		}
	}
}

// finishRound marks the node's work in the current round complete. In the
// classic single-round protocol the node terminates; in a session it idles
// until the next round boundary, terminating only after the last round.
func (nd *Node) finishRound() {
	if nd.roundSteps == 0 {
		nd.done = true
		return
	}
	if !nd.roundFinished {
		nd.roundFinished = true
		if nd.source {
			nd.results[nd.round] = nd.acc
			nd.completeRound[nd.round] = true
			nd.finishSteps[nd.round] = nd.stepInRound
		}
	}
	if nd.round == len(nd.rounds)-1 {
		nd.done = true
	}
}

// resetRound re-arms the phase-four state machine for round r using the
// node's round-r input. The tree, census and informer structures from
// phases one to three are reused untouched — that is the whole point of a
// session.
func (nd *Node) resetRound(r int) {
	// Settle the previous round: its final ack may have landed in the
	// window's very last step, after that step's startStep already ran, so
	// re-check completion before declaring the round short.
	if nd.source && !nd.roundFinished && nd.round < len(nd.results) {
		if nd.idx < len(nd.collected) && nd.got >= nd.collected[nd.idx].size {
			nd.idx++
			nd.got = 0
		}
		nd.results[nd.round] = nd.acc
		if nd.idx >= len(nd.collected) {
			nd.completeRound[nd.round] = true
			nd.finishSteps[nd.round] = nd.roundSteps - 1
		}
	}
	if r >= len(nd.rounds) {
		// Past the final round: nothing left to do regardless of role.
		nd.done = true
		return
	}
	nd.round = r
	nd.roundFinished = false
	nd.idx = 0
	nd.got = 0
	nd.pendingAck = sim.None
	nd.announced = -1
	nd.ownSent = false
	nd.medIdx = 0
	nd.mergedFrom = nd.mergedFrom[:0] // each round re-merges every child
	if nd.isMediator {
		nd.medAcked = make(map[sim.NodeID]bool)
	}
	input := nd.input
	if r < len(nd.rounds) {
		input = nd.rounds[r]
	}
	nd.acc = nd.f.Leaf(nd.id, input)
}

func (nd *Node) stepPhase4(slot int) sim.Action {
	step := (slot - nd.p4start) / 3
	sub := (slot - nd.p4start) % 3
	if nd.roundSteps > 0 {
		if r := step / nd.roundSteps; r != nd.round {
			nd.resetRound(r)
			if nd.done {
				return sim.Idle()
			}
		}
		nd.stepInRound = step % nd.roundSteps
		if nd.roundFinished {
			// Idle until the next round boundary, whose Step runs
			// resetRound — the hint must wake the node exactly there.
			if k := nd.roundBoundary() - slot - 1; nd.dormant && k > 0 {
				return sim.Sleep(k)
			}
			return sim.Idle()
		}
	}
	if sub == 0 {
		nd.startStep()
		if nd.done || nd.roundFinished {
			return sim.Idle()
		}
	}
	receiver := nd.idx < len(nd.collected)
	switch sub {
	case 0:
		if nd.mediatorActive() {
			r := nd.medClusters[nd.medIdx].r
			nd.announced = r
			return sim.Broadcast(nd.ch0, announceMsg{R: r})
		}
		if receiver {
			return nd.wait(slot, nd.collected[nd.idx].ch)
		}
		return nd.wait(slot, nd.ch0) // sender awaiting its cluster's announcement
	case 1:
		if receiver {
			return nd.wait(slot, nd.collected[nd.idx].ch)
		}
		if !nd.ownSent && nd.announced == nd.r0 {
			msg := valueMsg{R: nd.r0, Sender: nd.id, Agg: nd.acc}
			if size := nd.f.Size(nd.acc); size > nd.maxMsgSize {
				nd.maxMsgSize = size
			}
			return sim.Broadcast(nd.ch0, msg)
		}
		return nd.wait(slot, nd.ch0)
	default:
		// A pending ack may also belong to a past cluster (duplicate
		// resend under faults); it always names its own channel.
		// Classically only the current receiver ever holds one, and
		// pendingAckCh is then collected[idx].ch — identical behavior.
		if nd.pendingAck != sim.None {
			return sim.Broadcast(nd.pendingAckCh, ackMsg{ID: nd.pendingAck})
		}
		if receiver {
			return nd.wait(slot, nd.collected[nd.idx].ch)
		}
		return nd.wait(slot, nd.ch0)
	}
}

// roundBoundary returns the first slot of the next session round.
func (nd *Node) roundBoundary() int {
	return nd.p4start + 3*nd.roundSteps*(nd.round+1)
}

// wait returns the Listen action for a phase-four holding pattern, carrying
// a dormancy hint when the wait is provably inert: every state change that
// could alter the node's next action arrives as a delivery on the very
// channel it is parked on (announcements, values, acks — all of which
// re-wake it), the skipped startStep resets are no-ops or unread until the
// first post-wake step re-runs them, and the promise stops at the next
// round boundary, whose resetRound is a real state change. Mediators drive
// the phase-four schedule and always run dense, and a pending ack breaks
// the pattern on the next sub-slot, so neither parks.
func (nd *Node) wait(slot, ch int) sim.Action {
	if nd.dormant && !nd.isMediator && nd.pendingAck == sim.None {
		if nd.roundSteps == 0 {
			return sim.ParkListen(ch, sim.Forever)
		}
		if k := nd.roundBoundary() - slot - 1; k > 0 {
			return sim.ParkListen(ch, k)
		}
	}
	return sim.Listen(ch)
}

func (nd *Node) deliverPhase4(slot int, ev sim.Event) {
	sub := (slot - nd.p4start) % 3
	switch sub {
	case 0:
		// Senders learn which cluster transmits this step.
		if m, ok := ev.Msg.(announceMsg); ok && ev.Kind == sim.EvReceived {
			nd.announced = m.R
		}
	case 1:
		if ev.Kind != sim.EvReceived {
			return // send success/failure resolves via the slot-three ack
		}
		m, ok := ev.Msg.(valueMsg)
		if !ok {
			return
		}
		for i := range nd.collected {
			if nd.collected[i].r != m.R {
				continue
			}
			if nd.hasMerged(m.Sender) {
				// Duplicate resend (the sender missed our earlier ack
				// under faults): re-ack without re-merging, so the
				// sender's value contributes exactly once.
				nd.pendingAck = m.Sender
				nd.pendingAckCh = nd.collected[i].ch
			} else if i == nd.idx {
				nd.acc = nd.f.Merge(nd.acc, m.Agg)
				nd.got++
				nd.mergedFrom = append(nd.mergedFrom, m.Sender)
				nd.mergesTotal++
				nd.pendingAck = m.Sender
				nd.pendingAckCh = nd.collected[i].ch
			}
			return
		}
	default:
		m, ok := ev.Msg.(ackMsg)
		if !ok || ev.Kind == sim.EvSendFailed {
			return
		}
		if m.ID == nd.id {
			nd.ownSent = true
		}
		if nd.mediatorActive() {
			cl := nd.medClusters[nd.medIdx]
			if cl.members[m.ID] && !nd.medAcked[m.ID] {
				nd.medAcked[m.ID] = true
				if len(nd.medAcked) == len(cl.members) {
					nd.medIdx++
					nd.medAcked = make(map[sim.NodeID]bool)
				}
			}
		}
	}
}

// --- Accessors ---------------------------------------------------------------

// Informed reports whether the node received INIT during phase one.
func (nd *Node) Informed() bool {
	if !nd.p2init {
		return nd.cast.Informed()
	}
	return nd.informed || nd.source
}

// Parent returns the node's parent in the distribution tree.
func (nd *Node) Parent() sim.NodeID {
	if !nd.p2init {
		return nd.cast.Parent()
	}
	return nd.parent
}

// InformedSlot returns the slot the node was first informed in, or -1.
func (nd *Node) InformedSlot() int {
	if !nd.p2init {
		return nd.cast.InformedSlot()
	}
	return nd.r0
}

// Aggregate returns the node's current partial aggregate (the network-wide
// aggregate, at the source, once the node is done).
func (nd *Node) Aggregate() aggfunc.Value { return nd.acc }

// ClusterSize returns the size of the node's own (r, c)-cluster as counted
// in phase two (zero for the source).
func (nd *Node) ClusterSize() int { return nd.clusterSize }

// IsMediator reports whether the node won the mediator election for its
// channel.
func (nd *Node) IsMediator() bool { return nd.isMediator }

// MaxMessageSize returns the largest value-message size (in abstract words)
// the node sent during phase four.
func (nd *Node) MaxMessageSize() int { return nd.maxMsgSize }

// InformerClusterCount returns how many clusters this node informed.
func (nd *Node) InformerClusterCount() int { return len(nd.collected) }

// --- Recovery hooks ----------------------------------------------------------
//
// Everything below exists for internal/recover's supervisor, which models a
// reliable control plane around the radio protocol: it reads durable state,
// extends phase windows, resets nodes to their last checkpoint, applies
// membership changes, and re-elects mediators. None of these methods is
// called on the classic path, and the few classic-path changes above
// (dedup scans, the hold guard, the ack-channel indirection) are all
// provably no-ops in fault-free runs, keeping them byte-identical.

func (nd *Node) hasMerged(id sim.NodeID) bool {
	for _, s := range nd.mergedFrom {
		if s == id {
			return true
		}
	}
	return false
}

// MissSlot records that the node was down (crashed) for slot: during phase
// one the action log is padded so the phase-three rewind stays slot-aligned.
// Later phases are event-driven and need no padding.
func (nd *Node) MissSlot(slot int) {
	if slot < nd.p2start {
		nd.cast.MissSlot(slot)
	}
}

// Restart recovers the node's state as a crash-restart at slot would.
// The durability model (DESIGN.md §7) is WAL-before-use: every protocol
// fact — the phase-one action log, census roster entries, collected
// clusters, phase-four merges — is logged to stable storage before the
// node acts on it, so all of them survive a crash (the state is a few
// dozen words; a real node would fsync it). What a crash loses is
// availability (the slots spent down, padded by MissSlot) and the
// transient acknowledgement that the node's own census entry got
// through: a node restarting mid-census conservatively re-broadcasts it
// until a fresh success, which deliverPhase2's dedup makes a no-op on
// its peers.
func (nd *Node) Restart(slot int) {
	if slot >= nd.p2start && slot < nd.p3start {
		nd.censusDone = false
	}
}

// Hold makes the node idle in every slot before until (a recovery backoff
// gap). Holds only ever extend.
func (nd *Node) Hold(until int) {
	if until > nd.holdUntil {
		nd.holdUntil = until
	}
}

// ExtendPhase1 lengthens the phase-one window by extra slots, shifting the
// later phases accordingly. The rewind window grows with phase one, so
// phase four moves by twice the extension.
func (nd *Node) ExtendPhase1(extra int) {
	nd.p2start += extra
	nd.p3start += extra
	nd.p3base += extra
	nd.p4start += 2 * extra
}

// ExtendCensus lengthens the census window by extra slots.
func (nd *Node) ExtendCensus(extra int) {
	nd.p3start += extra
	nd.p3base += extra
	nd.p4start += extra
}

// ResetCensus makes the node re-broadcast its census entry in the next
// retry window while keeping the roster it has gathered so far. The
// supervisor resets every node on a deficient channel together, so every
// entry is re-announced and listeners that were down during a previous
// window fill their holes — census progress accumulates monotonically
// across retries (the dedup in deliverPhase2 keeps rosters
// duplicate-free), which is what lets the census converge while outages
// keep happening.
func (nd *Node) ResetCensus() {
	nd.censusDone = false
}

// RetryRewind re-anchors phase three at base: the full phase-one log
// replays over [base, base+p2start). Slots before base map out of range
// and the node idles through them. Clusters already collected are kept —
// the replay re-offers every cluster and the dedup in deliverPhase3
// ignores the ones the informer already holds, so rewind progress, like
// the census's, accumulates across retries.
func (nd *Node) RetryRewind(base int) {
	nd.p3base = base
	nd.p4start = base + nd.p2start
}

// Withdraw removes the node from the protocol (recovery pruning after the
// retry budget is exhausted).
func (nd *Node) Withdraw() { nd.done = true }

// DropRosterEntry removes a pruned peer from the node's census roster.
// Only meaningful before phase three derives cluster structure from it.
func (nd *Node) DropRosterEntry(id sim.NodeID) {
	out := nd.roster[:0]
	for _, e := range nd.roster {
		if e.id != id {
			out = append(out, e)
		}
	}
	nd.roster = out
	if w := int(id) >> 6; w < len(nd.rosterSeen) {
		nd.rosterSeen[w] &^= 1 << (uint(id) & 63)
	}
}

// DropCollected removes the cluster informed at phase-one slot r from the
// node's collected list (the cluster's members were pruned). Only
// meaningful before phase four starts consuming the list.
func (nd *Node) DropCollected(r int) {
	out := nd.collected[:0]
	for _, c := range nd.collected {
		if c.r != r {
			out = append(out, c)
		}
	}
	nd.collected = out
}

// DropMedMember removes a pruned node from every cluster the mediator
// coordinates, dropping clusters that become empty. Only valid before
// phase four begins (medIdx 0, no acks recorded yet).
func (nd *Node) DropMedMember(id sim.NodeID) {
	if !nd.isMediator {
		return
	}
	out := nd.medClusters[:0]
	for _, cl := range nd.medClusters {
		delete(cl.members, id)
		if len(cl.members) > 0 {
			out = append(out, cl)
		}
	}
	nd.medClusters = out
}

// Demote strips the node of its mediator role (it was re-elected away, or
// its channel's clusters were all pruned).
func (nd *Node) Demote() {
	nd.isMediator = false
	nd.medClusters = nd.medClusters[:0]
	nd.medAcked = nil
}

// AssumeMediator makes the node the mediator of its channel, rebuilding
// the cluster schedule from its own durable roster. acked reports whether
// a member's value has already been acked (so fully-collected clusters are
// fast-forwarded past and partially-collected ones resume mid-cluster);
// skip reports members the supervisor has pruned. Either may be nil.
func (nd *Node) AssumeMediator(acked, skip func(sim.NodeID) bool) {
	nd.isMediator = true
	nd.medClusters = nd.medClusters[:0]
	byR := make(map[int][]sim.NodeID)
	for _, e := range nd.roster {
		if skip != nil && skip(e.id) {
			continue
		}
		byR[e.r] = append(byR[e.r], e.id)
	}
	rs := make([]int, 0, len(byR))
	for r := range byR {
		rs = append(rs, r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rs)))
	for _, r := range rs {
		members := make(map[sim.NodeID]bool, len(byR[r]))
		for _, id := range byR[r] {
			members[id] = true
		}
		nd.medClusters = append(nd.medClusters, medCluster{r: r, members: members})
	}
	nd.medIdx = 0
	nd.medAcked = make(map[sim.NodeID]bool)
	for nd.medIdx < len(nd.medClusters) {
		cl := nd.medClusters[nd.medIdx]
		for id := range cl.members {
			if acked != nil && acked(id) {
				nd.medAcked[id] = true
			}
		}
		if len(nd.medAcked) < len(cl.members) {
			break
		}
		nd.medIdx++
		nd.medAcked = make(map[sim.NodeID]bool)
	}
}

// MarkOwnSent records that the node's value reached its parent (the
// supervisor reconciled a lost ack against the parent's durable state).
func (nd *Node) MarkOwnSent() { nd.ownSent = true }

// MarkMedAcked records on the mediator that member id's value was acked,
// exactly as hearing the ack on-channel would, advancing the cluster
// pointer when the current cluster completes.
func (nd *Node) MarkMedAcked(id sim.NodeID) {
	if !nd.isMediator || nd.medIdx >= len(nd.medClusters) {
		return
	}
	cl := nd.medClusters[nd.medIdx]
	if cl.members[id] && !nd.medAcked[id] {
		nd.medAcked[id] = true
		if len(nd.medAcked) == len(cl.members) {
			nd.medIdx++
			nd.medAcked = make(map[sim.NodeID]bool)
		}
	}
}

// MedPending calls f for every member of the mediator's current cluster
// whose value has not been acked yet. Iteration order is unspecified;
// callers that need determinism must sort.
func (nd *Node) MedPending(f func(sim.NodeID)) {
	if !nd.isMediator || nd.medIdx >= len(nd.medClusters) {
		return
	}
	for id := range nd.medClusters[nd.medIdx].members {
		if !nd.medAcked[id] {
			f(id)
		}
	}
}

// HasMerged reports whether this node merged a value from id in the
// current round (durable, WAL-backed).
func (nd *Node) HasMerged(id sim.NodeID) bool { return nd.hasMerged(id) }

// CensusDone reports whether the node's census broadcast has succeeded.
func (nd *Node) CensusDone() bool { return nd.censusDone }

// InformedChannel returns the node's local index of the channel it was
// informed on (0 if never informed).
func (nd *Node) InformedChannel() int {
	if !nd.p2init {
		return nd.cast.InformedChannel()
	}
	return nd.ch0
}

// RosterSnapshot calls f for every entry in the node's census roster, in
// roster order.
func (nd *Node) RosterSnapshot(f func(id sim.NodeID, r int)) {
	for _, e := range nd.roster {
		f(e.id, e.r)
	}
}

// CollectedSnapshot calls f for every cluster the node informed, in
// collection order.
func (nd *Node) CollectedSnapshot(f func(r, ch, size int)) {
	for _, c := range nd.collected {
		f(c.r, c.ch, c.size)
	}
}

// OwnSent reports whether the node's value was acked by its parent.
func (nd *Node) OwnSent() bool { return nd.ownSent }

// MedRemaining returns how many clusters the mediator still has to
// coordinate (0 for non-mediators).
func (nd *Node) MedRemaining() int {
	if !nd.isMediator {
		return 0
	}
	return len(nd.medClusters) - nd.medIdx
}

// Progress returns a monotone per-node progress counter: merges performed,
// mediator clusters completed, own value delivered, protocol finished.
// The recovery supervisor sums it across nodes to detect stalls.
func (nd *Node) Progress() int {
	p := nd.mergesTotal + nd.medIdx
	if nd.ownSent {
		p++
	}
	if nd.done {
		p++
	}
	return p
}
