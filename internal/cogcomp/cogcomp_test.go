package cogcomp_test

import (
	"errors"
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcomp"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/tree"
)

func inputsFor(n int, seed int64) []int64 {
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64((seed+int64(i)*7919)%1000) - 500
	}
	return inputs
}

func TestAggregateSumFullOverlap(t *testing.T) {
	const n, c = 32, 4
	asn, err := assign.FullOverlap(n, c, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 1)
	res, err := cogcomp.Run(asn, 0, inputs, 1, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := aggfunc.Fold(aggfunc.Sum{}, inputs)
	if res.Value != want {
		t.Fatalf("aggregate = %v, want %v", res.Value, want)
	}
	if !res.Complete {
		t.Error("run not complete")
	}
}

func TestAggregateAcrossTopologiesAndSeeds(t *testing.T) {
	type topo struct {
		name  string
		build func(seed int64) (sim.Assignment, error)
	}
	const n = 40
	topos := []topo{
		{"full-overlap", func(s int64) (sim.Assignment, error) {
			return assign.FullOverlap(n, 6, assign.LocalLabels, s)
		}},
		{"partitioned", func(s int64) (sim.Assignment, error) {
			return assign.Partitioned(n, 6, 2, assign.LocalLabels, s)
		}},
		{"shared-core", func(s int64) (sim.Assignment, error) {
			return assign.SharedCore(n, 8, 3, 24, assign.LocalLabels, s)
		}},
		{"random-pool", func(s int64) (sim.Assignment, error) {
			return assign.RandomPool(n, 12, 2, 24, assign.LocalLabels, s)
		}},
		{"global-labels", func(s int64) (sim.Assignment, error) {
			return assign.SharedCore(n, 8, 3, 24, assign.GlobalLabels, s)
		}},
	}
	for _, tp := range topos {
		t.Run(tp.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				asn, err := tp.build(seed)
				if err != nil {
					t.Fatal(err)
				}
				inputs := inputsFor(n, seed)
				res, err := cogcomp.Run(asn, 0, inputs, seed, cogcomp.Config{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				want := aggfunc.Fold(aggfunc.Sum{}, inputs)
				if res.Value != want {
					t.Fatalf("seed %d: aggregate = %v, want %v", seed, res.Value, want)
				}
			}
		})
	}
}

func TestAggregateAllFunctions(t *testing.T) {
	const n = 24
	asn, err := assign.SharedCore(n, 6, 2, 18, assign.LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 5)
	funcs := []aggfunc.Func{aggfunc.Sum{}, aggfunc.Count{}, aggfunc.Min{}, aggfunc.Max{}, aggfunc.Stats{}}
	for _, f := range funcs {
		t.Run(f.Name(), func(t *testing.T) {
			res, err := cogcomp.Run(asn, 0, inputs, 5, cogcomp.Config{Func: f})
			if err != nil {
				t.Fatal(err)
			}
			want := aggfunc.Fold(f, inputs)
			if res.Value != want {
				t.Fatalf("aggregate = %v, want %v", res.Value, want)
			}
		})
	}
}

func TestAggregateCollectGathersEveryone(t *testing.T) {
	const n = 20
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 9)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 9)
	res, err := cogcomp.Run(asn, 0, inputs, 9, cogcomp.Config{Func: aggfunc.Collect{}})
	if err != nil {
		t.Fatal(err)
	}
	entries := res.Value.([]aggfunc.Entry)
	if len(entries) != n {
		t.Fatalf("collected %d entries, want %d", len(entries), n)
	}
	seen := make(map[sim.NodeID]int64, n)
	for _, e := range entries {
		if _, dup := seen[e.ID]; dup {
			t.Fatalf("node %d collected twice", e.ID)
		}
		seen[e.ID] = e.Input
	}
	for i, want := range inputs {
		if got := seen[sim.NodeID(i)]; got != want {
			t.Errorf("node %d input %d, want %d", i, got, want)
		}
	}
}

func TestNonZeroSource(t *testing.T) {
	const n = 30
	asn, err := assign.SharedCore(n, 6, 2, 12, assign.LocalLabels, 11)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 11)
	res, err := cogcomp.Run(asn, 17, inputs, 11, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := aggfunc.Fold(aggfunc.Sum{}, inputs); res.Value != want {
		t.Fatalf("aggregate = %v, want %v", res.Value, want)
	}
	tr, err := tree.New(17, res.Parents)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Spanning() {
		t.Error("distribution tree not spanning")
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	asn, err := assign.FullOverlap(1, 3, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.Run(asn, 0, []int64{42}, 1, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(42) {
		t.Fatalf("aggregate = %v, want 42", res.Value)
	}
}

func TestTwoNodeNetwork(t *testing.T) {
	asn, err := assign.FullOverlap(2, 2, assign.LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.Run(asn, 0, []int64{10, 32}, 2, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(42) {
		t.Fatalf("aggregate = %v, want 42", res.Value)
	}
}

func TestPhaseAccounting(t *testing.T) {
	const n = 32
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.Run(asn, 0, inputsFor(n, 3), 3, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase2Slots != n {
		t.Errorf("phase 2 = %d slots, want n = %d", res.Phase2Slots, n)
	}
	if res.Phase1Slots != res.Phase3Slots {
		t.Errorf("phase 3 (%d) must mirror phase 1 (%d)", res.Phase3Slots, res.Phase1Slots)
	}
	if got := res.Phase1Slots + res.Phase2Slots + res.Phase3Slots + res.Phase4Slots; got != res.TotalSlots {
		t.Errorf("phases sum to %d, total %d", got, res.TotalSlots)
	}
	// Termination is discovered at the first sub-slot of a step, so phase
	// four ends one slot into a step.
	if res.Phase4Slots%3 != 1 && res.Phase4Slots != 0 {
		t.Errorf("phase 4 = %d slots, want 1 mod 3 (full steps plus the termination check)", res.Phase4Slots)
	}
}

func TestPhaseFourLinearInN(t *testing.T) {
	// Theorem 10: phase four takes O(n) slots. Check the per-node step cost
	// stays bounded as n quadruples.
	perNode := func(n int) float64 {
		asn, err := assign.FullOverlap(n, 8, assign.LocalLabels, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cogcomp.Run(asn, 0, inputsFor(n, 7), 7, cogcomp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Phase4Slots) / float64(n)
	}
	small, large := perNode(64), perNode(256)
	if large > 3*small+3 {
		t.Errorf("phase-4 slots/n grew from %.2f to %.2f; not linear", small, large)
	}
}

func TestMediatorsOnePerUsedChannel(t *testing.T) {
	const n, c = 48, 6
	asn, err := assign.FullOverlap(n, c, assign.LocalLabels, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcomp.Run(asn, 0, inputsFor(n, 13), 13, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mediators < 1 || res.Mediators > c {
		t.Errorf("mediators = %d, want between 1 and c=%d", res.Mediators, c)
	}
}

func TestAssociativeMessagesStaySmall(t *testing.T) {
	// Section 5 discussion: associative aggregates keep messages constant
	// size, collect-all grows with the subtree.
	const n = 64
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 17)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 17)
	sum, err := cogcomp.Run(asn, 0, inputs, 17, cogcomp.Config{Func: aggfunc.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MaxMessageSize != 1 {
		t.Errorf("sum max message = %d words, want 1", sum.MaxMessageSize)
	}
	col, err := cogcomp.Run(asn, 0, inputs, 17, cogcomp.Config{Func: aggfunc.Collect{}})
	if err != nil {
		t.Fatal(err)
	}
	if col.MaxMessageSize <= sum.MaxMessageSize {
		t.Errorf("collect max message = %d, want > sum's %d", col.MaxMessageSize, sum.MaxMessageSize)
	}
}

func TestRunValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cogcomp.Run(asn, 9, make([]int64, 4), 1, cogcomp.Config{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := cogcomp.Run(asn, 0, make([]int64, 3), 1, cogcomp.Config{}); err == nil {
		t.Error("input count mismatch accepted")
	}
}

func TestIncompletePhaseOneReported(t *testing.T) {
	// Starve phase one (tiny kappa) so some nodes stay uninformed; the run
	// must report incompleteness rather than return a silently wrong sum.
	const n = 64
	asn, err := assign.Partitioned(n, 16, 1, assign.LocalLabels, 19)
	if err != nil {
		t.Fatal(err)
	}
	sawIncomplete := false
	for seed := int64(0); seed < 8; seed++ {
		res, err := cogcomp.Run(asn, 0, inputsFor(n, seed), seed, cogcomp.Config{Kappa: 0.05})
		if err == nil {
			continue // got lucky, everyone informed
		}
		if errors.Is(err, cogcomp.ErrIncomplete) {
			sawIncomplete = true
			if res == nil || res.Complete {
				t.Error("ErrIncomplete with complete result")
			}
			if res.InformedAfterPhase1 >= n {
				t.Error("ErrIncomplete but everyone informed")
			}
			continue
		}
		t.Fatalf("seed %d: unexpected error %v", seed, err)
	}
	if !sawIncomplete {
		t.Skip("starved phase one still informed everyone on all seeds; harmless but unexpected")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	const n = 24
	asn, err := assign.SharedCore(n, 6, 2, 12, assign.LocalLabels, 23)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 23)
	a, err := cogcomp.Run(asn, 0, inputs, 23, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cogcomp.Run(asn, 0, inputs, 23, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSlots != b.TotalSlots || a.Value != b.Value {
		t.Errorf("identical seeds diverged: %d/%v vs %d/%v", a.TotalSlots, a.Value, b.TotalSlots, b.Value)
	}
	for i := range a.Parents {
		if a.Parents[i] != b.Parents[i] {
			t.Fatalf("trees diverged at node %d", i)
		}
	}
}

func TestLargerNetworkStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 400
	asn, err := assign.SharedCore(n, 10, 3, 40, assign.LocalLabels, 29)
	if err != nil {
		t.Fatal(err)
	}
	inputs := inputsFor(n, 29)
	res, err := cogcomp.Run(asn, 0, inputs, 29, cogcomp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := aggfunc.Fold(aggfunc.Sum{}, inputs); res.Value != want {
		t.Fatalf("aggregate = %v, want %v", res.Value, want)
	}
	tr, err := tree.New(0, res.Parents)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Spanning() {
		t.Error("tree not spanning")
	}
}
