package stats

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Errorf("summary = %+v", s)
	}
	if !math.IsInf(s.CI95(), 1) {
		t.Error("CI95 of a single sample should be infinite")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		q := float64(qRaw) / 255
		got := Quantile(sorted, q)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("division by zero should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "median=2.00") {
		t.Errorf("String() = %q", str)
	}
}

func TestPowerFitExact(t *testing.T) {
	// y = 3·x^2 exactly.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * x[i] * x[i]
	}
	fit, err := PowerFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-2) > 1e-9 || math.Abs(fit.Coeff-3) > 1e-9 {
		t.Errorf("fit = %+v, want exponent 2 coeff 3", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestPowerFitErrors(t *testing.T) {
	if _, err := PowerFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PowerFit([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("non-positive x accepted")
	}
	if _, err := PowerFit([]float64{1, 2}, []float64{1, -3}); err == nil {
		t.Error("negative y accepted")
	}
	if _, err := PowerFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero log-x variance accepted")
	}
}

func TestChiSquareUniform(t *testing.T) {
	stat, dof, err := ChiSquareUniform([]int64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 3 {
		t.Errorf("uniform counts: stat=%v dof=%d, want 0 and 3", stat, dof)
	}
	// All mass in one of two cells: stat = (20-10)^2/10 + (0-10)^2/10 = 20.
	stat, dof, err = ChiSquareUniform([]int64{20, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat-20) > 1e-12 || dof != 1 {
		t.Errorf("skewed counts: stat=%v dof=%d, want 20 and 1", stat, dof)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int64{5}); err == nil {
		t.Error("single cell accepted")
	}
	if _, _, err := ChiSquareUniform([]int64{1, -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := ChiSquareUniform([]int64{0, 0, 0}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero total: err = %v, want ErrEmpty", err)
	}
}

func TestChiSquareP(t *testing.T) {
	// Reference upper-tail values: P(X >= 3.84 | dof 1) ≈ 0.050,
	// P(X >= 18.31 | dof 10) ≈ 0.050, P(X >= 2.71 | dof 1) ≈ 0.100.
	cases := []struct {
		stat float64
		dof  int
		want float64
	}{
		{3.841, 1, 0.05},
		{2.706, 1, 0.10},
		{18.307, 10, 0.05},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		got := ChiSquareP(c.stat, c.dof)
		// Wilson–Hilferty is approximate; a few percent of the tail mass.
		if math.Abs(got-c.want) > 0.25*c.want {
			t.Errorf("ChiSquareP(%v, %d) = %v, want about %v", c.stat, c.dof, got, c.want)
		}
	}
	if ChiSquareP(0, 4) != 1 {
		t.Error("stat 0 should have p-value 1")
	}
	if !math.IsNaN(ChiSquareP(1, 0)) {
		t.Error("dof 0 should be NaN")
	}
	if p := ChiSquareP(1000, 2); p > 1e-6 {
		t.Errorf("huge statistic: p = %v, want about 0", p)
	}
}

// TestQuantileSingleSample pins the degenerate one-element sample: every
// quantile is that element, never NaN or an out-of-range interpolation.
func TestQuantileSingleSample(t *testing.T) {
	single := []float64{42}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := Quantile(single, q); got != 42 {
			t.Errorf("Quantile([42], %v) = %v, want 42", q, got)
		}
	}
}
