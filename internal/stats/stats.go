// Package stats provides the small statistical toolkit the experiment
// harness uses: summaries of repeated-trial measurements and least-squares
// fits for verifying predicted scaling shapes (e.g. slots vs (c/k)·lg n).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation receives no samples.
var ErrEmpty = errors.New("stats: no samples")

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P99:    Quantile(sorted, 0.99),
	}, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean of the summarized sample.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f median=%.2f [%.2f,%.2f]",
		s.N, s.Mean, s.CI95(), s.Median, s.Min, s.Max)
}

// Fit is a least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y against x by ordinary least squares. The harness uses it
// to check predicted scaling: regressing measured slots against the
// theory's predictor (e.g. (c/k)·lg n) should give R² near 1 and a stable
// slope (the hidden constant).
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, ErrEmpty
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Ratio returns y/x guarding against division by zero.
func Ratio(y, x float64) float64 {
	if x == 0 {
		return math.NaN()
	}
	return y / x
}

// PowerLaw is a least-squares power-law fit y = Coeff·x^Exponent, obtained
// by a linear fit in log–log space. R2 is the coefficient of determination
// of the log–log line.
type PowerLaw struct {
	Exponent float64
	Coeff    float64
	R2       float64
}

// PowerFit fits y = A·x^e by ordinary least squares over (lg x, lg y). The
// conformance harness uses it to verify bound shapes: measured completion
// slots regressed against a theorem's predictor should give an exponent
// near 1 (the measurement scales as the predictor, not a higher power).
// All samples must be strictly positive.
func PowerFit(x, y []float64) (PowerLaw, error) {
	if len(x) != len(y) {
		return PowerLaw{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return PowerLaw{}, fmt.Errorf("stats: power fit needs positive samples, got (%g, %g)", x[i], y[i])
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	fit, err := LinearFit(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{Exponent: fit.Slope, Coeff: math.Exp(fit.Intercept), R2: fit.R2}, nil
}

// ChiSquareUniform returns the chi-square statistic and degrees of freedom
// for observed counts against the uniform null hypothesis (every cell
// equally likely). It errors when the counts carry no observations or a
// single cell (no degrees of freedom to test).
func ChiSquareUniform(counts []int64) (stat float64, dof int, err error) {
	if len(counts) < 2 {
		return 0, 0, fmt.Errorf("stats: chi-square needs >= 2 cells, got %d", len(counts))
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			return 0, 0, fmt.Errorf("stats: negative count %d", c)
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrEmpty
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1, nil
}

// ChiSquareP returns the upper-tail p-value P(X >= stat) of a chi-square
// distribution with dof degrees of freedom, via the Wilson–Hilferty cube
// root normal approximation — accurate to a few percent for dof >= 1,
// which is ample for the checker's "is uniformity grossly violated" test.
func ChiSquareP(stat float64, dof int) float64 {
	if dof < 1 {
		return math.NaN()
	}
	if stat <= 0 {
		return 1
	}
	d := float64(dof)
	// (X/d)^(1/3) is approximately normal with mean 1-2/(9d), variance 2/(9d).
	mean := 1 - 2/(9*d)
	sd := math.Sqrt(2 / (9 * d))
	z := (math.Cbrt(stat/d) - mean) / sd
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
