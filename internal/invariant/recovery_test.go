package invariant_test

import (
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
)

func TestCheckCheckpointLogAcceptsMonotone(t *testing.T) {
	log := []invariant.Checkpoint{
		{Node: 1, Epoch: 1, Gen: 1, Slot: 40},
		{Node: 2, Epoch: 1, Gen: 1, Slot: 40},
		{Node: 1, Epoch: 2, Gen: 2, Slot: 72},
		{Node: 2, Epoch: 2, Gen: 2, Slot: 72},
		{Node: 1, Epoch: 2, Gen: 3, Slot: 110}, // epoch retried: same epoch, new gen
		{Node: 1, Epoch: 4, Gen: 4, Slot: 300}, // skipping an epoch is fine (node pruned in between elsewhere)
	}
	if err := invariant.CheckCheckpointLog(log); err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckCheckpointLog(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCheckpointLogRejectsViolations(t *testing.T) {
	cases := []struct {
		name string
		log  []invariant.Checkpoint
		want string
	}{
		{
			"generation stuck",
			[]invariant.Checkpoint{{Node: 1, Epoch: 1, Gen: 1, Slot: 10}, {Node: 1, Epoch: 2, Gen: 1, Slot: 20}},
			"generation",
		},
		{
			"epoch regressed",
			[]invariant.Checkpoint{{Node: 1, Epoch: 3, Gen: 1, Slot: 10}, {Node: 1, Epoch: 2, Gen: 2, Slot: 20}},
			"epoch regressed",
		},
		{
			"slot regressed",
			[]invariant.Checkpoint{{Node: 1, Epoch: 1, Gen: 1, Slot: 30}, {Node: 1, Epoch: 2, Gen: 2, Slot: 20}},
			"slot regressed",
		},
		{
			"epoch out of range",
			[]invariant.Checkpoint{{Node: 1, Epoch: 5, Gen: 1, Slot: 10}},
			"outside [1,4]",
		},
		{
			"negative slot",
			[]invariant.Checkpoint{{Node: 1, Epoch: 1, Gen: 1, Slot: -1}},
			"negative slot",
		},
	}
	for _, tc := range cases {
		err := invariant.CheckCheckpointLog(tc.log)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckContribution(t *testing.T) {
	inputs := []int64{10, 20, 30, 40}
	all := []sim.NodeID{0, 1, 2, 3}

	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, all, int64(100)); err != nil {
		t.Errorf("full fold rejected: %v", err)
	}
	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, []sim.NodeID{0, 2}, int64(40)); err != nil {
		t.Errorf("partial fold rejected: %v", err)
	}
	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, all, int64(120)); err == nil {
		t.Error("wrong aggregate accepted")
	}
	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, []sim.NodeID{1, 1, 2}, int64(70)); err == nil {
		t.Error("duplicate contributor accepted (double-merge would hide here)")
	}
	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, []sim.NodeID{0, 7}, int64(10)); err == nil {
		t.Error("out-of-range contributor accepted")
	}
	if err := invariant.CheckContribution(aggfunc.Sum{}, inputs, nil, int64(0)); err == nil {
		t.Error("empty contributor set accepted")
	}
	if err := invariant.CheckContribution(nil, inputs, all, int64(100)); err == nil {
		t.Error("nil aggregate function accepted")
	}
}

func TestCheckContributionUsesRealIDs(t *testing.T) {
	// Functions whose leaves depend on the node id (Collect carries the
	// contributing id in every entry) must be folded with the contributors'
	// actual ids, not positions.
	f := aggfunc.Collect{}
	inputs := []int64{5, 6, 7}
	contributors := []sim.NodeID{0, 2}
	want := f.Merge(f.Leaf(0, 5), f.Leaf(2, 7))
	if err := invariant.CheckContribution(f, inputs, contributors, want); err != nil {
		t.Errorf("id-sensitive fold rejected: %v", err)
	}
}
