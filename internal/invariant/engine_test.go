package invariant_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
)

// chatter broadcasts on its first local channel every slot, forever —
// maximum contention, so every slot exercises the winner draw.
type chatter struct{}

func (chatter) Step(slot int) Action           { return sim.Broadcast(0, nil) }
func (chatter) Deliver(slot int, ev sim.Event) {}
func (chatter) Done() bool                     { return false }

// Action aliases sim.Action so chatter's method set matches sim.Protocol.
type Action = sim.Action

// TestEngineWinnerUniformity drives the real engine with every node
// broadcasting on one shared channel each slot, so each slot is one
// contended resolution with n broadcasters. Pooled over thousands of
// slots, the winner position must pass the chi-square uniformity test —
// a statistical check of the engine's UniformWinner draw against the
// model, made by the oracle rather than by the engine's own code.
func TestEngineWinnerUniformity(t *testing.T) {
	const n, slots = 8, 4000
	asn, err := assign.FullOverlap(n, 1, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		protos[i] = chatter{}
	}
	ck := new(invariant.Checker)
	ck.Reset(asn, sim.UniformWinner)
	eng, err := sim.NewEngine(asn, protos, 42, sim.WithObserver(ck))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < slots; s++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("oracle violation: %v", err)
	}
	if got := ck.Tallied(); got != slots {
		t.Fatalf("tallied %d contended channels, want %d", got, slots)
	}
	if err := ck.Uniformity(1e-3); err != nil {
		t.Error(err)
	}
}
