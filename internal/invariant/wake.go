package invariant

import (
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/sim"
)

// WakeChecker is a sim.WakeAuditor that cross-checks the sparse engine's
// wake-queue from outside: it rebuilds the dormancy schedule from the very
// hints and deliveries the engine reports and verifies, slot by slot, that
//
//   - no dormant node acts: a node that promised Sleep=k is not stepped
//     again before the promise expires unless a delivery woke it,
//   - no awake node is skipped: a node whose promise expires (or that never
//     made one) is stepped at exactly the slot the dense engine would have
//     stepped it,
//   - every delivery wakes: a delivered node is stepped in the next slot —
//     unless its promise was quiet (sim.ParkListenQuiet), in which case
//     deliveries leave the schedule untouched and the promise runs to its
//     expiry,
//   - retirement is final: a node whose Done was observed is never stepped
//     or delivered to again (save deliveries in its retirement slot, where
//     its final action still resolves, matching the dense engine).
//
// Like Checker it deliberately shares no state with the engine's wake heap
// or parked lists — the schedule is re-derived from the audit stream alone,
// so bookkeeping bugs in either structure surface as violations. EndSlot is
// O(n), which is fine for the test workloads the auditor exists for.
type WakeChecker struct {
	n int

	retired   []bool
	retireDay []int  // slot the node retired in (valid when retired)
	expect    []int  // slot the node must next be stepped at; never = delivery-only
	stepped   []int  // last slot the node was stepped, -1 initially
	quiet     []bool // current promise is delivery-proof (Action.Quiet)

	violations int
	firstErr   error
}

var _ sim.WakeAuditor = (*WakeChecker)(nil)

// never marks a node woken only by deliveries (Sleep >= sim.Forever).
const never = math.MaxInt

// Reset prepares the checker for one run over n nodes: every node is
// expected awake at slot 0.
func (w *WakeChecker) Reset(n int) {
	w.n = n
	if cap(w.retired) < n {
		w.retired = make([]bool, n)
		w.retireDay = make([]int, n)
		w.expect = make([]int, n)
		w.stepped = make([]int, n)
		w.quiet = make([]bool, n)
	}
	w.retired = w.retired[:n]
	w.retireDay = w.retireDay[:n]
	w.expect = w.expect[:n]
	w.stepped = w.stepped[:n]
	w.quiet = w.quiet[:n]
	for i := 0; i < n; i++ {
		w.retired[i] = false
		w.expect[i] = 0
		w.stepped[i] = -1
		w.quiet[i] = false
	}
	w.violations = 0
	w.firstErr = nil
}

// OnStep implements sim.WakeAuditor: the stepped node must be exactly due.
func (w *WakeChecker) OnStep(slot int, node sim.NodeID, act sim.Action) {
	if node < 0 || int(node) >= w.n {
		w.failf("slot %d: stepped node %d outside [0,%d)", slot, node, w.n)
		return
	}
	v := int(node)
	if w.retired[v] {
		w.failf("slot %d: retired node %d stepped again", slot, node)
	}
	switch exp := w.expect[v]; {
	case slot < exp:
		w.failf("slot %d: dormant node %d stepped (promised asleep until slot %d)", slot, node, exp)
	case slot > exp:
		w.failf("slot %d: node %d stepped late (was due at slot %d)", slot, node, exp)
	}
	w.stepped[v] = slot
	w.quiet[v] = act.Op == sim.OpListen && act.Sleep > 0 && act.Quiet
	switch {
	case act.Op == sim.OpBroadcast || act.Sleep <= 0:
		w.expect[v] = slot + 1
	case act.Sleep >= sim.Forever:
		w.expect[v] = never
	default:
		w.expect[v] = slot + act.Sleep + 1
	}
}

// OnDeliver implements sim.WakeAuditor: a delivery must re-wake its target
// for the next slot — unless the target's current promise is quiet, which
// the delivery leaves untouched — and only a node's retirement slot may
// still deliver to it (its final action resolves that slot, exactly as the
// dense engine resolves it).
func (w *WakeChecker) OnDeliver(slot int, node sim.NodeID) {
	if node < 0 || int(node) >= w.n {
		w.failf("slot %d: delivery to node %d outside [0,%d)", slot, node, w.n)
		return
	}
	v := int(node)
	if w.retired[v] {
		if w.retireDay[v] != slot {
			w.failf("slot %d: delivery to node %d retired in slot %d", slot, node, w.retireDay[v])
		}
		return
	}
	if w.quiet[v] && slot < w.expect[v] {
		return
	}
	w.expect[v] = slot + 1
}

// OnRetire implements sim.WakeAuditor: retirement happens once.
func (w *WakeChecker) OnRetire(slot int, node sim.NodeID) {
	if node < 0 || int(node) >= w.n {
		w.failf("slot %d: retired node %d outside [0,%d)", slot, node, w.n)
		return
	}
	v := int(node)
	if w.retired[v] {
		w.failf("slot %d: node %d retired twice (first in slot %d)", slot, node, w.retireDay[v])
		return
	}
	w.retired[v] = true
	w.retireDay[v] = slot
}

// EndSlot implements sim.WakeAuditor: every node that was due this slot
// must have been stepped. Returns the first violation so the engine aborts
// the run the moment its wake-queue diverges from the shadow schedule.
func (w *WakeChecker) EndSlot(slot int) error {
	for v := 0; v < w.n; v++ {
		if !w.retired[v] && w.expect[v] == slot && w.stepped[v] != slot {
			w.failf("slot %d: awake node %d skipped by the sparse scan", slot, v)
			w.expect[v] = slot + 1
		}
	}
	return w.firstErr
}

func (w *WakeChecker) failf(format string, args ...any) {
	w.violations++
	if w.firstErr == nil {
		w.firstErr = fmt.Errorf("invariant: wake: "+format, args...)
	}
}

// Err returns the first violation recorded since the last Reset, or nil.
func (w *WakeChecker) Err() error { return w.firstErr }

// WakeViolations returns the number of violations since the last Reset.
func (w *WakeChecker) WakeViolations() int { return w.violations }
