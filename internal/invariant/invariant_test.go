package invariant_test

import (
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// fakeAsn is a hand-built assignment for feeding the checker synthetic
// slots without going through package assign.
type fakeAsn struct {
	n, total, c, k int
	sets           [][]int
}

func (f *fakeAsn) Nodes() int                           { return f.n }
func (f *fakeAsn) Channels() int                        { return f.total }
func (f *fakeAsn) PerNode() int                         { return f.c }
func (f *fakeAsn) MinOverlap() int                      { return f.k }
func (f *fakeAsn) ChannelSet(u sim.NodeID, _ int) []int { return f.sets[u] }

// fullAsn is a 4-node, 4-channel full-overlap fake.
func fullAsn() *fakeAsn {
	sets := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}
	return &fakeAsn{n: 4, total: 4, c: 4, k: 4, sets: sets}
}

func out(ch int, winner sim.NodeID, bs, ls []sim.NodeID) sim.ChannelOutcome {
	return sim.ChannelOutcome{Channel: ch, Winner: winner, Broadcasters: bs, Listeners: ls}
}

func ids(vs ...int) []sim.NodeID {
	out := make([]sim.NodeID, len(vs))
	for i, v := range vs {
		out[i] = sim.NodeID(v)
	}
	return out
}

func TestCheckerCleanSlots(t *testing.T) {
	var c invariant.Checker
	c.Reset(fullAsn(), sim.UniformWinner)
	c.OnSlot(0, []sim.ChannelOutcome{
		out(0, 1, ids(1, 2), ids(3)),
		out(2, sim.None, nil, ids(0)),
	})
	c.OnSlot(1, []sim.ChannelOutcome{
		out(1, 0, ids(0), ids(1, 2, 3)),
	})
	c.OnSlot(2, nil)
	if err := c.Err(); err != nil {
		t.Fatalf("clean slots flagged: %v", err)
	}
	if c.Violations() != 0 {
		t.Errorf("violations = %d, want 0", c.Violations())
	}
	if c.Tallied() != 1 {
		t.Errorf("tallied %d contended channels, want 1", c.Tallied())
	}
}

func TestCheckerViolations(t *testing.T) {
	restricted := fullAsn()
	restricted.sets[3] = []int{1, 2, 3} // node 3 does not hold channel 0
	cases := []struct {
		name string
		asn  *fakeAsn
		feed func(c *invariant.Checker)
		want string
	}{
		{"winner outside broadcasters", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, 3, ids(1, 2), nil)})
		}, "not among"},
		{"winner with no broadcasters", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, 1, nil, ids(1))})
		}, "no broadcasters"},
		{"node on two channels", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{
				out(0, 1, ids(1), nil),
				out(1, sim.None, nil, ids(1)),
			})
		}, "two channels"},
		{"channel out of range", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(7, 1, ids(1), nil)})
		}, "outside"},
		{"channels out of order", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{
				out(2, 1, ids(1), nil),
				out(0, 2, ids(2), nil),
			})
		}, "ascending"},
		{"participants out of order", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, 2, ids(2, 1), nil)})
		}, "ascending"},
		{"participant outside node range", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, 9, ids(9), nil)})
		}, "outside"},
		{"channel outside node's set", restricted, func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, 3, ids(3), nil)})
		}, "outside its"},
		{"empty channel report", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, []sim.ChannelOutcome{out(0, sim.None, nil, nil)})
		}, "no participants"},
		{"skipped slot", fullAsn(), func(c *invariant.Checker) {
			c.OnSlot(0, nil)
			c.OnSlot(2, nil)
		}, "consecutive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c invariant.Checker
			c.Reset(tc.asn, sim.UniformWinner)
			tc.feed(&c)
			err := c.Err()
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if c.Violations() == 0 {
				t.Error("violation count is zero")
			}
		})
	}
}

func TestCheckerAllDelivered(t *testing.T) {
	var c invariant.Checker
	c.Reset(fullAsn(), sim.AllDelivered)
	c.OnSlot(0, []sim.ChannelOutcome{out(0, 1, ids(1, 2), nil)})
	if err := c.Err(); err != nil {
		t.Fatalf("first-broadcaster winner flagged: %v", err)
	}
	c.OnSlot(1, []sim.ChannelOutcome{out(0, 2, ids(1, 2), nil)})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "first broadcaster") {
		t.Errorf("non-first all-delivered winner not flagged: %v", err)
	}
	if c.Tallied() != 0 {
		t.Errorf("all-delivered slots tallied for uniformity: %d", c.Tallied())
	}
}

func TestCheckerReset(t *testing.T) {
	var c invariant.Checker
	c.Reset(fullAsn(), sim.UniformWinner)
	c.OnSlot(0, []sim.ChannelOutcome{out(0, 3, ids(1, 2), nil)}) // violation
	if c.Err() == nil {
		t.Fatal("violation not recorded")
	}
	c.Reset(fullAsn(), sim.UniformWinner)
	if c.Err() != nil || c.Violations() != 0 {
		t.Error("Reset did not clear violation state")
	}
	c.OnSlot(0, nil) // slot cursor must restart
	if c.Err() != nil {
		t.Errorf("slot cursor not reset: %v", c.Err())
	}
}

func TestCheckerUniformity(t *testing.T) {
	// Evenly alternating winner positions over 2-way contention: chi2 ~ 0.
	var fair invariant.Checker
	fair.Reset(fullAsn(), sim.UniformWinner)
	for s := 0; s < 400; s++ {
		w := sim.NodeID(s % 2)
		fair.OnSlot(s, []sim.ChannelOutcome{out(0, w, ids(0, 1), nil)})
	}
	if err := fair.Err(); err != nil {
		t.Fatalf("fair stream flagged: %v", err)
	}
	if err := fair.Uniformity(1e-6); err != nil {
		t.Errorf("fair winners rejected: %v", err)
	}

	// The same node always wins: grossly non-uniform.
	var biased invariant.Checker
	biased.Reset(fullAsn(), sim.UniformWinner)
	for s := 0; s < 400; s++ {
		biased.OnSlot(s, []sim.ChannelOutcome{out(0, 0, ids(0, 1), nil)})
	}
	if err := biased.Uniformity(1e-6); err == nil {
		t.Error("always-first winner accepted as uniform")
	}

	// Too little data: no verdict.
	var sparse invariant.Checker
	sparse.Reset(fullAsn(), sim.UniformWinner)
	sparse.OnSlot(0, []sim.ChannelOutcome{out(0, 0, ids(0, 1), nil)})
	if err := sparse.Uniformity(1e-6); err != nil {
		t.Errorf("sparse tallies produced a verdict: %v", err)
	}
}

func TestCheckAssignmentAccepts(t *testing.T) {
	builders := []struct {
		name string
		make func() (sim.Assignment, error)
	}{
		{"full-overlap", func() (sim.Assignment, error) { return assign.FullOverlap(8, 4, assign.LocalLabels, 1) }},
		{"partitioned", func() (sim.Assignment, error) { return assign.Partitioned(12, 6, 2, assign.LocalLabels, 2) }},
		{"shared-core", func() (sim.Assignment, error) { return assign.SharedCore(10, 5, 2, 16, assign.LocalLabels, 3) }},
		{"pairwise-dedicated", func() (sim.Assignment, error) { return assign.PairwiseDedicated(5, 8, 2, assign.LocalLabels, 4) }},
		{"dynamic", func() (sim.Assignment, error) { return assign.NewDynamic(8, 4, 2, 12, 5) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			asn, err := b.make()
			if err != nil {
				t.Fatal(err)
			}
			if err := invariant.CheckAssignment(asn, 0); err != nil {
				t.Errorf("valid assignment rejected: %v", err)
			}
		})
	}
}

func TestCheckAssignmentRejects(t *testing.T) {
	cases := []struct {
		name string
		asn  *fakeAsn
		want string
	}{
		{"duplicate channel", &fakeAsn{n: 2, total: 4, c: 3, k: 1,
			sets: [][]int{{0, 1, 1}, {0, 1, 2}}}, "twice"},
		{"channel out of range", &fakeAsn{n: 2, total: 4, c: 2, k: 1,
			sets: [][]int{{0, 7}, {0, 1}}}, "outside"},
		{"overlap below k", &fakeAsn{n: 2, total: 4, c: 2, k: 2,
			sets: [][]int{{0, 1}, {1, 2}}}, "below k"},
		{"oversized set", &fakeAsn{n: 2, total: 4, c: 2, k: 1,
			sets: [][]int{{0, 1, 2}, {0, 1}}}, "more than c"},
		{"empty set", &fakeAsn{n: 2, total: 4, c: 2, k: 1,
			sets: [][]int{{}, {0, 1}}}, "empty"},
		{"bad k", &fakeAsn{n: 2, total: 4, c: 2, k: 3,
			sets: [][]int{{0, 1}, {0, 1}}}, "1 <= k <= c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckAssignment(tc.asn, 0)
			if err == nil {
				t.Fatal("invalid assignment accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckBroadcastTree(t *testing.T) {
	// A valid 5-node tree: 0 informs 1 (slot 2) and 2 (slot 3); 2 informs 3
	// (slot 5); node 4 never informed.
	parents := []sim.NodeID{sim.None, 0, 0, 2, sim.None}
	slots := []int{-1, 2, 3, 5, -1}
	if err := invariant.CheckBroadcastTree(5, 0, parents, slots, false); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}

	mut := func(fn func(p []sim.NodeID, s []int) bool) error {
		p := append([]sim.NodeID(nil), parents...)
		s := append([]int(nil), slots...)
		all := fn(p, s)
		return invariant.CheckBroadcastTree(5, 0, p, s, all)
	}
	cases := []struct {
		name string
		fn   func(p []sim.NodeID, s []int) bool
	}{
		{"completion flag wrong", func(p []sim.NodeID, s []int) bool { return true }},
		{"source has parent", func(p []sim.NodeID, s []int) bool { p[0] = 1; return false }},
		{"self parent", func(p []sim.NodeID, s []int) bool { p[3] = 3; return false }},
		{"uninformed parent", func(p []sim.NodeID, s []int) bool { p[3] = 4; return false }},
		{"parent informed later", func(p []sim.NodeID, s []int) bool { s[3] = 1; return false }},
		{"parent without slot", func(p []sim.NodeID, s []int) bool { s[1] = -1; return false }},
		{"slot without parent", func(p []sim.NodeID, s []int) bool { p[1] = sim.None; return false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mut(tc.fn); err == nil {
				t.Error("malformed tree accepted")
			}
		})
	}
}

func TestCheckCensus(t *testing.T) {
	cases := []struct {
		name                             string
		n, channels, informed, mediators int
		complete                         bool
		ok                               bool
	}{
		{"complete run", 8, 4, 8, 3, true, true},
		{"partial run", 8, 4, 5, 2, false, true},
		{"source only", 8, 4, 1, 0, false, true},
		{"single node", 1, 4, 1, 0, true, true},
		{"informed over n", 8, 4, 9, 3, false, false},
		{"flag mismatch", 8, 4, 8, 3, false, false},
		{"no mediator", 8, 4, 5, 0, false, false},
		{"mediators over channels", 8, 2, 8, 3, true, false},
		{"mediators over informed", 8, 16, 3, 3, false, false},
		{"mediator with lone source", 8, 4, 1, 1, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckCensus(tc.n, tc.channels, tc.informed, tc.mediators, tc.complete)
			if (err == nil) != tc.ok {
				t.Errorf("CheckCensus = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestAggEqual(t *testing.T) {
	if !invariant.AggEqual(int64(7), int64(7)) || invariant.AggEqual(int64(7), int64(8)) {
		t.Error("int64 comparison wrong")
	}
	sv := aggfunc.StatsValue{Count: 2, Sum: 5, Min: 1, Max: 4}
	if !invariant.AggEqual(sv, sv) || invariant.AggEqual(sv, aggfunc.StatsValue{Count: 2}) {
		t.Error("stats comparison wrong")
	}
	a := []aggfunc.Entry{{ID: 2, Input: 20}, {ID: 0, Input: 5}, {ID: 1, Input: -3}}
	b := []aggfunc.Entry{{ID: 0, Input: 5}, {ID: 1, Input: -3}, {ID: 2, Input: 20}}
	if !invariant.AggEqual(a, b) {
		t.Error("permuted collect values unequal")
	}
	c := []aggfunc.Entry{{ID: 0, Input: 5}, {ID: 1, Input: -3}, {ID: 2, Input: 21}}
	if invariant.AggEqual(a, c) {
		t.Error("differing collect values equal")
	}
	if invariant.AggEqual(int64(7), a) || invariant.AggEqual(a, int64(7)) {
		t.Error("mixed types equal")
	}
}

func TestStreamValid(t *testing.T) {
	s := invariant.NewStream(nil)
	s.Emit(trace.TrialEvent(0, 42))
	s.Emit(trace.ProgressEvent(-1, 1, 4))
	s.Emit(trace.ChannelEvent(0, 1, 2, 2, 1))
	s.Emit(trace.ChannelEvent(0, 3, -1, 0, 2))
	s.Emit(trace.SlotEvent(0, 2))
	s.Emit(trace.InformedEvent(0, 3, 2, 1))
	s.Emit(trace.ProgressEvent(0, 2, 4))
	s.Emit(trace.SlotEvent(1, 0))
	s.Emit(trace.PhaseEvent(1, 1, 8))
	s.Emit(trace.PhaseEvent(9, 2, 4))
	s.Emit(trace.CensusEvent(20, 4, 2))
	s.Emit(trace.FaultEvent(5, 1, true))
	s.Emit(trace.JamEvent(5, 3, 2))
	if err := s.Err(); err != nil {
		t.Fatalf("valid stream flagged: %v", err)
	}
	// A trial boundary resets the cursors: restarting slots is legal.
	s.Emit(trace.TrialEvent(1, 43))
	s.Emit(trace.SlotEvent(0, 0))
	s.Emit(trace.ProgressEvent(0, 1, 4))
	if err := s.Err(); err != nil {
		t.Fatalf("trial restart flagged: %v", err)
	}
}

func TestStreamViolations(t *testing.T) {
	cases := []struct {
		name string
		feed func(s *invariant.Stream)
		want string
	}{
		{"active count mismatch", func(s *invariant.Stream) {
			s.Emit(trace.ChannelEvent(0, 0, 1, 1, 0))
			s.Emit(trace.SlotEvent(0, 2))
		}, "active"},
		{"slot regression", func(s *invariant.Stream) {
			s.Emit(trace.SlotEvent(3, 0))
			s.Emit(trace.SlotEvent(3, 0))
		}, "marker"},
		{"channel group crosses slots", func(s *invariant.Stream) {
			s.Emit(trace.ChannelEvent(0, 0, 1, 1, 0))
			s.Emit(trace.ChannelEvent(1, 0, 1, 1, 0))
		}, "amid"},
		{"winner without broadcasters", func(s *invariant.Stream) {
			s.Emit(trace.ChannelEvent(0, 0, 2, 0, 1))
		}, "winner"},
		{"progress regression", func(s *invariant.Stream) {
			s.Emit(trace.ProgressEvent(0, 3, 4))
			s.Emit(trace.ProgressEvent(1, 2, 4))
		}, "fell"},
		{"progress above total", func(s *invariant.Stream) {
			s.Emit(trace.ProgressEvent(0, 5, 4))
		}, "progress"},
		{"phase regression", func(s *invariant.Stream) {
			s.Emit(trace.PhaseEvent(0, 2, 4))
			s.Emit(trace.PhaseEvent(4, 1, 4))
		}, "phase"},
		{"census mediators", func(s *invariant.Stream) {
			s.Emit(trace.CensusEvent(10, 3, 3))
		}, "census"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := invariant.NewStream(nil)
			tc.feed(s)
			err := s.Err()
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStreamForwarding pins the passthrough contract: every event reaches
// the wrapped sink exactly once, violations or not.
func TestStreamForwarding(t *testing.T) {
	ring := trace.NewRing(16)
	s := invariant.NewStream(ring)
	s.Emit(trace.SlotEvent(0, 0))
	s.Emit(trace.SlotEvent(0, 0)) // violation, still forwarded
	if got := len(ring.Events()); got != 2 {
		t.Errorf("forwarded %d events, want 2", got)
	}
	if s.Violations() != 1 {
		t.Errorf("violations = %d, want 1", s.Violations())
	}
}
