// Package invariant implements an independent oracle for the slot model:
// a per-slot checker that re-verifies, from outside the engine, that every
// observed slot obeys the paper's Section 2 semantics — each node uses one
// channel from its own set, channels resolve to exactly one winner drawn
// from the broadcasters (uniformly under the default model), and listeners
// and losers are reported consistently — plus offline checks for the
// k-overlap contract of channel assignments, distribution-tree
// well-formedness (Section 5), COGCOMP's cluster census, and aggregate
// ground truth.
//
// The checker deliberately shares no code with the engine's hot path or
// with package assign's Validate: membership is re-derived by scanning
// ChannelSet, overlap is counted with maps instead of bitmaps, and winner
// uniformity is tested statistically (chi-square over winner positions
// pooled across runs). A bug in the engine's dense scratch bookkeeping or
// in assign's bitmap sets therefore cannot hide itself from the oracle.
//
// Checking is opt-in and zero-cost when disabled: nothing is attached to
// the engine, so the untraced slot path remains the pinned zero-allocation
// loop. When enabled, a warm Checker's OnSlot allocates only on the
// violation path.
package invariant

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/stats"
)

// Checker is a sim.Observer that re-verifies each slot's channel outcomes
// against the model. The zero value is not usable; call Reset before a
// run. A Checker may be reused across runs (arenas keep one per worker):
// Reset clears per-run state but keeps the winner-position tallies, so
// uniformity is tested over everything the checker has ever observed.
// Checkers are not safe for concurrent use.
type Checker struct {
	asn     sim.Assignment
	model   sim.CollisionModel
	n       int
	numChan int

	lastSlot int
	stamp    int
	nodeSeen []int // stamp when the node last participated in a slot

	// tally[b][pos] counts contended channels with b broadcasters whose
	// winner sat at position pos of the ascending broadcaster list. Under
	// UniformWinner each position is equally likely; Uniformity tests that.
	tally [][]int64

	violations int
	firstErr   error
}

var _ sim.Observer = (*Checker)(nil)

// Reset prepares the checker for one run over the given assignment and
// collision model. Violation state and the slot cursor reset; the pooled
// uniformity tallies are kept (call a fresh Checker to drop them).
func (c *Checker) Reset(asn sim.Assignment, model sim.CollisionModel) {
	c.asn = asn
	c.model = model
	c.n = asn.Nodes()
	c.numChan = asn.Channels()
	c.lastSlot = -1
	c.firstErr = nil
	c.violations = 0
	if short := c.n - len(c.nodeSeen); short > 0 {
		c.nodeSeen = append(c.nodeSeen, make([]int, short)...)
	}
}

// OnSlot implements sim.Observer: it re-checks every reported channel
// outcome of the slot. Violations are recorded, not panicked on; see Err.
func (c *Checker) OnSlot(slot int, outcomes []sim.ChannelOutcome) {
	if c.asn == nil {
		c.failf("checker used before Reset (slot %d)", slot)
		return
	}
	if slot != c.lastSlot+1 {
		c.failf("slot %d reported after slot %d: observed slots must be consecutive", slot, c.lastSlot)
	}
	c.lastSlot = slot
	c.stamp++
	prevCh := -1
	for i := range outcomes {
		o := &outcomes[i]
		if o.Channel <= prevCh {
			c.failf("slot %d: channel %d out of ascending order (previous %d)", slot, o.Channel, prevCh)
		}
		prevCh = o.Channel
		if o.Channel < 0 || o.Channel >= c.numChan {
			c.failf("slot %d: channel %d outside [0,%d)", slot, o.Channel, c.numChan)
			continue
		}
		if len(o.Broadcasters) == 0 && len(o.Listeners) == 0 {
			c.failf("slot %d: channel %d reported with no participants", slot, o.Channel)
		}
		winnerPos := -1
		prev := sim.NodeID(-1)
		for pos, b := range o.Broadcasters {
			c.checkParticipant(slot, o.Channel, b, &prev)
			if b == o.Winner {
				winnerPos = pos
			}
		}
		prev = -1
		for _, l := range o.Listeners {
			c.checkParticipant(slot, o.Channel, l, &prev)
		}
		if len(o.Broadcasters) == 0 {
			if o.Winner != sim.None {
				c.failf("slot %d: channel %d has winner %d but no broadcasters", slot, o.Channel, o.Winner)
			}
			continue
		}
		if winnerPos < 0 {
			c.failf("slot %d: channel %d winner %d is not among its %d broadcasters",
				slot, o.Channel, o.Winner, len(o.Broadcasters))
			continue
		}
		switch c.model {
		case sim.AllDelivered:
			// Footnote-3 semantics deliver everything; the engine reports
			// the first (smallest-id) broadcaster as the nominal winner.
			if winnerPos != 0 {
				c.failf("slot %d: channel %d all-delivered winner %d is not the first broadcaster",
					slot, o.Channel, o.Winner)
			}
		default:
			if len(o.Broadcasters) > 1 {
				c.tallyWin(len(o.Broadcasters), winnerPos)
			}
		}
	}
}

// checkParticipant verifies one node's appearance on a channel: id in
// range, lists ascending, one radio per node per slot, and — re-derived
// independently from the assignment — the physical channel really is in
// the node's channel set for this slot.
func (c *Checker) checkParticipant(slot, ch int, id sim.NodeID, prev *sim.NodeID) {
	if id < 0 || int(id) >= c.n {
		c.failf("slot %d: channel %d participant %d outside [0,%d)", slot, ch, id, c.n)
		return
	}
	if id <= *prev {
		c.failf("slot %d: channel %d participants out of ascending order (%d after %d)", slot, ch, id, *prev)
	}
	*prev = id
	if c.nodeSeen[id] == c.stamp {
		c.failf("slot %d: node %d participates on two channels in one slot", slot, id)
	}
	c.nodeSeen[id] = c.stamp
	set := c.asn.ChannelSet(id, slot)
	ok := false
	for _, p := range set {
		if p == ch {
			ok = true
			break
		}
	}
	if !ok {
		c.failf("slot %d: node %d used physical channel %d outside its %d-channel set", slot, id, ch, len(set))
	}
}

// tallyWin records a contended-channel (b >= 2 broadcasters) winner
// position, growing the tally table lazily (each contender count allocates
// its row once). Uncontended channels have a forced winner and carry no
// uniformity information.
func (c *Checker) tallyWin(b, pos int) {
	if b >= len(c.tally) {
		c.tally = append(c.tally, make([][]int64, b+1-len(c.tally))...)
	}
	if c.tally[b] == nil {
		c.tally[b] = make([]int64, b)
	}
	c.tally[b][pos]++
}

func (c *Checker) failf(format string, args ...any) {
	c.violations++
	if c.firstErr == nil {
		c.firstErr = fmt.Errorf("invariant: "+format, args...)
	}
}

// Err returns the first violation recorded since the last Reset, or nil.
func (c *Checker) Err() error { return c.firstErr }

// Violations returns the number of violations since the last Reset.
func (c *Checker) Violations() int { return c.violations }

// Tallied returns the number of contended-channel resolutions recorded in
// the pooled winner-position tallies (all runs since the checker was
// created).
func (c *Checker) Tallied() int64 {
	var total int64
	for _, row := range c.tally {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Uniformity tests the pooled winner-position tallies against the uniform
// null: under the paper's collision model the winner of a channel with b
// broadcasters is uniform over them, so its position in the ascending
// broadcaster list is uniform over [0,b). Buckets with expected cell count
// below 5 are excluded (standard chi-square validity); statistics pool
// across the remaining buckets. It returns an error when the combined
// p-value falls below minP, and nil when there is too little data to test.
func (c *Checker) Uniformity(minP float64) error {
	var stat float64
	dof := 0
	var pooled int64
	for b := 2; b < len(c.tally); b++ {
		counts := c.tally[b]
		if counts == nil {
			continue
		}
		var total int64
		for _, v := range counts {
			total += v
		}
		if total == 0 || float64(total)/float64(b) < 5 {
			continue
		}
		s, d, err := stats.ChiSquareUniform(counts)
		if err != nil {
			continue
		}
		stat += s
		dof += d
		pooled += total
	}
	if dof == 0 {
		return nil
	}
	if p := stats.ChiSquareP(stat, dof); p < minP {
		return fmt.Errorf("invariant: winner positions non-uniform over %d contended channels: chi2=%.2f dof=%d p=%.3g < %.3g",
			pooled, stat, dof, p, minP)
	}
	return nil
}
