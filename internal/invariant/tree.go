package invariant

import (
	"fmt"
	"sort"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/sim"
)

// CheckBroadcastTree verifies the well-formedness of a reported
// distribution tree (the Section 5 structure COGCAST and COGCOMP phase one
// leave behind): the source and only the source is parentless-but-informed,
// every informed non-source node has an informed parent that was informed
// strictly earlier (which also rules out cycles), and the reported
// completion flag matches the per-node record. parents[v] is sim.None for
// the source and uninformed nodes; informedSlots[v] is -1 for the same.
func CheckBroadcastTree(n int, source sim.NodeID, parents []sim.NodeID, informedSlots []int, allInformed bool) error {
	if len(parents) != n || len(informedSlots) != n {
		return fmt.Errorf("invariant: tree arrays sized %d and %d for n=%d", len(parents), len(informedSlots), n)
	}
	if source < 0 || int(source) >= n {
		return fmt.Errorf("invariant: source %d outside [0,%d)", source, n)
	}
	if parents[source] != sim.None {
		return fmt.Errorf("invariant: source %d has parent %d, want none", source, parents[source])
	}
	if informedSlots[source] != -1 {
		return fmt.Errorf("invariant: source %d has informed slot %d, want -1", source, informedSlots[source])
	}
	informed := 1
	for v := 0; v < n; v++ {
		if sim.NodeID(v) == source {
			continue
		}
		p, s := parents[v], informedSlots[v]
		if (p == sim.None) != (s < 0) {
			return fmt.Errorf("invariant: node %d has parent %d but informed slot %d", v, p, s)
		}
		if p == sim.None {
			continue
		}
		informed++
		if p < 0 || int(p) >= n {
			return fmt.Errorf("invariant: node %d has parent %d outside [0,%d)", v, p, n)
		}
		if int(p) == v {
			return fmt.Errorf("invariant: node %d is its own parent", v)
		}
		if p != source {
			ps := informedSlots[p]
			if ps < 0 {
				return fmt.Errorf("invariant: node %d was informed by uninformed node %d", v, p)
			}
			if ps >= s {
				return fmt.Errorf("invariant: node %d informed in slot %d by node %d informed later (slot %d)", v, s, p, ps)
			}
		}
	}
	if allInformed != (informed == n) {
		return fmt.Errorf("invariant: completion flag %v but tree records %d of %d nodes informed", allInformed, informed, n)
	}
	return nil
}

// CheckCensus verifies COGCOMP's cluster-census bookkeeping: the informed
// count includes the source and never exceeds n, completion means exactly
// n informed, and the mediator election produced one mediator per physical
// channel that informed anyone — so zero mediators exactly when nobody but
// the source is informed, and otherwise between 1 and both the informed
// non-source count and the channel count.
func CheckCensus(n, channels, informed, mediators int, complete bool) error {
	if informed < 1 || informed > n {
		return fmt.Errorf("invariant: census informed=%d outside [1,%d]", informed, n)
	}
	if complete != (informed == n) {
		return fmt.Errorf("invariant: census complete=%v with informed=%d of n=%d", complete, informed, n)
	}
	if informed == 1 {
		if mediators != 0 {
			return fmt.Errorf("invariant: census elected %d mediators with only the source informed", mediators)
		}
		return nil
	}
	if mediators < 1 {
		return fmt.Errorf("invariant: census elected no mediator with %d nodes informed", informed)
	}
	if mediators > informed-1 {
		return fmt.Errorf("invariant: census elected %d mediators among %d informed non-source nodes", mediators, informed-1)
	}
	if mediators > channels {
		return fmt.Errorf("invariant: census elected %d mediators over %d channels", mediators, channels)
	}
	return nil
}

// AggEqual compares a reported aggregate value against the ground truth
// computed by aggfunc.Fold. Collect values ([]aggfunc.Entry) are compared
// as sets — the in-tree merge order is execution-dependent — while every
// other built-in aggregate is a comparable value type.
func AggEqual(got, want aggfunc.Value) bool {
	w, wantEntries := want.([]aggfunc.Entry)
	g, gotEntries := got.([]aggfunc.Entry)
	if wantEntries != gotEntries {
		return false
	}
	if !wantEntries {
		return got == want
	}
	if len(g) != len(w) {
		return false
	}
	gs := append([]aggfunc.Entry(nil), g...)
	ws := append([]aggfunc.Entry(nil), w...)
	byID := func(es []aggfunc.Entry) func(i, j int) bool {
		return func(i, j int) bool { return es[i].ID < es[j].ID }
	}
	sort.Slice(gs, byID(gs))
	sort.Slice(ws, byID(ws))
	for i := range gs {
		if gs[i] != ws[i] {
			return false
		}
	}
	return true
}
