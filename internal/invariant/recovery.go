package invariant

import (
	"fmt"

	"github.com/cogradio/crn/internal/aggfunc"
	"github.com/cogradio/crn/internal/sim"
)

// Checkpoint is one entry of the recovery supervisor's checkpoint log
// (package recover): node committed its epoch checkpoint at slot, under
// the supervisor's monotonically increasing generation counter.
type Checkpoint struct {
	Node  sim.NodeID
	Epoch int // 1-4, mirroring the COGCOMP phases
	Gen   int // supervisor generation at commit time
	Slot  int // engine slot at commit time
}

// CheckCheckpointLog verifies the recovery-safety invariants of a
// checkpoint log: per node, generations strictly increase, epochs never
// regress (a retry re-executes an epoch but commits it only once), and
// commit slots never move backwards.
func CheckCheckpointLog(log []Checkpoint) error {
	last := make(map[sim.NodeID]Checkpoint, 16)
	for i, c := range log {
		if c.Epoch < 1 || c.Epoch > 4 {
			return fmt.Errorf("invariant: checkpoint %d: epoch %d outside [1,4]", i, c.Epoch)
		}
		if c.Slot < 0 {
			return fmt.Errorf("invariant: checkpoint %d: negative slot %d", i, c.Slot)
		}
		if prev, ok := last[c.Node]; ok {
			if c.Gen <= prev.Gen {
				return fmt.Errorf("invariant: node %d checkpoint generation %d does not advance past %d", c.Node, c.Gen, prev.Gen)
			}
			if c.Epoch < prev.Epoch {
				return fmt.Errorf("invariant: node %d checkpoint epoch regressed %d -> %d", c.Node, prev.Epoch, c.Epoch)
			}
			if c.Slot < prev.Slot {
				return fmt.Errorf("invariant: node %d checkpoint slot regressed %d -> %d", c.Node, prev.Slot, c.Slot)
			}
		}
		last[c.Node] = c
	}
	return nil
}

// CheckContribution verifies the no-duplicate-contribution invariant of a
// recovered aggregation: the reported value must equal the fold of exactly
// the contributors' inputs — each contributing once, none dropped, none
// double-merged after a retry. Contributor ids must be unique and in
// range.
func CheckContribution(f aggfunc.Func, inputs []int64, contributors []sim.NodeID, got aggfunc.Value) error {
	if f == nil {
		return fmt.Errorf("invariant: contribution check needs an aggregate function")
	}
	if len(contributors) == 0 {
		return fmt.Errorf("invariant: empty contributor set")
	}
	seen := make(map[sim.NodeID]bool, len(contributors))
	var want aggfunc.Value
	for i, id := range contributors {
		if id < 0 || int(id) >= len(inputs) {
			return fmt.Errorf("invariant: contributor %d outside [0,%d)", id, len(inputs))
		}
		if seen[id] {
			return fmt.Errorf("invariant: node %d contributes twice", id)
		}
		seen[id] = true
		leaf := f.Leaf(id, inputs[id])
		if i == 0 {
			want = leaf
		} else {
			want = f.Merge(want, leaf)
		}
	}
	if !AggEqual(got, want) {
		return fmt.Errorf("invariant: recovered aggregate %v diverges from contributor fold %v (%s over %d contributors)",
			got, want, f.Name(), len(contributors))
	}
	return nil
}
