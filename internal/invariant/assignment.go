package invariant

import (
	"fmt"
	"math/rand"

	"github.com/cogradio/crn/internal/sim"
)

// exhaustivePairNodes is the largest n for which CheckAssignment verifies
// every pair's overlap. Beyond it the O(n²·c) sweep is infeasible (a
// 10⁵-node assignment has 5·10⁹ pairs), so the check switches to the ring
// of adjacent pairs plus a deterministic random sample — every node is
// still covered at least twice, and a construction bug that shorts the
// k-overlap contract for a constant fraction of pairs is still caught with
// overwhelming probability.
const exhaustivePairNodes = 4096

// sampledPairsPerNode scales the random-pair sample in the large-n regime.
const sampledPairsPerNode = 4

// CheckAssignment independently verifies an assignment's (n, C, c, k)
// contract for one slot: parameters are sane, every channel set is
// non-empty, duplicate-free, within [0, C) and no larger than c, and every
// pair of nodes overlaps on at least k channels. Overlap is counted with
// per-node membership maps — deliberately not assign.Validate's bitmap
// path — so the two implementations cross-check each other.
//
// For static assignments one slot covers all of them; for per-slot
// assignments (dynamic, jamming) it verifies the given slot, and the
// per-slot Checker covers membership of the channels actually used in
// every other slot. Pairwise overlap is exhaustive up to
// exhaustivePairNodes nodes — O(n²·c), call it once per run, not per
// slot — and sampled (ring + seeded random pairs, O(n·c)) above that.
func CheckAssignment(a sim.Assignment, slot int) error {
	n, total, c, k := a.Nodes(), a.Channels(), a.PerNode(), a.MinOverlap()
	if n < 1 {
		return fmt.Errorf("invariant: assignment has n=%d nodes", n)
	}
	if total < 1 || c < 1 || c > total {
		return fmt.Errorf("invariant: assignment parameters C=%d, c=%d violate 1 <= c <= C", total, c)
	}
	if k < 1 || k > c {
		return fmt.Errorf("invariant: assignment overlap k=%d violates 1 <= k <= c=%d", k, c)
	}
	sets := make([][]int, n)
	member := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		set := a.ChannelSet(sim.NodeID(u), slot)
		if len(set) == 0 {
			return fmt.Errorf("invariant: node %d has an empty channel set in slot %d", u, slot)
		}
		if len(set) > c {
			return fmt.Errorf("invariant: node %d has %d channels, more than c=%d", u, len(set), c)
		}
		m := make(map[int]bool, len(set))
		for _, ch := range set {
			if ch < 0 || ch >= total {
				return fmt.Errorf("invariant: node %d holds channel %d outside [0,%d)", u, ch, total)
			}
			if m[ch] {
				return fmt.Errorf("invariant: node %d holds channel %d twice", u, ch)
			}
			m[ch] = true
		}
		sets[u] = set
		member[u] = m
	}
	checkPair := func(u, v int) error {
		overlap := 0
		for _, ch := range sets[v] {
			if member[u][ch] {
				overlap++
			}
		}
		if overlap < k {
			return fmt.Errorf("invariant: nodes %d and %d overlap on %d channels, below k=%d (slot %d)",
				u, v, overlap, k, slot)
		}
		return nil
	}
	if n <= exhaustivePairNodes {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if err := checkPair(u, v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Large-n regime: ring pairs cover every node, then a seeded sample
	// spreads coverage across distant pairs. The seed folds in n and the
	// slot so repeated checks of one run re-draw the same pairs (the oracle
	// stays deterministic) while different sizes probe different pairs.
	for u := 0; u < n; u++ {
		if err := checkPair(u, (u+1)%n); err != nil {
			return err
		}
	}
	rnd := rand.New(rand.NewSource(0x0a551647 ^ int64(n)<<16 ^ int64(slot)))
	for i := 0; i < sampledPairsPerNode*n; i++ {
		u, v := rnd.Intn(n), rnd.Intn(n)
		if u == v {
			continue
		}
		if err := checkPair(u, v); err != nil {
			return err
		}
	}
	return nil
}
