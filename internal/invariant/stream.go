package invariant

import (
	"fmt"

	"github.com/cogradio/crn/internal/trace"
)

// Stream is a trace.Sink that re-validates the structural consistency of a
// run's event stream as it is produced (or replayed): channel outcomes
// group under a slot marker whose active count matches, slot markers and
// phase transitions advance strictly, epidemic progress is monotone, and
// census numbers are internally consistent. Wrap it around a real sink
// (or use it standalone with a nil next) to check a stream without
// changing what is recorded.
//
// Like the per-slot Checker, Stream records violations rather than
// panicking; inspect Err after the run. Trial-boundary events reset the
// per-trial cursors, so experiment streams with many trials validate too.
type Stream struct {
	next trace.Sink

	chanEvents  int64
	pendingSlot int
	lastSlot    int
	lastPhase   int64
	lastDone    int64
	sawProgress bool

	violations int
	firstErr   error
}

var _ trace.Sink = (*Stream)(nil)

// NewStream returns a Stream forwarding every event to next (which may be
// nil for validate-only use).
func NewStream(next trace.Sink) *Stream {
	s := &Stream{next: next}
	s.resetTrial()
	return s
}

func (s *Stream) resetTrial() {
	s.chanEvents = 0
	s.pendingSlot = -1
	s.lastSlot = -1
	s.lastPhase = 0
	s.lastDone = -1
	s.sawProgress = false
}

// Emit implements trace.Sink.
func (s *Stream) Emit(ev trace.Event) {
	s.check(ev)
	if s.next != nil {
		s.next.Emit(ev)
	}
}

func (s *Stream) check(ev trace.Event) {
	switch ev.Kind {
	case trace.KindTrial:
		s.resetTrial()
	case trace.KindChannel:
		if ev.Slot < 0 {
			s.failf("channel event without a slot (%d)", ev.Slot)
		}
		if s.chanEvents == 0 {
			s.pendingSlot = ev.Slot
		} else if ev.Slot != s.pendingSlot {
			s.failf("channel event for slot %d amid slot %d's group", ev.Slot, s.pendingSlot)
		}
		s.chanEvents++
		if ev.A < 0 || ev.B < 0 || ev.A+ev.B < 1 {
			s.failf("slot %d channel %d reports %d broadcasters, %d listeners", ev.Slot, ev.Channel, ev.A, ev.B)
		}
		if (ev.A == 0) != (ev.Peer < 0) {
			s.failf("slot %d channel %d has %d broadcasters but winner %d", ev.Slot, ev.Channel, ev.A, ev.Peer)
		}
	case trace.KindSlot:
		if ev.Slot <= s.lastSlot {
			s.failf("slot marker %d after marker %d", ev.Slot, s.lastSlot)
		}
		s.lastSlot = ev.Slot
		if s.chanEvents > 0 && s.pendingSlot != ev.Slot {
			s.failf("slot marker %d closes channel group for slot %d", ev.Slot, s.pendingSlot)
		}
		if ev.A != s.chanEvents {
			s.failf("slot marker %d reports %d active channels, stream carried %d", ev.Slot, ev.A, s.chanEvents)
		}
		s.chanEvents = 0
	case trace.KindProgress:
		if ev.A < 0 || ev.A > ev.B {
			s.failf("progress %d of %d at slot %d", ev.A, ev.B, ev.Slot)
		}
		if s.sawProgress && ev.A < s.lastDone {
			s.failf("progress fell from %d to %d at slot %d", s.lastDone, ev.A, ev.Slot)
		}
		s.lastDone = ev.A
		s.sawProgress = true
	case trace.KindInformed:
		if ev.Node < 0 {
			s.failf("informed event for node %d", ev.Node)
		}
	case trace.KindPhase:
		if ev.A < 1 || ev.A > 4 {
			s.failf("phase %d outside [1,4]", ev.A)
		}
		if ev.A <= s.lastPhase {
			s.failf("phase %d after phase %d", ev.A, s.lastPhase)
		}
		s.lastPhase = ev.A
	case trace.KindCensus:
		if ev.A < 1 {
			s.failf("census with %d informed", ev.A)
		}
		if ev.B < 0 || ev.B >= ev.A {
			s.failf("census with %d mediators among %d informed", ev.B, ev.A)
		}
	case trace.KindFault, trace.KindJam:
		if ev.A < 0 {
			s.failf("%s event with negative count %d", ev.Kind, ev.A)
		}
	default:
		s.failf("unknown event kind %d", ev.Kind)
	}
}

func (s *Stream) failf(format string, args ...any) {
	s.violations++
	if s.firstErr == nil {
		s.firstErr = fmt.Errorf("invariant: trace: "+format, args...)
	}
}

// Err returns the first stream violation, or nil.
func (s *Stream) Err() error { return s.firstErr }

// Violations returns the number of stream violations recorded.
func (s *Stream) Violations() int { return s.violations }
