package invariant

import (
	"fmt"

	"github.com/cogradio/crn/internal/trace"
)

// Stream is a trace.Sink that re-validates the structural consistency of a
// run's event stream as it is produced (or replayed): channel outcomes
// group under a slot marker whose active count matches, slot markers and
// phase transitions advance strictly, epidemic progress is monotone, and
// census numbers are internally consistent. Wrap it around a real sink
// (or use it standalone with a nil next) to check a stream without
// changing what is recorded.
//
// Like the per-slot Checker, Stream records violations rather than
// panicking; inspect Err after the run. Trial-boundary events reset the
// per-trial cursors, so experiment streams with many trials validate too.
type Stream struct {
	next trace.Sink

	chanEvents  int64
	pendingSlot int
	lastSlot    int
	lastPhase   int64
	lastDone    int64
	sawProgress bool
	advRem      int64
	sawAdv      bool

	violations int
	firstErr   error
}

var _ trace.Sink = (*Stream)(nil)

// NewStream returns a Stream forwarding every event to next (which may be
// nil for validate-only use).
func NewStream(next trace.Sink) *Stream {
	s := &Stream{next: next}
	s.resetTrial()
	return s
}

func (s *Stream) resetTrial() {
	s.chanEvents = 0
	s.pendingSlot = -1
	s.lastSlot = -1
	s.lastPhase = 0
	s.lastDone = -1
	s.sawProgress = false
	s.advRem = 0
	s.sawAdv = false
}

// Emit implements trace.Sink.
func (s *Stream) Emit(ev trace.Event) {
	s.check(ev)
	if s.next != nil {
		s.next.Emit(ev)
	}
}

func (s *Stream) check(ev trace.Event) {
	switch ev.Kind {
	case trace.KindTrial:
		s.resetTrial()
	case trace.KindChannel:
		if ev.Slot < 0 {
			s.failf("channel event without a slot (%d)", ev.Slot)
		}
		if s.chanEvents == 0 {
			s.pendingSlot = ev.Slot
		} else if ev.Slot != s.pendingSlot {
			s.failf("channel event for slot %d amid slot %d's group", ev.Slot, s.pendingSlot)
		}
		s.chanEvents++
		if ev.A < 0 || ev.B < 0 || ev.A+ev.B < 1 {
			s.failf("slot %d channel %d reports %d broadcasters, %d listeners", ev.Slot, ev.Channel, ev.A, ev.B)
		}
		if (ev.A == 0) != (ev.Peer < 0) {
			s.failf("slot %d channel %d has %d broadcasters but winner %d", ev.Slot, ev.Channel, ev.A, ev.Peer)
		}
	case trace.KindSlot:
		if ev.Slot <= s.lastSlot {
			s.failf("slot marker %d after marker %d", ev.Slot, s.lastSlot)
		}
		s.lastSlot = ev.Slot
		if s.chanEvents > 0 && s.pendingSlot != ev.Slot {
			s.failf("slot marker %d closes channel group for slot %d", ev.Slot, s.pendingSlot)
		}
		if ev.A != s.chanEvents {
			s.failf("slot marker %d reports %d active channels, stream carried %d", ev.Slot, ev.A, s.chanEvents)
		}
		s.chanEvents = 0
	case trace.KindProgress:
		if ev.A < 0 || ev.A > ev.B {
			s.failf("progress %d of %d at slot %d", ev.A, ev.B, ev.Slot)
		}
		if s.sawProgress && ev.A < s.lastDone {
			s.failf("progress fell from %d to %d at slot %d", s.lastDone, ev.A, ev.Slot)
		}
		s.lastDone = ev.A
		s.sawProgress = true
	case trace.KindInformed:
		if ev.Node < 0 {
			s.failf("informed event for node %d", ev.Node)
		}
	case trace.KindPhase:
		if ev.A < 1 || ev.A > 4 {
			s.failf("phase %d outside [1,4]", ev.A)
		}
		if ev.A <= s.lastPhase {
			s.failf("phase %d after phase %d", ev.A, s.lastPhase)
		}
		s.lastPhase = ev.A
	case trace.KindCensus:
		if ev.A < 1 {
			s.failf("census with %d informed", ev.A)
		}
		if ev.B < 0 || ev.B >= ev.A {
			s.failf("census with %d mediators among %d informed", ev.B, ev.A)
		}
	case trace.KindFault, trace.KindJam:
		if ev.A < 0 {
			s.failf("%s event with negative count %d", ev.Kind, ev.A)
		}
	case trace.KindAdv:
		// The adversary budget ledger, re-derived from the stream: every
		// spend is the sum of its action counts, stays positive (silent
		// slots emit nothing), and the remaining reserve chains down by
		// exactly the spend from one event to the next.
		jam, crash := int64(ev.Channel), int64(ev.Node)
		if jam < 0 || crash < 0 || ev.A != jam+crash {
			s.failf("adversary spend %d does not match %d jams + %d crashes at slot %d", ev.A, jam, crash, ev.Slot)
		}
		if ev.A < 1 {
			s.failf("adversary event with zero spend at slot %d", ev.Slot)
		}
		if ev.B < 0 {
			s.failf("adversary reserve %d negative at slot %d", ev.B, ev.Slot)
		}
		if s.sawAdv && ev.B != s.advRem-ev.A {
			s.failf("adversary ledger breaks: reserve %d after spending %d from %d at slot %d", ev.B, ev.A, s.advRem, ev.Slot)
		}
		s.advRem = ev.B
		s.sawAdv = true
	case trace.KindEpoch:
		if ev.A < 1 || ev.A > 4 {
			s.failf("epoch %d outside [1,4]", ev.A)
		}
	case trace.KindCheckpoint:
		if ev.Node < 0 {
			s.failf("checkpoint event for node %d", ev.Node)
		}
	case trace.KindRetry:
		if ev.A < 1 || ev.A > 4 || ev.B < 1 {
			s.failf("retry attempt %d of epoch %d", ev.B, ev.A)
		}
	case trace.KindReelect:
		if ev.Node < 0 || ev.Node == ev.Peer {
			s.failf("re-election of node %d replacing %d", ev.Node, ev.Peer)
		}
	case trace.KindRestart:
		if ev.Node < 0 {
			s.failf("restart event for node %d", ev.Node)
		}
	default:
		s.failf("unknown event kind %d", ev.Kind)
	}
}

func (s *Stream) failf(format string, args ...any) {
	s.violations++
	if s.firstErr == nil {
		s.firstErr = fmt.Errorf("invariant: trace: "+format, args...)
	}
}

// Err returns the first stream violation, or nil.
func (s *Stream) Err() error { return s.firstErr }

// Violations returns the number of stream violations recorded.
func (s *Stream) Violations() int { return s.violations }
