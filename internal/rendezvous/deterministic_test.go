package rendezvous_test

import (
	"testing"

	"github.com/cogradio/crn/internal/rendezvous"
	"github.com/cogradio/crn/internal/sim"
)

func TestAsymmetricScanGuarantee(t *testing.T) {
	// The scan must meet within c² slots on EVERY instance — that is the
	// deterministic guarantee. Try many seeds and (c,k) combinations.
	for _, p := range []struct{ c, k int }{{4, 1}, {8, 2}, {12, 3}, {16, 1}} {
		bound, err := rendezvous.AsymmetricScanBound(p.c, p.c)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 30; seed++ {
			asn := twoSet(t, p.c, p.k, seed)
			res, err := rendezvous.AsymmetricScan(asn, 0, 1, bound+p.c)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Met {
				t.Fatalf("c=%d k=%d seed %d: deterministic scan missed its guarantee", p.c, p.k, seed)
			}
			if res.Slots > bound+p.c {
				t.Fatalf("c=%d k=%d seed %d: met after %d slots, bound %d", p.c, p.k, seed, res.Slots, bound)
			}
		}
	}
}

func TestAsymmetricScanMeetsOnSharedChannel(t *testing.T) {
	asn := twoSet(t, 8, 2, 7)
	res, err := rendezvous.AsymmetricScan(asn, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("scan missed")
	}
	inSet := func(node sim.NodeID) bool {
		for _, ch := range asn.ChannelSet(node, 0) {
			if ch == res.Channel {
				return true
			}
		}
		return false
	}
	if !inSet(0) || !inSet(1) {
		t.Errorf("meeting channel %d not shared", res.Channel)
	}
}

func TestAsymmetricScanValidation(t *testing.T) {
	asn := twoSet(t, 4, 1, 1)
	if _, err := rendezvous.AsymmetricScan(asn, 0, 0, 10); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := rendezvous.AsymmetricScanBound(0, 4); err == nil {
		t.Error("zero set size accepted")
	}
}

func TestRandomizedAndAsymmetricScanBothThetaCSquaredOverK(t *testing.T) {
	// On average both approaches are Θ(c²/k): uniform hopping meets in
	// ≈ c²/k expected slots, and the asymmetric scan's receiver first
	// dwells on a shared channel after ≈ c/(k+1) dwells of c slots each.
	// (Footnote 1's advantage of randomization is over *symmetric*
	// deterministic schedules, where no role assignment is available and
	// the worst case is Θ(c²) regardless of k; the asymmetric scan buys
	// its speed by presuming roles.) Assert both means live within a small
	// factor of c²/k.
	const c, k = 16, 8
	const trials = 60
	var randTotal, detTotal int
	for seed := int64(0); seed < trials; seed++ {
		asn := twoSet(t, c, k, seed)
		r, err := rendezvous.Uniform(asn, 0, 1, seed, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Met {
			t.Fatal("uniform never met")
		}
		randTotal += r.Slots
		d, err := rendezvous.AsymmetricScan(asn, 0, 1, c*c+c)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Met {
			t.Fatal("deterministic never met")
		}
		detTotal += d.Slots
	}
	theory := rendezvous.ExpectedSlots(c, k)
	randMean := float64(randTotal) / trials
	detMean := float64(detTotal) / trials
	for name, mean := range map[string]float64{"uniform": randMean, "asymmetric-scan": detMean} {
		if mean < theory/3 || mean > theory*3 {
			t.Errorf("%s mean %.1f outside [%.1f, %.1f] around c²/k", name, mean, theory/3, theory*3)
		}
	}
}
