package rendezvous

import (
	"fmt"
	"math/bits"

	"github.com/cogradio/crn/internal/sim"
)

// SymmetricIDScan is a guaranteed deterministic rendezvous for the
// *symmetric* setting: both nodes run identical code, know only their own
// identifier, and use local channel labels. Pure anonymous determinism is
// impossible here (two perfectly misaligned scanners never meet — see the
// permanently misaligned two-node example in the baseline tests), so the
// algorithm breaks symmetry with the one asymmetry the model guarantees:
// distinct IDs.
//
// Time is divided into blocks of c·c + c slots, block b keyed to bit b of
// the node's identifier (LSB first): in a block where its bit is 1 the node
// plays the sweeper of AsymmetricScan, otherwise the dweller. Two distinct
// identifiers differ in some bit position j <= bit-length, so in block j
// the pair runs a genuine sweeper/dweller schedule and the AsymmetricScan
// guarantee fires: rendezvous within (idBits)·(c²+c) slots, deterministic,
// for any channel sets with nonempty overlap.
//
// This is the standard role-alternation construction the deterministic
// rendezvous literature refines (e.g. Gu et al. [11] replace the plain
// sweep with cleverer sequences to shave the bound); it gives this library
// a guaranteed symmetric comparator for footnote 1's randomized hopping.
func SymmetricIDScan(asn sim.Assignment, u, v sim.NodeID, idU, idV uint64, maxSlots int) (*Result, error) {
	if err := checkPair(asn, u, v); err != nil {
		return nil, err
	}
	if idU == idV {
		return nil, fmt.Errorf("rendezvous: symmetric scan needs distinct ids, both are %d", idU)
	}
	chanAt := func(node sim.NodeID, id uint64, slot int) int {
		set := asn.ChannelSet(node, slot)
		c := len(set)
		block := c*c + c
		b := slot / block
		within := slot % block
		if (id>>uint(b%64))&1 == 1 {
			// Sweeper: visit every channel once per dwell period.
			return set[within%c]
		}
		// Dweller: sit on each channel for c consecutive slots.
		return set[(within/c)%c]
	}
	for slot := 0; slot < maxSlots; slot++ {
		cu := chanAt(u, idU, slot)
		cv := chanAt(v, idV, slot)
		if cu == cv {
			return &Result{Slots: slot + 1, Met: true, Channel: cu}, nil
		}
	}
	return &Result{Slots: maxSlots, Met: false, Channel: -1}, nil
}

// SymmetricIDScanBound returns the guaranteed deadline of SymmetricIDScan
// for channel sets of size c and the given identifiers: by the first block
// whose index is a differing bit position, the pair has met.
func SymmetricIDScanBound(c int, idU, idV uint64) (int, error) {
	if c < 1 {
		return 0, fmt.Errorf("rendezvous: set size %d must be positive", c)
	}
	if idU == idV {
		return 0, fmt.Errorf("rendezvous: identical ids %d never break symmetry", idU)
	}
	j := bits.TrailingZeros64(idU ^ idV) // first differing bit
	return (j + 1) * (c*c + c), nil
}
