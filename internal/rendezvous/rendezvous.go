// Package rendezvous implements the pairwise rendezvous problem that the
// cognitive radio literature centers on (Section 1 and footnote 1 of the
// paper): two nodes u and v hold channel sets C_u and C_v, each of size c,
// overlapping on at least k channels; neither knows the other's set; they
// "rendezvous" in the first slot both tune to a common channel.
//
// The paper's footnote observes that basic uniform random hopping meets in
// O(c²/k) expected slots — each slot hits a shared channel with probability
// about k/c² per shared channel — beating the O(c²) deterministic schedules
// of the related work for non-constant k, and that the usual objection to
// randomization (no deterministic guarantee of future meetings) dissolves
// once the pair swaps PRNG seeds at the first meeting: from then on each
// side can regenerate the other's schedule and meet at will. Both pieces
// are implemented here and measured by experiment E19.
package rendezvous

import (
	"fmt"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// streamTag separates rendezvous random streams from other protocols'.
const streamTag = 0x2d5

// Result reports one rendezvous execution.
type Result struct {
	// Slots is the number of slots until the first meeting (1-based), or
	// the budget if the pair never met.
	Slots int
	// Met reports whether the pair met within the budget.
	Met bool
	// Channel is the physical channel of the first meeting (-1 if none).
	Channel int
}

// Uniform runs basic uniform randomized hopping for the node pair (u, v) of
// the assignment until they land on a common physical channel, up to
// maxSlots. Landing together is the success criterion used throughout the
// rendezvous literature; turning a meeting into a message exchange costs
// only a constant factor (a uniform transmit/listen coin, see Exchange).
func Uniform(asn sim.Assignment, u, v sim.NodeID, seed int64, maxSlots int) (*Result, error) {
	if err := checkPair(asn, u, v); err != nil {
		return nil, err
	}
	ru := rng.New(seed, int64(u), streamTag)
	rv := rng.New(seed, int64(v), streamTag)
	for slot := 0; slot < maxSlots; slot++ {
		su := asn.ChannelSet(u, slot)
		sv := asn.ChannelSet(v, slot)
		cu := su[ru.Intn(len(su))]
		cv := sv[rv.Intn(len(sv))]
		if cu == cv {
			return &Result{Slots: slot + 1, Met: true, Channel: cu}, nil
		}
	}
	return &Result{Slots: maxSlots, Met: false, Channel: -1}, nil
}

// ExchangeResult reports a full message exchange between a pair.
type ExchangeResult struct {
	// Slots until both directions have delivered (u heard v and v heard u).
	Slots int
	// Done reports whether both directions completed within the budget.
	Done bool
}

// Exchange runs uniform hopping where, in every slot, each node flips a
// fair coin to transmit or listen. A direction delivers when the pair
// shares a channel, the sender transmits and the receiver listens. Expected
// time is within a small constant of Uniform's: conditioned on co-location,
// each direction delivers with probability 1/4 per meeting.
func Exchange(asn sim.Assignment, u, v sim.NodeID, seed int64, maxSlots int) (*ExchangeResult, error) {
	if err := checkPair(asn, u, v); err != nil {
		return nil, err
	}
	ru := rng.New(seed, int64(u), streamTag, 1)
	rv := rng.New(seed, int64(v), streamTag, 1)
	uHeard, vHeard := false, false
	for slot := 0; slot < maxSlots; slot++ {
		su := asn.ChannelSet(u, slot)
		sv := asn.ChannelSet(v, slot)
		cu := su[ru.Intn(len(su))]
		cv := sv[rv.Intn(len(sv))]
		uSends := ru.Intn(2) == 0
		vSends := rv.Intn(2) == 0
		if cu == cv {
			if uSends && !vSends {
				vHeard = true
			}
			if vSends && !uSends {
				uHeard = true
			}
		}
		if uHeard && vHeard {
			return &ExchangeResult{Slots: slot + 1, Done: true}, nil
		}
	}
	return &ExchangeResult{Slots: maxSlots, Done: false}, nil
}

// SharedSchedule models footnote 1's answer to the "randomization cannot
// guarantee future meetings" objection: once a pair has met and swapped
// PRNG seeds and channel sets, each side can compute the other's whole
// schedule. From that point the pair meets every slot by hopping a common
// pseudorandom sequence over the intersection of their sets.
type SharedSchedule struct {
	common []int
	rand   func(slot int) int
}

// NewSharedSchedule builds the post-exchange common schedule for a pair
// whose sets intersect in common (physical channels) using the swapped
// seed material.
func NewSharedSchedule(common []int, seedU, seedV int64) (*SharedSchedule, error) {
	if len(common) == 0 {
		return nil, fmt.Errorf("rendezvous: empty channel intersection")
	}
	// Both sides derive the same stream from the unordered seed pair.
	lo, hi := seedU, seedV
	if lo > hi {
		lo, hi = hi, lo
	}
	r := rng.New(lo, hi, streamTag, 2)
	picks := make(map[int]int)
	cs := append([]int(nil), common...)
	return &SharedSchedule{
		common: cs,
		rand: func(slot int) int {
			// Deterministic per-slot pick: extend the memoized stream on
			// demand so queries can arrive in any order.
			for len(picks) <= slot {
				picks[len(picks)] = r.Intn(len(cs))
			}
			return picks[slot]
		},
	}, nil
}

// Channel returns the common physical channel the pair meets on in the
// given slot. Both sides of the pair compute the same value — a rendezvous
// every slot, for free, forever.
func (s *SharedSchedule) Channel(slot int) int {
	return s.common[s.rand(slot)]
}

func checkPair(asn sim.Assignment, u, v sim.NodeID) error {
	n := asn.Nodes()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return fmt.Errorf("rendezvous: pair (%d, %d) outside [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("rendezvous: a node cannot rendezvous with itself")
	}
	return nil
}

// ExpectedSlots returns the footnote-1 prediction c²/k for uniform hopping
// over sets of size c with overlap exactly k.
func ExpectedSlots(c, k int) float64 {
	return float64(c) * float64(c) / float64(k)
}
