package rendezvous_test

import (
	"testing"
	"testing/quick"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/rendezvous"
	"github.com/cogradio/crn/internal/sim"
)

func TestSymmetricIDScanGuarantee(t *testing.T) {
	// For every instance tried, the pair must meet within the computed
	// deadline — that is a *guarantee*, so a single miss is a failure.
	type idPair struct{ u, v uint64 }
	pairs := []idPair{{1, 2}, {7, 8}, {0, 1}, {0xffff, 0xfffe}, {5, 1 << 20}}
	for _, p := range []struct{ c, k int }{{4, 1}, {8, 2}, {12, 1}} {
		for _, ids := range pairs {
			bound, err := rendezvous.SymmetricIDScanBound(p.c, ids.u, ids.v)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 15; seed++ {
				asn := twoSet(t, p.c, p.k, seed)
				res, err := rendezvous.SymmetricIDScan(asn, 0, 1, ids.u, ids.v, bound)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Met {
					t.Fatalf("c=%d k=%d ids=(%d,%d) seed=%d: missed the %d-slot guarantee",
						p.c, p.k, ids.u, ids.v, seed, bound)
				}
			}
		}
	}
}

func TestSymmetricIDScanGuaranteeProperty(t *testing.T) {
	prop := func(seed int64, cRaw, kRaw uint8, idU, idV uint16) bool {
		c := int(cRaw%10) + 1
		k := int(kRaw)%c + 1
		if idU == idV {
			return true // symmetry cannot be broken; excluded by contract
		}
		asn, err := assign.TwoSet(2, c, k, assign.LocalLabels, seed)
		if err != nil {
			return false
		}
		bound, err := rendezvous.SymmetricIDScanBound(c, uint64(idU), uint64(idV))
		if err != nil {
			return false
		}
		res, err := rendezvous.SymmetricIDScan(asn, 0, 1, uint64(idU), uint64(idV), bound)
		return err == nil && res.Met
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricIDScanValidation(t *testing.T) {
	asn := twoSet(t, 4, 1, 1)
	if _, err := rendezvous.SymmetricIDScan(asn, 0, 1, 7, 7, 100); err == nil {
		t.Error("identical ids accepted")
	}
	if _, err := rendezvous.SymmetricIDScan(asn, 0, 0, 1, 2, 100); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := rendezvous.SymmetricIDScanBound(0, 1, 2); err == nil {
		t.Error("zero set size accepted")
	}
	if _, err := rendezvous.SymmetricIDScanBound(4, 3, 3); err == nil {
		t.Error("identical ids accepted by bound")
	}
}

func TestSymmetricIDScanBoundGrowsWithSharedPrefix(t *testing.T) {
	// IDs differing only in a high bit pay more blocks.
	low, err := rendezvous.SymmetricIDScanBound(8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := rendezvous.SymmetricIDScanBound(8, 0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if high != 11*low {
		t.Errorf("bounds %d and %d; differing bit 10 should cost 11 blocks", low, high)
	}
}

func TestSymmetricIDScanMeetingChannelShared(t *testing.T) {
	asn := twoSet(t, 8, 3, 9)
	res, err := rendezvous.SymmetricIDScan(asn, 0, 1, 21, 34, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("missed")
	}
	for _, node := range []int{0, 1} {
		found := false
		for _, ch := range asn.ChannelSet(sim.NodeID(node), 0) {
			if ch == res.Channel {
				found = true
			}
		}
		if !found {
			t.Errorf("channel %d not in node %d's set", res.Channel, node)
		}
	}
}
