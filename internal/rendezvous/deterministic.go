package rendezvous

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// AsymmetricScan is the classic guaranteed deterministic rendezvous for the
// asymmetric case (the two nodes have distinct roles): the receiver dwells
// on each of its channels for c consecutive slots while the sender sweeps
// all of its channels once per dwell. During the receiver's dwell on any
// shared channel the sender's sweep necessarily visits that channel, so the
// pair meets within c·c_r + c slots — the O(c²) regime the related work
// achieves and that footnote 1's randomized O(c²/k) improves on for
// non-constant k. It needs only local labels.
//
// The symmetric case (no pre-assigned roles) is strictly harder and is what
// the cited deterministic literature [6, 11] solves with more machinery;
// the asymmetric scan is the natural baseline this library implements.
func AsymmetricScan(asn sim.Assignment, sender, receiver sim.NodeID, maxSlots int) (*Result, error) {
	if err := checkPair(asn, sender, receiver); err != nil {
		return nil, err
	}
	for slot := 0; slot < maxSlots; slot++ {
		ss := asn.ChannelSet(sender, slot)
		rs := asn.ChannelSet(receiver, slot)
		cs := ss[slot%len(ss)]
		cr := rs[(slot/len(ss))%len(rs)]
		if cs == cr {
			return &Result{Slots: slot + 1, Met: true, Channel: cs}, nil
		}
	}
	return &Result{Slots: maxSlots, Met: false, Channel: -1}, nil
}

// AsymmetricScanBound returns the guaranteed meeting deadline of
// AsymmetricScan for set sizes cSender and cReceiver: every (dwell, sweep)
// pair is visited within cSender·cReceiver slots.
func AsymmetricScanBound(cSender, cReceiver int) (int, error) {
	if cSender < 1 || cReceiver < 1 {
		return 0, fmt.Errorf("rendezvous: set sizes must be positive, got %d and %d", cSender, cReceiver)
	}
	return cSender * cReceiver, nil
}
