package rendezvous_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/rendezvous"
	"github.com/cogradio/crn/internal/sim"
)

func twoSet(t *testing.T, c, k int, seed int64) sim.Assignment {
	t.Helper()
	asn, err := assign.TwoSet(2, c, k, assign.LocalLabels, seed)
	if err != nil {
		t.Fatal(err)
	}
	return asn
}

func TestUniformMeets(t *testing.T) {
	asn := twoSet(t, 8, 2, 1)
	res, err := rendezvous.Uniform(asn, 0, 1, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("pair never met: %+v", res)
	}
	if res.Channel < 0 {
		t.Error("meeting channel not recorded")
	}
	// The meeting channel must be in both sets.
	inSet := func(node sim.NodeID) bool {
		for _, ch := range asn.ChannelSet(node, 0) {
			if ch == res.Channel {
				return true
			}
		}
		return false
	}
	if !inSet(0) || !inSet(1) {
		t.Errorf("meeting channel %d not shared by the pair", res.Channel)
	}
}

func TestUniformMeanTracksTheory(t *testing.T) {
	// Footnote 1: expected meeting time ≈ c²/k for uniform hopping with
	// overlap exactly k (the two-set construction gives exactly k).
	cases := []struct{ c, k int }{{8, 2}, {16, 4}, {16, 2}}
	const trials = 300
	for _, cs := range cases {
		var total int
		for trial := 0; trial < trials; trial++ {
			asn := twoSet(t, cs.c, cs.k, int64(trial))
			res, err := rendezvous.Uniform(asn, 0, 1, int64(trial), 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Met {
				t.Fatalf("c=%d k=%d trial %d: never met", cs.c, cs.k, trial)
			}
			total += res.Slots
		}
		mean := float64(total) / trials
		want := rendezvous.ExpectedSlots(cs.c, cs.k)
		if mean < want*0.7 || mean > want*1.3 {
			t.Errorf("c=%d k=%d: mean %.1f slots, theory %.1f (tolerance 30%%)", cs.c, cs.k, mean, want)
		}
	}
}

func TestUniformBudget(t *testing.T) {
	asn := twoSet(t, 32, 1, 3)
	res, err := rendezvous.Uniform(asn, 0, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met && res.Slots > 1 {
		t.Error("budget exceeded")
	}
	if !res.Met && res.Channel != -1 {
		t.Error("unmet result should carry channel -1")
	}
}

func TestUniformValidation(t *testing.T) {
	asn := twoSet(t, 4, 1, 1)
	if _, err := rendezvous.Uniform(asn, 0, 0, 1, 10); err == nil {
		t.Error("self-rendezvous accepted")
	}
	if _, err := rendezvous.Uniform(asn, 0, 9, 1, 10); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := rendezvous.Exchange(asn, -1, 1, 1, 10); err == nil {
		t.Error("negative node accepted")
	}
}

func TestExchangeBothDirections(t *testing.T) {
	asn := twoSet(t, 8, 3, 5)
	res, err := rendezvous.Exchange(asn, 0, 1, 5, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("exchange incomplete: %+v", res)
	}
	// A two-way exchange cannot beat a one-way meeting on average; over a
	// single run just sanity-check it's not absurdly small.
	if res.Slots < 1 {
		t.Errorf("slots = %d", res.Slots)
	}
}

func TestSharedScheduleAgreesForever(t *testing.T) {
	common := []int{5, 9, 13}
	a, err := rendezvous.NewSharedSchedule(common, 111, 222)
	if err != nil {
		t.Fatal(err)
	}
	// The other side derives the schedule from the same swapped seeds in
	// the opposite order; both must agree on every slot.
	b, err := rendezvous.NewSharedSchedule(common, 222, 111)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for slot := 0; slot < 500; slot++ {
		ca, cb := a.Channel(slot), b.Channel(slot)
		if ca != cb {
			t.Fatalf("slot %d: schedules diverge (%d vs %d)", slot, ca, cb)
		}
		if ca != 5 && ca != 9 && ca != 13 {
			t.Fatalf("slot %d: channel %d outside the intersection", slot, ca)
		}
		seen[ca] = true
	}
	if len(seen) != len(common) {
		t.Errorf("schedule used %d of %d common channels over 500 slots", len(seen), len(common))
	}
}

func TestSharedScheduleOutOfOrderQueries(t *testing.T) {
	s, err := rendezvous.NewSharedSchedule([]int{1, 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	late := s.Channel(40)
	early := s.Channel(3)
	if s.Channel(40) != late || s.Channel(3) != early {
		t.Error("memoized schedule not stable across query order")
	}
}

func TestSharedScheduleEmptyIntersection(t *testing.T) {
	if _, err := rendezvous.NewSharedSchedule(nil, 1, 2); err == nil {
		t.Error("empty intersection accepted")
	}
}

func TestExpectedSlots(t *testing.T) {
	if got := rendezvous.ExpectedSlots(10, 2); got != 50 {
		t.Errorf("ExpectedSlots(10,2) = %v, want 50", got)
	}
}
