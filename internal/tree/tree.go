// Package tree analyzes the distribution tree that COGCAST implicitly
// builds (Section 5): each node's parent is the node that first informed
// it, with the source as root. COGCOMP aggregates over this tree; the
// analyses here validate its structure and extract the statistics the
// paper's phase-four argument relies on (cluster sizes sum to at most n,
// depths, child counts).
package tree

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// Tree is a rooted parent-pointer tree over nodes 0..n-1. Nodes whose
// parent is sim.None and are not the root are considered unreached
// (uninformed) — a valid, if undesirable, outcome of a truncated broadcast.
type Tree struct {
	root    sim.NodeID
	parents []sim.NodeID
	depth   []int // -1 for unreached
}

// New validates parent pointers and builds a Tree. It rejects a root with a
// parent, out-of-range parents, self-loops, cycles, and chains that end at
// an unreached node instead of the root.
func New(root sim.NodeID, parents []sim.NodeID) (*Tree, error) {
	n := len(parents)
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("tree: root %d outside [0,%d)", root, n)
	}
	if parents[root] != sim.None {
		return nil, fmt.Errorf("tree: root %d has parent %d", root, parents[root])
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -2 // unknown
	}
	depth[root] = 0
	for v := 0; v < n; v++ {
		if _, err := resolveDepth(sim.NodeID(v), root, parents, depth); err != nil {
			return nil, err
		}
	}
	return &Tree{root: root, parents: parents, depth: depth}, nil
}

func resolveDepth(v, root sim.NodeID, parents []sim.NodeID, depth []int) (int, error) {
	if depth[v] >= -1 {
		return depth[v], nil
	}
	// Walk up collecting the path; cap at n hops to detect cycles.
	path := []sim.NodeID{v}
	cur := v
	for {
		p := parents[cur]
		if p == sim.None {
			// cur is unreached (and is not the root, else depth were set).
			for _, u := range path {
				depth[u] = -1
			}
			return -1, nil
		}
		if p < 0 || int(p) >= len(parents) {
			return 0, fmt.Errorf("tree: node %d has out-of-range parent %d", cur, p)
		}
		if p == cur {
			return 0, fmt.Errorf("tree: node %d is its own parent", cur)
		}
		if depth[p] >= 0 {
			d := depth[p]
			for i := len(path) - 1; i >= 0; i-- {
				d++
				depth[path[i]] = d
			}
			return depth[v], nil
		}
		if depth[p] == -1 {
			return 0, fmt.Errorf("tree: node %d hangs off unreached node %d", cur, p)
		}
		if len(path) > len(parents) {
			return 0, fmt.Errorf("tree: cycle detected through node %d", v)
		}
		path = append(path, p)
		cur = p
	}
}

// Root returns the tree's root.
func (t *Tree) Root() sim.NodeID { return t.root }

// Parent returns v's parent (sim.None for the root and unreached nodes).
func (t *Tree) Parent(v sim.NodeID) sim.NodeID { return t.parents[v] }

// Reached reports whether v is connected to the root.
func (t *Tree) Reached(v sim.NodeID) bool { return t.depth[v] >= 0 }

// Size returns the number of nodes reachable from the root (including it).
func (t *Tree) Size() int {
	n := 0
	for _, d := range t.depth {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Spanning reports whether every node is reachable from the root — the
// w.h.p. guarantee of Lemma 5.
func (t *Tree) Spanning() bool { return t.Size() == len(t.parents) }

// Depth returns v's distance from the root, or -1 if unreached.
func (t *Tree) Depth(v sim.NodeID) int { return t.depth[v] }

// Height returns the maximum depth over reached nodes.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// Children returns the number of direct children of every node.
func (t *Tree) Children() []int {
	counts := make([]int, len(t.parents))
	for v, p := range t.parents {
		if p != sim.None && t.depth[v] >= 0 {
			counts[p]++
		}
	}
	return counts
}

// ClusterKey names an (r, c)-cluster (Definition 6): the set of nodes first
// informed in slot R on physical channel C during phase one. The channel is
// identified "from a global oracle's perspective" (footnote 5); analysis
// code obtains it from the engine observer, while the protocol itself only
// ever uses co-location.
type ClusterKey struct {
	R int
	C int
}

// Clusters groups nodes by (informed slot, physical channel). Entries with
// slot -1 (source, unreached) are skipped.
func Clusters(informedSlots, informedPhysChannels []int) map[ClusterKey][]sim.NodeID {
	out := make(map[ClusterKey][]sim.NodeID)
	for v, r := range informedSlots {
		if r < 0 {
			continue
		}
		key := ClusterKey{R: r, C: informedPhysChannels[v]}
		out[key] = append(out[key], sim.NodeID(v))
	}
	return out
}
