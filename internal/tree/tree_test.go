package tree

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

func TestValidSpanningTree(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \
	//  3   4
	parents := []sim.NodeID{sim.None, 0, 0, 1, 1}
	tr, err := New(0, parents)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Spanning() {
		t.Error("tree should be spanning")
	}
	if tr.Size() != 5 {
		t.Errorf("Size = %d, want 5", tr.Size())
	}
	if tr.Height() != 2 {
		t.Errorf("Height = %d, want 2", tr.Height())
	}
	wantDepth := []int{0, 1, 1, 2, 2}
	for v, d := range wantDepth {
		if tr.Depth(sim.NodeID(v)) != d {
			t.Errorf("Depth(%d) = %d, want %d", v, tr.Depth(sim.NodeID(v)), d)
		}
	}
	children := tr.Children()
	want := []int{2, 2, 0, 0, 0}
	for v := range want {
		if children[v] != want[v] {
			t.Errorf("Children[%d] = %d, want %d", v, children[v], want[v])
		}
	}
	if tr.Root() != 0 || tr.Parent(3) != 1 {
		t.Error("accessor mismatch")
	}
}

func TestUnreachedNodesAllowed(t *testing.T) {
	parents := []sim.NodeID{sim.None, 0, sim.None} // node 2 never informed
	tr, err := New(0, parents)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spanning() {
		t.Error("tree with unreached node reported spanning")
	}
	if tr.Size() != 2 {
		t.Errorf("Size = %d, want 2", tr.Size())
	}
	if tr.Reached(2) {
		t.Error("node 2 reported reached")
	}
	if tr.Depth(2) != -1 {
		t.Errorf("Depth(2) = %d, want -1", tr.Depth(2))
	}
}

func TestChainHangingOffUnreachedRejected(t *testing.T) {
	// Node 2 points at unreached node 1: inconsistent, since being informed
	// by an uninformed node is impossible.
	parents := []sim.NodeID{sim.None, sim.None, 1}
	if _, err := New(0, parents); err == nil {
		t.Error("chain through unreached node accepted")
	}
}

func TestCycleRejected(t *testing.T) {
	parents := []sim.NodeID{sim.None, 2, 3, 1} // 1 -> 2 -> 3 -> 1
	if _, err := New(0, parents); err == nil {
		t.Error("cycle accepted")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	parents := []sim.NodeID{sim.None, 1}
	if _, err := New(0, parents); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestRootWithParentRejected(t *testing.T) {
	parents := []sim.NodeID{1, sim.None}
	if _, err := New(0, parents); err == nil {
		t.Error("root with parent accepted")
	}
}

func TestBadRootRejected(t *testing.T) {
	if _, err := New(5, []sim.NodeID{sim.None}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := New(-1, []sim.NodeID{sim.None}); err == nil {
		t.Error("negative root accepted")
	}
}

func TestOutOfRangeParentRejected(t *testing.T) {
	parents := []sim.NodeID{sim.None, 9}
	if _, err := New(0, parents); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestDeepChainDepths(t *testing.T) {
	const n = 1000
	parents := make([]sim.NodeID, n)
	parents[0] = sim.None
	for v := 1; v < n; v++ {
		parents[v] = sim.NodeID(v - 1)
	}
	tr, err := New(0, parents)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != n-1 {
		t.Errorf("Height = %d, want %d", tr.Height(), n-1)
	}
}

func TestClusters(t *testing.T) {
	informedSlots := []int{-1, 3, 3, 3, 7, -1}
	physChannels := []int{0, 2, 2, 5, 2, 0}
	got := Clusters(informedSlots, physChannels)
	if len(got) != 3 {
		t.Fatalf("got %d clusters, want 3: %v", len(got), got)
	}
	if members := got[ClusterKey{R: 3, C: 2}]; len(members) != 2 {
		t.Errorf("cluster (3,2) = %v, want nodes 1 and 2", members)
	}
	if members := got[ClusterKey{R: 3, C: 5}]; len(members) != 1 || members[0] != 3 {
		t.Errorf("cluster (3,5) = %v, want node 3", members)
	}
	if members := got[ClusterKey{R: 7, C: 2}]; len(members) != 1 || members[0] != 4 {
		t.Errorf("cluster (7,2) = %v, want node 4", members)
	}
	total := 0
	for _, m := range got {
		total += len(m)
	}
	if total != 4 {
		t.Errorf("cluster sizes sum to %d, want 4 (each informed node in exactly one cluster)", total)
	}
}
