package sim

// NodeView is the slice of an assignment visible to a single node: how many
// channels it has in a given slot, and nothing else. Protocol constructors
// take a NodeView so nodes can size their random channel choices without
// ever seeing physical channel identities or other nodes' sets — the same
// informational restriction the model places on real devices.
type NodeView struct {
	asn Assignment
	id  NodeID
}

// View returns the NodeView of node id under asn.
func View(asn Assignment, id NodeID) NodeView {
	return NodeView{asn: asn, id: id}
}

// ID returns the node's identity.
func (v NodeView) ID() NodeID { return v.id }

// NumChannels returns the size of the node's channel set in the given slot.
// For static assignments this is constant and equal to c; for dynamic or
// jammed assignments it may vary per slot.
func (v NodeView) NumChannels(slot int) int {
	return len(v.asn.ChannelSet(v.id, slot))
}
