package sim_test

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

func TestAllDeliveredEveryMessageArrives(t *testing.T) {
	const broadcasters = 3
	asn := fullOverlap(t, broadcasters+1, 1)
	nodes := make([]sim.Protocol, broadcasters+1)
	scripts := make([]*scriptNode, broadcasters+1)
	for i := 0; i < broadcasters; i++ {
		s := &scriptNode{actions: []sim.Action{sim.Broadcast(0, i)}}
		scripts[i] = s
		nodes[i] = s
	}
	listener := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
	scripts[broadcasters] = listener
	nodes[broadcasters] = listener

	e, err := sim.NewEngine(asn, nodes, 1, sim.WithCollisionModel(sim.AllDelivered))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	// Every broadcaster succeeds with its own message.
	for i := 0; i < broadcasters; i++ {
		evs := scripts[i].events
		if len(evs) != 1 || evs[0].Kind != sim.EvSendSucceeded || evs[0].From != sim.NodeID(i) {
			t.Errorf("broadcaster %d events = %+v, want own EvSendSucceeded", i, evs)
		}
	}
	// The listener receives all three messages.
	if len(listener.events) != broadcasters {
		t.Fatalf("listener got %d events, want %d", len(listener.events), broadcasters)
	}
	seen := make(map[any]bool)
	for _, ev := range listener.events {
		if ev.Kind != sim.EvReceived {
			t.Errorf("listener event kind %v", ev.Kind)
		}
		seen[ev.Msg] = true
	}
	for i := 0; i < broadcasters; i++ {
		if !seen[i] {
			t.Errorf("message %d never delivered", i)
		}
	}
}

func TestAllDeliveredSilentChannelStillSilent(t *testing.T) {
	asn := fullOverlap(t, 2, 1)
	a := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
	b := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
	e, err := sim.NewEngine(asn, []sim.Protocol{a, b}, 1, sim.WithCollisionModel(sim.AllDelivered))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(a.events)+len(b.events) != 0 {
		t.Error("silent channel delivered events under AllDelivered")
	}
}

func TestCollisionModelString(t *testing.T) {
	if sim.UniformWinner.String() != "uniform-winner" || sim.AllDelivered.String() != "all-delivered" {
		t.Error("CollisionModel.String mismatch")
	}
	if sim.CollisionModel(9).String() != "invalid" {
		t.Error("invalid model should stringify as invalid")
	}
}
