package sim

import (
	"context"
	"errors"
	"fmt"
)

// Interrupted is returned by RunSlot (and hence Run/RunWhile) when the
// engine's context is done at a slot boundary. It carries the partial
// progress — the number of fully executed slots — and unwraps to the
// context's error so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both work.
//
// The context is checked only between slots and the check draws no
// randomness, so a run that completes yields byte-identical output with or
// without a context attached; the error text is a pure function of the
// cancellation slot, so repeated runs canceled at the same slot produce
// identical errors.
type Interrupted struct {
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	// Slots is the number of slots fully executed before the interrupt.
	Slots int
}

func (e *Interrupted) Error() string {
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		return fmt.Sprintf("sim: deadline exceeded after %d slots", e.Slots)
	}
	return fmt.Sprintf("sim: run canceled after %d slots", e.Slots)
}

func (e *Interrupted) Unwrap() error { return e.Cause }

// WithContext attaches a context to the engine: RunSlot checks ctx.Err()
// at each slot boundary (before the slot executes) and returns an
// *Interrupted error once the context is done. The engine remains usable —
// no slot is half-executed. A nil context (the default) disables the check.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// checkInterrupt implements the slot-boundary context check.
func (e *Engine) checkInterrupt() error {
	if e.ctx == nil {
		return nil
	}
	if cerr := e.ctx.Err(); cerr != nil {
		return &Interrupted{Cause: cerr, Slots: e.slot}
	}
	return nil
}
