package sim

// Event-driven ("sparse") stepping. WithSparse lets the engine skip Step
// calls for nodes that declared themselves dormant through Action.Sleep
// hints, so a slot costs O(awake + deliveries) instead of Θ(n). The mode
// exists for long quiescent phases — COGCOMP's sequential census leaves
// almost every node silently parked for Θ(n) slots — and it is gated so
// that sparse executions are byte-identical to dense ones:
//
//   - Dormant nodes draw no RNG and change no state (the Action.Sleep
//     contract), so the engine's tie-break stream and every per-node
//     stream advance exactly as they would densely.
//   - Parked listeners stay in their channel's delivery set: any broadcast
//     there reaches them through the same node-ascending order the dense
//     bucket would have produced, and re-wakes them eagerly — the next
//     slot steps them again.
//   - Sparse engages only when no Observer is attached (an observer must
//     see silent listen-only channels the sparse scan never materializes)
//     and the assignment is slot-invariant (SlotInvariantAssignment), and
//     it forces the serial scan (shard counts never change output, so this
//     is invisible). Anything else silently runs dense, which is always
//     correct.
//
// The wake queue is a binary min-heap over packed (slot, node) entries
// plus per-channel parked-listener lists; all of it is pre-sized at Reset,
// so a warm sparse slot allocates nothing.

import (
	"fmt"
	"slices"
)

// WakeAuditor observes the sparse engine's scheduling decisions so an
// external oracle (package invariant) can cross-check wake-queue
// consistency: no dormant node acts, every delivery wakes, no awake node
// is skipped. It is consulted only when sparse stepping is engaged;
// attaching one does not change the execution. An EndSlot error aborts the
// run like a protocol error would.
type WakeAuditor interface {
	// OnStep reports that node was stepped this slot and returned act.
	OnStep(slot int, node NodeID, act Action)
	// OnDeliver reports a delivery to node this slot (which re-wakes it).
	OnDeliver(slot int, node NodeID)
	// OnRetire reports that node's Done became true and it left the
	// active set for good.
	OnRetire(slot int, node NodeID)
	// EndSlot closes the slot; a non-nil error fails the run.
	EndSlot(slot int) error
}

// WithSparse requests event-driven stepping: the engine honors Action.Sleep
// dormancy hints and scans only awake nodes each slot. Executions are
// byte-identical to the dense engine — transcripts, RNG draw order, error
// strings and traces included — because dormant nodes neither act nor draw
// randomness and every delivery re-wakes its target. The engine silently
// falls back to dense stepping when an Observer is attached or the
// assignment is not slot-invariant; Sparse() reports the effective mode.
func WithSparse() Option {
	return func(e *Engine) { e.sparseReq = true }
}

// WithWakeAudit attaches a wake-queue auditor (active only while sparse
// stepping is engaged; see WakeAuditor). Unlike WithObserver it does not
// force dense stepping — it exists precisely to audit the sparse scan.
func WithWakeAudit(a WakeAuditor) Option {
	return func(e *Engine) { e.audit = a }
}

// Wake-heap entries pack (wake slot << wakeNodeBits) | node into an int64,
// so heap order is slot-major with node-ascending ties — deterministic.
const (
	wakeNodeBits   = 22
	wakeNodeMask   = 1<<wakeNodeBits - 1
	maxSparseNodes = 1 << wakeNodeBits
)

// sparseState is the wake-queue bookkeeping of the event-driven scan. All
// slices are pre-sized by configureSparse and reused across slots and
// Resets.
type sparseState struct {
	on      bool // sparse stepping engaged (after gating)
	notDone int  // nodes whose Done has not been observed true

	awake     []int32 // sorted ids stepped every slot
	awakeNext []int32 // next slot's awake list (scratch)
	woken     []int32 // ids re-woken this slot (timers + deliveries)

	retired     []bool  // per node: Done observed (counted out of notDone)
	wakeAt      []int64 // per node: pending heap entry, -1 = none
	pushed      []int64 // per node: last entry pushed and not yet popped
	parkedPhys  []int32 // per node: phys channel while park-listening, -1 = not parked
	parkedAt    []int   // per node: slot of the last parkListen
	parkedQuiet []bool  // per node: the park is delivery-proof (Action.Quiet)

	heap        []int64   // binary min-heap of packed wake entries
	newlyParked []int32   // listeners parked this slot, committed after phase B
	parked      [][]int32 // phys channel -> parked listeners (sorted unless dirty)
	parkedDirty []bool    // phys channel -> parked list needs sorting
	parkedSeen  []bool    // phys channel -> appears in parkedTouched
	parkedTouch []int     // channels with parked entries since Reset
	lscratch    []NodeID  // merged live+parked listener scratch
}

// Sparse reports whether event-driven stepping is engaged: WithSparse was
// requested and survived gating (no observer, slot-invariant assignment).
func (e *Engine) Sparse() bool { return e.sp.on }

// configureSparse resolves the requested sparse mode against its gates and
// (re)builds the wake-queue state. Runs after configureShards so it can
// force the serial scan.
func (e *Engine) configureSparse() {
	sp := &e.sp
	on := e.sparseReq && e.obs == nil && len(e.nodes) < maxSparseNodes
	if on {
		si, ok := e.asn.(SlotInvariantAssignment)
		on = ok && si.SlotInvariantChannelSet()
	}
	sp.on = on
	if !on {
		return
	}
	// The sparse scan is serial: wake bookkeeping is cheap exactly because
	// it is single-threaded, and shard counts never change output anyway.
	e.effShards = 1
	n := len(e.nodes)
	if cap(sp.awake) < n {
		sp.awake = make([]int32, 0, n)
	}
	if cap(sp.awakeNext) < n {
		sp.awakeNext = make([]int32, 0, n)
	}
	if cap(sp.woken) < n {
		sp.woken = make([]int32, 0, n)
	}
	if cap(sp.newlyParked) < n {
		sp.newlyParked = make([]int32, 0, n)
	}
	if cap(sp.heap) < n {
		sp.heap = make([]int64, 0, n)
	}
	if cap(sp.lscratch) < n {
		sp.lscratch = make([]NodeID, 0, n)
	}
	if cap(sp.retired) < n {
		sp.retired = make([]bool, n)
		sp.wakeAt = make([]int64, n)
		sp.pushed = make([]int64, n)
		sp.parkedPhys = make([]int32, n)
		sp.parkedAt = make([]int, n)
		sp.parkedQuiet = make([]bool, n)
	}
	sp.retired = sp.retired[:n]
	sp.wakeAt = sp.wakeAt[:n]
	sp.pushed = sp.pushed[:n]
	sp.parkedPhys = sp.parkedPhys[:n]
	sp.parkedAt = sp.parkedAt[:n]
	sp.parkedQuiet = sp.parkedQuiet[:n]
	sp.awake = sp.awake[:0]
	sp.woken = sp.woken[:0]
	sp.newlyParked = sp.newlyParked[:0]
	sp.heap = sp.heap[:0]
	sp.notDone = 0
	for i, p := range e.nodes {
		done := p.Done()
		sp.awake = append(sp.awake, int32(i))
		sp.retired[i] = done
		if !done {
			sp.notDone++
		}
		sp.wakeAt[i] = -1
		sp.pushed[i] = -1
		sp.parkedPhys[i] = -1
		sp.parkedAt[i] = -1
		sp.parkedQuiet[i] = false
	}
	for _, ch := range sp.parkedTouch {
		sp.parked[ch] = sp.parked[ch][:0]
		sp.parkedDirty[ch] = false
		sp.parkedSeen[ch] = false
	}
	sp.parkedTouch = sp.parkedTouch[:0]
	e.growParked(len(e.bcast))
}

// growParked extends the per-channel parked-listener scratch alongside the
// dense channel scratch. Kept separate from growScratch so dense engines
// over huge channel spaces pay nothing for it.
func (e *Engine) growParked(n int) {
	sp := &e.sp
	if short := n - len(sp.parked); short > 0 {
		sp.parked = append(sp.parked, make([][]int32, short)...)
		sp.parkedDirty = append(sp.parkedDirty, make([]bool, short)...)
		sp.parkedSeen = append(sp.parkedSeen, make([]bool, short)...)
	}
}

// runSlotSparse is RunSlot's event-driven body: wake due timers, step the
// awake set, resolve only channels with live broadcasters, re-wake every
// parked listener that heard something.
func (e *Engine) runSlotSparse(slot int) error {
	broadcasts, maxCh, err := e.scanSparse(slot)
	if err != nil {
		return err
	}
	if broadcasts > 0 {
		for ch := 0; ch <= maxCh; ch++ {
			if !e.touched[ch] {
				continue
			}
			if len(e.bcast[ch]) == 0 {
				continue
			}
			e.resolveSparse(slot, ch)
		}
	}
	e.commitParked()
	if e.audit != nil {
		return e.audit.EndSlot(slot)
	}
	return nil
}

// scanSparse is the event-driven phase-A scan: merge the standing awake
// list with this slot's re-woken nodes in ascending node order and step
// exactly those, validating and bucketing as scanSerial does. Dormant
// nodes were validated when they parked and their (unchanged, per the
// Sleep contract) actions stay valid under a slot-invariant assignment, so
// the first failing node among awake nodes is the first failing node
// overall — error strings match the dense scan's.
func (e *Engine) scanSparse(slot int) (broadcasts, maxCh int, err error) {
	sp := &e.sp
	for len(sp.heap) > 0 {
		top := sp.heap[0]
		if int(top>>wakeNodeBits) > slot {
			break
		}
		e.popWake()
		v := int32(top & wakeNodeMask)
		if sp.pushed[v] == top {
			sp.pushed[v] = -1
		}
		if sp.wakeAt[v] == top {
			e.wakeNode(v)
		}
	}
	wk := sp.woken
	slices.Sort(wk)
	aw := sp.awake
	next := sp.awakeNext[:0]
	maxCh = -1
	i, j := 0, 0
	for i < len(aw) || j < len(wk) {
		var v int32
		if j >= len(wk) || (i < len(aw) && aw[i] < wk[j]) {
			v = aw[i]
			i++
		} else {
			v = wk[j]
			j++
		}
		if sp.retired[v] {
			continue
		}
		p := e.nodes[v]
		if p.Done() {
			e.retireNode(slot, v)
			continue
		}
		act := p.Step(slot)
		e.acts[v] = act
		if e.audit != nil {
			e.audit.OnStep(slot, NodeID(v), act)
		}
		live := true
		if p.Done() {
			// Done flipped inside Step: the action still resolves this
			// slot (the dense engine steps first and skips only from the
			// next slot on), but the node leaves the active set now.
			e.retireNode(slot, v)
			live = false
		}
		if act.Op == OpIdle {
			if live {
				if act.Sleep > 0 {
					e.parkIdle(v, slot, act.Sleep)
				} else {
					next = append(next, v)
				}
			}
			continue
		}
		set := e.asn.ChannelSet(NodeID(v), slot)
		if act.Channel < 0 || act.Channel >= len(set) {
			return 0, 0, fmt.Errorf("sim: slot %d: node %d chose local channel %d outside [0,%d)",
				slot, v, act.Channel, len(set))
		}
		phys := set[act.Channel]
		if phys < 0 {
			return 0, 0, fmt.Errorf("sim: slot %d: assignment mapped node %d to negative physical channel %d", slot, v, phys)
		}
		if phys >= len(e.bcast) {
			e.growScratch(phys + 1)
		}
		if !e.touched[phys] {
			e.touched[phys] = true
			e.active = append(e.active, phys)
		}
		if phys > maxCh {
			maxCh = phys
		}
		switch act.Op {
		case OpListen:
			e.listen[phys] = append(e.listen[phys], NodeID(v))
			if live {
				if act.Sleep > 0 {
					e.parkListen(v, phys, slot, act.Sleep, act.Quiet)
				} else {
					next = append(next, v)
				}
			}
		case OpBroadcast:
			e.bcast[phys] = append(e.bcast[phys], NodeID(v))
			broadcasts++
			if live {
				next = append(next, v)
			}
		default:
			return 0, 0, fmt.Errorf("sim: slot %d: node %d produced invalid op %d", slot, v, act.Op)
		}
	}
	sp.awake, sp.awakeNext = next, sp.awake
	sp.woken = sp.woken[:0]
	return broadcasts, maxCh, nil
}

// resolveSparse resolves one channel with live broadcasters: the winner
// draw and broadcaster feedback are exactly the dense engine's (dormant
// nodes never broadcast, so the broadcaster set is identical), and
// listeners merge the live bucket with the channel's parked list in
// node-ascending order — the order the dense bucket would have held. Every
// parked listener that heard something is re-woken.
func (e *Engine) resolveSparse(slot, ch int) {
	sp := &e.sp
	bs := e.bcast[ch]
	ls := e.mergedListeners(ch, e.compactParked(slot, ch))
	switch e.collisions {
	case AllDelivered:
		for _, b := range bs {
			e.deliverSparse(b, slot, Event{Kind: EvSendSucceeded, From: b, Msg: e.acts[b].Msg, Channel: e.acts[b].Channel})
		}
		for _, l := range ls {
			for _, b := range bs {
				e.deliverSparse(l, slot, Event{Kind: EvReceived, From: b, Msg: e.acts[b].Msg, Channel: e.acts[l].Channel})
			}
			if sp.parkedPhys[l] >= 0 && !sp.parkedQuiet[l] {
				e.wakeNode(int32(l))
			}
		}
	default:
		winner := bs[e.rand.Intn(len(bs))]
		msg := e.acts[winner].Msg
		for _, b := range bs {
			if b == winner {
				e.deliverSparse(b, slot, Event{Kind: EvSendSucceeded, From: winner, Msg: msg, Channel: e.acts[b].Channel})
			} else {
				e.deliverSparse(b, slot, Event{Kind: EvSendFailed, From: winner, Msg: msg, Channel: e.acts[b].Channel})
			}
		}
		for _, l := range ls {
			e.deliverSparse(l, slot, Event{Kind: EvReceived, From: winner, Msg: msg, Channel: e.acts[l].Channel})
		}
		for _, l := range ls {
			if sp.parkedPhys[l] >= 0 && !sp.parkedQuiet[l] {
				e.wakeNode(int32(l))
			}
		}
	}
	// Every non-quiet parked entry was just woken and stale entries were
	// already compacted away; only quiet parks survive the deliveries. A
	// delivery can still retire a quiet node (Done flipped in Deliver), so
	// the filter also drops retirements — the dense engine would not listen
	// for it next slot either.
	lst := sp.parked[ch][:0]
	for _, v := range sp.parked[ch] {
		if sp.parkedPhys[v] == int32(ch) && !sp.retired[v] {
			lst = append(lst, v)
		}
	}
	sp.parked[ch] = lst
	if len(lst) == 0 {
		sp.parkedDirty[ch] = false
	}
}

// deliverSparse delivers one event and keeps the notDone count exact: a
// delivery may flip a protocol's Done (state-based termination), and the
// dense Run loop would observe that after this very slot.
func (e *Engine) deliverSparse(id NodeID, slot int, ev Event) {
	e.nodes[id].Deliver(slot, ev)
	if e.audit != nil {
		e.audit.OnDeliver(slot, id)
	}
	if !e.sp.retired[id] && e.nodes[id].Done() {
		e.retireNode(slot, int32(id))
	}
}

// retireNode marks a node's termination as observed: it is counted out of
// notDone once and never stepped again. Sparse stepping requires Done to
// be monotonic (true for every protocol in this repository outside the
// recovery supervisor, which always runs dense).
func (e *Engine) retireNode(slot int, v int32) {
	sp := &e.sp
	sp.retired[v] = true
	sp.notDone--
	if e.audit != nil {
		e.audit.OnRetire(slot, NodeID(v))
	}
}

// wakeNode returns a dormant node to the stepped set: its pending timer is
// invalidated, its parked entry (if any) goes stale, and it is stepped
// again from the next scan on.
func (e *Engine) wakeNode(v int32) {
	sp := &e.sp
	sp.parkedPhys[v] = -1
	sp.wakeAt[v] = -1
	sp.woken = append(sp.woken, v)
}

// parkIdle parks an idle node until its hint expires (or forever: an idle
// node cannot receive, so only the slot budget ends an open-ended idle).
func (e *Engine) parkIdle(v int32, slot, k int) {
	if k >= Forever {
		e.sp.wakeAt[v] = -1
		return
	}
	e.pushWake(v, slot+k+1)
}

// parkListen parks a listening node on its physical channel. This slot it
// is still in the live listen bucket (it was stepped); the parked entry
// takes effect afterwards, which commitParked arranges — unless a delivery
// this very slot wakes it first.
func (e *Engine) parkListen(v int32, phys, slot, k int, quiet bool) {
	sp := &e.sp
	sp.parkedPhys[v] = int32(phys)
	sp.parkedAt[v] = slot
	sp.parkedQuiet[v] = quiet
	sp.newlyParked = append(sp.newlyParked, v)
	if k >= Forever {
		sp.wakeAt[v] = -1
		return
	}
	e.pushWake(v, slot+k+1)
}

// commitParked moves this slot's survivors from newlyParked into their
// channels' parked lists. Scan order makes same-slot appends
// node-ascending; a smaller id landing after a bigger one (parks from an
// earlier slot) marks the list for lazy sorting.
func (e *Engine) commitParked() {
	sp := &e.sp
	for _, v := range sp.newlyParked {
		ch := sp.parkedPhys[v]
		if ch < 0 { // woken again before the slot ended
			continue
		}
		lst := sp.parked[ch]
		if len(lst) > 0 && lst[len(lst)-1] > v {
			sp.parkedDirty[ch] = true
		}
		if !sp.parkedSeen[ch] {
			sp.parkedSeen[ch] = true
			sp.parkedTouch = append(sp.parkedTouch, int(ch))
		}
		sp.parked[ch] = append(lst, v)
	}
	sp.newlyParked = sp.newlyParked[:0]
}

// compactParked drops stale entries (nodes no longer parked here) from a
// channel's parked list, sorts it if appends arrived out of order, and
// removes duplicates (a timer wake followed by a re-park on the same
// channel leaves the old entry behind). An entry is live only if the park
// predates this slot: a node whose timer expired and that re-parked on the
// same channel this very slot is in the live listen bucket — it was stepped
// — and its old entry must not double-deliver. Returns the live, sorted,
// duplicate-free list.
func (e *Engine) compactParked(slot, ch int) []int32 {
	sp := &e.sp
	lst := sp.parked[ch]
	if len(lst) == 0 {
		return lst
	}
	w := 0
	for _, v := range lst {
		if sp.parkedPhys[v] == int32(ch) && sp.parkedAt[v] < slot && !sp.retired[v] {
			lst[w] = v
			w++
		}
	}
	lst = lst[:w]
	if sp.parkedDirty[ch] {
		slices.Sort(lst)
		sp.parkedDirty[ch] = false
	}
	w = 0
	for i, v := range lst {
		if i > 0 && v == lst[i-1] {
			continue
		}
		lst[w] = v
		w++
	}
	lst = lst[:w]
	sp.parked[ch] = lst
	return lst
}

// mergedListeners merges the live listen bucket with the channel's
// compacted parked list in ascending node order — exactly the order the
// dense bucket would have held, since a dense scan appends listeners in
// node order and the two sets are disjoint (a parked node is not stepped,
// so it is never in the live bucket).
func (e *Engine) mergedListeners(ch int, pk []int32) []NodeID {
	live := e.listen[ch]
	if len(pk) == 0 {
		return live
	}
	out := e.sp.lscratch[:0]
	i, j := 0, 0
	for i < len(live) || j < len(pk) {
		if j >= len(pk) || (i < len(live) && live[i] < NodeID(pk[j])) {
			out = append(out, live[i])
			i++
		} else {
			out = append(out, NodeID(pk[j]))
			j++
		}
	}
	e.sp.lscratch = out
	return out
}

// pushWake queues a timer wake. Re-parking with an unchanged wake slot
// (the common drain-thrash pattern: woken by a delivery, re-parked toward
// the same phase boundary) revalidates the entry already in the heap
// instead of pushing a duplicate, keeping the heap O(parked).
func (e *Engine) pushWake(v int32, wakeSlot int) {
	sp := &e.sp
	entry := int64(wakeSlot)<<wakeNodeBits | int64(v)
	sp.wakeAt[v] = entry
	if sp.pushed[v] == entry {
		return
	}
	sp.pushed[v] = entry
	h := append(sp.heap, entry)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	sp.heap = h
}

// popWake removes the heap minimum.
func (e *Engine) popWake() {
	h := e.sp.heap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.sp.heap = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h[r] < h[l] {
			small = r
		}
		if h[i] <= h[small] {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
