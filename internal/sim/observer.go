package sim

// teeObserver fans one slot report out to several observers, in order.
type teeObserver []Observer

// OnSlot implements Observer.
func (t teeObserver) OnSlot(slot int, outcomes []ChannelOutcome) {
	for _, o := range t {
		o.OnSlot(slot, outcomes)
	}
}

// Tee combines observers into one that forwards every slot report to each
// non-nil observer in argument order. The engine-owned scratch rule of
// Observer applies to every branch: each observer sees the same slices and
// none may retain them. Nil arguments are dropped; Tee of zero or one
// effective observer returns nil or that observer unwrapped, so callers
// can compose unconditionally without paying for an empty fan-out.
func Tee(observers ...Observer) Observer {
	t := make(teeObserver, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			t = append(t, o)
		}
	}
	switch len(t) {
	case 0:
		return nil
	case 1:
		return t[0]
	default:
		return t
	}
}
