package sim_test

import (
	"testing"
	"testing/quick"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// chaosNode takes random actions every slot and records all feedback —
// fodder for property tests of the engine's conservation laws.
type chaosNode struct {
	rand   interface{ Intn(int) int }
	c      int
	events []sim.Event
	lastOp sim.Op
}

func (n *chaosNode) Step(int) sim.Action {
	n.events = n.events[:0]
	switch n.rand.Intn(3) {
	case 0:
		n.lastOp = sim.OpIdle
		return sim.Idle()
	case 1:
		n.lastOp = sim.OpListen
		return sim.Listen(n.rand.Intn(n.c))
	default:
		n.lastOp = sim.OpBroadcast
		return sim.Broadcast(n.rand.Intn(n.c), "x")
	}
}

func (n *chaosNode) Deliver(_ int, ev sim.Event) { n.events = append(n.events, ev) }
func (n *chaosNode) Done() bool                  { return false }

// TestEngineConservationProperties drives random traffic and asserts the
// collision model's invariants after every slot:
//
//  1. a node receives at most one event per slot (uniform-winner model);
//  2. idle nodes receive nothing;
//  3. broadcasters receive exactly one send outcome;
//  4. per run, winners are broadcasters (EvSendSucceeded implies the node
//     transmitted that slot).
func TestEngineConservationProperties(t *testing.T) {
	prop := func(seedRaw int64, nRaw, cRaw uint8) bool {
		n := int(nRaw%16) + 2
		c := int(cRaw%6) + 1
		asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seedRaw)
		if err != nil {
			return false
		}
		nodes := make([]*chaosNode, n)
		protos := make([]sim.Protocol, n)
		for i := range nodes {
			nodes[i] = &chaosNode{rand: rng.New(seedRaw, int64(i)), c: c}
			protos[i] = nodes[i]
		}
		eng, err := sim.NewEngine(asn, protos, seedRaw)
		if err != nil {
			return false
		}
		for slot := 0; slot < 20; slot++ {
			if err := eng.RunSlot(); err != nil {
				return false
			}
			for _, nd := range nodes {
				if len(nd.events) > 1 {
					return false // at most one event per node per slot
				}
				for _, ev := range nd.events {
					switch nd.lastOp {
					case sim.OpIdle:
						return false // idle nodes hear nothing
					case sim.OpListen:
						if ev.Kind != sim.EvReceived {
							return false
						}
					case sim.OpBroadcast:
						if ev.Kind != sim.EvSendSucceeded && ev.Kind != sim.EvSendFailed {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineOneWinnerPerChannelProperty checks, via the observer, that
// every active channel resolves to exactly one winner among its
// broadcasters (or none when nobody transmits).
func TestEngineOneWinnerPerChannelProperty(t *testing.T) {
	prop := func(seedRaw int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		const c = 3
		asn, err := assign.FullOverlap(n, c, assign.LocalLabels, seedRaw)
		if err != nil {
			return false
		}
		protos := make([]sim.Protocol, n)
		for i := range protos {
			protos[i] = &chaosNode{rand: rng.New(seedRaw, int64(i), 7), c: c}
		}
		valid := true
		obs := sim.ObserverFunc(func(_ int, outcomes []sim.ChannelOutcome) {
			for _, oc := range outcomes {
				if len(oc.Broadcasters) == 0 {
					if oc.Winner != sim.None {
						valid = false
					}
					continue
				}
				found := false
				for _, b := range oc.Broadcasters {
					if b == oc.Winner {
						found = true
						break
					}
				}
				if !found {
					valid = false
				}
			}
		})
		eng, err := sim.NewEngine(asn, protos, seedRaw, sim.WithObserver(obs))
		if err != nil {
			return false
		}
		for slot := 0; slot < 15; slot++ {
			if err := eng.RunSlot(); err != nil {
				return false
			}
		}
		return valid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
