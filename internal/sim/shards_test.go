package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// shardRandNode drives deterministic pseudo-random traffic and keeps a full
// textual log of everything it was delivered — the byte-identity witness for
// the sharded scan.
type shardRandNode struct {
	rand interface{ Intn(int) int }
	c    int
	log  []string
}

func (n *shardRandNode) Step(int) sim.Action {
	switch n.rand.Intn(4) {
	case 0:
		return sim.Idle()
	case 1:
		return sim.Listen(n.rand.Intn(n.c))
	default:
		return sim.Broadcast(n.rand.Intn(n.c), n.rand.Intn(1000))
	}
}

func (n *shardRandNode) Deliver(slot int, ev sim.Event) {
	n.log = append(n.log, fmt.Sprintf("%d/%v/%d/%v/%d", slot, ev.Kind, ev.From, ev.Msg, ev.Channel))
}

func (n *shardRandNode) Done() bool { return false }

// shardTrace runs a fresh engine over asnFn's assignment at the given shard
// count and returns the full execution transcript: every node's delivery log
// plus the observer's view of every channel outcome. Everything downstream
// of phase A is folded in, so any divergence in bucket order, winner draws
// or event delivery shows up as a text diff.
func shardTrace(t *testing.T, asnFn func(t *testing.T) sim.Assignment, n, c, slots, shards int) string {
	t.Helper()
	asn := asnFn(t)
	nodes := make([]sim.Protocol, n)
	recs := make([]*shardRandNode, n)
	for i := range nodes {
		recs[i] = &shardRandNode{rand: rng.New(5, int64(i), 11), c: c}
		nodes[i] = recs[i]
	}
	var sb strings.Builder
	obs := sim.ObserverFunc(func(slot int, outcomes []sim.ChannelOutcome) {
		for _, oc := range outcomes {
			fmt.Fprintf(&sb, "obs %d ch%d b%v w%v l%v\n", slot, oc.Channel, oc.Broadcasters, oc.Winner, oc.Listeners)
		}
	})
	eng := newEngine(t, asn, nodes, 5, sim.WithShards(shards), sim.WithObserver(obs))
	if want := shards; want > 1 {
		if got := eng.Shards(); got != want {
			t.Fatalf("Shards() = %d, want %d", got, want)
		}
	}
	for s := 0; s < slots; s++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range recs {
		fmt.Fprintf(&sb, "node %d: %s\n", i, strings.Join(r.log, ","))
	}
	return sb.String()
}

// TestShardedScanByteIdentity is the engine-level byte-identity contract of
// WithShards: for shard counts 2, 4 and 8 — including counts that do not
// divide the node count — the complete execution transcript (all delivered
// events and all observed channel outcomes) must equal the serial engine's,
// on both a dense shared-core topology and a partitioned one whose channel
// space is much larger than the node count.
func TestShardedScanByteIdentity(t *testing.T) {
	const n, c, slots = 97, 6, 40
	topologies := []struct {
		name string
		fn   func(t *testing.T) sim.Assignment
	}{
		{"shared-core", func(t *testing.T) sim.Assignment {
			asn, err := assign.SharedCore(n, c, 2, 18, assign.LocalLabels, 3)
			if err != nil {
				t.Fatal(err)
			}
			return asn
		}},
		{"partitioned", func(t *testing.T) sim.Assignment {
			asn, err := assign.Partitioned(n, c, 2, assign.LocalLabels, 3)
			if err != nil {
				t.Fatal(err)
			}
			return asn
		}},
	}
	for _, topo := range topologies {
		t.Run(topo.name, func(t *testing.T) {
			serial := shardTrace(t, topo.fn, n, c, slots, 1)
			for _, shards := range []int{2, 4, 8} {
				if got := shardTrace(t, topo.fn, n, c, slots, shards); got != serial {
					t.Errorf("%d shards diverged from serial execution:\n--- %d shards ---\n%s\n--- serial ---\n%s",
						shards, shards, got, serial)
				}
			}
		})
	}
}

// TestShardsClampAndGate pins WithShards' resolution rules: values clamp to
// [1, n]; assignments that do not implement ConcurrentAssignment silently
// run serial; and Reset without options returns the engine to serial.
func TestShardsClampAndGate(t *testing.T) {
	const n = 8
	asn := fullOverlap(t, n, 2) // *assign.Static: concurrency-safe
	mkNodes := func() []sim.Protocol {
		nodes, _ := collidingScripts(n, 1)
		return nodes
	}
	for _, tc := range []struct {
		req, want int
	}{
		{req: 0, want: 1},
		{req: -3, want: 1},
		{req: 4, want: 4},
		{req: 1000, want: n},
	} {
		e := newEngine(t, asn, mkNodes(), 1, sim.WithShards(tc.req))
		if got := e.Shards(); got != tc.want {
			t.Errorf("WithShards(%d) on static assignment: Shards() = %d, want %d", tc.req, got, tc.want)
		}
	}

	// underAdvertised does not implement ConcurrentAssignment, so the
	// request must be gated down to serial.
	gated := &underAdvertised{claim: 2, sets: [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}}
	e := newEngine(t, gated, mkNodes()[:4], 1, sim.WithShards(4))
	if got := e.Shards(); got != 1 {
		t.Errorf("WithShards(4) on non-concurrent assignment: Shards() = %d, want 1", got)
	}

	// Reset without options must drop a previous shard configuration.
	e = newEngine(t, asn, mkNodes(), 1, sim.WithShards(4))
	if err := e.Reset(asn, mkNodes(), 1); err != nil {
		t.Fatal(err)
	}
	if got := e.Shards(); got != 1 {
		t.Errorf("Shards() after option-free Reset = %d, want 1", got)
	}
}

// underAdvertisedConc is underAdvertised plus the concurrency capability, so
// a sharded scan runs over an assignment that hands out physical indices
// beyond its advertised channel count — the growScratch-under-merge path.
type underAdvertisedConc struct{ underAdvertised }

func (a *underAdvertisedConc) ConcurrentChannelSet() bool { return true }

// TestShardedGrowScratchPastAdvertised replays the growScratch scenario with
// a sharded scan: the oversized physical index is discovered during the
// serial merge, the scratch grows once, and delivery proceeds exactly as in
// the serial engine.
func TestShardedGrowScratchPastAdvertised(t *testing.T) {
	const high = 100
	asn := &underAdvertisedConc{underAdvertised{
		claim: 2,
		sets:  [][]int{{0, high}, {0, high}, {0, high}, {0, high}},
	}}
	sender := &scriptNode{actions: []sim.Action{sim.Broadcast(1, "over")}}
	listeners := []*scriptNode{
		{actions: []sim.Action{sim.Listen(1)}},
		{actions: []sim.Action{sim.Listen(1)}},
		{actions: []sim.Action{sim.Listen(1)}},
	}
	e := newEngine(t, asn, []sim.Protocol{sender, listeners[0], listeners[1], listeners[2]}, 9, sim.WithShards(2))
	if got := e.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(sender.events) != 1 || sender.events[0].Kind != sim.EvSendSucceeded {
		t.Fatalf("sender events = %+v, want one EvSendSucceeded", sender.events)
	}
	for i, l := range listeners {
		if len(l.events) != 1 || l.events[0].Kind != sim.EvReceived || l.events[0].Msg != "over" {
			t.Fatalf("listener %d events = %+v, want one EvReceived carrying %q", i, l.events, "over")
		}
	}
}

// TestShardedErrorMatchesSerial pins error determinism: when several nodes
// in different shards produce invalid actions in the same slot, the sharded
// scan must report the lowest-indexed failure with exactly the serial
// engine's message.
func TestShardedErrorMatchesSerial(t *testing.T) {
	const n, c = 97, 3
	asn := fullOverlap(t, n, c)
	mkNodes := func() []sim.Protocol {
		nodes := make([]sim.Protocol, n)
		for i := range nodes {
			s := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
			if i == 23 || i == 71 { // land in different quarters of [0, n)
				s.actions = []sim.Action{sim.Listen(99)}
			}
			nodes[i] = s
		}
		return nodes
	}
	serial := newEngine(t, asn, mkNodes(), 1)
	serialErr := serial.RunSlot()
	if serialErr == nil {
		t.Fatal("serial engine accepted an out-of-range local channel")
	}
	sharded := newEngine(t, asn, mkNodes(), 1, sim.WithShards(4))
	shardedErr := sharded.RunSlot()
	if shardedErr == nil {
		t.Fatal("sharded engine accepted an out-of-range local channel")
	}
	if serialErr.Error() != shardedErr.Error() {
		t.Errorf("sharded error %q != serial error %q", shardedErr, serialErr)
	}
	if want := "node 23"; !strings.Contains(shardedErr.Error(), want) {
		t.Errorf("sharded error %q does not name the lowest failing node (%s)", shardedErr, want)
	}
}
