package sim_test

import (
	"errors"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/sim"
)

// scriptNode is a test protocol that replays a fixed list of actions and
// records every delivered event.
type scriptNode struct {
	actions []sim.Action
	events  []sim.Event
	slots   []int
}

func (s *scriptNode) Step(slot int) sim.Action {
	if slot >= len(s.actions) {
		return sim.Idle()
	}
	return s.actions[slot]
}

func (s *scriptNode) Deliver(slot int, ev sim.Event) {
	s.events = append(s.events, ev)
	s.slots = append(s.slots, slot)
}

func (s *scriptNode) Done() bool { return false }

func fullOverlap(t *testing.T, n, c int) *assign.Static {
	t.Helper()
	asn, err := assign.FullOverlap(n, c, assign.GlobalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	return asn
}

func newEngine(t *testing.T, asn sim.Assignment, nodes []sim.Protocol, seed int64, opts ...sim.Option) *sim.Engine {
	t.Helper()
	e, err := sim.NewEngine(asn, nodes, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleBroadcasterReachesAllListeners(t *testing.T) {
	const n, c = 5, 3
	asn := fullOverlap(t, n, c)
	nodes := make([]sim.Protocol, n)
	scripts := make([]*scriptNode, n)
	for i := range nodes {
		s := &scriptNode{}
		if i == 0 {
			s.actions = []sim.Action{sim.Broadcast(1, "hello")}
		} else {
			s.actions = []sim.Action{sim.Listen(1)}
		}
		scripts[i] = s
		nodes[i] = s
	}
	e := newEngine(t, asn, nodes, 7)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(scripts[0].events) != 1 || scripts[0].events[0].Kind != sim.EvSendSucceeded {
		t.Fatalf("broadcaster events = %+v, want one EvSendSucceeded", scripts[0].events)
	}
	for i := 1; i < n; i++ {
		evs := scripts[i].events
		if len(evs) != 1 {
			t.Fatalf("listener %d got %d events, want 1", i, len(evs))
		}
		ev := evs[0]
		if ev.Kind != sim.EvReceived || ev.From != 0 || ev.Msg != "hello" || ev.Channel != 1 {
			t.Errorf("listener %d event = %+v", i, ev)
		}
	}
}

func TestCollisionExactlyOneWinner(t *testing.T) {
	const n, c = 6, 2
	asn := fullOverlap(t, n, c)
	nodes := make([]sim.Protocol, n)
	scripts := make([]*scriptNode, n)
	for i := range nodes {
		s := &scriptNode{actions: []sim.Action{sim.Broadcast(0, i)}}
		if i == n-1 {
			s.actions = []sim.Action{sim.Listen(0)}
		}
		scripts[i] = s
		nodes[i] = s
	}
	e := newEngine(t, asn, nodes, 3)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	winners := 0
	var winner sim.NodeID
	for i := 0; i < n-1; i++ {
		evs := scripts[i].events
		if len(evs) != 1 {
			t.Fatalf("broadcaster %d got %d events, want 1", i, len(evs))
		}
		switch evs[0].Kind {
		case sim.EvSendSucceeded:
			winners++
			winner = sim.NodeID(i)
		case sim.EvSendFailed:
			// Failed broadcasters must receive the winning message.
			if evs[0].Msg == nil {
				t.Errorf("broadcaster %d failed but got no winning message", i)
			}
		default:
			t.Errorf("broadcaster %d got unexpected event %v", i, evs[0].Kind)
		}
	}
	if winners != 1 {
		t.Fatalf("got %d winners, want exactly 1", winners)
	}
	// Everyone (listener and losers) must have received the winner's message.
	wantMsg := any(int(winner))
	for i := 0; i < n; i++ {
		if sim.NodeID(i) == winner {
			continue
		}
		ev := scripts[i].events[0]
		if ev.Msg != wantMsg || ev.From != winner {
			t.Errorf("node %d saw msg=%v from=%v, want msg=%v from=%v", i, ev.Msg, ev.From, wantMsg, winner)
		}
	}
}

func TestWinnerUniformity(t *testing.T) {
	// Over many independently seeded slots, each of 4 contenders should win
	// roughly 1/4 of the time. This exercises the uniform-winner clause of
	// the collision model.
	const contenders = 4
	const trials = 4000
	wins := make([]int, contenders)
	for trial := 0; trial < trials; trial++ {
		asn := fullOverlap(t, contenders, 1)
		nodes := make([]sim.Protocol, contenders)
		scripts := make([]*scriptNode, contenders)
		for i := range nodes {
			s := &scriptNode{actions: []sim.Action{sim.Broadcast(0, i)}}
			scripts[i] = s
			nodes[i] = s
		}
		e := newEngine(t, asn, nodes, int64(trial))
		if err := e.RunSlot(); err != nil {
			t.Fatal(err)
		}
		for i, s := range scripts {
			if s.events[0].Kind == sim.EvSendSucceeded {
				wins[i]++
			}
		}
	}
	want := trials / contenders
	for i, w := range wins {
		if w < want*8/10 || w > want*12/10 {
			t.Errorf("contender %d won %d of %d slots, want about %d", i, w, trials, want)
		}
	}
}

func TestNoBroadcasterNoEvents(t *testing.T) {
	asn := fullOverlap(t, 3, 2)
	nodes := make([]sim.Protocol, 3)
	scripts := make([]*scriptNode, 3)
	for i := range nodes {
		s := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
		scripts[i] = s
		nodes[i] = s
	}
	e := newEngine(t, asn, nodes, 1)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	for i, s := range scripts {
		if len(s.events) != 0 {
			t.Errorf("silent listener %d received events %+v", i, s.events)
		}
	}
}

func TestChannelIsolation(t *testing.T) {
	// Broadcasts on channel 0 must not reach listeners on channel 1.
	asn := fullOverlap(t, 3, 2)
	a := &scriptNode{actions: []sim.Action{sim.Broadcast(0, "a")}}
	b := &scriptNode{actions: []sim.Action{sim.Listen(1)}}
	c := &scriptNode{actions: []sim.Action{sim.Listen(0)}}
	e := newEngine(t, asn, []sim.Protocol{a, b, c}, 1)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(b.events) != 0 {
		t.Errorf("listener on other channel received %+v", b.events)
	}
	if len(c.events) != 1 || c.events[0].Msg != "a" {
		t.Errorf("co-channel listener got %+v, want message a", c.events)
	}
}

func TestLocalChannelTranslation(t *testing.T) {
	// Two nodes with different local orderings of the same physical
	// channels must still meet when their local indices map to the same
	// physical channel.
	sets := [][]int{{5, 9}, {9, 5}}
	asn := staticFromSets(t, sets, 10, 2, 2)
	a := &scriptNode{actions: []sim.Action{sim.Broadcast(0, "x")}} // physical 5
	b := &scriptNode{actions: []sim.Action{sim.Listen(1)}}         // physical 5
	e := newEngine(t, asn, []sim.Protocol{a, b}, 1)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(b.events) != 1 || b.events[0].Msg != "x" {
		t.Fatalf("node b events = %+v, want the message on shared physical channel", b.events)
	}
	// Event carries b's *local* index (1), not the physical id (5).
	if b.events[0].Channel != 1 {
		t.Errorf("event channel = %d, want local index 1", b.events[0].Channel)
	}
}

// staticSets is a minimal sim.Assignment for hand-built channel sets.
type staticSets struct {
	sets    [][]int
	total   int
	perNode int
	overlap int
}

func (s *staticSets) Nodes() int                           { return len(s.sets) }
func (s *staticSets) Channels() int                        { return s.total }
func (s *staticSets) PerNode() int                         { return s.perNode }
func (s *staticSets) MinOverlap() int                      { return s.overlap }
func (s *staticSets) ChannelSet(n sim.NodeID, _ int) []int { return s.sets[n] }

func staticFromSets(t *testing.T, sets [][]int, total, perNode, overlap int) sim.Assignment {
	t.Helper()
	return &staticSets{sets: sets, total: total, perNode: perNode, overlap: overlap}
}

func TestInvalidChannelIndexFails(t *testing.T) {
	asn := fullOverlap(t, 2, 2)
	bad := &scriptNode{actions: []sim.Action{sim.Listen(5)}}
	ok := &scriptNode{actions: []sim.Action{sim.Idle()}}
	e := newEngine(t, asn, []sim.Protocol{bad, ok}, 1)
	if err := e.RunSlot(); err == nil {
		t.Fatal("engine accepted out-of-range local channel index")
	}
}

func TestNewEngineValidation(t *testing.T) {
	asn := fullOverlap(t, 2, 2)
	if _, err := sim.NewEngine(nil, nil, 1); err == nil {
		t.Error("nil assignment accepted")
	}
	if _, err := sim.NewEngine(asn, []sim.Protocol{&scriptNode{}}, 1); err == nil {
		t.Error("protocol count mismatch accepted")
	}
	if _, err := sim.NewEngine(asn, []sim.Protocol{nil, nil}, 1); err == nil {
		t.Error("nil protocol accepted")
	}
}

// doneAfter terminates after a fixed number of steps.
type doneAfter struct {
	left int
}

func (d *doneAfter) Step(int) sim.Action {
	d.left--
	return sim.Listen(0)
}
func (d *doneAfter) Deliver(int, sim.Event) {}
func (d *doneAfter) Done() bool             { return d.left <= 0 }

func TestRunStopsWhenAllDone(t *testing.T) {
	asn := fullOverlap(t, 2, 1)
	e := newEngine(t, asn, []sim.Protocol{&doneAfter{left: 3}, &doneAfter{left: 5}}, 1)
	slots, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 5 {
		t.Errorf("ran %d slots, want 5 (slowest node)", slots)
	}
	if !e.AllDone() {
		t.Error("engine not AllDone after Run")
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	asn := fullOverlap(t, 1, 1)
	e := newEngine(t, asn, []sim.Protocol{&scriptNode{}}, 1) // never done
	slots, err := e.Run(10)
	if !errors.Is(err, sim.ErrMaxSlots) {
		t.Fatalf("err = %v, want ErrMaxSlots", err)
	}
	if slots != 10 {
		t.Errorf("ran %d slots, want 10", slots)
	}
	// Budget can be extended and the engine continues.
	slots, err = e.Run(20)
	if !errors.Is(err, sim.ErrMaxSlots) || slots != 20 {
		t.Errorf("after extension: slots=%d err=%v", slots, err)
	}
}

func TestDoneNodesAreSkipped(t *testing.T) {
	asn := fullOverlap(t, 2, 1)
	done := &doneAfter{left: 0} // done from the start
	listener := &scriptNode{actions: []sim.Action{sim.Listen(0), sim.Listen(0)}}
	e := newEngine(t, asn, []sim.Protocol{done, listener}, 1)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(listener.events) != 0 {
		t.Errorf("done node still transmitted: %+v", listener.events)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []sim.NodeID {
		const n = 8
		asn := fullOverlap(t, n, 1)
		nodes := make([]sim.Protocol, n)
		scripts := make([]*scriptNode, n)
		for i := range nodes {
			acts := make([]sim.Action, 10)
			for s := range acts {
				acts[s] = sim.Broadcast(0, i)
			}
			scripts[i] = &scriptNode{actions: acts}
			nodes[i] = scripts[i]
		}
		e := newEngine(t, asn, nodes, seed)
		var winners []sim.NodeID
		obsRun(t, e, 10, scripts, &winners)
		return winners
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d: winner %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical winner sequences")
	}
}

func obsRun(t *testing.T, e *sim.Engine, slots int, scripts []*scriptNode, winners *[]sim.NodeID) {
	t.Helper()
	for s := 0; s < slots; s++ {
		if err := e.RunSlot(); err != nil {
			t.Fatal(err)
		}
		for i, sc := range scripts {
			if len(sc.events) > s && sc.events[s].Kind == sim.EvSendSucceeded {
				*winners = append(*winners, sim.NodeID(i))
			}
		}
	}
}

func TestObserverOutcomes(t *testing.T) {
	asn := fullOverlap(t, 4, 2)
	nodes := []sim.Protocol{
		&scriptNode{actions: []sim.Action{sim.Broadcast(0, "m")}},
		&scriptNode{actions: []sim.Action{sim.Broadcast(0, "n")}},
		&scriptNode{actions: []sim.Action{sim.Listen(0)}},
		&scriptNode{actions: []sim.Action{sim.Listen(1)}},
	}
	var got []sim.ChannelOutcome
	obs := sim.ObserverFunc(func(slot int, outcomes []sim.ChannelOutcome) {
		got = append([]sim.ChannelOutcome(nil), outcomes...)
	})
	e := newEngine(t, asn, nodes, 5, sim.WithObserver(obs))
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("observer saw %d channels, want 2", len(got))
	}
	ch0 := got[0]
	if ch0.Channel != 0 || len(ch0.Broadcasters) != 2 || len(ch0.Listeners) != 1 {
		t.Errorf("channel 0 outcome = %+v", ch0)
	}
	if ch0.Winner != 0 && ch0.Winner != 1 {
		t.Errorf("winner = %v, want one of the broadcasters", ch0.Winner)
	}
	ch1 := got[1]
	if ch1.Channel != 1 || ch1.Winner != sim.None || len(ch1.Listeners) != 1 {
		t.Errorf("channel 1 outcome = %+v", ch1)
	}
}

func TestNodeView(t *testing.T) {
	asn := fullOverlap(t, 3, 4)
	v := sim.View(asn, 2)
	if v.ID() != 2 {
		t.Errorf("ID = %v, want 2", v.ID())
	}
	if got := v.NumChannels(0); got != 4 {
		t.Errorf("NumChannels = %d, want 4", got)
	}
}

func TestOpAndEventKindStrings(t *testing.T) {
	if sim.OpBroadcast.String() != "broadcast" || sim.OpListen.String() != "listen" || sim.OpIdle.String() != "idle" {
		t.Error("Op.String mismatch")
	}
	if sim.Op(99).String() != "invalid" {
		t.Error("invalid Op should stringify as invalid")
	}
	if sim.EvReceived.String() != "received" || sim.EvSendSucceeded.String() != "send-succeeded" || sim.EvSendFailed.String() != "send-failed" {
		t.Error("EventKind.String mismatch")
	}
	if sim.EventKind(99).String() != "invalid" {
		t.Error("invalid EventKind should stringify as invalid")
	}
}

func TestNodeViewDynamicSizes(t *testing.T) {
	// A view over a variable-size assignment must report the per-slot size.
	sets := map[int][][]int{
		0: {{0, 1, 2}, {3}},
		1: {{0, 1}, {3, 4, 5, 6}},
	}
	asn := &slotVarying{sets: sets}
	v := sim.View(asn, 1)
	if v.NumChannels(0) != 1 || v.NumChannels(1) != 4 {
		t.Errorf("node 1 sizes = (%d, %d), want (1, 4)", v.NumChannels(0), v.NumChannels(1))
	}
}

// slotVarying returns different channel sets per slot.
type slotVarying struct {
	sets map[int][][]int // slot -> per-node sets
}

func (s *slotVarying) Nodes() int      { return 2 }
func (s *slotVarying) Channels() int   { return 8 }
func (s *slotVarying) PerNode() int    { return 4 }
func (s *slotVarying) MinOverlap() int { return 1 }
func (s *slotVarying) ChannelSet(n sim.NodeID, slot int) []int {
	return s.sets[slot][n]
}
