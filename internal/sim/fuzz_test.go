package sim_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
)

// scripted is a protocol driven entirely by fuzz bytes: node id's action
// in each slot is decoded from script[slot*n+id]. It never terminates —
// the fuzz body runs a fixed number of slots.
type scripted struct {
	script   []byte
	id, n, c int
}

func (s *scripted) Step(slot int) sim.Action {
	idx := slot*s.n + s.id
	if idx >= len(s.script) {
		return sim.Idle()
	}
	b := s.script[idx]
	ch := int(b/3) % s.c
	switch b % 3 {
	case 0:
		return sim.Idle()
	case 1:
		return sim.Listen(ch)
	default:
		return sim.Broadcast(ch, int(b))
	}
}

func (s *scripted) Deliver(slot int, ev sim.Event) {}
func (s *scripted) Done() bool                     { return false }

// FuzzEngineSlot drives the engine with adversarial broadcast/listen
// patterns decoded from raw bytes and re-verifies every slot with the
// invariant oracle: channels resolve in ascending physical order, every
// participant's physical channel is in its set, each node uses one radio
// per slot, and every contended channel has exactly one winner drawn from
// its broadcasters. Any script the engine accepts must produce a
// violation-free outcome stream.
func FuzzEngineSlot(f *testing.F) {
	f.Add(uint8(8), uint8(3), int64(1), []byte("\x02\x05\x08\x0b\x0e\x11\x14\x17"))
	f.Add(uint8(4), uint8(2), int64(7), []byte{2, 2, 2, 2, 1, 1, 1, 1})
	f.Add(uint8(12), uint8(4), int64(42), []byte("mixed traffic with listeners and idles"))
	f.Add(uint8(2), uint8(1), int64(3), []byte{255, 254, 253, 252, 0, 1, 2})
	f.Fuzz(func(t *testing.T, rawN, rawC uint8, seed int64, script []byte) {
		n := 2 + int(rawN)%31 // [2, 32] nodes
		c := 1 + int(rawC)%7  // [1, 7] channels per node
		// SharedCore is deterministic construction (RandomPool's rejection
		// sampling may legitimately fail to find a draw at low overlap).
		asn, err := assign.SharedCore(n, c, 1, 2*c, assign.LocalLabels, seed)
		if err != nil {
			t.Fatalf("SharedCore(%d, %d) rejected valid parameters: %v", n, c, err)
		}
		protos := make([]sim.Protocol, n)
		for i := range protos {
			protos[i] = &scripted{script: script, id: i, n: n, c: c}
		}
		ck := new(invariant.Checker)
		ck.Reset(asn, sim.UniformWinner)
		eng, err := sim.NewEngine(asn, protos, seed, sim.WithObserver(ck))
		if err != nil {
			t.Fatalf("engine rejected a valid setup: %v", err)
		}
		slots := len(script)/n + 2 // run past the script into all-idle slots
		if slots > 64 {
			slots = 64
		}
		for s := 0; s < slots; s++ {
			if err := eng.RunSlot(); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
		}
		if err := ck.Err(); err != nil {
			t.Fatalf("oracle violation (%d total) on n=%d c=%d seed=%d script=%q: %v",
				ck.Violations(), n, c, seed, script, err)
		}
	})
}
