package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/cogradio/crn/internal/rng"
)

// ErrMaxSlots is returned by Engine.Run when the slot budget is exhausted
// before every protocol reported Done.
var ErrMaxSlots = errors.New("sim: slot budget exhausted before all nodes terminated")

// ChannelOutcome describes what happened on one physical channel during one
// slot. It is produced only when an Observer is attached.
type ChannelOutcome struct {
	// Channel is the physical channel index.
	Channel int
	// Broadcasters lists all nodes that transmitted on the channel.
	Broadcasters []NodeID
	// Winner is the broadcaster whose message was received, or None if the
	// channel carried no transmission.
	Winner NodeID
	// Listeners lists all nodes that listened on the channel.
	Listeners []NodeID
}

// Observer receives a per-slot report of all channels that saw activity
// (at least one broadcaster or listener). Outcomes are sorted by channel and
// are only valid for the duration of the call.
type Observer interface {
	OnSlot(slot int, outcomes []ChannelOutcome)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(slot int, outcomes []ChannelOutcome)

// OnSlot implements Observer.
func (f ObserverFunc) OnSlot(slot int, outcomes []ChannelOutcome) { f(slot, outcomes) }

var _ Observer = (ObserverFunc)(nil)

// Engine drives a set of protocol nodes through synchronous slots over a
// channel assignment, resolving contention per the paper's collision model.
// Engines are deterministic: the same assignment, protocols and seed yield
// the same execution.
type Engine struct {
	asn        Assignment
	nodes      []Protocol
	rand       *rand.Rand
	collisions CollisionModel

	slot int
	obs  Observer

	// Per-slot scratch, reused across slots to avoid allocation.
	acts      []Action
	bcast     map[int][]NodeID // physical channel -> broadcasters
	listen    map[int][]NodeID // physical channel -> listeners
	active    []int            // physical channels touched this slot
	activeSet map[int]struct{}
}

// CollisionModel selects how concurrent broadcasts on one channel resolve.
type CollisionModel uint8

const (
	// UniformWinner is the paper's model (Section 2): one uniformly chosen
	// message is delivered; losers learn they failed and receive the
	// winner's message. This is the default.
	UniformWinner CollisionModel = iota
	// AllDelivered is the stronger model common in the cognitive radio
	// literature (the paper's footnote 3): every concurrent message is
	// received by every listener, and every broadcaster succeeds. Useful
	// for ablations; COGCOMP's census phase assumes UniformWinner.
	AllDelivered
)

// String returns the model's name.
func (m CollisionModel) String() string {
	switch m {
	case UniformWinner:
		return "uniform-winner"
	case AllDelivered:
		return "all-delivered"
	default:
		return "invalid"
	}
}

// Option configures an Engine.
type Option func(*Engine)

// WithObserver attaches an observer that is invoked after every slot.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// WithCollisionModel selects the contention semantics (default
// UniformWinner).
func WithCollisionModel(m CollisionModel) Option {
	return func(e *Engine) { e.collisions = m }
}

// NewEngine creates an engine over the given assignment and one protocol per
// node. len(nodes) must equal asn.Nodes(). The seed determines all collision
// tie-breaking; protocols are expected to derive their own streams from the
// same root seed via package rng.
func NewEngine(asn Assignment, nodes []Protocol, seed int64, opts ...Option) (*Engine, error) {
	if asn == nil {
		return nil, errors.New("sim: nil assignment")
	}
	if got, want := len(nodes), asn.Nodes(); got != want {
		return nil, fmt.Errorf("sim: got %d protocols for %d nodes", got, want)
	}
	for i, p := range nodes {
		if p == nil {
			return nil, fmt.Errorf("sim: protocol for node %d is nil", i)
		}
	}
	e := &Engine{
		asn:       asn,
		nodes:     nodes,
		rand:      rng.New(seed, int64(len(nodes)), 0x5e5),
		acts:      make([]Action, len(nodes)),
		bcast:     make(map[int][]NodeID),
		listen:    make(map[int][]NodeID),
		activeSet: make(map[int]struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Slot returns the number of slots executed so far.
func (e *Engine) Slot() int { return e.slot }

// AllDone reports whether every protocol has terminated.
func (e *Engine) AllDone() bool {
	for _, p := range e.nodes {
		if !p.Done() {
			return false
		}
	}
	return true
}

// RunSlot executes exactly one slot: collects actions, resolves each channel,
// and delivers feedback. It returns an error if any protocol produced an
// invalid action (out-of-range local channel index).
func (e *Engine) RunSlot() error {
	slot := e.slot
	e.slot++

	e.touchReset()

	// Phase A: collect actions and bucket nodes by physical channel.
	for i, p := range e.nodes {
		if p.Done() {
			e.acts[i] = Idle()
			continue
		}
		act := p.Step(slot)
		e.acts[i] = act
		if act.Op == OpIdle {
			continue
		}
		set := e.asn.ChannelSet(NodeID(i), slot)
		if act.Channel < 0 || act.Channel >= len(set) {
			return fmt.Errorf("sim: slot %d: node %d chose local channel %d outside [0,%d)",
				slot, i, act.Channel, len(set))
		}
		phys := set[act.Channel]
		e.touch(phys)
		switch act.Op {
		case OpListen:
			e.listen[phys] = append(e.listen[phys], NodeID(i))
		case OpBroadcast:
			e.bcast[phys] = append(e.bcast[phys], NodeID(i))
		default:
			return fmt.Errorf("sim: slot %d: node %d produced invalid op %d", slot, i, act.Op)
		}
	}

	// Phase B: resolve channels in deterministic (sorted) order.
	sort.Ints(e.active)
	var outcomes []ChannelOutcome
	if e.obs != nil {
		outcomes = make([]ChannelOutcome, 0, len(e.active))
	}
	for _, ch := range e.active {
		bs := e.bcast[ch]
		winner := None
		if len(bs) > 0 {
			switch e.collisions {
			case AllDelivered:
				// Footnote-3 semantics: every message goes through.
				winner = bs[0]
				for _, b := range bs {
					e.deliver(b, slot, Event{Kind: EvSendSucceeded, From: b, Msg: e.acts[b].Msg, Channel: e.acts[b].Channel})
				}
				for _, l := range e.listen[ch] {
					for _, b := range bs {
						e.deliver(l, slot, Event{Kind: EvReceived, From: b, Msg: e.acts[b].Msg, Channel: e.acts[l].Channel})
					}
				}
			default:
				winner = bs[e.rand.Intn(len(bs))]
				msg := e.acts[winner].Msg
				for _, b := range bs {
					if b == winner {
						e.deliver(b, slot, Event{Kind: EvSendSucceeded, From: winner, Msg: msg, Channel: e.acts[b].Channel})
					} else {
						e.deliver(b, slot, Event{Kind: EvSendFailed, From: winner, Msg: msg, Channel: e.acts[b].Channel})
					}
				}
				for _, l := range e.listen[ch] {
					e.deliver(l, slot, Event{Kind: EvReceived, From: winner, Msg: msg, Channel: e.acts[l].Channel})
				}
			}
		}
		if e.obs != nil {
			outcomes = append(outcomes, ChannelOutcome{
				Channel:      ch,
				Broadcasters: bs,
				Winner:       winner,
				Listeners:    e.listen[ch],
			})
		}
	}
	if e.obs != nil {
		e.obs.OnSlot(slot, outcomes)
	}
	return nil
}

// Run executes slots until every protocol is done or maxSlots slots have
// been executed in total (across all Run/RunSlot calls). It returns the
// total slot count so far. If the budget runs out first it returns
// ErrMaxSlots; the engine remains usable, so callers may extend the budget
// and continue.
func (e *Engine) Run(maxSlots int) (int, error) {
	for !e.AllDone() {
		if e.slot >= maxSlots {
			return e.slot, ErrMaxSlots
		}
		if err := e.RunSlot(); err != nil {
			return e.slot, err
		}
	}
	return e.slot, nil
}

// RunWhile executes slots while cond returns true and the slot budget lasts.
// cond is evaluated before each slot. It returns the total slot count.
func (e *Engine) RunWhile(maxSlots int, cond func() bool) (int, error) {
	for cond() {
		if e.slot >= maxSlots {
			return e.slot, ErrMaxSlots
		}
		if err := e.RunSlot(); err != nil {
			return e.slot, err
		}
	}
	return e.slot, nil
}

func (e *Engine) deliver(id NodeID, slot int, ev Event) {
	e.nodes[id].Deliver(slot, ev)
}

func (e *Engine) touch(phys int) {
	if _, ok := e.activeSet[phys]; !ok {
		e.activeSet[phys] = struct{}{}
		e.active = append(e.active, phys)
	}
}

func (e *Engine) touchReset() {
	for _, ch := range e.active {
		delete(e.activeSet, ch)
		e.bcast[ch] = e.bcast[ch][:0]
		e.listen[ch] = e.listen[ch][:0]
	}
	e.active = e.active[:0]
}
