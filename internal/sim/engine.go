package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/cogradio/crn/internal/rng"
)

// ErrMaxSlots is returned by Engine.Run when the slot budget is exhausted
// before every protocol reported Done.
var ErrMaxSlots = errors.New("sim: slot budget exhausted before all nodes terminated")

// ChannelOutcome describes what happened on one physical channel during one
// slot. It is produced only when an Observer is attached. The Broadcasters
// and Listeners slices alias the engine's per-slot scratch: they are valid
// only for the duration of the OnSlot call and must be copied to be kept.
type ChannelOutcome struct {
	// Channel is the physical channel index.
	Channel int
	// Broadcasters lists all nodes that transmitted on the channel.
	Broadcasters []NodeID
	// Winner is the broadcaster whose message was received, or None if the
	// channel carried no transmission.
	Winner NodeID
	// Listeners lists all nodes that listened on the channel.
	Listeners []NodeID
}

// Observer receives a per-slot report of all channels that saw activity
// (at least one broadcaster or listener). Outcomes are sorted by channel.
// The outcomes slice and the node slices inside each ChannelOutcome are
// engine-owned scratch, reused on the next slot: they are only valid for
// the duration of the call and must be copied to be retained.
type Observer interface {
	OnSlot(slot int, outcomes []ChannelOutcome)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(slot int, outcomes []ChannelOutcome)

// OnSlot implements Observer.
func (f ObserverFunc) OnSlot(slot int, outcomes []ChannelOutcome) { f(slot, outcomes) }

var _ Observer = (ObserverFunc)(nil)

// Engine drives a set of protocol nodes through synchronous slots over a
// channel assignment, resolving contention per the paper's collision model.
// Engines are deterministic: the same assignment, protocols and seed yield
// the same execution.
type Engine struct {
	asn        Assignment
	nodes      []Protocol
	rand       *rand.Rand
	collisions CollisionModel

	slot int
	obs  Observer
	ctx  context.Context // slot-boundary interrupt check; nil = never

	// Per-slot scratch, reused across slots so a steady-state RunSlot does
	// not allocate. bcast and listen are dense, indexed by physical channel
	// and sized to asn.Channels() up front (grown on demand should an
	// assignment hand out a larger index). touched marks the channels used
	// this slot and active lists them so reset is O(active), not O(C).
	// Resolution scans physical channels in ascending index order — the same
	// deterministic order the previous sorted-map implementation produced.
	acts       []Action
	bcast      [][]NodeID // physical channel -> broadcasters
	listen     [][]NodeID // physical channel -> listeners
	touched    []bool     // physical channel -> used this slot
	active     []int      // physical channels touched this slot (unordered)
	outScratch []ChannelOutcome

	// Sharded phase-A scan (WithShards). shards is the requested shard
	// count; effShards is the count actually used after clamping to the node
	// count and gating on ConcurrentAssignment. shardAcc holds one scratch
	// accumulator per shard and shardFns the pre-built goroutine bodies, so a
	// steady-state sharded slot spawns goroutines without allocating
	// closures. scanSlot carries the slot number into the workers.
	shards    int
	effShards int
	shardAcc  []shardScan
	shardFns  []func()
	shardWG   sync.WaitGroup
	scanSlot  int

	// Event-driven stepping (WithSparse). sparseReq is the requested mode;
	// sp holds the wake-queue state and is live only while sp.on (see
	// sparse.go for the gating rules). audit, when set, receives the sparse
	// scheduler's decisions for external cross-checking.
	sparseReq bool
	audit     WakeAuditor
	sp        sparseState
}

// shardScan is the per-shard scratch of the sharded phase-A scan: the node
// range [lo, hi), the pending (node, physical channel, op) triples collected
// in node-ascending order, and the shard's partial aggregates. pend is kept
// across slots so the steady state appends into pre-grown backing.
type shardScan struct {
	lo, hi     int
	pend       []pendingAct
	broadcasts int
	errNode    int
	err        error
}

// pendingAct records one non-idle action discovered by a shard, to be merged
// into the global per-channel buckets serially. Buffering flat triples
// instead of per-shard dense buckets keeps shard scratch O(nodes/shard)
// rather than O(channels) — partitioned assignments make C grow with n, and
// a per-shard dense copy would multiply that by the shard count.
type pendingAct struct {
	node NodeID
	phys int
	op   Op
}

// slotsExecuted counts every slot executed by any engine in the process; see
// SlotsExecuted.
var slotsExecuted atomic.Int64

// SlotsExecuted returns the total number of slots executed by all engines in
// this process since it started. The counter is monotonic and safe for
// concurrent use; callers measure work by differencing two reads (this is
// what cogbench's -bench-out accounting does).
func SlotsExecuted() int64 { return slotsExecuted.Load() }

// nodesSimulated counts every node instantiated into any engine by Reset;
// see NodesSimulated.
var nodesSimulated atomic.Int64

// NodesSimulated returns the total number of protocol nodes handed to engine
// Resets in this process since it started — one increment of n per trial.
// Like SlotsExecuted it is monotonic and differenced by benchmarks; cogbench
// uses it to amortize allocated bytes into a bytes-per-node figure.
func NodesSimulated() int64 { return nodesSimulated.Load() }

// CollisionModel selects how concurrent broadcasts on one channel resolve.
type CollisionModel uint8

const (
	// UniformWinner is the paper's model (Section 2): one uniformly chosen
	// message is delivered; losers learn they failed and receive the
	// winner's message. This is the default.
	UniformWinner CollisionModel = iota
	// AllDelivered is the stronger model common in the cognitive radio
	// literature (the paper's footnote 3): every concurrent message is
	// received by every listener, and every broadcaster succeeds. Useful
	// for ablations; COGCOMP's census phase assumes UniformWinner.
	AllDelivered
)

// String returns the model's name.
func (m CollisionModel) String() string {
	switch m {
	case UniformWinner:
		return "uniform-winner"
	case AllDelivered:
		return "all-delivered"
	default:
		return "invalid"
	}
}

// Option configures an Engine.
type Option func(*Engine)

// WithObserver attaches an observer that is invoked after every slot.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// WithCollisionModel selects the contention semantics (default
// UniformWinner).
func WithCollisionModel(m CollisionModel) Option {
	return func(e *Engine) { e.collisions = m }
}

// WithShards splits the per-slot protocol scan (phase A of RunSlot) across s
// goroutines over contiguous node ranges. Results are merged in shard- and
// hence node-ascending order, and channel resolution stays serial, so any
// shard count produces executions byte-identical to the serial engine —
// tables, traces and RNG streams included. Values below 1 and above the node
// count are clamped; s > 1 takes effect only when the assignment implements
// ConcurrentAssignment and reports a concurrency-safe ChannelSet, otherwise
// the engine silently runs serially (which is byte-identical anyway).
// Default 1 (serial).
func WithShards(s int) Option {
	return func(e *Engine) { e.shards = s }
}

// NewEngine creates an engine over the given assignment and one protocol per
// node. len(nodes) must equal asn.Nodes(). The seed determines all collision
// tie-breaking; protocols are expected to derive their own streams from the
// same root seed via package rng.
func NewEngine(asn Assignment, nodes []Protocol, seed int64, opts ...Option) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(asn, nodes, seed, opts...); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-initializes the engine over a new assignment, protocol set and
// seed, exactly as NewEngine would — observer and collision model return to
// their defaults before opts apply, and the tie-break stream restarts at the
// derived seed — but the dense per-channel scratch, action buffer and
// generator source are kept, so a trial arena resetting an engine between
// trials allocates nothing once the scratch has grown to the largest shape
// seen. Executions after a Reset are byte-identical to those of a fresh
// engine.
func (e *Engine) Reset(asn Assignment, nodes []Protocol, seed int64, opts ...Option) error {
	if asn == nil {
		return errors.New("sim: nil assignment")
	}
	if got, want := len(nodes), asn.Nodes(); got != want {
		return fmt.Errorf("sim: got %d protocols for %d nodes", got, want)
	}
	for i, p := range nodes {
		if p == nil {
			return fmt.Errorf("sim: protocol for node %d is nil", i)
		}
	}
	// Clear buckets left by a previous run before any reshaping: active
	// indexes the old scratch.
	e.touchReset()
	e.asn = asn
	e.nodes = nodes
	if e.rand == nil {
		e.rand = rng.New(seed, int64(len(nodes)), 0x5e5)
	} else {
		rng.Reseed(e.rand, seed, int64(len(nodes)), 0x5e5)
	}
	e.collisions = UniformWinner
	e.slot = 0
	e.obs = nil
	e.ctx = nil
	e.shards = 1
	e.sparseReq = false
	e.audit = nil
	if cap(e.acts) < len(nodes) {
		e.acts = make([]Action, len(nodes))
	}
	e.acts = e.acts[:len(nodes)]
	c := asn.Channels()
	// Assignments that know their exact maximum physical index let us
	// pre-size the dense scratch past the advertised Channels(), so the
	// growScratch path never fires mid-run.
	if b, ok := asn.(ChannelBounder); ok {
		if m := b.MaxPhysChannel() + 1; m > c {
			c = m
		}
	}
	e.growScratch(c)
	if cap(e.active) < c {
		e.active = make([]int, 0, c)
	}
	for _, opt := range opts {
		opt(e)
	}
	e.configureShards()
	e.configureSparse()
	nodesSimulated.Add(int64(len(nodes)))
	return nil
}

// configureShards resolves the requested shard count against the node count
// and the assignment's concurrency contract, then (re)builds the per-shard
// accumulators and goroutine bodies. Shard ranges are contiguous and cover
// [0, n) in order; pend capacity is pre-sized to the range width so the
// first slots do not regrow it node by node.
func (e *Engine) configureShards() {
	s := e.shards
	n := len(e.nodes)
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	if s > 1 {
		ca, ok := e.asn.(ConcurrentAssignment)
		if !ok || !ca.ConcurrentChannelSet() {
			s = 1
		}
	}
	e.effShards = s
	if s <= 1 {
		return
	}
	if cap(e.shardAcc) < s {
		e.shardAcc = make([]shardScan, s)
		e.shardFns = make([]func(), s)
	}
	e.shardAcc = e.shardAcc[:s]
	e.shardFns = e.shardFns[:s]
	for i := 0; i < s; i++ {
		sc := &e.shardAcc[i]
		sc.lo = i * n / s
		sc.hi = (i + 1) * n / s
		if cap(sc.pend) < sc.hi-sc.lo {
			sc.pend = make([]pendingAct, 0, sc.hi-sc.lo)
		}
		if e.shardFns[i] == nil {
			idx := i
			e.shardFns[i] = func() {
				defer e.shardWG.Done()
				e.scanShard(&e.shardAcc[idx], e.scanSlot)
			}
		}
	}
}

// Slot returns the number of slots executed so far.
func (e *Engine) Slot() int { return e.slot }

// Shards returns the effective shard count of the phase-A scan: the value
// requested via WithShards after clamping and concurrency gating, so 1 means
// the scan runs serially.
func (e *Engine) Shards() int {
	if e.effShards < 1 {
		return 1
	}
	return e.effShards
}

// Collisions returns the engine's collision model. Debug observers (the
// invariant checker) use it to select which semantics to re-verify.
func (e *Engine) Collisions() CollisionModel { return e.collisions }

// AllDone reports whether every protocol has terminated.
func (e *Engine) AllDone() bool {
	if e.sp.on {
		// The sparse scan observes every Done transition as it happens
		// (step, delivery, or initial state), so the count is exact.
		return e.sp.notDone == 0
	}
	for _, p := range e.nodes {
		if !p.Done() {
			return false
		}
	}
	return true
}

// RunSlot executes exactly one slot: collects actions, resolves each channel,
// and delivers feedback. It returns an error if any protocol produced an
// invalid action (out-of-range local channel index), or an *Interrupted
// error — before executing anything — if a context attached via WithContext
// is done.
func (e *Engine) RunSlot() error {
	if err := e.checkInterrupt(); err != nil {
		return err
	}
	slot := e.slot
	e.slot++
	slotsExecuted.Add(1)

	e.touchReset()

	if e.sp.on {
		return e.runSlotSparse(slot)
	}

	// Phase A: collect actions and bucket nodes by physical channel. The
	// sharded scan fills the same buckets in the same node order as the
	// serial one, so everything downstream is oblivious to the choice.
	var broadcasts, maxCh int
	var err error
	if e.effShards > 1 {
		broadcasts, maxCh, err = e.scanSharded(slot)
	} else {
		broadcasts, maxCh, err = e.scanSerial(slot)
	}
	if err != nil {
		return err
	}

	// Fast path: with no broadcaster anywhere there is no feedback to
	// deliver, and with no observer there is nothing to report — skip
	// channel resolution entirely.
	if broadcasts == 0 && e.obs == nil {
		return nil
	}

	// Phase B: resolve channels in deterministic ascending physical order.
	var outcomes []ChannelOutcome
	if e.obs != nil {
		outcomes = e.outScratch[:0]
	}
	for ch := 0; ch <= maxCh; ch++ {
		if !e.touched[ch] {
			continue
		}
		bs := e.bcast[ch]
		winner := None
		if len(bs) > 0 {
			switch e.collisions {
			case AllDelivered:
				// Footnote-3 semantics: every message goes through.
				winner = bs[0]
				for _, b := range bs {
					e.deliver(b, slot, Event{Kind: EvSendSucceeded, From: b, Msg: e.acts[b].Msg, Channel: e.acts[b].Channel})
				}
				for _, l := range e.listen[ch] {
					for _, b := range bs {
						e.deliver(l, slot, Event{Kind: EvReceived, From: b, Msg: e.acts[b].Msg, Channel: e.acts[l].Channel})
					}
				}
			default:
				winner = bs[e.rand.Intn(len(bs))]
				msg := e.acts[winner].Msg
				for _, b := range bs {
					if b == winner {
						e.deliver(b, slot, Event{Kind: EvSendSucceeded, From: winner, Msg: msg, Channel: e.acts[b].Channel})
					} else {
						e.deliver(b, slot, Event{Kind: EvSendFailed, From: winner, Msg: msg, Channel: e.acts[b].Channel})
					}
				}
				for _, l := range e.listen[ch] {
					e.deliver(l, slot, Event{Kind: EvReceived, From: winner, Msg: msg, Channel: e.acts[l].Channel})
				}
			}
		}
		if e.obs != nil {
			outcomes = append(outcomes, ChannelOutcome{
				Channel:      ch,
				Broadcasters: bs,
				Winner:       winner,
				Listeners:    e.listen[ch],
			})
		}
	}
	if e.obs != nil {
		// Keep the (possibly regrown) backing array so the next observed
		// slot appends into it instead of allocating.
		e.outScratch = outcomes
		e.obs.OnSlot(slot, outcomes)
	}
	return nil
}

// Run executes slots until every protocol is done or maxSlots slots have
// been executed in total (across all Run/RunSlot calls). It returns the
// total slot count so far. If the budget runs out first it returns
// ErrMaxSlots; the engine remains usable, so callers may extend the budget
// and continue.
func (e *Engine) Run(maxSlots int) (int, error) {
	for !e.AllDone() {
		if e.slot >= maxSlots {
			return e.slot, ErrMaxSlots
		}
		if err := e.RunSlot(); err != nil {
			return e.slot, err
		}
	}
	return e.slot, nil
}

// RunWhile executes slots while cond returns true and the slot budget lasts.
// cond is evaluated before each slot. It returns the total slot count.
func (e *Engine) RunWhile(maxSlots int, cond func() bool) (int, error) {
	for cond() {
		if e.slot >= maxSlots {
			return e.slot, ErrMaxSlots
		}
		if err := e.RunSlot(); err != nil {
			return e.slot, err
		}
	}
	return e.slot, nil
}

// scanSerial is the single-goroutine phase-A scan: step every non-done node
// in index order and bucket its action by physical channel. It returns the
// broadcast count and the highest channel touched (-1 if none).
func (e *Engine) scanSerial(slot int) (broadcasts, maxCh int, err error) {
	maxCh = -1 // highest physical channel touched; bounds phase B's scan
	for i, p := range e.nodes {
		if p.Done() {
			e.acts[i] = Idle()
			continue
		}
		act := p.Step(slot)
		e.acts[i] = act
		if act.Op == OpIdle {
			continue
		}
		set := e.asn.ChannelSet(NodeID(i), slot)
		if act.Channel < 0 || act.Channel >= len(set) {
			return 0, 0, fmt.Errorf("sim: slot %d: node %d chose local channel %d outside [0,%d)",
				slot, i, act.Channel, len(set))
		}
		phys := set[act.Channel]
		if phys < 0 {
			return 0, 0, fmt.Errorf("sim: slot %d: assignment mapped node %d to negative physical channel %d", slot, i, phys)
		}
		if phys >= len(e.bcast) {
			e.growScratch(phys + 1)
		}
		if !e.touched[phys] {
			e.touched[phys] = true
			e.active = append(e.active, phys)
		}
		if phys > maxCh {
			maxCh = phys
		}
		switch act.Op {
		case OpListen:
			e.listen[phys] = append(e.listen[phys], NodeID(i))
		case OpBroadcast:
			e.bcast[phys] = append(e.bcast[phys], NodeID(i))
			broadcasts++
		default:
			return 0, 0, fmt.Errorf("sim: slot %d: node %d produced invalid op %d", slot, i, act.Op)
		}
	}
	return broadcasts, maxCh, nil
}

// scanSharded runs phase A across effShards goroutines, each stepping a
// contiguous node range into a private pend list, then merges the lists into
// the global per-channel buckets in shard-ascending order. Because shard
// ranges partition [0, n) in order and each shard appends in node order, the
// merged bucket contents, the active-channel sequence and maxCh are exactly
// those of scanSerial — phase B (including its RNG draws) observes no
// difference. On error the lowest failing node index wins, matching the
// serial scan's message; unlike the serial scan, nodes past the failing one
// may already have stepped, but scan errors are fatal to the run so no
// caller observes the difference.
func (e *Engine) scanSharded(slot int) (int, int, error) {
	e.scanSlot = slot
	s := e.effShards
	for i := 1; i < s; i++ {
		e.shardWG.Add(1)
		go e.shardFns[i]()
	}
	e.scanShard(&e.shardAcc[0], slot)
	e.shardWG.Wait()
	errNode := -1
	var firstErr error
	for i := 0; i < s; i++ {
		if sc := &e.shardAcc[i]; sc.err != nil && (errNode < 0 || sc.errNode < errNode) {
			errNode, firstErr = sc.errNode, sc.err
		}
	}
	if firstErr != nil {
		return 0, 0, firstErr
	}
	broadcasts := 0
	maxCh := -1
	for i := 0; i < s; i++ {
		sc := &e.shardAcc[i]
		broadcasts += sc.broadcasts
		for _, pa := range sc.pend {
			phys := pa.phys
			if phys >= len(e.bcast) {
				e.growScratch(phys + 1)
			}
			if !e.touched[phys] {
				e.touched[phys] = true
				e.active = append(e.active, phys)
			}
			if phys > maxCh {
				maxCh = phys
			}
			if pa.op == OpListen {
				e.listen[phys] = append(e.listen[phys], pa.node)
			} else {
				e.bcast[phys] = append(e.bcast[phys], pa.node)
			}
		}
	}
	return broadcasts, maxCh, nil
}

// scanShard steps the nodes of one shard, validating exactly as scanSerial
// does and buffering non-idle actions as flat (node, phys, op) triples. It
// writes only shard-private state and distinct e.acts elements, so shards
// never contend.
func (e *Engine) scanShard(sc *shardScan, slot int) {
	sc.pend = sc.pend[:0]
	sc.broadcasts = 0
	sc.err = nil
	for i := sc.lo; i < sc.hi; i++ {
		p := e.nodes[i]
		if p.Done() {
			e.acts[i] = Idle()
			continue
		}
		act := p.Step(slot)
		e.acts[i] = act
		if act.Op == OpIdle {
			continue
		}
		set := e.asn.ChannelSet(NodeID(i), slot)
		if act.Channel < 0 || act.Channel >= len(set) {
			sc.errNode = i
			sc.err = fmt.Errorf("sim: slot %d: node %d chose local channel %d outside [0,%d)",
				slot, i, act.Channel, len(set))
			return
		}
		phys := set[act.Channel]
		if phys < 0 {
			sc.errNode = i
			sc.err = fmt.Errorf("sim: slot %d: assignment mapped node %d to negative physical channel %d", slot, i, phys)
			return
		}
		switch act.Op {
		case OpBroadcast:
			sc.broadcasts++
		case OpListen:
		default:
			sc.errNode = i
			sc.err = fmt.Errorf("sim: slot %d: node %d produced invalid op %d", slot, i, act.Op)
			return
		}
		sc.pend = append(sc.pend, pendingAct{node: NodeID(i), phys: phys, op: act.Op})
	}
}

func (e *Engine) deliver(id NodeID, slot int, ev Event) {
	e.nodes[id].Deliver(slot, ev)
}

// growScratch extends the dense per-channel scratch to cover at least n
// physical channels — taken at Reset time and when an assignment hands out
// an index at or above the asn.Channels() it advertised at construction.
func (e *Engine) growScratch(n int) {
	if short := n - len(e.bcast); short > 0 {
		e.bcast = append(e.bcast, make([][]NodeID, short)...)
		e.listen = append(e.listen, make([][]NodeID, short)...)
		e.touched = append(e.touched, make([]bool, short)...)
	}
	if e.sp.on {
		e.growParked(len(e.bcast))
	}
}

func (e *Engine) touchReset() {
	for _, ch := range e.active {
		e.touched[ch] = false
		e.bcast[ch] = e.bcast[ch][:0]
		e.listen[ch] = e.listen[ch][:0]
	}
	e.active = e.active[:0]
}
