package sim_test

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

func collidingScripts(n, slots int) ([]sim.Protocol, []*scriptNode) {
	nodes := make([]sim.Protocol, n)
	scripts := make([]*scriptNode, n)
	for i := range nodes {
		s := &scriptNode{}
		for slot := 0; slot < slots; slot++ {
			// Half the nodes contend on channel 0, the rest listen there —
			// every slot draws from the engine's tie-break stream.
			if i%2 == 0 {
				s.actions = append(s.actions, sim.Broadcast(0, i*1000+slot))
			} else {
				s.actions = append(s.actions, sim.Listen(0))
			}
		}
		scripts[i] = s
		nodes[i] = s
	}
	return nodes, scripts
}

func runSlots(t *testing.T, e *sim.Engine, slots int) {
	t.Helper()
	for i := 0; i < slots; i++ {
		if err := e.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
}

func sameEvents(t *testing.T, want, got []*scriptNode) {
	t.Helper()
	for u := range want {
		w, g := want[u].events, got[u].events
		if len(w) != len(g) {
			t.Fatalf("node %d: %d events != %d events", u, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d event %d: %+v != %+v", u, i, g[i], w[i])
			}
		}
	}
}

// TestResetMatchesFresh is the engine half of the determinism-vs-reuse
// contract: an engine that has already executed one run, then is Reset, must
// replay exactly the execution a fresh engine produces — including every
// collision tie-break.
func TestResetMatchesFresh(t *testing.T) {
	const n, c, slots, seed = 6, 3, 20, 77
	asn := fullOverlap(t, n, c)

	freshNodes, freshScripts := collidingScripts(n, slots)
	fresh := newEngine(t, asn, freshNodes, seed)
	runSlots(t, fresh, slots)

	// Dirty a reusable engine with a different run (different seed and node
	// count) before resetting it into the fresh engine's configuration.
	dirtyNodes, _ := collidingScripts(4, 5)
	reused := newEngine(t, fullOverlap(t, 4, 2), dirtyNodes, 5)
	runSlots(t, reused, 5)

	againNodes, againScripts := collidingScripts(n, slots)
	if err := reused.Reset(asn, againNodes, seed); err != nil {
		t.Fatal(err)
	}
	if reused.Slot() != 0 {
		t.Fatalf("Reset left slot counter at %d", reused.Slot())
	}
	runSlots(t, reused, slots)
	sameEvents(t, freshScripts, againScripts)
}

// TestResetRestoresDefaults checks that observer and collision model do not
// leak from a previous configuration: Reset without options must behave like
// a fresh NewEngine without options.
func TestResetRestoresDefaults(t *testing.T) {
	const n, slots = 4, 6
	asn := fullOverlap(t, n, 2)
	observed := 0
	obs := sim.ObserverFunc(func(int, []sim.ChannelOutcome) { observed++ })

	nodes, _ := collidingScripts(n, slots)
	e := newEngine(t, asn, nodes, 1, sim.WithObserver(obs), sim.WithCollisionModel(sim.AllDelivered))
	runSlots(t, e, slots)
	if observed != slots {
		t.Fatalf("sanity: observer saw %d slots, want %d", observed, slots)
	}

	nodes2, scripts2 := collidingScripts(n, slots)
	if err := e.Reset(asn, nodes2, 1); err != nil {
		t.Fatal(err)
	}
	runSlots(t, e, slots)
	if observed != slots {
		t.Errorf("observer leaked through Reset: saw %d slots, want %d", observed, slots)
	}
	// Under the default UniformWinner model a losing broadcaster receives
	// EvSendFailed; under the leaked AllDelivered model it never would.
	failed := 0
	for _, s := range scripts2 {
		for _, ev := range s.events {
			if ev.Kind == sim.EvSendFailed {
				failed++
			}
		}
	}
	if failed == 0 {
		t.Error("collision model leaked through Reset: no EvSendFailed under default model")
	}
}

// TestResetValidates mirrors NewEngine's validation.
func TestResetValidates(t *testing.T) {
	nodes, _ := collidingScripts(4, 1)
	e := newEngine(t, fullOverlap(t, 4, 2), nodes, 1)
	if err := e.Reset(nil, nodes, 1); err == nil {
		t.Error("Reset accepted a nil assignment")
	}
	if err := e.Reset(fullOverlap(t, 5, 2), nodes, 1); err == nil {
		t.Error("Reset accepted a protocol count mismatch")
	}
	if err := e.Reset(fullOverlap(t, 4, 2), []sim.Protocol{nodes[0], nil, nodes[2], nodes[3]}, 1); err == nil {
		t.Error("Reset accepted a nil protocol")
	}
}

// underAdvertised claims a small channel count but hands out physical
// indices far beyond it, forcing the engine's scratch to grow mid-run.
type underAdvertised struct {
	claim int
	sets  [][]int
}

func (a *underAdvertised) Nodes() int                           { return len(a.sets) }
func (a *underAdvertised) Channels() int                        { return a.claim }
func (a *underAdvertised) PerNode() int                         { return len(a.sets[0]) }
func (a *underAdvertised) MinOverlap() int                      { return 1 }
func (a *underAdvertised) ChannelSet(n sim.NodeID, _ int) []int { return a.sets[n] }

// TestGrowScratchPastAdvertisedChannels drives an assignment past its
// advertised Channels() and checks that delivery on the oversized physical
// index still works — covering growScratch's single-resize path.
func TestGrowScratchPastAdvertisedChannels(t *testing.T) {
	const high = 100 // far above the advertised channel count of 2
	asn := &underAdvertised{claim: 2, sets: [][]int{{0, high}, {0, high}}}
	sender := &scriptNode{actions: []sim.Action{sim.Broadcast(1, "over")}}
	receiver := &scriptNode{actions: []sim.Action{sim.Listen(1)}}
	e := newEngine(t, asn, []sim.Protocol{sender, receiver}, 9)
	if err := e.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(receiver.events) != 1 || receiver.events[0].Kind != sim.EvReceived || receiver.events[0].Msg != "over" {
		t.Fatalf("receiver events = %+v, want one EvReceived carrying %q", receiver.events, "over")
	}
	if len(sender.events) != 1 || sender.events[0].Kind != sim.EvSendSucceeded {
		t.Fatalf("sender events = %+v, want one EvSendSucceeded", sender.events)
	}
}
