// Package sim implements the synchronous slotted radio model of Gilbert,
// Kuhn, Newport and Zheng (PODC 2015): a single-hop cognitive radio network
// in which, per slot, every node tunes to one of its available channels and
// either broadcasts or listens.
//
// The collision model follows Section 2 of the paper exactly: if several
// nodes broadcast concurrently on one channel, one of their messages —
// chosen uniformly at random — is received by every listener on that
// channel. Every broadcaster learns whether it succeeded, and each failed
// broadcaster also receives the winning message. (The paper argues this
// abstraction is implementable with poly-logarithmic overhead via standard
// backoff; package backoff reproduces that claim empirically.)
package sim

// NodeID identifies a node. Nodes are numbered 0..n-1 and IDs double as the
// "unique identity" the model grants every node.
type NodeID int

// None is the sentinel NodeID meaning "no node" (e.g. no winner on an idle
// channel).
const None NodeID = -1

// Op is what a node does with its radio during one slot.
type Op uint8

// Radio operations. OpIdle means the node does not touch the medium at all
// (a terminated node); OpListen tunes to a channel and receives; OpBroadcast
// transmits a message on a channel.
const (
	OpIdle Op = iota
	OpListen
	OpBroadcast
)

// String returns a short human-readable name for the operation.
func (o Op) String() string {
	switch o {
	case OpIdle:
		return "idle"
	case OpListen:
		return "listen"
	case OpBroadcast:
		return "broadcast"
	default:
		return "invalid"
	}
}

// Message is an opaque protocol payload. Protocols define their own concrete
// message types and type-switch on delivery. Messages must be treated as
// immutable once handed to the engine.
type Message any

// Action is a node's decision for one slot. Channel is a *local* channel
// index in [0, c): the engine translates it to a physical channel through
// the node's assignment, so protocols can be written against local labels
// only, exactly as the model prescribes.
//
// Sleep is an optional dormancy hint (see Forever). A non-zero Sleep on an
// OpIdle or OpListen action promises: "absent any delivery to this node, my
// next Sleep calls to Step would return exactly this action, mutate no
// state, and draw no randomness." A sparse engine (WithSparse) uses the
// hint to skip those Step calls — parking listeners on their channel so
// deliveries still reach them and re-wake them eagerly — while the dense
// engine ignores it entirely, which is what keeps sparse and dense
// executions byte-identical. Hints on OpBroadcast actions are ignored (a
// broadcaster always gets feedback, so it can never be dormant).
type Action struct {
	Op      Op
	Channel int
	Msg     Message
	Sleep   int
	// Quiet strengthens a listen hint (see ParkListenQuiet): deliveries are
	// still handed to the node but do not re-wake it. Meaningless without a
	// positive Sleep on an OpListen action; the dense engine ignores it.
	Quiet bool
}

// Forever is the Sleep value for an open-ended dormancy hint: the node
// promises to repeat its action until a delivery wakes it. An OpIdle action
// with Sleep >= Forever is only re-stepped if the slot budget ends first (a
// parked listener is re-woken by any broadcast on its channel).
const Forever = 1 << 30

// Idle returns the action of a node that has terminated or sleeps this slot.
func Idle() Action { return Action{Op: OpIdle} }

// Sleep returns an Idle action carrying a dormancy hint: the node promises
// that, absent deliveries, its next k Steps would also return Idle with no
// state change and no RNG draws.
func Sleep(k int) Action { return Action{Op: OpIdle, Sleep: k} }

// Listen returns the action of listening on local channel ch.
func Listen(ch int) Action { return Action{Op: OpListen, Channel: ch} }

// ParkListen returns a Listen action carrying a dormancy hint: the node
// promises that, absent deliveries, its next k Steps would also return
// Listen(ch) with no state change and no RNG draws. A sparse engine keeps
// the node tuned to the channel (any broadcast there is delivered and
// re-wakes it) without stepping it.
func ParkListen(ch, k int) Action { return Action{Op: OpListen, Channel: ch, Sleep: k} }

// ParkListenQuiet is ParkListen with a stronger promise: deliveries may
// mutate the node's state (it still hears every broadcast on the channel)
// but cannot change the actions its next k Steps would return, so the
// engine keeps it parked through deliveries instead of re-waking it. This
// is the hint for drain patterns — a node that collects a long stream of
// messages while its own behavior stays a fixed listen (COGCOMP's census
// roster fill) — where eager re-wakes would re-step the whole audience
// every slot. A delivery that flips the node's Done still retires it.
func ParkListenQuiet(ch, k int) Action {
	return Action{Op: OpListen, Channel: ch, Sleep: k, Quiet: true}
}

// Broadcast returns the action of broadcasting msg on local channel ch.
func Broadcast(ch int, msg Message) Action {
	return Action{Op: OpBroadcast, Channel: ch, Msg: msg}
}

// EventKind classifies feedback delivered to a node after a slot resolves.
type EventKind uint8

// Event kinds. EvReceived is delivered to listeners that heard a message.
// EvSendSucceeded is delivered to the (unique) winning broadcaster on a
// contended channel. EvSendFailed is delivered to losing broadcasters and
// carries the winning message, per the model.
const (
	EvReceived EventKind = iota + 1
	EvSendSucceeded
	EvSendFailed
)

// String returns a short human-readable name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EvReceived:
		return "received"
	case EvSendSucceeded:
		return "send-succeeded"
	case EvSendFailed:
		return "send-failed"
	default:
		return "invalid"
	}
}

// Event is the feedback a node receives after a slot. From is the sender of
// Msg (the winning broadcaster). Channel is the node's own *local* index of
// the channel on which the event happened, so protocols never observe
// physical channel identities.
type Event struct {
	Kind    EventKind
	From    NodeID
	Msg     Message
	Channel int
}

// Protocol is the behavior of one node. The engine drives all nodes in
// lockstep: each slot it calls Step on every non-done node, resolves the
// medium, then calls Deliver for every node that received feedback. A node
// for which Done reports true is skipped entirely (its radio is off).
//
// Step and Deliver are always invoked from a single goroutine; protocol
// implementations need no internal locking.
type Protocol interface {
	// Step returns the node's action for the given slot.
	Step(slot int) Action
	// Deliver reports the outcome of the node's action in the given slot.
	// It is called at most once per slot, and only when there is feedback:
	// silent listening (nothing broadcast on the channel) produces no call.
	Deliver(slot int, ev Event)
	// Done reports whether the node has terminated.
	Done() bool
}

// Assignment describes which physical channels each node may use in each
// slot. Implementations live in package assign; the interface is defined
// here so the engine does not depend on generators.
type Assignment interface {
	// Nodes returns n, the number of nodes.
	Nodes() int
	// Channels returns C, the number of physical channels.
	Channels() int
	// PerNode returns c, the number of channels available to each node.
	PerNode() int
	// MinOverlap returns k, the guaranteed pairwise overlap.
	MinOverlap() int
	// ChannelSet returns the node's channel set for the given slot as a
	// slice mapping local index -> physical channel. The returned slice is
	// owned by the assignment and must not be mutated; for static
	// assignments it is independent of slot.
	ChannelSet(node NodeID, slot int) []int
}

// ConcurrentAssignment is an optional Assignment interface declaring that
// ChannelSet is safe for concurrent calls with distinct nodes — true for
// immutable assignments (assign.Static), false for stateful ones that cache
// or re-draw sets per call (dynamic re-draws, jamming adapters). The engine
// shards its per-slot protocol scan (WithShards) only over assignments that
// report true; everything else runs the serial scan regardless of the
// requested shard count.
type ConcurrentAssignment interface {
	Assignment
	// ConcurrentChannelSet reports whether ChannelSet may be called
	// concurrently for distinct nodes without synchronization.
	ConcurrentChannelSet() bool
}

// SlotInvariantAssignment is an optional Assignment interface declaring
// that ChannelSet ignores its slot argument — true for immutable static
// assignments, false for dynamic re-draws and jamming adapters whose sets
// change per slot. The sparse engine (WithSparse) parks dormant listeners
// by the physical channel their local choice mapped to at park time; that
// cache is only sound when the mapping cannot change underneath them, so
// sparse stepping engages only over assignments that report true.
type SlotInvariantAssignment interface {
	Assignment
	// SlotInvariantChannelSet reports whether ChannelSet(node, slot) is
	// independent of slot for every node.
	SlotInvariantChannelSet() bool
}

// ChannelBounder is an optional Assignment interface reporting the largest
// physical channel index the assignment will ever hand out. Channels()
// already bounds well-formed assignments, but implementations that know
// their exact maximum let the engine pre-size its dense per-channel scratch
// at Reset so the grow path never fires mid-run (the grow path survives for
// assignments without this knowledge).
type ChannelBounder interface {
	// MaxPhysChannel returns the largest physical channel index ChannelSet
	// can return, or -1 if no node holds any channel.
	MaxPhysChannel() int
}
