package sim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// drowsyNode drives pseudo-random traffic laced with random dormancy hints
// while honouring the hint contract exactly: once it has promised to repeat
// an action for k slots it returns that same action — without drawing from
// its RNG — until the promise expires or a delivery wakes it. Because fresh
// draws happen at exactly the same slots whether the engine steps it densely
// or skips the promised stretch, any divergence between the two modes is an
// engine bug, not a protocol artifact.
type drowsyNode struct {
	id   int
	rand *rand.Rand
	c    int

	pending      sim.Action
	pendingUntil int // last slot covered by the current promise; -1 when none

	draws     int // fresh RNG draws taken (identical under dense and sparse)
	received  int // EvReceived deliveries
	doneDraws int // retire after this many fresh draws (0 = never)
	doneHeard int // retire after this many receptions (0 = never)

	log []string
}

var _ sim.Protocol = (*drowsyNode)(nil)

func (n *drowsyNode) Step(slot int) sim.Action {
	if slot <= n.pendingUntil {
		act := n.pending
		if act.Sleep < sim.Forever {
			act.Sleep = n.pendingUntil - slot
		}
		return act
	}
	n.draws++
	act := n.fresh()
	if act.Op != sim.OpBroadcast && act.Sleep > 0 {
		n.pending = act
		n.pendingUntil = slot + act.Sleep
	} else {
		n.pendingUntil = -1
	}
	return act
}

func (n *drowsyNode) fresh() sim.Action {
	switch n.rand.Intn(8) {
	case 0:
		return sim.Idle()
	case 1:
		return sim.Sleep(1 + n.rand.Intn(6))
	case 2:
		return sim.ParkListen(n.rand.Intn(n.c), 1+n.rand.Intn(6))
	case 7:
		// A quiet park: deliveries still mutate state (reception counters,
		// the log, even Done) but never void the promise.
		return sim.ParkListenQuiet(n.rand.Intn(n.c), 1+n.rand.Intn(6))
	case 3:
		// A dormancy hint on a broadcast must be ignored by the engine: the
		// node stays awake and is stepped again next slot in both modes.
		act := sim.Broadcast(n.rand.Intn(n.c), n.id*100000+n.draws)
		act.Sleep = 3
		return act
	case 4, 5:
		return sim.Listen(n.rand.Intn(n.c))
	default:
		return sim.Broadcast(n.rand.Intn(n.c), n.id*100000+n.draws)
	}
}

func (n *drowsyNode) Deliver(slot int, ev sim.Event) {
	// A delivery voids an outstanding promise — the engine woke us, and the
	// contract says the next Step may change course — unless the promise was
	// quiet, in which case the node keeps repeating its parked listen while
	// its counters (and possibly Done) change underneath.
	if !(slot <= n.pendingUntil && n.pending.Quiet) {
		n.pendingUntil = -1
	}
	if ev.Kind == sim.EvReceived {
		n.received++
	}
	n.log = append(n.log, fmt.Sprintf("%d/%v/%d/%v/%d", slot, ev.Kind, ev.From, ev.Msg, ev.Channel))
}

func (n *drowsyNode) Done() bool {
	return (n.doneDraws > 0 && n.draws >= n.doneDraws) ||
		(n.doneHeard > 0 && n.received >= n.doneHeard)
}

// drowsyTrace runs n chaos nodes for the given slot budget and returns the
// full execution transcript: every node's delivery log, fresh-draw count and
// final promise state. In sparse mode the wake-queue oracle is attached, so
// any dormant node that is stepped — or awake node that is skipped — fails
// the run directly.
func drowsyTrace(t *testing.T, asnFn func(t *testing.T) sim.Assignment, n, c, slots int, model sim.CollisionModel, sparse bool) string {
	t.Helper()
	asn := asnFn(t)
	nodes := make([]sim.Protocol, n)
	recs := make([]*drowsyNode, n)
	for i := range nodes {
		recs[i] = &drowsyNode{id: i, rand: rng.New(7, int64(i), 23), c: c, pendingUntil: -1}
		switch i % 5 {
		case 1:
			recs[i].doneDraws = 4 + i%7 // retires mid-run at a fresh draw
		case 2:
			recs[i].doneHeard = 2 // retires the moment a delivery informs it
		}
		nodes[i] = recs[i]
	}
	opts := []sim.Option{sim.WithCollisionModel(model)}
	var wake *invariant.WakeChecker
	if sparse {
		wake = new(invariant.WakeChecker)
		wake.Reset(n)
		opts = append(opts, sim.WithSparse(), sim.WithWakeAudit(wake))
	}
	eng := newEngine(t, asn, nodes, 7, opts...)
	if eng.Sparse() != sparse {
		t.Fatalf("Sparse() = %v, want %v", eng.Sparse(), sparse)
	}
	for s := 0; s < slots; s++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	if wake != nil {
		if err := wake.Err(); err != nil {
			t.Fatalf("wake-queue oracle (%d violations): %v", wake.WakeViolations(), err)
		}
	}
	var sb strings.Builder
	for i, r := range recs {
		fmt.Fprintf(&sb, "node %d: draws=%d until=%d done=%v log=%s\n",
			i, r.draws, r.pendingUntil, r.Done(), strings.Join(r.log, ","))
	}
	fmt.Fprintf(&sb, "slot=%d alldone=%v\n", eng.Slot(), eng.AllDone())
	return sb.String()
}

// TestSparseByteIdentityChaos is the engine-level byte-identity contract of
// WithSparse: over random traffic with random finite dormancy hints, parked
// listens, ignored broadcast hints and mid-run retirement, the complete
// execution transcript must equal the dense engine's under both collision
// models and on topologies that exercise channel contention, partition
// silence and full overlap. The sparse runs carry the wake-queue oracle, so
// the schedule is additionally cross-checked against every hint as it runs.
func TestSparseByteIdentityChaos(t *testing.T) {
	const n, c, slots = 97, 6, 160
	topologies := []struct {
		name string
		fn   func(t *testing.T) sim.Assignment
	}{
		{"shared-core", func(t *testing.T) sim.Assignment {
			asn, err := assign.SharedCore(n, c, 2, 18, assign.LocalLabels, 3)
			if err != nil {
				t.Fatal(err)
			}
			return asn
		}},
		{"partitioned", func(t *testing.T) sim.Assignment {
			asn, err := assign.Partitioned(n, c, 2, assign.LocalLabels, 3)
			if err != nil {
				t.Fatal(err)
			}
			return asn
		}},
		{"full-overlap", func(t *testing.T) sim.Assignment {
			return fullOverlap(t, n, c)
		}},
	}
	for _, topo := range topologies {
		for _, model := range []sim.CollisionModel{sim.UniformWinner, sim.AllDelivered} {
			t.Run(fmt.Sprintf("%s/%v", topo.name, model), func(t *testing.T) {
				dense := drowsyTrace(t, topo.fn, n, c, slots, model, false)
				sparseT := drowsyTrace(t, topo.fn, n, c, slots, model, true)
				if sparseT != dense {
					t.Errorf("sparse diverged from dense:\n--- sparse ---\n%s\n--- dense ---\n%s", sparseT, dense)
				}
			})
		}
	}
}

// TestSparseForeverPark pins the Forever contract: a node that parks a
// listen forever is never stepped again, yet still hears broadcasts on its
// channel (which void the promise); a node idling forever is simply gone.
// The transcript must match the dense engine's, where both nodes are stepped
// every slot.
func TestSparseForeverPark(t *testing.T) {
	const n, c, slots = 6, 2, 30
	run := func(sparse bool) string {
		asn := fullOverlap(t, n, c)
		nodes := make([]sim.Protocol, n)
		recs := make([]*drowsyNode, n)
		for i := range nodes {
			recs[i] = &drowsyNode{id: i, rand: rng.New(11, int64(i), 29), c: c, pendingUntil: -1}
			nodes[i] = recs[i]
		}
		// Node 0 parks a listen on channel 1 forever; node 1 idles forever.
		// A scripted promise with Sleep >= Forever never expires on its own.
		recs[0].pending = sim.ParkListen(1, 0)
		recs[0].pendingUntil = slots * 2
		recs[1].pending = sim.Sleep(0)
		recs[1].pendingUntil = slots * 2
		for _, r := range recs[:2] {
			r.pending.Sleep = sim.Forever
		}
		var opts []sim.Option
		var wake *invariant.WakeChecker
		if sparse {
			wake = new(invariant.WakeChecker)
			wake.Reset(n)
			opts = append(opts, sim.WithSparse(), sim.WithWakeAudit(wake))
		}
		eng := newEngine(t, asn, nodes, 11, opts...)
		for s := 0; s < slots; s++ {
			if err := eng.RunSlot(); err != nil {
				t.Fatal(err)
			}
		}
		if wake != nil {
			if err := wake.Err(); err != nil {
				t.Fatalf("wake-queue oracle: %v", err)
			}
		}
		var sb strings.Builder
		for i, r := range recs {
			fmt.Fprintf(&sb, "node %d: draws=%d log=%s\n", i, r.draws, strings.Join(r.log, ","))
		}
		return sb.String()
	}
	// The chaos Step honours pendingUntil before ever touching its RNG, so
	// in dense mode nodes 0 and 1 repeat their scripted action every slot;
	// in sparse mode they are parked at slot 0 and only node 0 can wake (by
	// hearing a broadcast on channel 1, after which it runs chaotically).
	dense := run(false)
	sparseT := run(true)
	if sparseT != dense {
		t.Errorf("sparse diverged from dense:\n--- sparse ---\n%s\n--- dense ---\n%s", sparseT, dense)
	}
	if !strings.Contains(dense, "node 1: draws=0 log=\n") {
		t.Errorf("forever-idle node was woken:\n%s", dense)
	}
}

// TestSparseGates pins WithSparse's resolution rules: it engages only on
// slot-invariant assignments with no observer attached, it forces the scan
// serial even when shards were requested, and an option-free Reset returns
// the engine to dense.
func TestSparseGates(t *testing.T) {
	const n = 8
	asn := fullOverlap(t, n, 2) // *assign.Static: slot-invariant
	mkNodes := func() []sim.Protocol {
		nodes, _ := collidingScripts(n, 1)
		return nodes
	}

	e := newEngine(t, asn, mkNodes(), 1, sim.WithSparse(), sim.WithShards(4))
	if !e.Sparse() {
		t.Error("WithSparse on a static assignment did not engage")
	}
	if got := e.Shards(); got != 1 {
		t.Errorf("sparse engine Shards() = %d, want 1 (sparse scan is serial)", got)
	}

	// An observer forces dense: traced and checked runs must see every slot.
	obs := sim.ObserverFunc(func(int, []sim.ChannelOutcome) {})
	e = newEngine(t, asn, mkNodes(), 1, sim.WithSparse(), sim.WithObserver(obs))
	if e.Sparse() {
		t.Error("WithSparse engaged despite an observer")
	}

	// An assignment without the slot-invariant marker cannot support parked
	// listens (its channel sets may move), so the request is gated down.
	gated := &underAdvertised{claim: 2, sets: [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}}
	e = newEngine(t, gated, mkNodes()[:4], 1, sim.WithSparse())
	if e.Sparse() {
		t.Error("WithSparse engaged on a non-slot-invariant assignment")
	}

	// Reset without options must drop a previous sparse configuration.
	e = newEngine(t, asn, mkNodes(), 1, sim.WithSparse())
	if err := e.Reset(asn, mkNodes(), 1); err != nil {
		t.Fatal(err)
	}
	if e.Sparse() {
		t.Error("Sparse() after option-free Reset = true, want false")
	}
}

// TestSparseErrorMatchesDense pins error determinism: when a node produces
// an invalid action while lower-numbered nodes are dormant, the sparse scan
// must report exactly the dense engine's message — parked nodes were
// validated when they parked and cannot become the first failure.
func TestSparseErrorMatchesDense(t *testing.T) {
	const n, c = 12, 3
	asn := fullOverlap(t, n, c)
	mkNodes := func() []sim.Protocol {
		nodes := make([]sim.Protocol, n)
		for i := range nodes {
			s := &scriptNode{actions: []sim.Action{sim.Sleep(40), sim.Idle()}}
			if i == 7 {
				s.actions = []sim.Action{sim.Idle(), sim.Listen(99)}
			}
			nodes[i] = s
		}
		return nodes
	}
	run := func(sparse bool) error {
		var opts []sim.Option
		if sparse {
			opts = append(opts, sim.WithSparse())
		}
		e := newEngine(t, asn, mkNodes(), 3, opts...)
		for s := 0; s < 2; s++ {
			if err := e.RunSlot(); err != nil {
				return err
			}
		}
		return nil
	}
	denseErr := run(false)
	if denseErr == nil {
		t.Fatal("dense engine accepted an out-of-range local channel")
	}
	sparseErr := run(true)
	if sparseErr == nil {
		t.Fatal("sparse engine accepted an out-of-range local channel")
	}
	if denseErr.Error() != sparseErr.Error() {
		t.Errorf("sparse error %q != dense error %q", sparseErr, denseErr)
	}
	if want := "node 7"; !strings.Contains(sparseErr.Error(), want) {
		t.Errorf("sparse error %q does not name the failing node (%s)", sparseErr, want)
	}
}

// TestSparseAllDoneRetirement pins the O(1) AllDone path: nodes that retire
// while parked or mid-scan are counted exactly once, and AllDone flips true
// in the same slot as under the dense engine.
func TestSparseAllDoneRetirement(t *testing.T) {
	const n, c, slots = 24, 3, 80
	doneSlot := func(sparse bool) int {
		asn := fullOverlap(t, n, c)
		nodes := make([]sim.Protocol, n)
		for i := range nodes {
			nd := &drowsyNode{id: i, rand: rng.New(13, int64(i), 31), c: c, doneDraws: 3 + i%5, pendingUntil: -1}
			nodes[i] = nd
		}
		var opts []sim.Option
		if sparse {
			opts = append(opts, sim.WithSparse())
		}
		eng := newEngine(t, asn, nodes, 13, opts...)
		for s := 0; s < slots; s++ {
			if eng.AllDone() {
				return s
			}
			if err := eng.RunSlot(); err != nil {
				t.Fatal(err)
			}
		}
		return -1
	}
	dense := doneSlot(false)
	sparseS := doneSlot(true)
	if dense == -1 {
		t.Fatal("dense run never completed — test scenario broken")
	}
	if sparseS != dense {
		t.Errorf("sparse AllDone at slot %d, dense at slot %d", sparseS, dense)
	}
}
