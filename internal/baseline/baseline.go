// Package baseline implements the straightforward strategies the paper
// compares COGCAST and COGCOMP against:
//
//   - Rendezvous broadcast (Section 1): only the source transmits; every
//     other node hops uniformly until it happens to meet the source.
//     O((c²/k)·lg n) slots — a factor c slower than COGCAST when n >= c,
//     because the epidemic relay is missing.
//   - Rendezvous aggregation (Section 1): the source listens on a random
//     channel per slot while every other node broadcasts its datum on a
//     random channel; with fair contention this needs O(c²n/k) slots.
//   - Hopping-together (Section 6 discussion): under *global* channel
//     labels, all nodes scan the full spectrum in the same predefined
//     order, meeting on a shared channel after O(C/k) expected slots —
//     which beats COGCAST when c >> n, and is impossible under local
//     labels.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// payload is the broadcast body used by the baseline broadcasters.
type payload struct {
	Body sim.Message
}

// datum is a rendezvous-aggregation report.
type datum struct {
	ID    sim.NodeID
	Value int64
}

// --- Rendezvous broadcast ----------------------------------------------------

// rdvNode is a rendezvous-broadcast participant: the source broadcasts on a
// uniform random channel every slot; everyone else listens on a uniform
// random channel until informed. Informed non-source nodes keep listening —
// they do not relay (that relay is precisely COGCAST's advantage).
type rdvNode struct {
	view     sim.NodeView
	rand     *rand.Rand
	source   bool
	informed bool
	body     sim.Message
	// wire is the boxed payload the source broadcasts, built once so the
	// steady-state slot path stays allocation-free.
	wire sim.Message
}

var _ sim.Protocol = (*rdvNode)(nil)

func (n *rdvNode) Step(slot int) sim.Action {
	ch := n.rand.Intn(n.view.NumChannels(slot))
	if n.source {
		return sim.Broadcast(ch, n.wire)
	}
	return sim.Listen(ch)
}

func (n *rdvNode) Deliver(_ int, ev sim.Event) {
	if ev.Kind != sim.EvReceived || n.informed {
		return
	}
	if p, ok := ev.Msg.(payload); ok {
		n.informed = true
		n.body = p.Body
	}
}

func (n *rdvNode) Done() bool { return false }

// BroadcastResult reports a rendezvous-broadcast run.
type BroadcastResult struct {
	Slots       int
	AllInformed bool
}

// RendezvousBroadcast runs the baseline broadcast until every node is
// informed or maxSlots elapse.
func RendezvousBroadcast(asn sim.Assignment, source sim.NodeID, body sim.Message, seed int64, maxSlots int, opts ...sim.Option) (*BroadcastResult, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("baseline: source %d outside [0,%d)", source, n)
	}
	nodes := make([]*rdvNode, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = &rdvNode{
			view:     sim.View(asn, sim.NodeID(i)),
			rand:     rng.New(seed, int64(i), 0xba5e),
			source:   sim.NodeID(i) == source,
			informed: sim.NodeID(i) == source,
			body:     body,
			wire:     payload{Body: body},
		}
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, seed, opts...)
	if err != nil {
		return nil, err
	}
	allInformed := func() bool {
		for _, nd := range nodes {
			if !nd.informed {
				return false
			}
		}
		return true
	}
	if _, err := eng.RunWhile(maxSlots, func() bool { return !allInformed() }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}
	return &BroadcastResult{Slots: eng.Slot(), AllInformed: allInformed()}, nil
}

// --- Rendezvous aggregation ---------------------------------------------------

// aggSender hops uniformly, broadcasting its datum every slot. It never
// learns whether the source heard it — fair contention simply keeps every
// sender in the race, which is what makes the baseline cost O(c²n/k).
type aggSender struct {
	view sim.NodeView
	rand *rand.Rand
	// wire is the boxed datum, built once: the report never changes, and
	// re-boxing it every Step was the dominant allocation of the whole
	// rendezvous-aggregation baseline.
	wire sim.Message
}

var _ sim.Protocol = (*aggSender)(nil)

func (n *aggSender) Step(slot int) sim.Action {
	ch := n.rand.Intn(n.view.NumChannels(slot))
	return sim.Broadcast(ch, n.wire)
}

func (n *aggSender) Deliver(int, sim.Event) {}
func (n *aggSender) Done() bool             { return false }

// aggSource listens on a uniform random channel per slot, recording each
// distinct datum it hears.
type aggSource struct {
	view  sim.NodeView
	rand  *rand.Rand
	heard map[sim.NodeID]int64
}

var _ sim.Protocol = (*aggSource)(nil)

func (n *aggSource) Step(slot int) sim.Action {
	return sim.Listen(n.rand.Intn(n.view.NumChannels(slot)))
}

func (n *aggSource) Deliver(_ int, ev sim.Event) {
	if ev.Kind != sim.EvReceived {
		return
	}
	if d, ok := ev.Msg.(datum); ok {
		n.heard[d.ID] = d.Value
	}
}

func (n *aggSource) Done() bool { return false }

// AggregationResult reports a rendezvous-aggregation run.
type AggregationResult struct {
	Slots    int
	Complete bool
	// Values maps each reporting node to the datum the source received.
	Values map[sim.NodeID]int64
}

// RendezvousAggregation runs the baseline aggregation until the source has
// heard every non-source node's datum or maxSlots elapse.
func RendezvousAggregation(asn sim.Assignment, source sim.NodeID, inputs []int64, seed int64, maxSlots int) (*AggregationResult, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("baseline: source %d outside [0,%d)", source, n)
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("baseline: got %d inputs for %d nodes", len(inputs), n)
	}
	src := &aggSource{
		view:  sim.View(asn, source),
		rand:  rng.New(seed, int64(source), 0xa66),
		heard: make(map[sim.NodeID]int64, n-1),
	}
	protos := make([]sim.Protocol, n)
	for i := range protos {
		if sim.NodeID(i) == source {
			protos[i] = src
			continue
		}
		protos[i] = &aggSender{
			view: sim.View(asn, sim.NodeID(i)),
			rand: rng.New(seed, int64(i), 0xa66),
			wire: datum{ID: sim.NodeID(i), Value: inputs[i]},
		}
	}
	eng, err := sim.NewEngine(asn, protos, seed)
	if err != nil {
		return nil, err
	}
	if _, err := eng.RunWhile(maxSlots, func() bool { return len(src.heard) < n-1 }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}
	return &AggregationResult{
		Slots:    eng.Slot(),
		Complete: len(src.heard) == n-1,
		Values:   src.heard,
	}, nil
}

// --- Hopping together ----------------------------------------------------------

// hopNode scans the global spectrum in lockstep with everyone else: in slot
// t it tunes to physical channel t mod C if that channel is in its set, and
// stays off the air otherwise. Informed nodes broadcast; uninformed listen.
// This strategy requires global channel labels — each node must know the
// physical identity of its channels — which is exactly why it does not
// exist in the local-label model (Section 6 discussion).
type hopNode struct {
	total    int
	localOf  map[int]int // physical channel -> local index
	owned    []int       // sorted scan positions (physical channels) in the set
	informed bool
	body     sim.Message
	// wire is the boxed payload an informed node rebroadcasts; built once by
	// the source and adopted from the received message by everyone else.
	wire sim.Message
}

var _ sim.Protocol = (*hopNode)(nil)

func (n *hopNode) Step(slot int) sim.Action {
	if len(n.owned) == 0 {
		return sim.Sleep(sim.Forever)
	}
	pos := slot % n.total
	local, ok := n.localOf[pos]
	if !ok {
		// Off the air until the scan next reaches an owned channel. The gap
		// is pure arithmetic — no state, no randomness — so it carries a
		// dormancy hint (idle nodes receive nothing, making the promise
		// trivially safe even mid-run).
		return sim.Sleep(n.gapAfter(pos) - 1)
	}
	if n.informed {
		return sim.Broadcast(local, n.wire)
	}
	return sim.Listen(local)
}

// gapAfter returns the number of slots from scan position pos (exclusive)
// to the node's next owned position (inclusive), in [1, total].
func (n *hopNode) gapAfter(pos int) int {
	for _, p := range n.owned {
		if p > pos {
			return p - pos
		}
	}
	return n.owned[0] + n.total - pos
}

func (n *hopNode) Deliver(_ int, ev sim.Event) {
	if ev.Kind != sim.EvReceived || n.informed {
		return
	}
	if p, ok := ev.Msg.(payload); ok {
		n.informed = true
		n.body = p.Body
		n.wire = ev.Msg // already the boxed payload; reuse it
	}
}

func (n *hopNode) Done() bool { return false }

// HoppingTogether runs the global-label sequential-scan broadcast until all
// nodes are informed or maxSlots elapse. The assignment must be static.
// Nodes emit dormancy hints across their off-spectrum gaps, so running with
// sim.WithSparse() steps only the nodes that own the channel being scanned.
func HoppingTogether(asn sim.Assignment, source sim.NodeID, body sim.Message, seed int64, maxSlots int, opts ...sim.Option) (*BroadcastResult, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("baseline: source %d outside [0,%d)", source, n)
	}
	nodes := make([]*hopNode, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		set := asn.ChannelSet(sim.NodeID(i), 0)
		localOf := make(map[int]int, len(set))
		owned := make([]int, 0, len(set))
		for local, phys := range set {
			localOf[phys] = local
			owned = append(owned, phys)
		}
		slices.Sort(owned)
		nodes[i] = &hopNode{
			total:    asn.Channels(),
			localOf:  localOf,
			owned:    owned,
			informed: sim.NodeID(i) == source,
			body:     body,
			wire:     payload{Body: body},
		}
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, seed, opts...)
	if err != nil {
		return nil, err
	}
	allInformed := func() bool {
		for _, nd := range nodes {
			if !nd.informed {
				return false
			}
		}
		return true
	}
	if _, err := eng.RunWhile(maxSlots, func() bool { return !allInformed() }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}
	return &BroadcastResult{Slots: eng.Slot(), AllInformed: allInformed()}, nil
}
