package baseline

import (
	"errors"
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// scanNode is the canonical deterministic broadcaster used to demonstrate
// Theorem 17: every node sweeps its local channel indices in order
// (slot mod c); informed nodes broadcast, uninformed nodes listen. In a
// static network this eventually succeeds; against the AntiScan adversary
// the source provably never transmits on a shared channel, so the
// broadcast never begins.
type scanNode struct {
	view     sim.NodeView
	informed bool
	body     sim.Message
}

var _ sim.Protocol = (*scanNode)(nil)

func (n *scanNode) Step(slot int) sim.Action {
	ch := slot % n.view.NumChannels(slot)
	if n.informed {
		return sim.Broadcast(ch, payload{Body: n.body})
	}
	return sim.Listen(ch)
}

func (n *scanNode) Deliver(_ int, ev sim.Event) {
	if ev.Kind != sim.EvReceived || n.informed {
		return
	}
	if p, ok := ev.Msg.(payload); ok {
		n.informed = true
		n.body = p.Body
	}
}

func (n *scanNode) Done() bool { return false }

// ScanResult reports a deterministic-scan broadcast run.
type ScanResult struct {
	Slots    int
	Informed int
	Complete bool
}

// DeterministicScan runs the scanning broadcast for up to maxSlots slots
// and reports how many nodes ended up informed. Its per-slot channel index
// is slot mod c — the sequence assign.NewAntiScan predicts by default.
func DeterministicScan(asn sim.Assignment, source sim.NodeID, body sim.Message, seed int64, maxSlots int) (*ScanResult, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("baseline: source %d outside [0,%d)", source, n)
	}
	nodes := make([]*scanNode, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = &scanNode{
			view:     sim.View(asn, sim.NodeID(i)),
			informed: sim.NodeID(i) == source,
			body:     body,
		}
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, seed)
	if err != nil {
		return nil, err
	}
	informed := func() int {
		count := 0
		for _, nd := range nodes {
			if nd.informed {
				count++
			}
		}
		return count
	}
	if _, err := eng.RunWhile(maxSlots, func() bool { return informed() < n }); err != nil && !errors.Is(err, sim.ErrMaxSlots) {
		return nil, err
	}
	return &ScanResult{Slots: eng.Slot(), Informed: informed(), Complete: informed() == n}, nil
}
