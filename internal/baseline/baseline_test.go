package baseline_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

func TestRendezvousBroadcastCompletes(t *testing.T) {
	const n, c, k = 24, 6, 2
	asn, err := assign.SharedCore(n, c, k, 18, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.RendezvousBroadcast(asn, 0, "msg", 1, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("incomplete after %d slots", res.Slots)
	}
}

func TestRendezvousBroadcastSlowerThanCogcast(t *testing.T) {
	// The paper's headline: epidemic relaying beats pure rendezvous by
	// roughly a factor of c when n >= c. Compare medians over a few seeds.
	const n, c, k, trials = 64, 16, 2, 5
	var rdvTotal, cogTotal int
	for seed := int64(0); seed < trials; seed++ {
		asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		rdv, err := baseline.RendezvousBroadcast(asn, 0, "m", seed, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		if !rdv.AllInformed {
			t.Fatalf("seed %d: rendezvous incomplete", seed)
		}
		cog, err := cogcast.Run(asn, 0, "m", seed, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 1000000})
		if err != nil {
			t.Fatal(err)
		}
		if !cog.AllInformed {
			t.Fatalf("seed %d: cogcast incomplete", seed)
		}
		rdvTotal += rdv.Slots
		cogTotal += cog.Slots
	}
	if rdvTotal <= 2*cogTotal {
		t.Errorf("rendezvous total %d should be well above cogcast total %d", rdvTotal, cogTotal)
	}
}

func TestRendezvousAggregationCollectsAllValues(t *testing.T) {
	const n = 16
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64(i * 11)
	}
	res, err := baseline.RendezvousAggregation(asn, 0, inputs, 2, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d slots: %d values", res.Slots, len(res.Values))
	}
	for i := 1; i < n; i++ {
		if got := res.Values[sim.NodeID(i)]; got != inputs[i] {
			t.Errorf("source heard %d from node %d, want %d", got, i, inputs[i])
		}
	}
	if _, ok := res.Values[0]; ok {
		t.Error("source recorded a value from itself")
	}
}

func TestHoppingTogetherGlobalLabels(t *testing.T) {
	// The Section 6 setup: shared k-channel core, private remainders,
	// global labels. The lockstep scan must finish within one pass of the
	// spectrum (all nodes meet the first time the scan hits a core channel).
	const n, c, k = 8, 6, 2
	asn, err := assign.Partitioned(n, c, k, assign.GlobalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.HoppingTogether(asn, 0, "m", 3, 10*asn.Channels())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("incomplete after %d slots", res.Slots)
	}
	if res.Slots > asn.Channels() {
		t.Errorf("took %d slots, want at most one spectrum pass (C=%d)", res.Slots, asn.Channels())
	}
}

func TestHoppingTogetherBudgetRunsOut(t *testing.T) {
	asn, err := assign.Partitioned(4, 8, 1, assign.GlobalLabels, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.HoppingTogether(asn, 0, "m", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllInformed && res.Slots > 1 {
		t.Error("budget not respected")
	}
}

func TestBaselineValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.RendezvousBroadcast(asn, 7, "m", 1, 10); err == nil {
		t.Error("bad source accepted by RendezvousBroadcast")
	}
	if _, err := baseline.RendezvousAggregation(asn, 7, make([]int64, 4), 1, 10); err == nil {
		t.Error("bad source accepted by RendezvousAggregation")
	}
	if _, err := baseline.RendezvousAggregation(asn, 0, make([]int64, 2), 1, 10); err == nil {
		t.Error("bad input length accepted by RendezvousAggregation")
	}
	if _, err := baseline.HoppingTogether(asn, -1, "m", 1, 10); err == nil {
		t.Error("bad source accepted by HoppingTogether")
	}
}

func TestRendezvousBroadcastBudget(t *testing.T) {
	asn, err := assign.Partitioned(16, 8, 1, assign.LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.RendezvousBroadcast(asn, 0, "m", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots > 3 {
		t.Errorf("ran %d slots past a 3-slot budget", res.Slots)
	}
}
