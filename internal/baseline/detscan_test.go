package baseline_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/baseline"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

func TestDeterministicScanCompletesOnStaticNetwork(t *testing.T) {
	// On a static full-overlap network with global labels the scan is
	// perfectly aligned: the source reaches everyone the first slot it
	// broadcasts alone... which is slot 0 (all others listen on the same
	// index). One slot suffices.
	asn, err := assign.FullOverlap(8, 4, assign.GlobalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.DeterministicScan(asn, 0, "m", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("scan incomplete: %+v", res)
	}
	if res.Slots != 1 {
		t.Errorf("aligned scan took %d slots, want 1", res.Slots)
	}
}

// permAligned is a two-node assignment whose local label orders are exact
// reverses of each other: lockstep scanning never aligns.
type permAligned struct{ sets [][]int }

func (p *permAligned) Nodes() int                           { return len(p.sets) }
func (p *permAligned) Channels() int                        { return 2 }
func (p *permAligned) PerNode() int                         { return 2 }
func (p *permAligned) MinOverlap() int                      { return 2 }
func (p *permAligned) ChannelSet(n sim.NodeID, _ int) []int { return p.sets[n] }

func TestDeterministicScanMayStallEvenStatically(t *testing.T) {
	// Even in a *static* network, local labels can permanently misalign a
	// lockstep scan: with orders {0,1} and {1,0}, slot t puts the two
	// nodes on different physical channels for every t. This is why naive
	// determinism fails in this model and the rendezvous literature needs
	// carefully constructed schedules — and why COGCAST just randomizes.
	asn := &permAligned{sets: [][]int{{0, 1}, {1, 0}}}
	res, err := baseline.DeterministicScan(asn, 0, "m", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Fatalf("misaligned scan informed %d nodes, expected the source only", res.Informed)
	}
	// COGCAST on the identical assignment completes almost immediately.
	cres, err := cogcast.Run(asn, 0, "m", 2, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !cres.AllInformed {
		t.Fatal("COGCAST incomplete on the two-node network")
	}
}

func TestDeterministicScanStarvedByAntiScan(t *testing.T) {
	// Theorem 17's demonstration: against the label-rearranging adversary
	// the scanning source never transmits on a shared channel, so nobody
	// else is ever informed — for any budget.
	const n, c, k = 8, 6, 2
	adv, err := assign.NewAntiScan(n, c, k, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.DeterministicScan(adv, 0, "m", 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 1 {
		t.Fatalf("adversary leaked: %d nodes informed", res.Informed)
	}
	if res.Complete {
		t.Fatal("scan completed against the adversary")
	}
}

func TestCogcastBeatsAntiScan(t *testing.T) {
	// The same adversary cannot predict coin flips: COGCAST completes.
	const n, c, k = 8, 6, 2
	adv, err := assign.NewAntiScan(n, c, k, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(adv, 0, "m", 4, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("COGCAST incomplete against AntiScan after %d slots", res.Slots)
	}
}

func TestDeterministicScanValidation(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.GlobalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.DeterministicScan(asn, 9, "m", 1, 10); err == nil {
		t.Error("bad source accepted")
	}
}
