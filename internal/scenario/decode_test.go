package scenario

import (
	"strings"
	"testing"
)

// TestParseRejects pins the exact error for every class of malformed
// document: unknown fields, mistyped values, and YAML outside the
// supported subset. The messages are part of the CLI surface (`cogsim
// validate` prints them), so they are asserted verbatim.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			"unknown top-level field",
			"name: x\ntopologie:\n  nodes: 4\n",
			`scenario: unknown field "topologie" in the top level`,
		},
		{
			"unknown topology field",
			"name: x\ntopology:\n  node_count: 4\n",
			`scenario: unknown field "node_count" in topology`,
		},
		{
			"unknown event field",
			"events:\n  - kind: blackout\n    slot: 3\n",
			`scenario: unknown field "slot" in events[0]`,
		},
		{
			"unknown assertion field",
			"assertions:\n  - kind: completed-by\n    bound: 3\n",
			`scenario: unknown field "bound" in assertions[0]`,
		},
		{
			"string where integer expected",
			"topology:\n  nodes: many\n",
			`scenario: topology.nodes: want an integer, got a string`,
		},
		{
			"integer where string expected",
			"name: 7\n",
			`scenario: name: want a string, got an integer`,
		},
		{
			"float where integer expected",
			"seed: 1.5\n",
			`scenario: seed: want an integer, got a number`,
		},
		{
			"string where boolean expected",
			"engine:\n  check: yes\n",
			`scenario: engine.check: want true or false, got a string`,
		},
		{
			"scalar where mapping expected",
			"topology: big\n",
			`scenario: topology: want a mapping, got a string`,
		},
		{
			"mapping where list expected",
			"events:\n  kind: blackout\n",
			`scenario: events: want a list, got a mapping`,
		},
		{
			"string element in node list",
			"events:\n  - kind: blackout\n    nodes: [1, two]\n",
			`scenario: events[0].nodes[1]: want an integer, got a string`,
		},
		{
			"sequence document",
			"- a\n- b\n",
			`scenario: document must be a mapping, got a list`,
		},
		{
			"tab indentation",
			"name: x\ntopology:\n\tnodes: 4\n",
			`scenario: line 3: tab indentation is not allowed; use spaces`,
		},
		{
			"duplicate key",
			"name: x\nname: y\n",
			`scenario: line 2: duplicate key "name"`,
		},
		{
			"flow mapping",
			"topology: {nodes: 4}\n",
			`scenario: line 1: flow mappings {...} are not supported; use block form`,
		},
		{
			"block scalar",
			"description: |\n  long text\n",
			`scenario: line 1: block scalars (| and >) are not supported; keep strings on one line`,
		},
		{
			"anchor",
			"name: &base x\n",
			`scenario: line 1: YAML anchors, aliases and tags are not supported`,
		},
		{
			"missing space after colon",
			"name:x\n",
			`scenario: line 1: missing space after "name":`,
		},
		{
			"inconsistent indentation",
			"topology:\n  nodes: 4\n    generator: full\n",
			`scenario: line 3: inconsistent indentation (got 4 spaces, block uses 2)`,
		},
		{
			"bad JSON",
			`{"name": }`,
			`scenario: bad JSON: invalid character '}' looking for beginning of value`,
		},
		{
			"empty document",
			"# only a comment\n",
			`scenario: empty document`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.doc)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err, tc.want)
			}
		})
	}
}

// TestParseJSONEquivalence: the same scenario as YAML and as JSON decodes
// to the same struct.
func TestParseJSONEquivalence(t *testing.T) {
	yamlDoc := `
name: twin
seed: 7
topology:
  nodes: 16
  channels_per_node: 8
  min_overlap: 2
  generator: shared-core
protocol:
  name: cogcast
events:
  - kind: assignment-flip
    at: 3
`
	jsonDoc := `{
  "name": "twin", "seed": 7,
  "topology": {"nodes": 16, "channels_per_node": 8, "min_overlap": 2, "generator": "shared-core"},
  "protocol": {"name": "cogcast"},
  "events": [{"kind": "assignment-flip", "at": 3}]
}`
	fromYAML, err := Parse([]byte(yamlDoc))
	if err != nil {
		t.Fatalf("YAML: %v", err)
	}
	fromJSON, err := Parse([]byte(jsonDoc))
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	fromYAML.Normalize()
	fromJSON.Normalize()
	if string(fromYAML.Emit()) != string(fromJSON.Emit()) {
		t.Fatalf("YAML and JSON decode differently:\n%s\nvs\n%s", fromYAML.Emit(), fromJSON.Emit())
	}
}

// TestParseScalars covers the scalar corners of the YAML subset: quoting,
// comments, and the null forms.
func TestParseScalars(t *testing.T) {
	doc := strings.Join([]string{
		"name: 'it''s quoted'  # trailing comment",
		`description: "tab\there"`,
		"seed: 42",
		"protocol:",
		"  name: cogcast  # comments strip outside quotes",
		"  payload: 'a # not a comment'",
	}, "\n")
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "it's quoted" {
		t.Errorf("Name = %q", sc.Name)
	}
	if sc.Description != "tab\there" {
		t.Errorf("Description = %q", sc.Description)
	}
	if sc.Protocol.Payload != "a # not a comment" {
		t.Errorf("Payload = %q", sc.Protocol.Payload)
	}
	if sc.Seed != 42 {
		t.Errorf("Seed = %d", sc.Seed)
	}
}
