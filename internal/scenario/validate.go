package scenario

// Semantic validation: field ranges, cross-section consistency, event
// windows, and assertions against the features the scenario actually
// enables. Validate assumes Normalize has run; `cogsim validate` stops
// here, before anything executes.

import (
	"fmt"
	"sort"
	"time"

	"github.com/cogradio/crn/internal/adversary"
	"github.com/cogradio/crn/internal/exper"
)

var (
	generators = []string{"full", "partitioned", "shared-core", "random-pool", "pairwise", "jammed"}
	protocols  = []string{"cogcast", "cogcomp", "session", "gossip", "rendezvous", "rendezvous-agg", "hop", "experiment"}
	aggregates = []string{"sum", "count", "min", "max", "stats", "collect"}
	jammers    = []string{"none", "random", "sweep", "block", "split"}
)

func oneOf(s string, set []string) bool {
	for _, w := range set {
		if s == w {
			return true
		}
	}
	return false
}

// Validate checks a normalized scenario and returns the first problem
// found, as a "scenario: <field>: ..." error.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name: required")
	}
	if sc.Protocol.Name == "" {
		return fmt.Errorf("scenario: protocol.name: required")
	}
	if !oneOf(sc.Protocol.Name, protocols) {
		return fmt.Errorf("scenario: protocol.name: unknown protocol %q", sc.Protocol.Name)
	}
	if err := sc.validateLimits(); err != nil {
		return err
	}
	if sc.Protocol.Name == "experiment" {
		return sc.validateExperiment()
	}
	if sc.Experiment != (Experiment{}) {
		return fmt.Errorf("scenario: experiment: only valid with protocol.name \"experiment\", not %q", sc.Protocol.Name)
	}
	if err := sc.validateTopology(); err != nil {
		return err
	}
	if err := sc.validateProtocol(); err != nil {
		return err
	}
	if err := sc.validateEngine(); err != nil {
		return err
	}
	if err := sc.validateRecovery(); err != nil {
		return err
	}
	if err := sc.validateAdversary(); err != nil {
		return err
	}
	if err := sc.validateEvents(); err != nil {
		return err
	}
	return sc.validateAssertions()
}

func (sc *Scenario) validateTopology() error {
	t := sc.Topology
	if t.Generator == "" {
		return fmt.Errorf("scenario: topology.generator: required")
	}
	if !oneOf(t.Generator, generators) {
		return fmt.Errorf("scenario: topology.generator: unknown generator %q", t.Generator)
	}
	if t.Nodes < 2 {
		return fmt.Errorf("scenario: topology.nodes: %d out of range (want >= 2)", t.Nodes)
	}
	if t.ChannelsPerNode < 1 {
		return fmt.Errorf("scenario: topology.channels_per_node: %d out of range (want >= 1)", t.ChannelsPerNode)
	}
	if t.Labels != "local" && t.Labels != "global" {
		return fmt.Errorf("scenario: topology.labels: unknown label model %q (want local or global)", t.Labels)
	}
	if t.Generator == "jammed" {
		if sc.Adversary.Strategy != "" {
			// The reactive adversary owns the jammer on this topology.
			if t.JamStrategy != "" {
				return fmt.Errorf("scenario: topology.jam_strategy: the adversary section drives the jammer; leave it unset")
			}
			if t.JamBudget != 0 {
				return fmt.Errorf("scenario: topology.jam_budget: the adversary's per_slot is the jam budget; leave it unset")
			}
		} else if !oneOf(t.JamStrategy, jammers) {
			return fmt.Errorf("scenario: topology.jam_strategy: unknown jammer strategy %q", t.JamStrategy)
		}
		if t.JamBudget < 0 || 2*t.JamBudget >= t.ChannelsPerNode {
			return fmt.Errorf("scenario: topology.jam_budget: %d out of range (want 0 <= budget < channels_per_node/2 = %d/2)",
				t.JamBudget, t.ChannelsPerNode)
		}
		if t.MinOverlap != 0 {
			return fmt.Errorf("scenario: topology.min_overlap: derived as channels_per_node - 2*jam_budget on jammed topologies; leave it unset")
		}
		if t.TotalChannels != 0 {
			return fmt.Errorf("scenario: topology.total_channels: equals channels_per_node on jammed topologies; leave it unset")
		}
		if t.Dynamic {
			return fmt.Errorf("scenario: topology.dynamic: jammed topologies are dynamic already; leave it unset")
		}
		if t.Labels != "local" {
			return fmt.Errorf("scenario: topology.labels: jammed topologies use local labels")
		}
		return nil
	}
	if t.JamStrategy != "" || t.JamBudget != 0 {
		return fmt.Errorf("scenario: topology.jam_strategy: only valid with generator \"jammed\", not %q", t.Generator)
	}
	if t.MinOverlap < 1 || t.MinOverlap > t.ChannelsPerNode {
		return fmt.Errorf("scenario: topology.min_overlap: %d out of range [1, %d (channels_per_node)]", t.MinOverlap, t.ChannelsPerNode)
	}
	if t.TotalChannels < t.ChannelsPerNode {
		return fmt.Errorf("scenario: topology.total_channels: %d out of range (want >= channels_per_node = %d, or 0 for the 3c default)",
			t.TotalChannels, t.ChannelsPerNode)
	}
	if t.Dynamic && t.Generator != "shared-core" {
		return fmt.Errorf("scenario: topology.dynamic: dynamic networks use shared-core semantics; set generator \"shared-core\"")
	}
	if t.Dynamic && t.Labels != "local" {
		return fmt.Errorf("scenario: topology.labels: dynamic networks only support local labels")
	}
	return nil
}

func (sc *Scenario) validateProtocol() error {
	p := sc.Protocol
	if !oneOf(p.Aggregate, aggregates) {
		return fmt.Errorf("scenario: protocol.aggregate: unknown aggregate %q", p.Aggregate)
	}
	if p.Source < 0 || p.Source >= sc.Topology.Nodes {
		return fmt.Errorf("scenario: protocol.source: node %d out of range [0, %d)", p.Source, sc.Topology.Nodes)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("scenario: protocol.rounds: %d out of range (want >= 1)", p.Rounds)
	}
	if p.Rumors < 1 {
		return fmt.Errorf("scenario: protocol.rumors: %d out of range (want >= 1)", p.Rumors)
	}
	if p.MaxSlots < 0 {
		return fmt.Errorf("scenario: protocol.max_slots: %d out of range (want >= 0)", p.MaxSlots)
	}
	if p.Curve && p.Name != "cogcast" {
		return fmt.Errorf("scenario: protocol.curve: supports cogcast, not %q", p.Name)
	}
	if p.Name == "hop" && sc.Topology.Labels != "global" {
		return fmt.Errorf("scenario: protocol.name: hop needs topology.labels \"global\"")
	}
	return nil
}

// validateLimits checks the run-limit section. Limits apply to every
// protocol, experiments included, so Validate calls this before the
// experiment early-exit.
func (sc *Scenario) validateLimits() error {
	l := sc.Limits
	if l.Deadline != "" {
		d, err := time.ParseDuration(l.Deadline)
		if err != nil {
			return fmt.Errorf("scenario: limits.deadline: bad duration %q (want e.g. \"30s\" or \"2m\")", l.Deadline)
		}
		if d <= 0 {
			return fmt.Errorf("scenario: limits.deadline: %s out of range (want > 0)", l.Deadline)
		}
	}
	if l.MaxSlots < 0 {
		return fmt.Errorf("scenario: limits.max_slots: %d out of range (want >= 0)", l.MaxSlots)
	}
	return nil
}

func (sc *Scenario) validateEngine() error {
	e := sc.Engine
	if e.Shards < 1 {
		return fmt.Errorf("scenario: engine.shards: %d out of range (want >= 1)", e.Shards)
	}
	if e.Parallel < 0 {
		return fmt.Errorf("scenario: engine.parallel: %d out of range (want >= 0)", e.Parallel)
	}
	if e.Repeat < 1 {
		return fmt.Errorf("scenario: engine.repeat: %d out of range (want >= 1)", e.Repeat)
	}
	if e.Repeat > 1 && sc.Protocol.Name != "cogcast" && sc.Protocol.Name != "cogcomp" {
		return fmt.Errorf("scenario: engine.repeat: supports cogcast and cogcomp, not %q", sc.Protocol.Name)
	}
	if e.Trace != "" {
		if sc.Protocol.Name != "cogcast" && sc.Protocol.Name != "cogcomp" {
			return fmt.Errorf("scenario: engine.trace: supports cogcast and cogcomp, not %q", sc.Protocol.Name)
		}
		if e.Repeat > 1 {
			return fmt.Errorf("scenario: engine.trace: records a single run; drop engine.repeat")
		}
	}
	if e.Check && sc.Protocol.Name != "cogcast" && sc.Protocol.Name != "cogcomp" && sc.Protocol.Name != "session" {
		return fmt.Errorf("scenario: engine.check: supports cogcast, cogcomp and session, not %q", sc.Protocol.Name)
	}
	return nil
}

func (sc *Scenario) validateRecovery() error {
	r := sc.Recovery
	if !r.Enabled {
		if r.OutageRate != 0 {
			return fmt.Errorf("scenario: recovery.outage_rate: needs recovery.enabled (the classic runner has no fault injection)")
		}
		if r.MaxRetries != 0 {
			return fmt.Errorf("scenario: recovery.max_retries: needs recovery.enabled")
		}
		return nil
	}
	if sc.Protocol.Name != "cogcomp" {
		return fmt.Errorf("scenario: recovery.enabled: supports cogcomp, not %q", sc.Protocol.Name)
	}
	if r.OutageRate < 0 || r.OutageRate >= 1 {
		return fmt.Errorf("scenario: recovery.outage_rate: %v out of range [0, 1)", r.OutageRate)
	}
	if r.OutageDuration < 1 {
		return fmt.Errorf("scenario: recovery.outage_duration: %d out of range (want >= 1)", r.OutageDuration)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("scenario: recovery.max_retries: %d out of range (want >= 0)", r.MaxRetries)
	}
	return nil
}

// validateAdversary checks the reactive-adversary section against the
// protocol: jam-capable strategies ride cogcast's jammed topology (where
// per_slot doubles as the reduction's kJam), crash-capable ones ride the
// recovery supervisor.
func (sc *Scenario) validateAdversary() error {
	a := sc.Adversary
	if a.Strategy == "" {
		if a.Energy != 0 || a.PerSlot != 0 {
			return fmt.Errorf("scenario: adversary.energy: needs adversary.strategy")
		}
		return nil
	}
	if _, err := adversary.New(a.Strategy); err != nil {
		return fmt.Errorf("scenario: adversary.strategy: unknown reactive strategy %q", a.Strategy)
	}
	if a.Energy < 0 {
		return fmt.Errorf("scenario: adversary.energy: %d out of range (want >= 0)", a.Energy)
	}
	if a.PerSlot < 1 {
		return fmt.Errorf("scenario: adversary.per_slot: %d out of range (want >= 1)", a.PerSlot)
	}
	switch sc.Protocol.Name {
	case "cogcast":
		if a.Strategy != "none" && !adversary.CanJam(a.Strategy) {
			return fmt.Errorf("scenario: adversary.strategy: %q cannot jam; cogcast takes none, busiest, follower or hunter", a.Strategy)
		}
		if sc.Topology.Generator != "jammed" {
			return fmt.Errorf("scenario: adversary.strategy: reactive jamming needs topology.generator \"jammed\"")
		}
		if 2*a.PerSlot >= sc.Topology.ChannelsPerNode {
			return fmt.Errorf("scenario: adversary.per_slot: %d out of range (want 2*per_slot < channels_per_node = %d; per_slot is the reduction's jam budget)",
				a.PerSlot, sc.Topology.ChannelsPerNode)
		}
	case "cogcomp":
		if a.Strategy != "none" && !adversary.CanCrash(a.Strategy) {
			return fmt.Errorf("scenario: adversary.strategy: %q cannot crash nodes; cogcomp takes none, hunter, crasher or oblivious", a.Strategy)
		}
		if !sc.Recovery.Enabled {
			return fmt.Errorf("scenario: adversary.strategy: needs recovery.enabled on cogcomp (the classic runner has no fault injection)")
		}
	default:
		return fmt.Errorf("scenario: adversary.strategy: supports cogcast and cogcomp, not %q", sc.Protocol.Name)
	}
	return nil
}

func (sc *Scenario) validateEvents() error {
	type window struct{ from, until, index int }
	windows := map[string][]window{}
	points := map[string][]int{}
	for i, ev := range sc.Events {
		path := fmt.Sprintf("events[%d]", i)
		switch ev.Kind {
		case EvRandomOutages, EvCorrelatedOutages, EvBlackout:
			if !sc.Recovery.Enabled {
				return fmt.Errorf("scenario: %s: %s events need recovery.enabled", path, ev.Kind)
			}
			if sc.Engine.Repeat > 1 {
				return fmt.Errorf("scenario: %s: fault events support single runs; drop engine.repeat", path)
			}
			if ev.At < 0 || (ev.Until != 0 && ev.Until <= ev.At) {
				return fmt.Errorf("scenario: %s: invalid slot window [%d, %d)", path, ev.At, ev.Until)
			}
			if ev.Strategy != "" || ev.Budget != 0 {
				return fmt.Errorf("scenario: %s: strategy/budget are jam-switch fields", path)
			}
			switch ev.Kind {
			case EvBlackout:
				if ev.Until == 0 {
					return fmt.Errorf("scenario: %s: blackout needs an explicit until", path)
				}
				if ev.Rate != 0 || ev.Duration != 0 || ev.Group != 0 {
					return fmt.Errorf("scenario: %s: rate/duration/group are outage fields", path)
				}
				if len(ev.Nodes) == 0 {
					return fmt.Errorf("scenario: %s: blackout needs a non-empty nodes list", path)
				}
				for _, id := range ev.Nodes {
					if id < 0 || id >= sc.Topology.Nodes {
						return fmt.Errorf("scenario: %s: node %d out of range [0, %d)", path, id, sc.Topology.Nodes)
					}
					if id == sc.Protocol.Source {
						return fmt.Errorf("scenario: %s: blackout must not include the source node %d", path, id)
					}
				}
			default:
				if ev.Rate <= 0 || ev.Rate >= 1 {
					return fmt.Errorf("scenario: %s: rate %v out of range (0, 1)", path, ev.Rate)
				}
				if ev.Duration < 1 {
					return fmt.Errorf("scenario: %s: duration %d out of range (want >= 1)", path, ev.Duration)
				}
				if ev.Kind == EvCorrelatedOutages && ev.Group < 1 {
					return fmt.Errorf("scenario: %s: group %d out of range (want >= 1)", path, ev.Group)
				}
				if ev.Kind == EvRandomOutages && ev.Group != 0 {
					return fmt.Errorf("scenario: %s: group is a correlated-outages field", path)
				}
				if len(ev.Nodes) != 0 {
					return fmt.Errorf("scenario: %s: nodes is a blackout field", path)
				}
			}
			for _, w := range windows[ev.Kind] {
				if overlaps(w.from, w.until, ev.At, ev.Until) {
					return fmt.Errorf("scenario: %s: window overlaps events[%d] (both %s); merge them or separate the windows",
						path, w.index, ev.Kind)
				}
			}
			windows[ev.Kind] = append(windows[ev.Kind], window{ev.At, ev.Until, i})
		case EvJamSwitch:
			if sc.Topology.Generator != "jammed" {
				return fmt.Errorf("scenario: %s: jam-switch needs topology.generator \"jammed\"", path)
			}
			if sc.Adversary.Strategy != "" {
				return fmt.Errorf("scenario: %s: the reactive adversary owns the jammer; drop jam-switch events", path)
			}
			if ev.At < 1 {
				return fmt.Errorf("scenario: %s: at %d out of range (want >= 1; slot 0 is topology.jam_strategy)", path, ev.At)
			}
			if !oneOf(ev.Strategy, jammers) {
				return fmt.Errorf("scenario: %s: unknown jammer strategy %q", path, ev.Strategy)
			}
			if ev.Budget < 0 || 2*ev.Budget >= sc.Topology.ChannelsPerNode {
				return fmt.Errorf("scenario: %s: budget %d out of range (want 0 <= budget < channels_per_node/2 = %d/2)",
					path, ev.Budget, sc.Topology.ChannelsPerNode)
			}
			if ev.Until != 0 || ev.Rate != 0 || ev.Duration != 0 || ev.Group != 0 || len(ev.Nodes) != 0 {
				return fmt.Errorf("scenario: %s: jam-switch uses only at, strategy and budget", path)
			}
			for _, at := range points[ev.Kind] {
				if at == ev.At {
					return fmt.Errorf("scenario: %s: duplicate jam-switch at slot %d", path, ev.At)
				}
			}
			points[ev.Kind] = append(points[ev.Kind], ev.At)
		case EvAssignmentFlip:
			if sc.Topology.Generator != "shared-core" || sc.Topology.Dynamic {
				return fmt.Errorf("scenario: %s: assignment-flip needs topology.generator \"shared-core\" with dynamic false", path)
			}
			if sc.Protocol.Name != "cogcast" {
				return fmt.Errorf("scenario: %s: assignment-flip supports cogcast, not %q", path, sc.Protocol.Name)
			}
			if ev.At < 1 {
				return fmt.Errorf("scenario: %s: at %d out of range (want >= 1)", path, ev.At)
			}
			if ev.Until != 0 || ev.Rate != 0 || ev.Duration != 0 || ev.Group != 0 ||
				len(ev.Nodes) != 0 || ev.Strategy != "" || ev.Budget != 0 {
				return fmt.Errorf("scenario: %s: assignment-flip uses only at", path)
			}
			for _, at := range points[ev.Kind] {
				if at == ev.At {
					return fmt.Errorf("scenario: %s: duplicate assignment-flip at slot %d", path, ev.At)
				}
			}
			points[ev.Kind] = append(points[ev.Kind], ev.At)
		case "":
			return fmt.Errorf("scenario: %s.kind: required", path)
		default:
			return fmt.Errorf("scenario: %s.kind: unknown event kind %q", path, ev.Kind)
		}
	}
	return nil
}

// overlaps reports whether [a, b) and [c, d) intersect (0 = open end).
func overlaps(a, b, c, d int) bool {
	if b == 0 {
		b = int(^uint(0) >> 1)
	}
	if d == 0 {
		d = int(^uint(0) >> 1)
	}
	return a < d && c < b
}

// flipSlots collects the assignment-flip schedule, ascending.
func (sc *Scenario) flipSlots() []int {
	var out []int
	for _, ev := range sc.Events {
		if ev.Kind == EvAssignmentFlip {
			out = append(out, ev.At)
		}
	}
	sort.Ints(out)
	return out
}

func (sc *Scenario) validateAssertions() error {
	p := sc.Protocol.Name
	for i, a := range sc.Assertions {
		path := fmt.Sprintf("assertions[%d]", i)
		if sc.Engine.Repeat > 1 && a.Kind != AsCompletedBy && a.Kind != AsOracleClean {
			return fmt.Errorf("scenario: %s: %q applies to single runs; only completed-by and oracle-clean work with engine.repeat", path, a.Kind)
		}
		switch a.Kind {
		case AsCompletedBy:
			if a.Slots < 1 {
				return fmt.Errorf("scenario: %s.slots: %d out of range (want >= 1)", path, a.Slots)
			}
		case AsAllInformed:
			switch p {
			case "cogcast", "gossip", "rendezvous", "rendezvous-agg", "hop":
			default:
				return fmt.Errorf("scenario: %s: all-informed supports dissemination protocols, not %q", path, p)
			}
		case AsExactCensus, AsDegradedCensus, AsMaxRetries, AsMaxReelections, AsMaxRestarts:
			if !sc.Recovery.Enabled {
				return fmt.Errorf("scenario: %s: %q needs recovery.enabled", path, a.Kind)
			}
			if a.Kind == AsDegradedCensus && (a.MinContributors < 1 || a.MinContributors > sc.Topology.Nodes) {
				return fmt.Errorf("scenario: %s.min_contributors: %d out of range [1, %d (nodes)]", path, a.MinContributors, sc.Topology.Nodes)
			}
			if (a.Kind == AsMaxRetries || a.Kind == AsMaxReelections || a.Kind == AsMaxRestarts) && a.Value < 0 {
				return fmt.Errorf("scenario: %s.value: %d out of range (want >= 0)", path, a.Value)
			}
		case AsValueEquals:
			if p != "cogcomp" {
				return fmt.Errorf("scenario: %s: value-equals supports cogcomp, not %q", path, p)
			}
			switch sc.Protocol.Aggregate {
			case "sum", "count", "min", "max":
			default:
				return fmt.Errorf("scenario: %s: value-equals supports int64 aggregates, not %q", path, sc.Protocol.Aggregate)
			}
		case AsOracleClean:
			if !sc.Engine.Check {
				return fmt.Errorf("scenario: %s: oracle-clean needs engine.check", path)
			}
		case "":
			return fmt.Errorf("scenario: %s.kind: required", path)
		default:
			return fmt.Errorf("scenario: %s.kind: unknown assertion kind %q", path, a.Kind)
		}
	}
	return nil
}

func (sc *Scenario) validateExperiment() error {
	x := sc.Experiment
	if x.ID == "" {
		return fmt.Errorf("scenario: experiment.id: required")
	}
	if _, err := exper.ByID(x.ID); err != nil {
		return fmt.Errorf("scenario: experiment.id: unknown experiment %q", x.ID)
	}
	if x.Trials < 0 {
		return fmt.Errorf("scenario: experiment.trials: %d out of range (want >= 0)", x.Trials)
	}
	if sc.Topology != (Topology{Labels: "local"}) && sc.Topology != (Topology{}) {
		return fmt.Errorf("scenario: topology: experiment runs declare their own grids; drop the topology section")
	}
	if len(sc.Events) != 0 {
		return fmt.Errorf("scenario: events: experiment runs schedule their own faults; drop the events section")
	}
	if len(sc.Assertions) != 0 {
		return fmt.Errorf("scenario: assertions: not supported for experiment runs (experiments carry their own verdict notes)")
	}
	if sc.Engine.Trace != "" {
		return fmt.Errorf("scenario: engine.trace: not supported for experiment runs")
	}
	if sc.Engine.Repeat > 1 {
		return fmt.Errorf("scenario: engine.repeat: experiment trials repeat via experiment.trials")
	}
	if sc.Recovery.OutageRate != 0 || sc.Recovery.MaxRetries != 0 {
		return fmt.Errorf("scenario: recovery: experiment runs only use recovery.enabled (the E26/E27 supervisor toggle)")
	}
	if sc.Adversary != (Adversary{}) {
		return fmt.Errorf("scenario: adversary: experiment runs schedule their own adversaries (E30 is the tournament); drop the adversary section")
	}
	return nil
}
