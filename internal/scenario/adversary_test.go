package scenario

import (
	"strings"
	"testing"
)

// reactiveBase returns a valid reactive-jammer cogcast scenario.
func reactiveBase() *Scenario {
	sc := &Scenario{
		Name:      "t",
		Topology:  Topology{Nodes: 16, ChannelsPerNode: 16, Generator: "jammed"},
		Protocol:  Protocol{Name: "cogcast"},
		Adversary: Adversary{Strategy: "busiest", Energy: 60},
	}
	sc.Normalize()
	return sc
}

func TestAdversaryDecode(t *testing.T) {
	sc, err := Parse([]byte(`
name: adv
topology:
  nodes: 16
  channels_per_node: 16
  generator: jammed
protocol:
  name: cogcast
adversary:
  strategy: follower
  energy: 80
  per_slot: 3
`))
	if err != nil {
		t.Fatal(err)
	}
	want := Adversary{Strategy: "follower", Energy: 80, PerSlot: 3}
	if sc.Adversary != want {
		t.Errorf("decoded adversary = %+v, want %+v", sc.Adversary, want)
	}
	if _, err := Parse([]byte("name: t\nadversary:\n  strategy: busiest\n  joules: 5\n")); err == nil ||
		!strings.Contains(err.Error(), `unknown field "joules"`) {
		t.Errorf("unknown adversary field not rejected: %v", err)
	}
}

func TestAdversaryNormalize(t *testing.T) {
	sc := reactiveBase()
	if sc.Adversary.PerSlot != 2 {
		t.Errorf("per_slot default = %d, want 2", sc.Adversary.PerSlot)
	}
	// The reactive adversary owns the jammer: no "random" default strategy.
	if sc.Topology.JamStrategy != "" {
		t.Errorf("jam_strategy defaulted to %q under a reactive adversary", sc.Topology.JamStrategy)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversaryValidateRejects(t *testing.T) {
	recovered := func() *Scenario {
		sc := &Scenario{
			Name:      "t",
			Topology:  Topology{Nodes: 16, ChannelsPerNode: 8, MinOverlap: 2, Generator: "shared-core"},
			Protocol:  Protocol{Name: "cogcomp"},
			Recovery:  Recovery{Enabled: true},
			Adversary: Adversary{Strategy: "crasher", Energy: 60},
		}
		sc.Normalize()
		return sc
	}
	if err := recovered().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sc   func() *Scenario
		want string
	}{
		{"energy without strategy", func() *Scenario {
			sc := &Scenario{
				Name:      "t",
				Topology:  Topology{Nodes: 16, ChannelsPerNode: 8, MinOverlap: 2, Generator: "shared-core"},
				Protocol:  Protocol{Name: "cogcast"},
				Adversary: Adversary{Energy: 10},
			}
			sc.Normalize()
			return sc
		}, `scenario: adversary.energy: needs adversary.strategy`},
		{"unknown strategy", func() *Scenario { sc := reactiveBase(); sc.Adversary.Strategy = "nuke"; return sc },
			`scenario: adversary.strategy: unknown reactive strategy "nuke"`},
		{"negative energy", func() *Scenario { sc := reactiveBase(); sc.Adversary.Energy = -1; return sc },
			`scenario: adversary.energy: -1 out of range (want >= 0)`},
		{"crash strategy on cogcast", func() *Scenario { sc := reactiveBase(); sc.Adversary.Strategy = "crasher"; return sc },
			`scenario: adversary.strategy: "crasher" cannot jam; cogcast takes none, busiest, follower or hunter`},
		{"cogcast without jammed topology", func() *Scenario {
			sc := reactiveBase()
			sc.Topology = Topology{Nodes: 16, ChannelsPerNode: 8, MinOverlap: 2, Generator: "shared-core"}
			sc.Normalize()
			return sc
		}, `scenario: adversary.strategy: reactive jamming needs topology.generator "jammed"`},
		{"per_slot at c/2", func() *Scenario { sc := reactiveBase(); sc.Adversary.PerSlot = 8; return sc },
			`scenario: adversary.per_slot: 8 out of range (want 2*per_slot < channels_per_node = 16; per_slot is the reduction's jam budget)`},
		{"jam strategy alongside adversary", func() *Scenario { sc := reactiveBase(); sc.Topology.JamStrategy = "random"; return sc },
			`scenario: topology.jam_strategy: the adversary section drives the jammer; leave it unset`},
		{"jam budget alongside adversary", func() *Scenario { sc := reactiveBase(); sc.Topology.JamBudget = 2; return sc },
			`scenario: topology.jam_budget: the adversary's per_slot is the jam budget; leave it unset`},
		{"jam-switch alongside adversary", func() *Scenario {
			sc := reactiveBase()
			sc.Events = []Event{{Kind: EvJamSwitch, At: 5, Strategy: "sweep", Budget: 2}}
			return sc
		}, `scenario: events[0]: the reactive adversary owns the jammer; drop jam-switch events`},
		{"jam strategy on cogcomp", func() *Scenario { sc := recovered(); sc.Adversary.Strategy = "busiest"; return sc },
			`scenario: adversary.strategy: "busiest" cannot crash nodes; cogcomp takes none, hunter, crasher or oblivious`},
		{"cogcomp without recovery", func() *Scenario { sc := recovered(); sc.Recovery = Recovery{OutageDuration: 10}; return sc },
			`scenario: adversary.strategy: needs recovery.enabled on cogcomp (the classic runner has no fault injection)`},
		{"unsupported protocol", func() *Scenario {
			sc := recovered()
			sc.Protocol.Name = "gossip"
			sc.Recovery = Recovery{OutageDuration: 10}
			return sc
		}, `scenario: adversary.strategy: supports cogcast and cogcomp, not "gossip"`},
		{"experiment with adversary", func() *Scenario {
			sc := &Scenario{
				Name:       "t",
				Protocol:   Protocol{Name: "experiment"},
				Experiment: Experiment{ID: "E30"},
				Adversary:  Adversary{Strategy: "crasher", Energy: 10},
			}
			sc.Normalize()
			return sc
		}, `scenario: adversary: experiment runs schedule their own adversaries (E30 is the tournament); drop the adversary section`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc().Validate()
			if err == nil || err.Error() != tc.want {
				t.Errorf("got %v, want %s", err, tc.want)
			}
		})
	}
}
