package scenario

// A self-contained parser for the YAML subset the scenario format uses —
// block mappings and sequences nested by indentation, scalars
// (null/bool/int/float/plain and quoted strings), flow lists of scalars,
// and comments. No anchors, tags, multi-line strings, or multi-document
// streams: scenarios are flat declarative data, and a ~200-line strict
// parser the repository owns beats a dependency the container cannot
// fetch. Anything outside the subset is rejected with a line-numbered
// error rather than guessed at.

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line
}

// parseYAML decodes data into the generic tree decode.go consumes:
// map[string]any, []any, string, int64, float64, bool, nil.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseValue(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("line %d: unexpected content %q (bad indentation?)", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// splitYAMLLines strips comments and blank lines and records indentation.
func splitYAMLLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		if line == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab indentation is not allowed; use spaces", num+1)
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		out = append(out, yamlLine{indent: indent, text: text, num: num + 1})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment that is outside quotes
// and, mid-line, preceded by a space.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseValue parses the block starting at the current line, which must sit
// at exactly the given indent.
func (p *yamlParser) parseValue(indent int) (any, error) {
	ln := p.lines[p.pos]
	if ln.indent != indent {
		return nil, fmt.Errorf("line %d: inconsistent indentation (got %d spaces, block uses %d)", ln.num, ln.indent, indent)
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: inconsistent indentation (got %d spaces, block uses %d)", ln.num, ln.indent, indent)
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, fmt.Errorf("line %d: sequence item in a mapping block", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Value is the nested block on the following deeper-indented
		// lines; a key with nothing nested is null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseValue(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: inconsistent indentation (got %d spaces, block uses %d)", ln.num, ln.indent, indent)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, fmt.Errorf("line %d: expected a \"- \" sequence item", ln.num)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseValue(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		if isMappingStart(rest) {
			// "- key: ..." starts a mapping item: re-read this line as the
			// mapping's first entry, two columns deeper (where its
			// continuation lines sit).
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: ln.num}
			v, err := p.parseMapping(indent + 2)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
		p.pos++
	}
	return seq, nil
}

// splitKey splits "key:" or "key: value" and validates the key.
func splitKey(ln yamlLine) (key, rest string, err error) {
	i := strings.Index(ln.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("line %d: expected \"key: value\", got %q", ln.num, ln.text)
	}
	key = ln.text[:i]
	if key == "" || strings.ContainsAny(key, " '\"[]{},") {
		return "", "", fmt.Errorf("line %d: invalid key %q", ln.num, key)
	}
	rest = strings.TrimLeft(ln.text[i+1:], " ")
	if rest != "" && ln.text[i+1] != ' ' {
		return "", "", fmt.Errorf("line %d: missing space after %q:", ln.num, key)
	}
	return key, rest, nil
}

// isMappingStart reports whether a sequence item's inline text begins a
// mapping ("key: value" / "key:") rather than a scalar containing a colon.
func isMappingStart(s string) bool {
	i := strings.Index(s, ":")
	if i <= 0 {
		return false
	}
	if strings.ContainsAny(s[:i], " '\"[]{},") {
		return false
	}
	return i+1 == len(s) || s[i+1] == ' '
}

// parseScalar decodes an inline value: quoted string, flow list, or plain
// scalar (null/bool/number/string).
func parseScalar(s string, num int) (any, error) {
	switch {
	case strings.HasPrefix(s, "["):
		return parseFlowList(s, num)
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("line %d: unterminated single-quoted string", num)
		}
		body := s[1 : len(s)-1]
		if strings.Contains(strings.ReplaceAll(body, "''", ""), "'") {
			return nil, fmt.Errorf("line %d: stray quote in single-quoted string", num)
		}
		return strings.ReplaceAll(body, "''", "'"), nil
	case strings.HasPrefix(s, "\""):
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad double-quoted string %s", num, s)
		}
		return v, nil
	case strings.HasPrefix(s, "{"):
		return nil, fmt.Errorf("line %d: flow mappings {...} are not supported; use block form", num)
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "!"):
		return nil, fmt.Errorf("line %d: YAML anchors, aliases and tags are not supported", num)
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("line %d: block scalars (| and >) are not supported; keep strings on one line", num)
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// parseFlowList decodes "[a, b, c]" with scalar elements.
func parseFlowList(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("line %d: unterminated flow list %q", num, s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return []any{}, nil
	}
	if strings.ContainsAny(body, "[]{}") {
		return nil, fmt.Errorf("line %d: nested flow collections are not supported", num)
	}
	var out []any
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("line %d: empty element in flow list %q", num, s)
		}
		v, err := parseScalar(part, num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
