package scenario

// Strict mapping from the generic parsed tree (YAML or JSON) onto the
// Scenario struct: every field name is checked against the schema, every
// value against its type, and anything unknown is an error — a scenario
// that parses is a scenario whose every line means something.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Load reads, parses, normalizes and validates a scenario file. This is
// the one-call entry point cmd/cogsim and the CI matrix use.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse decodes scenario bytes — YAML by default, JSON when the document
// starts with '{' — into a Scenario, rejecting unknown fields and
// mistyped values. The result is not yet normalized or validated.
func Parse(data []byte) (*Scenario, error) {
	var (
		tree any
		err  error
	)
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.UseNumber()
		if err = dec.Decode(&tree); err != nil {
			return nil, fmt.Errorf("scenario: bad JSON: %v", err)
		}
		tree = normalizeJSON(tree)
	} else {
		tree, err = parseYAML(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %v", err)
		}
	}
	root, ok := tree.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: document must be a mapping, got %s", typeName(tree))
	}
	sc := &Scenario{}
	d := &decoder{}
	d.decodeRoot(root, sc)
	if d.err != nil {
		return nil, d.err
	}
	return sc, nil
}

// normalizeJSON converts json.Number leaves to int64/float64 so JSON and
// YAML feed the decoder the same scalar types.
func normalizeJSON(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			x[k] = normalizeJSON(e)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = normalizeJSON(e)
		}
		return x
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i
		}
		f, _ := x.Float64()
		return f
	default:
		return v
	}
}

// decoder walks the tree, recording the first error with its field path.
type decoder struct {
	err error
}

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		if path != "" {
			format = path + ": " + format
		}
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

// section extracts a nested mapping field (nil when absent).
func (d *decoder) section(m map[string]any, path, key string) map[string]any {
	v, ok := m[key]
	if !ok || d.err != nil {
		return nil
	}
	sub, ok := v.(map[string]any)
	if !ok {
		d.fail(joinPath(path, key), "want a mapping, got %s", typeName(v))
		return nil
	}
	return sub
}

// checkUnknown rejects keys not consumed by the schema.
func (d *decoder) checkUnknown(m map[string]any, path string, known ...string) {
	if d.err != nil {
		return
	}
	var unknown []string
	for k := range m {
		found := false
		for _, want := range known {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		// Report the lexicographically first for a deterministic message.
		first := unknown[0]
		for _, k := range unknown[1:] {
			if k < first {
				first = k
			}
		}
		where := path
		if where == "" {
			where = "the top level"
		}
		d.fail("", "unknown field %q in %s", first, where)
	}
}

func (d *decoder) str(m map[string]any, path, key string) string {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.fail(joinPath(path, key), "want a string, got %s", typeName(v))
		return ""
	}
	return s
}

func (d *decoder) integer(m map[string]any, path, key string) int {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return 0
	}
	i, ok := v.(int64)
	if !ok {
		d.fail(joinPath(path, key), "want an integer, got %s", typeName(v))
		return 0
	}
	return int(i)
}

func (d *decoder) int64(m map[string]any, path, key string) int64 {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return 0
	}
	i, ok := v.(int64)
	if !ok {
		d.fail(joinPath(path, key), "want an integer, got %s", typeName(v))
		return 0
	}
	return i
}

func (d *decoder) float(m map[string]any, path, key string) float64 {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return 0
	}
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	default:
		d.fail(joinPath(path, key), "want a number, got %s", typeName(v))
		return 0
	}
}

func (d *decoder) boolean(m map[string]any, path, key string) bool {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		d.fail(joinPath(path, key), "want true or false, got %s", typeName(v))
		return false
	}
	return b
}

func (d *decoder) intList(m map[string]any, path, key string) []int {
	v, ok := m[key]
	if !ok || v == nil || d.err != nil {
		return nil
	}
	seq, ok := v.([]any)
	if !ok {
		d.fail(joinPath(path, key), "want a list of integers, got %s", typeName(v))
		return nil
	}
	out := make([]int, len(seq))
	for i, e := range seq {
		n, ok := e.(int64)
		if !ok {
			d.fail(fmt.Sprintf("%s[%d]", joinPath(path, key), i), "want an integer, got %s", typeName(e))
			return nil
		}
		out[i] = int(n)
	}
	return out
}

func (d *decoder) decodeRoot(m map[string]any, sc *Scenario) {
	d.checkUnknown(m, "",
		"name", "description", "seed", "topology", "protocol", "engine",
		"limits", "recovery", "adversary", "experiment", "events", "assertions")
	sc.Name = d.str(m, "", "name")
	sc.Description = d.str(m, "", "description")
	sc.Seed = d.int64(m, "", "seed")

	if t := d.section(m, "", "topology"); t != nil {
		d.checkUnknown(t, "topology",
			"nodes", "channels_per_node", "min_overlap", "total_channels",
			"generator", "labels", "dynamic", "jam_strategy", "jam_budget")
		sc.Topology = Topology{
			Nodes:           d.integer(t, "topology", "nodes"),
			ChannelsPerNode: d.integer(t, "topology", "channels_per_node"),
			MinOverlap:      d.integer(t, "topology", "min_overlap"),
			TotalChannels:   d.integer(t, "topology", "total_channels"),
			Generator:       d.str(t, "topology", "generator"),
			Labels:          d.str(t, "topology", "labels"),
			Dynamic:         d.boolean(t, "topology", "dynamic"),
			JamStrategy:     d.str(t, "topology", "jam_strategy"),
			JamBudget:       d.integer(t, "topology", "jam_budget"),
		}
	}
	if p := d.section(m, "", "protocol"); p != nil {
		d.checkUnknown(p, "protocol",
			"name", "source", "payload", "aggregate", "rounds", "rumors",
			"max_slots", "curve")
		sc.Protocol = Protocol{
			Name:      d.str(p, "protocol", "name"),
			Source:    d.integer(p, "protocol", "source"),
			Payload:   d.str(p, "protocol", "payload"),
			Aggregate: d.str(p, "protocol", "aggregate"),
			Rounds:    d.integer(p, "protocol", "rounds"),
			Rumors:    d.integer(p, "protocol", "rumors"),
			MaxSlots:  d.integer(p, "protocol", "max_slots"),
			Curve:     d.boolean(p, "protocol", "curve"),
		}
	}
	if e := d.section(m, "", "engine"); e != nil {
		d.checkUnknown(e, "engine", "shards", "sparse", "parallel", "repeat", "check", "trace")
		sc.Engine = Engine{
			Shards:   d.integer(e, "engine", "shards"),
			Sparse:   d.boolean(e, "engine", "sparse"),
			Parallel: d.integer(e, "engine", "parallel"),
			Repeat:   d.integer(e, "engine", "repeat"),
			Check:    d.boolean(e, "engine", "check"),
			Trace:    d.str(e, "engine", "trace"),
		}
	}
	if l := d.section(m, "", "limits"); l != nil {
		d.checkUnknown(l, "limits", "deadline", "max_slots")
		sc.Limits = Limits{
			Deadline: d.str(l, "limits", "deadline"),
			MaxSlots: d.integer(l, "limits", "max_slots"),
		}
	}
	if r := d.section(m, "", "recovery"); r != nil {
		d.checkUnknown(r, "recovery", "enabled", "outage_rate", "outage_duration", "max_retries")
		sc.Recovery = Recovery{
			Enabled:        d.boolean(r, "recovery", "enabled"),
			OutageRate:     d.float(r, "recovery", "outage_rate"),
			OutageDuration: d.integer(r, "recovery", "outage_duration"),
			MaxRetries:     d.integer(r, "recovery", "max_retries"),
		}
	}
	if a := d.section(m, "", "adversary"); a != nil {
		d.checkUnknown(a, "adversary", "strategy", "energy", "per_slot")
		sc.Adversary = Adversary{
			Strategy: d.str(a, "adversary", "strategy"),
			Energy:   d.integer(a, "adversary", "energy"),
			PerSlot:  d.integer(a, "adversary", "per_slot"),
		}
	}
	if x := d.section(m, "", "experiment"); x != nil {
		d.checkUnknown(x, "experiment", "id", "trials", "quick")
		sc.Experiment = Experiment{
			ID:     d.str(x, "experiment", "id"),
			Trials: d.integer(x, "experiment", "trials"),
			Quick:  d.boolean(x, "experiment", "quick"),
		}
	}
	sc.Events = d.decodeEvents(m)
	sc.Assertions = d.decodeAssertions(m)
}

func (d *decoder) decodeEvents(m map[string]any) []Event {
	v, ok := m["events"]
	if !ok || v == nil || d.err != nil {
		return nil
	}
	seq, ok := v.([]any)
	if !ok {
		d.fail("events", "want a list, got %s", typeName(v))
		return nil
	}
	out := make([]Event, 0, len(seq))
	for i, e := range seq {
		path := fmt.Sprintf("events[%d]", i)
		em, ok := e.(map[string]any)
		if !ok {
			d.fail(path, "want a mapping, got %s", typeName(e))
			return nil
		}
		d.checkUnknown(em, path,
			"kind", "at", "until", "rate", "duration", "group", "nodes",
			"strategy", "budget")
		out = append(out, Event{
			Kind:     d.str(em, path, "kind"),
			At:       d.integer(em, path, "at"),
			Until:    d.integer(em, path, "until"),
			Rate:     d.float(em, path, "rate"),
			Duration: d.integer(em, path, "duration"),
			Group:    d.integer(em, path, "group"),
			Nodes:    d.intList(em, path, "nodes"),
			Strategy: d.str(em, path, "strategy"),
			Budget:   d.integer(em, path, "budget"),
		})
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *decoder) decodeAssertions(m map[string]any) []Assertion {
	v, ok := m["assertions"]
	if !ok || v == nil || d.err != nil {
		return nil
	}
	seq, ok := v.([]any)
	if !ok {
		d.fail("assertions", "want a list, got %s", typeName(v))
		return nil
	}
	out := make([]Assertion, 0, len(seq))
	for i, e := range seq {
		path := fmt.Sprintf("assertions[%d]", i)
		am, ok := e.(map[string]any)
		if !ok {
			d.fail(path, "want a mapping, got %s", typeName(e))
			return nil
		}
		d.checkUnknown(am, path, "kind", "slots", "value", "min_contributors")
		out = append(out, Assertion{
			Kind:            d.str(am, path, "kind"),
			Slots:           d.integer(am, path, "slots"),
			Value:           d.int64(am, path, "value"),
			MinContributors: d.integer(am, path, "min_contributors"),
		})
		if d.err != nil {
			return nil
		}
	}
	return out
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// typeName names a generic value's type in error messages.
func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case string:
		return "a string"
	case bool:
		return "a boolean"
	case int64:
		return "an integer"
	case float64:
		return "a number"
	case []any:
		return "a list"
	case map[string]any:
		return "a mapping"
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", v), "scenario.")
	}
}
