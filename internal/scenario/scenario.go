// Package scenario is the declarative run format of the repository: a
// YAML/JSON file that states *what* to simulate — topology, protocol, a
// timed event schedule (outages, blackouts, jammer switches, assignment
// flips), recovery settings, engine options — and *what must hold
// afterwards* (postcondition assertions), instead of a pile of CLI flags
// or a hard-coded experiment config.
//
// The package is the single execution path for cmd/cogsim: the flag parser
// builds a Scenario in memory and file mode loads one from disk, so a
// scenario run is byte-identical to the equivalent flag-driven run by
// construction — at any -parallel or -shards count, with or without
// tracing. Every field maps onto an existing surface (crn.Spec,
// crn.BroadcastOptions/AggregateOptions, exper.Config, the faults and
// jamming adversaries); the DSL adds no semantics of its own.
//
// Lifecycle: Parse (strict decode, unknown fields rejected) → Normalize
// (defaults filled in) → Validate (ranges, event overlap, assertions vs
// enabled features) → Execute (run, returning an Outcome) → Assertions
// (evaluate the Outcome). Load bundles the first three; Run the last two.
// Emit renders the canonical normalized form, and
// parse→normalize→emit is a fixed point (golden round-trip tests pin it).
//
// The committed library lives in scenarios/ and the full file-format
// reference in SCENARIOS.md.
package scenario

// Scenario declares one run: a network, a protocol over it, optional timed
// events and recovery settings, and the assertions its outcome must
// satisfy. The zero value is not runnable; fill at least Name, Topology
// and Protocol, then Normalize and Validate.
type Scenario struct {
	// Name identifies the scenario (reports, catalog, CI matrix).
	Name string
	// Description is a one-line human summary.
	Description string
	// Seed roots all randomness; identical scenarios reproduce identical
	// output. Defaults to 1 (the cogsim flag default).
	Seed int64
	// Topology declares the network.
	Topology Topology
	// Protocol declares what runs over it.
	Protocol Protocol
	// Engine carries execution options that never change results.
	Engine Engine
	// Limits bounds the run's wall-clock time and slot budget.
	Limits Limits
	// Recovery configures the crash-restart supervisor (cogcomp only).
	Recovery Recovery
	// Adversary configures a reactive (adaptive) adversary over the run.
	Adversary Adversary
	// Experiment configures an experiment-suite run; only valid (and
	// required) when Protocol.Name is "experiment".
	Experiment Experiment
	// Events is the timed schedule of faults and adversary moves.
	Events []Event
	// Assertions are the postconditions checked after the run.
	Assertions []Assertion
}

// Topology declares the network a scenario builds.
type Topology struct {
	// Nodes is n, ChannelsPerNode c, MinOverlap k, TotalChannels C
	// (0 = 3c, matching the cogsim -C default).
	Nodes, ChannelsPerNode, MinOverlap, TotalChannels int
	// Generator selects the assignment generator: "full", "partitioned",
	// "shared-core", "random-pool", "pairwise", or "jammed" (the
	// Theorem 18 jamming reduction).
	Generator string
	// Labels is the channel-label model: "local" (default) or "global".
	Labels string
	// Dynamic re-draws channel sets every slot (SharedCore semantics).
	Dynamic bool
	// JamStrategy and JamBudget configure the "jammed" generator: the
	// adversary strategy ("none", "random", "sweep", "block", "split") and
	// its per-node per-slot budget of jammed channels.
	JamStrategy string
	JamBudget   int
}

// Protocol declares what runs over the network.
type Protocol struct {
	// Name is one of "cogcast", "cogcomp", "session", "gossip",
	// "rendezvous", "rendezvous-agg", "hop", or "experiment".
	Name string
	// Source is the initiating node (default 0).
	Source int
	// Payload is the broadcast message (default "INIT").
	Payload string
	// Aggregate selects the cogcomp/session aggregate: "sum" (default),
	// "count", "min", "max", "stats", or "collect".
	Aggregate string
	// Rounds is the session protocol's reporting-round count (default 3).
	Rounds int
	// Rumors is the gossip protocol's rumor count (default 4).
	Rumors int
	// MaxSlots bounds the run; 0 means the automatic budget.
	MaxSlots int
	// Curve prints the informed-count sparkline for cogcast.
	Curve bool
}

// Engine carries execution options. None of them changes results: repeat
// and parallel fan runs out deterministically, shards splits the per-slot
// scan with byte-identical merging, check attaches the invariant oracle,
// trace records a JSONL stream without perturbing the run.
type Engine struct {
	// Shards splits each slot's protocol scan across goroutines
	// (default 1 = serial).
	Shards int
	// Sparse enables event-driven stepping: dormant nodes are skipped
	// instead of scanned every slot (sim.WithSparse). Results are
	// byte-identical either way; checked/traced and dynamic/jammed runs
	// silently step densely.
	Sparse bool
	// Parallel bounds workers for repeated runs (0 = GOMAXPROCS).
	Parallel int
	// Repeat runs that many independent seeded repetitions (default 1).
	Repeat int
	// Check attaches the invariant oracle to every run.
	Check bool
	// Trace writes a JSONL event trace of a single run to this path.
	Trace string
}

// Limits bounds a run's real time and slot budget. Zero values disable a
// limit; unlike Engine options, an exceeded limit changes the outcome (the
// run is interrupted with a typed deadline error, or stops at the slot
// cap), so limits live in their own section.
type Limits struct {
	// Deadline is a wall-clock budget as a Go duration string ("30s",
	// "2m"). When exceeded, the run is interrupted at the next slot
	// boundary and Execute returns a deadline-exceeded error carrying the
	// slots completed so far.
	Deadline string
	// MaxSlots caps the slot budget. It combines with protocol.max_slots
	// (and the automatic budget) by taking the smallest nonzero value.
	MaxSlots int
}

// Recovery configures the crash-restart supervisor for cogcomp runs.
type Recovery struct {
	// Enabled routes the aggregation through the recovery supervisor.
	Enabled bool
	// OutageRate injects whole-run random churn: each unprotected node
	// starts an outage with this per-slot probability.
	OutageRate float64
	// OutageDuration is each injected outage's length in slots
	// (default 10).
	OutageDuration int
	// MaxRetries bounds per-epoch re-executions before the run degrades
	// (0 = library default).
	MaxRetries int
}

// Adversary configures a reactive adversary (package adversary): a
// strategy that observes every slot's channel outcomes and spends a
// bounded energy budget on next-slot jamming (cogcast over a "jammed"
// topology) or crash-restarts (recovered cogcomp runs).
type Adversary struct {
	// Strategy names the reactive strategy. Jam-capable strategies
	// ("busiest", "follower", "hunter") drive cogcast's jammed reduction;
	// crash-capable ones ("hunter", "crasher", "oblivious") feed the
	// recovery supervisor; "none" is the inert control.
	Strategy string
	// Energy is the total reserve: one unit per jammed channel per slot,
	// one unit per node held down per slot. Zero leaves the adversary
	// inert (the run is byte-identical to the control).
	Energy int
	// PerSlot caps actions scheduled per slot (default 2). On jammed
	// topologies it doubles as the reduction's kJam, so 2*per_slot must
	// stay below channels_per_node.
	PerSlot int
}

// Experiment configures a run of the E1–E28 experiment suite.
type Experiment struct {
	// ID names the experiment, e.g. "E26".
	ID string
	// Trials is the repetition count per parameter point (0 = suite
	// default).
	Trials int
	// Quick shrinks sweeps to the CI-sized grids.
	Quick bool
}

// Event kinds.
const (
	// EvRandomOutages: independent per-node crash-restart churn within a
	// window (recovery runs only).
	EvRandomOutages = "random-outages"
	// EvCorrelatedOutages: blocks of adjacent nodes fail together within a
	// window (recovery runs only).
	EvCorrelatedOutages = "correlated-outages"
	// EvBlackout: a fixed node set is down for the whole window (recovery
	// runs only).
	EvBlackout = "blackout"
	// EvJamSwitch: the jamming adversary switches strategy at a slot
	// (jammed topologies only).
	EvJamSwitch = "jam-switch"
	// EvAssignmentFlip: every node re-draws its channel set at a slot
	// (shared-core cogcast runs only).
	EvAssignmentFlip = "assignment-flip"
)

// Event is one element of the timed schedule. Kind selects which fields
// apply; Validate rejects combinations the kind does not use.
type Event struct {
	// Kind is one of the Ev* constants.
	Kind string
	// At is the slot a point event fires (jam-switch, assignment-flip) or
	// a windowed event starts (outages, blackout).
	At int
	// Until ends a windowed event's slot window [At, Until); 0 leaves it
	// open-ended (blackout requires an explicit Until).
	Until int
	// Rate is the per-slot outage-start probability (outage kinds).
	Rate float64
	// Duration is each outage's length in slots (outage kinds, default 10).
	Duration int
	// Group is the correlated-outage block size (default 8).
	Group int
	// Nodes lists the blacked-out nodes (blackout).
	Nodes []int
	// Strategy and Budget are the jammer strategy and per-node budget a
	// jam-switch switches to.
	Strategy string
	Budget   int
}

// Assertion kinds.
const (
	// AsCompletedBy: the run (every repetition, when repeated) finishes
	// within Slots slots.
	AsCompletedBy = "completed-by"
	// AsAllInformed: the dissemination completed (cogcast, gossip,
	// rendezvous, rendezvous-agg, hop).
	AsAllInformed = "all-informed"
	// AsExactCensus: the recovered aggregation is neither degraded nor
	// stalled and every node contributed.
	AsExactCensus = "exact-census"
	// AsDegradedCensus: the recovered aggregation did not stall and at
	// least MinContributors nodes contributed (degraded accepted).
	AsDegradedCensus = "degraded-census"
	// AsMaxRetries / AsMaxReelections / AsMaxRestarts: recovery effort
	// stayed within Value.
	AsMaxRetries     = "max-retries"
	AsMaxReelections = "max-reelections"
	AsMaxRestarts    = "max-restarts"
	// AsValueEquals: the aggregate equals Value (int64 aggregates).
	AsValueEquals = "value-equals"
	// AsOracleClean: the run passed under the invariant oracle (requires
	// engine.check; a violation fails the run itself).
	AsOracleClean = "oracle-clean"
)

// Assertion is one postcondition. Kind selects which fields apply.
type Assertion struct {
	// Kind is one of the As* constants.
	Kind string
	// Slots is the completed-by bound.
	Slots int
	// Value is the bound or expected value for max-* and value-equals.
	Value int64
	// MinContributors is the degraded-census floor.
	MinContributors int
}

// Normalize fills defaults in place, so that Emit renders the canonical
// full form and Execute never needs fallback logic. It is idempotent.
func (sc *Scenario) Normalize() {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	t := &sc.Topology
	if t.Labels == "" {
		t.Labels = "local"
	}
	if t.Generator == "jammed" {
		// A reactive adversary owns the jammer; only the oblivious
		// generator defaults to the "random" strategy.
		if t.JamStrategy == "" && sc.Adversary.Strategy == "" {
			t.JamStrategy = "random"
		}
	} else if t.TotalChannels == 0 {
		// The cogsim -C default: 3c for every non-jammed generator (the
		// ones that derive C themselves ignore it).
		t.TotalChannels = 3 * t.ChannelsPerNode
	}
	p := &sc.Protocol
	if p.Payload == "" {
		p.Payload = "INIT"
	}
	if p.Aggregate == "" {
		p.Aggregate = "sum"
	}
	if p.Rounds == 0 {
		p.Rounds = 3
	}
	if p.Rumors == 0 {
		p.Rumors = 4
	}
	e := &sc.Engine
	if e.Shards == 0 {
		e.Shards = 1
	}
	if e.Repeat == 0 {
		e.Repeat = 1
	}
	r := &sc.Recovery
	if r.OutageDuration == 0 {
		r.OutageDuration = 10
	}
	a := &sc.Adversary
	if a.Strategy != "" && a.PerSlot == 0 {
		a.PerSlot = 2 // crn.DefaultAdversaryPerSlot
	}
	for i := range sc.Events {
		ev := &sc.Events[i]
		switch ev.Kind {
		case EvRandomOutages, EvCorrelatedOutages:
			if ev.Duration == 0 {
				ev.Duration = 10
			}
			if ev.Kind == EvCorrelatedOutages && ev.Group == 0 {
				ev.Group = 8
			}
		}
	}
}
