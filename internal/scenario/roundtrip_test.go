package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenKitchenSink: a deliberately messy document (comments, keys out
// of order, quoted scalars, flow lists) loads and emits exactly the
// committed canonical form. Run with -update to rewrite the golden file.
func TestGoldenKitchenSink(t *testing.T) {
	sc, err := Load("testdata/kitchen_sink.yaml")
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Emit()
	golden := "testdata/kitchen_sink.golden"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical form drifted from golden:\n--- got\n%s--- want\n%s", got, want)
	}
}

// scenarioFiles returns every committed scenario in the library.
func scenarioFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("scenario library has %d files, want at least 20", len(files))
	}
	return files
}

// TestLibraryValidates: every committed scenario loads (parses,
// normalizes, validates) cleanly.
func TestLibraryValidates(t *testing.T) {
	for _, f := range scenarioFiles(t) {
		if _, err := Load(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// TestRoundTripFixedPoint: for the kitchen-sink file and every committed
// scenario, parse → normalize → emit reaches a fixed point — re-parsing
// the emitted form yields the identical struct and identical bytes.
func TestRoundTripFixedPoint(t *testing.T) {
	files := append([]string{"testdata/kitchen_sink.yaml"}, scenarioFiles(t)...)
	for _, f := range files {
		sc, err := Load(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		first := sc.Emit()
		re, err := Parse(first)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v", f, err)
		}
		re.Normalize()
		if err := re.Validate(); err != nil {
			t.Fatalf("%s: canonical form does not re-validate: %v", f, err)
		}
		if !reflect.DeepEqual(sc, re) {
			t.Fatalf("%s: canonical form decodes to a different scenario:\n%#v\nvs\n%#v", f, sc, re)
		}
		second := re.Emit()
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: emit is not a fixed point:\n--- first\n%s--- second\n%s", f, first, second)
		}
	}
}

// TestNormalizeIdempotent: normalizing twice changes nothing.
func TestNormalizeIdempotent(t *testing.T) {
	for _, f := range scenarioFiles(t) {
		sc, err := Load(f)
		if err != nil {
			t.Fatal(err)
		}
		before := sc.Emit()
		sc.Normalize()
		if !bytes.Equal(before, sc.Emit()) {
			t.Fatalf("%s: Normalize is not idempotent", f)
		}
	}
}
