package scenario

// Postcondition checking. Assert prints one line per assertion so a
// scenario run reads as a report, and returns an error when any fails —
// `cogsim run` turns that into a non-zero exit for CI.

import (
	"fmt"
	"io"
)

// Assert evaluates the scenario's assertions against a run's Outcome,
// printing one "assert <kind>: ok/FAILED" line each, and returns an error
// if any failed.
func (sc *Scenario) Assert(out io.Writer, oc *Outcome) error {
	failed := 0
	report := func(kind string, ok bool, format string, args ...any) {
		verdict := "ok"
		if !ok {
			verdict = "FAILED"
			failed++
		}
		fmt.Fprintf(out, "assert %s: %s (%s)\n", kind, verdict, fmt.Sprintf(format, args...))
	}
	for _, a := range sc.Assertions {
		switch a.Kind {
		case AsCompletedBy:
			if len(oc.RepSlots) > 0 {
				worst := 0.0
				for _, v := range oc.RepSlots {
					if v > worst {
						worst = v
					}
				}
				report(a.Kind, worst <= float64(a.Slots),
					"max %.0f of %d slots across %d reps", worst, a.Slots, len(oc.RepSlots))
			} else {
				report(a.Kind, oc.Slots <= a.Slots, "%d of %d slots", oc.Slots, a.Slots)
			}
		case AsAllInformed:
			report(a.Kind, oc.AllInformed, "all informed: %v", oc.AllInformed)
		case AsExactCensus:
			ok := !oc.Degraded && !oc.Stalled && oc.Contributors == oc.Nodes
			report(a.Kind, ok, "contributors %d/%d, degraded %v, stalled %v",
				oc.Contributors, oc.Nodes, oc.Degraded, oc.Stalled)
		case AsDegradedCensus:
			ok := !oc.Stalled && oc.Contributors >= a.MinContributors
			report(a.Kind, ok, "contributors %d (floor %d), stalled %v",
				oc.Contributors, a.MinContributors, oc.Stalled)
		case AsMaxRetries:
			report(a.Kind, int64(oc.Retries) <= a.Value, "%d of %d retries", oc.Retries, a.Value)
		case AsMaxReelections:
			report(a.Kind, int64(oc.Reelections) <= a.Value, "%d of %d re-elections", oc.Reelections, a.Value)
		case AsMaxRestarts:
			report(a.Kind, int64(oc.Restarts) <= a.Value, "%d of %d restarts", oc.Restarts, a.Value)
		case AsValueEquals:
			v, isInt := oc.Value.(int64)
			report(a.Kind, isInt && v == a.Value, "%s = %v, want %d", sc.Protocol.Aggregate, oc.Value, a.Value)
		case AsOracleClean:
			// A violation fails the run itself before Assert sees it, so
			// reaching this line means the oracle stayed silent.
			report(a.Kind, true, "run completed under the invariant oracle")
		}
	}
	if failed > 0 {
		return fmt.Errorf("scenario %s: %d of %d assertions failed", sc.Name, failed, len(sc.Assertions))
	}
	return nil
}
