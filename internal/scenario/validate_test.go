package scenario

import "testing"

// base returns a minimal valid scenario to mutate per case.
func base() *Scenario {
	sc := &Scenario{
		Name: "t",
		Topology: Topology{
			Nodes: 16, ChannelsPerNode: 8, MinOverlap: 2, Generator: "shared-core",
		},
		Protocol: Protocol{Name: "cogcast"},
	}
	sc.Normalize()
	return sc
}

// jammedBase returns a valid jammed-topology scenario.
func jammedBase() *Scenario {
	sc := &Scenario{
		Name: "t",
		Topology: Topology{
			Nodes: 16, ChannelsPerNode: 16, Generator: "jammed",
			JamStrategy: "random", JamBudget: 3,
		},
		Protocol: Protocol{Name: "cogcast"},
	}
	sc.Normalize()
	return sc
}

// recoveredBase returns a valid recovered-cogcomp scenario.
func recoveredBase() *Scenario {
	sc := base()
	sc.Protocol.Name = "cogcomp"
	sc.Recovery.Enabled = true
	return sc
}

// TestValidateRejects pins the exact message for each semantic rejection
// class: range violations, feature gating, event overlap, and assertions
// referencing features the scenario does not enable.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		sc   func() *Scenario
		want string
	}{
		{"missing name", func() *Scenario { sc := base(); sc.Name = ""; return sc },
			`scenario: name: required`},
		{"missing protocol", func() *Scenario { sc := base(); sc.Protocol.Name = ""; return sc },
			`scenario: protocol.name: required`},
		{"unknown protocol", func() *Scenario { sc := base(); sc.Protocol.Name = "flood"; return sc },
			`scenario: protocol.name: unknown protocol "flood"`},
		{"nodes out of range", func() *Scenario { sc := base(); sc.Topology.Nodes = 1; return sc },
			`scenario: topology.nodes: 1 out of range (want >= 2)`},
		{"unknown generator", func() *Scenario { sc := base(); sc.Topology.Generator = "mesh"; return sc },
			`scenario: topology.generator: unknown generator "mesh"`},
		{"overlap above c", func() *Scenario { sc := base(); sc.Topology.MinOverlap = 9; return sc },
			`scenario: topology.min_overlap: 9 out of range [1, 8 (channels_per_node)]`},
		{"total channels below c", func() *Scenario { sc := base(); sc.Topology.TotalChannels = 4; return sc },
			`scenario: topology.total_channels: 4 out of range (want >= channels_per_node = 8, or 0 for the 3c default)`},
		{"unknown labels", func() *Scenario { sc := base(); sc.Topology.Labels = "private"; return sc },
			`scenario: topology.labels: unknown label model "private" (want local or global)`},
		{"dynamic non-shared-core", func() *Scenario {
			sc := base()
			sc.Topology.Generator = "full"
			sc.Topology.MinOverlap = 8
			sc.Topology.TotalChannels = 8
			sc.Topology.Dynamic = true
			return sc
		}, `scenario: topology.dynamic: dynamic networks use shared-core semantics; set generator "shared-core"`},
		{"jam budget too large", func() *Scenario { sc := jammedBase(); sc.Topology.JamBudget = 8; return sc },
			`scenario: topology.jam_budget: 8 out of range (want 0 <= budget < channels_per_node/2 = 16/2)`},
		{"jam strategy without jammed", func() *Scenario { sc := base(); sc.Topology.JamStrategy = "random"; return sc },
			`scenario: topology.jam_strategy: only valid with generator "jammed", not "shared-core"`},
		{"unknown aggregate", func() *Scenario { sc := base(); sc.Protocol.Aggregate = "median"; return sc },
			`scenario: protocol.aggregate: unknown aggregate "median"`},
		{"source out of range", func() *Scenario { sc := base(); sc.Protocol.Source = 16; return sc },
			`scenario: protocol.source: node 16 out of range [0, 16)`},
		{"curve off-cogcast", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "gossip"
			sc.Protocol.Curve = true
			return sc
		}, `scenario: protocol.curve: supports cogcast, not "gossip"`},
		{"repeat off-protocol", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "gossip"
			sc.Engine.Repeat = 4
			return sc
		}, `scenario: engine.repeat: supports cogcast and cogcomp, not "gossip"`},
		{"trace with repeat", func() *Scenario {
			sc := base()
			sc.Engine.Repeat = 4
			sc.Engine.Trace = "run.jsonl"
			return sc
		}, `scenario: engine.trace: records a single run; drop engine.repeat`},
		{"check off-protocol", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "gossip"
			sc.Engine.Check = true
			return sc
		}, `scenario: engine.check: supports cogcast, cogcomp and session, not "gossip"`},
		{"outage without recovery", func() *Scenario { sc := base(); sc.Recovery.OutageRate = 0.1; return sc },
			`scenario: recovery.outage_rate: needs recovery.enabled (the classic runner has no fault injection)`},
		{"recovery off-cogcomp", func() *Scenario { sc := base(); sc.Recovery.Enabled = true; return sc },
			`scenario: recovery.enabled: supports cogcomp, not "cogcast"`},
		{"outage rate out of range", func() *Scenario {
			sc := recoveredBase()
			sc.Recovery.OutageRate = 1.0
			return sc
		}, `scenario: recovery.outage_rate: 1 out of range [0, 1)`},
		{"fault event without recovery", func() *Scenario {
			sc := base()
			sc.Events = []Event{{Kind: EvRandomOutages, Rate: 0.1, Duration: 10}}
			return sc
		}, `scenario: events[0]: random-outages events need recovery.enabled`},
		{"overlapping fault windows", func() *Scenario {
			sc := recoveredBase()
			sc.Events = []Event{
				{Kind: EvRandomOutages, At: 0, Until: 200, Rate: 0.1, Duration: 10},
				{Kind: EvRandomOutages, At: 100, Until: 300, Rate: 0.2, Duration: 10},
			}
			return sc
		}, `scenario: events[1]: window overlaps events[0] (both random-outages); merge them or separate the windows`},
		{"blackout without until", func() *Scenario {
			sc := recoveredBase()
			sc.Events = []Event{{Kind: EvBlackout, At: 10, Nodes: []int{3}}}
			return sc
		}, `scenario: events[0]: blackout needs an explicit until`},
		{"blackout includes source", func() *Scenario {
			sc := recoveredBase()
			sc.Events = []Event{{Kind: EvBlackout, At: 0, Until: 100, Nodes: []int{0}}}
			return sc
		}, `scenario: events[0]: blackout must not include the source node 0`},
		{"jam-switch without jammed", func() *Scenario {
			sc := base()
			sc.Events = []Event{{Kind: EvJamSwitch, At: 3, Strategy: "block"}}
			return sc
		}, `scenario: events[0]: jam-switch needs topology.generator "jammed"`},
		{"duplicate jam-switch slot", func() *Scenario {
			sc := jammedBase()
			sc.Events = []Event{
				{Kind: EvJamSwitch, At: 3, Strategy: "block", Budget: 3},
				{Kind: EvJamSwitch, At: 3, Strategy: "split", Budget: 3},
			}
			return sc
		}, `scenario: events[1]: duplicate jam-switch at slot 3`},
		{"assignment-flip off-cogcast", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "cogcomp"
			sc.Events = []Event{{Kind: EvAssignmentFlip, At: 3}}
			return sc
		}, `scenario: events[0]: assignment-flip supports cogcast, not "cogcomp"`},
		{"assignment-flip on dynamic", func() *Scenario {
			sc := base()
			sc.Topology.Dynamic = true
			sc.Events = []Event{{Kind: EvAssignmentFlip, At: 3}}
			return sc
		}, `scenario: events[0]: assignment-flip needs topology.generator "shared-core" with dynamic false`},
		{"unknown event kind", func() *Scenario {
			sc := base()
			sc.Events = []Event{{Kind: "meteor-strike"}}
			return sc
		}, `scenario: events[0].kind: unknown event kind "meteor-strike"`},
		{"oracle-clean without check", func() *Scenario {
			sc := base()
			sc.Assertions = []Assertion{{Kind: AsOracleClean}}
			return sc
		}, `scenario: assertions[0]: oracle-clean needs engine.check`},
		{"census without recovery", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "cogcomp"
			sc.Assertions = []Assertion{{Kind: AsExactCensus}}
			return sc
		}, `scenario: assertions[0]: "exact-census" needs recovery.enabled`},
		{"all-informed off-dissemination", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "cogcomp"
			sc.Assertions = []Assertion{{Kind: AsAllInformed}}
			return sc
		}, `scenario: assertions[0]: all-informed supports dissemination protocols, not "cogcomp"`},
		{"value-equals off-cogcomp", func() *Scenario {
			sc := base()
			sc.Assertions = []Assertion{{Kind: AsValueEquals, Value: 1}}
			return sc
		}, `scenario: assertions[0]: value-equals supports cogcomp, not "cogcast"`},
		{"value-equals on stats", func() *Scenario {
			sc := base()
			sc.Protocol.Name = "cogcomp"
			sc.Protocol.Aggregate = "stats"
			sc.Assertions = []Assertion{{Kind: AsValueEquals, Value: 1}}
			return sc
		}, `scenario: assertions[0]: value-equals supports int64 aggregates, not "stats"`},
		{"per-run assertion with repeat", func() *Scenario {
			sc := base()
			sc.Engine.Repeat = 4
			sc.Assertions = []Assertion{{Kind: AsAllInformed}}
			return sc
		}, `scenario: assertions[0]: "all-informed" applies to single runs; only completed-by and oracle-clean work with engine.repeat`},
		{"unknown assertion kind", func() *Scenario {
			sc := base()
			sc.Assertions = []Assertion{{Kind: "finishes-eventually"}}
			return sc
		}, `scenario: assertions[0].kind: unknown assertion kind "finishes-eventually"`},
		{"completed-by without slots", func() *Scenario {
			sc := base()
			sc.Assertions = []Assertion{{Kind: AsCompletedBy}}
			return sc
		}, `scenario: assertions[0].slots: 0 out of range (want >= 1)`},
		{"unknown experiment", func() *Scenario {
			return &Scenario{Name: "t", Protocol: Protocol{Name: "experiment"}, Experiment: Experiment{ID: "E99"}}
		}, `scenario: experiment.id: unknown experiment "E99"`},
		{"experiment section off-protocol", func() *Scenario {
			sc := base()
			sc.Experiment = Experiment{ID: "E1"}
			return sc
		}, `scenario: experiment: only valid with protocol.name "experiment", not "cogcast"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc().Validate()
			if err == nil {
				t.Fatal("Validate accepted the scenario")
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts exercises the feature-gated combinations that must
// pass: each base plus the events and assertions its features enable.
func TestValidateAccepts(t *testing.T) {
	cases := map[string]func() *Scenario{
		"base":     base,
		"jammed":   jammedBase,
		"recovery": recoveredBase,
		"jam switch schedule": func() *Scenario {
			sc := jammedBase()
			sc.Events = []Event{
				{Kind: EvJamSwitch, At: 2, Strategy: "block", Budget: 3},
				{Kind: EvJamSwitch, At: 5, Strategy: "none"},
			}
			return sc
		},
		"flip schedule": func() *Scenario {
			sc := base()
			sc.Events = []Event{{Kind: EvAssignmentFlip, At: 2}, {Kind: EvAssignmentFlip, At: 4}}
			return sc
		},
		"fault schedule with assertions": func() *Scenario {
			sc := recoveredBase()
			sc.Events = []Event{
				{Kind: EvRandomOutages, At: 0, Until: 100, Rate: 0.01, Duration: 10},
				{Kind: EvRandomOutages, At: 100, Until: 200, Rate: 0.02, Duration: 10},
				{Kind: EvBlackout, At: 50, Until: 90, Nodes: []int{3, 4}},
			}
			sc.Assertions = []Assertion{
				{Kind: AsExactCensus},
				{Kind: AsMaxRetries, Value: 5},
				{Kind: AsValueEquals, Value: 120},
			}
			return sc
		},
		"experiment": func() *Scenario {
			sc := &Scenario{Name: "t", Protocol: Protocol{Name: "experiment"}, Experiment: Experiment{ID: "E1", Quick: true}}
			sc.Normalize()
			return sc
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			if err := mk().Validate(); err != nil {
				t.Fatalf("Validate rejected a valid scenario: %v", err)
			}
		})
	}
}
