package scenario

// Emit renders the canonical YAML form of a normalized scenario: fixed
// field order, defaults materialized, variant-inapplicable fields and
// empty sections omitted. parse → Normalize → Emit is a fixed point,
// which the golden round-trip tests pin; `cogsim validate -canonical`
// prints it so hand-written files can be normalized mechanically.

import (
	"fmt"
	"strconv"
	"strings"
)

// Emit renders the scenario as canonical YAML. The receiver should be
// normalized; Emit writes fields as they are without filling defaults.
func (sc *Scenario) Emit() []byte {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("name: %s\n", emitString(sc.Name))
	if sc.Description != "" {
		w("description: %s\n", emitString(sc.Description))
	}
	w("seed: %d\n", sc.Seed)

	experiment := sc.Protocol.Name == "experiment"
	if !experiment {
		t := sc.Topology
		w("topology:\n")
		w("  nodes: %d\n", t.Nodes)
		w("  channels_per_node: %d\n", t.ChannelsPerNode)
		if t.Generator != "jammed" {
			w("  min_overlap: %d\n", t.MinOverlap)
			w("  total_channels: %d\n", t.TotalChannels)
		}
		w("  generator: %s\n", emitString(t.Generator))
		w("  labels: %s\n", emitString(t.Labels))
		if t.Generator == "jammed" {
			// A reactive adversary owns the jammer; the oblivious fields
			// stay unset and unrendered.
			if t.JamStrategy != "" {
				w("  jam_strategy: %s\n", emitString(t.JamStrategy))
				w("  jam_budget: %d\n", t.JamBudget)
			}
		} else {
			w("  dynamic: %v\n", t.Dynamic)
		}
	}

	p := sc.Protocol
	w("protocol:\n")
	w("  name: %s\n", emitString(p.Name))
	if !experiment {
		w("  source: %d\n", p.Source)
		w("  payload: %s\n", emitString(p.Payload))
		w("  aggregate: %s\n", emitString(p.Aggregate))
		w("  rounds: %d\n", p.Rounds)
		w("  rumors: %d\n", p.Rumors)
		w("  max_slots: %d\n", p.MaxSlots)
		w("  curve: %v\n", p.Curve)
	}

	e := sc.Engine
	w("engine:\n")
	w("  shards: %d\n", e.Shards)
	w("  sparse: %v\n", e.Sparse)
	w("  parallel: %d\n", e.Parallel)
	w("  repeat: %d\n", e.Repeat)
	w("  check: %v\n", e.Check)
	if e.Trace != "" {
		w("  trace: %s\n", emitString(e.Trace))
	}

	if l := sc.Limits; l != (Limits{}) {
		w("limits:\n")
		if l.Deadline != "" {
			w("  deadline: %s\n", emitString(l.Deadline))
		}
		if l.MaxSlots != 0 {
			w("  max_slots: %d\n", l.MaxSlots)
		}
	}

	r := sc.Recovery
	if r.Enabled {
		w("recovery:\n")
		w("  enabled: true\n")
		if !experiment {
			w("  outage_rate: %s\n", emitFloat(r.OutageRate))
			w("  outage_duration: %d\n", r.OutageDuration)
			w("  max_retries: %d\n", r.MaxRetries)
		}
	}

	if a := sc.Adversary; a.Strategy != "" {
		w("adversary:\n")
		w("  strategy: %s\n", emitString(a.Strategy))
		w("  energy: %d\n", a.Energy)
		w("  per_slot: %d\n", a.PerSlot)
	}

	if experiment {
		x := sc.Experiment
		w("experiment:\n")
		w("  id: %s\n", emitString(x.ID))
		w("  trials: %d\n", x.Trials)
		w("  quick: %v\n", x.Quick)
	}

	if len(sc.Events) > 0 {
		w("events:\n")
		for _, ev := range sc.Events {
			w("  - kind: %s\n", emitString(ev.Kind))
			w("    at: %d\n", ev.At)
			switch ev.Kind {
			case EvRandomOutages, EvCorrelatedOutages:
				w("    until: %d\n", ev.Until)
				w("    rate: %s\n", emitFloat(ev.Rate))
				w("    duration: %d\n", ev.Duration)
				if ev.Kind == EvCorrelatedOutages {
					w("    group: %d\n", ev.Group)
				}
			case EvBlackout:
				w("    until: %d\n", ev.Until)
				w("    nodes: %s\n", emitIntList(ev.Nodes))
			case EvJamSwitch:
				w("    strategy: %s\n", emitString(ev.Strategy))
				w("    budget: %d\n", ev.Budget)
			}
		}
	}

	if len(sc.Assertions) > 0 {
		w("assertions:\n")
		for _, a := range sc.Assertions {
			w("  - kind: %s\n", emitString(a.Kind))
			switch a.Kind {
			case AsCompletedBy:
				w("    slots: %d\n", a.Slots)
			case AsDegradedCensus:
				w("    min_contributors: %d\n", a.MinContributors)
			case AsMaxRetries, AsMaxReelections, AsMaxRestarts, AsValueEquals:
				w("    value: %d\n", a.Value)
			}
		}
	}

	return []byte(b.String())
}

// emitString quotes s only when the plain form would not round-trip.
func emitString(s string) string {
	if plainScalarSafe(s) {
		return s
	}
	return strconv.Quote(s)
}

// plainScalarSafe reports whether s parses back to itself as a plain
// YAML scalar in our subset.
func plainScalarSafe(s string) bool {
	if s == "" || s == "null" || s == "~" || s == "true" || s == "false" {
		return false
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return false
	}
	if strings.HasPrefix(s, " ") || strings.HasSuffix(s, " ") {
		return false
	}
	switch s[0] {
	case '[', '{', '\'', '"', '&', '*', '!', '|', '>', '-', '#':
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == 0x7f {
			return false
		}
		switch c {
		case ':':
			if i+1 == len(s) || s[i+1] == ' ' {
				return false
			}
		case '#':
			if i > 0 && s[i-1] == ' ' {
				return false
			}
		}
	}
	return true
}

// emitFloat renders a float so parseScalar reads it back as a float64
// with the identical value.
func emitFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// emitIntList renders a flow list like [3, 4, 5].
func emitIntList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
