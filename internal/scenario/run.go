package scenario

// Execution. Execute is the single run path behind cmd/cogsim: the flag
// parser builds a Scenario and calls it, file mode loads one and calls
// it, so the two are byte-identical by construction. The output format
// and the guard errors below are therefore cogsim's — changing a string
// here changes the CLI.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	crn "github.com/cogradio/crn"
	"github.com/cogradio/crn/internal/exper"
	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/parallel"
	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/stats"
)

// Outcome is what a run exposes to the assertion checker.
type Outcome struct {
	// Slots is the single run's slot count (repeated runs use RepSlots).
	Slots int
	// AllInformed reports dissemination completeness (cogcast, gossip,
	// rendezvous, rendezvous-agg, hop).
	AllInformed bool
	// Value is the aggregate (cogcomp).
	Value any
	// Degraded, Stalled, Contributors, Retries, Reelections and Restarts
	// report the recovery supervisor (recovered cogcomp runs).
	Degraded, Stalled              bool
	Contributors                   int
	Retries, Reelections, Restarts int
	// Nodes is the network size (census assertions).
	Nodes int
	// RepSlots holds per-repetition slot counts when Engine.Repeat > 1.
	RepSlots []float64
}

// Run executes the scenario and then evaluates its assertions, printing
// one line per assertion. It returns an error if the run itself fails or
// any assertion does.
func (sc *Scenario) Run(out io.Writer) error {
	return sc.RunContext(context.Background(), out)
}

// RunContext is Run with an interrupt context: a canceled ctx stops the
// run at the next slot boundary and the error carries the partial
// progress. Assertions are only evaluated when the run completes.
func (sc *Scenario) RunContext(ctx context.Context, out io.Writer) error {
	oc, err := sc.ExecuteContext(ctx, out)
	if err != nil {
		return err
	}
	return sc.Assert(out, oc)
}

// Execute runs the scenario, writing the protocol report to out, and
// returns the Outcome for assertion checking. The scenario must be
// normalized (Load does this); Execute performs only the guard checks the
// cogsim flag path relies on, not full validation.
func (sc *Scenario) Execute(out io.Writer) (*Outcome, error) {
	return sc.ExecuteContext(context.Background(), out)
}

// ExecuteContext is Execute under an interrupt context. The Limits
// section layers on top of ctx: a limits.deadline wraps it with a
// timeout, limits.max_slots tightens the slot budget. Context checks
// happen at slot boundaries only and consume no randomness, so a run
// that completes is byte-identical to the same run without a context.
func (sc *Scenario) ExecuteContext(ctx context.Context, out io.Writer) (*Outcome, error) {
	ctx, cancel, err := sc.limitContext(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if sc.Protocol.Name == "experiment" {
		return sc.executeExperiment(ctx, out)
	}
	net, err := sc.buildNetwork(sc.Seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "network: n=%d c=%d k=%d C=%d dynamic=%v\n",
		net.Nodes(), net.ChannelsPerNode(), net.MinOverlap(), net.TotalChannels(), net.Dynamic())
	fmt.Fprintf(out, "theory:  COGCAST slot bound = %d\n", net.SlotBound(0))

	budget := sc.Protocol.MaxSlots
	if budget == 0 {
		budget = 64 * net.SlotBound(0)
	}
	budget = sc.capSlots(budget)
	if sc.Engine.Repeat > 1 {
		if sc.Engine.Trace != "" {
			return nil, fmt.Errorf("-trace records a single run; drop -repeat")
		}
		return sc.runRepeated(ctx, out, budget)
	}

	// Trace: open the file up front so a bad path fails before the run,
	// and buffer it — JSONL emits one small write per event.
	var traceFile *os.File
	var traceW *bufio.Writer
	if sc.Engine.Trace != "" {
		if sc.Protocol.Name != "cogcast" && sc.Protocol.Name != "cogcomp" {
			return nil, fmt.Errorf("-trace supports cogcast and cogcomp, not %q", sc.Protocol.Name)
		}
		traceFile, err = os.Create(sc.Engine.Trace)
		if err != nil {
			return nil, err
		}
		traceW = bufio.NewWriter(traceFile)
	}
	closeTrace := func() error {
		if traceFile == nil {
			return nil
		}
		ferr := traceW.Flush()
		if cerr := traceFile.Close(); ferr == nil {
			ferr = cerr
		}
		traceFile = nil
		return ferr
	}
	defer closeTrace()

	if sc.Engine.Check && sc.Protocol.Name != "cogcast" && sc.Protocol.Name != "cogcomp" && sc.Protocol.Name != "session" {
		return nil, fmt.Errorf("-check supports cogcast, cogcomp and session, not %q", sc.Protocol.Name)
	}
	if (sc.Recovery.Enabled || sc.Recovery.OutageRate > 0) && sc.Protocol.Name != "cogcomp" {
		return nil, fmt.Errorf("-recover/-outage support cogcomp, not %q", sc.Protocol.Name)
	}
	if sc.Recovery.OutageRate > 0 && !sc.Recovery.Enabled {
		return nil, fmt.Errorf("-outage needs -recover (the classic runner has no fault injection)")
	}
	if sc.Adversary.Strategy != "" {
		switch sc.Protocol.Name {
		case "cogcast", "cogcomp":
		default:
			return nil, fmt.Errorf("-adversary supports cogcast and cogcomp, not %q", sc.Protocol.Name)
		}
		if sc.Protocol.Name == "cogcomp" && !sc.Recovery.Enabled {
			return nil, fmt.Errorf("-adversary on cogcomp needs -recover (the classic runner has no fault injection)")
		}
	}

	oc := &Outcome{Nodes: net.Nodes()}
	switch sc.Protocol.Name {
	case "cogcast":
		opts := crn.BroadcastOptions{
			Source: crn.NodeID(sc.Protocol.Source), Payload: sc.Protocol.Payload, Seed: sc.Seed,
			RunToCompletion: true, MaxSlots: budget, Trajectory: sc.Protocol.Curve,
			Check: sc.Engine.Check, Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
			Context: ctx,
		}
		if traceW != nil {
			opts.Trace = traceW
			opts.CollectMetrics = true
		}
		res, err := net.Broadcast(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "cogcast: %d slots, all informed: %v, tree height %d\n",
			res.Slots, res.AllInformed, res.TreeHeight)
		if res.Adversary != nil {
			fmt.Fprintf(out, "adversary: %s\n", adversaryLine(res.Adversary))
		}
		if sc.Protocol.Curve {
			fmt.Fprintf(out, "epidemic: %s\n", sparkline(res.Trajectory, net.Nodes()))
		}
		if traceW != nil {
			if err := closeTrace(); err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "medium: %s\n", mediumLine(res.Metrics))
			fmt.Fprintf(out, "trace: wrote %s\n", sc.Engine.Trace)
		}
		oc.Slots, oc.AllInformed = res.Slots, res.AllInformed
	case "cogcomp":
		inputs := make([]int64, net.Nodes())
		for i := range inputs {
			inputs[i] = int64(i)
		}
		opts := crn.AggregateOptions{
			Source: crn.NodeID(sc.Protocol.Source), Func: sc.Protocol.Aggregate, Seed: sc.Seed,
			MaxSlots: sc.capSlots(sc.Protocol.MaxSlots),
			Check:    sc.Engine.Check, Recover: sc.Recovery.Enabled, OutageRate: sc.Recovery.OutageRate,
			Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
			Context: ctx,
		}
		if sc.Recovery.Enabled {
			opts.OutageDuration = sc.Recovery.OutageDuration
			opts.MaxRetries = sc.Recovery.MaxRetries
			opts.Faults = sc.faultSpecs()
		}
		if sc.Adversary.Strategy != "" {
			opts.Adversary = sc.Adversary.Strategy
			opts.AdversaryEnergy = sc.Adversary.Energy
			opts.AdversaryPerSlot = sc.Adversary.PerSlot
		}
		if traceW != nil {
			opts.Trace = traceW
		}
		res, err := net.Aggregate(inputs, opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "cogcomp: %d slots (phases %d/%d/%d/%d), %s = %v, max message %d words\n",
			res.Slots, res.Phase1Slots, res.Phase2Slots, res.Phase3Slots, res.Phase4Slots,
			sc.Protocol.Aggregate, res.Value, res.MaxMessageSize)
		if sc.Recovery.Enabled {
			fmt.Fprintf(out, "recovery: contributors %d/%d, retries %d, re-elections %d, restarts %d, degraded %v, stalled %v\n",
				len(res.Contributors), net.Nodes(), res.Retries, res.Reelections, res.Restarts,
				res.Degraded, res.Stalled)
		}
		if res.Adversary != nil {
			fmt.Fprintf(out, "adversary: %s\n", adversaryLine(res.Adversary))
		}
		if traceW != nil {
			if err := closeTrace(); err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "trace: wrote %s\n", sc.Engine.Trace)
		}
		oc.Slots, oc.Value = res.Slots, res.Value
		oc.Degraded, oc.Stalled = res.Degraded, res.Stalled
		oc.Contributors = len(res.Contributors)
		oc.Retries, oc.Reelections, oc.Restarts = res.Retries, res.Reelections, res.Restarts
	case "session":
		roundInputs := make([][]int64, sc.Protocol.Rounds)
		for r := range roundInputs {
			roundInputs[r] = make([]int64, net.Nodes())
			for i := range roundInputs[r] {
				roundInputs[r][i] = int64(r*1000 + i)
			}
		}
		res, err := net.AggregateRounds(roundInputs, crn.AggregateOptions{
			Source: crn.NodeID(sc.Protocol.Source), Func: sc.Protocol.Aggregate, Seed: sc.Seed,
			Check: sc.Engine.Check, Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
			Context: ctx,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "session: %d rounds in %d slots (setup %d + %d/round window)\n",
			sc.Protocol.Rounds, res.Slots, res.SetupSlots, res.RoundSlots)
		for r, v := range res.Values {
			fmt.Fprintf(out, "  round %d: %s = %v\n", r+1, sc.Protocol.Aggregate, v)
		}
		oc.Slots = res.Slots
	case "gossip":
		sources := make([]crn.NodeID, sc.Protocol.Rumors)
		for i := range sources {
			sources[i] = crn.NodeID((i * net.Nodes()) / sc.Protocol.Rumors)
		}
		res, err := net.Gossip(sources, sc.Seed, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "gossip: %d rumors to all %d nodes in %d slots, complete: %v\n",
			sc.Protocol.Rumors, net.Nodes(), res.Slots, res.Complete)
		oc.Slots, oc.AllInformed = res.Slots, res.Complete
	case "rendezvous":
		slots, done, err := net.RendezvousBroadcast(crn.NodeID(sc.Protocol.Source), sc.Protocol.Payload, sc.Seed, 128*budget)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "rendezvous broadcast: %d slots, complete: %v\n", slots, done)
		oc.Slots, oc.AllInformed = slots, done
	case "rendezvous-agg":
		inputs := make([]int64, net.Nodes())
		slots, done, err := net.RendezvousAggregate(crn.NodeID(sc.Protocol.Source), inputs, sc.Seed, 1024*budget)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "rendezvous aggregation: %d slots, complete: %v\n", slots, done)
		oc.Slots, oc.AllInformed = slots, done
	case "hop":
		slots, done, err := net.HoppingTogether(crn.NodeID(sc.Protocol.Source), sc.Protocol.Payload, sc.Seed, 64*net.TotalChannels())
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "hopping-together: %d slots, complete: %v (one spectrum pass = %d)\n",
			slots, done, net.TotalChannels())
		oc.Slots, oc.AllInformed = slots, done
	default:
		return nil, fmt.Errorf("unknown protocol %q", sc.Protocol.Name)
	}
	return oc, nil
}

// runRepeated executes Engine.Repeat independent seeded repetitions of
// cogcast or cogcomp across a bounded worker pool, prints one line per
// repetition (index, derived seed, slots) and a slot-count summary. Every
// repetition rebuilds its network from a seed derived from the repetition
// index, so the output is byte-identical at any Engine.Parallel value
// (dynamic and jammed assignments are stateful and must not be shared).
func (sc *Scenario) runRepeated(ctx context.Context, out io.Writer, budget int) (*Outcome, error) {
	var fn func(trialSeed int64, net *crn.Network) (float64, error)
	switch sc.Protocol.Name {
	case "cogcast":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			res, err := net.Broadcast(crn.BroadcastOptions{
				Source: crn.NodeID(sc.Protocol.Source), Payload: sc.Protocol.Payload, Seed: trialSeed,
				RunToCompletion: true, MaxSlots: budget, Check: sc.Engine.Check,
				Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
				Context: ctx,
			})
			if err != nil {
				return 0, err
			}
			if !res.AllInformed {
				return 0, fmt.Errorf("cogcast incomplete within %d slots", budget)
			}
			return float64(res.Slots), nil
		}
	case "cogcomp":
		fn = func(trialSeed int64, net *crn.Network) (float64, error) {
			inputs := make([]int64, net.Nodes())
			for i := range inputs {
				inputs[i] = int64(i)
			}
			opts := crn.AggregateOptions{
				Source: crn.NodeID(sc.Protocol.Source), Func: sc.Protocol.Aggregate, Seed: trialSeed,
				MaxSlots: sc.capSlots(sc.Protocol.MaxSlots),
				Check:    sc.Engine.Check, Recover: sc.Recovery.Enabled, OutageRate: sc.Recovery.OutageRate,
				Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
				Context: ctx,
			}
			if sc.Recovery.Enabled {
				opts.OutageDuration = sc.Recovery.OutageDuration
				opts.MaxRetries = sc.Recovery.MaxRetries
			}
			if sc.Adversary.Strategy != "" {
				opts.Adversary = sc.Adversary.Strategy
				opts.AdversaryEnergy = sc.Adversary.Energy
				opts.AdversaryPerSlot = sc.Adversary.PerSlot
			}
			res, err := net.Aggregate(inputs, opts)
			if err != nil {
				return 0, err
			}
			return float64(res.Slots), nil
		}
	default:
		return nil, fmt.Errorf("-repeat supports cogcast and cogcomp, not %q", sc.Protocol.Name)
	}
	slots, err := parallel.Map(ctx, sc.Engine.Repeat, sc.Engine.Parallel, func(i int) (float64, error) {
		trialSeed := rng.Derive(sc.Seed, int64(i))
		net, err := sc.buildNetwork(trialSeed)
		if err != nil {
			return 0, fmt.Errorf("rep %d (seed %d): %w", i, trialSeed, err)
		}
		v, err := fn(trialSeed, net)
		if err != nil {
			return 0, fmt.Errorf("rep %d (seed %d): %w", i, trialSeed, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range slots {
		fmt.Fprintf(out, "rep %d seed=%d: %.0f slots\n", i, rng.Derive(sc.Seed, int64(i)), v)
	}
	s, err := stats.Summarize(slots)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "%s x%d: slots min %.0f / median %.1f / mean %.1f / p99 %.1f / max %.0f\n",
		sc.Protocol.Name, sc.Engine.Repeat, s.Min, s.Median, s.Mean, s.P99, s.Max)
	return &Outcome{Nodes: sc.Topology.Nodes, RepSlots: slots}, nil
}

// executeExperiment runs an experiment-suite scenario: the named
// experiment's tables, rendered exactly as cogbench's text format (minus
// the wall-clock line, which is not reproducible output).
func (sc *Scenario) executeExperiment(ctx context.Context, out io.Writer) (*Outcome, error) {
	e, err := exper.ByID(sc.Experiment.ID)
	if err != nil {
		return nil, err
	}
	cfg := exper.Config{
		Seed: sc.Seed, Trials: sc.Experiment.Trials, Quick: sc.Experiment.Quick,
		Parallel: sc.Engine.Parallel, Check: sc.Engine.Check,
		Recover: sc.Recovery.Enabled, Shards: sc.Engine.Shards, Sparse: sc.Engine.Sparse,
		Context: ctx,
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, t := range tables {
		if err := t.Render(out); err != nil {
			return nil, err
		}
	}
	return &Outcome{}, nil
}

// limitContext layers limits.deadline onto the caller's context. The
// returned cancel must be called (it releases the timer); with no
// deadline it is a no-op and the context passes through untouched.
func (sc *Scenario) limitContext(ctx context.Context) (context.Context, context.CancelFunc, error) {
	if sc.Limits.Deadline == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(sc.Limits.Deadline)
	if err != nil || d <= 0 {
		return nil, nil, fmt.Errorf("limits.deadline: bad duration %q (want e.g. \"30s\" or \"2m\")", sc.Limits.Deadline)
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// capSlots combines a slot budget with limits.max_slots: the smallest
// nonzero value wins (0 keeps the library default).
func (sc *Scenario) capSlots(budget int) int {
	if m := sc.Limits.MaxSlots; m > 0 && (budget == 0 || m < budget) {
		return m
	}
	return budget
}

// buildNetwork realizes the topology (plus any jam-switch and
// assignment-flip events) for the given seed. Repeated runs call it once
// per repetition with the derived trial seed.
func (sc *Scenario) buildNetwork(seed int64) (*crn.Network, error) {
	t := sc.Topology
	if t.Generator == "jammed" {
		if sc.Adversary.Strategy != "" {
			return crn.NewReactiveJammedNetwork(t.Nodes, t.ChannelsPerNode, sc.Adversary.Strategy,
				crn.AdversaryBudget{PerSlot: sc.Adversary.PerSlot, Total: sc.Adversary.Energy}, seed)
		}
		phases := sc.jamPhases()
		if len(phases) == 1 {
			return crn.NewJammedNetwork(t.Nodes, t.ChannelsPerNode, t.JamBudget, t.JamStrategy, seed)
		}
		return crn.NewJammedNetworkPhases(t.Nodes, t.ChannelsPerNode, phases, seed)
	}
	spec := crn.Spec{
		Nodes:           t.Nodes,
		ChannelsPerNode: t.ChannelsPerNode,
		MinOverlap:      t.MinOverlap,
		TotalChannels:   t.TotalChannels,
		Dynamic:         t.Dynamic,
		Seed:            seed,
		FlipSlots:       sc.flipSlots(),
	}
	if spec.TotalChannels == 0 {
		spec.TotalChannels = 3 * t.ChannelsPerNode
	}
	switch t.Generator {
	case "full":
		spec.Topology = crn.FullOverlap
	case "partitioned":
		spec.Topology = crn.Partitioned
	case "shared-core":
		spec.Topology = crn.SharedCore
	case "random-pool":
		spec.Topology = crn.RandomPool
	case "pairwise":
		spec.Topology = crn.PairwiseDedicated
	default:
		return nil, fmt.Errorf("unknown topology %q", t.Generator)
	}
	switch t.Labels {
	case "local":
		spec.Labels = crn.LocalLabels
	case "global":
		spec.Labels = crn.GlobalLabels
	default:
		return nil, fmt.Errorf("unknown label model %q", t.Labels)
	}
	return crn.NewNetwork(spec)
}

// jamPhases assembles the jammer schedule: the topology's strategy at
// slot 0 plus one phase per jam-switch event, in slot order.
func (sc *Scenario) jamPhases() []crn.JamPhase {
	phases := []crn.JamPhase{{FromSlot: 0, Strategy: sc.Topology.JamStrategy, Budget: sc.Topology.JamBudget}}
	for _, ev := range sc.Events {
		if ev.Kind == EvJamSwitch {
			phases = append(phases, crn.JamPhase{FromSlot: ev.At, Strategy: ev.Strategy, Budget: ev.Budget})
		}
	}
	for i := 1; i < len(phases); i++ {
		for j := i; j > 1 && phases[j].FromSlot < phases[j-1].FromSlot; j-- {
			phases[j], phases[j-1] = phases[j-1], phases[j]
		}
	}
	return phases
}

// faultSpecs maps the fault events onto the public fault-injection API.
func (sc *Scenario) faultSpecs() []crn.FaultSpec {
	var specs []crn.FaultSpec
	for _, ev := range sc.Events {
		var kind string
		switch ev.Kind {
		case EvRandomOutages:
			kind = "random"
		case EvCorrelatedOutages:
			kind = "correlated"
		case EvBlackout:
			kind = "blackout"
		default:
			continue
		}
		spec := crn.FaultSpec{
			Kind: kind, From: ev.At, Until: ev.Until,
			Rate: ev.Rate, Duration: ev.Duration, Group: ev.Group,
		}
		for _, id := range ev.Nodes {
			spec.Nodes = append(spec.Nodes, crn.NodeID(id))
		}
		specs = append(specs, spec)
	}
	return specs
}

// adversaryLine renders a run's adversary budget ledger.
func adversaryLine(a *crn.AdversaryReport) string {
	exhausted := "no"
	if a.ExhaustedAt >= 0 {
		exhausted = fmt.Sprintf("at slot %d", a.ExhaustedAt)
	}
	return fmt.Sprintf("%s spent %d/%d (jam %d, crash %d, per-slot cap %d), exhausted %s",
		a.Strategy, a.Spent, a.Total, a.JamSpent, a.CrashSpent, a.PerSlot, exhausted)
}

// mediumLine renders public MediumMetrics through the internal
// metrics.Metrics formatter, so the live run's line and the one
// -trace-summary replays from a trace are comparable byte for byte.
func mediumLine(m *crn.MediumMetrics) string {
	return metrics.Metrics{
		Slots:               m.Slots,
		BusyChannelsPerSlot: m.BusyChannelsPerSlot,
		CollisionRate:       m.CollisionRate,
		DeliveryRate:        m.DeliveryRate,
		BroadcastsPerSlot:   m.BroadcastsPerSlot,
	}.String()
}

// sparkline renders an informed-count trajectory as a compact bar curve.
func sparkline(traj []int, max int) string {
	if len(traj) == 0 || max == 0 {
		return ""
	}
	const bars = "▁▂▃▄▅▆▇█"
	// Downsample long runs to at most 60 columns.
	step := (len(traj) + 59) / 60
	var b []rune
	for i := 0; i < len(traj); i += step {
		level := traj[i] * (len([]rune(bars)) - 1) / max
		b = append(b, []rune(bars)[level])
	}
	return string(b)
}
