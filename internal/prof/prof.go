// Package prof backs the CLIs' -cpuprofile and -memprofile flags with
// runtime/pprof. It exists so cogsim and cogbench share one correct
// start/stop sequence (stop the CPU profile before writing the heap
// profile, garbage-collect first so the heap profile reflects live
// objects) instead of each carrying its own copy.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile
// into memPath; either path may be empty to skip that profile. The
// returned stop function — safe to call exactly once, typically
// deferred — ends the CPU profile and writes the heap profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}
