package backoff

import (
	"testing"
)

func TestResolveSingleContender(t *testing.T) {
	res, err := Resolve(1, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || res.Winner != 0 {
		t.Fatalf("single contender result %+v", res)
	}
	if res.MicroSlots != 1 {
		t.Errorf("single contender used %d micro-slots, want 1 (p=1 in slot one)", res.MicroSlots)
	}
}

func TestResolveValidation(t *testing.T) {
	if _, err := Resolve(0, 10, 1); err == nil {
		t.Error("zero contenders accepted")
	}
	if _, err := Resolve(20, 10, 1); err == nil {
		t.Error("m > nUpper accepted")
	}
}

func TestResolveAlwaysSucceedsWithinBound(t *testing.T) {
	const nUpper = 1024
	bound := TheoreticalBound(nUpper)
	for _, m := range []int{1, 2, 3, 7, 32, 200, 1024} {
		failures, over := 0, 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			res, err := Resolve(m, nUpper, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Succeeded {
				failures++
				continue
			}
			if res.Winner < 0 || res.Winner >= m {
				t.Fatalf("m=%d: invalid winner %d", m, res.Winner)
			}
			if res.MicroSlots > bound {
				over++
			}
		}
		if failures > 0 {
			t.Errorf("m=%d: %d/%d resolutions failed outright", m, failures, trials)
		}
		// "With high probability" — allow a tiny tail beyond the bound.
		if over > trials/50 {
			t.Errorf("m=%d: %d/%d resolutions exceeded the O(log² n) bound %d", m, over, trials, bound)
		}
	}
}

func TestMicroSlotsGrowPolylog(t *testing.T) {
	// Mean micro-slots for m = nUpper contenders should grow like log²,
	// i.e. far slower than linearly: quadrupling n must not double cost.
	mean := func(n int) float64 {
		total := 0
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			res, err := Resolve(n, n, int64(trial)*7+1)
			if err != nil {
				t.Fatal(err)
			}
			total += res.MicroSlots
		}
		return float64(total) / trials
	}
	m256, m4096 := mean(256), mean(4096)
	if m4096 > 3*m256 {
		t.Errorf("mean micro-slots jumped from %.1f (n=256) to %.1f (n=4096); not polylog", m256, m4096)
	}
}

func TestWinnerSpreadsAcrossContenders(t *testing.T) {
	// The abstraction assumes the delivered message is uniform among
	// contenders; decay is approximately symmetric, so over many trials
	// every contender should win a nontrivial share.
	const m, trials = 4, 2000
	wins := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		res, err := Resolve(m, 16, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			wins[res.Winner]++
		}
	}
	for i, w := range wins {
		if w < trials/m/2 {
			t.Errorf("contender %d won only %d/%d times; decay should be near-uniform", i, w, trials)
		}
	}
}

func TestEpochLength(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},
		{2, 2},
		{1024, 11},
		{1000, 11},
	}
	for _, c := range cases {
		if got := EpochLength(c.n); got != c.want {
			t.Errorf("EpochLength(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTheoreticalBoundMonotone(t *testing.T) {
	prev := 0
	for _, n := range []int{2, 16, 256, 4096} {
		b := TheoreticalBound(n)
		if b <= prev {
			t.Errorf("TheoreticalBound(%d) = %d not increasing", n, b)
		}
		prev = b
	}
}

func TestResolveDeterministicBySeed(t *testing.T) {
	a, err := Resolve(17, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(17, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}
