package backoff_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/backoff"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

func TestCostObserverIdleSlot(t *testing.T) {
	o := backoff.NewCostObserver(64, 1)
	o.OnSlot(0, nil)
	c := o.Snapshot()
	if c.Slots != 1 || c.MeanWindow != 1 || c.RequiredWindow != 1 {
		t.Errorf("idle slot cost = %+v, want 1 micro-slot", c)
	}
}

func TestCostObserverContendedSlot(t *testing.T) {
	o := backoff.NewCostObserver(64, 1)
	o.OnSlot(0, []sim.ChannelOutcome{
		{Channel: 0, Broadcasters: []sim.NodeID{1, 2, 3, 4}},
		{Channel: 1, Broadcasters: []sim.NodeID{5}},
	})
	c := o.Snapshot()
	if c.Slots != 1 {
		t.Fatalf("slots = %d", c.Slots)
	}
	if c.RequiredWindow < 2 {
		t.Errorf("4-way contention should need more than one micro-slot, got %d", c.RequiredWindow)
	}
	if c.Failures != 0 {
		t.Errorf("failures = %d", c.Failures)
	}
	if c.RequiredWindow > c.Budget {
		t.Errorf("required window %d exceeds budget %d", c.RequiredWindow, c.Budget)
	}
}

func TestCostObserverOnCogcastRun(t *testing.T) {
	const n, c, k = 64, 8, 2
	asn, err := assign.Partitioned(n, c, k, assign.LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := backoff.NewCostObserver(n, 3)
	res, err := cogcast.Run(asn, 0, "m", 3, cogcast.RunConfig{
		UntilAllInformed: true, MaxSlots: 100000, Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("broadcast incomplete")
	}
	cost := o.Snapshot()
	if cost.Slots != res.Slots {
		t.Errorf("observed %d slots, run took %d", cost.Slots, res.Slots)
	}
	if cost.RequiredWindow > cost.Budget {
		t.Errorf("required window %d above the theoretical budget %d", cost.RequiredWindow, cost.Budget)
	}
	if cost.MeanWindow < 1 {
		t.Errorf("mean window %v below 1", cost.MeanWindow)
	}
	if cost.Failures != 0 {
		t.Errorf("decay failures: %d", cost.Failures)
	}
	// Quantiles are monotone and bounded by the max.
	q50, q99 := o.WindowQuantile(0.5), o.WindowQuantile(0.99)
	if q50 > q99 || q99 > cost.RequiredWindow {
		t.Errorf("quantiles out of order: p50=%d p99=%d max=%d", q50, q99, cost.RequiredWindow)
	}
}

func TestWindowQuantileEmpty(t *testing.T) {
	o := backoff.NewCostObserver(16, 1)
	if o.WindowQuantile(0.5) != 0 {
		t.Error("quantile of empty observer should be 0")
	}
}
