package backoff

// RetryGap returns the exponential-backoff gap for the attempt-th retry:
// initial << attempt, clamped to max and safe against shift overflow (any
// overflowed or non-positive product collapses to max, as does any attempt
// at or beyond the word size). The unit is the caller's: the recovery
// supervisor schedules gaps in slots, the trial pool in scheduler yields.
// The schedule is a pure function of (initial, attempt, max), so retry
// timing is reproducible run to run.
func RetryGap(initial, attempt, max int) int {
	if attempt < 0 {
		attempt = 0
	}
	if attempt >= 63 {
		return max
	}
	g := initial << uint(attempt)
	if g > max || g <= 0 {
		g = max
	}
	return g
}
