package backoff

import "testing"

func TestRetryGapZeroAttempt(t *testing.T) {
	// Attempt zero is the un-shifted base gap.
	if got := RetryGap(8, 0, 4096); got != 8 {
		t.Errorf("RetryGap(8, 0, 4096) = %d, want 8", got)
	}
	if got := RetryGap(1, 0, 4096); got != 1 {
		t.Errorf("RetryGap(1, 0, 4096) = %d, want 1", got)
	}
}

func TestRetryGapDoubling(t *testing.T) {
	for attempt, want := range []int{8, 16, 32, 64, 128} {
		if got := RetryGap(8, attempt, 4096); got != want {
			t.Errorf("RetryGap(8, %d, 4096) = %d, want %d", attempt, got, want)
		}
	}
}

func TestRetryGapClampsToMax(t *testing.T) {
	// 8 << 10 = 8192 exceeds the 4096 cap.
	if got := RetryGap(8, 10, 4096); got != 4096 {
		t.Errorf("RetryGap(8, 10, 4096) = %d, want the 4096 cap", got)
	}
}

func TestRetryGapOverflowSafe(t *testing.T) {
	// Large exponents overflow the shift; the gap must collapse to the cap,
	// never go negative or wrap to a tiny value.
	for _, attempt := range []int{61, 62, 63, 64, 100, 1 << 20} {
		if got := RetryGap(8, attempt, 4096); got != 4096 {
			t.Errorf("RetryGap(8, %d, 4096) = %d, want the 4096 cap", attempt, got)
		}
	}
	// Negative attempts clamp to zero rather than panicking on a negative
	// shift count.
	if got := RetryGap(8, -3, 4096); got != 8 {
		t.Errorf("RetryGap(8, -3, 4096) = %d, want 8", got)
	}
	// A non-positive base never yields a usable gap; it collapses to max.
	if got := RetryGap(0, 5, 4096); got != 4096 {
		t.Errorf("RetryGap(0, 5, 4096) = %d, want the 4096 cap", got)
	}
	if got := RetryGap(-8, 2, 4096); got != 4096 {
		t.Errorf("RetryGap(-8, 2, 4096) = %d, want the 4096 cap", got)
	}
}

func TestRetryGapDeterministicSchedule(t *testing.T) {
	// The full retry schedule is a pure function of its inputs: two
	// walks over the same parameters are element-for-element identical.
	var a, b []int
	for attempt := 0; attempt < 16; attempt++ {
		a = append(a, RetryGap(8, attempt, 4096))
	}
	for attempt := 0; attempt < 16; attempt++ {
		b = append(b, RetryGap(8, attempt, 4096))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at attempt %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResolveMaxEpochExpiry(t *testing.T) {
	// The decay protocol gives up after MaxEpochs epochs. Failures are
	// astronomically unlikely through the public API, so pin the expiry
	// accounting directly: a failed result must report exactly
	// MaxEpochs * EpochLength(nUpper) micro-slots and Winner -1. We
	// detect a failure if one ever occurs across many seeds; otherwise we
	// at least pin the budget arithmetic the expiry path would use.
	const nUpper = 4
	wantSlots := MaxEpochs * EpochLength(nUpper)
	if wantSlots != 64*3 {
		t.Fatalf("expiry budget for n=%d is %d, want %d", nUpper, wantSlots, 64*3)
	}
	for seed := int64(0); seed < 500; seed++ {
		res, err := Resolve(4, nUpper, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Succeeded {
			if res.MicroSlots != wantSlots || res.Winner != -1 {
				t.Fatalf("failed resolution reported %+v, want MicroSlots=%d Winner=-1", res, wantSlots)
			}
		} else if res.MicroSlots > wantSlots {
			t.Fatalf("succeeded resolution exceeded the expiry budget: %+v", res)
		}
	}
}

func TestResolveDeterminismPin(t *testing.T) {
	// Pin exact resolutions for fixed seeds so the retry/backoff schedule
	// is reproducible across refactors, not merely self-consistent.
	cases := []struct {
		m, nUpper int
		seed      int64
	}{
		{1, 1024, 1},
		{5, 100, 42},
		{17, 64, 99},
		{32, 32, 7},
	}
	for _, c := range cases {
		first, err := Resolve(c.m, c.nUpper, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := Resolve(c.m, c.nUpper, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("Resolve(%d, %d, %d) diverged: %+v vs %+v", c.m, c.nUpper, c.seed, first, again)
			}
		}
	}
}
