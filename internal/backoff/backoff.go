// Package backoff validates the collision abstraction of Section 2
// (footnote 4): the simulator assumes that when several nodes broadcast on
// one channel, exactly one uniformly chosen message is delivered and every
// broadcaster learns its outcome. The paper notes this behavior is
// implementable by standard backoff "with poly-logarithmic cost": nodes
// broadcast with exponentially decreasing probabilities; with high
// probability some micro-slot has exactly one transmitter within O(log² n)
// micro-slots, everyone else hears that message and aborts, and the lone
// transmitter (having heard nothing) knows it succeeded.
//
// Resolve simulates that decay protocol directly at the micro-slot level,
// so experiment E12 can measure the cost of one abstracted collision
// resolution and confirm the O(log² n) shape.
package backoff

import (
	"fmt"
	"math"

	"github.com/cogradio/crn/internal/rng"
)

// Result reports one contention resolution.
type Result struct {
	// Winner is the index (0..m-1) of the contender whose message was
	// delivered, or -1 on failure.
	Winner int
	// MicroSlots is the number of micro-slots consumed.
	MicroSlots int
	// Succeeded reports whether a message was delivered within the budget.
	Succeeded bool
}

// MaxEpochs bounds the number of decay epochs before Resolve gives up; the
// per-epoch success probability is at least a constant, so failures across
// dozens of epochs are astronomically unlikely for any m <= nUpper.
const MaxEpochs = 64

// Resolve runs the decay protocol among m contenders, where nUpper is the
// commonly known upper bound on network size that sets the epoch length
// L = ceil(lg nUpper)+1: in micro-slot j of an epoch, each surviving
// contender transmits with probability 2^-j. A micro-slot with exactly one
// transmitter delivers that contender's message and ends the protocol.
func Resolve(m, nUpper int, seed int64) (Result, error) {
	if m < 1 {
		return Result{}, fmt.Errorf("backoff: m=%d contenders, need at least 1", m)
	}
	if nUpper < m {
		return Result{}, fmt.Errorf("backoff: upper bound n=%d below contender count m=%d", nUpper, m)
	}
	r := rng.New(seed, int64(m), 0xb0ff)
	epochLen := EpochLength(nUpper)
	slots := 0
	for epoch := 0; epoch < MaxEpochs; epoch++ {
		p := 1.0
		for j := 0; j < epochLen; j++ {
			slots++
			sender := -1
			count := 0
			for i := 0; i < m; i++ {
				if r.Float64() < p {
					count++
					sender = i
				}
			}
			if count == 1 {
				return Result{Winner: sender, MicroSlots: slots, Succeeded: true}, nil
			}
			p /= 2
		}
	}
	return Result{Winner: -1, MicroSlots: slots, Succeeded: false}, nil
}

// EpochLength returns the decay epoch length ceil(lg n)+1 for the given
// network-size upper bound.
func EpochLength(nUpper int) int {
	if nUpper < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(nUpper)))) + 1
}

// TheoreticalBound returns the O(log² n) micro-slot budget within which the
// decay protocol succeeds w.h.p. — EpochLength(n) micro-slots per epoch
// times O(log n) epochs (each epoch succeeds with at least constant
// probability). The constant 4 absorbs that per-epoch probability.
func TheoreticalBound(nUpper int) int {
	l := EpochLength(nUpper)
	return 4 * l * l
}
