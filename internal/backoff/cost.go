package backoff

import (
	"math"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// CostObserver measures what the collision abstraction would cost at the
// radio level. A real implementation replaces every abstract slot with a
// fixed micro-slot window W in which each contended channel runs the decay
// protocol; W must be fixed network-wide (channels cannot end their windows
// early without desynchronizing the slot clock), so the implementable W is
// the worst per-slot, per-channel resolution cost. The observer replays a
// decay resolution for every contended channel of every slot and tracks the
// distribution of the per-slot maximum, giving implementers the data to
// pick W far below the 4(lg n + 1)² worst-case budget.
type CostObserver struct {
	nUpper int
	seed   int64

	slots     int
	totalMax  int64
	worst     int
	histogram map[int]int
	failures  int
}

var _ sim.Observer = (*CostObserver)(nil)

// NewCostObserver builds an observer for a network whose size upper bound
// (the decay epoch parameter) is nUpper.
func NewCostObserver(nUpper int, seed int64) *CostObserver {
	return &CostObserver{nUpper: nUpper, seed: seed, histogram: make(map[int]int)}
}

// OnSlot implements sim.Observer.
func (o *CostObserver) OnSlot(slot int, outcomes []sim.ChannelOutcome) {
	o.slots++
	worst := 1 // an uncontended slot still costs one micro-slot
	for _, oc := range outcomes {
		m := len(oc.Broadcasters)
		if m == 0 {
			continue
		}
		res, err := Resolve(m, o.nUpper, rng.Derive(o.seed, int64(slot), int64(oc.Channel), 0xc057))
		if err != nil || !res.Succeeded {
			o.failures++
			continue
		}
		if res.MicroSlots > worst {
			worst = res.MicroSlots
		}
	}
	o.totalMax += int64(worst)
	o.histogram[worst]++
	if worst > o.worst {
		o.worst = worst
	}
}

// Cost summarizes the observed micro-slot requirements.
type Cost struct {
	// Slots is the number of abstract slots observed.
	Slots int
	// MeanWindow is the mean per-slot micro-slot requirement (the cost if
	// windows could adapt per slot, a lower bound for any implementation).
	MeanWindow float64
	// RequiredWindow is the largest per-slot requirement seen — the fixed
	// window W that would have sufficed for this entire execution.
	RequiredWindow int
	// Budget is the theoretical worst-case window 4(lg n + 1)².
	Budget int
	// Failures counts resolutions that exhausted the decay epochs (none
	// are expected).
	Failures int
}

// Snapshot returns the cost summary so far.
func (o *CostObserver) Snapshot() Cost {
	c := Cost{
		Slots:          o.slots,
		RequiredWindow: o.worst,
		Budget:         TheoreticalBound(o.nUpper),
		Failures:       o.failures,
	}
	if o.slots > 0 {
		c.MeanWindow = float64(o.totalMax) / float64(o.slots)
	}
	return c
}

// WindowQuantile returns the q-quantile of the per-slot required window.
func (o *CostObserver) WindowQuantile(q float64) int {
	if o.slots == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(o.slots)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for w := 1; w <= o.worst; w++ {
		cum += o.histogram[w]
		if cum >= target {
			return w
		}
	}
	return o.worst
}
