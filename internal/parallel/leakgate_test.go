package parallel_test

import (
	"os"
	"testing"

	"github.com/cogradio/crn/internal/chaos"
)

// TestMain gates the package on goroutine hygiene: the pool's contract is
// that no worker is ever abandoned — not on error, not on panic, not on
// cancellation — so a test run that leaves goroutines behind fails even
// when every individual assertion passed.
func TestMain(m *testing.M) {
	os.Exit(chaos.VerifyNoLeaks(m))
}
