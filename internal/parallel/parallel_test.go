package parallel_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cogradio/crn/internal/parallel"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 64} {
		got, err := parallel.Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNilContext(t *testing.T) {
	got, err := parallel.Map(nil, 10, 4, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("Map(nil ctx) = %v, %v", got, err)
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := parallel.Map(context.Background(), 0, 4, func(int) (int, error) { return 0, errors.New("never called") })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := parallel.Map(context.Background(), 50, workers, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("%w at %d", boom, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 3") {
			t.Errorf("workers=%d: err = %v, want the lowest failing trial (3)", workers, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := parallel.Map(context.Background(), 64, workers, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Busy-wait a moment so goroutines overlap.
		for j := 0; j < 10000; j++ {
			_ = j
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent invocations, want <= %d", p, workers)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if parallel.DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", parallel.DefaultWorkers())
	}
}

// TestMapPanicAtTrialK is the regression test for the old behavior where a
// panicking trial closure crashed the whole process: the panic must come
// back as a typed error carrying the trial index and stack, and every trial
// below k must keep its completed result in the returned slice.
func TestMapPanicAtTrialK(t *testing.T) {
	const k, n = 7, 20
	for _, workers := range []int{1, 4} {
		got, err := parallel.Map(context.Background(), n, workers, func(i int) (int, error) {
			if i == k {
				panic(fmt.Sprintf("injected fault at trial %d", i))
			}
			return i * 10, nil
		})
		var pe *parallel.TrialPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want TrialPanicError", workers, err)
		}
		if pe.Trial != k {
			t.Errorf("workers=%d: panic reported for trial %d, want %d", workers, pe.Trial, k)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "parallel") {
			t.Errorf("workers=%d: panic stack missing or unhelpful: %q", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "trial 7 panicked") || !strings.Contains(err.Error(), "injected fault") {
			t.Errorf("workers=%d: error text %q lacks trial index or panic value", workers, err)
		}
		// Trials below k ran to completion and their results survive.
		if got == nil {
			t.Fatalf("workers=%d: result slice dropped on panic; completed trials lost", workers)
		}
		for i := 0; i < k; i++ {
			if got[i] != i*10 {
				t.Errorf("workers=%d: completed trial %d result = %d, want %d", workers, i, got[i], i*10)
			}
		}
		if got[k] != 0 {
			t.Errorf("workers=%d: panicked trial slot = %d, want zero value", workers, got[k])
		}
	}
}

// TestMapArenaPanicIsolation covers the MapArena variant directly: the
// pool survives the recovery and later trials on the same worker still run.
func TestMapArenaPanicIsolation(t *testing.T) {
	const n = 16
	for _, workers := range []int{1, 3} {
		var ran atomic.Int64
		_, err := parallel.MapArena(context.Background(), n, workers,
			func() *int { v := 0; return &v },
			func(i int, scratch *int) (int, error) {
				ran.Add(1)
				*scratch++
				if i == 2 {
					panic("arena trial fault")
				}
				return *scratch, nil
			})
		var pe *parallel.TrialPanicError
		if !errors.As(err, &pe) || pe.Trial != 2 {
			t.Fatalf("workers=%d: err = %v, want TrialPanicError at trial 2", workers, err)
		}
		// Every scheduled trial still ran; the panic quarantined one trial,
		// not the worker or the pool.
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: %d/%d trials ran after the panic", workers, got, n)
		}
	}
}

func TestMapLowestPanicWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := parallel.Map(context.Background(), 30, workers, func(i int) (int, error) {
			if i == 5 || i == 23 {
				panic(i)
			}
			return i, nil
		})
		var pe *parallel.TrialPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want TrialPanicError", workers, err)
		}
		if pe.Trial != 5 {
			t.Errorf("workers=%d: reported trial %d, want the lowest panicking trial 5", workers, pe.Trial)
		}
	}
}

func TestMapRetryPanicsRecoversFlake(t *testing.T) {
	// A trial that panics once and succeeds on retry completes the run.
	var attempts atomic.Int64
	got, err := parallel.Map(context.Background(), 4, 1, func(i int) (int, error) {
		if i == 1 && attempts.Add(1) == 1 {
			panic("transient fault")
		}
		return i, nil
	}, parallel.RetryPanics())
	if err != nil {
		t.Fatalf("retryable panic not recovered: %v", err)
	}
	if got[1] != 1 {
		t.Errorf("retried trial result = %d, want 1", got[1])
	}
	// A deterministic panic still fails after the one retry.
	_, err = parallel.Map(context.Background(), 4, 1, func(i int) (int, error) {
		if i == 1 {
			panic("hard fault")
		}
		return i, nil
	}, parallel.RetryPanics())
	var pe *parallel.TrialPanicError
	if !errors.As(err, &pe) || pe.Trial != 1 {
		t.Fatalf("deterministic panic after retry: err = %v, want TrialPanicError at trial 1", err)
	}
}

func TestMapPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		got, err := parallel.Map(ctx, 50, workers, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		var ce *parallel.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %v, want CanceledError", workers, err)
		}
		if ce.Finished != 0 || ce.Total != 50 {
			t.Errorf("workers=%d: progress %d/%d, want 0/50", workers, ce.Finished, ce.Total)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error chain misses context.Canceled", workers)
		}
		if want := "parallel: run canceled after 0/50 trials"; err.Error() != want {
			t.Errorf("workers=%d: error text %q, want %q", workers, err, want)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d trials ran under a pre-canceled context", workers, ran.Load())
		}
		if got == nil {
			t.Errorf("workers=%d: want non-nil (empty) partial results", workers)
		}
	}
}

func TestMapMidRunCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 200
	var finished atomic.Int64
	got, err := parallel.Map(ctx, n, 4, func(i int) (int, error) {
		if i == 10 {
			cancel()
		}
		finished.Add(1)
		return i + 1, nil
	})
	var ce *parallel.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CanceledError", err)
	}
	if ce.Finished != int(finished.Load()) {
		t.Errorf("reported %d finished trials, counted %d", ce.Finished, finished.Load())
	}
	if ce.Finished == 0 || ce.Finished >= n {
		t.Errorf("finished = %d, want a strict mid-run partial count", ce.Finished)
	}
	// Every trial that completed has its result in the slice.
	seen := 0
	for i, v := range got {
		if v != 0 {
			if v != i+1 {
				t.Errorf("partial result[%d] = %d, want %d", i, v, i+1)
			}
			seen++
		}
	}
	if seen != ce.Finished {
		t.Errorf("slice carries %d results, error reports %d finished", seen, ce.Finished)
	}
}

func TestMapCompletedRunIgnoresLateCancel(t *testing.T) {
	// If every trial finishes before the cancel is observed, the run is a
	// success: attaching a context must not change a completing run.
	ctx, cancel := context.WithCancel(context.Background())
	got, err := parallel.Map(ctx, 8, 1, func(i int) (int, error) {
		if i == 7 {
			defer cancel() // fires after the final trial's body completes
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("completed run reported %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestMapDeadlineErrorText(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := parallel.Map(ctx, 3, 1, func(i int) (int, error) { return i, nil })
	var ce *parallel.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CanceledError", err)
	}
	if want := "parallel: deadline exceeded after 0/3 trials"; err.Error() != want {
		t.Errorf("error text %q, want %q", err, want)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("error chain misses context.DeadlineExceeded")
	}
}
