package parallel_test

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/cogradio/crn/internal/parallel"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 64} {
		got, err := parallel.Map(100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := parallel.Map(0, 4, func(int) (int, error) { return 0, errors.New("never called") })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := parallel.Map(50, workers, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("%w at %d", boom, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 3") {
			t.Errorf("workers=%d: err = %v, want the lowest failing trial (3)", workers, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := parallel.Map(64, workers, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Busy-wait a moment so goroutines overlap.
		for j := 0; j < 10000; j++ {
			_ = j
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent invocations, want <= %d", p, workers)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if parallel.DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", parallel.DefaultWorkers())
	}
}
