// Package parallel provides a bounded worker pool for running independent
// simulation trials concurrently with deterministic results.
//
// Experiments in this repository repeat every parameter point over many
// Monte-Carlo trials whose seeds are derived up front (rng.Derive of the
// root seed and the trial index), so trial i computes the same value no
// matter which goroutine runs it or in what order trials are scheduled. Map
// exploits that: it fans trials out over a fixed number of workers and
// returns results indexed by trial, so merging (summaries, table rows) sees
// exactly the order a serial loop would have produced. Identical tables come
// out for every worker count — the property internal/exper's determinism
// tests pin down.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// the process's GOMAXPROCS value.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results indexed by i. workers <= 0 means DefaultWorkers();
// workers == 1 runs inline on the calling goroutine with no pool at all.
//
// fn must be safe for concurrent invocation with distinct arguments; the
// usual way to get there is to derive all per-trial state (seeds, RNGs,
// assignments, engines) from the trial index inside fn and share nothing.
//
// If any invocation returns an error, Map reports the error of the
// lowest-numbered failing trial — the same error a serial loop would have
// surfaced first — wrapped with its index. All scheduled invocations still
// run to completion first, so fn must not depend on early exit.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapArena(n, workers, func() struct{} { return struct{}{} }, func(i int, _ struct{}) (T, error) {
		return fn(i)
	})
}

// MapArena is Map with a per-worker reusable scratch value: newArena runs
// once inside each worker goroutine (so arenas are never shared between
// goroutines and need no locking), and every fn invocation on that worker
// receives the same arena. Trial setup state that is expensive to build —
// engines, assignment builders, protocol node pools — lives in the arena and
// is regenerated in place each trial instead of reallocated.
//
// Because trial results must not depend on which worker (and hence which
// arena) runs them, fn must treat the arena as layout-only scratch: all
// randomness still derives from the trial index. Under that contract the
// results are identical for every worker count, arena or not.
func MapArena[T, A any](n, workers int, newArena func() A, fn func(i int, arena A) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		arena := newArena()
		for i := 0; i < n; i++ {
			v, err := fn(i, arena)
			if err != nil {
				return nil, fmt.Errorf("parallel: trial %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			arena := newArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i, arena)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel: trial %d: %w", i, err)
		}
	}
	return out, nil
}
