// Package parallel provides a bounded worker pool for running independent
// simulation trials concurrently with deterministic results.
//
// Experiments in this repository repeat every parameter point over many
// Monte-Carlo trials whose seeds are derived up front (rng.Derive of the
// root seed and the trial index), so trial i computes the same value no
// matter which goroutine runs it or in what order trials are scheduled. Map
// exploits that: it fans trials out over a fixed number of workers and
// returns results indexed by trial, so merging (summaries, table rows) sees
// exactly the order a serial loop would have produced. Identical tables come
// out for every worker count — the property internal/exper's determinism
// tests pin down.
//
// The pool is crash-contained and cancellable:
//
//   - A trial closure that panics no longer kills the process: the panic is
//     recovered and reported as a *TrialPanicError carrying the trial index
//     and stack. When several trials fail (errors or panics), the lowest
//     failing index wins the returned error — matching the engine's
//     lowest-failing-node convention — and the trials that completed keep
//     their slots in the returned slice.
//   - A canceled context stops workers from claiming new trials; in-flight
//     trials drain to completion (no goroutine is ever abandoned), and the
//     call reports a *CanceledError with the finished-trial count. If every
//     trial finished before the cancellation was observed, the run is a
//     normal success: attaching a context never changes the output of a run
//     that completes.
//
// On any error return, the result slice still carries the results of the
// trials that completed; indexes whose trials never ran (or panicked) hold
// zero values.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/cogradio/crn/internal/backoff"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// the process's GOMAXPROCS value.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// TrialPanicError reports a trial closure that panicked. The trial is
// quarantined: its slot in the result slice keeps its zero value, every
// other scheduled trial still runs, and the pool converts the panic into
// this error instead of crashing the process.
type TrialPanicError struct {
	// Trial is the index of the panicking invocation.
	Trial int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured at recover time.
	Stack []byte
}

func (e *TrialPanicError) Error() string {
	return fmt.Sprintf("parallel: trial %d panicked: %v\n%s", e.Trial, e.Value, e.Stack)
}

// CanceledError reports a run stopped by its context before every trial
// finished. Finished counts fully completed trials — their results are in
// the slice returned alongside this error.
type CanceledError struct {
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	// Finished is the number of trials that ran to completion.
	Finished int
	// Total is the number of trials requested.
	Total int
}

func (e *CanceledError) Error() string {
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		return fmt.Sprintf("parallel: deadline exceeded after %d/%d trials", e.Finished, e.Total)
	}
	return fmt.Sprintf("parallel: run canceled after %d/%d trials", e.Finished, e.Total)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

type options struct {
	retryPanics bool
}

// Option configures a Map or MapArena call.
type Option func(*options)

// RetryPanics makes the pool retry a panicking trial once on a freshly
// built arena before reporting the TrialPanicError (the panic may have left
// the old arena corrupted mid-update). The retry is paced by a
// backoff.RetryGap worth of scheduler yields so transient runtime pressure
// gets a beat to clear; a second panic is reported normally. Deterministic
// trial closures panic deterministically, so for pure simulation workloads
// this only delays the report — it exists for infra-flake containment in
// long-running callers.
func RetryPanics() Option { return func(o *options) { o.retryPanics = true } }

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results indexed by i. workers <= 0 means DefaultWorkers();
// workers == 1 runs inline on the calling goroutine with no pool at all.
// ctx may be nil or context.Background() for an uncancellable run; a
// canceled context stops new trials from starting and surfaces a
// *CanceledError once in-flight trials drain.
//
// fn must be safe for concurrent invocation with distinct arguments; the
// usual way to get there is to derive all per-trial state (seeds, RNGs,
// assignments, engines) from the trial index inside fn and share nothing.
//
// If any invocation returns an error, Map reports the error of the
// lowest-numbered failing trial — the same error a serial loop would have
// surfaced first — wrapped with its index. All scheduled invocations still
// run to completion first, so fn must not depend on early exit.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error), opts ...Option) ([]T, error) {
	return MapArena(ctx, n, workers, func() struct{} { return struct{}{} }, func(i int, _ struct{}) (T, error) {
		return fn(i)
	}, opts...)
}

// MapArena is Map with a per-worker reusable scratch value: newArena runs
// once inside each worker goroutine (so arenas are never shared between
// goroutines and need no locking), and every fn invocation on that worker
// receives the same arena. Trial setup state that is expensive to build —
// engines, assignment builders, protocol node pools — lives in the arena and
// is regenerated in place each trial instead of reallocated.
//
// Because trial results must not depend on which worker (and hence which
// arena) runs them, fn must treat the arena as layout-only scratch: all
// randomness still derives from the trial index. Under that contract the
// results are identical for every worker count, arena or not.
func MapArena[T, A any](ctx context.Context, n, workers int, newArena func() A, fn func(i int, arena A) (T, error), opts ...Option) ([]T, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	var finished atomic.Int64

	// runTrial converts a panic in fn into a TrialPanicError. out[i] is
	// only assigned when fn returns, so a panicking trial leaves its slot
	// zero-valued rather than half-written.
	runTrial := func(i int, arena A) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &TrialPanicError{Trial: i, Value: p, Stack: debug.Stack()}
			}
		}()
		var ferr error
		out[i], ferr = fn(i, arena)
		return ferr
	}
	attempt := func(i int, arena *A) error {
		err := runTrial(i, *arena)
		var pe *TrialPanicError
		if o.retryPanics && errors.As(err, &pe) {
			for y := backoff.RetryGap(1, 0, 8); y > 0; y-- {
				runtime.Gosched()
			}
			*arena = newArena()
			err = runTrial(i, *arena)
		}
		if err == nil {
			finished.Add(1)
		}
		return err
	}

	if workers == 1 {
		arena := newArena()
		// Match the pool's semantics: a failing trial does not stop the
		// remaining ones (the lowest failing index is reported at the end),
		// only cancellation stops new trials from starting.
		firstIdx, firstErr := -1, error(nil)
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			if err := attempt(i, &arena); err != nil && firstErr == nil {
				firstIdx, firstErr = i, err
			}
		}
		if firstErr != nil {
			return out, wrapTrial(firstIdx, firstErr)
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil && int(finished.Load()) < n {
				return out, &CanceledError{Cause: cerr, Finished: int(finished.Load()), Total: n}
			}
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			arena := newArena()
			for {
				// Stop claiming once the context is done; trials already
				// claimed by other workers drain to completion before
				// MapArena returns, so cancellation never leaks a
				// goroutine or abandons a half-run trial.
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = attempt(i, &arena)
			}
		}()
	}
	wg.Wait()

	// Report the lowest failing trial so the error is identical for every
	// worker count.
	for i, err := range errs {
		if err != nil {
			return out, wrapTrial(i, err)
		}
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil && int(finished.Load()) < n {
			return out, &CanceledError{Cause: cerr, Finished: int(finished.Load()), Total: n}
		}
	}
	return out, nil
}

// wrapTrial tags a trial error with its index; panic errors already carry
// it and pass through unwrapped so errors.As callers see the concrete type.
func wrapTrial(i int, err error) error {
	var pe *TrialPanicError
	if errors.As(err, &pe) {
		return err
	}
	return fmt.Errorf("parallel: trial %d: %w", i, err)
}
