// Package aggfunc defines the associative aggregation functions COGCOMP
// computes over the distribution tree. The paper's Section 5 discussion
// observes that for associative functions each node can merge its
// children's partial aggregates locally and forward a constant-size
// outcome, keeping messages O(polylog n); the Collect function represents
// the opposite regime (gather every raw value) and is used to measure the
// message-size gap (experiment E14).
package aggfunc

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// Value is a partial aggregate flowing up the tree. Concrete types are
// defined by each Func; callers treat values as opaque and immutable.
type Value any

// Func is an associative aggregation function with an identified leaf
// embedding. Merge must be associative and commutative over the values
// produced by Leaf and Merge.
type Func interface {
	// Name identifies the function in reports.
	Name() string
	// Leaf lifts a node's raw input into a partial aggregate.
	Leaf(id sim.NodeID, input int64) Value
	// Merge combines two partial aggregates.
	Merge(a, b Value) Value
	// Size returns the abstract wire size of a value, in words. Used for
	// message-overhead accounting, not for simulation semantics.
	Size(v Value) int
}

// Sum aggregates the sum of all inputs. Its Value is int64.
type Sum struct{}

// Name implements Func.
func (Sum) Name() string { return "sum" }

// Leaf implements Func.
func (Sum) Leaf(_ sim.NodeID, input int64) Value { return input }

// Merge implements Func.
func (Sum) Merge(a, b Value) Value { return a.(int64) + b.(int64) }

// Size implements Func.
func (Sum) Size(Value) int { return 1 }

// Count counts participating nodes. Its Value is int64.
type Count struct{}

// Name implements Func.
func (Count) Name() string { return "count" }

// Leaf implements Func.
func (Count) Leaf(sim.NodeID, int64) Value { return int64(1) }

// Merge implements Func.
func (Count) Merge(a, b Value) Value { return a.(int64) + b.(int64) }

// Size implements Func.
func (Count) Size(Value) int { return 1 }

// Min aggregates the minimum input. Its Value is int64.
type Min struct{}

// Name implements Func.
func (Min) Name() string { return "min" }

// Leaf implements Func.
func (Min) Leaf(_ sim.NodeID, input int64) Value { return input }

// Merge implements Func.
func (Min) Merge(a, b Value) Value {
	if x, y := a.(int64), b.(int64); x < y {
		return x
	}
	return b
}

// Size implements Func.
func (Min) Size(Value) int { return 1 }

// Max aggregates the maximum input. Its Value is int64.
type Max struct{}

// Name implements Func.
func (Max) Name() string { return "max" }

// Leaf implements Func.
func (Max) Leaf(_ sim.NodeID, input int64) Value { return input }

// Merge implements Func.
func (Max) Merge(a, b Value) Value {
	if x, y := a.(int64), b.(int64); x > y {
		return x
	}
	return b
}

// Size implements Func.
func (Max) Size(Value) int { return 1 }

// StatsValue is the partial aggregate of Stats: enough moments for
// count/sum/min/max (and hence mean) in one constant-size message.
type StatsValue struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Mean returns the running mean.
func (s StatsValue) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Stats aggregates count, sum, min and max simultaneously — the "network
// condition snapshot" style aggregate the paper's introduction motivates.
type Stats struct{}

// Name implements Func.
func (Stats) Name() string { return "stats" }

// Leaf implements Func.
func (Stats) Leaf(_ sim.NodeID, input int64) Value {
	return StatsValue{Count: 1, Sum: input, Min: input, Max: input}
}

// Merge implements Func.
func (Stats) Merge(a, b Value) Value {
	x, y := a.(StatsValue), b.(StatsValue)
	out := StatsValue{Count: x.Count + y.Count, Sum: x.Sum + y.Sum, Min: x.Min, Max: x.Max}
	if y.Min < out.Min {
		out.Min = y.Min
	}
	if y.Max > out.Max {
		out.Max = y.Max
	}
	return out
}

// Size implements Func.
func (Stats) Size(Value) int { return 4 }

// Entry is one raw reading inside a Collect value.
type Entry struct {
	ID    sim.NodeID
	Input int64
}

// Collect gathers every (node, input) pair — the non-associative-style
// "ship all raw data" aggregate. Its Value is []Entry and message size
// grows linearly in subtree size.
type Collect struct{}

// Name implements Func.
func (Collect) Name() string { return "collect" }

// Leaf implements Func.
func (Collect) Leaf(id sim.NodeID, input int64) Value {
	return []Entry{{ID: id, Input: input}}
}

// Merge implements Func.
func (Collect) Merge(a, b Value) Value {
	x, y := a.([]Entry), b.([]Entry)
	out := make([]Entry, 0, len(x)+len(y))
	out = append(out, x...)
	out = append(out, y...)
	return out
}

// Size implements Func.
func (Collect) Size(v Value) int { return 2 * len(v.([]Entry)) }

// Verify that every function satisfies Func.
var (
	_ Func = Sum{}
	_ Func = Count{}
	_ Func = Min{}
	_ Func = Max{}
	_ Func = Stats{}
	_ Func = Collect{}
)

// ByName returns the function with the given name.
func ByName(name string) (Func, error) {
	switch name {
	case "sum":
		return Sum{}, nil
	case "count":
		return Count{}, nil
	case "min":
		return Min{}, nil
	case "max":
		return Max{}, nil
	case "stats":
		return Stats{}, nil
	case "collect":
		return Collect{}, nil
	default:
		return nil, fmt.Errorf("aggfunc: unknown function %q", name)
	}
}

// Fold computes the reference aggregate of all inputs directly — the ground
// truth tests compare COGCOMP's result against.
func Fold(f Func, inputs []int64) Value {
	if len(inputs) == 0 {
		return nil
	}
	acc := f.Leaf(0, inputs[0])
	for i := 1; i < len(inputs); i++ {
		acc = f.Merge(acc, f.Leaf(sim.NodeID(i), inputs[i]))
	}
	return acc
}
