package aggfunc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cogradio/crn/internal/sim"
)

func TestSumBasics(t *testing.T) {
	f := Sum{}
	if f.Name() != "sum" {
		t.Error("name")
	}
	v := f.Merge(f.Leaf(0, 3), f.Leaf(1, -5))
	if v != int64(-2) {
		t.Errorf("merge = %v, want -2", v)
	}
	if f.Size(v) != 1 {
		t.Error("size")
	}
}

func TestCountIgnoresInput(t *testing.T) {
	f := Count{}
	v := f.Merge(f.Leaf(0, 999), f.Leaf(1, -999))
	if v != int64(2) {
		t.Errorf("count = %v, want 2", v)
	}
}

func TestMinMax(t *testing.T) {
	min, max := Min{}, Max{}
	if got := min.Merge(min.Leaf(0, 4), min.Leaf(1, -7)); got != int64(-7) {
		t.Errorf("min = %v", got)
	}
	if got := max.Merge(max.Leaf(0, 4), max.Leaf(1, -7)); got != int64(4) {
		t.Errorf("max = %v", got)
	}
}

func TestStats(t *testing.T) {
	f := Stats{}
	v := f.Merge(f.Merge(f.Leaf(0, 2), f.Leaf(1, 8)), f.Leaf(2, 5)).(StatsValue)
	want := StatsValue{Count: 3, Sum: 15, Min: 2, Max: 8}
	if v != want {
		t.Errorf("stats = %+v, want %+v", v, want)
	}
	if v.Mean() != 5 {
		t.Errorf("mean = %v, want 5", v.Mean())
	}
	if (StatsValue{}).Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	if f.Size(v) != 4 {
		t.Error("size")
	}
}

func TestCollect(t *testing.T) {
	f := Collect{}
	v := f.Merge(f.Leaf(3, 30), f.Leaf(5, 50)).([]Entry)
	if len(v) != 2 || v[0] != (Entry{ID: 3, Input: 30}) || v[1] != (Entry{ID: 5, Input: 50}) {
		t.Errorf("collect = %v", v)
	}
	if f.Size(v) != 4 {
		t.Errorf("size = %d, want 4 (2 words per entry)", f.Size(v))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "stats", "collect"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, f.Name())
		}
	}
	if _, err := ByName("median"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFold(t *testing.T) {
	if got := Fold(Sum{}, []int64{1, 2, 3, 4}); got != int64(10) {
		t.Errorf("fold sum = %v", got)
	}
	if got := Fold(Sum{}, nil); got != nil {
		t.Errorf("fold of empty = %v, want nil", got)
	}
}

// Associativity and commutativity are the load-bearing assumptions of the
// COGCOMP optimization; verify them property-style for scalar functions.
func TestMergePropertiesQuick(t *testing.T) {
	scalars := []Func{Sum{}, Min{}, Max{}, Count{}, Stats{}}
	for _, f := range scalars {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			comm := func(a, b int64) bool {
				x, y := f.Leaf(0, a), f.Leaf(1, b)
				return f.Merge(x, y) == f.Merge(y, x)
			}
			if err := quick.Check(comm, nil); err != nil {
				t.Errorf("commutativity: %v", err)
			}
			assoc := func(a, b, c int64) bool {
				x, y, z := f.Leaf(0, a), f.Leaf(1, b), f.Leaf(2, c)
				return f.Merge(f.Merge(x, y), z) == f.Merge(x, f.Merge(y, z))
			}
			if err := quick.Check(assoc, nil); err != nil {
				t.Errorf("associativity: %v", err)
			}
		})
	}
}

func TestCollectAssociativeUpToOrder(t *testing.T) {
	f := Collect{}
	x, y, z := f.Leaf(0, 1), f.Leaf(1, 2), f.Leaf(2, 3)
	a := f.Merge(f.Merge(x, y), z).([]Entry)
	b := f.Merge(x, f.Merge(y, z)).([]Entry)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	seen := make(map[sim.NodeID]int64)
	for _, e := range a {
		seen[e.ID] = e.Input
	}
	for _, e := range b {
		if seen[e.ID] != e.Input {
			t.Errorf("entry %v missing from other association", e)
		}
	}
}

func TestMergeDoesNotMutateCollectArguments(t *testing.T) {
	f := Collect{}
	x := f.Leaf(0, 1)
	y := f.Leaf(1, 2)
	_ = f.Merge(x, y)
	if len(x.([]Entry)) != 1 || len(y.([]Entry)) != 1 {
		t.Error("merge mutated its arguments")
	}
}

// TestOverflowSemantics pins the package's behavior at the int64 edges:
// partial sums wrap with two's-complement semantics (Go's defined integer
// overflow), and min/max and the Stats moments remain exact at the
// extremes. The protocols do not guard against overflow — an aggregation
// over inputs summing beyond int64 wraps silently — so the behavior is
// pinned here to make that contract visible.
func TestOverflowSemantics(t *testing.T) {
	const maxI, minI = int64(math.MaxInt64), int64(math.MinInt64)

	if got := Fold(Sum{}, []int64{maxI, 1}); got != Value(minI) {
		t.Errorf("MaxInt64 + 1 = %v, want two's-complement wrap to MinInt64", got)
	}
	if got := Fold(Sum{}, []int64{minI, -1}); got != Value(maxI) {
		t.Errorf("MinInt64 - 1 = %v, want wrap to MaxInt64", got)
	}
	if got := Fold(Sum{}, []int64{maxI, minI}); got != Value(int64(-1)) {
		t.Errorf("MaxInt64 + MinInt64 = %v, want -1", got)
	}

	if got := Fold(Min{}, []int64{maxI, minI, 0}); got != Value(minI) {
		t.Errorf("min over extremes = %v, want MinInt64", got)
	}
	if got := Fold(Max{}, []int64{minI, maxI, 0}); got != Value(maxI) {
		t.Errorf("max over extremes = %v, want MaxInt64", got)
	}

	sv := Fold(Stats{}, []int64{maxI, maxI}).(StatsValue)
	if sv.Count != 2 || sv.Min != maxI || sv.Max != maxI {
		t.Errorf("stats moments at the edge = %+v", sv)
	}
	if sv.Sum != -2 {
		t.Errorf("stats sum 2·MaxInt64 = %d, want wrapped -2", sv.Sum)
	}
	// The wrapped Sum poisons the Mean — pinned so a future guard is a
	// deliberate change.
	if m := sv.Mean(); m != -1 {
		t.Errorf("mean of wrapped sum = %v, want -1", m)
	}
}

// TestCountSaturation pins that Count is immune to input magnitude: its
// value depends only on the number of participants.
func TestCountSaturation(t *testing.T) {
	inputs := []int64{math.MaxInt64, math.MinInt64, 0, -1}
	if got := Fold(Count{}, inputs); got != Value(int64(len(inputs))) {
		t.Errorf("count = %v, want %d", got, len(inputs))
	}
}
