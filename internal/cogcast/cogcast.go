// Package cogcast implements COGCAST, the epidemic local-broadcast protocol
// of Section 4: in every slot each node picks a channel uniformly at random
// from its available set; nodes that already hold the message broadcast it,
// all others listen. Information spreads like an epidemic — the more nodes
// are informed, the faster the remainder is reached — completing in
// O((c/k)·max{1,c/n}·lg n) slots w.h.p. (Theorem 4).
//
// The protocol's only use of global parameters is to decide when to stop;
// the per-slot behavior depends on nothing but the node's own channel set,
// which is why it tolerates dynamic channel assignments unchanged
// (Theorem 17 discussion).
package cogcast

import (
	"math"
	"math/rand"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Payload is the message an informed node broadcasts: the original body
// disseminated by the source. The sender identity travels in the engine's
// event metadata.
type Payload struct {
	Body sim.Message
}

// SlotRecord is one entry of a node's action log, kept when recording is
// enabled. COGCOMP's phases two and three replay this log: phase two needs
// the slot and channel on which the node was first informed, and phase
// three "rewinds" the whole schedule, so every slot's operation, local
// channel, and outcome must be remembered.
type SlotRecord struct {
	// Op is what the node did (listen or broadcast).
	Op sim.Op
	// Channel is the local channel index used.
	Channel int
	// SendSucceeded reports whether a broadcast in this slot won the channel.
	SendSucceeded bool
	// FirstInformed reports whether a listen in this slot delivered the
	// message to a previously uninformed node.
	FirstInformed bool
}

// Node is one COGCAST participant. It implements sim.Protocol.
type Node struct {
	id   sim.NodeID
	view sim.NodeView
	rand *rand.Rand

	informed bool
	payload  sim.Message
	// wire is the boxed Payload an informed node broadcasts. Building it
	// once when the node learns the message (instead of wrapping payload on
	// every Step) keeps the steady-state slot path allocation-free.
	wire sim.Message

	parent        sim.NodeID
	informedSlot  int
	informedLocal int

	horizon int
	steps   int

	record  bool
	records []SlotRecord

	// lastAction is the pending record for the slot being resolved; Deliver
	// fills in the outcome fields.
	lastSlot int
}

var _ sim.Protocol = (*Node)(nil)

// Option configures a Node.
type Option func(*Node)

// WithHorizon makes the node terminate after the given number of slots.
// Without a horizon the node runs until the engine stops it (the natural
// mode for a long-lived primitive, per the Section 4 discussion).
func WithHorizon(slots int) Option {
	return func(n *Node) { n.horizon = slots }
}

// WithRecording makes the node keep a SlotRecord per slot, as COGCOMP's
// phase one requires.
func WithRecording() Option {
	return func(n *Node) { n.record = true }
}

// New creates a COGCAST node. If source is true the node starts informed
// and will broadcast payload from slot 0. Non-source nodes ignore payload.
// The node's random stream is derived from (seed, node id), so a network of
// nodes built from one seed is reproducible yet uncorrelated.
func New(view sim.NodeView, source bool, payload sim.Message, seed int64, opts ...Option) *Node {
	n := &Node{}
	n.Reinit(view, source, payload, seed, opts...)
	return n
}

// Reinit re-initializes the node exactly as New would, but reuses its random
// source and record backing so trial arenas can rebuild a network without
// per-node allocations. A reinitialized node's behavior is draw-for-draw
// identical to a fresh one.
func (n *Node) Reinit(view sim.NodeView, source bool, payload sim.Message, seed int64, opts ...Option) {
	r := n.rand
	if r == nil {
		r = rng.New(seed, int64(view.ID()), 0xca57)
	} else {
		rng.Reseed(r, seed, int64(view.ID()), 0xca57)
	}
	*n = Node{
		id:           view.ID(),
		view:         view,
		rand:         r,
		informed:     source,
		payload:      payload,
		parent:       sim.None,
		informedSlot: -1,
		lastSlot:     -1,
		records:      n.records[:0],
	}
	if source {
		n.wire = Payload{Body: payload}
	}
	for _, opt := range opts {
		opt(n)
	}
}

// Step implements sim.Protocol: choose a uniform random channel; broadcast
// if informed, listen otherwise.
func (n *Node) Step(slot int) sim.Action {
	n.steps++
	ch := n.rand.Intn(n.view.NumChannels(slot))
	n.lastSlot = slot
	var act sim.Action
	if n.informed {
		act = sim.Broadcast(ch, n.wire)
	} else {
		act = sim.Listen(ch)
	}
	if n.record {
		n.records = append(n.records, SlotRecord{Op: act.Op, Channel: ch})
	}
	return act
}

// Deliver implements sim.Protocol.
func (n *Node) Deliver(slot int, ev sim.Event) {
	switch ev.Kind {
	case sim.EvReceived:
		if n.informed {
			return
		}
		p, ok := ev.Msg.(Payload)
		if !ok {
			return // foreign traffic; ignore
		}
		n.informed = true
		n.payload = p.Body
		n.wire = ev.Msg // already the boxed Payload; reuse it
		n.parent = ev.From
		n.informedSlot = slot
		n.informedLocal = ev.Channel
		if n.record && slot == n.lastSlot {
			n.records[len(n.records)-1].FirstInformed = true
		}
	case sim.EvSendSucceeded:
		if n.record && slot == n.lastSlot {
			n.records[len(n.records)-1].SendSucceeded = true
		}
	case sim.EvSendFailed:
		// Failed broadcasters receive the winning message, but an informed
		// node has nothing to learn from it.
	}
}

// Done implements sim.Protocol: true once the horizon (if any) is reached.
func (n *Node) Done() bool {
	return n.horizon > 0 && n.steps >= n.horizon
}

// Informed reports whether the node holds the message.
func (n *Node) Informed() bool { return n.informed }

// Payload returns the message body the node holds (nil if uninformed).
func (n *Node) Payload() sim.Message {
	if !n.informed {
		return nil
	}
	return n.payload
}

// Parent returns the node that first informed this node, or sim.None for
// the source and for uninformed nodes. Parents define the distribution tree
// COGCOMP aggregates over.
func (n *Node) Parent() sim.NodeID { return n.parent }

// InformedSlot returns the slot in which the node was first informed, or -1.
func (n *Node) InformedSlot() int { return n.informedSlot }

// InformedChannel returns the node's local index of the channel on which it
// was first informed, or 0 if it was never informed. Together with
// InformedSlot it names the node's (r, c)-cluster.
func (n *Node) InformedChannel() int { return n.informedLocal }

// Records returns the node's action log (nil unless recording was enabled).
// The returned slice is owned by the node.
func (n *Node) Records() []SlotRecord { return n.records }

// MissSlot appends an idle entry to the action log for a slot the node did
// not act in (e.g. it was down under a fault schedule, so Step was never
// called). Keeping the log slot-aligned is what lets COGCOMP's phase-three
// rewind replay a faulty phase one: a missed slot rewinds to "no role".
// No-op unless recording is enabled.
func (n *Node) MissSlot(slot int) {
	if !n.record {
		return
	}
	n.lastSlot = slot
	n.records = append(n.records, SlotRecord{Op: sim.OpIdle})
}

// SlotBound returns the protocol's theoretical run length
// κ·(c/k)·max{1,c/n}·lg n, rounded up and at least 1. κ absorbs the
// constants hidden by the Θ in Theorem 4; κ = 4 empirically suffices for
// w.h.p. completion across the topologies in this repository (see the E1/E2
// experiments).
func SlotBound(n, c, k int, kappa float64) int {
	if n < 2 {
		return 1
	}
	slots := kappa * (float64(c) / float64(k)) * math.Max(1, float64(c)/float64(n)) * math.Log2(float64(n))
	if slots < 1 {
		return 1
	}
	return int(math.Ceil(slots))
}

// DefaultKappa is the constant used by the convenience runners when the
// caller does not specify one.
const DefaultKappa = 4.0
