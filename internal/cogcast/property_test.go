package cogcast_test

import (
	"testing"
	"testing/quick"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/tree"
)

// TestBroadcastTreeProperty: for arbitrary small shared-core parameters and
// seeds, a completed broadcast always yields a valid spanning tree whose
// edges respect informedness order. This is the structural foundation
// COGCOMP builds on, so it gets a property-level check beyond the targeted
// tests.
func TestBroadcastTreeProperty(t *testing.T) {
	prop := func(seed int64, nRaw, cRaw, kRaw, srcRaw uint8) bool {
		n := int(nRaw%30) + 2
		c := int(cRaw%8) + 1
		k := int(kRaw)%c + 1
		src := int(srcRaw) % n
		asn, err := assign.SharedCore(n, c, k, c+6, assign.LocalLabels, seed)
		if err != nil {
			return false
		}
		budget := 256 * cogcast.SlotBound(n, c, k, cogcast.DefaultKappa)
		res, err := cogcast.Run(asn, sim.NodeID(src), "m", seed, cogcast.RunConfig{
			UntilAllInformed: true, MaxSlots: budget,
		})
		if err != nil || !res.AllInformed {
			return false
		}
		tr, err := tree.New(sim.NodeID(src), res.Parents)
		if err != nil {
			return false
		}
		if !tr.Spanning() {
			return false
		}
		for v := 0; v < n; v++ {
			p := res.Parents[v]
			if p < 0 {
				continue
			}
			// Child informed strictly after its parent (source parent slot
			// is -1, trivially earlier).
			if res.InformedSlots[p] >= res.InformedSlots[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeNetworkStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n, c, k = 2048, 16, 4
	asn, err := assign.SharedCore(n, c, k, 64, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(asn, 0, "m", 1, cogcast.RunConfig{
		UntilAllInformed: true,
		MaxSlots:         64 * cogcast.SlotBound(n, c, k, cogcast.DefaultKappa),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("n=2048 broadcast incomplete after %d slots", res.Slots)
	}
	tr, err := tree.New(0, res.Parents)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Spanning() {
		t.Error("tree not spanning at n=2048")
	}
}
