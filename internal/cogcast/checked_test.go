package cogcast_test

import (
	"reflect"
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

// TestCheckedRunMatchesUnchecked pins the oracle's non-interference: a run
// with the invariant checker attached must report zero violations and
// produce a result identical to the unchecked run (the engine draws
// randomness only where the protocol needs it, so observation cannot
// perturb the trajectory).
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	const n, c, k = 48, 8, 2
	topos := map[string]func() (sim.Assignment, error){
		"partitioned": func() (sim.Assignment, error) {
			return assign.Partitioned(n, c, k, assign.LocalLabels, 2)
		},
		"shared-core": func() (sim.Assignment, error) {
			return assign.SharedCore(n, c, k, 4*c, assign.LocalLabels, 3)
		},
		"dynamic": func() (sim.Assignment, error) {
			return assign.NewDynamic(n, c, k, 3*c, 5)
		},
	}
	for name, build := range topos {
		t.Run(name, func(t *testing.T) {
			asn, err := build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 50000}
			plain, err := cogcast.Run(asn, 0, "m", 6, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Check = true
			checked, err := cogcast.Run(asn, 0, "m", 6, cfg)
			if err != nil {
				t.Fatalf("checked run failed: %v", err)
			}
			if !reflect.DeepEqual(plain, checked) {
				t.Errorf("checked result diverges from unchecked:\n  plain:   %+v\n  checked: %+v", plain, checked)
			}
		})
	}
}

// TestCheckedArenaPoolsTallies pins the arena-level wiring: SetCheck(true)
// keeps one checker across runs, pooling winner-position tallies over
// seeds, and the pooled uniformity test does not reject. (The heavyweight
// statistical test with dense contention lives in package invariant.)
func TestCheckedArenaPoolsTallies(t *testing.T) {
	asn, err := assign.FullOverlap(24, 3, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	var arena cogcast.Arena
	arena.SetCheck(true)
	for seed := int64(0); seed < 40; seed++ {
		if _, err := arena.Run(asn, 0, "m", seed, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 20000}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	ck := arena.Checker()
	if ck.Tallied() == 0 {
		t.Fatal("no contended channels tallied across 40 seeds")
	}
	if err := ck.Uniformity(1e-3); err != nil {
		t.Error(err)
	}
}
