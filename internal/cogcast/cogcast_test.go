package cogcast_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/tree"
)

func TestSlotBound(t *testing.T) {
	cases := []struct {
		n, c, k int
		kappa   float64
		atLeast int
	}{
		{2, 1, 1, 1, 1},
		{1, 8, 2, 1, 1},      // degenerate single node
		{1024, 32, 4, 1, 80}, // (32/4)*1*10 = 80
		{16, 64, 8, 1, 128},  // (64/8)*(64/16)*4 = 128
	}
	for _, c := range cases {
		got := cogcast.SlotBound(c.n, c.c, c.k, c.kappa)
		if got < c.atLeast {
			t.Errorf("SlotBound(%d,%d,%d,%v) = %d, want >= %d", c.n, c.c, c.k, c.kappa, got, c.atLeast)
		}
	}
	if a, b := cogcast.SlotBound(1024, 32, 4, 1), cogcast.SlotBound(1024, 32, 4, 2); b != 2*a {
		t.Errorf("kappa must scale linearly: %d vs %d", a, b)
	}
}

func TestBroadcastCompletesFullOverlap(t *testing.T) {
	const n, c = 64, 8
	asn, err := assign.FullOverlap(n, c, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(asn, 0, "payload", 1, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("broadcast incomplete after %d slots", res.Slots)
	}
}

func TestBroadcastCompletesAcrossTopologies(t *testing.T) {
	const n, c, k = 48, 8, 2
	topos := map[string]func() (sim.Assignment, error){
		"partitioned": func() (sim.Assignment, error) {
			return assign.Partitioned(n, c, k, assign.LocalLabels, 2)
		},
		"shared-core": func() (sim.Assignment, error) {
			return assign.SharedCore(n, c, k, 4*c, assign.LocalLabels, 3)
		},
		"random-pool": func() (sim.Assignment, error) {
			return assign.RandomPool(n, 16, 2, 32, assign.LocalLabels, 4)
		},
		"dynamic": func() (sim.Assignment, error) {
			return assign.NewDynamic(n, c, k, 3*c, 5)
		},
	}
	for name, build := range topos {
		t.Run(name, func(t *testing.T) {
			asn, err := build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := cogcast.Run(asn, 0, "m", 6, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 50000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllInformed {
				t.Fatalf("broadcast incomplete on %s after %d slots", name, res.Slots)
			}
		})
	}
}

func TestDistributionTreeIsSpanning(t *testing.T) {
	const n, c, k = 40, 6, 2
	for seed := int64(0); seed < 5; seed++ {
		asn, err := assign.SharedCore(n, c, k, 18, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cogcast.Run(asn, 3, "init", seed, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		tr, err := tree.New(3, res.Parents)
		if err != nil {
			t.Fatalf("seed %d: invalid tree: %v", seed, err)
		}
		if !tr.Spanning() {
			t.Errorf("seed %d: tree reaches %d of %d nodes", seed, tr.Size(), n)
		}
		// Parent must have been informed strictly before the child.
		for v := 0; v < n; v++ {
			p := res.Parents[v]
			if p == sim.None {
				continue
			}
			parentSlot := res.InformedSlots[p]
			if p != 3 && parentSlot >= res.InformedSlots[v] {
				t.Errorf("seed %d: node %d informed at %d by parent %d informed at %d",
					seed, v, res.InformedSlots[v], p, parentSlot)
			}
		}
	}
}

func TestEachNodeInformedExactlyOnce(t *testing.T) {
	// A node's parent and informed slot must never change after the first
	// delivery (the paper: "each node is informed only once, because after
	// that it broadcasts in each slot").
	const n = 24
	asn, err := assign.FullOverlap(n, 4, assign.LocalLabels, 7)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cogcast.Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "x", 7)
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, 7)
	if err != nil {
		t.Fatal(err)
	}
	firstParent := make(map[int]sim.NodeID)
	for s := 0; s < 200; s++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
		for i, nd := range nodes {
			if nd.Informed() {
				if p, ok := firstParent[i]; ok {
					if nd.Parent() != p {
						t.Fatalf("node %d parent changed from %d to %d", i, p, nd.Parent())
					}
				} else {
					firstParent[i] = nd.Parent()
				}
			}
		}
	}
	if len(firstParent) != n {
		t.Fatalf("only %d of %d nodes informed after 200 slots", len(firstParent), n)
	}
}

func TestRecording(t *testing.T) {
	const n = 10
	asn, err := assign.FullOverlap(n, 3, assign.LocalLabels, 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cogcast.Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "x", 8, cogcast.WithRecording(), cogcast.WithHorizon(50))
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(60); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		recs := nd.Records()
		if len(recs) != 50 {
			t.Fatalf("node %d recorded %d slots, want 50", i, len(recs))
		}
		firstInformedCount := 0
		for s, r := range recs {
			switch r.Op {
			case sim.OpListen:
				if r.SendSucceeded {
					t.Errorf("node %d slot %d: listen marked SendSucceeded", i, s)
				}
				if r.FirstInformed {
					firstInformedCount++
					if s != nd.InformedSlot() {
						t.Errorf("node %d: FirstInformed at slot %d but InformedSlot=%d", i, s, nd.InformedSlot())
					}
					if r.Channel != nd.InformedChannel() {
						t.Errorf("node %d: informed channel mismatch %d vs %d", i, r.Channel, nd.InformedChannel())
					}
				}
			case sim.OpBroadcast:
				if r.FirstInformed {
					t.Errorf("node %d slot %d: broadcast marked FirstInformed", i, s)
				}
			}
		}
		if i == 0 && firstInformedCount != 0 {
			t.Errorf("source recorded FirstInformed")
		}
		if i != 0 && nd.Informed() && firstInformedCount != 1 {
			t.Errorf("node %d recorded %d FirstInformed slots, want 1", i, firstInformedCount)
		}
		// After being informed, every slot must be a broadcast.
		for s := range recs {
			if nd.InformedSlot() >= 0 && s > nd.InformedSlot() && recs[s].Op != sim.OpBroadcast {
				t.Errorf("node %d slot %d: informed node listened", i, s)
			}
			if i != 0 && (nd.InformedSlot() < 0 || s <= nd.InformedSlot()) && s != nd.InformedSlot() && recs[s].Op != sim.OpListen {
				t.Errorf("node %d slot %d: uninformed node broadcast", i, s)
			}
		}
	}
}

func TestHorizonTermination(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 9)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]sim.Protocol, 4)
	for i := range protos {
		protos[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 0, "x", 9, cogcast.WithHorizon(7))
	}
	eng, err := sim.NewEngine(asn, protos, 9)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := eng.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 7 {
		t.Errorf("ran %d slots, want exactly the 7-slot horizon", slots)
	}
}

func TestTrajectoryMonotone(t *testing.T) {
	asn, err := assign.FullOverlap(32, 4, assign.LocalLabels, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cogcast.Run(asn, 0, "x", 10, cogcast.RunConfig{UntilAllInformed: true, MaxSlots: 5000, Trajectory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("no trajectory recorded")
	}
	prev := 1
	for s, v := range res.Trajectory {
		if v < prev {
			t.Fatalf("informed count dropped from %d to %d at slot %d", prev, v, s)
		}
		prev = v
	}
	if got := res.Trajectory[len(res.Trajectory)-1]; got != 32 {
		t.Errorf("final informed count = %d, want 32", got)
	}
}

func TestRunRejectsBadSource(t *testing.T) {
	asn, err := assign.FullOverlap(4, 2, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cogcast.Run(asn, 10, "x", 1, cogcast.RunConfig{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := cogcast.Run(asn, -1, "x", 1, cogcast.RunConfig{}); err == nil {
		t.Error("negative source accepted")
	}
}

func TestPayloadPropagation(t *testing.T) {
	const n = 16
	asn, err := assign.FullOverlap(n, 3, assign.LocalLabels, 11)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cogcast.Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = cogcast.New(sim.View(asn, sim.NodeID(i)), i == 5, "the-message", 11)
		protos[i] = nodes[i]
	}
	eng, err := sim.NewEngine(asn, protos, 11)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 500; s++ {
		if err := eng.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		if !nd.Informed() {
			t.Fatalf("node %d uninformed after 500 slots", i)
		}
		if nd.Payload() != "the-message" {
			t.Errorf("node %d payload = %v", i, nd.Payload())
		}
	}
}

func TestUninformedPayloadNil(t *testing.T) {
	asn, err := assign.FullOverlap(2, 1, assign.LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	nd := cogcast.New(sim.View(asn, 1), false, nil, 1)
	if nd.Informed() || nd.Payload() != nil || nd.Parent() != sim.None || nd.InformedSlot() != -1 {
		t.Error("fresh non-source node should be uninformed with empty metadata")
	}
}
