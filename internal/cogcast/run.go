package cogcast

import (
	"context"
	"fmt"

	"github.com/cogradio/crn/internal/invariant"
	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Result reports one COGCAST execution.
type Result struct {
	// Slots is the number of slots executed.
	Slots int
	// AllInformed reports whether every node held the message at the end.
	AllInformed bool
	// Parents[v] is the node that informed v (sim.None for the source and
	// for uninformed nodes). This is the distribution tree of Section 5.
	Parents []sim.NodeID
	// InformedSlots[v] is the slot in which v was first informed (-1 for
	// the source and uninformed nodes).
	InformedSlots []int
	// Trajectory[s] is the number of informed nodes after slot s. Only
	// recorded when requested.
	Trajectory []int
}

// RunConfig configures the convenience runner.
type RunConfig struct {
	// MaxSlots bounds the execution. Zero means the theoretical bound
	// SlotBound(n, c, k, DefaultKappa).
	MaxSlots int
	// Trajectory requests per-slot informed counts.
	Trajectory bool
	// UntilAllInformed stops the run as soon as every node is informed
	// (measuring completion time); otherwise the run uses the full slot
	// budget (measuring the fixed-horizon protocol).
	UntilAllInformed bool
	// Collisions selects the engine's contention semantics (default: the
	// paper's uniform-winner model). The stronger all-delivered model of
	// footnote 3 is available for ablations.
	Collisions sim.CollisionModel
	// Observer, when non-nil, receives per-slot channel outcomes (e.g. a
	// metrics.Collector).
	Observer sim.Observer
	// Trace, when non-nil, receives the run's structured event stream
	// (TRACE.md): per-slot channel outcomes plus epidemic progress and
	// per-node informed events. Nil disables tracing at zero cost.
	Trace trace.Sink
	// Check attaches the invariant oracle: the assignment's k-overlap
	// contract is re-verified, every slot's channel outcomes are re-checked
	// against the collision model, and the resulting distribution tree is
	// validated. A violation fails the run. Disabled (the default) it costs
	// nothing; see package invariant.
	Check bool
	// Shards splits the engine's per-slot protocol scan across that many
	// goroutines (sim.WithShards). Results are byte-identical at any value;
	// 0 or 1 means serial.
	Shards int
	// Sparse enables event-driven stepping (sim.WithSparse). COGCAST nodes
	// draw a channel every slot, so they never declare dormancy; what the
	// sparse engine still buys here is exact done-node retirement and an
	// O(1) AllDone. The big wins belong to protocols with quiescent phases
	// (COGCOMP's census, the hopping baseline). Byte-identical either way.
	Sparse bool
	// Context, when non-nil, is checked at every slot boundary
	// (sim.WithContext): a done context stops the run with a
	// *sim.Interrupted error carrying the slots completed. Runs that
	// complete are byte-identical with or without one.
	Context context.Context
}

// Arena holds the reusable pieces of a COGCAST execution — nodes, their
// protocol slice, the engine, and trace scratch — so repeated trials can run
// without rebuilding them. The zero value is ready to use; Arena.Run on a
// warm arena is byte-identical to the package-level Run. Arenas are not safe
// for concurrent use: parallel trial runners keep one per worker.
type Arena struct {
	nodes       []*Node
	protos      []sim.Protocol
	eng         *sim.Engine
	wasInformed []bool
	opts        []sim.Option
	forceCheck  bool
	ctx         context.Context
	checker     *invariant.Checker
}

// SetCheck forces invariant checking for every subsequent Run on this
// arena, regardless of RunConfig.Check — how the experiment harness turns
// one -check flag into oracle coverage of every trial without threading a
// flag through each run-configuration site.
func (a *Arena) SetCheck(on bool) { a.forceCheck = on }

// SetContext attaches a context to every subsequent Run on this arena that
// does not carry its own RunConfig.Context — how the experiment harness
// makes a whole suite cancellable without threading a context through each
// run-configuration site (the SetCheck pattern).
func (a *Arena) SetContext(ctx context.Context) { a.ctx = ctx }

// Checker returns the arena's invariant checker, non-nil once a checked
// run has happened. Its winner-uniformity tallies pool across all of the
// arena's checked runs (see invariant.Checker.Uniformity).
func (a *Arena) Checker() *invariant.Checker { return a.checker }

// Nodes exposes the per-node protocol state of the most recent Run; entry i
// is valid until the arena's next trial. COGCOMP's phases read these.
func (a *Arena) Nodes() []*Node { return a.nodes }

// runContext picks the effective run context: the per-run config wins,
// then the arena-wide default, then none.
func runContext(cfg, arena context.Context) context.Context {
	if cfg != nil {
		return cfg
	}
	return arena
}

// build (re)initializes n nodes and the engine for one trial. nodeOpts apply
// to every node (COGCOMP passes WithRecording).
func (a *Arena) build(asn sim.Assignment, source sim.NodeID, payload sim.Message, seed int64, engOpts []sim.Option, nodeOpts ...Option) error {
	n := asn.Nodes()
	if cap(a.nodes) < n {
		a.nodes = append(a.nodes[:cap(a.nodes)], make([]*Node, n-cap(a.nodes))...)
		a.protos = make([]sim.Protocol, n)
	}
	a.nodes = a.nodes[:n]
	a.protos = a.protos[:n]
	for i := range a.nodes {
		if a.nodes[i] == nil {
			a.nodes[i] = &Node{}
		}
		a.nodes[i].Reinit(sim.View(asn, sim.NodeID(i)), sim.NodeID(i) == source, payload, seed, nodeOpts...)
		a.protos[i] = a.nodes[i]
	}
	if a.eng == nil {
		eng, err := sim.NewEngine(asn, a.protos, seed, engOpts...)
		if err != nil {
			return err
		}
		a.eng = eng
		return nil
	}
	return a.eng.Reset(asn, a.protos, seed, engOpts...)
}

// Run executes COGCAST exactly as the package-level Run does, reusing the
// arena's nodes and engine.
func (a *Arena) Run(asn sim.Assignment, source sim.NodeID, payload sim.Message, seed int64, cfg RunConfig) (*Result, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("cogcast: source %d outside [0,%d)", source, n)
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = SlotBound(n, asn.PerNode(), asn.MinOverlap(), DefaultKappa)
	}

	check := cfg.Check || a.forceCheck
	a.opts = append(a.opts[:0], sim.WithCollisionModel(cfg.Collisions))
	if cfg.Shards > 1 {
		a.opts = append(a.opts, sim.WithShards(cfg.Shards))
	}
	if cfg.Sparse {
		a.opts = append(a.opts, sim.WithSparse())
	}
	if ctx := runContext(cfg.Context, a.ctx); ctx != nil {
		a.opts = append(a.opts, sim.WithContext(ctx))
	}
	obs := cfg.Observer
	if cfg.Trace != nil {
		obs = sim.Tee(obs, trace.NewRecorder(cfg.Trace))
	}
	if check {
		if err := invariant.CheckAssignment(asn, 0); err != nil {
			return nil, fmt.Errorf("cogcast: %w", err)
		}
		if a.checker == nil {
			a.checker = new(invariant.Checker)
		}
		a.checker.Reset(asn, cfg.Collisions)
		obs = sim.Tee(obs, a.checker)
	}
	if obs != nil {
		a.opts = append(a.opts, sim.WithObserver(obs))
	}
	if err := a.build(asn, source, payload, seed, a.opts); err != nil {
		return nil, err
	}
	nodes, eng := a.nodes, a.eng

	informed := func() int {
		count := 0
		for _, nd := range nodes {
			if nd.Informed() {
				count++
			}
		}
		return count
	}

	// Tracing tracks which nodes are newly informed after each slot so it
	// can emit per-node informed events and the epidemic-progress curve.
	var wasInformed []bool
	if cfg.Trace != nil {
		if cap(a.wasInformed) < n {
			a.wasInformed = make([]bool, n)
		}
		wasInformed = a.wasInformed[:n]
		for i, nd := range nodes {
			wasInformed[i] = nd.Informed()
		}
		cfg.Trace.Emit(trace.ProgressEvent(-1, informed(), n))
	}

	res := &Result{}
	for eng.Slot() < maxSlots {
		if cfg.UntilAllInformed && informed() == n {
			break
		}
		if err := eng.RunSlot(); err != nil {
			return nil, err
		}
		if cfg.Trajectory {
			res.Trajectory = append(res.Trajectory, informed())
		}
		if cfg.Trace != nil {
			slot := eng.Slot() - 1
			changed := false
			for i, nd := range nodes {
				if !wasInformed[i] && nd.Informed() {
					wasInformed[i] = true
					changed = true
					cfg.Trace.Emit(trace.InformedEvent(slot, i, int(nd.Parent()), nd.InformedChannel()))
				}
			}
			if changed {
				cfg.Trace.Emit(trace.ProgressEvent(slot, informed(), n))
			}
		}
	}

	res.Slots = eng.Slot()
	res.AllInformed = informed() == n
	res.Parents = make([]sim.NodeID, n)
	res.InformedSlots = make([]int, n)
	for i, nd := range nodes {
		res.Parents[i] = nd.Parent()
		res.InformedSlots[i] = nd.InformedSlot()
	}
	if check {
		if err := a.checker.Err(); err != nil {
			return nil, fmt.Errorf("cogcast: slot oracle (%d violations): %w", a.checker.Violations(), err)
		}
		if err := invariant.CheckBroadcastTree(n, source, res.Parents, res.InformedSlots, res.AllInformed); err != nil {
			return nil, fmt.Errorf("cogcast: %w", err)
		}
	}
	return res, nil
}

// Run executes COGCAST over the assignment with the given source node and
// returns the outcome. It is the harness used by experiments, baselines
// comparisons, and the public API. Repeated callers should prefer a reusable
// Arena; this convenience builds a fresh one per call.
func Run(asn sim.Assignment, source sim.NodeID, payload sim.Message, seed int64, cfg RunConfig) (*Result, error) {
	return new(Arena).Run(asn, source, payload, seed, cfg)
}
