package cogcast

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
	"github.com/cogradio/crn/internal/trace"
)

// Result reports one COGCAST execution.
type Result struct {
	// Slots is the number of slots executed.
	Slots int
	// AllInformed reports whether every node held the message at the end.
	AllInformed bool
	// Parents[v] is the node that informed v (sim.None for the source and
	// for uninformed nodes). This is the distribution tree of Section 5.
	Parents []sim.NodeID
	// InformedSlots[v] is the slot in which v was first informed (-1 for
	// the source and uninformed nodes).
	InformedSlots []int
	// Trajectory[s] is the number of informed nodes after slot s. Only
	// recorded when requested.
	Trajectory []int
}

// RunConfig configures the convenience runner.
type RunConfig struct {
	// MaxSlots bounds the execution. Zero means the theoretical bound
	// SlotBound(n, c, k, DefaultKappa).
	MaxSlots int
	// Trajectory requests per-slot informed counts.
	Trajectory bool
	// UntilAllInformed stops the run as soon as every node is informed
	// (measuring completion time); otherwise the run uses the full slot
	// budget (measuring the fixed-horizon protocol).
	UntilAllInformed bool
	// Collisions selects the engine's contention semantics (default: the
	// paper's uniform-winner model). The stronger all-delivered model of
	// footnote 3 is available for ablations.
	Collisions sim.CollisionModel
	// Observer, when non-nil, receives per-slot channel outcomes (e.g. a
	// metrics.Collector).
	Observer sim.Observer
	// Trace, when non-nil, receives the run's structured event stream
	// (TRACE.md): per-slot channel outcomes plus epidemic progress and
	// per-node informed events. Nil disables tracing at zero cost.
	Trace trace.Sink
}

// Run executes COGCAST over the assignment with the given source node and
// returns the outcome. It is the harness used by experiments, baselines
// comparisons, and the public API.
func Run(asn sim.Assignment, source sim.NodeID, payload sim.Message, seed int64, cfg RunConfig) (*Result, error) {
	n := asn.Nodes()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("cogcast: source %d outside [0,%d)", source, n)
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = SlotBound(n, asn.PerNode(), asn.MinOverlap(), DefaultKappa)
	}

	nodes := make([]*Node, n)
	protos := make([]sim.Protocol, n)
	for i := range nodes {
		nodes[i] = New(sim.View(asn, sim.NodeID(i)), sim.NodeID(i) == source, payload, seed)
		protos[i] = nodes[i]
	}
	opts := []sim.Option{sim.WithCollisionModel(cfg.Collisions)}
	obs := cfg.Observer
	if cfg.Trace != nil {
		obs = sim.Tee(obs, trace.NewRecorder(cfg.Trace))
	}
	if obs != nil {
		opts = append(opts, sim.WithObserver(obs))
	}
	eng, err := sim.NewEngine(asn, protos, seed, opts...)
	if err != nil {
		return nil, err
	}

	informed := func() int {
		count := 0
		for _, nd := range nodes {
			if nd.Informed() {
				count++
			}
		}
		return count
	}

	// Tracing tracks which nodes are newly informed after each slot so it
	// can emit per-node informed events and the epidemic-progress curve.
	var wasInformed []bool
	if cfg.Trace != nil {
		wasInformed = make([]bool, n)
		for i, nd := range nodes {
			wasInformed[i] = nd.Informed()
		}
		cfg.Trace.Emit(trace.ProgressEvent(-1, informed(), n))
	}

	res := &Result{}
	for eng.Slot() < maxSlots {
		if cfg.UntilAllInformed && informed() == n {
			break
		}
		if err := eng.RunSlot(); err != nil {
			return nil, err
		}
		if cfg.Trajectory {
			res.Trajectory = append(res.Trajectory, informed())
		}
		if cfg.Trace != nil {
			slot := eng.Slot() - 1
			changed := false
			for i, nd := range nodes {
				if !wasInformed[i] && nd.Informed() {
					wasInformed[i] = true
					changed = true
					cfg.Trace.Emit(trace.InformedEvent(slot, i, int(nd.Parent()), nd.InformedChannel()))
				}
			}
			if changed {
				cfg.Trace.Emit(trace.ProgressEvent(slot, informed(), n))
			}
		}
	}

	res.Slots = eng.Slot()
	res.AllInformed = informed() == n
	res.Parents = make([]sim.NodeID, n)
	res.InformedSlots = make([]int, n)
	for i, nd := range nodes {
		res.Parents[i] = nd.Parent()
		res.InformedSlots[i] = nd.InformedSlot()
	}
	return res, nil
}
