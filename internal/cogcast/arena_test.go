package cogcast_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/cogcast"
	"github.com/cogradio/crn/internal/sim"
)

// TestArenaMatchesFresh is the reuse-vs-fresh equivalence test for COGCAST:
// a warm arena cycling through trials of varying seeds, shapes and configs
// must reproduce every fresh Run result exactly.
func TestArenaMatchesFresh(t *testing.T) {
	arena := &cogcast.Arena{}
	shapes := []struct{ n, c, k, C int }{
		{16, 6, 2, 24},
		{8, 4, 2, 16},
		{32, 6, 2, 24},
	}
	for trial := 0; trial < 6; trial++ {
		sh := shapes[trial%len(shapes)]
		seed := int64(100 + trial)
		asn, err := assign.SharedCore(sh.n, sh.c, sh.k, sh.C, assign.LocalLabels, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cogcast.RunConfig{UntilAllInformed: trial%2 == 0, Trajectory: true}
		want, err := cogcast.Run(asn, 0, "m", seed, cfg)
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		got, err := arena.Run(asn, 0, "m", seed, cfg)
		if err != nil {
			t.Fatalf("trial %d arena: %v", trial, err)
		}
		if got.Slots != want.Slots || got.AllInformed != want.AllInformed {
			t.Fatalf("trial %d: (slots=%d informed=%v) != fresh (slots=%d informed=%v)",
				trial, got.Slots, got.AllInformed, want.Slots, want.AllInformed)
		}
		for i := range want.Parents {
			if got.Parents[i] != want.Parents[i] || got.InformedSlots[i] != want.InformedSlots[i] {
				t.Fatalf("trial %d node %d: parent/slot (%d,%d) != fresh (%d,%d)", trial, i,
					got.Parents[i], got.InformedSlots[i], want.Parents[i], want.InformedSlots[i])
			}
		}
		if len(got.Trajectory) != len(want.Trajectory) {
			t.Fatalf("trial %d: trajectory length %d != %d", trial, len(got.Trajectory), len(want.Trajectory))
		}
		for s := range want.Trajectory {
			if got.Trajectory[s] != want.Trajectory[s] {
				t.Fatalf("trial %d slot %d: trajectory %d != %d", trial, s, got.Trajectory[s], want.Trajectory[s])
			}
		}
	}
}

// TestReinitMatchesNew pins the node-level contract directly: a node that
// has stepped through a run and is then reinitialized must draw the same
// channel sequence as a fresh node.
func TestReinitMatchesNew(t *testing.T) {
	asn, err := assign.FullOverlap(4, 8, assign.LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	view := sim.View(asn, 1)
	used := cogcast.New(view, false, nil, 1, cogcast.WithRecording())
	for s := 0; s < 50; s++ {
		used.Step(s)
	}
	used.Reinit(view, true, "p", 9, cogcast.WithRecording())
	fresh := cogcast.New(view, true, "p", 9, cogcast.WithRecording())
	for s := 0; s < 50; s++ {
		a, b := used.Step(s), fresh.Step(s)
		if a.Op != b.Op || a.Channel != b.Channel {
			t.Fatalf("slot %d: reinit action (%v,%d) != fresh (%v,%d)", s, a.Op, a.Channel, b.Op, b.Channel)
		}
	}
	if len(used.Records()) != len(fresh.Records()) {
		t.Fatalf("record count %d != %d", len(used.Records()), len(fresh.Records()))
	}
}
