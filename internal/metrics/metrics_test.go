package metrics_test

import (
	"math"
	"strings"
	"testing"

	"github.com/cogradio/crn/internal/metrics"
	"github.com/cogradio/crn/internal/sim"
)

func TestCollectorCounts(t *testing.T) {
	var c metrics.Collector
	// Slot 0: channel 0 has 2 broadcasters + 1 listener (collision,
	// delivery); channel 1 has 1 listener, no broadcasters (wasted).
	c.OnSlot(0, []sim.ChannelOutcome{
		{Channel: 0, Broadcasters: []sim.NodeID{1, 2}, Winner: 1, Listeners: []sim.NodeID{3}},
		{Channel: 1, Listeners: []sim.NodeID{4}, Winner: sim.None},
	})
	// Slot 1: channel 0 has 1 broadcaster, 2 listeners.
	c.OnSlot(1, []sim.ChannelOutcome{
		{Channel: 0, Broadcasters: []sim.NodeID{5}, Winner: 5, Listeners: []sim.NodeID{6, 7}},
	})
	m := c.Snapshot()
	if m.Slots != 2 {
		t.Errorf("Slots = %d", m.Slots)
	}
	if m.BusyChannelsPerSlot != 1.0 {
		t.Errorf("BusyChannelsPerSlot = %v, want 1.0 (2 busy channels over 2 slots)", m.BusyChannelsPerSlot)
	}
	if m.CollisionRate != 0.5 {
		t.Errorf("CollisionRate = %v, want 0.5", m.CollisionRate)
	}
	// Listens: 1 delivered + 1 wasted + 2 delivered = 3/4 delivery.
	if m.DeliveryRate != 0.75 {
		t.Errorf("DeliveryRate = %v, want 0.75", m.DeliveryRate)
	}
	if m.BroadcastsPerSlot != 1.5 {
		t.Errorf("BroadcastsPerSlot = %v, want 1.5", m.BroadcastsPerSlot)
	}
}

func TestZeroValueSnapshot(t *testing.T) {
	var c metrics.Collector
	m := c.Snapshot()
	if m.Slots != 0 || m.CollisionRate != 0 || m.DeliveryRate != 0 {
		t.Errorf("zero snapshot = %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	var c metrics.Collector
	c.OnSlot(0, []sim.ChannelOutcome{
		{Channel: 0, Broadcasters: []sim.NodeID{1}, Winner: 1, Listeners: []sim.NodeID{2}},
	})
	s := c.Snapshot().String()
	if !strings.Contains(s, "slots=1") || !strings.Contains(s, "delivery=100%") {
		t.Errorf("String() = %q", s)
	}
}

// TestCollectorEdgeCases drives Snapshot through the degenerate inputs a
// real run can produce — no slots, slots with no outcomes, all-silent
// channels, broadcaster-only channels — and pins that every rate stays a
// finite number (the zero-denominator guards hold).
func TestCollectorEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		slots [][]sim.ChannelOutcome
		want  metrics.Metrics
	}{
		{
			name:  "empty collector",
			slots: nil,
			want:  metrics.Metrics{},
		},
		{
			name:  "slots without outcomes",
			slots: [][]sim.ChannelOutcome{nil, {}},
			want:  metrics.Metrics{Slots: 2},
		},
		{
			name: "all listeners, silent medium",
			slots: [][]sim.ChannelOutcome{{
				{Channel: 0, Winner: sim.None, Listeners: []sim.NodeID{1, 2}},
				{Channel: 3, Winner: sim.None, Listeners: []sim.NodeID{4}},
			}},
			want: metrics.Metrics{Slots: 1},
		},
		{
			name: "broadcasters without listeners",
			slots: [][]sim.ChannelOutcome{{
				{Channel: 0, Broadcasters: []sim.NodeID{1}, Winner: 1},
			}},
			want: metrics.Metrics{Slots: 1, BusyChannelsPerSlot: 1, BroadcastsPerSlot: 1},
		},
		{
			name: "single contended channel",
			slots: [][]sim.ChannelOutcome{{
				{Channel: 0, Broadcasters: []sim.NodeID{1, 2, 3}, Winner: 2},
			}},
			want: metrics.Metrics{Slots: 1, BusyChannelsPerSlot: 1, CollisionRate: 1, BroadcastsPerSlot: 3},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var col metrics.Collector
			for i, outcomes := range c.slots {
				col.OnSlot(i, outcomes)
			}
			got := col.Snapshot()
			if got != c.want {
				t.Errorf("Snapshot() = %+v, want %+v", got, c.want)
			}
			for name, v := range map[string]float64{
				"BusyChannelsPerSlot": got.BusyChannelsPerSlot,
				"CollisionRate":       got.CollisionRate,
				"DeliveryRate":        got.DeliveryRate,
				"BroadcastsPerSlot":   got.BroadcastsPerSlot,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			if s := got.String(); strings.Contains(s, "NaN") {
				t.Errorf("String() leaked NaN: %q", s)
			}
		})
	}
}
