// Package metrics collects per-slot medium statistics from an engine run
// via the sim.Observer hook: how many channels carried traffic, how often
// broadcasts collided, how many listens paid off. These quantities explain
// the paper's headline gaps — e.g. rendezvous broadcast wastes a factor c
// of listening slots compared to COGCAST's epidemic, which experiment E21
// makes visible as medium utilization.
package metrics

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// Collector accumulates medium statistics. It implements sim.Observer and
// is attached with sim.WithObserver. The zero value is ready to use.
type Collector struct {
	slots         int
	busyChannels  int64 // channels with >= 1 broadcaster
	collided      int64 // channels with >= 2 broadcasters
	broadcasts    int64 // individual transmissions
	deliveries    int64 // listener receptions (listener on a busy channel)
	wastedListens int64 // listeners on silent channels
}

var _ sim.Observer = (*Collector)(nil)

// OnSlot implements sim.Observer.
func (c *Collector) OnSlot(_ int, outcomes []sim.ChannelOutcome) {
	c.slots++
	for _, oc := range outcomes {
		b := len(oc.Broadcasters)
		l := len(oc.Listeners)
		c.broadcasts += int64(b)
		if b == 0 {
			c.wastedListens += int64(l)
			continue
		}
		c.busyChannels++
		if b > 1 {
			c.collided++
		}
		c.deliveries += int64(l)
	}
}

// Metrics is a finished summary of a run.
type Metrics struct {
	// Slots observed.
	Slots int
	// BusyChannelsPerSlot is the mean number of channels carrying at least
	// one transmission per slot.
	BusyChannelsPerSlot float64
	// CollisionRate is the fraction of busy channels with 2+ broadcasters.
	CollisionRate float64
	// DeliveryRate is the fraction of listen actions that received a
	// message — the medium's usefulness from a receiver's perspective.
	DeliveryRate float64
	// BroadcastsPerSlot is the mean number of transmissions per slot.
	BroadcastsPerSlot float64
}

// Snapshot computes the summary so far.
func (c *Collector) Snapshot() Metrics {
	m := Metrics{Slots: c.slots}
	if c.slots > 0 {
		m.BusyChannelsPerSlot = float64(c.busyChannels) / float64(c.slots)
		m.BroadcastsPerSlot = float64(c.broadcasts) / float64(c.slots)
	}
	if c.busyChannels > 0 {
		m.CollisionRate = float64(c.collided) / float64(c.busyChannels)
	}
	if listens := c.deliveries + c.wastedListens; listens > 0 {
		m.DeliveryRate = float64(c.deliveries) / float64(listens)
	}
	return m
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("slots=%d busy/slot=%.2f collisions=%.0f%% delivery=%.0f%%",
		m.Slots, m.BusyChannelsPerSlot, 100*m.CollisionRate, 100*m.DeliveryRate)
}
