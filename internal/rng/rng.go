// Package rng provides deterministic seed derivation for simulations.
//
// Every entity in a simulation (the engine, each node, each trial of an
// experiment) needs its own independent random stream, yet the whole run
// must be reproducible from a single root seed. Deriving child seeds by
// simple arithmetic (seed+i) produces badly correlated math/rand streams;
// instead we mix identifiers through SplitMix64, the finalizer used to seed
// xoshiro-family generators, which decorrelates even adjacent inputs.
package rng

import "math/rand"

// splitMix64 advances a SplitMix64 state and returns the next output.
// See Steele, Lea, Flood: "Fast splittable pseudorandom number generators"
// (OOPSLA 2014). It is a bijective finalizer with strong avalanche behavior.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive mixes a root seed with a sequence of stream identifiers and returns
// a child seed. Derive(s, a, b) and Derive(s, a, c) are decorrelated for
// b != c, and Derive is deterministic in all arguments.
func Derive(seed int64, ids ...int64) int64 {
	x := uint64(seed)
	for _, id := range ids {
		x = splitMix64(x ^ splitMix64(uint64(id)))
	}
	return int64(splitMix64(x))
}

// Uniform01 returns a deterministic pseudo-uniform float64 in [0, 1)
// derived from the seed and ids — a one-shot draw that avoids constructing
// a rand.Rand when a single decision is needed (e.g. per-slot fault coins).
func Uniform01(seed int64, ids ...int64) float64 {
	return float64(uint64(Derive(seed, ids...))>>11) / float64(1<<53)
}

// New returns a rand.Rand seeded by Derive(seed, ids...). Each returned
// generator is private to the caller and must not be shared across
// goroutines without synchronization.
func New(seed int64, ids ...int64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, ids...)))
}

// Reseed re-seeds r so that its subsequent draws are exactly those of a
// fresh New(seed, ids...). Reusing one generator this way is what lets trial
// arenas regenerate per-trial state without allocating a new ~5 KB source
// per entity while keeping every stream byte-identical to the fresh path.
func Reseed(r *rand.Rand, seed int64, ids ...int64) {
	r.Seed(Derive(seed, ids...))
}

// PermInto writes a pseudo-random permutation of [0, n) into dst (grown if
// its capacity is short) and returns dst[:n]. The algorithm mirrors
// rand.Rand.Perm exactly, so the values produced and the draws consumed from
// r are identical to r.Perm(n) — the function exists so hot setup paths can
// reuse one backing array across regenerations.
func PermInto(r *rand.Rand, dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	// The i=0 iteration is kept even though it always writes 0: Intn(1)
	// consumes a draw, and skipping it would shift every later stream.
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}
