package rng

import (
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	f := func(seed, a, b int64) bool {
		return Derive(seed, a, b) == Derive(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveDistinctIDsDistinctSeeds(t *testing.T) {
	// Adjacent ids must not collide: collisions would silently correlate
	// node random streams and bias every experiment.
	seen := make(map[int64]int64, 1<<16)
	for i := int64(0); i < 1<<16; i++ {
		s := Derive(42, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("Derive(42, %d) == Derive(42, %d) == %d", i, prev, s)
		}
		seen[s] = i
	}
}

func TestDeriveDependsOnEveryArgument(t *testing.T) {
	base := Derive(1, 2, 3)
	if Derive(2, 2, 3) == base {
		t.Error("changing seed did not change derived value")
	}
	if Derive(1, 3, 3) == base {
		t.Error("changing first id did not change derived value")
	}
	if Derive(1, 2, 4) == base {
		t.Error("changing second id did not change derived value")
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	if Derive(7, 1, 2) == Derive(7, 2, 1) {
		t.Error("Derive must be order sensitive: (1,2) collided with (2,1)")
	}
}

func TestNewStreamsDiffer(t *testing.T) {
	a, b := New(9, 0), New(9, 1)
	same := 0
	const draws = 64
	for i := 0; i < draws; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams for distinct ids produced %d/%d identical draws", same, draws)
	}
}

func TestNewReproducible(t *testing.T) {
	a, b := New(123, 4, 5), New(123, 4, 5)
	for i := 0; i < 32; i++ {
		if got, want := a.Int63(), b.Int63(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestReseedMatchesFresh(t *testing.T) {
	// A re-seeded generator must be draw-for-draw identical to a fresh one:
	// trial arenas rely on this to reuse one source across trials without
	// perturbing any stream.
	r := New(1, 2, 3)
	r.Int63() // advance past the fresh state
	for trial := int64(0); trial < 4; trial++ {
		Reseed(r, 99, trial, 0xab)
		fresh := New(99, trial, 0xab)
		for i := 0; i < 32; i++ {
			if got, want := r.Int63(), fresh.Int63(); got != want {
				t.Fatalf("trial %d draw %d: reseeded %d != fresh %d", trial, i, got, want)
			}
		}
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	// PermInto must produce rand.Perm's values AND consume exactly the same
	// number of draws — an off-by-one there shifts every downstream stream.
	var buf []int
	for _, n := range []int{0, 1, 2, 7, 64, 607} {
		a, b := New(5, int64(n)), New(5, int64(n))
		want := a.Perm(n)
		buf = PermInto(b, buf, n)
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d index %d: PermInto %d != Perm %d", n, i, buf[i], want[i])
			}
		}
		if got, wantNext := b.Int63(), a.Int63(); got != wantNext {
			t.Fatalf("n=%d: draw count diverged (next draw %d != %d)", n, got, wantNext)
		}
	}
}

func TestPermIntoReusesBacking(t *testing.T) {
	buf := make([]int, 0, 64)
	out := PermInto(New(3), buf, 64)
	if &out[0] != &buf[:1][0] {
		t.Fatal("PermInto allocated despite sufficient capacity")
	}
	out2 := PermInto(New(3), out, 16)
	if len(out2) != 16 || &out2[0] != &out[0] {
		t.Fatal("PermInto did not reuse backing for a smaller permutation")
	}
}

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference outputs for state 0 and 1 from the canonical SplitMix64
	// implementation (Vigna). Guards against silent constant typos.
	cases := []struct {
		in, want uint64
	}{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
	}
	for _, c := range cases {
		if got := splitMix64(c.in); got != c.want {
			t.Errorf("splitMix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestUniform01Range(t *testing.T) {
	for i := int64(0); i < 1000; i++ {
		v := Uniform01(42, i)
		if v < 0 || v >= 1 {
			t.Fatalf("Uniform01 out of range: %v", v)
		}
	}
}

func TestUniform01RoughlyUniform(t *testing.T) {
	below := 0
	const draws = 10000
	for i := int64(0); i < draws; i++ {
		if Uniform01(7, i) < 0.3 {
			below++
		}
	}
	if below < draws*25/100 || below > draws*35/100 {
		t.Errorf("P(X < 0.3) ≈ %.3f, want ≈ 0.3", float64(below)/draws)
	}
}
