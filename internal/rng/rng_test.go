package rng

import (
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	f := func(seed, a, b int64) bool {
		return Derive(seed, a, b) == Derive(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveDistinctIDsDistinctSeeds(t *testing.T) {
	// Adjacent ids must not collide: collisions would silently correlate
	// node random streams and bias every experiment.
	seen := make(map[int64]int64, 1<<16)
	for i := int64(0); i < 1<<16; i++ {
		s := Derive(42, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("Derive(42, %d) == Derive(42, %d) == %d", i, prev, s)
		}
		seen[s] = i
	}
}

func TestDeriveDependsOnEveryArgument(t *testing.T) {
	base := Derive(1, 2, 3)
	if Derive(2, 2, 3) == base {
		t.Error("changing seed did not change derived value")
	}
	if Derive(1, 3, 3) == base {
		t.Error("changing first id did not change derived value")
	}
	if Derive(1, 2, 4) == base {
		t.Error("changing second id did not change derived value")
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	if Derive(7, 1, 2) == Derive(7, 2, 1) {
		t.Error("Derive must be order sensitive: (1,2) collided with (2,1)")
	}
}

func TestNewStreamsDiffer(t *testing.T) {
	a, b := New(9, 0), New(9, 1)
	same := 0
	const draws = 64
	for i := 0; i < draws; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams for distinct ids produced %d/%d identical draws", same, draws)
	}
}

func TestNewReproducible(t *testing.T) {
	a, b := New(123, 4, 5), New(123, 4, 5)
	for i := 0; i < 32; i++ {
		if got, want := a.Int63(), b.Int63(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference outputs for state 0 and 1 from the canonical SplitMix64
	// implementation (Vigna). Guards against silent constant typos.
	cases := []struct {
		in, want uint64
	}{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
	}
	for _, c := range cases {
		if got := splitMix64(c.in); got != c.want {
			t.Errorf("splitMix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestUniform01Range(t *testing.T) {
	for i := int64(0); i < 1000; i++ {
		v := Uniform01(42, i)
		if v < 0 || v >= 1 {
			t.Fatalf("Uniform01 out of range: %v", v)
		}
	}
}

func TestUniform01RoughlyUniform(t *testing.T) {
	below := 0
	const draws = 10000
	for i := int64(0); i < draws; i++ {
		if Uniform01(7, i) < 0.3 {
			below++
		}
	}
	if below < draws*25/100 || below > draws*35/100 {
		t.Errorf("P(X < 0.3) ≈ %.3f, want ≈ 0.3", float64(below)/draws)
	}
}
