package assign

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

// bruteContains re-derives membership straight from the forward sets.
func bruteContains(s *Static, u sim.NodeID, ch int) bool {
	for _, c := range s.ChannelSet(u, 0) {
		if c == ch {
			return true
		}
	}
	return false
}

// TestIndexMembersMatchForwardSets cross-checks the reverse index against
// the forward representation on a dense topology: every channel's member
// list is node-ascending, memberships total n·c, Degree sums match, and
// Contains agrees with a direct set scan for every (node, channel) pair.
func TestIndexMembersMatchForwardSets(t *testing.T) {
	asn, err := SharedCore(50, 8, 3, 32, LocalLabels, 7)
	if err != nil {
		t.Fatal(err)
	}
	idx := asn.Index()
	if !idx.HasBitsets() {
		t.Error("shared-core C=32, c=8 should carry bitsets")
	}
	if got, want := idx.Memberships(), 50*8; got != want {
		t.Fatalf("Memberships() = %d, want %d", got, want)
	}
	degreeSum := 0
	for ch := 0; ch < asn.Channels(); ch++ {
		ms := idx.Members(ch)
		degreeSum += idx.Degree(ch)
		for i, m := range ms {
			if i > 0 && ms[i-1] >= m {
				t.Fatalf("channel %d members not strictly ascending: %v", ch, ms)
			}
			if !bruteContains(asn, sim.NodeID(m), ch) {
				t.Fatalf("index lists node %d on channel %d but its set lacks it", m, ch)
			}
		}
	}
	if degreeSum != idx.Memberships() {
		t.Errorf("sum of degrees %d != memberships %d", degreeSum, idx.Memberships())
	}
	for u := 0; u < asn.Nodes(); u++ {
		for ch := -1; ch <= asn.Channels(); ch++ {
			if got, want := idx.Contains(sim.NodeID(u), ch), bruteContains(asn, sim.NodeID(u), ch); got != want {
				t.Fatalf("Contains(%d, %d) = %v, want %v", u, ch, got, want)
			}
		}
	}
	if idx.Contains(-1, 0) || idx.Contains(sim.NodeID(asn.Nodes()), 0) {
		t.Error("Contains accepted an out-of-range node")
	}
	if idx.Members(-1) != nil || idx.Members(asn.Channels()+10) != nil {
		t.Error("Members returned nodes for an out-of-range channel")
	}
}

// TestIndexBitsetElision pins the density heuristic on both sides: a
// shared-core spectrum keeps bitsets, a large partitioned spectrum
// (C = k + n·(c−k) ≫ 128·c) elides them, and on the elided side Contains
// (binary search) still agrees with the forward sets.
func TestIndexBitsetElision(t *testing.T) {
	dense, err := SharedCore(64, 6, 2, 24, LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Index().HasBitsets() {
		t.Error("dense spectrum lost its bitsets")
	}
	sparse, err := Partitioned(256, 6, 2, LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx := sparse.Index()
	if idx.HasBitsets() {
		t.Errorf("partitioned C=%d should elide bitsets", sparse.Channels())
	}
	for u := 0; u < sparse.Nodes(); u++ {
		for _, ch := range sparse.ChannelSet(sim.NodeID(u), 0) {
			if !idx.Contains(sim.NodeID(u), ch) {
				t.Fatalf("binary-search Contains(%d, %d) = false for a held channel", u, ch)
			}
		}
		// A private channel of the next node is never shared.
		v := (u + 1) % sparse.Nodes()
		for _, ch := range sparse.ChannelSet(sim.NodeID(v), 0) {
			if got, want := idx.Contains(sim.NodeID(u), ch), bruteContains(sparse, sim.NodeID(u), ch); got != want {
				t.Fatalf("Contains(%d, %d) = %v, want %v", u, ch, got, want)
			}
		}
	}
}

// TestIndexMemoryBytes checks the reported footprint against the layout:
// (C+1) offsets and n·c members at 4 bytes, plus n·words bitset words at 8
// when present.
func TestIndexMemoryBytes(t *testing.T) {
	asn, err := SharedCore(40, 8, 3, 32, LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx := asn.Index()
	words := (asn.Channels() + 63) / 64
	want := int64(asn.Channels()+1)*4 + int64(40*8)*4
	if idx.HasBitsets() {
		want += int64(40*words) * 8
	}
	if got := idx.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes() = %d, want %d", got, want)
	}

	sparse, err := Partitioned(256, 6, 2, LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	sidx := sparse.Index()
	swant := int64(sparse.Channels()+1)*4 + int64(256*6)*4
	if got := sidx.MemoryBytes(); got != swant {
		t.Errorf("sparse MemoryBytes() = %d, want %d (no bitset term)", got, swant)
	}
}

// TestIndexInvalidatedByRebuild regenerates a Builder's assignment in place
// and requires the cached index to be dropped: the rebuilt Static's index
// must match a freshly constructed assignment with the new seed, not the old
// sets.
func TestIndexInvalidatedByRebuild(t *testing.T) {
	var b Builder
	first, err := b.SharedCore(32, 6, 2, 24, LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	firstIdx := first.Index()

	rebuilt, err := b.SharedCore(32, 6, 2, 24, LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == first && rebuilt.Index() == firstIdx {
		t.Fatal("builder rebuild kept the previous cached index")
	}
	fresh, err := SharedCore(32, 6, 2, 24, LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	fidx, ridx := fresh.Index(), rebuilt.Index()
	if fidx.Memberships() != ridx.Memberships() {
		t.Fatalf("rebuilt memberships %d != fresh %d", ridx.Memberships(), fidx.Memberships())
	}
	for ch := 0; ch < fresh.Channels(); ch++ {
		f, r := fidx.Members(ch), ridx.Members(ch)
		if len(f) != len(r) {
			t.Fatalf("channel %d: rebuilt degree %d != fresh %d", ch, len(r), len(f))
		}
		for i := range f {
			if f[i] != r[i] {
				t.Fatalf("channel %d member %d: rebuilt %d != fresh %d", ch, i, r[i], f[i])
			}
		}
	}
}

// TestOverlapMatchesBruteForce checks the index-answered Overlap against a
// direct double scan of the forward sets, on both the bitset and the
// binary-search path, and against the construction's k guarantee.
func TestOverlapMatchesBruteForce(t *testing.T) {
	brute := func(s *Static, u, v sim.NodeID) int {
		n := 0
		for _, ch := range s.ChannelSet(u, 0) {
			if bruteContains(s, v, ch) {
				n++
			}
		}
		return n
	}
	dense, err := SharedCore(48, 8, 3, 32, LocalLabels, 9)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Partitioned(256, 6, 2, LocalLabels, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Static{dense, sparse} {
		n := s.Nodes()
		for u := 0; u < n; u++ {
			v := (u*7 + 3) % n
			if u == v {
				continue
			}
			got := s.Overlap(sim.NodeID(u), sim.NodeID(v))
			want := brute(s, sim.NodeID(u), sim.NodeID(v))
			if got != want {
				t.Fatalf("Overlap(%d, %d) = %d, want %d (bitsets=%v)", u, v, got, want, s.Index().HasBitsets())
			}
			if got < s.MinOverlap() {
				t.Fatalf("Overlap(%d, %d) = %d below guaranteed k=%d", u, v, got, s.MinOverlap())
			}
		}
	}
}
