package assign_test

import (
	"testing"

	"github.com/cogradio/crn/internal/assign"
	"github.com/cogradio/crn/internal/invariant"
)

// FuzzBuilder throws arbitrary parameters at every assignment generator
// and pins the k-overlap contract with the independent oracle: whatever a
// generator accepts, the resulting assignment must satisfy the model —
// per-node sets of at most c distinct in-range channels with pairwise
// overlap at least k (invariant.CheckAssignment re-derives membership
// with maps, sharing no code with assign's bitmap validation). Rejected
// parameters (error returns) are fine; building a broken Static is not.
func FuzzBuilder(f *testing.F) {
	f.Add(uint8(0), uint8(16), uint8(4), uint8(2), uint8(0), false, int64(1))
	f.Add(uint8(1), uint8(32), uint8(8), uint8(2), uint8(0), true, int64(7))
	f.Add(uint8(2), uint8(24), uint8(6), uint8(3), uint8(40), false, int64(42))
	f.Add(uint8(3), uint8(5), uint8(12), uint8(2), uint8(0), true, int64(3))
	f.Add(uint8(4), uint8(48), uint8(4), uint8(1), uint8(64), false, int64(9))
	f.Add(uint8(5), uint8(20), uint8(6), uint8(2), uint8(0), true, int64(11))
	f.Add(uint8(6), uint8(16), uint8(4), uint8(2), uint8(24), false, int64(5))
	f.Fuzz(func(t *testing.T, gen, rawN, rawC, rawK, rawTotal uint8, global bool, seed int64) {
		// uint8 inputs keep instances bounded (the oracle's overlap scan is
		// O(n²·c)) while still reaching every validation branch: generators
		// must reject bad parameters rather than build broken assignments.
		n := int(rawN)
		c := int(rawC)
		k := int(rawK)
		total := int(rawTotal)
		model := assign.LocalLabels
		if global {
			model = assign.GlobalLabels
		}
		var b assign.Builder
		checkStatic := func(s *assign.Static, err error) {
			if err != nil {
				return // generator rejected the parameters: acceptable
			}
			if verr := invariant.CheckAssignment(s, 0); verr != nil {
				t.Fatalf("generator %d accepted n=%d c=%d k=%d total=%d seed=%d but built a broken assignment: %v",
					gen%7, n, c, k, total, seed, verr)
			}
		}
		switch gen % 7 {
		case 0:
			checkStatic(b.FullOverlap(n, c, model, seed))
		case 1:
			checkStatic(b.Partitioned(n, c, k, model, seed))
		case 2:
			checkStatic(b.SharedCore(n, c, k, total, model, seed))
		case 3:
			checkStatic(b.PairwiseDedicated(n, c, k, model, seed))
		case 4:
			checkStatic(b.RandomPool(n, c, k, total, model, seed))
		case 5:
			checkStatic(b.TwoSet(n, c, k, model, seed))
		case 6:
			d, err := assign.NewDynamic(n, c, k, total, seed)
			if err != nil {
				return
			}
			// Dynamic re-draws sets per slot; the contract must hold in
			// every slot, not just the first.
			for slot := 0; slot < 4; slot++ {
				if verr := invariant.CheckAssignment(d, slot); verr != nil {
					t.Fatalf("dynamic assignment n=%d c=%d k=%d total=%d seed=%d breaks the contract at slot %d: %v",
						n, c, k, total, seed, slot, verr)
				}
			}
		}
	})
}
