package assign

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/cogradio/crn/internal/sim"
)

func TestFullOverlap(t *testing.T) {
	asn, err := FullOverlap(5, 4, GlobalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	if asn.Nodes() != 5 || asn.Channels() != 4 || asn.PerNode() != 4 || asn.MinOverlap() != 4 {
		t.Fatalf("dims = (%d,%d,%d,%d)", asn.Nodes(), asn.Channels(), asn.PerNode(), asn.MinOverlap())
	}
	// Global labels: every node's local order is the physical order.
	for u := 0; u < 5; u++ {
		set := asn.ChannelSet(sim.NodeID(u), 0)
		for i, ch := range set {
			if ch != i {
				t.Fatalf("node %d local %d -> physical %d, want %d under global labels", u, i, ch, i)
			}
		}
	}
}

func TestFullOverlapLocalLabelsArePermutations(t *testing.T) {
	const n, c = 8, 16
	asn, err := FullOverlap(n, c, LocalLabels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	distinct := 0
	for u := 0; u < n; u++ {
		set := asn.ChannelSet(sim.NodeID(u), 0)
		seen := make(map[int]bool, c)
		sorted := true
		for i, ch := range set {
			if seen[ch] {
				t.Fatalf("node %d repeats channel %d", u, ch)
			}
			seen[ch] = true
			if ch != i {
				sorted = false
			}
		}
		if !sorted {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("local labels left every node in sorted order; permutation not applied")
	}
}

func TestPartitionedStructure(t *testing.T) {
	const n, c, k = 6, 5, 2
	asn, err := Partitioned(n, c, k, LocalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := k + n*(c-k); asn.Channels() != want {
		t.Errorf("C = %d, want %d", asn.Channels(), want)
	}
	// Every pair overlaps on exactly k channels.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if got := asn.Overlap(sim.NodeID(u), sim.NodeID(v)); got != k {
				t.Errorf("overlap(%d,%d) = %d, want exactly %d", u, v, got, k)
			}
		}
	}
}

func TestPartitionedKEqualsC(t *testing.T) {
	// Degenerate case c == k: no private channels at all.
	asn, err := Partitioned(4, 3, 3, GlobalLabels, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	if asn.Channels() != 3 {
		t.Errorf("C = %d, want 3", asn.Channels())
	}
}

func TestSharedCore(t *testing.T) {
	const n, c, k, total = 10, 8, 3, 40
	asn, err := SharedCore(n, c, k, total, LocalLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	if asn.Channels() != total {
		t.Errorf("C = %d, want %d", asn.Channels(), total)
	}
}

func TestSharedCoreRejectsSmallC(t *testing.T) {
	if _, err := SharedCore(4, 8, 2, 7, LocalLabels, 1); err == nil {
		t.Error("C < c accepted")
	}
}

func TestPairwiseDedicated(t *testing.T) {
	const n, k = 4, 2
	c := k*(n-1) + 3 // 9 channels per node, 3 private
	asn, err := PairwiseDedicated(n, c, k, LocalLabels, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every pair overlaps on exactly k: pair channels are dedicated.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if got := asn.Overlap(sim.NodeID(u), sim.NodeID(v)); got != k {
				t.Errorf("overlap(%d,%d) = %d, want exactly %d", u, v, got, k)
			}
		}
	}
	if want := k*n*(n-1)/2 + n*3; asn.Channels() != want {
		t.Errorf("C = %d, want %d", asn.Channels(), want)
	}
}

func TestPairwiseDedicatedRejectsSmallC(t *testing.T) {
	if _, err := PairwiseDedicated(5, 3, 1, LocalLabels, 1); err == nil {
		t.Error("c < k(n-1) accepted")
	}
}

func TestRandomPool(t *testing.T) {
	// c²/C = 256/32 = 8 >= k = 2 comfortably.
	asn, err := RandomPool(6, 16, 2, 32, LocalLabels, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPoolInfeasible(t *testing.T) {
	// Overlap of at least 15 out of 16 channels from a pool of 64 is
	// essentially impossible for a uniform draw; the generator must give up
	// with a useful error.
	_, err := RandomPool(8, 16, 15, 64, LocalLabels, 8)
	if err == nil {
		t.Fatal("infeasible RandomPool succeeded")
	}
	if !strings.Contains(err.Error(), "expected overlap") {
		t.Errorf("error %q should explain the expected overlap", err)
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"zero nodes", mustErr(FullOverlap(0, 3, LocalLabels, 1))},
		{"zero c", mustErr(FullOverlap(3, 0, LocalLabels, 1))},
		{"k too big", mustErr(Partitioned(3, 2, 3, LocalLabels, 1))},
		{"k zero", mustErr(Partitioned(3, 2, 0, LocalLabels, 1))},
		{"bad label model", mustErr(Partitioned(3, 2, 1, LabelModel(0), 1))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func mustErr(_ *Static, err error) error { return err }

func TestValidateCatchesViolations(t *testing.T) {
	bad := &Static{channels: 4, perNode: 2, minOverlap: 1, sets: [][]int{{0, 1}, {2, 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("disjoint sets passed a k=1 validation")
	}
	dup := &Static{channels: 4, perNode: 2, minOverlap: 1, sets: [][]int{{0, 0}, {0, 1}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate channel passed validation")
	}
	oob := &Static{channels: 2, perNode: 2, minOverlap: 1, sets: [][]int{{0, 5}, {0, 1}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range channel passed validation")
	}
	short := &Static{channels: 4, perNode: 3, minOverlap: 1, sets: [][]int{{0, 1}, {0, 1, 2}}}
	if err := short.Validate(); err == nil {
		t.Error("short set passed validation")
	}
}

func TestGeneratorsPropertyQuick(t *testing.T) {
	// Property: for arbitrary small parameters, every generator yields an
	// assignment that passes Validate.
	f := func(nRaw, cRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw%12) + 2
		c := int(cRaw%10) + 1
		k := int(kRaw)%c + 1
		p, err := Partitioned(n, c, k, LocalLabels, seed)
		if err != nil || p.Validate() != nil {
			return false
		}
		s, err := SharedCore(n, c, k, c+8, GlobalLabels, seed)
		if err != nil || s.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, err := SharedCore(6, 8, 2, 24, LocalLabels, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedCore(6, 8, 2, 24, LocalLabels, 99)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		sa, sb := a.ChannelSet(sim.NodeID(u), 0), b.ChannelSet(sim.NodeID(u), 0)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("node %d differs between identically seeded builds", u)
			}
		}
	}
	c, err := SharedCore(6, 8, 2, 24, LocalLabels, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < 6 && same; u++ {
		sa, sc := a.ChannelSet(sim.NodeID(u), 0), c.ChannelSet(sim.NodeID(u), 0)
		for i := range sa {
			if sa[i] != sc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical assignments")
	}
}

func TestLabelModelString(t *testing.T) {
	if LocalLabels.String() != "local" || GlobalLabels.String() != "global" {
		t.Error("LabelModel.String mismatch")
	}
	if LabelModel(0).String() != "invalid" {
		t.Error("zero LabelModel should stringify as invalid")
	}
}

func TestDynamicOverlapEverySlot(t *testing.T) {
	const n, c, k, total = 6, 5, 2, 20
	d, err := NewDynamic(n, c, k, total, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != n || d.Channels() != total || d.PerNode() != c || d.MinOverlap() != k {
		t.Fatalf("dims = (%d,%d,%d,%d)", d.Nodes(), d.Channels(), d.PerNode(), d.MinOverlap())
	}
	for slot := 0; slot < 25; slot++ {
		sets := make([][]int, n)
		for u := 0; u < n; u++ {
			set := d.ChannelSet(sim.NodeID(u), slot)
			if len(set) != c {
				t.Fatalf("slot %d node %d: %d channels, want %d", slot, u, len(set), c)
			}
			seen := make(map[int]bool, c)
			for _, ch := range set {
				if ch < 0 || ch >= total {
					t.Fatalf("slot %d node %d: channel %d out of range", slot, u, ch)
				}
				if seen[ch] {
					t.Fatalf("slot %d node %d: duplicate channel %d", slot, u, ch)
				}
				seen[ch] = true
			}
			sets[u] = append([]int(nil), set...)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if got := overlapSlices(sets[u], sets[v]); got < k {
					t.Fatalf("slot %d: overlap(%d,%d) = %d < k=%d", slot, u, v, got, k)
				}
			}
		}
	}
}

func TestDynamicSetsActuallyChange(t *testing.T) {
	d, err := NewDynamic(4, 6, 1, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	a := append([]int(nil), d.ChannelSet(0, 0)...)
	changed := false
	for slot := 1; slot < 10 && !changed; slot++ {
		b := d.ChannelSet(0, slot)
		for i := range b {
			if a[i] != b[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("dynamic assignment never changed node 0's set over 10 slots")
	}
}

func TestDynamicDeterministicAcrossCachePattern(t *testing.T) {
	d1, err := NewDynamic(4, 5, 2, 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDynamic(4, 5, 2, 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Query d1 in slot order, d2 jumping around; slot 3 must agree.
	_ = d1.ChannelSet(0, 0)
	_ = d1.ChannelSet(0, 1)
	_ = d1.ChannelSet(0, 2)
	want := append([]int(nil), d1.ChannelSet(2, 3)...)
	_ = d2.ChannelSet(1, 7)
	got := d2.ChannelSet(2, 3)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("slot 3 node 2 differs under different query patterns: %v vs %v", want, got)
		}
	}
}

func TestDynamicRejectsBadParams(t *testing.T) {
	if _, err := NewDynamic(3, 5, 2, 4, 1); err == nil {
		t.Error("C < c accepted")
	}
	if _, err := NewDynamic(3, 5, 6, 20, 1); err == nil {
		t.Error("k > c accepted")
	}
}

func overlapSlices(a, b []int) int {
	set := make(map[int]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	n := 0
	for _, x := range b {
		if _, ok := set[x]; ok {
			n++
		}
	}
	return n
}
