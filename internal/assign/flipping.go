package assign

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Flipping is the middle ground between Static and Dynamic: channel sets
// follow SharedCore semantics (a k-channel shared core plus uniformly drawn
// extras) but are re-drawn only at a declared list of flip slots instead of
// every slot. This models operator-driven reassignment events — a spectrum
// database pushing new channel grants, a band being vacated — rather than
// the per-slot churn of Dynamic, and gives the scenario DSL's
// "assignment-flip" events a generator that maps directly onto the
// existing SharedCore machinery. Pairwise overlap stays >= k across every
// flip because the core never changes.
type Flipping struct {
	n, total, perNode, minOverlap int
	core                          []int
	pool                          []int
	seed                          int64
	flips                         []int // ascending slots at which sets re-draw

	cachedEpoch int
	cached      [][]int
	r           *rand.Rand
	permBuf     []int
}

var _ sim.Assignment = (*Flipping)(nil)

// NewFlipping builds a flipping assignment over totalChannels channels with
// a k-channel shared core; at every slot listed in flips each node re-draws
// its c−k non-core channels uniformly from the remaining pool (epoch 0 runs
// from slot 0 to the first flip). Flip slots must be positive and strictly
// increasing. Requires totalChannels >= c.
func NewFlipping(n, c, k, totalChannels int, seed int64, flips []int) (*Flipping, error) {
	if err := checkCommon(n, c, k, LocalLabels); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	for i, s := range flips {
		if s < 1 {
			return nil, fmt.Errorf("assign: flip slot %d must be positive", s)
		}
		if i > 0 && s <= flips[i-1] {
			return nil, fmt.Errorf("assign: flip slots must be strictly increasing (%d after %d)", s, flips[i-1])
		}
	}
	perm := rng.New(seed, 0xd1a).Perm(totalChannels)
	f := &Flipping{
		n:           n,
		total:       totalChannels,
		perNode:     c,
		minOverlap:  k,
		core:        perm[:k],
		pool:        perm[k:],
		seed:        seed,
		flips:       append([]int(nil), flips...),
		cachedEpoch: -1,
		cached:      make([][]int, n),
	}
	for u := range f.cached {
		f.cached[u] = make([]int, c)
	}
	return f, nil
}

// Nodes returns n.
func (f *Flipping) Nodes() int { return f.n }

// Channels returns C.
func (f *Flipping) Channels() int { return f.total }

// PerNode returns c.
func (f *Flipping) PerNode() int { return f.perNode }

// MinOverlap returns k.
func (f *Flipping) MinOverlap() int { return f.minOverlap }

// Flips returns the flip schedule (read-only).
func (f *Flipping) Flips() []int { return f.flips }

// epoch returns how many flips have happened by the slot (0 before the
// first flip).
func (f *Flipping) epoch(slot int) int {
	return sort.SearchInts(f.flips, slot+1)
}

// ChannelSet returns the node's channel set for the slot, re-drawing all
// nodes' sets when the slot crosses a flip boundary. Draws are keyed by
// (seed, epoch, node), so a set is a pure function of which flips have
// fired — not of how the engine interleaves queries.
func (f *Flipping) ChannelSet(node sim.NodeID, slot int) []int {
	if e := f.epoch(slot); e != f.cachedEpoch {
		f.fill(e)
	}
	return f.cached[node]
}

func (f *Flipping) fill(epoch int) {
	c, k := f.perNode, f.minOverlap
	for u := 0; u < f.n; u++ {
		if f.r == nil {
			f.r = rng.New(f.seed, int64(epoch), int64(u), 0xf11b)
		} else {
			rng.Reseed(f.r, f.seed, int64(epoch), int64(u), 0xf11b)
		}
		r := f.r
		set := f.cached[u][:0]
		set = append(set, f.core...)
		if c > k {
			f.permBuf = rng.PermInto(r, f.permBuf, len(f.pool))
			for _, j := range f.permBuf[:c-k] {
				set = append(set, f.pool[j])
			}
		}
		r.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		f.cached[u] = set
	}
	f.cachedEpoch = epoch
}
