package assign

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

// builderCases enumerates one build of every generator, exercising both
// label models.
var builderCases = []struct {
	name  string
	fresh func(seed int64) (*Static, error)
	build func(b *Builder, seed int64) (*Static, error)
}{
	{
		"full-overlap/global",
		func(seed int64) (*Static, error) { return FullOverlap(8, 5, GlobalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.FullOverlap(8, 5, GlobalLabels, seed) },
	},
	{
		"partitioned/local",
		func(seed int64) (*Static, error) { return Partitioned(8, 6, 2, LocalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.Partitioned(8, 6, 2, LocalLabels, seed) },
	},
	{
		"shared-core/local",
		func(seed int64) (*Static, error) { return SharedCore(8, 6, 2, 24, LocalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.SharedCore(8, 6, 2, 24, LocalLabels, seed) },
	},
	{
		"pairwise/global",
		func(seed int64) (*Static, error) { return PairwiseDedicated(4, 7, 2, GlobalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.PairwiseDedicated(4, 7, 2, GlobalLabels, seed) },
	},
	{
		"random-pool/local",
		func(seed int64) (*Static, error) { return RandomPool(6, 8, 2, 16, LocalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.RandomPool(6, 8, 2, 16, LocalLabels, seed) },
	},
	{
		"two-set/local",
		func(seed int64) (*Static, error) { return TwoSet(8, 6, 2, LocalLabels, seed) },
		func(b *Builder, seed int64) (*Static, error) { return b.TwoSet(8, 6, 2, LocalLabels, seed) },
	},
}

func sameAssignment(t *testing.T, want, got *Static) {
	t.Helper()
	if want.Nodes() != got.Nodes() || want.Channels() != got.Channels() ||
		want.PerNode() != got.PerNode() || want.MinOverlap() != got.MinOverlap() {
		t.Fatalf("parameter mismatch: want (n=%d C=%d c=%d k=%d), got (n=%d C=%d c=%d k=%d)",
			want.Nodes(), want.Channels(), want.PerNode(), want.MinOverlap(),
			got.Nodes(), got.Channels(), got.PerNode(), got.MinOverlap())
	}
	for u := 0; u < want.Nodes(); u++ {
		ws, gs := want.ChannelSet(sim.NodeID(u), 0), got.ChannelSet(sim.NodeID(u), 0)
		if len(ws) != len(gs) {
			t.Fatalf("node %d: set length %d != %d", u, len(gs), len(ws))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("node %d index %d: %d != %d", u, i, gs[i], ws[i])
			}
		}
	}
}

// TestBuilderMatchesFresh is the reuse-vs-fresh contract for assignments: a
// warm Builder regenerating through many seeds (and across different
// generators) must reproduce every fresh construction exactly, including
// label order.
func TestBuilderMatchesFresh(t *testing.T) {
	b := new(Builder)
	for round := 0; round < 3; round++ {
		for _, tc := range builderCases {
			seed := int64(41 + round)
			want, err := tc.fresh(seed)
			if err != nil {
				t.Fatalf("%s fresh: %v", tc.name, err)
			}
			got, err := tc.build(b, seed)
			if err != nil {
				t.Fatalf("%s build: %v", tc.name, err)
			}
			sameAssignment(t, want, got)
			if err := got.Validate(); err != nil {
				t.Fatalf("%s: built assignment invalid: %v", tc.name, err)
			}
		}
	}
}

// TestBuilderRegeneratesIntoBacking pins the memory contract from ISSUE 3: a
// warm builder regenerating a same-shape assignment must not allocate, and
// the flat Static it returns must keep aliasing the same backing array.
func TestBuilderRegeneratesIntoBacking(t *testing.T) {
	b := new(Builder)
	warm, err := b.Partitioned(16, 8, 2, LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	firstBacking := &warm.backing[0]
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.Partitioned(16, 8, 2, LocalLabels, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Partitioned rebuild allocated %.1f times per run, want 0", allocs)
	}
	again, err := b.Partitioned(16, 8, 2, LocalLabels, 7)
	if err != nil {
		t.Fatal(err)
	}
	if &again.backing[0] != firstBacking {
		t.Error("regeneration replaced the backing array instead of reusing it")
	}
	if &again.sets[3][0] != &again.backing[3*8] {
		t.Error("sets are not subslices of the flat backing array")
	}
}

// TestStaticFlatLayout verifies the flat invariant on a fresh assignment
// too: node u's set occupies backing[u*c : u*c+c].
func TestStaticFlatLayout(t *testing.T) {
	s, err := SharedCore(10, 6, 2, 20, GlobalLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := s.PerNode()
	if len(s.backing) != s.Nodes()*c {
		t.Fatalf("backing length %d, want n*c = %d", len(s.backing), s.Nodes()*c)
	}
	for u := 0; u < s.Nodes(); u++ {
		set := s.ChannelSet(sim.NodeID(u), 0)
		if &set[0] != &s.backing[u*c] {
			t.Fatalf("node %d set does not alias backing at offset %d", u, u*c)
		}
	}
}
