package assign

import (
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// TwoSet is the network of Lemma 12's reduction: the source (node 0) holds
// channel set A, all other n−1 nodes hold the same channel set B, and
// |A ∩ B| = k exactly. Until the source lands on one of the k shared
// channels simultaneously with another node, no information can flow — the
// situation the bipartite hitting game models. C = 2c − k.
func TwoSet(n, c, k int, model LabelModel, seed int64) (*Static, error) {
	return new(Builder).TwoSet(n, c, k, model, seed)
}

// AntiScan is the Theorem 17 adversary: a dynamic assignment that defeats
// any algorithm whose source transmits on a *predictable* local channel
// index. Channel sets themselves are the static partitioned construction
// (k shared, c−k private per node), but each slot the adversary re-arranges
// the source's local labels so that the predicted index holds one of the
// source's private channels — "the channel availability conspires to
// prevent communication". Requires k < c, exactly the theorem's condition:
// with k = c there is no private channel to hide behind.
//
// A randomized algorithm like COGCAST is immune: the adversary must commit
// the arrangement before the node's coin flip, and a uniform choice over a
// set is uniform under any permutation of it.
type AntiScan struct {
	n, c, k int
	sets    [][]int // node -> channel set; source's order is per-slot
	shared  map[int]bool
	predict func(slot int) int
	srcBuf  []int
	slot    int
}

var _ sim.Assignment = (*AntiScan)(nil)

// NewAntiScan builds the adversary for n nodes, c channels each, k shared
// (k < c). predict(slot) is the local index the deterministic victim will
// transmit on in that slot; nil means the canonical sequential scan
// (slot mod c).
func NewAntiScan(n, c, k int, predict func(slot int) int, seed int64) (*AntiScan, error) {
	if err := checkCommon(n, c, k, LocalLabels); err != nil {
		return nil, err
	}
	if k >= c {
		return nil, fmt.Errorf("assign: the Theorem 17 adversary needs k < c, got k=%d c=%d", k, c)
	}
	base, err := Partitioned(n, c, k, LocalLabels, seed)
	if err != nil {
		return nil, err
	}
	sets := make([][]int, n)
	for u := range sets {
		sets[u] = append([]int(nil), base.ChannelSet(sim.NodeID(u), 0)...)
	}
	if predict == nil {
		predict = func(slot int) int { return slot % c }
	}
	// Channels shared with node 1 never change; computing the membership set
	// once keeps the per-slot arrange() allocation-free.
	shared := make(map[int]bool, c)
	for _, ch := range sets[1%n] {
		shared[ch] = true
	}
	a := &AntiScan{
		n:       n,
		c:       c,
		k:       k,
		sets:    sets,
		shared:  shared,
		predict: predict,
		srcBuf:  make([]int, c),
		slot:    -1,
	}
	return a, nil
}

// Nodes returns n.
func (a *AntiScan) Nodes() int { return a.n }

// Channels returns C = k + n(c−k).
func (a *AntiScan) Channels() int { return a.k + a.n*(a.c-a.k) }

// PerNode returns c.
func (a *AntiScan) PerNode() int { return a.c }

// MinOverlap returns k.
func (a *AntiScan) MinOverlap() int { return a.k }

// ChannelSet returns the node's set; for the source the local order is
// adversarially rotated so that the predicted index maps to a private
// channel.
func (a *AntiScan) ChannelSet(node sim.NodeID, slot int) []int {
	if node != 0 {
		return a.sets[node]
	}
	if slot != a.slot {
		a.arrange(slot)
	}
	return a.srcBuf
}

// arrange rotates the source's set so that a private channel sits at the
// predicted position. The source's underlying set is core channels followed
// by private ones (Partitioned construction order before shuffling — we
// rebuild from the stored set by membership).
func (a *AntiScan) arrange(slot int) {
	target := a.predict(slot) % a.c
	if target < 0 {
		target += a.c
	}
	// Identify one private channel (any channel not shared with node 1 —
	// with the partitioned construction, private channels of the source are
	// shared with nobody).
	shared := a.shared
	out := a.srcBuf[:0]
	privIdx := -1
	for _, ch := range a.sets[0] {
		out = append(out, ch)
	}
	for i, ch := range out {
		if !shared[ch] {
			privIdx = i
			break
		}
	}
	out[target], out[privIdx] = out[privIdx], out[target]
	a.srcBuf = out
	a.slot = slot
}
