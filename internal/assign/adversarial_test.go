package assign

import (
	"testing"

	"github.com/cogradio/crn/internal/sim"
)

func TestTwoSetStructure(t *testing.T) {
	const n, c, k = 6, 8, 3
	asn, err := TwoSet(n, c, k, LocalLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := asn.Validate(); err != nil {
		t.Fatal(err)
	}
	if asn.Channels() != 2*c-k {
		t.Errorf("C = %d, want %d", asn.Channels(), 2*c-k)
	}
	// Source overlaps every other node on exactly k channels.
	for v := 1; v < n; v++ {
		if got := asn.Overlap(0, sim.NodeID(v)); got != k {
			t.Errorf("overlap(0,%d) = %d, want exactly %d", v, got, k)
		}
	}
	// Non-source nodes hold identical sets (overlap c).
	for v := 2; v < n; v++ {
		if got := asn.Overlap(1, sim.NodeID(v)); got != c {
			t.Errorf("overlap(1,%d) = %d, want %d (identical sets)", v, got, c)
		}
	}
}

func TestTwoSetValidation(t *testing.T) {
	if _, err := TwoSet(1, 4, 2, LocalLabels, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := TwoSet(4, 4, 5, LocalLabels, 1); err == nil {
		t.Error("k > c accepted")
	}
}

func TestAntiScanValidation(t *testing.T) {
	if _, err := NewAntiScan(4, 8, 8, nil, 1); err == nil {
		t.Error("k = c accepted; the adversary needs a private channel")
	}
	if _, err := NewAntiScan(4, 8, 0, nil, 1); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestAntiScanStarvesPredictedIndex(t *testing.T) {
	const n, c, k = 5, 6, 2
	adv, err := NewAntiScan(n, c, k, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Build the shared-core membership from node 1's set (every channel
	// the source shares with anyone is in the core by construction).
	shared := make(map[int]bool)
	for _, ch := range adv.ChannelSet(1, 0) {
		shared[ch] = true
	}
	for slot := 0; slot < 4*c; slot++ {
		set := adv.ChannelSet(0, slot)
		if len(set) != c {
			t.Fatalf("slot %d: source set size %d", slot, len(set))
		}
		if ch := set[slot%c]; shared[ch] {
			t.Fatalf("slot %d: predicted index %d maps to shared channel %d — adversary failed", slot, slot%c, ch)
		}
		// The set itself must still be the source's full channel set.
		seen := make(map[int]bool, c)
		for _, ch := range set {
			if seen[ch] {
				t.Fatalf("slot %d: duplicate channel %d", slot, ch)
			}
			seen[ch] = true
		}
	}
}

func TestAntiScanPreservesOverlap(t *testing.T) {
	const n, c, k = 5, 6, 2
	adv, err := NewAntiScan(n, c, k, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Nodes() != n || adv.PerNode() != c || adv.MinOverlap() != k {
		t.Fatalf("dims = (%d,%d,%d)", adv.Nodes(), adv.PerNode(), adv.MinOverlap())
	}
	if want := k + n*(c-k); adv.Channels() != want {
		t.Errorf("C = %d, want %d", adv.Channels(), want)
	}
	for slot := 0; slot < 10; slot++ {
		src := append([]int(nil), adv.ChannelSet(0, slot)...)
		for v := 1; v < n; v++ {
			if got := overlapSlices(src, adv.ChannelSet(sim.NodeID(v), slot)); got < k {
				t.Fatalf("slot %d: overlap(0,%d) = %d < k", slot, v, got)
			}
		}
	}
}

func TestAntiScanCustomPredictor(t *testing.T) {
	const c = 6
	// A victim that always transmits on local index 2.
	adv, err := NewAntiScan(4, c, 2, func(int) int { return 2 }, 5)
	if err != nil {
		t.Fatal(err)
	}
	shared := make(map[int]bool)
	for _, ch := range adv.ChannelSet(1, 0) {
		shared[ch] = true
	}
	for slot := 0; slot < 20; slot++ {
		if ch := adv.ChannelSet(0, slot)[2]; shared[ch] {
			t.Fatalf("slot %d: fixed index 2 maps to shared channel", slot)
		}
	}
}
