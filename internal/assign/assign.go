// Package assign builds channel assignments for the cognitive radio model:
// n nodes, C physical channels, each node holding c of them, every pair of
// nodes overlapping on at least k. Generators cover the topologies the
// paper's analysis distinguishes — a fully shared spectrum, a small shared
// core with private remainders (the lower-bound construction of Theorem 16),
// pairwise-dedicated overlaps (the "every pair shares a distinct set" case
// of Claim 2), and uniformly random sets — plus a dynamic wrapper that
// re-draws sets every slot while preserving the overlap guarantee
// (Theorem 17 / the discussion in Sections 4 and 7).
//
// Label models: the paper's default is *local* labels (each node names its
// channels in an arbitrary private order); *global* labels (a shared
// numbering) strengthen algorithms and weaken lower bounds. Here a label
// model is a property of the assignment: local index i of node u maps to
// the physical channel ChannelSet(u, slot)[i].
package assign

import (
	"errors"
	"fmt"

	"github.com/cogradio/crn/internal/sim"
)

// LabelModel selects how nodes' local channel indices relate to physical
// channels.
type LabelModel uint8

const (
	// LocalLabels gives every node an independent random ordering of its
	// channel set. This is the paper's default model.
	LocalLabels LabelModel = iota + 1
	// GlobalLabels orders every node's set by physical channel index, so
	// co-assigned channels appear in a globally consistent order. (With a
	// full-overlap assignment this makes local index i the same physical
	// channel for all nodes, which is what e.g. the hopping-together
	// baseline exploits.)
	GlobalLabels
)

// String returns the label model's name.
func (m LabelModel) String() string {
	switch m {
	case LocalLabels:
		return "local"
	case GlobalLabels:
		return "global"
	default:
		return "invalid"
	}
}

// Static is an immutable channel assignment. It implements sim.Assignment.
//
// Sets live in one flat backing array of n·c ints with sets[u] a subslice,
// so an assignment is two allocations regardless of n — and a Builder can
// regenerate one into the same backing across trials.
type Static struct {
	channels   int // C
	perNode    int // c
	minOverlap int // k, as guaranteed by construction
	backing    []int
	sets       [][]int

	// Derived, invalidated whenever a Builder regenerates the assignment:
	// the largest physical index handed out (for engine scratch pre-sizing)
	// and the lazily built channel→members reverse index.
	maxChan      int
	maxChanKnown bool
	index        *Index
}

var (
	_ sim.Assignment              = (*Static)(nil)
	_ sim.ConcurrentAssignment    = (*Static)(nil)
	_ sim.SlotInvariantAssignment = (*Static)(nil)
	_ sim.ChannelBounder          = (*Static)(nil)
)

// Nodes returns n.
func (s *Static) Nodes() int { return len(s.sets) }

// Channels returns C.
func (s *Static) Channels() int { return s.channels }

// PerNode returns c.
func (s *Static) PerNode() int { return s.perNode }

// MinOverlap returns k.
func (s *Static) MinOverlap() int { return s.minOverlap }

// ChannelSet returns node's channel set; static assignments ignore slot.
func (s *Static) ChannelSet(node sim.NodeID, _ int) []int { return s.sets[node] }

// ConcurrentChannelSet reports that ChannelSet is safe for concurrent calls:
// a built Static is immutable, so the engine may shard its per-slot scan
// over it.
func (s *Static) ConcurrentChannelSet() bool { return true }

// SlotInvariantChannelSet reports that ChannelSet ignores its slot argument:
// a built Static never remaps a node, so the sparse engine may cache the
// physical channel a parked listener tuned to.
func (s *Static) SlotInvariantChannelSet() bool { return true }

// MaxPhysChannel returns the largest physical channel index any node holds,
// or -1 for an assignment with no memberships. Builders compute it at build
// time; hand-assembled Statics (tests) fall back to a lazy scan.
func (s *Static) MaxPhysChannel() int {
	if !s.maxChanKnown {
		m := -1
		for _, set := range s.sets {
			for _, ch := range set {
				if ch > m {
					m = ch
				}
			}
		}
		s.maxChan = m
		s.maxChanKnown = true
	}
	return s.maxChan
}

// Validate checks every structural invariant of the model: set sizes equal
// c, channels lie in [0, C), sets contain no duplicates, and every pair of
// nodes overlaps on at least k channels. It is O(n·c + n²) using bitmap
// intersection counts and is intended for tests and generator verification.
func (s *Static) Validate() error {
	n := len(s.sets)
	if s.perNode < 1 || s.minOverlap < 1 || s.minOverlap > s.perNode {
		return fmt.Errorf("assign: invalid parameters c=%d k=%d", s.perNode, s.minOverlap)
	}
	words := (s.channels + 63) / 64
	masks := make([][]uint64, n)
	for u, set := range s.sets {
		if len(set) != s.perNode {
			return fmt.Errorf("assign: node %d has %d channels, want c=%d", u, len(set), s.perNode)
		}
		mask := make([]uint64, words)
		for _, ch := range set {
			if ch < 0 || ch >= s.channels {
				return fmt.Errorf("assign: node %d holds channel %d outside [0,%d)", u, ch, s.channels)
			}
			w, b := ch/64, uint(ch%64)
			if mask[w]&(1<<b) != 0 {
				return fmt.Errorf("assign: node %d holds channel %d twice", u, ch)
			}
			mask[w] |= 1 << b
		}
		masks[u] = mask
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if got := overlap(masks[u], masks[v]); got < s.minOverlap {
				return fmt.Errorf("assign: nodes %d and %d overlap on %d < k=%d channels", u, v, got, s.minOverlap)
			}
		}
	}
	return nil
}

func overlap(a, b []uint64) int {
	total := 0
	for i := range a {
		total += popcount(a[i] & b[i])
	}
	return total
}

func popcount(x uint64) int {
	// Kernighan's loop is plenty here; Validate is test-path only.
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Overlap returns the number of physical channels nodes u and v share in
// slot 0. It is a convenience for tests and analysis, answered from the
// reverse index: a bitset intersection when the index carries bitsets, a
// membership probe per channel otherwise.
func (s *Static) Overlap(u, v sim.NodeID) int {
	idx := s.Index()
	if idx.words > 0 {
		a := idx.bits[int(u)*idx.words : (int(u)+1)*idx.words]
		b := idx.bits[int(v)*idx.words : (int(v)+1)*idx.words]
		return overlapCount(a, b)
	}
	n := 0
	for _, ch := range s.sets[u] {
		if idx.Contains(v, ch) {
			n++
		}
	}
	return n
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func checkCommon(n, c, k int, model LabelModel) error {
	if n < 1 {
		return errors.New("assign: need at least one node")
	}
	if c < 1 {
		return fmt.Errorf("assign: c=%d must be positive", c)
	}
	if k < 1 || k > c {
		return fmt.Errorf("assign: k=%d must be in [1, c=%d]", k, c)
	}
	if model != LocalLabels && model != GlobalLabels {
		return fmt.Errorf("assign: invalid label model %d", model)
	}
	return nil
}
