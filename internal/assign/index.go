package assign

import (
	"math/bits"
	"sort"

	"github.com/cogradio/crn/internal/sim"
)

// Index is a CSR-style reverse view of a static assignment: for every
// physical channel, the ascending list of member nodes, stored as one flat
// member array plus per-channel offsets — O(total memberships) memory with
// no per-channel slice headers, which is what keeps million-node topologies
// affordable. When the channel space is dense enough it also carries
// per-node membership bitsets for O(1) Contains; for sparse spectra (e.g.
// partitioned topologies where C grows with n) the bitsets are elided and
// Contains binary-searches the member list instead.
//
// An Index is immutable once built and safe for concurrent readers.
type Index struct {
	offsets []int32  // channel ch's members are members[offsets[ch]:offsets[ch+1]]
	members []int32  // node IDs, channel-major, node-ascending within a channel
	words   int      // bitset words per node; 0 when bitsets are elided
	bits    []uint64 // node u's bitset is bits[u*words:(u+1)*words]
	nodes   int
}

// Index returns the channel→members reverse index of the assignment,
// building it on first use and caching it until the next rebuild of the
// underlying Static. The first call is not safe to race with other calls on
// the same Static; trial arenas build per-worker assignments, so in practice
// each Index has a single owner.
func (s *Static) Index() *Index {
	if s.index == nil {
		s.index = buildIndex(s)
	}
	return s.index
}

func buildIndex(s *Static) *Index {
	n := len(s.sets)
	c := s.channels
	if m := s.MaxPhysChannel(); m+1 > c {
		c = m + 1 // tolerate malformed sets so tests on invalid Statics don't panic
	}
	idx := &Index{nodes: n}
	idx.offsets = make([]int32, c+1)
	total := 0
	for _, set := range s.sets {
		total += len(set)
		for _, ch := range set {
			if ch >= 0 {
				idx.offsets[ch+1]++
			}
		}
	}
	for ch := 0; ch < c; ch++ {
		idx.offsets[ch+1] += idx.offsets[ch]
	}
	idx.members = make([]int32, idx.offsets[c])
	next := make([]int32, c)
	copy(next, idx.offsets[:c])
	// Scanning nodes in ascending order makes each channel's member list
	// node-ascending with no sort pass.
	for u, set := range s.sets {
		for _, ch := range set {
			if ch >= 0 {
				idx.members[next[ch]] = int32(u)
				next[ch]++
			}
		}
	}
	// Bitsets cost n*words*8 bytes; build them only when that is within a
	// small factor of the membership storage itself (words <= 2c, i.e.
	// C <= 128c). Partitioned spectra blow past this and fall back to
	// binary search.
	if n > 0 {
		words := (c + 63) / 64
		if perNode := total / n; words <= 2*perNode {
			idx.words = words
			idx.bits = make([]uint64, n*words)
			for u, set := range s.sets {
				row := idx.bits[u*words : (u+1)*words]
				for _, ch := range set {
					if ch >= 0 {
						row[ch/64] |= 1 << uint(ch%64)
					}
				}
			}
		}
	}
	return idx
}

// Members returns the nodes holding physical channel ch, in ascending node
// order. The slice aliases the index and must not be mutated. Channels
// outside the indexed range have no members.
func (x *Index) Members(ch int) []int32 {
	if ch < 0 || ch >= len(x.offsets)-1 {
		return nil
	}
	return x.members[x.offsets[ch]:x.offsets[ch+1]]
}

// Contains reports whether node holds physical channel ch — O(1) via bitset
// when the index carries them, O(log n) by binary search otherwise.
func (x *Index) Contains(node sim.NodeID, ch int) bool {
	u := int(node)
	if u < 0 || u >= x.nodes {
		return false
	}
	if x.words > 0 {
		if ch < 0 || ch >= x.words*64 {
			return false
		}
		return x.bits[u*x.words+ch/64]&(1<<uint(ch%64)) != 0
	}
	ms := x.Members(ch)
	i := sort.Search(len(ms), func(i int) bool { return ms[i] >= int32(u) })
	return i < len(ms) && ms[i] == int32(u)
}

// Memberships returns the total number of (node, channel) memberships — n·c
// for a well-formed assignment.
func (x *Index) Memberships() int { return len(x.members) }

// Degree returns the number of nodes holding channel ch.
func (x *Index) Degree(ch int) int { return len(x.Members(ch)) }

// HasBitsets reports whether the index carries per-node membership bitsets
// (dense spectra) or falls back to binary search (sparse spectra).
func (x *Index) HasBitsets() bool { return x.words > 0 }

// MemoryBytes returns the index's backing storage size: offsets, members and
// (when present) bitsets. Experiment E28 divides this by n to report the
// per-node footprint of the reverse representation.
func (x *Index) MemoryBytes() int64 {
	return int64(len(x.offsets))*4 + int64(len(x.members))*4 + int64(len(x.bits))*8
}

// overlapCount counts shared channels between two bitset rows.
func overlapCount(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}
