package assign

import (
	"fmt"
	"math/rand"

	"github.com/cogradio/crn/internal/rng"
	"github.com/cogradio/crn/internal/sim"
)

// Dynamic is a per-slot re-randomized assignment modelling the dynamic
// setting of Theorem 17 and the discussions in Sections 4 and 7: in every
// slot each node's channel set is re-drawn, yet any pair of nodes still
// overlaps on at least k channels (a fixed k-channel core survives every
// re-draw). COGCAST runs over a Dynamic assignment unmodified; COGCOMP does
// not (its later phases revisit channels), matching the paper.
//
// Channel sets are deterministic functions of (seed, slot, node), so runs
// remain reproducible. Labels are always local: re-drawn sets arrive in a
// fresh random order each slot.
type Dynamic struct {
	n, total, perNode, minOverlap int
	core                          []int
	pool                          []int
	seed                          int64

	cachedSlot int
	cached     [][]int
	r          *rand.Rand // re-seeded per (slot, node); see fill
	permBuf    []int
}

var _ sim.Assignment = (*Dynamic)(nil)

// NewDynamic builds a dynamic assignment over totalChannels channels with a
// k-channel shared core; every slot each node re-draws its c−k non-core
// channels uniformly from the remaining pool. Requires totalChannels >= c.
func NewDynamic(n, c, k, totalChannels int, seed int64) (*Dynamic, error) {
	if err := checkCommon(n, c, k, LocalLabels); err != nil {
		return nil, err
	}
	if totalChannels < c {
		return nil, fmt.Errorf("assign: C=%d must be at least c=%d", totalChannels, c)
	}
	perm := rng.New(seed, 0xd1a).Perm(totalChannels)
	d := &Dynamic{
		n:          n,
		total:      totalChannels,
		perNode:    c,
		minOverlap: k,
		core:       perm[:k],
		pool:       perm[k:],
		seed:       seed,
		cachedSlot: -1,
		cached:     make([][]int, n),
	}
	for u := range d.cached {
		d.cached[u] = make([]int, c)
	}
	return d, nil
}

// Nodes returns n.
func (d *Dynamic) Nodes() int { return d.n }

// Channels returns C.
func (d *Dynamic) Channels() int { return d.total }

// PerNode returns c.
func (d *Dynamic) PerNode() int { return d.perNode }

// MinOverlap returns k.
func (d *Dynamic) MinOverlap() int { return d.minOverlap }

// ChannelSet returns the node's channel set for the slot, re-drawing all
// nodes' sets when the slot changes. The engine queries all nodes for the
// same slot before advancing, so the single-slot cache is always warm.
func (d *Dynamic) ChannelSet(node sim.NodeID, slot int) []int {
	if slot != d.cachedSlot {
		d.fill(slot)
	}
	return d.cached[node]
}

func (d *Dynamic) fill(slot int) {
	c, k := d.perNode, d.minOverlap
	for u := 0; u < d.n; u++ {
		// One reusable generator re-seeded to the (slot, node) stream draws
		// exactly what a fresh rng.New did, without the per-slot source
		// allocations that used to dominate dynamic-assignment runs.
		if d.r == nil {
			d.r = rng.New(d.seed, int64(slot), int64(u), 0xd1b)
		} else {
			rng.Reseed(d.r, d.seed, int64(slot), int64(u), 0xd1b)
		}
		r := d.r
		set := d.cached[u][:0]
		set = append(set, d.core...)
		if c > k {
			d.permBuf = rng.PermInto(r, d.permBuf, len(d.pool))
			for _, j := range d.permBuf[:c-k] {
				set = append(set, d.pool[j])
			}
		}
		r.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		d.cached[u] = set
	}
	d.cachedSlot = slot
}
